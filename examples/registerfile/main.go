// The register-file example of Fig 2-5 / §3.2, reproducing the timing
// summary of Fig 3-10 and the two set-up errors of Fig 3-11: the RAM
// address set-up of 3.5 ns missed by the full 3.5 ns, and the output
// register set-up of 2.5 ns missed by 1.0 ns.
//
//	go run ./examples/registerfile
package main

import (
	"fmt"
	"log"

	"scaldtv"
)

const design = `
design "FIG 2-5 REGISTER FILE"
period 50ns
clockunit 6.25ns
defaultwire 0ns 2ns
skew precision -1ns 1ns

; Read/write address selection: CLK high selects the write address.  The
; &Z directive refers the clock timing to the multiplexer (§2.6); the
; designer specified 0.0/6.0 ns interconnection for the address lines.
mux2 "ADR MUX" delay=(1.2,3.3) seldelay=(0.3,1.2) ("CLK .P0-4" &Z, "READ ADR .S4-9"<0:3>, "W ADR .S0-6"<0:3>) -> (ADR<0:3>)
wire ADR 0ns 6ns

; Write-enable: the low-asserted strobe gated by the WRITE control on the
; complement rails; &H checks the control and de-skews through the gate.
and "WE GATE" delay=(1.0,2.9) (-"CK .P2-3 L" &H, -"WRITE .S0-6 L") -> (WE)

use "16W RAM 10145A" RAM1 SIZE=32 (I="W DATA .S0-6"<0:31>, A=ADR<0:3>, WE=WE, CS="CS SEL .S0-8", DO=DO)
use "REG 10176" OUTREG SIZE=32 (CK="CLK .P0-4", I=DO, Q=Q<0:31>)
`

func main() {
	d, err := scaldtv.Compile(design + "\n" + scaldtv.Library)
	if err != nil {
		log.Fatal(err)
	}
	res, err := scaldtv.Verify(d, scaldtv.Options{KeepWaves: true})
	if err != nil {
		log.Fatal(err)
	}

	// Fig 3-10: the signal values over the cycle.  The paper's listing
	// shows ADR stable at the start, changing 0.5–5.5 ns, stable to
	// 25.5 ns, changing to 30.5 ns, then stable.
	fmt.Print(scaldtv.TimingSummary(res, 0))
	fmt.Println()

	// Fig 3-11: the two set-up errors.
	fmt.Print(scaldtv.ErrorListing(res))
	fmt.Println()
	fmt.Print(scaldtv.CrossReference(res))
}
