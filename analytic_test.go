package scaldtv

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"scaldtv/internal/netlist"
	"scaldtv/internal/pathsearch"
	"scaldtv/internal/tick"
)

// The analytic delay model's headline contract: verify ONCE at the
// anchor point, then answer any parameter point inside the declared box
// from the retained margin surface — bit-identical to re-running the
// engine on the design pinned at that point.  The tests below lock that
// equivalence metamorphically across the determinism matrix, against
// constant delays substituted into the HDL by hand, and against the
// gate-level logic simulator at pinned points.

// The corpus design: data launched at the cycle start through two
// parametric stages, checked against a mid-cycle clock edge, so the
// set-up slack is arrival-determined (linear in the path delay) across
// the whole declared box — the regime in which the margin surface is
// exact.  The anchor point is clean; the slow corner of the box is not.
const analyticSource = `design PARAM
period 50ns
clockunit 6.25ns
defaultwire 0ns 0ns
param load = 1.0 range 0.5 3.5
param temp = 1.0 range 0.8 1.2
and G1 delay=(1.0+0.5*load, 3.0+4.0*load+1.0*temp) ("EN .S0-7", "D0 .S0-7") -> (N0)
buf B2 delay=(0.5+0.25*temp, 2.0+1.5*temp) (N0) -> (D)
setuphold CHK setup=4.0 hold=1.0 (D, "MCK .P4-6")
`

// analyticCorners is the 16-point corner grid of the metamorphic suite
// (and of BenchmarkCornerSweep): the declared box's vertices plus
// interior points, so the sweep crosses the violation boundary.
func analyticCorners() []map[string]float64 {
	var out []map[string]float64
	for _, load := range []float64{0.5, 1.5, 2.5, 3.5} {
		for _, temp := range []float64{0.8, 0.95, 1.1, 1.2} {
			out = append(out, map[string]float64{"load": load, "temp": temp})
		}
	}
	return out
}

// TestAnalyticMarginSurfaceMetamorphic verifies the parametric design
// once per engine configuration and checks, at all 16 corner points,
// that the margin surface's slack is bit-identical to a scratch run of
// the engine pinned at that point — across Workers/IntraWorkers 1/2/8
// and tape on/off, with the anchor report itself byte-identical across
// every configuration.
func TestAnalyticMarginSurfaceMetamorphic(t *testing.T) {
	corners := analyticCorners()

	// Scratch truth: one engine run per corner, any fixed configuration
	// (scratch runs are themselves configuration-independent, which the
	// matrix below re-proves through the surface equality).
	scratch := make([][]tick.Time, len(corners))
	for ci, c := range corners {
		res, err := VerifySource(analyticSource, Options{Delays: AnalyticDelays{Params: c}})
		if err != nil {
			t.Fatal(err)
		}
		if res.MarginSurface == nil || len(res.MarginSurface.Sites) == 0 {
			t.Fatal("scratch run has no margin surface sites")
		}
		slacks := make([]tick.Time, len(res.MarginSurface.Sites))
		for si := range res.MarginSurface.Sites {
			slacks[si] = res.MarginSurface.Sites[si].Slack0
		}
		scratch[ci] = slacks
	}

	var anchorJSON []byte
	for _, w := range []int{1, 2, 8} {
		for _, tape := range []bool{true, false} {
			name := fmt.Sprintf("workers=%d/tape=%v", w, tape)
			t.Run(name, func(t *testing.T) {
				opts := Options{Workers: w, IntraWorkers: w, NoTape: !tape, Delays: AnalyticDelays{}}
				res, err := VerifySource(analyticSource, opts)
				if err != nil {
					t.Fatal(err)
				}
				ms := res.MarginSurface
				if ms == nil || len(ms.Sites) == 0 {
					t.Fatal("no margin surface")
				}
				out, err := JSONReport(res)
				if err != nil {
					t.Fatal(err)
				}
				if anchorJSON == nil {
					anchorJSON = out
				} else if string(out) != string(anchorJSON) {
					t.Errorf("anchor report bytes differ from the first configuration")
				}

				// Identity at the anchor: At(nil) must reproduce the
				// engine slack of every site exactly.
				at0, err := ms.At(nil)
				if err != nil {
					t.Fatal(err)
				}
				for si, s := range ms.Sites {
					if !s.Exact {
						t.Errorf("site %d (%s %s) not exact on a single-path design", si, s.Kind, s.Prim)
					}
					if at0[si] != s.Slack0 {
						t.Errorf("site %d: At(anchor) = %s, engine slack %s", si, at0[si], s.Slack0)
					}
				}

				for ci, c := range corners {
					got, err := ms.At(c)
					if err != nil {
						t.Fatal(err)
					}
					if len(got) != len(scratch[ci]) {
						t.Fatalf("corner %v: %d surface sites, scratch has %d", c, len(got), len(scratch[ci]))
					}
					for si := range got {
						if got[si] != scratch[ci][si] {
							t.Errorf("corner %v site %d (%s %s): surface slack %s, scratch engine slack %s",
								c, si, ms.Sites[si].Kind, ms.Sites[si].Prim, got[si], scratch[ci][si])
						}
					}
				}
			})
		}
	}
}

// TestAnalyticMatchesConstantHDL substitutes the delay expressions'
// values at a pinned point back into the HDL as constants and checks the
// two verifications agree site for site — the analytic chain (parse →
// affine tables → pinning) introduces no rounding the constant path
// would not.
func TestAnalyticMatchesConstantHDL(t *testing.T) {
	// At load=2, temp=1 every expression lands on an exact value:
	// G1 = (2.0, 12.0), B2 = (0.75, 3.5).
	point := map[string]float64{"load": 2.0, "temp": 1.0}
	constSource := `design PARAM
period 50ns
clockunit 6.25ns
defaultwire 0ns 0ns
and G1 delay=(2.0,12.0) ("EN .S0-7", "D0 .S0-7") -> (N0)
buf B2 delay=(0.75,3.5) (N0) -> (D)
setuphold CHK setup=4.0 hold=1.0 (D, "MCK .P4-6")
`
	ares, err := VerifySource(analyticSource, Options{Delays: AnalyticDelays{Params: point}})
	if err != nil {
		t.Fatal(err)
	}
	cres, err := VerifySource(constSource, Options{Margins: true})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ErrorListing(ares), ErrorListing(cres); got != want {
		t.Errorf("error listings differ:\n--- analytic ---\n%s\n--- constant ---\n%s", got, want)
	}
	ms := ares.MarginSurface
	if ms == nil {
		t.Fatal("no margin surface")
	}
	if len(ms.Sites) != len(cres.Margins) {
		t.Fatalf("%d surface sites, %d constant-run margins", len(ms.Sites), len(cres.Margins))
	}
	for i, m := range cres.Margins {
		s := ms.Sites[i]
		if s.Kind != m.Kind || s.Prim != m.Prim {
			t.Errorf("site %d: (%s %s) vs constant (%s %s)", i, s.Kind, s.Prim, m.Kind, m.Prim)
		}
		if s.Slack0 != m.Slack() {
			t.Errorf("site %d (%s %s): pinned slack %s, constant-HDL slack %s", i, s.Kind, s.Prim, s.Slack0, m.Slack())
		}
	}
}

// TestAnalyticDifferentialPinned extends the logic-simulator cross-check
// to non-default pinned parameter points: at each box vertex the
// verifier's symbolic waveforms (computed on the design pinned there)
// must conservatively cover every concrete simulation trace.
func TestAnalyticDifferentialPinned(t *testing.T) {
	for _, c := range []map[string]float64{
		{"load": 0.5, "temp": 0.8},
		{"load": 3.5, "temp": 1.2},
		{"load": 2.0, "temp": 1.0},
	} {
		t.Run(fmt.Sprintf("load=%v,temp=%v", c["load"], c["temp"]), func(t *testing.T) {
			res, err := VerifySource(analyticSource, Options{KeepWaves: true, Delays: AnalyticDelays{Params: c}})
			if err != nil {
				t.Fatal(err)
			}
			solid := 0
			for ci := range res.Cases {
				for mode := 0; mode < 3; mode++ {
					solid += runDifferential(t, res.Design, res, ci, mode)
				}
			}
			if solid == 0 {
				t.Error("no definite concrete samples: the differential check was vacuous")
			}
		})
	}
}

// TestAnalyticViolationsAndBindingCorner locks the surface's risk
// answers: the anchor run is clean, the worst box vertex is violated,
// and BindingCorner reports a corner whose slack the surface itself
// reproduces.
func TestAnalyticViolationsAndBindingCorner(t *testing.T) {
	res, err := VerifySource(analyticSource, Options{Delays: AnalyticDelays{}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("anchor run must be clean, got %d violations", len(res.Violations))
	}
	ms := res.MarginSurface
	worst := map[string]float64{"load": 3.5, "temp": 1.2}
	vio, err := ms.Violations(worst)
	if err != nil {
		t.Fatal(err)
	}
	if len(vio) == 0 {
		t.Fatal("the worst corner must violate the set-up constraint")
	}
	found := false
	for i := range ms.Sites {
		corner, w := ms.BindingCorner(i)
		at, err := ms.At(corner)
		if err != nil {
			t.Fatal(err)
		}
		if at[i] != w {
			t.Errorf("site %d: BindingCorner slack %s, At(corner) %s", i, w, at[i])
		}
		if w < 0 {
			found = true
		}
	}
	if !found {
		t.Error("no site reports a negative worst slack over the box")
	}
	if l := SurfaceListing(res); !strings.Contains(l, "<< AT RISK") {
		t.Errorf("surface listing does not mark the at-risk site:\n%s", l)
	}
}

// TestAnalyticErrors locks the validation surface: unknown parameters
// and out-of-box values are errors both at verification time and at
// surface query time.
func TestAnalyticErrors(t *testing.T) {
	if _, err := VerifySource(analyticSource, Options{Delays: AnalyticDelays{Params: map[string]float64{"bogus": 1}}}); err == nil {
		t.Error("unknown parameter must fail verification")
	}
	if _, err := VerifySource(analyticSource, Options{Delays: AnalyticDelays{Params: map[string]float64{"load": 9}}}); err == nil {
		t.Error("out-of-range parameter must fail verification")
	}
	res, err := VerifySource(analyticSource, Options{Delays: AnalyticDelays{}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.MarginSurface.At(map[string]float64{"bogus": 1}); err == nil {
		t.Error("unknown parameter must fail a surface query")
	}
	if _, err := res.MarginSurface.At(map[string]float64{"temp": 0}); err == nil {
		t.Error("out-of-box parameter must fail a surface query")
	}
	if _, err := NewAnalyticDelays(map[string]float64{"load": math.NaN()}); err == nil {
		t.Error("NaN binding must fail the typed constructor")
	}
}

// TestDelayModelCompatAdapter locks the compatibility contract of the
// typed DelayModel API: the stringly-typed spellings (-delays= values,
// JSON request fields) are thin adapters over the typed models with
// byte-identical reports.
func TestDelayModelCompatAdapter(t *testing.T) {
	src := `design SHALLOW
period 50ns
clockunit 6.25ns
defaultwire 0ns 0ns
buf B1 delay=(5.0,47.0) ("GO .S0-1") -> (D)
setuphold CHK setup=2.0 hold=1.0 (D, "MCK .P0-4")
`
	report := func(m DelayModel) string {
		t.Helper()
		res, err := VerifySource(src, Options{Delays: m})
		if err != nil {
			t.Fatal(err)
		}
		out, err := JSONReport(res)
		if err != nil {
			t.Fatal(err)
		}
		return string(out)
	}
	for _, tc := range []struct {
		spelling string
		typed    DelayModel
	}{
		{"", nil},
		{"worstcase", MinMaxDelays{}},
		{"worst-case", DelayWorstCase},
		{"statistical", StatisticalDelays{}},
		{"statistical", DelayStatistical},
		{"analytic", AnalyticDelays{}},
	} {
		parsed, err := ParseDelayModel(tc.spelling)
		if err != nil {
			t.Fatalf("ParseDelayModel(%q): %v", tc.spelling, err)
		}
		if got, want := report(parsed), report(tc.typed); got != want {
			t.Errorf("spelling %q: report bytes differ from the typed model", tc.spelling)
		}
	}
	if _, err := ParseDelayModel("montecarlo"); err == nil {
		t.Error("unknown spelling must fail to parse")
	}
	if !IsWorstCase(nil) || !IsWorstCase(MinMaxDelays{}) || IsWorstCase(StatisticalDelays{}) {
		t.Error("IsWorstCase misclassifies a model")
	}
}

// TestGoldenAnalyticCornerSweep locks the exact text of the margin
// surface listing and the JSON report of the parametric example, plus a
// rendered 16-corner sweep, in testdata/delays/.
func TestGoldenAnalyticCornerSweep(t *testing.T) {
	res, err := VerifySource(analyticSource, goldenOpts(Options{Delays: AnalyticDelays{}}))
	if err != nil {
		t.Fatal(err)
	}
	out, err := JSONReport(res)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString(SurfaceListing(res))
	sb.WriteString("\n")
	ms := res.MarginSurface
	for _, c := range analyticCorners() {
		slacks, err := ms.At(c)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&sb, "corner load=%v temp=%v:", c["load"], c["temp"])
		for _, s := range slacks {
			fmt.Fprintf(&sb, " %s", s)
		}
		sb.WriteString("\n")
	}
	sb.WriteString("\n")
	sb.Write(out)
	sb.WriteString("\n")
	got := sb.String()

	path := filepath.Join("testdata", "delays", "corner_sweep.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run go test -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from golden file %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// FuzzAnalyticDelayEval fuzzes the analytic evaluation chain at the
// affine-algebra level: for arbitrary coefficient tables and parameter
// values, Affine.Eval must agree with its one-rounding definition,
// Term.Value must scale it exactly per traversal, and EvalTerms must be
// the true extremum over the term set — the identities the margin
// surface's engine equivalence rests on.
func FuzzAnalyticDelayEval(f *testing.F) {
	f.Add(int64(1000), int64(3000), 0.5, 1.5, 1.0, 2.0, uint8(3))
	f.Add(int64(0), int64(0), 0.0, 0.0, 0.0, 0.0, uint8(1))
	f.Add(int64(-500), int64(70000), -2.25, 1e6, 0.125, 3.5, uint8(7))
	f.Fuzz(func(t *testing.T, bmin, bmax int64, c1, c2 float64, v1, v2 float64, n uint8) {
		clampT := func(x int64) tick.Time {
			const lim = int64(1) << 40
			if x > lim {
				x = lim
			}
			if x < -lim {
				x = -lim
			}
			return tick.Time(x)
		}
		clampF := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 0
			}
			return math.Max(-1e9, math.Min(1e9, x))
		}
		c1, c2 = clampF(c1), clampF(c2)
		v1, v2 = clampF(v1), clampF(v2)
		fns := []netlist.DelayFn{{
			Min: netlist.Affine{Base: clampT(bmin), Coeffs: []netlist.Coeff{{Param: 0, PS: c1}}},
			Max: netlist.Affine{Base: clampT(bmax), Coeffs: []netlist.Coeff{{Param: 0, PS: c1}, {Param: 1, PS: c2}}},
		}}
		vals := []float64{v1, v2}

		// One deterministic rounding of the whole parametric sum.
		evalRef := func(a netlist.Affine) tick.Time {
			var sum float64
			for _, c := range a.Coeffs {
				sum += c.PS * vals[c.Param]
			}
			return a.Base + tick.Time(math.Round(sum))
		}
		for _, a := range []netlist.Affine{fns[0].Min, fns[0].Max} {
			got := a.Eval(vals)
			if got != evalRef(a) {
				t.Fatalf("Affine.Eval = %d, want %d", got, evalRef(a))
			}
			if got != a.Eval(vals) {
				t.Fatal("Affine.Eval is not deterministic")
			}
		}

		// A term traversing the primitive n times contributes exactly
		// n rounded evaluations plus its constant part.
		k := uint8(1) + n%8
		term := pathsearch.Term{Const: 7, Counts: []pathsearch.FnCount{{Fn: 1, N: int32(k)}}}
		wantLate := tick.Time(7) + tick.Time(k)*fns[0].Max.Eval(vals)
		if got := term.Value(fns, true, vals); got != wantLate {
			t.Fatalf("Term.Value(late) = %d, want %d", got, wantLate)
		}
		wantEarly := tick.Time(7) + tick.Time(k)*fns[0].Min.Eval(vals)
		if got := term.Value(fns, false, vals); got != wantEarly {
			t.Fatalf("Term.Value(early) = %d, want %d", got, wantEarly)
		}

		// EvalTerms is the extremum over the set, in either direction.
		terms := []pathsearch.Term{
			{Const: 100},
			term,
			{Const: -3, Counts: []pathsearch.FnCount{{Fn: 1, N: 1}}},
		}
		late, ok := pathsearch.EvalTerms(terms, fns, true, vals)
		if !ok {
			t.Fatal("EvalTerms(late) reported no terms")
		}
		early, _ := pathsearch.EvalTerms(terms, fns, false, vals)
		var wantMax, wantMin tick.Time
		for i, tm := range terms {
			lv, ev := tm.Value(fns, true, vals), tm.Value(fns, false, vals)
			if i == 0 || lv > wantMax {
				wantMax = lv
			}
			if i == 0 || ev < wantMin {
				wantMin = ev
			}
		}
		if late != wantMax || early != wantMin {
			t.Fatalf("EvalTerms = (%d, %d), want (%d, %d)", late, early, wantMax, wantMin)
		}
	})
}

// genAnalyticSource builds a wider parametric corpus: chains independent
// two-stage paths sharing the load/temp parameters, each ending in a
// set-up/hold checker, so the corner-sweep benchmark's engine runs do
// real relaxation work.
func genAnalyticSource(chains int) string {
	var sb strings.Builder
	sb.WriteString(`design PARAMWIDE
period 50ns
clockunit 6.25ns
defaultwire 0ns 0ns
param load = 1.0 range 0.5 3.5
param temp = 1.0 range 0.8 1.2
`)
	for i := 0; i < chains; i++ {
		fmt.Fprintf(&sb, "and G%d delay=(1.0+0.5*load, 3.0+4.0*load+1.0*temp) (\"EN .S0-7\", \"D0 .S0-7\") -> (A%d)\n", i, i)
		fmt.Fprintf(&sb, "buf B%d delay=(0.5+0.25*temp, 2.0+1.5*temp) (A%d) -> (Q%d)\n", i, i, i)
		fmt.Fprintf(&sb, "setuphold CK%d setup=4.0 hold=1.0 (Q%d, \"MCK .P4-6\")\n", i, i)
	}
	return sb.String()
}

// BenchmarkCornerSweep compares answering a 16-point corner sweep from
// one analytic-mode verification's margin surface against re-running
// the engine pinned at every corner.  Both modes produce bit-identical
// slacks (TestAnalyticMarginSurfaceMetamorphic); only wall time
// differs.  The CI bench job runs this pair and gates on a ≥10x win for
// the surface mode.
func BenchmarkCornerSweep(b *testing.B) {
	d, err := Compile(genAnalyticSource(64))
	if err != nil {
		b.Fatal(err)
	}
	corners := analyticCorners()
	b.Run("corners=16/mode=surface", func(b *testing.B) {
		var sites int
		for i := 0; i < b.N; i++ {
			res, err := Verify(d, Options{Delays: AnalyticDelays{}})
			if err != nil {
				b.Fatal(err)
			}
			for _, c := range corners {
				slacks, err := res.MarginSurface.At(c)
				if err != nil {
					b.Fatal(err)
				}
				sites = len(slacks)
			}
		}
		b.ReportMetric(float64(sites), "sites")
	})
	b.Run("corners=16/mode=scratch", func(b *testing.B) {
		var sites int
		for i := 0; i < b.N; i++ {
			for _, c := range corners {
				res, err := Verify(d, Options{Delays: AnalyticDelays{Params: c}})
				if err != nil {
					b.Fatal(err)
				}
				sites = len(res.MarginSurface.Sites)
			}
		}
		b.ReportMetric(float64(sites), "sites")
	})
}
