package tape

import (
	"testing"

	"scaldtv/internal/eval"
	"scaldtv/internal/gen"
	"scaldtv/internal/netlist"
)

func testDesign(t testing.TB, chips int) *netlist.Design {
	t.Helper()
	d, _, err := gen.Generate(gen.Config{Chips: chips})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return d
}

// TestCompileClassification checks the opcode and check-plan assignment and
// the level-span flattening against the design's own structure.
func TestCompileClassification(t *testing.T) {
	d := testDesign(t, 101)
	p, err := Compile(d)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if p.Lev != d.Levelization() {
		t.Errorf("program does not reuse the design's cached levelization")
	}
	if len(p.Ops) != len(d.Prims) || len(p.Plans) != len(d.Prims) {
		t.Fatalf("ops/plans sized %d/%d, want %d", len(p.Ops), len(p.Plans), len(d.Prims))
	}
	var checkers, tables, generic int
	for pi := range d.Prims {
		pr := &d.Prims[pi]
		switch p.Ops[pi] {
		case OpChecker:
			checkers++
			if !pr.Kind.IsChecker() {
				t.Errorf("prim %d: OpChecker on non-checker kind %v", pi, pr.Kind)
			}
			if p.Plans[pi] != PlanSite {
				t.Errorf("prim %d: checker plan %v, want PlanSite", pi, p.Plans[pi])
			}
		case OpTableGate:
			tables++
			if !eval.TableKind(pr.Kind) {
				t.Errorf("prim %d: OpTableGate on kind %v", pi, pr.Kind)
			}
		case OpGeneric:
			generic++
			if pr.Kind.IsChecker() || eval.TableKind(pr.Kind) {
				t.Errorf("prim %d: OpGeneric on kind %v", pi, pr.Kind)
			}
			if pr.Kind.IsStorage() && p.Plans[pi] != PlanStorage {
				t.Errorf("prim %d: storage plan %v, want PlanStorage", pi, p.Plans[pi])
			}
		}
	}
	if checkers == 0 || tables == 0 || generic == 0 {
		t.Errorf("degenerate classification: %d checkers, %d table gates, %d generic",
			checkers, tables, generic)
	}

	// The level spans must tile CompOrder and mirror the levelization.
	total := 0
	for li, span := range p.LevelSpan {
		if int(span[0]) != total {
			t.Fatalf("level %d starts at %d, want %d", li, span[0], total)
		}
		got := p.CompOrder[span[0]:span[1]]
		want := p.Lev.Levels[li]
		if len(got) != len(want) {
			t.Fatalf("level %d span holds %d comps, want %d", li, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("level %d comp %d: span %d, levelization %d", li, i, got[i], want[i])
			}
		}
		total += len(got)
	}
	if total != len(p.CompOrder) {
		t.Fatalf("spans cover %d of %d comps", total, len(p.CompOrder))
	}

	// The flat connection table must mirror every primitive's input bits
	// in evaluation-key order.
	for pi := range d.Prims {
		span := p.ConnSpan[pi]
		k := int(span[0])
		for _, port := range d.Prims[pi].In {
			for _, c := range port.Bits {
				if k >= int(span[1]) || p.ConnNet[k] != c.Net || p.ConnDirs[k] != c.Directives {
					t.Fatalf("prim %d: flat conn table diverges at index %d", pi, k)
				}
				k++
			}
		}
		if k != int(span[1]) {
			t.Fatalf("prim %d: span [%d,%d) but %d conns", pi, span[0], span[1], k-int(span[0]))
		}
	}
}

// TestSeeds checks the seed image: one interned handle per net, pinning
// only on clock-asserted nets, and assertion nets listed in order.
func TestSeeds(t *testing.T) {
	d := testDesign(t, 101)
	p, err := Compile(d)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	s := p.Seeds()
	if len(s.Initial) != len(d.Nets) || len(s.InitialID) != len(d.Nets) || len(s.Pinned) != len(d.Nets) {
		t.Fatalf("seed tables sized %d/%d/%d, want %d",
			len(s.Initial), len(s.InitialID), len(s.Pinned), len(d.Nets))
	}
	for i := range s.Initial {
		w, id := p.Intern.Intern(s.Initial[i])
		if id != s.InitialID[i] {
			t.Fatalf("net %d: seed handle %d, re-intern gives %d", i, s.InitialID[i], id)
		}
		_ = w
	}
	last := netlist.NetID(-1)
	for _, id := range s.AssertNets {
		if id <= last {
			t.Fatalf("AssertNets not strictly ascending at %d", id)
		}
		last = id
		if d.Nets[id].Assert == nil {
			t.Fatalf("net %d listed in AssertNets without an assertion", id)
		}
	}
}

// TestForWarmPathNoAlloc pins the contract the verifier relies on: after
// the first compile, obtaining the program again allocates nothing.
func TestForWarmPathNoAlloc(t *testing.T) {
	d := testDesign(t, 101)
	first, err := For(d)
	if err != nil {
		t.Fatalf("for: %v", err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		p, err := For(d)
		if err != nil || p != first {
			t.Fatalf("warm For: p=%p err=%v", p, err)
		}
	}); allocs != 0 {
		t.Errorf("warm For allocates %.1f objects per call, want 0", allocs)
	}
}

// TestRefreshGeneration checks the environment-generation guard: an
// unchanged design keeps the seed image and warm-slot table, an in-place
// numeric edit swaps in fresh ones (the old slots were computed under the
// old parameters), and the edit is reflected in the reseeded image.
func TestRefreshGeneration(t *testing.T) {
	d := testDesign(t, 101)
	p, err := For(d)
	if err != nil {
		t.Fatalf("for: %v", err)
	}
	seeds0, slots0 := p.Seeds(), p.Slots()
	if err := p.Refresh(d); err != nil {
		t.Fatalf("refresh: %v", err)
	}
	if p.Seeds() != seeds0 || p.Slots() != slots0 {
		t.Fatalf("refresh of an unchanged design swapped the seed image or slot table")
	}

	// An in-place numeric edit on any evaluated primitive.
	edited := -1
	for pi := range d.Prims {
		if !d.Prims[pi].Kind.IsChecker() {
			edited = pi
			break
		}
	}
	d.Prims[edited].Delay.Min++
	d.Prims[edited].Delay.Max++
	if err := p.Refresh(d); err != nil {
		t.Fatalf("refresh after edit: %v", err)
	}
	if p.Seeds() == seeds0 {
		t.Errorf("numeric edit did not rebuild the seed image")
	}
	if p.Slots() == slots0 {
		t.Errorf("numeric edit did not discard the warm slot table")
	}

	seeds1, slots1 := p.Seeds(), p.Slots()
	if err := p.Refresh(d); err != nil {
		t.Fatalf("second refresh: %v", err)
	}
	if p.Seeds() != seeds1 || p.Slots() != slots1 {
		t.Errorf("refresh after a no-op swapped the rebuilt image again")
	}
}

// TestNegCache exercises the striped membership set.
func TestNegCache(t *testing.T) {
	c := NewNegCache()
	keys := make([][]byte, 64)
	for i := range keys {
		keys[i] = []byte{byte(i), byte(i >> 2), 0xA5, byte(i * 7)}
	}
	for _, k := range keys {
		if c.Known(k) {
			t.Fatalf("empty cache knows %x", k)
		}
	}
	for _, k := range keys {
		c.Add(k)
	}
	for _, k := range keys {
		if !c.Known(k) {
			t.Fatalf("added key %x unknown", k)
		}
	}
	hits, misses, entries := c.Stats()
	if hits != len(keys) || misses != len(keys) || entries != len(keys) {
		t.Errorf("stats = %d/%d/%d, want %d/%d/%d",
			hits, misses, entries, len(keys), len(keys), len(keys))
	}
}
