package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"scaldtv"
	"scaldtv/internal/store"
)

// lineWriter forwards each Write to a channel so the test can wait for
// watch output deterministically instead of sleeping.
type lineWriter struct{ ch chan string }

func (w *lineWriter) Write(p []byte) (int, error) {
	w.ch <- string(p)
	return len(p), nil
}

const watchV1 = `design WATCHED
period 50ns
clockunit 1ns
defaultwire 0ns 0ns
buf "B1" delay=(1,2) ("IN .S5-45") -> (MID)
reg "R1" delay=(1,3) ("CK .P40-45", MID) -> (Q)
setuphold "CHK" setup=2.5 hold=1.5 (MID, "CK .P40-45")
`

// TestWatchIncremental drives watch through three saves: the initial
// full verification, a delay edit (parameter-only, must reverify
// incrementally) and an added instance (structural, must fall back to a
// full run).
func TestWatchIncremental(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.scald")
	write := func(text string, mod time.Time) {
		t.Helper()
		if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Chtimes(path, mod, mod); err != nil {
			t.Fatal(err)
		}
	}
	base := time.Now()
	write(watchV1, base)

	out := &lineWriter{ch: make(chan string, 16)}
	done := make(chan error, 1)
	go func() {
		done <- watch(path, false, scaldtv.Options{Workers: 1}, nil, out, 2*time.Millisecond, 3)
	}()
	next := func(what string) string {
		t.Helper()
		select {
		case line := <-out.ch:
			return line
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out waiting for %s", what)
			return ""
		}
	}

	if line := next("initial pass"); !strings.Contains(line, "(full)") {
		t.Fatalf("initial pass not a full run: %q", line)
	}

	// Parameter-only edit: B1 slows down.
	write(strings.Replace(watchV1, `"B1" delay=(1,2)`, `"B1" delay=(1,4)`, 1), base.Add(time.Second))
	if line := next("incremental pass"); !strings.Contains(line, "incremental") {
		t.Fatalf("delay edit did not reverify incrementally: %q", line)
	}

	// Structural edit: a new instance appears.
	write(strings.Replace(watchV1, `"B1" delay=(1,2)`, `"B1" delay=(1,4)`, 1)+
		"buf \"B2\" delay=(1,2) (Q) -> (Q2)\n", base.Add(2*time.Second))
	if line := next("structural pass"); !strings.Contains(line, "(full)") {
		t.Fatalf("structural edit did not fall back to a full run: %q", line)
	}

	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestWatchCompileError checks that a broken save is reported without
// ending the watch, and that the next good save still reverifies.
func TestWatchCompileError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.scald")
	base := time.Now()
	if err := os.WriteFile(path, []byte(watchV1), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path, base, base); err != nil {
		t.Fatal(err)
	}

	out := &lineWriter{ch: make(chan string, 16)}
	done := make(chan error, 1)
	go func() {
		done <- watch(path, false, scaldtv.Options{Workers: 1}, nil, out, 2*time.Millisecond, 2)
	}()
	next := func() string {
		select {
		case line := <-out.ch:
			return line
		case <-time.After(10 * time.Second):
			t.Fatal("timed out waiting for watch output")
			return ""
		}
	}
	if line := next(); !strings.Contains(line, "(full)") {
		t.Fatalf("initial pass not a full run: %q", line)
	}

	if err := os.WriteFile(path, []byte("design BROKEN\nnot valid hdl\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path, base.Add(time.Second), base.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if line := next(); !strings.Contains(line, "watch:") || strings.Contains(line, "violation(s)") {
		t.Fatalf("broken save not reported as an error: %q", line)
	}

	fixed := strings.Replace(watchV1, "setup=2.5", "setup=3.5", 1)
	if err := os.WriteFile(path, []byte(fixed), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path, base.Add(2*time.Second), base.Add(2*time.Second)); err != nil {
		t.Fatal(err)
	}
	if line := next(); !strings.Contains(line, "incremental") {
		t.Fatalf("save after a broken one did not reverify incrementally: %q", line)
	}

	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestWatchSameTimestampEdit is the missed-edit regression test: an
// editor that rewrites the file with equal-length content within one
// filesystem timestamp tick (same mtime, same size) must still trigger
// a re-verification.  The old (mtime, size) change detector missed this
// save forever; content hashing catches it.
func TestWatchSameTimestampEdit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.scald")
	base := time.Now()
	write := func(text string) {
		t.Helper()
		if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
		// Pin the identical timestamp on both revisions.
		if err := os.Chtimes(path, base, base); err != nil {
			t.Fatal(err)
		}
	}
	write(watchV1)

	out := &lineWriter{ch: make(chan string, 16)}
	done := make(chan error, 1)
	go func() {
		done <- watch(path, false, scaldtv.Options{Workers: 1}, nil, out, 2*time.Millisecond, 2)
	}()
	next := func(what string) string {
		t.Helper()
		select {
		case line := <-out.ch:
			return line
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out waiting for %s", what)
			return ""
		}
	}
	if line := next("initial pass"); !strings.Contains(line, "(full)") {
		t.Fatalf("initial pass not a full run: %q", line)
	}

	// Same byte length, same pinned mtime: only the content differs.
	edited := strings.Replace(watchV1, "setup=2.5", "setup=3.5", 1)
	if len(edited) != len(watchV1) {
		t.Fatal("fixture edit is not length-preserving")
	}
	write(edited)
	if line := next("same-timestamp edit"); !strings.Contains(line, "incremental") {
		t.Fatalf("equal-length same-mtime save was missed or not incremental: %q", line)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestWatchStorePersistence: with -store, the watch fixed point survives
// a restart — the second watch's first pass is answered from the store,
// and an edit after the restart still reverifies incrementally (warm).
func TestWatchStorePersistence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "d.scald")
	if err := os.WriteFile(path, []byte(watchV1), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(filepath.Join(dir, "cache"), 0)
	if err != nil {
		t.Fatal(err)
	}
	opts := scaldtv.Options{Workers: 1}

	run := func(maxUpdates int) chan string {
		out := &lineWriter{ch: make(chan string, 16)}
		done := make(chan error, 1)
		go func() {
			done <- watch(path, false, opts, st, out, 2*time.Millisecond, maxUpdates)
		}()
		t.Cleanup(func() {
			if err := <-done; err != nil {
				t.Error(err)
			}
		})
		return out.ch
	}
	next := func(ch chan string, what string) string {
		t.Helper()
		select {
		case line := <-ch:
			return line
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out waiting for %s", what)
			return ""
		}
	}

	ch1 := run(1)
	if line := next(ch1, "first watch"); !strings.Contains(line, "(full)") {
		t.Fatalf("first-ever pass not a full run: %q", line)
	}

	// "Restart": a fresh watch over the same store answers from it.
	ch2 := run(2)
	if line := next(ch2, "restarted watch"); !strings.Contains(line, "(cached)") {
		t.Fatalf("restarted watch did not hit the store: %q", line)
	}
	edited := strings.Replace(watchV1, `"B1" delay=(1,2)`, `"B1" delay=(1,4)`, 1)
	if err := os.WriteFile(path, []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}
	if line := next(ch2, "post-restart edit"); !strings.Contains(line, "incremental") {
		t.Fatalf("edit after restart did not reverify incrementally: %q", line)
	}

	// A third watch over the edited design is again a store hit.
	ch3 := run(1)
	if line := next(ch3, "second restart"); !strings.Contains(line, "(cached)") {
		t.Fatalf("second restart did not hit the store: %q", line)
	}
}

// TestWatchMissingFile: a path that never existed is an immediate error.
func TestWatchMissingFile(t *testing.T) {
	err := watch(filepath.Join(t.TempDir(), "absent.scald"), false, scaldtv.Options{}, nil, os.Stderr, time.Millisecond, 1)
	if err == nil {
		t.Fatal("watch of a missing file did not fail")
	}
}
