package scaldtv

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestJSONReportByteDeterminism locks the contract the scaldtvd service
// depends on: the JSON report is byte-identical for every combination of
// case workers, intra-case workers, cache setting and evaluation engine
// (compiled tape or interpreter), for every example design.  (The report
// deliberately carries no event or timing counters, which are
// schedule-dependent.)
func TestJSONReportByteDeterminism(t *testing.T) {
	designs, err := filepath.Glob(filepath.Join("examples", "*", "*.scald"))
	if err != nil {
		t.Fatal(err)
	}
	if len(designs) == 0 {
		t.Fatal("no .scald designs under examples/")
	}
	for _, path := range designs {
		name := strings.TrimSuffix(filepath.Base(path), ".scald")
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			text := string(src) + "\n" + Library
			var baseline []byte
			for _, cfg := range []Options{
				{Workers: 1},
				{Workers: 2},
				{Workers: 8},
				{Workers: 1, IntraWorkers: 2},
				{Workers: 2, IntraWorkers: 4},
				{Workers: 1, NoCache: true},
				{Workers: 1, NoTape: true},
				{Workers: 2, IntraWorkers: 4, NoTape: true},
				{Workers: 8, IntraWorkers: 8, NoTape: true},
			} {
				res, err := VerifySource(text, cfg)
				if err != nil {
					t.Fatal(err)
				}
				out, err := JSONReport(res)
				if err != nil {
					t.Fatal(err)
				}
				if baseline == nil {
					baseline = out
					if !bytes.Contains(out, []byte(`"schema": 1`)) {
						t.Fatalf("report missing schema version:\n%s", out)
					}
					continue
				}
				if !bytes.Equal(out, baseline) {
					t.Errorf("JSON for %+v differs from Workers=1 baseline\n--- got ---\n%s\n--- want ---\n%s",
						cfg, out, baseline)
				}
			}
		})
	}
}

// TestExploreJSONByteDeterminism extends the byte-determinism contract
// to the two report sections this schema version added: the case
// exploration (candidate ranking, chosen splits and minimal case set)
// and the statistical delay analysis.  Exploration probes reuse the
// engine's retained fixed point and the statistical pass integrates on
// a fixed grid, so neither may depend on worker counts, the cache, or
// the choice of tape versus interpreter.
func TestExploreJSONByteDeterminism(t *testing.T) {
	subjects := []struct {
		name    string
		example string
		opts    Options
	}{
		{"explore-caseanalysis", "caseanalysis", Options{Explore: true}},
		{"explore-hazard", "hazard", Options{Explore: true}},
		{"statistical-selftimed", "selftimed", Options{Delays: DelayStatistical}},
	}
	for _, sub := range subjects {
		t.Run(sub.name, func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join("examples", sub.example, sub.example+".scald"))
			if err != nil {
				t.Fatal(err)
			}
			text := string(src) + "\n" + Library
			var baseline []byte
			for _, cfg := range []Options{
				{Workers: 1},
				{Workers: 2},
				{Workers: 8},
				{Workers: 1, IntraWorkers: 2},
				{Workers: 2, IntraWorkers: 4},
				{Workers: 8, IntraWorkers: 8},
				{Workers: 1, NoCache: true},
				{Workers: 1, NoTape: true},
				{Workers: 8, IntraWorkers: 8, NoTape: true},
			} {
				cfg.Explore = sub.opts.Explore
				cfg.Delays = sub.opts.Delays
				res, err := VerifySource(text, cfg)
				if err != nil {
					t.Fatal(err)
				}
				out, err := JSONReport(res)
				if err != nil {
					t.Fatal(err)
				}
				if baseline == nil {
					baseline = out
					if !bytes.Contains(out, []byte(`"schema": 1`)) {
						t.Fatalf("report missing schema version:\n%s", out)
					}
					want := []byte(`"exploration"`)
					if sub.opts.Delays == DelayStatistical {
						want = []byte(`"delay_model": "statistical"`)
					}
					if !bytes.Contains(out, want) {
						t.Fatalf("report missing %s section:\n%s", want, out)
					}
					continue
				}
				if !bytes.Equal(out, baseline) {
					t.Errorf("JSON for %+v differs from Workers=1 baseline\n--- got ---\n%s\n--- want ---\n%s",
						cfg, out, baseline)
				}
			}
		})
	}
}
