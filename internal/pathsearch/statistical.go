package pathsearch

import (
	"fmt"
	"math"
	"sort"

	"scaldtv/internal/netlist"
	"scaldtv/internal/tick"
)

// Statistical (probability-based) path analysis in the style of DIGSIM
// (§1.4.1.2, §4.2.4 — the paper's future-work direction).  Each component
// delay becomes a normal distribution whose 3σ limits are the data-sheet
// minimum and maximum: mean = (min+max)/2, σ = (max−min)/6.  Along a path,
// means add; with uncorrelated components the variances add (σ grows as
// √n), so a long path's statistical worst case is far better than the sum
// of the maxima — the reason a "real design usually could be made to run
// faster than the minimum/maximum system will predict" (§1.4.1.1).
//
// With Correlated set, every component is assumed to track together (the
// same-production-run scenario of §4.2.4): sigmas add linearly and the
// 3σ arrival degenerates to the worst-case sum — the paper's argument for
// why min/max analysis "may therefore be the best" when correlations are
// unknown.

// StatOptions tunes the statistical analysis.
type StatOptions struct {
	// Correlated assumes all component delays track together (sigmas add
	// linearly) instead of being independent (variances add).
	Correlated bool
}

// StatEndpoint is one start→end path summary with a distribution.
type StatEndpoint struct {
	From  string
	To    string
	Mean  tick.Time
	Sigma float64 // picoseconds
}

// Arrival returns the mean + k·σ arrival time.
func (e StatEndpoint) Arrival(k float64) tick.Time {
	return e.Mean + tick.Time(math.Round(k*e.Sigma))
}

// StatAnalysis is the result of a statistical path search.
type StatAnalysis struct {
	Endpoints []StatEndpoint
	CombLoops []string
	Opts      StatOptions
}

// AnalyzeStatistical runs the probability-based analysis over the same
// path graph as Analyze.
func AnalyzeStatistical(d *netlist.Design, opts StatOptions) (*StatAnalysis, error) {
	g := buildGraph(d)
	a := &StatAnalysis{CombLoops: g.loops, Opts: opts}
	n := len(d.Nets)

	// Per-start longest-path DP over (mean, spread).  Reconvergent paths
	// are resolved by keeping the statistically-latest one (largest
	// mean + 3σ) — the standard approximation for the max of normals.
	type dist struct {
		mean   tick.Time
		spread float64 // σ if correlated is false is tracked via variance below
		varr   float64
		set    bool
	}
	sigmaOf := func(ds dist) float64 {
		if opts.Correlated {
			return ds.spread
		}
		return math.Sqrt(ds.varr)
	}
	arr := make([]dist, n)
	for _, s := range g.starts {
		for i := range arr {
			arr[i] = dist{}
		}
		arr[s] = dist{set: true}
		for _, u := range g.order {
			if !arr[u].set {
				continue
			}
			for _, e := range g.adj[u] {
				mean := arr[u].mean + (e.min+e.max)/2
				sg := float64(e.max-e.min) / 6
				cand := dist{
					mean:   mean,
					spread: arr[u].spread + sg,
					varr:   arr[u].varr + sg*sg,
					set:    true,
				}
				cur := arr[e.to]
				if !cur.set ||
					float64(cand.mean)+3*sigmaOf(cand) > float64(cur.mean)+3*sigmaOf(cur) {
					arr[e.to] = cand
				}
			}
		}
		for net, pins := range g.ends {
			if !arr[net].set {
				continue
			}
			for _, pin := range pins {
				wMean := (pin.wire.Min + pin.wire.Max) / 2
				wSigma := float64(pin.wire.Width()) / 6
				ep := StatEndpoint{
					From: d.Nets[s].Name,
					To:   pin.label,
					Mean: arr[net].mean + wMean,
				}
				if opts.Correlated {
					ep.Sigma = arr[net].spread + wSigma
				} else {
					ep.Sigma = math.Sqrt(arr[net].varr + wSigma*wSigma)
				}
				a.Endpoints = append(a.Endpoints, ep)
			}
		}
	}
	sort.Slice(a.Endpoints, func(i, j int) bool {
		ai, aj := a.Endpoints[i].Arrival(3), a.Endpoints[j].Arrival(3)
		if ai != aj {
			return ai > aj
		}
		if a.Endpoints[i].From != a.Endpoints[j].From {
			return a.Endpoints[i].From < a.Endpoints[j].From
		}
		return a.Endpoints[i].To < a.Endpoints[j].To
	})
	return a, nil
}

// Errors returns the endpoints whose k-sigma arrival exceeds the budget.
func (a *StatAnalysis) Errors(budget tick.Time, k float64) []StatEndpoint {
	var out []StatEndpoint
	for _, e := range a.Endpoints {
		if e.Arrival(k) > budget {
			out = append(out, e)
		}
	}
	return out
}

// String renders the statistical critical-path table.
func (a *StatAnalysis) String() string {
	mode := "uncorrelated (RSS)"
	if a.Opts.Correlated {
		mode = "fully correlated"
	}
	s := fmt.Sprintf("STATISTICAL PATHS (probability-based, %s, 3σ shown)\n\n", mode)
	for i, e := range a.Endpoints {
		if i >= 20 {
			s += fmt.Sprintf("  … %d more\n", len(a.Endpoints)-i)
			break
		}
		s += fmt.Sprintf("  %-30s → %-34s mean %8s  3σ %8s ns\n",
			e.From, e.To, e.Mean, e.Arrival(3))
	}
	return s
}
