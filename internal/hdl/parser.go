package hdl

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"scaldtv/internal/serr"
	"scaldtv/internal/tick"
)

// PrimKinds lists the primitive instance keywords the language accepts.
var PrimKinds = map[string]bool{
	"and": true, "or": true, "nand": true, "nor": true, "xor": true,
	"not": true, "buf": true, "chg": true,
	"mux2": true, "mux4": true, "mux8": true,
	"reg": true, "regrs": true, "latch": true, "latchrs": true,
	"setuphold": true, "setupriseholdfall": true, "minpulse": true,
}

var propKeys = map[string]bool{
	"delay": true, "seldelay": true, "delayrf": true,
	"setup": true, "hold": true, "high": true, "low": true,
}

// Parser is a recursive-descent parser for the HDL.
type Parser struct {
	lex *Lexer
	tok Token
}

// Parse parses a complete source file.  Errors are structured
// *serr.Error values of kind serr.Parse carrying the source position.
func Parse(src string) (*File, error) {
	p := &Parser{lex: NewLexer(src)}
	if err := p.next(); err != nil {
		return nil, serr.Wrap(serr.Parse, err)
	}
	f, err := p.parseFile()
	if err != nil {
		return nil, serr.Wrap(serr.Parse, err)
	}
	return f, nil
}

func (p *Parser) next() error {
	t, err := p.lex.Next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *Parser) errf(format string, args ...any) error {
	return serr.New(serr.Parse, serr.Pos{Line: p.tok.Line, Col: p.tok.Col},
		"hdl:%d:%d: %s", p.tok.Line, p.tok.Col, fmt.Sprintf(format, args...))
}

func (p *Parser) isPunct(s string) bool { return p.tok.Kind == TPunct && p.tok.Text == s }

func (p *Parser) expectPunct(s string) error {
	if !p.isPunct(s) {
		return p.errf("expected %q, found %s", s, p.tok)
	}
	return p.next()
}

func (p *Parser) isKeyword(kw string) bool {
	return p.tok.Kind == TIdent && strings.ToLower(p.tok.Text) == kw
}

// name accepts an identifier or quoted string as a name.
func (p *Parser) name() (string, error) {
	if p.tok.Kind != TIdent && p.tok.Kind != TString {
		return "", p.errf("expected a name, found %s", p.tok)
	}
	s := p.tok.Text
	return s, p.next()
}

// parseTime reads an optionally-negated time literal ("2.5", "50ns").
func (p *Parser) parseTime() (tick.Time, error) {
	neg := false
	if p.isPunct("-") {
		neg = true
		if err := p.next(); err != nil {
			return 0, err
		}
	}
	if p.tok.Kind != TNumber {
		return 0, p.errf("expected a time literal, found %s", p.tok)
	}
	t, err := tick.Parse(p.tok.Text)
	if err != nil {
		return 0, p.errf("%v", err)
	}
	if neg {
		t = -t
	}
	return t, p.next()
}

func (p *Parser) parseRangePair() (tick.Range, error) {
	lo, err := p.parseTime()
	if err != nil {
		return tick.Range{}, err
	}
	hi, err := p.parseTime()
	if err != nil {
		return tick.Range{}, err
	}
	r := tick.Range{Min: lo, Max: hi}
	if !r.Valid() {
		return r, p.errf("inverted range %s", r)
	}
	return r, nil
}

// parseDelayPair reads "( t , t )".
func (p *Parser) parseDelayPair() (tick.Range, error) {
	if err := p.expectPunct("("); err != nil {
		return tick.Range{}, err
	}
	lo, err := p.parseTime()
	if err != nil {
		return tick.Range{}, err
	}
	if err := p.expectPunct(","); err != nil {
		return tick.Range{}, err
	}
	hi, err := p.parseTime()
	if err != nil {
		return tick.Range{}, err
	}
	if err := p.expectPunct(")"); err != nil {
		return tick.Range{}, err
	}
	r := tick.Range{Min: lo, Max: hi}
	if !r.Valid() {
		return r, p.errf("inverted delay range %s", r)
	}
	return r, nil
}

// parseFloat reads an optionally-negated bare real number.
func (p *Parser) parseFloat() (float64, error) {
	neg := false
	if p.isPunct("-") {
		neg = true
		if err := p.next(); err != nil {
			return 0, err
		}
	}
	if p.tok.Kind != TNumber {
		return 0, p.errf("expected a number, found %s", p.tok)
	}
	v, err := strconv.ParseFloat(p.tok.Text, 64)
	if err != nil {
		return 0, p.errf("invalid number %q", p.tok.Text)
	}
	if neg {
		v = -v
	}
	return v, p.next()
}

// numberNS reads the current number token as nanoseconds: bare numbers
// are nanoseconds (the language's customary delay unit), and unit
// suffixes are accepted as in parseTime.
func (p *Parser) numberNS() (float64, error) {
	if v, err := strconv.ParseFloat(p.tok.Text, 64); err == nil {
		return v, p.next()
	}
	t, err := tick.Parse(p.tok.Text)
	if err != nil {
		return 0, p.errf("%v", err)
	}
	return float64(t) / 1000, p.next()
}

// parseDExpr parses one side of a delay expression: an affine sum of
// terms, each a number, a parameter name, or a number*parameter product
// in either order ("0.8 + 0.3*load - temp*0.01").
func (p *Parser) parseDExpr() (DExpr, error) {
	var e DExpr
	neg := false
	if p.isPunct("-") {
		neg = true
		if err := p.next(); err != nil {
			return e, err
		}
	}
	for {
		if err := p.parseDTerm(&e, neg); err != nil {
			return e, err
		}
		if p.isPunct("+") {
			neg = false
		} else if p.isPunct("-") {
			neg = true
		} else {
			return e, nil
		}
		if err := p.next(); err != nil {
			return e, err
		}
	}
}

func (p *Parser) parseDTerm(e *DExpr, neg bool) error {
	sign := 1.0
	if neg {
		sign = -1
	}
	switch {
	case p.tok.Kind == TNumber:
		ns, err := p.numberNS()
		if err != nil {
			return err
		}
		if p.isPunct("*") {
			if err := p.next(); err != nil {
				return err
			}
			if p.tok.Kind != TIdent {
				return p.errf("expected a parameter name after *, found %s", p.tok)
			}
			e.Terms = append(e.Terms, DTerm{Param: p.tok.Text, NS: sign * ns})
			return p.next()
		}
		e.ConstNS += sign * ns
		return nil
	case p.tok.Kind == TIdent:
		name := p.tok.Text
		if err := p.next(); err != nil {
			return err
		}
		ns := 1.0 // a bare parameter contributes 1 ns per unit
		if p.isPunct("*") {
			if err := p.next(); err != nil {
				return err
			}
			if p.tok.Kind != TNumber {
				return p.errf("expected a number after *, found %s", p.tok)
			}
			v, err := p.numberNS()
			if err != nil {
				return err
			}
			ns = v
		}
		e.Terms = append(e.Terms, DTerm{Param: name, NS: sign * ns})
		return nil
	}
	return p.errf("expected a delay term, found %s", p.tok)
}

// parseDelayExprPair reads "( dexpr , dexpr )"; pure-constant pairs are
// the classic delay=(min,max) form.
func (p *Parser) parseDelayExprPair() (DExpr, DExpr, error) {
	if err := p.expectPunct("("); err != nil {
		return DExpr{}, DExpr{}, err
	}
	mn, err := p.parseDExpr()
	if err != nil {
		return mn, DExpr{}, err
	}
	if err := p.expectPunct(","); err != nil {
		return mn, DExpr{}, err
	}
	mx, err := p.parseDExpr()
	if err != nil {
		return mn, mx, err
	}
	if err := p.expectPunct(")"); err != nil {
		return mn, mx, err
	}
	return mn, mx, nil
}

// parseDelayQuad reads "( rmin , rmax , fmin , fmax )" for the
// direction-dependent delays of §4.2.2.
func (p *Parser) parseDelayQuad() (tick.Range, tick.Range, error) {
	if err := p.expectPunct("("); err != nil {
		return tick.Range{}, tick.Range{}, err
	}
	var ts [4]tick.Time
	for i := 0; i < 4; i++ {
		t, err := p.parseTime()
		if err != nil {
			return tick.Range{}, tick.Range{}, err
		}
		ts[i] = t
		if i < 3 {
			if err := p.expectPunct(","); err != nil {
				return tick.Range{}, tick.Range{}, err
			}
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return tick.Range{}, tick.Range{}, err
	}
	rise := tick.Range{Min: ts[0], Max: ts[1]}
	fall := tick.Range{Min: ts[2], Max: ts[3]}
	if !rise.Valid() || !fall.Valid() {
		return rise, fall, p.errf("inverted rise/fall delay range")
	}
	return rise, fall, nil
}

func (p *Parser) parseFile() (*File, error) {
	f := &File{}
	for p.tok.Kind != TEOF {
		if p.tok.Kind != TIdent {
			return nil, p.errf("expected a statement, found %s", p.tok)
		}
		kw := strings.ToLower(p.tok.Text)
		switch {
		case kw == "design":
			if err := p.next(); err != nil {
				return nil, err
			}
			n, err := p.name()
			if err != nil {
				return nil, err
			}
			f.Design = n
			if err := p.semicolon(); err != nil {
				return nil, err
			}
		case kw == "period", kw == "clockunit":
			if err := p.next(); err != nil {
				return nil, err
			}
			t, err := p.parseTime()
			if err != nil {
				return nil, err
			}
			if kw == "period" {
				f.Period = t
			} else {
				f.ClockUnit = t
			}
			if err := p.semicolon(); err != nil {
				return nil, err
			}
		case kw == "defaultwire":
			if err := p.next(); err != nil {
				return nil, err
			}
			r, err := p.parseRangePair()
			if err != nil {
				return nil, err
			}
			f.HasWire, f.Wire = true, r
			if err := p.semicolon(); err != nil {
				return nil, err
			}
		case kw == "skew":
			if err := p.next(); err != nil {
				return nil, err
			}
			which := strings.ToLower(p.tok.Text)
			if p.tok.Kind != TIdent || (which != "precision" && which != "clock") {
				return nil, p.errf("skew must name precision or clock, found %s", p.tok)
			}
			if err := p.next(); err != nil {
				return nil, err
			}
			r, err := p.parseRangePair()
			if err != nil {
				return nil, err
			}
			if which == "precision" {
				f.HasPSkew, f.PSkew = true, r
			} else {
				f.HasCSkew, f.CSkew = true, r
			}
			if err := p.semicolon(); err != nil {
				return nil, err
			}
		case kw == "param":
			line := p.tok.Line
			if err := p.next(); err != nil {
				return nil, err
			}
			n, err := p.name()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("="); err != nil {
				return nil, err
			}
			def, err := p.parseFloat()
			if err != nil {
				return nil, err
			}
			pd := ParamDecl{Name: n, Default: def, Line: line}
			if p.isKeyword("range") {
				if err := p.next(); err != nil {
					return nil, err
				}
				if pd.Lo, err = p.parseFloat(); err != nil {
					return nil, err
				}
				if pd.Hi, err = p.parseFloat(); err != nil {
					return nil, err
				}
				pd.HasRange = true
			}
			f.Params = append(f.Params, pd)
			if err := p.semicolon(); err != nil {
				return nil, err
			}
		case kw == "wiredor":
			if err := p.next(); err != nil {
				return nil, err
			}
			f.WiredOr = true
			if err := p.semicolon(); err != nil {
				return nil, err
			}
		case kw == "macro":
			m, err := p.parseMacro()
			if err != nil {
				return nil, err
			}
			f.Macros = append(f.Macros, m)
		case kw == "signal":
			if err := p.next(); err != nil {
				return nil, err
			}
			n, err := p.name()
			if err != nil {
				return nil, err
			}
			sd := SignalDecl{Name: n}
			if p.isPunct("<") {
				lo, hi, err := p.parseBitRange()
				if err != nil {
					return nil, err
				}
				sd.HasRange, sd.Lo, sd.Hi = true, lo, hi
			}
			f.Signals = append(f.Signals, sd)
			if err := p.semicolon(); err != nil {
				return nil, err
			}
		case kw == "wire":
			if err := p.next(); err != nil {
				return nil, err
			}
			n, err := p.name()
			if err != nil {
				return nil, err
			}
			r, err := p.parseRangePair()
			if err != nil {
				return nil, err
			}
			f.Wires = append(f.Wires, WireDecl{Name: n, Delay: r})
			if err := p.semicolon(); err != nil {
				return nil, err
			}
		case kw == "case":
			c, err := p.parseCase()
			if err != nil {
				return nil, err
			}
			f.Cases = append(f.Cases, c)
		case kw == "use" || PrimKinds[kw]:
			inst, err := p.parseInstance()
			if err != nil {
				return nil, err
			}
			f.Body = append(f.Body, inst)
		default:
			return nil, p.errf("unknown statement %q", p.tok.Text)
		}
	}
	return f, nil
}

func (p *Parser) semicolon() error {
	// Statements are newline-agnostic; the single terminator is ','.
	// (The lexer strips ';' comments, so ',' doubles as the statement
	// separator in this grammar.)
	if p.isPunct(",") {
		return p.next()
	}
	return nil
}

func (p *Parser) parseBitRange() (Expr, Expr, error) {
	if err := p.expectPunct("<"); err != nil {
		return nil, nil, err
	}
	lo, err := p.parseExpr()
	if err != nil {
		return nil, nil, err
	}
	hi := lo
	if p.isPunct(":") {
		if err := p.next(); err != nil {
			return nil, nil, err
		}
		hi, err = p.parseExpr()
		if err != nil {
			return nil, nil, err
		}
	}
	if err := p.expectPunct(">"); err != nil {
		return nil, nil, err
	}
	return lo, hi, nil
}

func (p *Parser) parseMacro() (*Macro, error) {
	m := &Macro{Line: p.tok.Line}
	if err := p.next(); err != nil { // consume "macro"
		return nil, err
	}
	n, err := p.name()
	if err != nil {
		return nil, err
	}
	m.Name = n
	if p.isPunct("(") {
		if err := p.next(); err != nil {
			return nil, err
		}
		for !p.isPunct(")") {
			if p.tok.Kind != TIdent {
				return nil, p.errf("expected a parameter name, found %s", p.tok)
			}
			m.Params = append(m.Params, p.tok.Text)
			if err := p.next(); err != nil {
				return nil, err
			}
			if p.isPunct(",") {
				if err := p.next(); err != nil {
					return nil, err
				}
			}
		}
		if err := p.next(); err != nil { // consume ")"
			return nil, err
		}
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	for !p.isPunct("}") {
		if p.tok.Kind != TIdent {
			return nil, p.errf("expected a macro body statement, found %s", p.tok)
		}
		kw := strings.ToLower(p.tok.Text)
		switch {
		case kw == "param" || kw == "local":
			if err := p.next(); err != nil {
				return nil, err
			}
			for {
				pn, err := p.name()
				if err != nil {
					return nil, err
				}
				pd := PortDecl{Name: pn}
				if p.isPunct("<") {
					lo, hi, err := p.parseBitRange()
					if err != nil {
						return nil, err
					}
					pd.HasRange, pd.Lo, pd.Hi = true, lo, hi
				}
				if kw == "param" {
					m.Ports = append(m.Ports, pd)
				} else {
					m.Locals = append(m.Locals, pd)
				}
				if !p.isPunct(",") {
					break
				}
				if err := p.next(); err != nil {
					return nil, err
				}
			}
		case kw == "use" || PrimKinds[kw]:
			inst, err := p.parseInstance()
			if err != nil {
				return nil, err
			}
			m.Body = append(m.Body, inst)
		default:
			return nil, p.errf("unknown macro body statement %q", p.tok.Text)
		}
	}
	return m, p.next() // consume "}"
}

func (p *Parser) parseCase() (CaseDecl, error) {
	var c CaseDecl
	if err := p.next(); err != nil { // consume "case"
		return c, err
	}
	var labels []string
	for {
		sig, err := p.name()
		if err != nil {
			return c, err
		}
		if err := p.expectPunct("="); err != nil {
			return c, err
		}
		if p.tok.Kind != TNumber || (p.tok.Text != "0" && p.tok.Text != "1") {
			return c, p.errf("case value must be 0 or 1, found %s", p.tok)
		}
		v, _ := strconv.Atoi(p.tok.Text)
		if err := p.next(); err != nil {
			return c, err
		}
		c.Assigns = append(c.Assigns, CaseAssign{Signal: sig, Value: v})
		labels = append(labels, fmt.Sprintf("%s = %d", sig, v))
		if !p.isPunct(",") {
			break
		}
		if err := p.next(); err != nil {
			return c, err
		}
	}
	c.Label = strings.Join(labels, ", ")
	return c, nil
}

func (p *Parser) parseInstance() (*Instance, error) {
	inst := &Instance{Kind: strings.ToLower(p.tok.Text), Line: p.tok.Line}
	if err := p.next(); err != nil {
		return nil, err
	}
	if inst.Kind == "use" {
		mn, err := p.name()
		if err != nil {
			return nil, err
		}
		inst.Macro = mn
	}
	// Optional instance label: a name not followed by '=' that is not a
	// property key and not the opening parenthesis.
	if (p.tok.Kind == TString) || (p.tok.Kind == TIdent && !propKeys[strings.ToLower(p.tok.Text)]) {
		label := p.tok.Text
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.isPunct("=") {
			// It was a value-parameter binding after all (use FOO SIZE=32).
			if inst.Kind != "use" {
				return nil, p.errf("unknown property %q", label)
			}
			if err := p.next(); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if inst.ParamVals == nil {
				inst.ParamVals = map[string]Expr{}
			}
			inst.ParamVals[label] = e
		} else {
			inst.Label = label
		}
	}
	// Properties and value parameters.
	for p.tok.Kind == TIdent {
		key := strings.ToLower(p.tok.Text)
		rawKey := p.tok.Text
		if err := p.next(); err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		switch key {
		case "delay":
			mn, mx, err := p.parseDelayExprPair()
			if err != nil {
				return nil, err
			}
			if mn.Constant() && mx.Constant() {
				r := tick.Range{Min: tick.Time(math.Round(mn.ConstNS * 1000)), Max: tick.Time(math.Round(mx.ConstNS * 1000))}
				if !r.Valid() {
					return nil, p.errf("inverted delay range %s", r)
				}
				inst.HasDelay, inst.Delay = true, r
			} else {
				inst.HasDelayExpr = true
				inst.DelayExprMin, inst.DelayExprMax = mn, mx
			}
		case "seldelay":
			r, err := p.parseDelayPair()
			if err != nil {
				return nil, err
			}
			inst.HasSelDelay, inst.SelDelay = true, r
		case "delayrf":
			rise, fall, err := p.parseDelayQuad()
			if err != nil {
				return nil, err
			}
			inst.HasRF, inst.Rise, inst.Fall = true, rise, fall
		case "setup", "hold", "high", "low":
			t, err := p.parseTime()
			if err != nil {
				return nil, err
			}
			switch key {
			case "setup":
				inst.Setup = t
			case "hold":
				inst.Hold = t
			case "high":
				inst.High = t
			case "low":
				inst.Low = t
			}
		default:
			if inst.Kind != "use" {
				return nil, p.errf("unknown property %q", rawKey)
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if inst.ParamVals == nil {
				inst.ParamVals = map[string]Expr{}
			}
			inst.ParamVals[rawKey] = e
		}
	}
	// Connections.
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	if inst.Kind == "use" {
		inst.Conns = map[string]*SigExpr{}
		for !p.isPunct(")") {
			if p.tok.Kind != TIdent {
				return nil, p.errf("expected a port name, found %s", p.tok)
			}
			port := p.tok.Text
			if err := p.next(); err != nil {
				return nil, err
			}
			if err := p.expectPunct("="); err != nil {
				return nil, err
			}
			se, err := p.parseSigExpr()
			if err != nil {
				return nil, err
			}
			if _, dup := inst.Conns[port]; dup {
				return nil, p.errf("port %q connected twice", port)
			}
			inst.Conns[port] = se
			if p.isPunct(",") {
				if err := p.next(); err != nil {
					return nil, err
				}
			}
		}
		if err := p.next(); err != nil { // ")"
			return nil, err
		}
	} else {
		for !p.isPunct(")") {
			se, err := p.parseSigExpr()
			if err != nil {
				return nil, err
			}
			inst.Ins = append(inst.Ins, se)
			if p.isPunct(",") {
				if err := p.next(); err != nil {
					return nil, err
				}
			}
		}
		if err := p.next(); err != nil { // ")"
			return nil, err
		}
		if p.isPunct("->") {
			if err := p.next(); err != nil {
				return nil, err
			}
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			for !p.isPunct(")") {
				se, err := p.parseSigExpr()
				if err != nil {
					return nil, err
				}
				inst.Outs = append(inst.Outs, se)
				if p.isPunct(",") {
					if err := p.next(); err != nil {
						return nil, err
					}
				}
			}
			if err := p.next(); err != nil {
				return nil, err
			}
		}
	}
	return inst, p.semicolon()
}

func (p *Parser) parseSigExpr() (*SigExpr, error) {
	se := &SigExpr{Line: p.tok.Line}
	if p.isPunct("-") {
		se.Invert = true
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	n, err := p.name()
	if err != nil {
		return nil, err
	}
	se.Name = n
	if p.isPunct("<") {
		lo, hi, err := p.parseBitRange()
		if err != nil {
			return nil, err
		}
		se.HasRange, se.Lo, se.Hi = true, lo, hi
	}
	if p.isPunct("&") {
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.tok.Kind != TIdent {
			return nil, p.errf("expected directive letters after &, found %s", p.tok)
		}
		se.Dirs = p.tok.Text
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	return se, nil
}

// parseExpr parses constant integer expressions over value parameters.
func (p *Parser) parseExpr() (Expr, error) {
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for p.isPunct("+") || p.isPunct("-") {
		op := p.tok.Text[0]
		if err := p.next(); err != nil {
			return nil, err
		}
		r, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseTerm() (Expr, error) {
	l, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for p.isPunct("*") || p.isPunct("/") {
		op := p.tok.Text[0]
		if err := p.next(); err != nil {
			return nil, err
		}
		r, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseFactor() (Expr, error) {
	switch {
	case p.tok.Kind == TNumber:
		v, err := strconv.Atoi(p.tok.Text)
		if err != nil {
			return nil, p.errf("vector bounds must be integers, found %q", p.tok.Text)
		}
		return NumExpr(v), p.next()
	case p.tok.Kind == TIdent:
		e := VarExpr(p.tok.Text)
		return e, p.next()
	case p.isPunct("("):
		if err := p.next(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return e, p.expectPunct(")")
	case p.isPunct("-"):
		if err := p.next(); err != nil {
			return nil, err
		}
		e, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return BinExpr{Op: '-', L: NumExpr(0), R: e}, nil
	}
	return nil, p.errf("expected an expression, found %s", p.tok)
}
