package tape

import (
	"math"
	"sort"
	"sync/atomic"

	"scaldtv/internal/assertion"
	"scaldtv/internal/eval"
	"scaldtv/internal/netlist"
	"scaldtv/internal/serr"
	"scaldtv/internal/tick"
	"scaldtv/internal/values"
)

// Compile lowers a design to its evaluation tape.  The design is fully
// validated (Design.Check) and levelized once here; warm runs then only
// re-validate numeric parameters (Refresh).  Compilation reuses the
// design's cached levelization when one exists and allocates nothing per
// subsequent run.
func Compile(d *netlist.Design) (*Program, error) {
	if err := d.Check(); err != nil {
		return nil, serr.Wrap(serr.Elaborate, err)
	}
	p := &Program{
		Lev:    d.Levelization(),
		Ops:    make([]Opcode, len(d.Prims)),
		Plans:  make([]CheckPlan, len(d.Prims)),
		Intern: values.NewInterner(),
		Evals:  eval.NewCache(),
		Sites:  NewNegCache(),
	}

	for pi := range d.Prims {
		pr := &d.Prims[pi]
		switch {
		case pr.Kind.IsChecker():
			p.Ops[pi] = OpChecker
			p.Plans[pi] = PlanSite
		case eval.TableKind(pr.Kind):
			p.Ops[pi] = OpTableGate
			p.Plans[pi] = gatePlan(pr)
		default:
			p.Ops[pi] = OpGeneric
			switch {
			case pr.Kind.IsStorage():
				p.Plans[pi] = PlanStorage
			default:
				p.Plans[pi] = gatePlan(pr)
			}
		}
	}

	// Flatten the levelization into the tape's level spans: CompOrder is
	// the level-major concatenation, LevelSpan the per-level index ranges.
	p.LevelSpan = make([][2]int32, len(p.Lev.Levels))
	total := 0
	for _, level := range p.Lev.Levels {
		total += len(level)
	}
	p.CompOrder = make([]int32, 0, total)
	for li, level := range p.Lev.Levels {
		start := int32(len(p.CompOrder))
		p.CompOrder = append(p.CompOrder, level...)
		p.LevelSpan[li] = [2]int32{start, int32(len(p.CompOrder))}
	}

	// Flatten every primitive's input connections into the SoA table the
	// warm-slot match scans: source net and pin directive override, in
	// evaluation-key order, with per-primitive spans.
	p.ConnSpan = make([][2]int32, len(d.Prims))
	for pi := range d.Prims {
		start := int32(len(p.ConnNet))
		for _, port := range d.Prims[pi].In {
			for _, c := range port.Bits {
				p.ConnNet = append(p.ConnNet, c.Net)
				p.ConnDirs = append(p.ConnDirs, c.Directives)
			}
		}
		p.ConnSpan[pi] = [2]int32{start, int32(len(p.ConnNet))}
	}

	// Wired-OR slots, mirroring the verifier's per-run construction: one
	// deterministic slot per (net, driver) pair, in driver order.
	if d.WiredOr {
		counts := map[netlist.NetID]int{}
		for pi := range d.Prims {
			for _, port := range d.Prims[pi].Out {
				for _, o := range port.Bits {
					counts[o]++
				}
			}
		}
		p.Wired = map[netlist.NetID][]netlist.PrimID{}
		p.WiredSlot = map[[2]int32]int{}
		for i := range d.Nets {
			n := netlist.NetID(i)
			if counts[n] <= 1 {
				continue
			}
			drivers := d.Drivers(n)
			p.Wired[n] = drivers
			for _, dp := range drivers {
				p.WiredSlot[[2]int32{int32(n), int32(dp)}] = len(p.WiredSlot)
			}
		}
	}

	seeds, err := buildSeeds(d, p.Intern)
	if err != nil {
		return nil, err
	}
	p.slots.Store(&SlotTable{s: make([]atomic.Pointer[Slot], len(d.Prims))})
	p.seeds.Store(seeds)
	return p, nil
}

// gatePlan classifies a (possibly generic) gate site: only multi-input
// gates can carry &A/&H stability directives worth checking.
func gatePlan(pr *netlist.Prim) CheckPlan {
	if pr.Kind.IsGate() && len(pr.In) > 1 {
		return PlanDirective
	}
	return PlanNone
}

// Refresh re-validates the design's numeric parameters and, iff the
// environment signature changed since the current image was built,
// rebuilds the seed image and discards the warm slot table (whose entries
// were computed under the old parameters).  The evaluation memo and site
// cache need no invalidation even then: their keys carry every live
// parameter, so entries from a previous environment are simply never hit
// again.
func (p *Program) Refresh(d *netlist.Design) error {
	if err := d.CheckParams(); err != nil {
		return serr.Wrap(serr.Elaborate, err)
	}
	sig := envSig(d)
	if s := p.seeds.Load(); s != nil && s.sig == sig {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if s := p.seeds.Load(); s != nil && s.sig == sig {
		return nil
	}
	seeds, err := buildSeeds(d, p.Intern)
	if err != nil {
		return err
	}
	// Swap the slot table before publishing the seeds: a racing reader can
	// only pair fresh (empty) slots with old seeds, which is merely slow,
	// never wrong.
	p.slots.Store(&SlotTable{s: make([]atomic.Pointer[Slot], len(d.Prims))})
	p.seeds.Store(seeds)
	return nil
}

// buildSeeds renders the §2.9 step-1 seed of every net — the assertion
// waveform (pinned for clocks), the always-stable default for undriven
// unasserted nets, UNKNOWN for driven ones — exactly as the verifier's
// per-run seeding would, interning each seed so runs start from handles.
func buildSeeds(d *netlist.Design, intern *values.Interner) (*Seeds, error) {
	s := &Seeds{
		Initial:   make([]values.Waveform, len(d.Nets)),
		InitialID: make([]uint64, len(d.Nets)),
		Pinned:    make([]bool, len(d.Nets)),
		sig:       envSig(d),
	}
	env := d.Env()
	undefSeen := map[string]bool{}
	for i := range d.Nets {
		n := &d.Nets[i]
		var w values.Waveform
		switch {
		case n.Assert != nil:
			aw, aerr := n.Assert.Waveform(env)
			if aerr != nil {
				return nil, serr.Newf(serr.Assertion, "verify: net %q: %v", n.Name, aerr)
			}
			w = aw
			s.Pinned[i] = n.Assert.Kind == assertion.Clock || n.Assert.Kind == assertion.PrecisionClock
			if n.Driver != netlist.NoDriver {
				s.AssertNets = append(s.AssertNets, netlist.NetID(i))
			}
		case n.Driver == netlist.NoDriver:
			w = values.Const(d.Period, values.VS)
			if !undefSeen[n.Base] {
				undefSeen[n.Base] = true
				s.Undefined = append(s.Undefined, n.Base)
			}
		default:
			w = values.Const(d.Period, values.VU)
		}
		s.Initial[i], s.InitialID[i] = intern.Intern(w)
	}
	sort.Strings(s.Undefined)
	return s, nil
}

// envSig fingerprints everything evaluation and checking read besides the
// runtime signal state: the design environment, each net's wire override,
// assertion content and driver presence (plus the base names of undriven
// unasserted nets, which form the cross-reference listing), and each
// primitive's kind, width, delay and constraint parameters and connection
// structure.  It is the generation guard of both the seed image and the
// warm slot table: while the signature is unchanged, a slot whose input
// handles and directives match is guaranteed to reproduce evaluation.
func envSig(d *netlist.Design) uint64 {
	h := newFNV()
	h.time(d.Period)
	h.time(d.ClockUnit)
	h.rng(d.DefaultWire)
	h.rng(d.PrecisionSkew)
	h.rng(d.ClockSkew)
	h.bit(d.WiredOr)
	for i := range d.Nets {
		n := &d.Nets[i]
		driven := n.Driver != netlist.NoDriver
		h.bit(driven)
		if n.Wire != nil {
			h.b(1)
			h.rng(*n.Wire)
		} else {
			h.b(0)
		}
		if n.Assert == nil {
			h.b(0)
			if !driven {
				h.str(n.Base)
			}
			continue
		}
		a := n.Assert
		h.b(1)
		h.b(byte(a.Kind))
		h.bit(a.LowAsserted)
		if a.Skew != nil {
			h.b(1)
			h.rng(*a.Skew)
		} else {
			h.b(0)
		}
		h.u64(uint64(len(a.Ranges)))
		for _, r := range a.Ranges {
			h.u64(math.Float64bits(r.Start))
			h.u64(math.Float64bits(r.End))
			h.time(r.WidthNS)
			h.bit(r.IsWidth)
		}
	}
	for i := range d.Prims {
		pr := &d.Prims[i]
		h.b(byte(pr.Kind))
		h.u64(uint64(pr.Width))
		h.rng(pr.Delay)
		h.rng(pr.SelectDelay)
		if pr.RF != nil {
			h.b(1)
			h.rng(pr.RF.Rise)
			h.rng(pr.RF.Fall)
		} else {
			h.b(0)
		}
		h.time(pr.Setup)
		h.time(pr.Hold)
		h.time(pr.MinHigh)
		h.time(pr.MinLow)
		h.u64(uint64(pr.Fn))
		for pi := range pr.In {
			port := &pr.In[pi]
			h.u64(uint64(len(port.Bits)))
			for _, c := range port.Bits {
				h.u64(uint64(c.Net))
				h.bit(c.Invert)
				h.str(string(c.Directives))
			}
		}
	}
	// The analytic tables: Prim.Delay already pins every fn-bound delay at
	// the run's parameter point — so two pinnings of one design differ
	// above — but the tables themselves travel with the design and feed
	// the symbolic post-pass, so a table edit must invalidate too.
	h.u64(uint64(len(d.Params)))
	for _, p := range d.Params {
		h.str(p.Name)
		h.u64(math.Float64bits(p.Default))
		h.u64(math.Float64bits(p.Lo))
		h.u64(math.Float64bits(p.Hi))
	}
	h.u64(uint64(len(d.DelayFns)))
	for i := range d.DelayFns {
		for _, a := range [2]netlist.Affine{d.DelayFns[i].Min, d.DelayFns[i].Max} {
			h.time(a.Base)
			h.u64(uint64(len(a.Coeffs)))
			for _, c := range a.Coeffs {
				h.u64(uint64(c.Param))
				h.u64(math.Float64bits(c.PS))
			}
		}
	}
	return h.sum
}

type fnv struct{ sum uint64 }

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func newFNV() *fnv { return &fnv{sum: fnvOffset64} }

func (h *fnv) b(x byte) {
	h.sum = (h.sum ^ uint64(x)) * fnvPrime64
}

func (h *fnv) bit(x bool) {
	if x {
		h.b(1)
	} else {
		h.b(0)
	}
}

// u64 mixes a whole word in one step (word-wise FNV-1a variant): envSig
// runs on every Refresh — once per verification — so the walk over ~10^5
// nets and primitives must stay well under a millisecond.
func (h *fnv) u64(x uint64) {
	h.sum = (h.sum ^ x) * fnvPrime64
}

func (h *fnv) time(t tick.Time) { h.u64(uint64(t)) }

func (h *fnv) rng(r tick.Range) {
	h.time(r.Min)
	h.time(r.Max)
}

func (h *fnv) str(s string) {
	h.u64(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h.b(s[i])
	}
}
