// Package netlist defines the flat circuit model the Timing Verifier
// evaluates: scalar nets (one per signal bit, as in the paper's per-bit
// VALUE lists) connected by vectored primitive instances (the paper's
// "arbitrarily wide data path" primitives, §3.3.2, which give the 1.3
// primitives-per-chip economy of Table 3-2).
package netlist

import (
	"fmt"
	"sync/atomic"

	"scaldtv/internal/assertion"
	"scaldtv/internal/tick"
	"scaldtv/internal/values"
)

// NetID indexes a net within a Design.
type NetID int32

// PrimID indexes a primitive within a Design.
type PrimID int32

// NoDriver marks a net with no driving primitive.
const NoDriver PrimID = -1

// Kind identifies a built-in primitive type (§2.4, §3.1).
type Kind uint8

// The built-in primitive kinds.
const (
	KBuf     Kind = iota // non-inverting buffer / delay line (also CORR delays)
	KNot                 // inverter
	KAnd                 // n-input AND
	KOr                  // n-input INCLUSIVE-OR
	KNand                // n-input AND, inverted output
	KNor                 // n-input OR, inverted output
	KXor                 // n-input EXCLUSIVE-OR
	KChg                 // n-input CHANGE function (§2.4.2)
	KMux2                // 2-input multiplexer: S, D0, D1
	KMux4                // 4-input multiplexer: S0, S1, D0..D3
	KMux8                // 8-input multiplexer: S0..S2, D0..D7
	KReg                 // edge-triggered register: CK, D
	KRegRS               // register with asynchronous SET/RESET: CK, D, S, R
	KLatch               // transparent latch: E, D
	KLatchRS             // latch with asynchronous SET/RESET: E, D, S, R

	KSetupHold         // SETUP HOLD CHK: I, CK (§2.4.4)
	KSetupRiseHoldFall // SETUP RISE HOLD FALL CHK: I, CK (§2.4.4)
	KMinPulse          // MIN PULSE WIDTH checker: I (§2.4.5)

	numKinds
)

var kindNames = [numKinds]string{
	"BUF", "NOT", "AND", "OR", "NAND", "NOR", "XOR", "CHG",
	"2 MUX", "4 MUX", "8 MUX",
	"REG", "REG RS", "LATCH", "LATCH RS",
	"SETUP HOLD CHK", "SETUP RISE HOLD FALL CHK", "MIN PULSE WIDTH",
}

// String names the kind in the paper's style.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// IsChecker reports whether the primitive only checks constraints and
// drives no output.
func (k Kind) IsChecker() bool {
	return k == KSetupHold || k == KSetupRiseHoldFall || k == KMinPulse
}

// IsStorage reports whether the primitive is a clocked storage element.
func (k Kind) IsStorage() bool {
	return k == KReg || k == KRegRS || k == KLatch || k == KLatchRS
}

// IsGate reports whether the primitive is simple combinational logic with a
// variable number of identical inputs.
func (k Kind) IsGate() bool {
	switch k {
	case KBuf, KNot, KAnd, KOr, KNand, KNor, KXor, KChg:
		return true
	}
	return false
}

// NumSelects returns the select-bit count of a multiplexer kind, or 0.
func (k Kind) NumSelects() int {
	switch k {
	case KMux2:
		return 1
	case KMux4:
		return 2
	case KMux8:
		return 3
	}
	return 0
}

// NumMuxData returns the data-input count of a multiplexer kind, or 0.
func (k Kind) NumMuxData() int {
	switch k {
	case KMux2:
		return 2
	case KMux4:
		return 4
	case KMux8:
		return 8
	}
	return 0
}

// Net is one signal bit.  Its Name is the full signal name including any
// embedded assertion and bit subscript; Base strips both, identifying the
// logical signal for case analysis and consistency checks.
type Net struct {
	Name   string
	Base   string
	Assert *assertion.Assertion
	Wire   *tick.Range // per-signal interconnection delay, nil → design default
	Driver PrimID
	Fanout []PrimID // the paper's CALL LIST: primitives to reevaluate on change
}

// Conn is one input-bit connection of a primitive.
type Conn struct {
	Net        NetID
	Invert     bool                 // the "-" complement rail (§3.1)
	Directives assertion.Directives // evaluation string attached to this pin (§2.6)
}

// Port is a named vector of input connections.
type Port struct {
	Name string
	Bits []Conn
}

// OutPort is a named vector of driven nets.
type OutPort struct {
	Name string
	Bits []NetID
}

// Prim is one vectored primitive instance.
type Prim struct {
	Kind  Kind
	Name  string // hierarchical instance path, for messages
	Width int    // data-path width in bits

	Delay       tick.Range // propagation delay, all inputs → outputs (§2.4.3)
	SelectDelay tick.Range // extra delay from mux select inputs (Fig 3-6)
	RF          *RFDelay   // direction-dependent delays (§4.2.2); overrides Delay when set

	Setup, Hold     tick.Time // checker intervals (§2.4.4)
	MinHigh, MinLow tick.Time // minimum pulse widths (§2.4.5)

	// Fn, when positive, names the analytic delay function this
	// primitive's Delay was evaluated from: Design.DelayFns[Fn-1]
	// (1-based so the zero value means "constant delay").  Delay always
	// holds a concrete evaluation — the engine never reads Fn — but the
	// path-search layer uses it to build symbolic margin surfaces and
	// Design.PinParams uses it to re-evaluate Delay at another point.
	Fn int32

	In  []Port
	Out []OutPort
}

// RFDelay carries direction-dependent propagation delays for technologies
// with differing rising and falling delays (§4.2.2): output rising edges
// take Rise, falling edges Fall.  Where the signal value is unknown the
// evaluator falls back to the paper's conservative envelope of the two.
type RFDelay struct {
	Rise, Fall tick.Range
}

// Envelope returns the combined min/max range covering both directions.
func (rf RFDelay) Envelope() tick.Range {
	return tick.Range{Min: min(rf.Rise.Min, rf.Fall.Min), Max: max(rf.Rise.Max, rf.Fall.Max)}
}

// Case is one designer-specified case-analysis cycle (§2.7.1): a set of
// signals whose STABLE values are mapped to logic constants for this
// simulated cycle.
type Case struct {
	Label       string
	Assignments []CaseAssign
}

// CaseAssign maps one logical signal to a constant.
type CaseAssign struct {
	Base  string
	Value values.Value // V0 or V1
}

// Design is a complete flat circuit plus its verification environment.
type Design struct {
	Name      string
	Period    tick.Time
	ClockUnit tick.Time // designer clock unit (§2.3)

	DefaultWire   tick.Range // default interconnection delay (§2.5.3)
	PrecisionSkew tick.Range // default skew for .P clocks (§2.5.1)
	ClockSkew     tick.Range // default skew for .C clocks
	WiredOr       bool       // permit multiply-driven nets, combined as OR (ECL wired-OR)

	Nets  []Net
	Prims []Prim
	Cases []Case

	// Params and DelayFns are the analytic delay tables (params.go):
	// named design parameters and the affine delay functions over them
	// that parametric primitives (Prim.Fn > 0) were evaluated from.
	Params   []Param
	DelayFns []DelayFn

	byName map[string]NetID

	// level caches the SCC condensation + levelization of the primitive
	// graph (Levelization).  It is derived from the fanout index;
	// RebuildFanout invalidates it.
	level atomic.Pointer[Levelization]

	// engine caches a compiled evaluation program (internal/tape) derived
	// from the design's structure.  The netlist package treats it as
	// opaque; like level, it is invalidated by RebuildFanout.
	engine atomic.Pointer[any]
}

// EngineCache returns the compiled-engine value stored by StoreEngineCache,
// or nil.  The cache follows the structure-derived caches' contract:
// numeric parameter edits keep it valid, structural edits go through
// RebuildFanout which clears it.
func (d *Design) EngineCache() any {
	if p := d.engine.Load(); p != nil {
		return *p
	}
	return nil
}

// StoreEngineCache publishes a compiled-engine value for this design.
func (d *Design) StoreEngineCache(v any) { d.engine.Store(&v) }

// WithCases returns a design sharing this design's structure — nets,
// primitives, name index — but carrying a different case-analysis list.
// Case mappings are applied at relaxation time, not baked into any
// structure-derived cache, so the levelization and compiled-engine caches
// carry over: a verification of the variant starts warm.  The variant
// must be treated as read-only structurally (no RebuildFanout); the case
// exploration engine uses it to re-verify a design under a candidate case
// set without copying the netlist.
func (d *Design) WithCases(cases []Case) *Design {
	nd := &Design{
		Name:          d.Name,
		Period:        d.Period,
		ClockUnit:     d.ClockUnit,
		DefaultWire:   d.DefaultWire,
		PrecisionSkew: d.PrecisionSkew,
		ClockSkew:     d.ClockSkew,
		WiredOr:       d.WiredOr,
		Nets:          d.Nets,
		Prims:         d.Prims,
		Cases:         cases,
		Params:        d.Params,
		DelayFns:      d.DelayFns,
		byName:        d.byName,
	}
	if lv := d.level.Load(); lv != nil {
		nd.level.Store(lv)
	}
	if e := d.engine.Load(); e != nil {
		nd.engine.Store(e)
	}
	return nd
}

// Env returns the assertion-rendering environment of the design.
func (d *Design) Env() assertion.Env {
	cu := d.ClockUnit
	if cu == 0 {
		cu = tick.NS
	}
	return assertion.Env{
		Period:        d.Period,
		ClockUnit:     cu,
		PrecisionSkew: d.PrecisionSkew,
		ClockSkew:     d.ClockSkew,
	}
}

// NetByName finds a net by its full name.
func (d *Design) NetByName(name string) (NetID, bool) {
	id, ok := d.byName[name]
	return id, ok
}

// BaseMatches reports whether a net's base name belongs to the logical
// signal sigBase — either exactly, or as one of its vector bits
// ("ADR<3>" belongs to "ADR").
func BaseMatches(netBase, sigBase string) bool {
	if netBase == sigBase {
		return true
	}
	if len(netBase) > len(sigBase)+1 && netBase[len(sigBase)] == '<' && netBase[:len(sigBase)] == sigBase {
		return netBase[len(netBase)-1] == '>'
	}
	return false
}

// NewNet appends a net to an existing design — the hook for design
// transforms such as automatic CORR insertion — keeping the name index
// consistent.  The name must be unused.
func (d *Design) NewNet(name, base string) (NetID, error) {
	if d.byName == nil {
		d.byName = make(map[string]NetID)
	}
	if _, dup := d.byName[name]; dup {
		return 0, fmt.Errorf("netlist: net %q already exists", name)
	}
	id := NetID(len(d.Nets))
	d.Nets = append(d.Nets, Net{Name: name, Base: base, Driver: NoDriver})
	d.byName[name] = id
	return id, nil
}

// NetsByBase returns every net belonging to the logical signal with the
// given base name, in creation order.
func (d *Design) NetsByBase(base string) []NetID {
	var out []NetID
	for i := range d.Nets {
		if BaseMatches(d.Nets[i].Base, base) {
			out = append(out, NetID(i))
		}
	}
	return out
}

// WireDelay returns the interconnection delay seen by an input connection
// to the given net, honouring the per-signal override and the directive
// that may zero it (§2.6).
func (d *Design) WireDelay(n NetID, dir assertion.Directive) tick.Range {
	if dir.ZeroesWire() {
		return tick.Range{}
	}
	if w := d.Nets[n].Wire; w != nil {
		return *w
	}
	return d.DefaultWire
}

// Drivers returns every primitive driving the net (more than one only
// with wired-OR).
func (d *Design) Drivers(n NetID) []PrimID {
	var out []PrimID
	for pi := range d.Prims {
		for _, port := range d.Prims[pi].Out {
			for _, o := range port.Bits {
				if o == n {
					out = append(out, PrimID(pi))
				}
			}
		}
	}
	return out
}

// RebuildFanout recomputes every net's fanout list (the CALL LIST ARRAY of
// Table 3-3) from the primitive connections.
func (d *Design) RebuildFanout() {
	d.level.Store(nil)
	d.engine.Store(nil)
	for i := range d.Nets {
		d.Nets[i].Fanout = d.Nets[i].Fanout[:0]
		d.Nets[i].Driver = NoDriver
	}
	seen := make(map[[2]int32]bool)
	for pi := range d.Prims {
		p := &d.Prims[pi]
		for _, port := range p.In {
			for _, c := range port.Bits {
				key := [2]int32{int32(c.Net), int32(pi)}
				if !seen[key] {
					seen[key] = true
					d.Nets[c.Net].Fanout = append(d.Nets[c.Net].Fanout, PrimID(pi))
				}
			}
		}
		for _, port := range p.Out {
			for _, n := range port.Bits {
				d.Nets[n].Driver = PrimID(pi)
			}
		}
	}
}

// Check validates structural consistency: period set, ports wired per the
// primitive conventions, no multiply-driven nets, valid delay ranges, and
// consistent assertions across bits of a logical signal.
func (d *Design) Check() error {
	if d.Period <= 0 {
		return fmt.Errorf("netlist: design %q has no clock period", d.Name)
	}
	if !d.DefaultWire.Valid() || !d.PrecisionSkew.Valid() || !d.ClockSkew.Valid() {
		return fmt.Errorf("netlist: design %q has invalid default delay/skew ranges", d.Name)
	}
	if err := d.checkDelayFns(); err != nil {
		return fmt.Errorf("netlist: design %q: %v", d.Name, err)
	}
	driven := make(map[NetID]PrimID)
	for pi := range d.Prims {
		p := &d.Prims[pi]
		if err := p.checkShape(); err != nil {
			return fmt.Errorf("netlist: primitive %q: %v", p.Name, err)
		}
		for _, port := range p.In {
			for _, c := range port.Bits {
				if c.Net < 0 || int(c.Net) >= len(d.Nets) {
					return fmt.Errorf("netlist: primitive %q port %s references net %d out of range", p.Name, port.Name, c.Net)
				}
			}
		}
		for _, port := range p.Out {
			for _, n := range port.Bits {
				if n < 0 || int(n) >= len(d.Nets) {
					return fmt.Errorf("netlist: primitive %q output %s references net %d out of range", p.Name, port.Name, n)
				}
				if prev, dup := driven[n]; dup && !d.WiredOr {
					return fmt.Errorf("netlist: net %q driven by both %q and %q (enable wired-OR to permit this)", d.Nets[n].Name, d.Prims[prev].Name, p.Name)
				}
				driven[n] = PrimID(pi)
			}
		}
	}
	// Assertion consistency per logical signal (§2.5.1: the assertion is
	// part of the name, so one base name must not carry two different
	// assertion spellings).
	byBase := make(map[string]string)
	for _, n := range d.Nets {
		a := n.Assert.String()
		if prev, ok := byBase[n.Base]; ok && prev != a {
			return fmt.Errorf("netlist: signal %q carries conflicting assertions %q and %q", n.Base, prev, a)
		}
		byBase[n.Base] = a
	}
	for _, c := range d.Cases {
		for _, as := range c.Assignments {
			if !as.Value.Const() {
				return fmt.Errorf("netlist: case assignment %s = %v is not a logic constant", as.Base, as.Value)
			}
		}
	}
	return nil
}

// CheckParams re-validates only the numeric parameters that in-place edits
// may change between runs — the clock period, the default delay/skew
// ranges, and every primitive's delay ranges — with the same messages, and
// in the same order, as the corresponding Check failures.  Callers holding
// a structure-derived cache (Levelization, EngineCache) use it as the
// cheap per-run revalidation: structural edits require a new Design, so
// only these values can have gone bad since the full Check that built the
// cache.
func (d *Design) CheckParams() error {
	if d.Period <= 0 {
		return fmt.Errorf("netlist: design %q has no clock period", d.Name)
	}
	if !d.DefaultWire.Valid() || !d.PrecisionSkew.Valid() || !d.ClockSkew.Valid() {
		return fmt.Errorf("netlist: design %q has invalid default delay/skew ranges", d.Name)
	}
	if err := d.checkDelayFns(); err != nil {
		return fmt.Errorf("netlist: design %q: %v", d.Name, err)
	}
	for pi := range d.Prims {
		p := &d.Prims[pi]
		if err := p.checkDelayParams(); err != nil {
			return fmt.Errorf("netlist: primitive %q: %v", p.Name, err)
		}
	}
	return nil
}

func (p *Prim) checkDelayParams() error {
	if !p.Delay.Valid() || !p.SelectDelay.Valid() {
		return fmt.Errorf("invalid delay range")
	}
	if p.RF != nil && (!p.RF.Rise.Valid() || !p.RF.Fall.Valid()) {
		return fmt.Errorf("invalid rise/fall delay range")
	}
	return nil
}

func (p *Prim) checkShape() error {
	if p.Width <= 0 {
		return fmt.Errorf("width %d", p.Width)
	}
	if err := p.checkDelayParams(); err != nil {
		return err
	}
	if p.RF != nil && !p.Kind.IsGate() {
		return fmt.Errorf("%v cannot carry rise/fall delays", p.Kind)
	}
	wantIn, wantOut := -1, -1
	switch {
	case p.Kind.IsGate():
		if len(p.In) < 1 {
			return fmt.Errorf("gate with no inputs")
		}
		if (p.Kind == KBuf || p.Kind == KNot) && len(p.In) != 1 {
			return fmt.Errorf("%v takes exactly one input", p.Kind)
		}
		wantOut = 1
	case p.Kind.NumSelects() > 0:
		wantIn = p.Kind.NumSelects() + p.Kind.NumMuxData()
		wantOut = 1
	case p.Kind == KReg, p.Kind == KLatch:
		wantIn, wantOut = 2, 1
	case p.Kind == KRegRS, p.Kind == KLatchRS:
		wantIn, wantOut = 4, 1
	case p.Kind == KSetupHold, p.Kind == KSetupRiseHoldFall:
		wantIn, wantOut = 2, 0
	case p.Kind == KMinPulse:
		wantIn, wantOut = 1, 0
	default:
		return fmt.Errorf("unknown kind %v", p.Kind)
	}
	if wantIn >= 0 && len(p.In) != wantIn {
		return fmt.Errorf("%v needs %d input ports, has %d", p.Kind, wantIn, len(p.In))
	}
	if wantOut >= 0 && len(p.Out) != wantOut {
		return fmt.Errorf("%v needs %d output ports, has %d", p.Kind, wantOut, len(p.Out))
	}
	// Port widths: scalar control ports carry exactly one bit; data ports
	// carry Width bits.
	for i, port := range p.In {
		want := p.Width
		if p.scalarInPort(i) {
			want = 1
		}
		if len(port.Bits) != want {
			return fmt.Errorf("%v input port %s has %d bits, want %d", p.Kind, port.Name, len(port.Bits), want)
		}
	}
	for _, port := range p.Out {
		if len(port.Bits) != p.Width {
			return fmt.Errorf("%v output port %s has %d bits, want %d", p.Kind, port.Name, len(port.Bits), p.Width)
		}
	}
	return nil
}

// scalarInPort reports whether input port index i is a one-bit control
// port (clock, enable, select, set, reset) rather than a Width-bit data
// port.
func (p *Prim) scalarInPort(i int) bool {
	switch p.Kind {
	case KReg, KLatch:
		return i == 0 // CK / E
	case KRegRS, KLatchRS:
		return i == 0 || i == 2 || i == 3 // CK/E, SET, RESET
	case KMux2, KMux4, KMux8:
		return i < p.Kind.NumSelects()
	case KSetupHold, KSetupRiseHoldFall:
		return i == 1 // CK
	}
	return false
}
