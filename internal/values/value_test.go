package values

import (
	"testing"
	"testing/quick"
)

func TestValueString(t *testing.T) {
	want := map[Value]string{V0: "0", V1: "1", VS: "S", VC: "C", VR: "R", VF: "F", VU: "U"}
	for v, s := range want {
		if v.String() != s {
			t.Errorf("%d.String() = %q, want %q", v, v.String(), s)
		}
	}
	if Value(99).String() == "" {
		t.Error("invalid value should still render")
	}
	if VS.Name() != "STABLE" || VC.Name() != "CHANGE" || VU.Name() != "UNKNOWN" {
		t.Error("long names wrong")
	}
	if VR.Name() != "RISE" || VF.Name() != "FALL" || V0.Name() != "0" {
		t.Error("long names wrong")
	}
}

func TestPredicates(t *testing.T) {
	for _, v := range All {
		if v.Stable() == v.Changing() && v != VU {
			t.Errorf("%v: Stable and Changing must partition defined values", v)
		}
	}
	if !V0.Stable() || !V1.Stable() || !VS.Stable() {
		t.Error("0, 1, S are stable")
	}
	if !VC.Changing() || !VR.Changing() || !VF.Changing() {
		t.Error("C, R, F are changing")
	}
	if VU.Stable() || VU.Changing() || VU.Known() {
		t.Error("U is neither stable nor changing nor known")
	}
	if !V0.Const() || !V1.Const() || VS.Const() {
		t.Error("Const covers exactly 0 and 1")
	}
	if !V0.Valid() || Value(7).Valid() {
		t.Error("Valid boundary wrong")
	}
}

// Specific table entries the paper calls out or that the model depends on.
func TestOrTable(t *testing.T) {
	cases := []struct{ a, b, want Value }{
		{V0, V0, V0}, {V0, V1, V1}, {V1, V1, V1},
		{V1, VU, V1}, // 1 dominates even over unknown
		{V0, VU, VU}, // 0 is identity
		{VS, VR, VR}, // the paper's explicit worst-case example (§2.4.2)
		{VS, VF, VF}, //
		{VS, VC, VC}, //
		{VS, VS, VS}, //
		{VR, VF, VC}, // opposing transitions may pulse
		{VR, VR, VR}, //
		{VF, VF, VF}, //
		{VC, VR, VC}, //
		{VU, VS, VU}, //
		{VU, VR, VU}, //
		{V0, VR, VR}, //
		{V1, VR, V1}, // output pinned high
	}
	for _, c := range cases {
		if got := Or(c.a, c.b); got != c.want {
			t.Errorf("Or(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := Or(c.b, c.a); got != c.want {
			t.Errorf("Or(%v,%v) = %v, want %v (commuted)", c.b, c.a, got, c.want)
		}
	}
}

func TestAndTable(t *testing.T) {
	cases := []struct{ a, b, want Value }{
		{V0, VU, V0}, // 0 dominates
		{V1, VU, VU}, // 1 is identity
		{V1, VR, VR},
		{V0, VR, V0},
		{VS, VR, VR},
		{VS, VF, VF},
		{VR, VF, VC},
		{VS, VS, VS},
		{VC, VC, VC},
	}
	for _, c := range cases {
		if got := And(c.a, c.b); got != c.want {
			t.Errorf("And(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := And(c.b, c.a); got != c.want {
			t.Errorf("And(%v,%v) = %v, want %v (commuted)", c.b, c.a, got, c.want)
		}
	}
}

func TestXorTable(t *testing.T) {
	cases := []struct{ a, b, want Value }{
		{V0, V0, V0}, {V0, V1, V1}, {V1, V1, V0},
		{V0, VR, VR},
		{V1, VR, VF}, // inverted transition
		{V1, VF, VR},
		{VS, VR, VC}, // direction depends on the stable input's value
		{VS, VS, VS},
		{VR, VR, VC}, // worst case: the transitions need not be simultaneous
		{VU, V1, VU}, // no dominant constant for XOR
		{VU, V0, VU},
	}
	for _, c := range cases {
		if got := Xor(c.a, c.b); got != c.want {
			t.Errorf("Xor(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := Xor(c.b, c.a); got != c.want {
			t.Errorf("Xor(%v,%v) = %v, want %v (commuted)", c.b, c.a, got, c.want)
		}
	}
}

func TestNot(t *testing.T) {
	want := map[Value]Value{V0: V1, V1: V0, VS: VS, VC: VC, VR: VF, VF: VR, VU: VU}
	for in, out := range want {
		if got := Not(in); got != out {
			t.Errorf("Not(%v) = %v, want %v", in, got, out)
		}
		if got := Not(Not(in)); got != in {
			t.Errorf("Not(Not(%v)) = %v, not involutive", in, got)
		}
	}
}

func TestDeMorganWorstCase(t *testing.T) {
	// The worst-case tables respect De Morgan duality exactly.
	for _, a := range All {
		for _, b := range All {
			if got, want := Not(And(a, b)), Or(Not(a), Not(b)); got != want {
				t.Errorf("¬(%v∧%v) = %v, but ¬%v∨¬%v = %v", a, b, got, a, b, want)
			}
		}
	}
}

func TestCommutativity(t *testing.T) {
	for _, a := range All {
		for _, b := range All {
			if Or(a, b) != Or(b, a) {
				t.Errorf("Or not commutative at (%v,%v)", a, b)
			}
			if And(a, b) != And(b, a) {
				t.Errorf("And not commutative at (%v,%v)", a, b)
			}
			if Xor(a, b) != Xor(b, a) {
				t.Errorf("Xor not commutative at (%v,%v)", a, b)
			}
			if Either(a, b) != Either(b, a) {
				t.Errorf("Either not commutative at (%v,%v)", a, b)
			}
		}
	}
}

func TestAssociativity(t *testing.T) {
	for _, a := range All {
		for _, b := range All {
			for _, c := range All {
				if Or(Or(a, b), c) != Or(a, Or(b, c)) {
					t.Errorf("Or not associative at (%v,%v,%v): %v vs %v",
						a, b, c, Or(Or(a, b), c), Or(a, Or(b, c)))
				}
				if And(And(a, b), c) != And(a, And(b, c)) {
					t.Errorf("And not associative at (%v,%v,%v)", a, b, c)
				}
			}
		}
	}
}

func TestIdempotence(t *testing.T) {
	for _, a := range All {
		if Or(a, a) != a {
			t.Errorf("Or(%v,%v) != %v", a, a, a)
		}
		if And(a, a) != a {
			t.Errorf("And(%v,%v) != %v", a, a, a)
		}
		if Either(a, a) != a {
			t.Errorf("Either(%v,%v) != %v", a, a, a)
		}
		if Mix(a, a) != a {
			t.Errorf("Mix(%v,%v) != %v", a, a, a)
		}
	}
}

// Soundness: the symbolic result must cover every concrete behaviour.  We
// check that wherever both inputs are logic constants, the tables agree with
// Boolean logic, and that a changing input never yields a constant output
// unless a dominant constant pins it.
func TestSoundness(t *testing.T) {
	type bf func(a, b bool) bool
	boolTab := []struct {
		name string
		sym  func(Value, Value) Value
		conc bf
	}{
		{"Or", Or, func(a, b bool) bool { return a || b }},
		{"And", And, func(a, b bool) bool { return a && b }},
		{"Xor", Xor, func(a, b bool) bool { return a != b }},
	}
	toV := func(b bool) Value {
		if b {
			return V1
		}
		return V0
	}
	for _, f := range boolTab {
		for _, a := range []bool{false, true} {
			for _, b := range []bool{false, true} {
				if got, want := f.sym(toV(a), toV(b)), toV(f.conc(a, b)); got != want {
					t.Errorf("%s(%v,%v) = %v, want %v", f.name, toV(a), toV(b), got, want)
				}
			}
		}
		// A changing non-dominated input must not produce a constant.
		for _, ch := range []Value{VC, VR, VF} {
			if out := f.sym(VS, ch); out.Const() {
				t.Errorf("%s(S,%v) = %v claims a constant from a changing input", f.name, ch, out)
			}
		}
	}
}

func TestChg(t *testing.T) {
	cases := []struct {
		in   []Value
		want Value
	}{
		{[]Value{VS, VS}, VS},
		{[]Value{V0, V1, VS}, VS},
		{[]Value{VS, VC}, VC},
		{[]Value{VR, VS}, VC},
		{[]Value{VF}, VC},
		{[]Value{VS, VU}, VU},
		{[]Value{VC, VU}, VU}, // unknown beats changing
		{[]Value{}, VS},
	}
	for _, c := range cases {
		if got := Chg(c.in...); got != c.want {
			t.Errorf("Chg(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestEither(t *testing.T) {
	cases := []struct{ a, b, want Value }{
		{V0, V1, VS}, // one of two constants: stable, value unknown
		{V0, V0, V0},
		{VS, V1, VS},
		{VS, VR, VR}, // may be the rising one: worst case rising
		{V0, VC, VC},
		{VR, VF, VC},
		{VU, V1, VU},
	}
	for _, c := range cases {
		if got := Either(c.a, c.b); got != c.want {
			t.Errorf("Either(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestMix(t *testing.T) {
	cases := []struct{ a, b, want Value }{
		{V0, V1, VR}, // transition band 0→1 is a RISE band (Fig 2-9)
		{V1, V0, VF},
		{V0, VR, VR},
		{VR, V1, VR},
		{V1, VF, VF},
		{VF, V0, VF},
		{VS, VC, VC},
		{VS, V0, VC}, // stable-unknown resolving to 0 may transition
		{VU, V1, VU},
		{V1, VU, VU},
		{VR, VF, VC},
	}
	for _, c := range cases {
		if got := Mix(c.a, c.b); got != c.want {
			t.Errorf("Mix(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestMux2(t *testing.T) {
	cases := []struct{ s, a, b, want Value }{
		{V0, VR, VF, VR}, // select 0 picks input a
		{V1, VR, VF, VF}, // select 1 picks input b
		{VS, VS, VS, VS}, // stable select, stable data: stable
		{VS, VC, VS, VC}, // worst case across candidates
		{VS, V0, V1, VS}, // one of two constants
		{VR, V0, V0, V0}, // equal constant data rides through a changing select
		{VR, V0, V1, VC}, // changing select between different data: may change
		{VR, VS, VS, VC}, // two stable signals may still differ in value
		{VU, V0, V0, VU},
		{VC, VU, V0, VU},
	}
	for _, c := range cases {
		if got := Mux2(c.s, c.a, c.b); got != c.want {
			t.Errorf("Mux2(%v,%v,%v) = %v, want %v", c.s, c.a, c.b, got, c.want)
		}
	}
}

func TestMuxN(t *testing.T) {
	if got := MuxN(VS, V0, V1, V0, V1); got != VS {
		t.Errorf("MuxN(S, consts) = %v, want S", got)
	}
	if got := MuxN(VS, VS, VC, VS, VS); got != VC {
		t.Errorf("MuxN(S, with changing) = %v, want C", got)
	}
	if got := MuxN(VC, V1, V1, V1, V1); got != V1 {
		t.Errorf("MuxN(C, all 1) = %v, want 1", got)
	}
	if got := MuxN(VC, V1, V0, V1, V1); got != VC {
		t.Errorf("MuxN(C, mixed) = %v, want C", got)
	}
	if got := MuxN(VU, V1, V1); got != VU {
		t.Errorf("MuxN(U, ...) = %v, want U", got)
	}
	if got := MuxN(VC, V1, VU); got != VU {
		t.Errorf("MuxN(C, with U) = %v, want U", got)
	}
	if got := MuxN(VS); got != VU {
		t.Errorf("MuxN with no inputs = %v, want U", got)
	}
	if got := MuxN(VR, VS, VS); got != VC {
		t.Errorf("MuxN(R, stables) = %v, want C", got)
	}
}

func TestTablesClosedOverValues(t *testing.T) {
	f := func(a, b uint8) bool {
		x, y := Value(a%7), Value(b%7)
		return Or(x, y).Valid() && And(x, y).Valid() && Xor(x, y).Valid() &&
			Not(x).Valid() && Either(x, y).Valid() && Mix(x, y).Valid()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Monotonicity in the information order: replacing an input with UNKNOWN
// must never make the output *more* defined in a way that contradicts the
// original (U is the top of the uncertainty order except where a dominant
// constant pins the output).
func TestUnknownAbsorbs(t *testing.T) {
	for _, a := range All {
		if out := Or(a, VU); out != VU && out != V1 {
			t.Errorf("Or(%v,U) = %v, want U or pinned 1", a, out)
		}
		if out := And(a, VU); out != VU && out != V0 {
			t.Errorf("And(%v,U) = %v, want U or pinned 0", a, out)
		}
		if out := Xor(a, VU); out != VU {
			t.Errorf("Xor(%v,U) = %v, want U", a, out)
		}
	}
}
