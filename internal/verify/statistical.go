package verify

import (
	"math"

	"scaldtv/internal/pathsearch"
	"scaldtv/internal/tick"
)

// Statistical delay mode (Options.Delays is StatisticalDelays): a
// deterministic post-pass over a finished worst-case verification.  The
// relaxation itself still runs on min/max intervals — so violations,
// margins and waveforms are exactly the worst-case ones — and the
// post-pass re-reads every collected constraint margin through the
// quadrature arrival distributions of internal/pathsearch.AnalyzeDist:
// each component delay becomes a truncated normal over its data-sheet
// range, paths convolve, reconvergence takes the max/min, and the margin
// becomes the probability that the constraint is violated.
//
// The quadrature is fixed-grid (period/256) with no RNG, so SiteProbs —
// and the JSON report built on them — are byte-identical across Workers,
// IntraWorkers, cache and tape settings, exactly like the worst-case
// report.

// fillSiteProbs computes Result.SiteProbs from the collected margins and
// the design's arrival-time distributions.  Margins whose checker has no
// combinational path ending at it (clock-only sites, assertion
// cross-checks) carry no arrival distribution and are skipped.  grid is
// the quadrature step (StatisticalDelays.Grid; 0 = period/256).
func (V *Verifier) fillSiteProbs(res *Result, grid tick.Time) {
	sites, _ := pathsearch.AnalyzeDist(V.d, grid)
	if len(sites) == 0 {
		return
	}
	byPrim := pathsearch.SiteDistsByPrim(sites)
	probs := make([]SiteProb, 0, len(res.Margins))
	for _, m := range res.Margins {
		pins := byPrim[m.Prim]
		if len(pins) == 0 {
			continue
		}
		sp := SiteProb{
			Kind:    m.Kind,
			Case:    m.Case,
			Prim:    m.Prim,
			Data:    m.Data,
			Clock:   m.Clock,
			SlackNS: m.Slack().NS(),
		}
		slack := m.Slack()
		if m.Kind == HoldViolation {
			// Early-arrival hazard: the data path beats the hold window
			// when it arrives sooner than the worst-case earliest arrival
			// minus the slack.  Ties in WCMin resolve to the first pin in
			// the label-sorted order.
			best := pins[0]
			for _, p := range pins[1:] {
				if p.WCMin < best.WCMin {
					best = p
				}
			}
			sp.From = best.From
			sp.Prob = roundProb(best.Early.CDF(best.WCMin - slack - 1))
		} else {
			// Late-arrival hazard (set-up, enable, pulse width,
			// directives): the deadline sits slack beyond the worst-case
			// latest arrival.
			best := pins[0]
			for _, p := range pins[1:] {
				if p.WCMax > best.WCMax {
					best = p
				}
			}
			sp.From = best.From
			sp.Prob = roundProb(1 - best.Late.CDF(best.WCMax+slack))
		}
		probs = append(probs, sp)
	}
	if len(probs) > 0 {
		res.SiteProbs = probs
	}
}

// roundProb clamps to [0,1] and rounds to 1e-6 — the report precision,
// coarse enough to absorb float summation orderings.
func roundProb(p float64) float64 {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return math.Round(p*1e6) / 1e6
}
