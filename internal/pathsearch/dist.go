package pathsearch

import (
	"math"
	"sort"

	"scaldtv/internal/netlist"
	"scaldtv/internal/tick"
)

// Fixed-grid quadrature over arrival-time distributions: the machinery
// behind the statistical verify mode (-delays=statistical).  A component
// delay range [min,max] becomes a normal distribution truncated to its
// data-sheet limits (mean = (min+max)/2, σ = (max−min)/6, the DIGSIM
// convention of §1.4.1.2), discretised onto a uniform time grid.  Series
// composition along a path is convolution; reconvergent paths combine as
// the max (CDFs multiply) for the latest arrival and as the min for the
// earliest.  Everything is deterministic — a fixed grid, no sampling —
// so reports built on these numbers stay byte-identical across runs.

// Dist is a probability mass function over arrival times on a uniform
// grid: P(X = Start + i·Step) = P[i].  Start is always a multiple of
// Step, so two distributions with the same step align index-for-index; a
// single-point distribution (a zero-width delay) has len(P) == 1 with
// all mass in P[0].  The zero value is "no distribution" (Empty).
type Dist struct {
	Start tick.Time
	Step  tick.Time
	P     []float64
}

// Empty reports whether the distribution carries no mass.
func (d Dist) Empty() bool { return len(d.P) == 0 }

// snap rounds t to the nearest grid multiple of step, halves away from
// zero — the single deterministic rounding used everywhere so that every
// Dist start stays on the common grid.
func snap(t, step tick.Time) tick.Time {
	if step <= 0 {
		return t
	}
	if t >= 0 {
		return ((t + step/2) / step) * step
	}
	return -(((-t + step/2) / step) * step)
}

// PointDist is the distribution of a delay known exactly: all mass on
// the grid point nearest t.  This is the zero-width-interval edge case —
// convolving with it is a pure shift, never a widening.
func PointDist(t, step tick.Time) Dist {
	return Dist{Start: snap(t, step), Step: step, P: []float64{1}}
}

// normCDF is Φ((x−mean)/sigma), the standard normal CDF.
func normCDF(x, mean, sigma float64) float64 {
	return 0.5 * (1 + math.Erf((x-mean)/(sigma*math.Sqrt2)))
}

// RangeDist discretises a delay range onto the grid: a truncated normal
// with the 3σ limits at the data-sheet min and max.  A zero-width range
// degenerates to a single-point distribution, and a range narrower than
// one grid step collapses to the point at its midpoint — both edge cases
// that used to be representable only as full intervals.
func RangeDist(r tick.Range, step tick.Time) Dist {
	if !r.Valid() {
		r = tick.Range{Min: r.Max, Max: r.Min}
	}
	if r.Width() == 0 || step <= 0 {
		return PointDist(r.Min, step)
	}
	lo, hi := snap(r.Min, step), snap(r.Max, step)
	if lo == hi {
		return Dist{Start: lo, Step: step, P: []float64{1}}
	}
	mean := float64(r.Min+r.Max) / 2
	sigma := float64(r.Width()) / 6
	n := int((hi-lo)/step) + 1
	p := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		x := float64(lo + tick.Time(i)*step)
		a := normCDF(x-float64(step)/2, mean, sigma)
		b := normCDF(x+float64(step)/2, mean, sigma)
		p[i] = b - a
		total += p[i]
	}
	// Renormalise the truncation so the mass sums to one exactly.
	if total > 0 {
		for i := range p {
			p[i] /= total
		}
	} else {
		// Degenerate numerics (σ far smaller than the grid): point mass
		// at the grid cell nearest the mean.
		for i := range p {
			p[i] = 0
		}
		p[len(p)/2] = 1
	}
	return Dist{Start: lo, Step: step, P: p}
}

// Convolve is the distribution of the sum of two independent delays —
// series composition along a path.  Point masses short-circuit to a
// shift, so chains of exact delays stay exact (single-point in,
// single-point out).
func Convolve(a, b Dist) Dist {
	if a.Empty() {
		return b
	}
	if b.Empty() {
		return a
	}
	step := a.Step
	if step <= 0 {
		step = b.Step
	}
	if len(b.P) == 1 {
		return Dist{Start: a.Start + b.Start, Step: step, P: a.P}
	}
	if len(a.P) == 1 {
		return Dist{Start: a.Start + b.Start, Step: step, P: b.P}
	}
	p := make([]float64, len(a.P)+len(b.P)-1)
	for i, pa := range a.P {
		if pa == 0 {
			continue
		}
		for j, pb := range b.P {
			p[i+j] += pa * pb
		}
	}
	return Dist{Start: a.Start + b.Start, Step: step, P: p}
}

// aligned returns both pmfs re-indexed onto one grid window covering
// both supports.  Both inputs must share the step (PointDist takes the
// step of its context, so the invariant holds across the DP).
func aligned(a, b Dist) (start tick.Time, step tick.Time, pa, pb []float64) {
	step = a.Step
	if step <= 0 {
		step = b.Step
	}
	start = a.Start
	if b.Start < start {
		start = b.Start
	}
	endA := a.Start + tick.Time(len(a.P)-1)*step
	endB := b.Start + tick.Time(len(b.P)-1)*step
	end := endA
	if endB > end {
		end = endB
	}
	n := 1
	if step > 0 {
		n = int((end-start)/step) + 1
	}
	pa = make([]float64, n)
	pb = make([]float64, n)
	offA, offB := 0, 0
	if step > 0 {
		offA = int((a.Start - start) / step)
		offB = int((b.Start - start) / step)
	}
	copy(pa[offA:], a.P)
	copy(pb[offB:], b.P)
	return start, step, pa, pb
}

// CombineMax is the distribution of max(A, B) for independent arrivals —
// the reconvergence rule for the latest arrival: CDFs multiply.
func CombineMax(a, b Dist) Dist {
	if a.Empty() {
		return b
	}
	if b.Empty() {
		return a
	}
	start, step, pa, pb := aligned(a, b)
	p := make([]float64, len(pa))
	fa, fb, prev := 0.0, 0.0, 0.0
	for i := range p {
		fa += pa[i]
		fb += pb[i]
		f := fa * fb
		p[i] = f - prev
		prev = f
	}
	return Dist{Start: start, Step: step, P: p}
}

// CombineMin is the distribution of min(A, B) for independent arrivals —
// the reconvergence rule for the earliest arrival: survival functions
// multiply.
func CombineMin(a, b Dist) Dist {
	if a.Empty() {
		return b
	}
	if b.Empty() {
		return a
	}
	start, step, pa, pb := aligned(a, b)
	p := make([]float64, len(pa))
	fa, fb, prev := 0.0, 0.0, 0.0
	for i := range p {
		fa += pa[i]
		fb += pb[i]
		f := 1 - (1-fa)*(1-fb)
		p[i] = f - prev
		prev = f
	}
	return Dist{Start: start, Step: step, P: p}
}

// CDF is P(X ≤ t).
func (d Dist) CDF(t tick.Time) float64 {
	if d.Empty() {
		return 0
	}
	f := 0.0
	for i, p := range d.P {
		x := d.Start
		if d.Step > 0 {
			x += tick.Time(i) * d.Step
		}
		if x > t {
			break
		}
		f += p
	}
	if f > 1 {
		f = 1
	}
	return f
}

// Mean is the expected arrival in grid time.
func (d Dist) Mean() float64 {
	m := 0.0
	for i, p := range d.P {
		x := d.Start
		if d.Step > 0 {
			x += tick.Time(i) * d.Step
		}
		m += float64(x) * p
	}
	return m
}

// Mass is the total probability (1 up to rounding for any valid Dist).
func (d Dist) Mass() float64 {
	m := 0.0
	for _, p := range d.P {
		m += p
	}
	return m
}

// SiteDist is the arrival-time distribution at one constraint-site input
// pin, for the start whose worst-case arrival is statistically critical.
// WCMin/WCMax are the interval-analysis arrivals of the same paths, so a
// caller holding a worst-case slack s can place the deadline at
// WCMax + s (late checks) or WCMin − s (early checks) and read the
// violation probability straight off the distribution.
type SiteDist struct {
	From  string // start net of the critical path
	To    string // "prim:port" end-pin label
	WCMin tick.Time
	WCMax tick.Time
	Late  Dist // latest-arrival distribution (max over reconvergent paths)
	Early Dist // earliest-arrival distribution (min over reconvergent paths)
}

// DefaultDistStep is the quadrature grid: 1/256 of the clock period,
// never finer than one tick.  Fixed per design — the "seed" of the
// deterministic quadrature.
func DefaultDistStep(period tick.Time) tick.Time {
	step := period / 256
	if step < 1 {
		step = 1
	}
	return step
}

// AnalyzeDist runs the quadrature DP over the same combinational graph
// as Analyze, producing one SiteDist per end pin (keyed by its
// "prim:port" label), for the start with the largest worst-case arrival.
// step ≤ 0 selects DefaultDistStep.  Designs with combinational loops
// report the loop nets like Analyze; looped nets get no distribution.
func AnalyzeDist(d *netlist.Design, step tick.Time) (map[string]SiteDist, []string) {
	if step <= 0 {
		step = DefaultDistStep(d.Period)
	}
	g := buildGraph(d)
	n := len(d.Nets)
	const unset = tick.Time(-1)
	minA := make([]tick.Time, n)
	maxA := make([]tick.Time, n)
	late := make([]Dist, n)
	early := make([]Dist, n)
	out := make(map[string]SiteDist)
	for _, s := range g.starts {
		for i := 0; i < n; i++ {
			minA[i], maxA[i] = unset, unset
			late[i], early[i] = Dist{}, Dist{}
		}
		minA[s], maxA[s] = 0, 0
		late[s] = PointDist(0, step)
		early[s] = PointDist(0, step)
		for _, u := range g.order {
			if maxA[u] == unset {
				continue
			}
			for _, e := range g.adj[u] {
				ed := RangeDist(tick.Range{Min: e.min, Max: e.max}, step)
				late[e.to] = CombineMax(late[e.to], Convolve(late[u], ed))
				early[e.to] = CombineMin(early[e.to], Convolve(early[u], ed))
				if na := minA[u] + e.min; minA[e.to] == unset || na < minA[e.to] {
					minA[e.to] = na
				}
				if na := maxA[u] + e.max; na > maxA[e.to] {
					maxA[e.to] = na
				}
			}
		}
		// Deterministic end sweep: the ends map iterates in random order,
		// but entries with different labels never interact and same-label
		// updates arrive in the deterministic start order, with a total
		// keep-best rule.
		for net, pins := range g.ends {
			if maxA[net] == unset {
				continue
			}
			for _, pin := range pins {
				wd := RangeDist(pin.wire, step)
				cand := SiteDist{
					From:  d.Nets[s].Name,
					To:    pin.label,
					WCMin: minA[net] + pin.wire.Min,
					WCMax: maxA[net] + pin.wire.Max,
					Late:  Convolve(late[net], wd),
					Early: Convolve(early[net], wd),
				}
				cur, ok := out[pin.label]
				if !ok || cand.WCMax > cur.WCMax ||
					(cand.WCMax == cur.WCMax && cand.From < cur.From) {
					out[pin.label] = cand
				}
			}
		}
	}
	return out, g.loops
}

// SiteDistsByPrim regroups AnalyzeDist output by checker/storage
// instance name (the part of the end label before the colon), keeping
// each instance's pins sorted by label so iteration is deterministic.
func SiteDistsByPrim(sites map[string]SiteDist) map[string][]SiteDist {
	byPrim := make(map[string][]SiteDist)
	for label, sd := range sites {
		prim := label
		if i := lastColon(label); i >= 0 {
			prim = label[:i]
		}
		byPrim[prim] = append(byPrim[prim], sd)
	}
	for _, sds := range byPrim {
		sort.Slice(sds, func(i, j int) bool { return sds[i].To < sds[j].To })
	}
	return byPrim
}

func lastColon(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == ':' {
			return i
		}
	}
	return -1
}
