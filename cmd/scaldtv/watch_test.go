package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"scaldtv"
)

// lineWriter forwards each Write to a channel so the test can wait for
// watch output deterministically instead of sleeping.
type lineWriter struct{ ch chan string }

func (w *lineWriter) Write(p []byte) (int, error) {
	w.ch <- string(p)
	return len(p), nil
}

const watchV1 = `design WATCHED
period 50ns
clockunit 1ns
defaultwire 0ns 0ns
buf "B1" delay=(1,2) ("IN .S5-45") -> (MID)
reg "R1" delay=(1,3) ("CK .P40-45", MID) -> (Q)
setuphold "CHK" setup=2.5 hold=1.5 (MID, "CK .P40-45")
`

// TestWatchIncremental drives watch through three saves: the initial
// full verification, a delay edit (parameter-only, must reverify
// incrementally) and an added instance (structural, must fall back to a
// full run).
func TestWatchIncremental(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.scald")
	write := func(text string, mod time.Time) {
		t.Helper()
		if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Chtimes(path, mod, mod); err != nil {
			t.Fatal(err)
		}
	}
	base := time.Now()
	write(watchV1, base)

	out := &lineWriter{ch: make(chan string, 16)}
	done := make(chan error, 1)
	go func() {
		done <- watch(path, false, scaldtv.Options{Workers: 1}, out, 2*time.Millisecond, 3)
	}()
	next := func(what string) string {
		t.Helper()
		select {
		case line := <-out.ch:
			return line
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out waiting for %s", what)
			return ""
		}
	}

	if line := next("initial pass"); !strings.Contains(line, "(full)") {
		t.Fatalf("initial pass not a full run: %q", line)
	}

	// Parameter-only edit: B1 slows down.
	write(strings.Replace(watchV1, `"B1" delay=(1,2)`, `"B1" delay=(1,4)`, 1), base.Add(time.Second))
	if line := next("incremental pass"); !strings.Contains(line, "incremental") {
		t.Fatalf("delay edit did not reverify incrementally: %q", line)
	}

	// Structural edit: a new instance appears.
	write(strings.Replace(watchV1, `"B1" delay=(1,2)`, `"B1" delay=(1,4)`, 1)+
		"buf \"B2\" delay=(1,2) (Q) -> (Q2)\n", base.Add(2*time.Second))
	if line := next("structural pass"); !strings.Contains(line, "(full)") {
		t.Fatalf("structural edit did not fall back to a full run: %q", line)
	}

	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestWatchCompileError checks that a broken save is reported without
// ending the watch, and that the next good save still reverifies.
func TestWatchCompileError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.scald")
	base := time.Now()
	if err := os.WriteFile(path, []byte(watchV1), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path, base, base); err != nil {
		t.Fatal(err)
	}

	out := &lineWriter{ch: make(chan string, 16)}
	done := make(chan error, 1)
	go func() {
		done <- watch(path, false, scaldtv.Options{Workers: 1}, out, 2*time.Millisecond, 2)
	}()
	next := func() string {
		select {
		case line := <-out.ch:
			return line
		case <-time.After(10 * time.Second):
			t.Fatal("timed out waiting for watch output")
			return ""
		}
	}
	if line := next(); !strings.Contains(line, "(full)") {
		t.Fatalf("initial pass not a full run: %q", line)
	}

	if err := os.WriteFile(path, []byte("design BROKEN\nnot valid hdl\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path, base.Add(time.Second), base.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if line := next(); !strings.Contains(line, "watch:") || strings.Contains(line, "violation(s)") {
		t.Fatalf("broken save not reported as an error: %q", line)
	}

	fixed := strings.Replace(watchV1, "setup=2.5", "setup=3.5", 1)
	if err := os.WriteFile(path, []byte(fixed), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path, base.Add(2*time.Second), base.Add(2*time.Second)); err != nil {
		t.Fatal(err)
	}
	if line := next(); !strings.Contains(line, "incremental") {
		t.Fatalf("save after a broken one did not reverify incrementally: %q", line)
	}

	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestWatchMissingFile: a path that never existed is an immediate error.
func TestWatchMissingFile(t *testing.T) {
	err := watch(filepath.Join(t.TempDir(), "absent.scald"), false, scaldtv.Options{}, os.Stderr, time.Millisecond, 1)
	if err == nil {
		t.Fatal("watch of a missing file did not fail")
	}
}
