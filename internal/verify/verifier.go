package verify

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"

	"scaldtv/internal/assertion"
	"scaldtv/internal/eval"
	"scaldtv/internal/netlist"
	"scaldtv/internal/serr"
	"scaldtv/internal/values"
)

// Options tunes the verification run.
type Options struct {
	// MaxPasses caps the number of primitive evaluations per case.  Zero
	// means the default of 50 evaluations per primitive (at least 1000).
	MaxPasses int
	// KeepWaves retains the final waveform of every net in each
	// CaseResult (needed for the timing summary listing).
	KeepWaves bool
	// Margins collects the outcome of every constraint evaluation —
	// passing or failing — so slack listings and cycle-time estimates can
	// be produced (§1.1).
	Margins bool
	// Force overrides the initial waveform of undriven nets, in place of
	// their assertion or the all-stable default.  It supports hierarchical
	// flows (driving a section with waveforms computed elsewhere) and the
	// soundness tests that compare symbolic against concrete behaviour.
	Force map[netlist.NetID]values.Waveform
	// Workers bounds the number of case-analysis cycles evaluated
	// concurrently.  Zero means runtime.GOMAXPROCS(0).  Workers == 1
	// preserves the paper's sequential schedule, where each case after
	// the first reevaluates only its affected cone incrementally (§2.7,
	// §3.3.2).  Workers > 1 relaxes every case independently from a
	// snapshot of the initialised state: violations, margins and kept
	// waveforms are identical to the sequential run and deterministic
	// across worker counts, but the per-case Events/PrimEvals counters
	// reflect full rather than incremental relaxation.  On designs with
	// few cases (or deep sharing between consecutive case cones) the
	// sequential incremental schedule can do strictly less work.
	Workers int
	// IntraWorkers bounds the number of workers evaluating primitives
	// concurrently *within* one case.  0 or 1 preserves the paper's
	// serial event-driven worklist (§2.9).  Greater values switch the
	// relaxation to levelized wavefront scheduling: the primitive graph
	// is condensed into strongly connected components with sequential
	// edges cut (netlist.Levelization), acyclic levels evaluate their
	// ready components in parallel, feedback components converge with a
	// scoped serial worklist, and components containing storage run in a
	// serial phase at the end of each sweep.  Because the relaxation is a
	// confluent fixed-point iteration from an identical seed, the
	// converged waveforms — and hence violations, margins, kept waves and
	// the cross-reference — are bit-identical to the serial engine for
	// every IntraWorkers value; only wall-clock time and the cache
	// hit/miss split vary.  Composes with Workers: each case worker runs
	// its own intra-case pool.
	IntraWorkers int
	// NoCache disables evaluation memoization.  By default (zero value)
	// the verifier interns waveforms so equal ones share storage and
	// memoizes primitive evaluations on (kind, parameters, processed
	// input identities), so relaxation passes and case-analysis re-runs
	// skip Prim calls whose inputs are unchanged.  Cache keys are exact —
	// interned-handle equality coincides with semantic waveform equality
	// — so results are bit-identical with the cache on or off, for any
	// Workers value; only the Stats cache counters differ.  The scaldtv
	// driver exposes this as the -cache=false escape hatch.
	NoCache bool
}

// intraWorkers resolves the effective intra-case worker count: 1 selects
// the serial worklist engine, anything greater the wavefront scheduler.
func (o Options) intraWorkers() int {
	if o.IntraWorkers < 1 {
		return 1
	}
	return o.IntraWorkers
}

// fillWavefrontStats records the levelization shape in the stats when the
// wavefront engine is selected.
func (o Options) fillWavefrontStats(d *netlist.Design, s *Stats) {
	if o.intraWorkers() <= 1 {
		return
	}
	lev := d.Levelization()
	s.IntraWorkers = o.intraWorkers()
	s.Levels = len(lev.Levels)
	s.SCCs = len(lev.Comps)
	s.FeedbackSCCs = lev.Feedback
}

// workers resolves the effective worker count for a case list.
func (o Options) workers(nCases int) int {
	n := o.Workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > nCases {
		n = nCases
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Stats aggregates the execution statistics the paper reports in
// Table 3-1.  Events, PrimEvals, VerifyTime and CheckTime are *work*
// totals summed over every case; under concurrent case evaluation the
// summed phase times can exceed WallTime, the elapsed wall-clock time of
// the whole case-evaluation phase.
type Stats struct {
	Primitives int // driving + checking primitive instances
	Nets       int // signal bits (value lists stored)
	Events     int // output-value changes processed, summed over all cases
	PrimEvals  int // primitive evaluations scheduled, summed over all cases
	Cases      int // case-analysis cycles simulated
	Workers    int // case-evaluation workers actually used

	// Wavefront-scheduling counters, set only when Options.IntraWorkers
	// selects the levelized engine (IntraWorkers > 1).  Levels, SCCs and
	// FeedbackSCCs describe the design's cached levelization; Sweeps
	// counts level sweeps to fixed point, summed over all cases, and is
	// deterministic for a given design and edit — it does not depend on
	// the worker count.
	IntraWorkers int // intra-case evaluation workers
	Levels       int // topological levels of the condensed acyclic graph
	SCCs         int // strongly connected components (checkers excluded)
	FeedbackSCCs int // components needing local fixed-point iteration
	Sweeps       int // wavefront sweeps to fixed point, all cases

	// Evaluation-cache counters (zero when Options.NoCache is set).  Hit
	// and miss totals are summed over all cases and workers; because the
	// cache is shared, which worker takes a given miss depends on
	// scheduling, so these counters — unlike every verification result —
	// may vary between runs of a concurrent verification.
	CacheHits   int           // scheduled evaluations served from the memo cache
	CacheMisses int           // evaluations computed and stored
	Interned    int           // distinct waveforms in the interning table
	Deduped     int           // waveform stores that reused an interned copy
	BuildTime   time.Duration // building evaluation structures
	VerifyTime  time.Duration // relaxation to fixed point, summed over all cases
	CheckTime   time.Duration // constraint checking, summed over all cases
	WallTime    time.Duration // wall-clock time of the case-evaluation phase

	// Incremental re-verification counters, set only by Verifier.Reverify
	// and Verifier.Update.  DirtyPrims/DirtyNets measure the structural
	// forward cone of the edit (the upper bound on revisited work);
	// ReusedWaves counts converged waveforms carried over unchanged,
	// summed over all cases.  ReverifyTime is the wall-clock time of the
	// whole incremental pass, seeding included.
	Incremental  bool
	DirtyPrims   int
	DirtyNets    int
	ReusedWaves  int
	ReverifyTime time.Duration

	// Cached marks a result restored from a persisted snapshot
	// (verify.Restore) rather than computed by relaxation.  It affects
	// only the human-readable summary — the JSON report is byte-identical
	// either way, which is the store's correctness contract.
	Cached bool
}

// CaseResult is the outcome of one simulated case-analysis cycle (§2.7).
type CaseResult struct {
	Label      string
	Events     int // output-value changes processed in this case
	PrimEvals  int
	Violations []Violation
	Waves      []values.Waveform // per net, when Options.KeepWaves is set
}

// Result is a complete verification outcome.
//
// Violations and Margins are deterministically ordered regardless of the
// worker count: primarily by case index (the designer's declared case
// order), then by constraint site — a case's convergence failure first,
// then the checker primitives in design order (each emitting its edges in
// cycle order), then the assertion cross-checks in net order.
type Result struct {
	Design     *netlist.Design
	Cases      []CaseResult // one per case, in declared case order
	Violations []Violation  // all cases, ordered by (case index, constraint site)
	Margins    []Margin     // every constraint outcome, when Options.Margins is set
	Undefined  []string     // cross-reference listing: undriven nets with no assertion (§2.5)
	Stats      Stats
}

// Errors reports whether any violation was detected.
func (r *Result) Errors() bool { return len(r.Violations) > 0 }

// verifier holds the relaxation state.
type verifier struct {
	d    *netlist.Design
	opts Options
	// ctx carries the run's cooperative-cancellation signal (nil means
	// context.Background()).  It is polled only at schedule-neutral
	// points — serial pass boundaries, wavefront level barriers and sweep
	// starts — so cancellation can abort a run but can never change the
	// result of one that completes: a canceled case reports an error
	// instead of a result, never a partial result.  aborted records the
	// structured cancellation error for runCase to surface.
	ctx     context.Context
	aborted error

	sigs    []eval.Signal                  // current signal per net
	initial []values.Waveform              // assertion/default seed per net
	pinned  []bool                         // nets pinned to a clock assertion (§2.9)
	caseMap map[netlist.NetID]values.Value // active case mapping (§2.7.1)
	margins []Margin

	// Computed value of pinned driven nets, for the assertion
	// cross-check.  Indexed by net so concurrent wavefront workers commit
	// to disjoint slots.
	altOutW   []values.Waveform
	altOutSet []bool

	// Wired-OR support: nets with several drivers keep each driver's
	// latest output; the net's value is their OR.  wiredSlot maps each
	// (net, driver) pair to its slot in the per-verifier output tables;
	// it is built once and shared immutably across case workers.
	wired       map[netlist.NetID][]netlist.PrimID
	wiredSlot   map[[2]int32]int
	wiredOutW   []values.Waveform
	wiredOutSet []bool

	// Evaluation memoization (nil when Options.NoCache is set).  The
	// interner and cache are shared by every case worker: each case
	// starts from whatever the shared post-initialisation relaxation has
	// already computed.  A case-forced net changes the interned handles
	// of every waveform downstream of it, so the forced cone can never be
	// served stale entries — the key, not an invalidation walk, carries
	// the dependency.  sigID holds the interned handle of each net's
	// current waveform.
	intern *values.Interner
	cache  *eval.Cache
	sigID  []uint64

	// scratch is the serial engine's evaluation scratch (key buffer,
	// segment arena, getter closures), created lazily; netBuf collects
	// the nets changed by one evaluation.  wfScratch holds the wavefront
	// engine's per-worker scratches (worker 0's doubles as the serial
	// phase's), created lazily and reused across sweeps and cases.
	scratch   *evalScratch
	netBuf    []netlist.NetID
	wfScratch []*evalScratch

	// The serial worklist is a queue with an explicit head index — a pop
	// advances qhead instead of re-slicing, so the backing array is
	// compacted and reused rather than pinned and regrown.
	queue   []netlist.PrimID
	qhead   int
	inQueue []bool
	events  int
	evals   int
	sweeps  int // wavefront sweeps in the current case (intra engine only)

	// Incremental re-verification state, used only by Verifier-retained
	// case verifiers: changed marks nets whose stored waveform (or Dirs)
	// moved during the current pass, so constraint sites reading only
	// clean nets can reuse their memoized outcome; sites holds that
	// per-primitive memo.
	changed []bool
	sites   []siteChecks
}

// siteChecks is the memoized outcome of one constraint site — a checker
// primitive, a gate's directive rules, or a storage element's
// clock-defined rule — within one case.
type siteChecks struct {
	viols   []Violation
	margins []Margin
}

// Run verifies the design and returns the result.  The design must have
// passed netlist validation (Builder.Build or Design.Check).
func Run(d *netlist.Design, opts Options) (*Result, error) {
	return RunContext(context.Background(), d, opts)
}

// RunContext is Run with cooperative cancellation: when ctx is canceled
// (or its deadline expires) the relaxation aborts at the next pass
// boundary or level barrier and the run returns a structured error of
// kind serr.Canceled wrapping ctx.Err().  A run that completes is
// bit-identical to an uncancelled one — cancellation can only abort,
// never alter, a result.
func RunContext(ctx context.Context, d *netlist.Design, opts Options) (*Result, error) {
	return (&Verifier{d: d, opts: opts}).run(ctx, false)
}

// ctxCheck polls the run's context.  It records and returns a structured
// cancellation error once the context is done, nil otherwise.
func (v *verifier) ctxCheck() error {
	if v.aborted != nil {
		return v.aborted
	}
	if v.ctx == nil {
		return nil
	}
	if err := v.ctx.Err(); err != nil {
		v.aborted = serr.Wrap(serr.Canceled, err)
		return v.aborted
	}
	return nil
}

// ctxCheckEvery polls the context only every 256th evaluation, keeping
// the cost of cooperative cancellation out of the serial hot loop.
func (v *verifier) ctxCheckEvery() error {
	if v.ctx == nil || v.evals&0xff != 0 {
		return nil
	}
	return v.ctxCheck()
}

// seedWave computes the §2.9 step-1 initial waveform of one net: a Force
// override, else the assertion waveform (pinned when it is a clock
// assertion), else the always-stable default for undriven unasserted nets
// (undef: listed in the cross-reference for the designer's attention),
// else UNKNOWN for driven nets.
func (v *verifier) seedWave(id netlist.NetID) (w values.Waveform, pinned, undef bool, err error) {
	n := &v.d.Nets[id]
	if fw, ok := v.opts.Force[id]; ok {
		if n.Driver != netlist.NoDriver {
			return w, false, false, serr.Newf(serr.Assertion, "verify: cannot force driven net %q", n.Name)
		}
		if err := fw.Check(); err != nil {
			return w, false, false, serr.Newf(serr.Assertion, "verify: forced waveform for %q: %v", n.Name, err)
		}
		if fw.Period != v.d.Period {
			return w, false, false, serr.Newf(serr.Assertion, "verify: forced waveform for %q has period %v, want %v", n.Name, fw.Period, v.d.Period)
		}
		return fw, false, false, nil
	}
	switch {
	case n.Assert != nil:
		aw, aerr := n.Assert.Waveform(v.d.Env())
		if aerr != nil {
			return w, false, false, serr.Newf(serr.Assertion, "verify: net %q: %v", n.Name, aerr)
		}
		pinned = n.Assert.Kind == assertion.Clock || n.Assert.Kind == assertion.PrecisionClock
		return aw, pinned, false, nil
	case n.Driver == netlist.NoDriver:
		return values.Const(v.d.Period, values.VS), false, true, nil
	default:
		return values.Const(v.d.Period, values.VU), false, false, nil
	}
}

// initVerifier builds the shared post-initialisation relaxation state
// (§2.9 step 1) every case starts from.  A non-nil interner/cache pair is
// adopted — the Verifier keeps them across runs so re-verification is
// served from warm memo tables; otherwise fresh ones are created unless
// NoCache asks for none.
func initVerifier(d *netlist.Design, opts Options, intern *values.Interner, cache *eval.Cache) (*verifier, *Result, error) {
	v := &verifier{
		d:         d,
		opts:      opts,
		sigs:      make([]eval.Signal, len(d.Nets)),
		initial:   make([]values.Waveform, len(d.Nets)),
		pinned:    make([]bool, len(d.Nets)),
		altOutW:   make([]values.Waveform, len(d.Nets)),
		altOutSet: make([]bool, len(d.Nets)),
		caseMap:   make(map[netlist.NetID]values.Value),
		inQueue:   make([]bool, len(d.Prims)),
	}
	if !opts.NoCache {
		if intern == nil {
			intern = values.NewInterner()
			cache = eval.NewCache()
		}
		v.intern = intern
		v.cache = cache
		v.sigID = make([]uint64, len(d.Nets))
	}
	res := &Result{Design: d}

	if d.WiredOr {
		counts := map[netlist.NetID]int{}
		for pi := range d.Prims {
			for _, port := range d.Prims[pi].Out {
				for _, o := range port.Bits {
					counts[o]++
				}
			}
		}
		v.wired = map[netlist.NetID][]netlist.PrimID{}
		v.wiredSlot = map[[2]int32]int{}
		for i := range d.Nets {
			n := netlist.NetID(i)
			if counts[n] <= 1 {
				continue
			}
			drivers := d.Drivers(n)
			v.wired[n] = drivers
			for _, dp := range drivers {
				v.wiredSlot[[2]int32{int32(n), int32(dp)}] = len(v.wiredSlot)
			}
		}
		v.wiredOutW = make([]values.Waveform, len(v.wiredSlot))
		v.wiredOutSet = make([]bool, len(v.wiredSlot))
	}

	// §2.9 step 1: initialise signals.  Clock-asserted nets are pinned to
	// their asserted waveform; stable-asserted nets seed S/C; driven nets
	// without assertions start UNKNOWN; undriven, unasserted nets are
	// taken to be always stable and listed for the designer's attention.
	undefSeen := map[string]bool{}
	for i := range d.Nets {
		w, pinned, undef, err := v.seedWave(netlist.NetID(i))
		if err != nil {
			return nil, nil, err
		}
		v.initial[i] = w
		v.pinned[i] = pinned
		if undef && !undefSeen[d.Nets[i].Base] {
			undefSeen[d.Nets[i].Base] = true
			res.Undefined = append(res.Undefined, d.Nets[i].Base)
		}
		v.setSig(netlist.NetID(i), eval.Signal{Wave: w})
	}
	sort.Strings(res.Undefined)
	res.Stats.Primitives = len(d.Prims)
	res.Stats.Nets = len(d.Nets)
	return v, res, nil
}

// caseOutcome carries everything one simulated case contributes to the
// merged Result.
type caseOutcome struct {
	cr         CaseResult
	margins    []Margin
	verifyTime time.Duration
	checkTime  time.Duration
	reused     int // converged waveforms carried over unchanged (incremental only)
	sweeps     int // wavefront sweeps to fixed point (intra engine only)
	err        error
}

// clone snapshots the per-case relaxation state after the shared §2.9
// initialisation, so a worker can relax one case independently.  The
// design, options, initial waveforms, pinning and wired-OR driver lists
// are immutable during relaxation and shared; the mutable state — current
// signals, case mapping, alternate clock outputs, wired-OR driver outputs
// and the worklist — is fresh.  Waveform segment lists are never mutated
// in place, so sharing their backing arrays across workers is safe.  The
// evaluation cache and interning table are deliberately shared, not
// snapshotted: their entries are keyed on exact inputs, so a worker can
// only ever be served results that its own evaluation would reproduce.
func (v *verifier) clone() *verifier {
	w := &verifier{
		d:         v.d,
		opts:      v.opts,
		ctx:       v.ctx,
		sigs:      append([]eval.Signal(nil), v.sigs...),
		initial:   v.initial,
		pinned:    v.pinned,
		altOutW:   make([]values.Waveform, len(v.d.Nets)),
		altOutSet: make([]bool, len(v.d.Nets)),
		caseMap:   make(map[netlist.NetID]values.Value),
		wired:     v.wired,
		wiredSlot: v.wiredSlot,
		intern:    v.intern,
		cache:     v.cache,
		inQueue:   make([]bool, len(v.d.Prims)),
	}
	if v.sigID != nil {
		w.sigID = append([]uint64(nil), v.sigID...)
	}
	if v.wired != nil {
		w.wiredOutW = make([]values.Waveform, len(v.wiredSlot))
		w.wiredOutSet = make([]bool, len(v.wiredSlot))
	}
	return w
}

// snapshot deep-copies the converged per-case state — current signals,
// case mapping, alternate clock outputs and wired-OR driver outputs — so
// a Verifier can retain it for incremental re-verification while the
// sequential schedule's shared verifier moves on to the next case.
func (v *verifier) snapshot() *verifier {
	w := v.clone()
	for k, val := range v.caseMap {
		w.caseMap[k] = val
	}
	copy(w.altOutW, v.altOutW)
	copy(w.altOutSet, v.altOutSet)
	copy(w.wiredOutW, v.wiredOutW)
	copy(w.wiredOutSet, v.wiredOutSet)
	return w
}

// setSig installs a net's signal unconditionally, interning its waveform
// when the cache is enabled so equal waveforms share storage and carry
// comparable handles.
func (v *verifier) setSig(id netlist.NetID, sig eval.Signal) {
	if v.intern != nil {
		sig.Wave, v.sigID[id] = v.intern.Intern(sig.Wave)
	}
	v.sigs[id] = sig
}

// storeSig installs a net's signal if it differs from the current one,
// reporting whether it changed.  With interning enabled the comparison is
// a handle compare — no waveform walk, no allocation.  During incremental
// re-verification every store that changes a net is recorded, so
// constraint sites reading only unchanged nets can reuse their memoized
// outcome.
func (v *verifier) storeSig(id netlist.NetID, sig eval.Signal) bool {
	if v.intern != nil {
		var wid uint64
		sig.Wave, wid = v.intern.Intern(sig.Wave)
		if wid == v.sigID[id] && sig.Dirs == v.sigs[id].Dirs {
			return false
		}
		v.sigID[id] = wid
	} else if sig.Wave.Equal(v.sigs[id].Wave) && sig.Dirs == v.sigs[id].Dirs {
		return false
	}
	v.sigs[id] = sig
	if v.changed != nil {
		v.changed[id] = true
	}
	return true
}

// runCase simulates one case-analysis cycle on this verifier's state:
// install the mapping, relax to fixed point, check every constraint.
func (v *verifier) runCase(c netlist.Case, first bool) caseOutcome {
	verifyStart := time.Now()
	v.events, v.evals, v.sweeps = 0, 0, 0
	if err := v.applyCase(c, first); err != nil {
		return caseOutcome{err: err}
	}
	conv := v.relax()
	if v.aborted != nil {
		err := v.aborted
		v.aborted = nil
		return caseOutcome{err: err}
	}
	out := caseOutcome{verifyTime: time.Since(verifyStart), sweeps: v.sweeps}

	checkStart := time.Now()
	cr := CaseResult{Label: c.Label, Events: v.events, PrimEvals: v.evals}
	if !conv {
		cr.Violations = append(cr.Violations, Violation{
			Kind:   ConvergenceViolation,
			Case:   c.Label,
			Detail: fmt.Sprintf("fixed point not reached within %d primitive evaluations", v.passCap()),
		})
	}
	cr.Violations = append(cr.Violations, v.check(c.Label)...)
	if v.opts.Margins {
		out.margins = v.margins
		v.margins = nil
	}
	if v.opts.KeepWaves {
		cr.Waves = make([]values.Waveform, len(v.sigs))
		for i, s := range v.sigs {
			cr.Waves[i] = s.Wave
		}
	}
	out.checkTime = time.Since(checkStart)
	out.cr = cr
	return out
}

// applyCase installs the case mapping (§2.7.1) and seeds the worklist: the
// whole circuit for the first case, only the affected cone afterwards.
func (v *verifier) applyCase(c netlist.Case, first bool) error {
	newMap, err := caseMapping(v.d, c)
	if err != nil {
		return err
	}

	// Nets leaving or entering the mapping must be re-seeded.
	affected := make(map[netlist.NetID]bool)
	for n := range v.caseMap {
		affected[n] = true
	}
	for n := range newMap {
		affected[n] = true
	}
	v.caseMap = newMap

	if first {
		for i := range v.d.Nets {
			id := netlist.NetID(i)
			v.setSig(id, eval.Signal{Wave: v.mapped(id, v.initial[i]), Dirs: v.sigs[i].Dirs})
		}
		for pi := range v.d.Prims {
			if !v.d.Prims[pi].Kind.IsChecker() {
				v.enqueue(netlist.PrimID(pi))
			}
		}
		return nil
	}
	for id := range affected {
		n := &v.d.Nets[id]
		if n.Driver == netlist.NoDriver || v.pinned[id] {
			// Re-seed from the initial value under the new mapping.
			w := v.mapped(id, v.initial[id])
			if v.storeSig(id, eval.Signal{Wave: w, Dirs: v.sigs[id].Dirs}) {
				v.events++
				v.fanout(id)
			}
		} else {
			// Driven: its driver recomputes and the store applies the
			// new mapping.
			v.enqueue(n.Driver)
		}
	}
	return nil
}

// caseMapping resolves a case's signal assignments (§2.7.1) to the
// per-net constant map the relaxation applies.  Shared by applyCase and
// snapshot restoration, which must rebuild the identical mapping.
func caseMapping(d *netlist.Design, c netlist.Case) (map[netlist.NetID]values.Value, error) {
	m := make(map[netlist.NetID]values.Value)
	for _, as := range c.Assignments {
		found := false
		for i := range d.Nets {
			if netlist.BaseMatches(d.Nets[i].Base, as.Base) {
				m[netlist.NetID(i)] = as.Value
				found = true
			}
		}
		if !found {
			return nil, serr.Newf(serr.Elaborate, "verify: case %q names unknown signal %q", c.Label, as.Base)
		}
	}
	return m, nil
}

// mapped applies the active case mapping to a waveform destined for net
// id: STABLE values become the case constant (§2.7.1).
func (v *verifier) mapped(id netlist.NetID, w values.Waveform) values.Waveform {
	cv, ok := v.caseMap[id]
	if !ok {
		return w
	}
	return w.MapUnary(func(x values.Value) values.Value {
		if x == values.VS {
			return cv
		}
		return x
	})
}

// waveID reports the interned handle of a net's current waveform, for
// cache-key building.  Valid only when the cache is enabled.
func (v *verifier) waveID(n netlist.NetID) uint64 { return v.sigID[n] }

func (v *verifier) enqueue(p netlist.PrimID) {
	if v.inQueue[p] || v.d.Prims[p].Kind.IsChecker() {
		return
	}
	v.inQueue[p] = true
	v.queue = append(v.queue, p)
}

// popQueue removes and returns the head of the worklist.  The consumed
// prefix is compacted away once it dominates the slice, so the backing
// array stays bounded by the number of outstanding entries instead of
// growing with the total number of pops (the [1:] re-slice it replaces
// pinned the array head forever).
func (v *verifier) popQueue() netlist.PrimID {
	p := v.queue[v.qhead]
	v.qhead++
	switch {
	case v.qhead == len(v.queue):
		v.queue = v.queue[:0]
		v.qhead = 0
	case v.qhead >= 64 && v.qhead > len(v.queue)/2:
		n := copy(v.queue, v.queue[v.qhead:])
		v.queue = v.queue[:n]
		v.qhead = 0
	}
	return p
}

// queueLen reports the number of outstanding worklist entries.
func (v *verifier) queueLen() int { return len(v.queue) - v.qhead }

// clearQueue empties the worklist and its membership flags.
func (v *verifier) clearQueue() {
	v.queue = v.queue[:0]
	v.qhead = 0
	for i := range v.inQueue {
		v.inQueue[i] = false
	}
}

func (v *verifier) fanout(id netlist.NetID) {
	for _, p := range v.d.Nets[id].Fanout {
		v.enqueue(p)
	}
}

// The documented MaxPasses default: 50 evaluations per primitive, with a
// floor of 1000 so tiny designs containing a genuine oscillation still get
// enough passes to prove non-convergence rather than flagging it spuriously.
const (
	defaultEvalsPerPrim = 50
	defaultPassFloor    = 1000
)

func (v *verifier) passCap() int { return v.opts.passCap(len(v.d.Prims)) }

// passCap resolves the effective evaluation cap for a design with nPrims
// primitives.  It is also part of the store's content address: two runs
// with different caps can disagree on convergence, so they must never
// share a cached report.
func (o Options) passCap(nPrims int) int {
	if o.MaxPasses > 0 {
		return o.MaxPasses
	}
	limit := defaultEvalsPerPrim * nPrims
	if limit < defaultPassFloor {
		limit = defaultPassFloor
	}
	return limit
}

// evalScratch is one evaluation worker's private scratch: the cache-key
// buffer, the waveform segment arena, and the getter closures built once
// instead of per evaluation.  The serial engine keeps one; the wavefront
// engine keeps one per worker.
type evalScratch struct {
	keyBuf []byte
	arena  *values.Arena
	get    eval.Getter
	wid    eval.WaveID
}

func (v *verifier) newScratch() *evalScratch {
	sc := &evalScratch{arena: &values.Arena{}}
	sc.get = func(n netlist.NetID) eval.Signal { return v.sigs[n] }
	if v.sigID != nil {
		sc.wid = func(n netlist.NetID) uint64 { return v.sigID[n] }
	}
	return sc
}

// evalPrim evaluates one primitive and commits its outputs, appending
// every net whose stored signal changed to dst.  Pinned nets go to the
// altOut side table and are never appended; the caller owns event
// counting and consumer scheduling.
//
// Under the wavefront engine this runs concurrently on several workers.
// That is safe because every shared write lands at an index owned by this
// primitive alone — a net has one driver (wired-OR co-drivers share a
// component and hence a worker), so sigs/sigID/changed/altOut commits of
// concurrently evaluated primitives never collide — and the interner and
// cache are internally synchronized.
func (v *verifier) evalPrim(pid netlist.PrimID, sc *evalScratch, dst []netlist.NetID) []netlist.NetID {
	p := &v.d.Prims[pid]
	var outs []eval.Signal
	var err error
	if v.cache != nil {
		// Memoized evaluation: the key covers everything Prim reads,
		// with input waveforms as interned handles, so a hit returns
		// exactly what evaluation would produce.  Outputs are interned
		// before storing so every consumer shares one copy (and no cache
		// entry references a worker's arena).
		sc.keyBuf = eval.AppendKey(sc.keyBuf[:0], v.d, p, sc.get, sc.wid)
		var ok bool
		if outs, ok = v.cache.Get(sc.keyBuf); !ok {
			outs, err = eval.PrimA(v.d, p, sc.get, sc.arena)
			if err == nil && outs != nil {
				for i := range outs {
					outs[i].Wave, _ = v.intern.Intern(outs[i].Wave)
				}
				v.cache.Put(sc.keyBuf, outs)
			}
		}
	} else {
		outs, err = eval.PrimA(v.d, p, sc.get, sc.arena)
	}
	if err != nil || outs == nil {
		return dst
	}
	for bit, sig := range outs {
		id := p.Out[0].Bits[bit]
		if drivers, isWired := v.wired[id]; isWired {
			// Wired-OR: remember this driver's output and fold the
			// drivers together (missing ones count as UNKNOWN until
			// their first evaluation).
			slot := v.wiredSlot[[2]int32{int32(id), int32(pid)}]
			v.wiredOutW[slot] = sig.Wave
			v.wiredOutSet[slot] = true
			folded := values.ConstA(v.d.Period, values.V0, sc.arena)
			for _, dp := range drivers {
				ds := v.wiredSlot[[2]int32{int32(id), int32(dp)}]
				w := values.ConstA(v.d.Period, values.VU, sc.arena)
				if v.wiredOutSet[ds] {
					w = v.wiredOutW[ds]
				}
				folded = values.CombineA(folded, w, values.Or, sc.arena)
			}
			sig = eval.Signal{Wave: folded, Dirs: sig.Dirs}
		}
		sig.Wave = v.mapped(id, sig.Wave)
		if v.pinned[id] {
			// The designer's clock assertion rules; remember the
			// computed value for the assertion cross-check.
			v.altOutW[id] = sig.Wave
			v.altOutSet[id] = true
			continue
		}
		if v.storeSig(id, sig) {
			dst = append(dst, id)
		}
	}
	return dst
}

// relax runs the event-driven evaluation to a fixed point (§2.9 step 2).
// It reports whether the fixed point was reached within the pass cap.
// With IntraWorkers > 1 the worklist is handed to the levelized wavefront
// scheduler, which converges on the same fixed point.  A canceled context
// aborts the loop at a pass boundary, leaving v.aborted set; the partial
// state is discarded by the caller.
func (v *verifier) relax() bool {
	if err := v.ctxCheck(); err != nil {
		return false
	}
	if v.opts.intraWorkers() > 1 {
		return v.wavefrontRelax()
	}
	cap := v.passCap()
	if v.scratch == nil {
		v.scratch = v.newScratch()
	}
	for v.queueLen() > 0 {
		if v.evals >= cap {
			v.clearQueue()
			return false
		}
		if err := v.ctxCheckEvery(); err != nil {
			v.clearQueue()
			return false
		}
		pid := v.popQueue()
		v.inQueue[pid] = false
		v.evals++
		v.netBuf = v.evalPrim(pid, v.scratch, v.netBuf[:0])
		for _, id := range v.netBuf {
			v.events++
			v.fanout(id)
		}
	}
	return true
}
