package report

import (
	"fmt"
	"strings"

	"scaldtv/internal/tick"
	"scaldtv/internal/values"
	"scaldtv/internal/verify"
)

// Wave-art glyphs, one per signal value.
var artGlyph = map[values.Value]byte{
	values.V0: '_',
	values.V1: '~',
	values.VS: '=',
	values.VC: 'x',
	values.VR: '/',
	values.VF: '\\',
	values.VU: '?',
}

// WaveArtLine renders one waveform as a fixed-width ASCII strip, one glyph
// per time bucket: _ low, ~ high, = stable, x changing, / rising,
// \ falling, ? unknown.  Skew is incorporated so uncertainty shows as
// bands.
func WaveArtLine(w values.Waveform, width int) string {
	if width <= 0 {
		width = 64
	}
	inc := w.IncorporateSkew()
	var sb strings.Builder
	for col := 0; col < width; col++ {
		// Sample the bucket at several points: if the value changes
		// within the bucket, show the transition glyph.
		t0 := tick.Time(int64(inc.Period) * int64(col) / int64(width))
		t1 := tick.Time(int64(inc.Period)*int64(col+1)/int64(width) - 1)
		if t1 < t0 {
			t1 = t0
		}
		v0, v1 := inc.At(t0), inc.At(t1)
		g := artGlyph[v0]
		if v0 != v1 {
			switch {
			case v0 == values.V0 && v1 == values.V1:
				g = '/'
			case v0 == values.V1 && v1 == values.V0:
				g = '\\'
			default:
				g = artGlyph[v1]
			}
		}
		sb.WriteByte(g)
	}
	return sb.String()
}

// WaveArt renders the Fig 3-10 information as an ASCII timing diagram: a
// time ruler followed by one strip per signal row (vector bits with
// identical timing collapsed, as in TimingSummary).  Requires
// Options.KeepWaves.
func WaveArt(res *verify.Result, caseIdx, width int) string {
	if caseIdx < 0 || caseIdx >= len(res.Cases) || res.Cases[caseIdx].Waves == nil {
		return "wave art unavailable: run the verifier with KeepWaves\n"
	}
	if width <= 0 {
		width = 64
	}
	cr := res.Cases[caseIdx]
	groups := groupSignals(res.Design, cr.Waves)
	nameW := 0
	for _, g := range groups {
		if len(g.name) > nameW {
			nameW = len(g.name)
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "WAVEFORMS — design %s, cycle %s ns", res.Design.Name, res.Design.Period)
	if cr.Label != "" {
		fmt.Fprintf(&sb, ", case %s", cr.Label)
	}
	sb.WriteString("\n")
	sb.WriteString("  (_ low  ~ high  = stable  x changing  / rising  \\ falling  ? unknown)\n\n")

	// Time ruler: a tick every width/8 columns.
	ruler := make([]byte, width)
	for i := range ruler {
		ruler[i] = ' '
	}
	marks := 8
	var labels strings.Builder
	fmt.Fprintf(&labels, "  %-*s  ", nameW, "")
	prev := 0
	for m := 0; m <= marks; m++ {
		col := width * m / marks
		if col < width {
			ruler[col] = '|'
		}
		t := tick.Time(int64(res.Design.Period) * int64(m) / int64(marks))
		lbl := t.String()
		pad := width*m/marks - prev
		if pad < 0 {
			pad = 0
		}
		if m < marks {
			labels.WriteString(strings.Repeat(" ", pad))
			labels.WriteString(lbl)
			prev = width*m/marks + len(lbl)
		}
	}
	sb.WriteString(labels.String())
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "  %-*s  %s\n", nameW, "", string(ruler))

	for _, g := range groups {
		fmt.Fprintf(&sb, "  %-*s  %s\n", nameW, g.name, WaveArtLine(g.wave, width))
	}
	return sb.String()
}
