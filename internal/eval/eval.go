// Package eval implements the waveform transfer functions of the built-in
// primitives (§2.4): given the input signals of a primitive instance, it
// produces the output signal over one clock period.
//
// Signals carry both their seven-value waveform and the remaining
// evaluation-directive string (§2.6, §2.8): each level of gating consumes
// the first letter of the string governing it and passes the rest along
// with its output value.
package eval

import (
	"fmt"

	"scaldtv/internal/assertion"
	"scaldtv/internal/netlist"
	"scaldtv/internal/tick"
	"scaldtv/internal/values"
)

// Signal is the propagated state of one net: its waveform and the
// evaluation string riding on it (the EVAL STR PTR of Fig 2-7).
type Signal struct {
	Wave values.Waveform
	Dirs assertion.Directives
}

// Getter supplies the current signal of a net.
type Getter func(netlist.NetID) Signal

// procIn is one fully-processed input bit: complemented if the connection
// uses the "-" rail, delayed by its interconnection, with its governing
// directive resolved.
type procIn struct {
	wave values.Waveform
	dir  assertion.Directive  // directive governing this gating level
	rest assertion.Directives // remainder to pass downstream
}

// processConn fetches, complements and wire-delays one input connection.
// A directive written on the pin starts a fresh evaluation string; otherwise
// the string carried by the incoming signal continues.
func processConn(d *netlist.Design, c netlist.Conn, get Getter, a *values.Arena) procIn {
	sig := get(c.Net)
	dirs := sig.Dirs
	if !c.Directives.Empty() {
		dirs = c.Directives
	}
	head, rest := dirs.Head()
	w := sig.Wave
	if c.Invert {
		w = w.MapUnaryA(values.Not, a)
	}
	if wd := d.WireDelay(c.Net, head); !wd.IsZero() {
		w = w.DelayA(wd, a)
	}
	return procIn{wave: w, dir: head, rest: rest}
}

// ConnWave returns the fully-processed waveform seen at an input pin: the
// incoming signal complemented and interconnection-delayed exactly as Prim
// would see it.  The checkers use it so that constraint checking and
// primitive evaluation observe identical signals.
func ConnWave(d *netlist.Design, c netlist.Conn, get Getter) values.Waveform {
	return processConn(d, c, get, nil).wave
}

// ConnDirective returns the evaluation directive governing an input pin:
// the first letter of the pin's own directive string when present,
// otherwise of the string carried by the incoming signal.
func ConnDirective(c netlist.Conn, get Getter) assertion.Directive {
	dirs := get(c.Net).Dirs
	if !c.Directives.Empty() {
		dirs = c.Directives
	}
	head, _ := dirs.Head()
	return head
}

// Prim evaluates a driving primitive, returning one output signal per bit
// of its (single) output port.  Checker primitives return nil.
func Prim(d *netlist.Design, p *netlist.Prim, get Getter) ([]Signal, error) {
	return PrimA(d, p, get, nil)
}

// PrimA is Prim with the evaluation's scratch waveforms allocated from a
// (nil a → heap).  The returned signals may reference arena memory: a
// caller that retains them beyond the arena owner's lifetime must intern
// or copy them first (the verifier interns every stored output).
func PrimA(d *netlist.Design, p *netlist.Prim, get Getter, a *values.Arena) ([]Signal, error) {
	switch {
	case p.Kind.IsChecker():
		return nil, nil
	case p.Kind.IsGate():
		return evalGate(d, p, get, a)
	case p.Kind.NumSelects() > 0:
		return evalMux(d, p, get, a)
	case p.Kind == netlist.KReg || p.Kind == netlist.KRegRS:
		return evalRegister(d, p, get, a)
	case p.Kind == netlist.KLatch || p.Kind == netlist.KLatchRS:
		return evalLatch(d, p, get, a)
	}
	return nil, fmt.Errorf("eval: primitive %q has unknown kind %v", p.Name, p.Kind)
}

// sameConnSignal reports whether two connections currently observe the
// same processed signal: same rail and directives, same interconnection
// delay, and semantically equal waveforms.  It is the basis of the
// vectored-primitive economy (§3.3.2): most bits of a bus share one
// timing behaviour, so one evaluation serves the whole vector.
func sameConnSignal(d *netlist.Design, a, b netlist.Conn, get Getter) bool {
	if a.Net == b.Net {
		return a.Invert == b.Invert && a.Directives == b.Directives
	}
	if a.Invert != b.Invert || a.Directives != b.Directives {
		return false
	}
	sa, sb := get(a.Net), get(b.Net)
	if sa.Dirs != sb.Dirs {
		return false
	}
	wa, wb := d.DefaultWire, d.DefaultWire
	if w := d.Nets[a.Net].Wire; w != nil {
		wa = *w
	}
	if w := d.Nets[b.Net].Wire; w != nil {
		wb = *w
	}
	if wa != wb {
		return false
	}
	return sa.Wave.Equal(sb.Wave)
}

// samePortBits reports whether every given input port observes identical
// signals at two bit positions.
func samePortBits(d *netlist.Design, p *netlist.Prim, ports []int, bitA, bitB int, get Getter) bool {
	for _, pi := range ports {
		if !sameConnSignal(d, p.In[pi].Bits[bitA], p.In[pi].Bits[bitB], get) {
			return false
		}
	}
	return true
}

// identity returns the value that does not influence the given gate: the
// value a control input is assumed to hold when an &A or &H directive
// asserts that it enables the gate (§2.6).
func identity(k netlist.Kind) values.Value {
	switch k {
	case netlist.KAnd, netlist.KNand:
		return values.V1
	case netlist.KOr, netlist.KNor:
		return values.V0
	case netlist.KXor:
		return values.V0
	}
	return values.VS
}

func gateFold(k netlist.Kind) (func(values.Value, values.Value) values.Value, bool) {
	switch k {
	case netlist.KAnd:
		return values.And, false
	case netlist.KNand:
		return values.And, true
	case netlist.KOr:
		return values.Or, false
	case netlist.KNor:
		return values.Or, true
	case netlist.KXor:
		return values.Xor, false
	}
	return nil, false
}

func evalGate(d *netlist.Design, p *netlist.Prim, get Getter, a *values.Arena) ([]Signal, error) {
	out := make([]Signal, p.Width)
	allPorts := make([]int, len(p.In))
	for i := range allPorts {
		allPorts[i] = i
	}
	for bit := 0; bit < p.Width; bit++ {
		if bit > 0 && samePortBits(d, p, allPorts, bit, bit-1, get) {
			out[bit] = out[bit-1]
			continue
		}
		ins := make([]procIn, len(p.In))
		for i, port := range p.In {
			ins[i] = processConn(d, port.Bits[bit], get, a)
		}

		// Directive effects: any Z/H zeroes the gate delay; any A/H marks
		// its input as the clock and replaces the remaining inputs with
		// the gate's identity (they are assumed to enable it).
		delay := p.Delay
		zeroed := false
		anyClock := false
		for _, in := range ins {
			if in.dir.ZeroesGate() {
				delay = tick.Range{}
				zeroed = true
			}
			if in.dir.ChecksStability() {
				anyClock = true
			}
		}

		var w values.Waveform
		var rest assertion.Directives
		switch p.Kind {
		case netlist.KBuf, netlist.KNot:
			w = ins[0].wave
			if p.Kind == netlist.KNot {
				w = w.MapUnaryA(values.Not, a)
			}
			rest = ins[0].rest
		case netlist.KChg:
			// The CHANGE function cares only when inputs change, including
			// crisp 0↔1 flips (a parity tree's output moves when any input
			// toggles), so inputs are reduced to their activity first.
			waves := make([]values.Waveform, len(ins))
			for i, in := range ins {
				waves[i] = in.wave.Activity()
			}
			w = values.CombineAllA(func(vs []values.Value) values.Value {
				return values.Chg(vs...)
			}, waves, a)
			rest = firstRest(ins, false)
		default:
			fold, inv := gateFold(p.Kind)
			if fold == nil {
				return nil, fmt.Errorf("eval: gate %q has unsupported kind %v", p.Name, p.Kind)
			}
			waves := make([]values.Waveform, 0, len(ins))
			for _, in := range ins {
				if anyClock && !in.dir.ChecksStability() {
					waves = append(waves, values.ConstA(d.Period, identity(p.Kind), a))
					continue
				}
				waves = append(waves, in.wave)
			}
			w = values.CombineNA(fold, waves, a)
			if inv {
				w = w.MapUnaryA(values.Not, a)
			}
			rest = firstRest(ins, anyClock)
		}

		switch {
		case p.RF != nil && !zeroed:
			// Direction-dependent delays (§4.2.2): exact for value-known
			// outputs, the conservative envelope otherwise.
			w = w.DelayRFA(p.RF.Rise, p.RF.Fall, a)
		case !delay.IsZero():
			w = w.DelayA(delay, a)
		}
		out[bit] = Signal{Wave: w, Dirs: rest}
	}
	return out, nil
}

// firstRest picks the evaluation string to pass downstream: the remainder
// from the clock-marked input when one exists, otherwise the first
// non-empty remainder.
func firstRest(ins []procIn, preferClock bool) assertion.Directives {
	if preferClock {
		for _, in := range ins {
			if in.dir.ChecksStability() && !in.rest.Empty() {
				return in.rest
			}
		}
	}
	for _, in := range ins {
		if !in.rest.Empty() {
			return in.rest
		}
	}
	return ""
}

func evalMux(d *netlist.Design, p *netlist.Prim, get Getter, a *values.Arena) ([]Signal, error) {
	ns, nd := p.Kind.NumSelects(), p.Kind.NumMuxData()
	// Select inputs are shared across bits: process once, adding the extra
	// select-path delay (Fig 3-6).
	sels := make([]values.Waveform, ns)
	allConst := true
	for i := 0; i < ns; i++ {
		in := processConn(d, p.In[i].Bits[0], get, a)
		w := in.wave
		if !p.SelectDelay.IsZero() {
			w = w.DelayA(p.SelectDelay, a)
		}
		sels[i] = w
		if v, ok := w.ConstantValue(); !ok || !v.Const() {
			allConst = false
		}
	}

	dataPorts := make([]int, nd)
	for i := range dataPorts {
		dataPorts[i] = ns + i
	}
	out := make([]Signal, p.Width)
	for bit := 0; bit < p.Width; bit++ {
		if bit > 0 && samePortBits(d, p, dataPorts, bit, bit-1, get) {
			out[bit] = out[bit-1]
			continue
		}
		data := make([]values.Waveform, nd)
		for i := 0; i < nd; i++ {
			data[i] = processConn(d, p.In[ns+i].Bits[bit], get, a).wave
		}

		var w values.Waveform
		if allConst {
			// Fully-pinned select: the output is exactly the selected
			// input, skew preserved.
			idx := 0
			for i := 0; i < ns; i++ {
				if v, _ := sels[i].ConstantValue(); v == values.V1 {
					idx |= 1 << i
				}
			}
			w = data[idx]
		} else {
			// Pointwise evaluation over the instantaneous select values:
			// where the select field is a known constant the output tracks
			// that one input (a clock driving a select line, §4.1, gives
			// exact per-level windows); where it is STABLE the output is
			// the worst case across consistent candidates; where it is
			// changing the output may change.
			all := append(append([]values.Waveform{}, sels...), data...)
			w = values.CombineAllA(func(vs []values.Value) values.Value {
				return muxValue(vs[:ns], vs[ns:])
			}, all, a)
			// A crisp select flip switches the output instantaneously
			// between data inputs: mark it unless every candidate pair is
			// the same constant (wider select uncertainty already shows
			// as bands after skew incorporation above).
			for _, s := range sels {
				for _, tr := range s.Transitions() {
					if !tr.From.Const() || !tr.To.Const() || tr.From == tr.To {
						continue
					}
					same := true
					v0 := data[0].At(tr.At)
					for _, dw := range data[1:] {
						if dw.At(tr.At) != v0 {
							same = false
							break
						}
					}
					if !(same && v0.Const()) {
						w = w.PaintA(tr.At, tr.At+1, values.VC, a)
					}
				}
			}
		}
		if !p.Delay.IsZero() {
			w = w.DelayA(p.Delay, a)
		}
		out[bit] = Signal{Wave: w}
	}
	return out, nil
}

// muxValue gives the instantaneous multiplexer output for select-bit
// values sels and data-input values data.
func muxValue(sels, data []values.Value) values.Value {
	idx, known := 0, true
	anyChanging := false
	for i, s := range sels {
		switch {
		case s == values.VU:
			return values.VU
		case s == values.V1:
			idx |= 1 << i
		case s == values.V0:
			// contributes 0
		default:
			known = false
			if s.Changing() {
				anyChanging = true
			}
		}
	}
	if known {
		return data[idx]
	}
	// Candidates consistent with the pinned select bits.
	var cands []values.Value
	for i := range data {
		ok := true
		for j, s := range sels {
			if s.Const() {
				want := s == values.V1
				if ((i>>j)&1 == 1) != want {
					ok = false
					break
				}
			}
		}
		if ok {
			cands = append(cands, data[i])
		}
	}
	if anyChanging {
		same := true
		for _, c := range cands[1:] {
			if c != cands[0] {
				same = false
			}
		}
		if same && len(cands) > 0 && cands[0].Const() {
			return cands[0]
		}
		for _, c := range cands {
			if c == values.VU {
				return values.VU
			}
		}
		return values.VC
	}
	out := cands[0]
	for _, c := range cands[1:] {
		out = values.Either(out, c)
	}
	return out
}

// evalRegister implements the two register models of Fig 2-1.  The output
// changes only within the window [edge.Start+Min, edge.End+Max) after each
// rising clock edge; elsewhere it holds STABLE, or the data input's value
// when that value is a logic constant at the clocking instant.
func evalRegister(d *netlist.Design, p *netlist.Prim, get Getter, a *values.Arena) ([]Signal, error) {
	ck := processConn(d, p.In[0].Bits[0], get, a)
	edges := ck.wave.RisingEdges()

	var overlay values.Waveform
	hasRS := p.Kind == netlist.KRegRS
	if hasRS {
		set := processConn(d, p.In[2].Bits[0], get, a)
		reset := processConn(d, p.In[3].Bits[0], get, a)
		overlay = values.CombineA(set.wave, reset.wave, setResetOverlay, a).DelayA(p.Delay, a)
	}

	out := make([]Signal, p.Width)
	for bit := 0; bit < p.Width; bit++ {
		if bit > 0 && samePortBits(d, p, []int{1}, bit, bit-1, get) {
			out[bit] = out[bit-1]
			continue
		}
		data := processConn(d, p.In[1].Bits[bit], get, a)
		w := clockedOutput(d.Period, edges, data.wave, p.Delay, ck.wave, a)
		if hasRS {
			w = values.CombineA(w, overlay, applyOverlay, a)
		}
		out[bit] = Signal{Wave: w}
	}
	return out, nil
}

// clockedOutput builds a register-style output: STABLE (or a captured
// constant) between clocking windows, CHANGE within them.
func clockedOutput(period tick.Time, edges []values.Edge, data values.Waveform, delay tick.Range, ck values.Waveform, a *values.Arena) values.Waveform {
	if v, ok := ck.ConstantValue(); ok && v == values.VU {
		return values.ConstA(period, values.VU, a)
	}
	if len(edges) == 0 {
		// Never clocked: the output holds its (unknowable) state.
		return values.ConstA(period, values.VS, a)
	}
	dataInc := data.IncorporateSkewA(a)
	out := values.ConstA(period, values.VS, a)
	// Captured value after each window: the data value at the clocking
	// instant when it is a logic constant throughout the edge window.
	for i, e := range edges {
		capV := dataInc.At(e.Start)
		if !capV.Const() || dataInc.At(e.End) != capV {
			capV = values.VS
		}
		if capV == values.VS {
			continue
		}
		// Paint from the end of this window to the start of the next, in
		// unwrapped time so overlapping windows paint nothing.
		winEnd := e.End + delay.Max
		var nextStart tick.Time
		if i+1 < len(edges) {
			nextStart = edges[i+1].Start + delay.Min
		} else {
			nextStart = edges[0].Start + delay.Min + period
		}
		if nextStart > winEnd {
			out = out.PaintA(winEnd, nextStart, capV, a)
		}
	}
	for _, e := range edges {
		out = out.PaintA(e.Start+delay.Min, e.End+delay.Max, values.VC, a)
	}
	return out
}

// setResetOverlay combines asynchronous SET and RESET into an overriding
// value: STABLE acts as the "inactive" marker (§2.4.3).
func setResetOverlay(s, r values.Value) values.Value {
	switch {
	case s == values.VU || r == values.VU:
		return values.VU
	case s == values.V0 && r == values.V0:
		return values.VS // inactive: the clocked path rules
	case s == values.V1 && r == values.V1:
		return values.VU
	case s == values.V1 && r == values.V0:
		return values.V1
	case s == values.V0 && r == values.V1:
		return values.V0
	}
	// Any changing or stable-unknown control: the output may change.
	return values.VC
}

// applyOverlay merges the clocked output with the asynchronous overlay.
func applyOverlay(normal, overlay values.Value) values.Value {
	if overlay == values.VS {
		return normal
	}
	return overlay
}

// evalLatch implements the two latch models of Fig 2-2: transparent while
// the enable is high, holding while low, with a change window as the latch
// opens.
func evalLatch(d *netlist.Design, p *netlist.Prim, get Getter, a *values.Arena) ([]Signal, error) {
	en := processConn(d, p.In[0].Bits[0], get, a)
	enD := en.wave.DelayA(p.Delay, a)

	var overlay values.Waveform
	hasRS := p.Kind == netlist.KLatchRS
	if hasRS {
		set := processConn(d, p.In[2].Bits[0], get, a)
		reset := processConn(d, p.In[3].Bits[0], get, a)
		overlay = values.CombineA(set.wave, reset.wave, setResetOverlay, a).DelayA(p.Delay, a)
	}

	out := make([]Signal, p.Width)
	for bit := 0; bit < p.Width; bit++ {
		if bit > 0 && samePortBits(d, p, []int{1}, bit, bit-1, get) {
			out[bit] = out[bit-1]
			continue
		}
		data := processConn(d, p.In[1].Bits[bit], get, a)
		var w values.Waveform
		if c, ok := data.wave.ConstantValue(); ok && c.Const() {
			// Constant data: in periodic steady state the held value
			// equals the flowing value, so the output is that constant
			// wherever the enable is defined.
			w = enD.MapUnaryA(func(e values.Value) values.Value {
				if e == values.VU {
					return values.VU
				}
				return c
			}, a)
		} else {
			datD := data.wave.DelayA(p.Delay, a)
			w = values.CombineA(enD, datD, latchValue, a)
		}
		if hasRS {
			w = values.CombineA(w, overlay, applyOverlay, a)
		}
		out[bit] = Signal{Wave: w}
	}
	return out, nil
}

// latchValue gives the latch output for an enable value e and (delayed)
// data value v.
func latchValue(e, v values.Value) values.Value {
	switch e {
	case values.V0:
		return values.VS // holding
	case values.V1:
		return v // transparent
	case values.VU:
		return values.VU
	case values.VF:
		// Closing: the output follows the data through the band and then
		// holds whatever was captured — stable data passes unchanged.
		if v.Stable() {
			return v
		}
		return values.VC
	}
	// Opening (R) or indeterminate (C): the held value may differ from the
	// incoming data, so the output may change.
	if v == values.VU {
		return values.VU
	}
	return values.VC
}
