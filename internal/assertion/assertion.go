// Package assertion implements the signal assertion language of §2.5: the
// timing assertions designers embed in signal names.
//
// Assertions are given at the end of signal names, preceded by a period:
//
//	MEM CLK .P2-3 L        precision clock, low 2–3 clock units
//	XYZ .C2-3,5-6          non-precision clock, high 2–3 and 5–6
//	XYZ .C2+10.0           high at 2, stays high 10.0 ns (unscaled width)
//	XYZ .P(-0.5,0.5)2-3    explicit skew specification
//	W DATA .S0-6           stable from 0 to 6, may change the rest
//
// Because the assertion is part of the name, every use of a signal carries
// the same assertion by construction; the package also exposes the base
// name so the verifier can detect two different assertions accidentally
// applied to one logical signal.
package assertion

import (
	"fmt"
	"strconv"
	"strings"

	"scaldtv/internal/tick"
	"scaldtv/internal/values"
)

// Kind classifies an assertion.
type Kind int

// The assertion kinds of §2.5.
const (
	None           Kind = iota // no assertion on the name
	PrecisionClock             // .P — clock adjusted to the precision skew
	Clock                      // .C — non-precision clock
	Stable                     // .S — stable/changing specification
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case PrecisionClock:
		return ".P"
	case Clock:
		return ".C"
	case Stable:
		return ".S"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// TimeRange is one element of a value specification.  Start and End are in
// designer clock units and may be fractional; if IsWidth is set, End is
// instead an absolute width in nanoseconds that does not scale with the
// clock period (the "2+10.0" form of §2.5.1).
type TimeRange struct {
	Start   float64
	End     float64
	WidthNS tick.Time
	IsWidth bool
}

// Assertion is a parsed signal assertion.
type Assertion struct {
	Kind        Kind
	Ranges      []TimeRange
	Skew        *tick.Range // explicit skew override in ns, nil for default
	LowAsserted bool        // the trailing L polarity assertion
}

// Signal is a signal name with its embedded assertion separated out.
type Signal struct {
	Base   string     // the name with the assertion stripped, space-trimmed
	Assert *Assertion // nil when the name carries no assertion
	Raw    string     // the original full name
}

// Parse splits a full signal name into its base name and assertion.  A name
// with no recognizable assertion suffix parses successfully with a nil
// Assert.
func Parse(name string) (Signal, error) {
	raw := name
	idx, kind := findAssertion(name)
	if idx < 0 {
		return Signal{Base: strings.TrimSpace(name), Raw: raw}, nil
	}
	base := strings.TrimSpace(name[:idx])
	if base == "" {
		return Signal{}, fmt.Errorf("assertion: empty signal name in %q", raw)
	}
	body := strings.TrimSpace(name[idx+2:]) // skip ".X"
	a, err := parseBody(kind, body)
	if err != nil {
		return Signal{}, fmt.Errorf("assertion: signal %q: %v", raw, err)
	}
	return Signal{Base: base, Assert: a, Raw: raw}, nil
}

// MustParse is Parse for names known to be valid; it panics on error.
func MustParse(name string) Signal {
	s, err := Parse(name)
	if err != nil {
		panic(err)
	}
	return s
}

// findAssertion locates the assertion suffix: a '.' followed (after
// optional spaces) by P, C or S and then an assertion body or end of name.
// The *last* such occurrence wins, since assertions terminate the name.
func findAssertion(name string) (int, Kind) {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] != '.' {
			continue
		}
		if i+1 >= len(name) {
			continue
		}
		var k Kind
		switch name[i+1] {
		case 'P':
			k = PrecisionClock
		case 'C':
			k = Clock
		case 'S':
			k = Stable
		default:
			continue
		}
		// The marker must terminate a word: next char is a digit, space,
		// '(', '-', '+', or end of string.
		if i+2 < len(name) {
			c := name[i+2]
			if !(c >= '0' && c <= '9') && c != ' ' && c != '(' && c != '-' && c != '+' {
				continue
			}
		}
		// The marker must follow a space or the start (".S" glued to a
		// word would be part of an ordinary dotted name).
		if i > 0 && name[i-1] != ' ' {
			continue
		}
		return i, k
	}
	return -1, None
}

func parseBody(kind Kind, body string) (*Assertion, error) {
	a := &Assertion{Kind: kind}
	s := strings.TrimSpace(body)

	// Optional skew specification "( -1.0 , 1.0 )".
	if strings.HasPrefix(s, "(") {
		close := strings.IndexByte(s, ')')
		if close < 0 {
			return nil, fmt.Errorf("unterminated skew specification")
		}
		inner := s[1:close]
		parts := strings.Split(inner, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("skew specification needs two values, got %q", inner)
		}
		lo, err1 := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		hi, err2 := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad skew specification %q", inner)
		}
		if lo > 0 || hi < 0 || lo > hi {
			return nil, fmt.Errorf("skew specification %q must bracket zero", inner)
		}
		r := tick.Range{Min: tick.FromNS(lo), Max: tick.FromNS(hi)}
		a.Skew = &r
		s = strings.TrimSpace(s[close+1:])
	}

	// Optional trailing polarity assertion.
	if strings.HasSuffix(s, " L") || s == "L" {
		a.LowAsserted = true
		s = strings.TrimSpace(strings.TrimSuffix(s, "L"))
	}

	if s == "" {
		if kind == Stable {
			return nil, fmt.Errorf("stable assertion needs a value specification")
		}
		return nil, fmt.Errorf("clock assertion needs a value specification")
	}

	for _, field := range strings.Split(s, ",") {
		tr, err := parseRange(strings.TrimSpace(field))
		if err != nil {
			return nil, err
		}
		a.Ranges = append(a.Ranges, tr)
	}
	return a, nil
}

// parseRange reads "4", "4-6", or "2+10.0".
func parseRange(s string) (TimeRange, error) {
	if s == "" {
		return TimeRange{}, fmt.Errorf("empty time range")
	}
	// Find the separator, skipping a leading sign.
	sep, sepIdx := byte(0), -1
	for i := 1; i < len(s); i++ {
		if s[i] == '-' || s[i] == '+' {
			sep, sepIdx = s[i], i
			break
		}
	}
	if sepIdx < 0 {
		start, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return TimeRange{}, fmt.Errorf("bad time %q", s)
		}
		// A single time assumes an interval of one clock unit (§2.5.1).
		return TimeRange{Start: start, End: start + 1}, nil
	}
	start, err := strconv.ParseFloat(strings.TrimSpace(s[:sepIdx]), 64)
	if err != nil {
		return TimeRange{}, fmt.Errorf("bad time %q", s[:sepIdx])
	}
	second, err := strconv.ParseFloat(strings.TrimSpace(s[sepIdx+1:]), 64)
	if err != nil {
		return TimeRange{}, fmt.Errorf("bad time %q", s[sepIdx+1:])
	}
	if sep == '+' {
		// The second number is a width in nanoseconds that does not scale
		// with the cycle time.
		return TimeRange{Start: start, WidthNS: tick.FromNS(second), IsWidth: true}, nil
	}
	return TimeRange{Start: start, End: second}, nil
}

// Env carries the design-level quantities needed to turn an assertion into
// a waveform.
type Env struct {
	Period        tick.Time
	ClockUnit     tick.Time  // duration of one designer clock unit
	PrecisionSkew tick.Range // default skew for .P clocks
	ClockSkew     tick.Range // default skew for .C clocks
}

// Waveform renders the assertion as the initial value of the signal over
// the clock period (§2.9): clocks become 0/1 waveforms shifted and smeared
// by their skew; stable assertions become STABLE within the asserted
// window and CHANGING outside it.
func (a *Assertion) Waveform(env Env) (values.Waveform, error) {
	if env.Period <= 0 || env.ClockUnit <= 0 {
		return values.Waveform{}, fmt.Errorf("assertion: invalid environment (period %v, clock unit %v)", env.Period, env.ClockUnit)
	}
	cu := func(u float64) tick.Time {
		t := u * float64(env.ClockUnit)
		if t >= 0 {
			return tick.Time(t + 0.5)
		}
		return tick.Time(t - 0.5)
	}
	switch a.Kind {
	case Clock, PrecisionClock:
		asserted, idle := values.V1, values.V0
		if a.LowAsserted {
			asserted, idle = values.V0, values.V1
		}
		w := values.Const(env.Period, idle)
		for _, r := range a.Ranges {
			start := cu(r.Start)
			var end tick.Time
			if r.IsWidth {
				end = start + r.WidthNS
			} else {
				end = cu(r.End)
			}
			if end == start {
				continue
			}
			w = w.Paint(start, end, asserted)
		}
		skew := env.ClockSkew
		if a.Kind == PrecisionClock {
			skew = env.PrecisionSkew
		}
		if a.Skew != nil {
			skew = *a.Skew
		}
		if !skew.IsZero() {
			w = w.Delay(skew)
		}
		return w, nil
	case Stable:
		w := values.Const(env.Period, values.VC)
		for _, r := range a.Ranges {
			start := cu(r.Start)
			var end tick.Time
			if r.IsWidth {
				end = start + r.WidthNS
			} else {
				end = cu(r.End)
			}
			if end == start {
				continue
			}
			w = w.Paint(start, end, values.VS)
		}
		return w, nil
	}
	return values.Waveform{}, fmt.Errorf("assertion: kind %v has no waveform", a.Kind)
}

// String renders the assertion back in its source form.
func (a *Assertion) String() string {
	if a == nil {
		return ""
	}
	var sb strings.Builder
	sb.WriteString(a.Kind.String())
	if a.Skew != nil {
		fmt.Fprintf(&sb, "(%s,%s)", a.Skew.Min, a.Skew.Max)
	}
	for i, r := range a.Ranges {
		if i > 0 {
			sb.WriteByte(',')
		}
		if r.IsWidth {
			fmt.Fprintf(&sb, "%s+%s", trimFloat(r.Start), r.WidthNS)
		} else {
			fmt.Fprintf(&sb, "%s-%s", trimFloat(r.Start), trimFloat(r.End))
		}
	}
	if a.LowAsserted {
		sb.WriteString(" L")
	}
	return sb.String()
}

func trimFloat(f float64) string {
	return strconv.FormatFloat(f, 'f', -1, 64)
}
