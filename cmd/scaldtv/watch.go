package main

import (
	"context"
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"time"

	"scaldtv"
	"scaldtv/internal/store"
)

// watch re-verifies the design at path each time the file changes,
// retaining converged waveforms between runs so parameter-only edits
// (delays, checker intervals, wire overrides, assertion windows)
// reverify just the dirty cone.  Structural edits fall back to a full
// run transparently.
//
// Changes are detected by polling and hashing the file content every
// poll interval.  A content hash — not (mtime, size) — is what decides
// whether anything changed: editors that save an equal-length revision
// within the filesystem's timestamp granularity would otherwise be
// missed, and a touch without an edit would otherwise re-verify.
//
// With a non-nil store, the first pass is answered through it (cached
// or warm-started from the nearest persisted snapshot) and every
// converged fixed point is persisted back, so the watch loop survives
// process restarts without losing its incremental state.
//
// maxUpdates > 0 bounds the number of successful verification passes
// before returning (used by tests); 0 watches until the process is
// killed.
func watch(path string, lib bool, opts scaldtv.Options, st *store.Store, out io.Writer, poll time.Duration, maxUpdates int) error {
	var (
		V       *scaldtv.Verifier
		lastSum [sha256.Size]byte
		passes  int
	)
	for first := true; ; first = false {
		if !first {
			time.Sleep(poll)
		}
		src, err := os.ReadFile(path)
		if err != nil {
			if first {
				return err
			}
			// The file may be mid-save (editors replace atomically by
			// rename); report once and keep polling.
			fmt.Fprintf(out, "watch: %s: %v\n", path, err)
			continue
		}
		sum := sha256.Sum256(src)
		if !first && sum == lastSum {
			continue
		}
		lastSum = sum

		text := string(src)
		if lib {
			text += "\n" + scaldtv.Library
		}
		design, err := scaldtv.Compile(text)
		if err != nil {
			// A broken intermediate state is normal while editing; keep
			// the retained verifier so the next good save still
			// reverifies incrementally against the last clean design.
			fmt.Fprintf(out, "watch: %s: %v\n", path, err)
			continue
		}

		start := time.Now()
		var (
			res         *scaldtv.Result
			incremental bool
			provenance  store.Provenance
		)
		switch {
		case V == nil && st != nil:
			oc, err2 := store.Verify(context.Background(), st, design, text, opts, true)
			if err2 != nil {
				err = err2
				break
			}
			V, res, incremental, provenance = oc.V, oc.Res, oc.Incremental, oc.Provenance
		case V == nil:
			V = scaldtv.NewVerifier(design, opts)
			res, err = V.Verify()
		default:
			res, incremental, err = V.Update(design)
		}
		if err != nil {
			fmt.Fprintf(out, "watch: %s: %v\n", path, err)
			V = nil
			continue
		}
		elapsed := time.Since(start).Round(time.Microsecond)
		if st != nil {
			// Persist before reporting, so anything reacting to the output
			// line (tests, scripts) observes the updated store.
			store.Save(st, text, opts, V)
		}
		switch {
		case provenance == store.Cached:
			fmt.Fprintf(out, "watch: %s: %d violation(s) in %v (cached)\n",
				path, len(res.Violations), elapsed)
		case incremental && provenance == store.Warm:
			fmt.Fprintf(out, "watch: %s: %d violation(s) in %v (warm: %d dirty instance(s), %d reused waveform(s))\n",
				path, len(res.Violations), elapsed, res.Stats.DirtyPrims, res.Stats.ReusedWaves)
		case incremental:
			fmt.Fprintf(out, "watch: %s: %d violation(s) in %v (incremental: %d dirty instance(s), %d reused waveform(s))\n",
				path, len(res.Violations), elapsed, res.Stats.DirtyPrims, res.Stats.ReusedWaves)
		default:
			fmt.Fprintf(out, "watch: %s: %d violation(s) in %v (full)\n",
				path, len(res.Violations), elapsed)
		}
		passes++
		if maxUpdates > 0 && passes >= maxUpdates {
			return nil
		}
	}
}
