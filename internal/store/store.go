// Package store is the persistent, content-addressed verification
// cache: converged Verifier fixed points, their rendered JSON reports
// and the source they were compiled from, written as self-checking
// blobs keyed by verification fingerprint (verify.Fingerprint — the
// design content hash mixed with the report-relevant options).
//
// The layout is one file per entry under a single directory, named
// <structural-fp>-<key>-<source-key>.scv, so an exact lookup is a
// filename probe, a nearest lookup (any entry sharing the design's
// structure, for warm-starting an incremental re-verification of an
// edited design) is a prefix scan, and a source-text lookup — the only
// probe that needs no compiled design at all — matches on the last
// component.  Writes go through a temp file and an atomic rename —
// readers never observe a partial blob — and every blob carries a
// trailing FNV-64a checksum over its whole content, so truncation or
// bit rot degrades to a cache miss rather than a wrong answer.  The
// directory is size-bounded: after each write, the oldest entries (by
// modification time) are removed until the configured budget holds.
package store

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

const (
	blobMagic   = "SCTV"
	blobVersion = 1
	blobSuffix  = ".scv"

	// DefaultMaxBytes bounds the store directory when Open is given no
	// explicit budget: 256 MiB holds thousands of mid-size designs.
	DefaultMaxBytes = 256 << 20
)

// Store is a size-bounded directory of verification blobs.  All methods
// are safe for concurrent use; cross-process safety comes from the
// atomic-rename write protocol (concurrent writers of the same key race
// benignly — both blobs are valid and one wins).
type Store struct {
	dir      string
	maxBytes int64

	mu sync.Mutex // serializes Put's write+GC sequence within this process
}

// Entry is one stored verification outcome.
type Entry struct {
	Key      uint64 // verify.Fingerprint of (design, options)
	StructFP uint64 // netlist.StructuralFingerprint of the design
	SrcKey   uint64 // SourceKey of (source text, options): the pre-compile probe
	Source   string // the source text the design was compiled from
	Report   []byte // the rendered JSON report, byte-exact
	State    []byte // the encoded verify.Snapshot
}

// Open prepares a store rooted at dir, creating it if needed.
// maxBytes bounds the directory's total size; zero or negative selects
// DefaultMaxBytes.
func Open(dir string, maxBytes int64) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %v", err)
	}
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	return &Store{dir: dir, maxBytes: maxBytes}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func blobName(structFP, key, srcKey uint64) string {
	return fmt.Sprintf("%016x-%016x-%016x%s", structFP, key, srcKey, blobSuffix)
}

// nameParts parses a blob filename back into its three fingerprints.
func nameParts(name string) (structFP, key, srcKey uint64, ok bool) {
	base, found := strings.CutSuffix(name, blobSuffix)
	if !found {
		return 0, 0, 0, false
	}
	var fps [3]uint64
	parts := strings.Split(base, "-")
	if len(parts) != 3 {
		return 0, 0, 0, false
	}
	for i, p := range parts {
		if _, err := fmt.Sscanf(p, "%016x", &fps[i]); err != nil || len(p) != 16 {
			return 0, 0, 0, false
		}
	}
	return fps[0], fps[1], fps[2], true
}

// Get returns the entry stored under the exact verification key, or
// ok=false on a miss — including every corruption case: a mangled,
// truncated or wrong-version blob reads as a miss.
func (s *Store) Get(key uint64) (*Entry, bool) {
	names, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, false
	}
	for _, de := range names {
		if _, k, _, ok := nameParts(de.Name()); ok && k == key {
			if e, err := s.read(de.Name()); err == nil && e.Key == key {
				return e, true
			}
		}
	}
	return nil, false
}

// GetBySource returns the entry stored under the source-level key.  src
// is compared byte for byte against the stored source, so a hash
// collision degrades to a miss, never to a wrong report.  This is the
// pre-compile fast path: a hit costs a directory scan and one checksum
// pass, with no parse or elaboration work at all.
func (s *Store) GetBySource(srcKey uint64, src string) (*Entry, bool) {
	names, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, false
	}
	for _, de := range names {
		if _, _, sk, ok := nameParts(de.Name()); ok && sk == srcKey {
			if e, err := s.read(de.Name()); err == nil && e.SrcKey == srcKey && e.Source == src {
				return e, true
			}
		}
	}
	return nil, false
}

// Nearest returns the most recently written entry whose design shares
// the structural fingerprint — the best snapshot to warm-start an
// incremental re-verification of an edited design from.
func (s *Store) Nearest(structFP uint64) (*Entry, bool) {
	prefix := fmt.Sprintf("%016x-", structFP)
	names, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, false
	}
	type cand struct {
		name string
		mod  int64
	}
	var cands []cand
	for _, de := range names {
		if !strings.HasPrefix(de.Name(), prefix) || !strings.HasSuffix(de.Name(), blobSuffix) {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		cands = append(cands, cand{de.Name(), info.ModTime().UnixNano()})
	}
	// Newest first; ties broken by name so the choice is deterministic.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].mod != cands[j].mod {
			return cands[i].mod > cands[j].mod
		}
		return cands[i].name > cands[j].name
	})
	for _, c := range cands {
		if e, err := s.read(c.name); err == nil && e.StructFP == structFP {
			return e, true
		}
	}
	return nil, false
}

// Put writes the entry atomically (temp file, fsync-free rename) and
// then enforces the size budget, evicting oldest-first.  The entry it
// just wrote is exempt from its own eviction pass.
func (s *Store) Put(e *Entry) error {
	blob := encodeBlob(e)
	name := blobName(e.StructFP, e.Key, e.SrcKey)
	s.mu.Lock()
	defer s.mu.Unlock()
	tmp, err := os.CreateTemp(s.dir, "put-*")
	if err != nil {
		return fmt.Errorf("store: %v", err)
	}
	_, werr := tmp.Write(blob)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: write %s: %v", name, firstErr(werr, cerr))
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, name)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %v", err)
	}
	s.gc(name)
	return nil
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// gc removes oldest entries until the directory fits the budget.  keep
// names the entry the caller just wrote, which is never evicted — a
// store too small for one entry would otherwise thrash.
func (s *Store) gc(keep string) {
	names, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	type ent struct {
		name string
		size int64
		mod  int64
	}
	var ents []ent
	var total int64
	for _, de := range names {
		if !strings.HasSuffix(de.Name(), blobSuffix) {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		ents = append(ents, ent{de.Name(), info.Size(), info.ModTime().UnixNano()})
		total += info.Size()
	}
	if total <= s.maxBytes {
		return
	}
	sort.Slice(ents, func(i, j int) bool {
		if ents[i].mod != ents[j].mod {
			return ents[i].mod < ents[j].mod
		}
		return ents[i].name < ents[j].name
	})
	for _, e := range ents {
		if total <= s.maxBytes {
			return
		}
		if e.name == keep {
			continue
		}
		if os.Remove(filepath.Join(s.dir, e.name)) == nil {
			total -= e.size
		}
	}
}

// Len counts the stored entries (including any corrupt ones not yet
// overwritten); it exists for tests and diagnostics.
func (s *Store) Len() int {
	names, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, de := range names {
		if strings.HasSuffix(de.Name(), blobSuffix) {
			n++
		}
	}
	return n
}

// Blob layout (little-endian, version 1):
//
//	"SCTV" | u32 version | u64 key | u64 structFP | u64 srcKey
//	| u32 len(source)  | source bytes
//	| u32 len(report)  | report bytes
//	| u32 len(state)   | state bytes
//	| u64 FNV-64a over everything above
func encodeBlob(e *Entry) []byte {
	n := len(blobMagic) + 4 + 8 + 8 + 8 + 4 + len(e.Source) + 4 + len(e.Report) + 4 + len(e.State) + 8
	b := make([]byte, 0, n)
	b = append(b, blobMagic...)
	b = binary.LittleEndian.AppendUint32(b, blobVersion)
	b = binary.LittleEndian.AppendUint64(b, e.Key)
	b = binary.LittleEndian.AppendUint64(b, e.StructFP)
	b = binary.LittleEndian.AppendUint64(b, e.SrcKey)
	for _, sec := range [][]byte{[]byte(e.Source), e.Report, e.State} {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(sec)))
		b = append(b, sec...)
	}
	return binary.LittleEndian.AppendUint64(b, fnv64(b))
}

func fnv64(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return h
}

// read loads and validates one blob.  Every malformed condition is an
// error; callers translate errors to cache misses.
func (s *Store) read(name string) (*Entry, error) {
	b, err := os.ReadFile(filepath.Join(s.dir, name))
	if err != nil {
		return nil, err
	}
	if len(b) < len(blobMagic)+4+8+8+8+8 || string(b[:len(blobMagic)]) != blobMagic {
		return nil, fmt.Errorf("store: %s: not a blob", name)
	}
	body, sum := b[:len(b)-8], binary.LittleEndian.Uint64(b[len(b)-8:])
	if fnv64(body) != sum {
		return nil, fmt.Errorf("store: %s: checksum mismatch", name)
	}
	p := body[len(blobMagic):]
	if v := binary.LittleEndian.Uint32(p); v != blobVersion {
		return nil, fmt.Errorf("store: %s: version %d, want %d", name, v, blobVersion)
	}
	p = p[4:]
	e := &Entry{
		Key:      binary.LittleEndian.Uint64(p),
		StructFP: binary.LittleEndian.Uint64(p[8:]),
		SrcKey:   binary.LittleEndian.Uint64(p[16:]),
	}
	p = p[24:]
	var secs [3][]byte
	for i := range secs {
		if len(p) < 4 {
			return nil, fmt.Errorf("store: %s: truncated section header", name)
		}
		n := binary.LittleEndian.Uint32(p)
		p = p[4:]
		if uint32(len(p)) < n {
			return nil, fmt.Errorf("store: %s: truncated section", name)
		}
		secs[i], p = p[:n], p[n:]
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("store: %s: %d trailing bytes", name, len(p))
	}
	e.Source = string(secs[0])
	e.Report = secs[1]
	e.State = secs[2]
	return e, nil
}
