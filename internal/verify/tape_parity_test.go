package verify

import (
	"fmt"
	"sync"
	"testing"

	"scaldtv/internal/gen"
	"scaldtv/internal/netlist"
)

// tapeParityDesigns returns the designs the tape parity checks sweep: the
// hand-built multi-case circuit (violations, margins, muxed paths) and a
// generated Mark IIA-style design with cases and injected failures (wired
// fanout, registers, latches at scale).
func tapeParityDesigns(t *testing.T) map[string]*netlist.Design {
	t.Helper()
	d, _, err := gen.Generate(gen.Config{Chips: 102, Cases: 4, Inject: 1})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*netlist.Design{
		"multicase": buildMultiCase(t, 8),
		"generated": d,
	}
}

// TestTapeParityMatrix: the compiled tape and the interpreter must produce
// identical reports — violations, margins, kept waveforms, cross-reference
// — for every Workers × IntraWorkers combination.  Run with -race: the
// matrix exercises the shared slot table and scratch pool concurrently.
func TestTapeParityMatrix(t *testing.T) {
	for name, d := range tapeParityDesigns(t) {
		t.Run(name, func(t *testing.T) {
			base, err := Run(d, Options{Workers: 1, KeepWaves: true, Margins: true, NoTape: true})
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{1, 2, 8} {
				for _, iw := range []int{1, 2, 8} {
					opts := Options{Workers: w, IntraWorkers: iw, KeepWaves: true, Margins: true}
					res, err := Run(d, opts)
					if err != nil {
						t.Fatal(err)
					}
					sameReports(t, fmt.Sprintf("interp vs tape w=%d iw=%d", w, iw), base, res)
				}
			}
		})
	}
}

// TestTapeRepeatedRunsIdentical: repeated tape runs of one design share a
// program whose memo tables, warm slots and scratch pool carry state
// between runs; every run must still report exactly the interpreter's
// answer.  The second and later runs exercise the fully warm path (slot
// hits, pooled tables, adopted seed image).
func TestTapeRepeatedRunsIdentical(t *testing.T) {
	for name, d := range tapeParityDesigns(t) {
		t.Run(name, func(t *testing.T) {
			want, err := Run(d, Options{Workers: 1, KeepWaves: true, Margins: true, NoTape: true})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 4; i++ {
				got, err := Run(d, Options{Workers: 1, KeepWaves: true, Margins: true})
				if err != nil {
					t.Fatal(err)
				}
				sameReports(t, fmt.Sprintf("warm run %d", i), want, got)
			}
		})
	}
}

// TestTapeSweepStressRace hammers one shared compiled program from many
// concurrent verification runs — each itself fanning out case workers and
// intra-case wavefront workers — and checks every run lands on the same
// report.  Under -race this is the concurrency safety net for the slot
// table's lock-free publishes, the scratch pool and the shared memo
// tables.
func TestTapeSweepStressRace(t *testing.T) {
	for name, d := range tapeParityDesigns(t) {
		t.Run(name, func(t *testing.T) {
			want, err := Run(d, Options{Workers: 1, KeepWaves: true, Margins: true, NoTape: true})
			if err != nil {
				t.Fatal(err)
			}
			const runs = 8
			results := make([]*Result, runs)
			errs := make([]error, runs)
			var wg sync.WaitGroup
			for i := 0; i < runs; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					opts := Options{
						Workers:      1 + i%3,
						IntraWorkers: 1 + (i/2)%3,
						KeepWaves:    true,
						Margins:      true,
					}
					results[i], errs[i] = Run(d, opts)
				}(i)
			}
			wg.Wait()
			for i := 0; i < runs; i++ {
				if errs[i] != nil {
					t.Fatalf("concurrent run %d: %v", i, errs[i])
				}
				sameReports(t, fmt.Sprintf("concurrent run %d", i), want, results[i])
			}
		})
	}
}
