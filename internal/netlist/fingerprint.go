package netlist

import (
	"math"

	"scaldtv/internal/tick"
)

// floatBits hashes a float by its IEEE bit pattern, canonicalizing the
// two zeros so -0.0 and +0.0 fingerprint alike.
func floatBits(v float64) uint64 {
	if v == 0 {
		return 0
	}
	return math.Float64bits(v)
}

// Design fingerprinting extends the canonical-form FNV hashing of
// values.Waveform.Fingerprint to whole elaborated netlists, giving the
// persistent verification store (internal/store) its content addresses.
//
// Two fingerprints are defined:
//
//   - Fingerprint covers everything the verifier reads: the full netlist
//     including every parameter, name and assertion spelling.  Two designs
//     with equal Fingerprints verify identically (for identical
//     verify-relevant Options).
//
//   - StructuralFingerprint deliberately excludes exactly the fields Diff
//     classifies as parameter-level edits (delays, checker intervals,
//     same-shape kind swaps, wire overrides, assertion range tweaks and
//     instance names), so that any two designs Diff accepts as
//     structurally identical share a StructuralFingerprint.  The store
//     uses it to find the nearest snapshot to warm-start an incremental
//     re-verification from.
//
// Both hashes are FNV-1a with length-prefixed strings, so field
// boundaries cannot alias.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvSum accumulates an FNV-1a hash over typed fields.
type fnvSum struct{ h uint64 }

func newFNV() fnvSum { return fnvSum{h: fnvOffset64} }

func (f *fnvSum) byte(b byte) {
	f.h = (f.h ^ uint64(b)) * fnvPrime64
}

func (f *fnvSum) u64(x uint64) {
	for i := 0; i < 8; i++ {
		f.byte(byte(x >> (8 * i)))
	}
}

func (f *fnvSum) i64(x int64)      { f.u64(uint64(x)) }
func (f *fnvSum) int(x int)        { f.u64(uint64(int64(x))) }
func (f *fnvSum) time(t tick.Time) { f.i64(int64(t)) }
func (f *fnvSum) rng(r tick.Range) { f.time(r.Min); f.time(r.Max) }
func (f *fnvSum) bool(b bool)      { f.byte(boolByte(b)) }

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

func (f *fnvSum) str(s string) {
	f.int(len(s))
	for i := 0; i < len(s); i++ {
		f.byte(s[i])
	}
}

// rngPtr hashes an optional range: presence bit then the value.
func (f *fnvSum) rngPtr(r *tick.Range) {
	f.bool(r != nil)
	if r != nil {
		f.rng(*r)
	}
}

// Fingerprint returns the full content hash of the design: every field
// the verifier or the report renderer reads.  Fanout indices and the
// levelization cache are derived state and excluded; byName is excluded
// because it mirrors Nets[i].Name.
func Fingerprint(d *Design) uint64 {
	f := newFNV()
	f.str(d.Name)
	d.hashEnv(&f)
	f.int(len(d.Nets))
	for i := range d.Nets {
		n := &d.Nets[i]
		f.str(n.Name)
		f.str(n.Base)
		f.str(n.Assert.String())
		f.rngPtr(n.Wire)
	}
	f.int(len(d.Prims))
	for i := range d.Prims {
		p := &d.Prims[i]
		f.byte(byte(p.Kind))
		f.str(p.Name)
		f.int(p.Width)
		f.rng(p.Delay)
		f.rng(p.SelectDelay)
		f.bool(p.RF != nil)
		if p.RF != nil {
			f.rng(p.RF.Rise)
			f.rng(p.RF.Fall)
		}
		f.time(p.Setup)
		f.time(p.Hold)
		f.time(p.MinHigh)
		f.time(p.MinLow)
		f.i64(int64(p.Fn))
		d.hashPorts(&f, p, true)
	}
	d.hashCases(&f)
	d.hashDelayFns(&f)
	return f.h
}

// StructuralFingerprint returns a hash of only the structure Diff
// requires to match before it will express an edit as parameter-level
// Changes: the design environment, net identities and assertion kinds,
// primitive shapes and connectivity, and the case table.  The alignment
// invariant, locked by TestStructuralFingerprintMatchesDiff, is:
//
//	Diff(a, b) ok  ⇒  StructuralFingerprint(a) == StructuralFingerprint(b)
func StructuralFingerprint(d *Design) uint64 {
	f := newFNV()
	// d.Name is not compared by Diff, so it is not structural.
	d.hashEnv(&f)
	f.int(len(d.Nets))
	for i := range d.Nets {
		n := &d.Nets[i]
		f.str(n.Name)
		f.str(n.Base)
		// Assertion presence and kind are structural (they pin nets and
		// shape the cross-reference); the range spelling is a parameter.
		f.bool(n.Assert != nil)
		if n.Assert != nil {
			f.byte(byte(n.Assert.Kind))
		}
		// n.Wire is a parameter-level override.
	}
	f.int(len(d.Prims))
	for i := range d.Prims {
		p := &d.Prims[i]
		// Kind enters only through its shape traits, mirroring
		// connectivityEqual: AND ↔ OR is a parameter edit.
		f.bool(p.Kind.IsChecker())
		f.bool(p.Kind.IsStorage())
		f.bool(p.Kind.IsGate())
		f.int(p.Kind.NumSelects())
		f.int(p.Width)
		// The analytic-function binding is structural: Diff refuses edits
		// that change which function (if any) produces a prim's delay.
		f.i64(int64(p.Fn))
		d.hashPorts(&f, p, false)
	}
	d.hashCases(&f)
	d.hashDelayFns(&f)
	return f.h
}

// hashEnv hashes the design-wide verification environment — any change
// here is structural for Diff.
func (d *Design) hashEnv(f *fnvSum) {
	f.time(d.Period)
	f.time(d.ClockUnit)
	f.rng(d.DefaultWire)
	f.rng(d.PrecisionSkew)
	f.rng(d.ClockSkew)
	f.bool(d.WiredOr)
}

// hashPorts hashes the primitive's connections.  Port names are hashed
// only for the full fingerprint: connectivityEqual ignores them, so they
// are not structural.
func (d *Design) hashPorts(f *fnvSum, p *Prim, withNames bool) {
	f.int(len(p.In))
	for pi := range p.In {
		port := &p.In[pi]
		if withNames {
			f.str(port.Name)
		}
		f.int(len(port.Bits))
		for _, c := range port.Bits {
			f.i64(int64(c.Net))
			f.bool(c.Invert)
			f.str(string(c.Directives))
		}
	}
	f.int(len(p.Out))
	for pi := range p.Out {
		port := &p.Out[pi]
		if withNames {
			f.str(port.Name)
		}
		f.int(len(port.Bits))
		for _, n := range port.Bits {
			f.i64(int64(n))
		}
	}
}

// hashDelayFns hashes the analytic delay tables.  They enter both
// fingerprints — Diff treats any change to them as structural, because
// the symbolic margin surfaces a retained run carries are derived from
// these tables, not from the concrete Prim.Delay values.
func (d *Design) hashDelayFns(f *fnvSum) {
	f.int(len(d.Params))
	for i := range d.Params {
		p := &d.Params[i]
		f.str(p.Name)
		f.u64(floatBits(p.Default))
		f.u64(floatBits(p.Lo))
		f.u64(floatBits(p.Hi))
	}
	f.int(len(d.DelayFns))
	for i := range d.DelayFns {
		fn := &d.DelayFns[i]
		for _, a := range [2]Affine{fn.Min, fn.Max} {
			f.time(a.Base)
			f.int(len(a.Coeffs))
			for _, c := range a.Coeffs {
				f.i64(int64(c.Param))
				f.u64(floatBits(c.PS))
			}
		}
	}
}

func (d *Design) hashCases(f *fnvSum) {
	f.int(len(d.Cases))
	for i := range d.Cases {
		c := &d.Cases[i]
		f.str(c.Label)
		f.int(len(c.Assignments))
		for _, a := range c.Assignments {
			f.str(a.Base)
			f.byte(byte(a.Value))
		}
	}
}
