package main

import (
	"fmt"
	"io"
	"os"
	"time"

	"scaldtv"
)

// watch re-verifies the design at path each time the file changes,
// retaining converged waveforms between runs so parameter-only edits
// (delays, checker intervals, wire overrides, assertion windows)
// reverify just the dirty cone.  Structural edits fall back to a full
// run transparently.
//
// Changes are detected by polling the file's modification time and size
// every poll interval.  maxUpdates > 0 bounds the number of successful
// verification passes before returning (used by tests); 0 watches until
// the process is killed.
func watch(path string, lib bool, opts scaldtv.Options, out io.Writer, poll time.Duration, maxUpdates int) error {
	var (
		V        *scaldtv.Verifier
		lastMod  time.Time
		lastSize int64
		passes   int
	)
	for first := true; ; first = false {
		if !first {
			time.Sleep(poll)
		}
		fi, err := os.Stat(path)
		if err != nil {
			if first {
				return err
			}
			// The file may be mid-save (editors replace atomically by
			// rename); report once and keep polling.
			fmt.Fprintf(out, "watch: %s: %v\n", path, err)
			continue
		}
		if !first && fi.ModTime().Equal(lastMod) && fi.Size() == lastSize {
			continue
		}
		lastMod, lastSize = fi.ModTime(), fi.Size()

		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(out, "watch: %s: %v\n", path, err)
			continue
		}
		text := string(src)
		if lib {
			text += "\n" + scaldtv.Library
		}
		design, err := scaldtv.Compile(text)
		if err != nil {
			// A broken intermediate state is normal while editing; keep
			// the retained verifier so the next good save still
			// reverifies incrementally against the last clean design.
			fmt.Fprintf(out, "watch: %s: %v\n", path, err)
			continue
		}

		start := time.Now()
		var (
			res         *scaldtv.Result
			incremental bool
		)
		if V == nil {
			V = scaldtv.NewVerifier(design, opts)
			res, err = V.Verify()
		} else {
			res, incremental, err = V.Update(design)
		}
		if err != nil {
			fmt.Fprintf(out, "watch: %s: %v\n", path, err)
			V = nil
			continue
		}
		elapsed := time.Since(start).Round(time.Microsecond)
		if incremental {
			fmt.Fprintf(out, "watch: %s: %d violation(s) in %v (incremental: %d dirty instance(s), %d reused waveform(s))\n",
				path, len(res.Violations), elapsed, res.Stats.DirtyPrims, res.Stats.ReusedWaves)
		} else {
			fmt.Fprintf(out, "watch: %s: %d violation(s) in %v (full)\n",
				path, len(res.Violations), elapsed)
		}
		passes++
		if maxUpdates > 0 && passes >= maxUpdates {
			return nil
		}
	}
}
