package verify

import (
	"testing"

	"scaldtv/internal/gen"
	"scaldtv/internal/netlist"
	"scaldtv/internal/tick"
)

// findPrim locates a primitive by name.
func findPrim(t *testing.T, d *netlist.Design, name string) netlist.PrimID {
	t.Helper()
	for pi := range d.Prims {
		if d.Prims[pi].Name == name {
			return netlist.PrimID(pi)
		}
	}
	t.Fatalf("primitive %q not found", name)
	return 0
}

// TestReverifyDelayEdit: bumping one buffer's delay and reverifying gives
// the same report as verifying the edited design from scratch, while
// reusing most of the converged waveforms.
func TestReverifyDelayEdit(t *testing.T) {
	for _, workers := range []int{1, 2} {
		d := buildMultiCase(t, 4)
		opts := Options{Workers: workers, KeepWaves: true, Margins: true}
		V := NewVerifier(d, opts)
		if _, err := V.Verify(); err != nil {
			t.Fatal(err)
		}

		pi := findPrim(t, d, "DELAY B")
		d.Prims[pi].Delay.Max += 4 * tick.NS
		inc, err := V.Reverify(netlist.Changes{Prims: []netlist.PrimID{pi}})
		if err != nil {
			t.Fatal(err)
		}
		scratch, err := Run(d, opts)
		if err != nil {
			t.Fatal(err)
		}
		sameReports(t, "delay edit", scratch, inc)

		if !inc.Stats.Incremental {
			t.Error("Stats.Incremental not set")
		}
		if inc.Stats.DirtyPrims == 0 || inc.Stats.DirtyPrims >= len(d.Prims) {
			t.Errorf("DirtyPrims = %d, want a proper cone of %d prims", inc.Stats.DirtyPrims, len(d.Prims))
		}
		if inc.Stats.ReusedWaves == 0 {
			t.Error("ReusedWaves = 0, expected untouched nets to carry over")
		}
		if inc.Stats.PrimEvals >= scratch.Stats.PrimEvals {
			t.Errorf("incremental PrimEvals %d not below scratch %d", inc.Stats.PrimEvals, scratch.Stats.PrimEvals)
		}
	}
}

// TestReverifySequence: a chain of edits, each reverified, tracks the
// from-scratch result at every step — including edits that revert.
func TestReverifySequence(t *testing.T) {
	d := buildMultiCase(t, 4)
	opts := Options{Workers: 1, KeepWaves: true, Margins: true}
	V := NewVerifier(d, opts)
	if _, err := V.Verify(); err != nil {
		t.Fatal(err)
	}
	chk := findPrim(t, d, "REG CHK")
	buf := findPrim(t, d, "DELAY A")
	steps := []func() netlist.Changes{
		func() netlist.Changes { // tighten the set-up: new violations, zero relaxation
			d.Prims[chk].Setup += 10 * tick.NS
			return netlist.Changes{Prims: []netlist.PrimID{chk}}
		},
		func() netlist.Changes { // slow the shared buffer
			d.Prims[buf].Delay.Max += 2 * tick.NS
			return netlist.Changes{Prims: []netlist.PrimID{buf}}
		},
		func() netlist.Changes { // revert both
			d.Prims[chk].Setup -= 10 * tick.NS
			d.Prims[buf].Delay.Max -= 2 * tick.NS
			return netlist.Changes{Prims: []netlist.PrimID{chk, buf}}
		},
		func() netlist.Changes { // wire-delay edit on the checked net
			id, ok := d.NetByName("R")
			if !ok {
				t.Fatal("net R not found")
			}
			w := tick.R(0, 3)
			d.Nets[id].Wire = &w
			return netlist.Changes{Nets: []netlist.NetID{id}}
		},
	}
	for i, step := range steps {
		ch := step()
		inc, err := V.Reverify(ch)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		scratch, err := Run(d, opts)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		sameReports(t, "sequence step", scratch, inc)
	}
}

// TestReverifyCheckerEditNoRelax: a checker-interval edit requires no
// primitive re-evaluation at all — only the site re-checks.
func TestReverifyCheckerEditNoRelax(t *testing.T) {
	d := buildMultiCase(t, 2)
	V := NewVerifier(d, Options{})
	if _, err := V.Verify(); err != nil {
		t.Fatal(err)
	}
	chk := findPrim(t, d, "REG CHK")
	d.Prims[chk].Setup += 20 * tick.NS
	inc, err := V.Reverify(netlist.Changes{Prims: []netlist.PrimID{chk}})
	if err != nil {
		t.Fatal(err)
	}
	if inc.Stats.PrimEvals != 0 {
		t.Errorf("checker edit scheduled %d evaluations, want 0", inc.Stats.PrimEvals)
	}
	if inc.Stats.ReusedWaves != len(d.Nets)*len(inc.Cases) {
		t.Errorf("ReusedWaves = %d, want every net in every case (%d)",
			inc.Stats.ReusedWaves, len(d.Nets)*len(inc.Cases))
	}
	scratch, err := Run(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sameReports(t, "checker edit", scratch, inc)
	tightened := false
	for _, viol := range inc.Violations {
		if viol.Prim == "REG CHK" && viol.Required == d.Prims[chk].Setup {
			tightened = true
		}
	}
	if !tightened {
		t.Error("no violation reflects the tightened set-up requirement")
	}
}

// TestReverifyEmptyChanges: an empty change set reverifies to the
// identical report with zero work.
func TestReverifyEmptyChanges(t *testing.T) {
	d := buildMultiCase(t, 3)
	opts := Options{KeepWaves: true, Margins: true}
	V := NewVerifier(d, opts)
	base, err := V.Verify()
	if err != nil {
		t.Fatal(err)
	}
	inc, err := V.Reverify(netlist.Changes{})
	if err != nil {
		t.Fatal(err)
	}
	sameReports(t, "empty changes", base, inc)
	if inc.Stats.PrimEvals != 0 || inc.Stats.Events != 0 {
		t.Errorf("empty change set did work: %d evals, %d events", inc.Stats.PrimEvals, inc.Stats.Events)
	}
}

// TestReverifyWithoutVerify: Reverify before any Verify falls back to a
// full run.
func TestReverifyWithoutVerify(t *testing.T) {
	d := buildMultiCase(t, 2)
	V := NewVerifier(d, Options{})
	res, err := V.Reverify(netlist.Changes{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Incremental {
		t.Error("fallback run reported itself incremental")
	}
	if res.Stats.PrimEvals == 0 {
		t.Error("fallback run did no work")
	}
}

// TestReverifyNoCache: the incremental engine works identically with
// memoization disabled (semantic waveform comparison instead of interned
// handles).
func TestReverifyNoCache(t *testing.T) {
	d := buildMultiCase(t, 3)
	opts := Options{NoCache: true, KeepWaves: true, Margins: true}
	V := NewVerifier(d, opts)
	if _, err := V.Verify(); err != nil {
		t.Fatal(err)
	}
	pi := findPrim(t, d, "DELAY B")
	d.Prims[pi].Delay.Max += 3 * tick.NS
	inc, err := V.Reverify(netlist.Changes{Prims: []netlist.PrimID{pi}})
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := Run(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	sameReports(t, "nocache", scratch, inc)
	if inc.Stats.CacheHits != 0 || inc.Stats.Interned != 0 {
		t.Error("NoCache run reported cache statistics")
	}
}

// TestUpdateIncremental: Update with a parameter-only edit reverifies
// incrementally; a structural edit falls back to a full verification.
func TestUpdateIncremental(t *testing.T) {
	cfg := gen.Config{Chips: 34, Cases: 2}
	d, _, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{KeepWaves: true, Margins: true}
	V := NewVerifier(d, opts)
	if _, err := V.Verify(); err != nil {
		t.Fatal(err)
	}

	// The same generator config produces a structurally identical design;
	// edit one instance's delay.
	nd, _, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	edited := -1
	for pi := range nd.Prims {
		if nd.Prims[pi].Kind == netlist.KBuf || nd.Prims[pi].Kind == netlist.KOr {
			nd.Prims[pi].Delay.Max += tick.NS
			edited = pi
			break
		}
	}
	if edited < 0 {
		t.Fatal("no editable primitive found")
	}
	res, incremental, err := V.Update(nd)
	if err != nil {
		t.Fatal(err)
	}
	if !incremental || !res.Stats.Incremental {
		t.Fatal("parameter-only Update did not reverify incrementally")
	}
	if V.Design() != nd {
		t.Error("Update did not adopt the new design")
	}
	scratch, err := Run(nd, opts)
	if err != nil {
		t.Fatal(err)
	}
	sameReports(t, "update", scratch, res)

	// A structural change — different case list — forces a full run.
	sd, _, err := gen.Generate(gen.Config{Chips: 34, Cases: 3})
	if err != nil {
		t.Fatal(err)
	}
	res2, incremental2, err := V.Update(sd)
	if err != nil {
		t.Fatal(err)
	}
	if incremental2 || res2.Stats.Incremental {
		t.Error("structural Update claimed to be incremental")
	}
	scratch2, err := Run(sd, opts)
	if err != nil {
		t.Fatal(err)
	}
	sameReports(t, "structural update", scratch2, res2)
}

// TestVerifierRepeatedFullRuns: calling Verify twice reuses the warm
// interner/cache and still reproduces the one-shot Run result.
func TestVerifierRepeatedFullRuns(t *testing.T) {
	d := buildMultiCase(t, 4)
	opts := Options{KeepWaves: true, Margins: true}
	V := NewVerifier(d, opts)
	first, err := V.Verify()
	if err != nil {
		t.Fatal(err)
	}
	second, err := V.Verify()
	if err != nil {
		t.Fatal(err)
	}
	sameReports(t, "repeat verify", first, second)
	if second.Stats.CacheHits <= first.Stats.CacheHits {
		t.Error("second full run did not hit the retained cache")
	}
}
