package netlist

import (
	"fmt"

	"scaldtv/internal/tick"
)

// Incremental re-verification support: a Changes set names the nets and
// primitive instances whose parameters were edited since the last verified
// state, Diff computes one by comparing two structurally identical
// designs, and ForwardCone computes the transitive fanout closure — the
// upper bound on what a re-verification pass may have to revisit.  This
// generalises the case-analysis engine's "only the affected cone" rule
// (§2.7, §3.3.2) from forced control signals to arbitrary parameter
// edits.

// Changes names the dirty sites of an edited design: primitives whose
// parameters (delays, checker intervals, kind, name) changed, and nets
// whose environment (assertion ranges, per-signal wire delay) changed.
type Changes struct {
	Prims []PrimID
	Nets  []NetID
}

// Empty reports whether no site is dirty.
func (c Changes) Empty() bool { return len(c.Prims) == 0 && len(c.Nets) == 0 }

// Cone is the structural forward closure of a Changes set: every net and
// primitive a change could reach by following driver → output → fanout
// edges.  Checker primitives appear in the cone (they read dirtied nets)
// but propagate nothing, having no outputs.
type Cone struct {
	Prims     []bool // per PrimID
	Nets      []bool // per NetID
	PrimCount int
	NetCount  int
}

// ForwardCone computes the forward closure of ch over the design's fanout
// index.  Fanout lists must be current (Builder.Build and RebuildFanout
// maintain them).
func (d *Design) ForwardCone(ch Changes) Cone {
	c := Cone{
		Prims: make([]bool, len(d.Prims)),
		Nets:  make([]bool, len(d.Nets)),
	}
	var work []PrimID
	markPrim := func(p PrimID) {
		if p >= 0 && int(p) < len(c.Prims) && !c.Prims[p] {
			c.Prims[p] = true
			c.PrimCount++
			work = append(work, p)
		}
	}
	markNet := func(n NetID) {
		if n < 0 || int(n) >= len(c.Nets) || c.Nets[n] {
			return
		}
		c.Nets[n] = true
		c.NetCount++
		for _, p := range d.Nets[n].Fanout {
			markPrim(p)
		}
	}
	for _, p := range ch.Prims {
		markPrim(p)
	}
	for _, n := range ch.Nets {
		markNet(n)
	}
	for len(work) > 0 {
		p := work[len(work)-1]
		work = work[:len(work)-1]
		for _, port := range d.Prims[p].Out {
			for _, n := range port.Bits {
				markNet(n)
			}
		}
	}
	return c
}

// CheckSites validates just the dirty sites of a parameter-level edit:
// the named primitives' shapes (delay ranges, checker intervals) and the
// named nets' per-signal delays and assertion consistency.  A design that
// passed Check before the edit and passes CheckSites after it is as valid
// as a full re-Check would prove, because parameter edits cannot
// invalidate structure — this is what lets Reverify skip the
// O(primitives) structural pass on every watch-loop iteration.
func (d *Design) CheckSites(ch Changes) error {
	for _, pi := range ch.Prims {
		if pi < 0 || int(pi) >= len(d.Prims) {
			return fmt.Errorf("netlist: change names primitive %d out of range", pi)
		}
		p := &d.Prims[pi]
		if err := p.checkShape(); err != nil {
			return fmt.Errorf("netlist: primitive %q: %v", p.Name, err)
		}
	}
	for _, id := range ch.Nets {
		if id < 0 || int(id) >= len(d.Nets) {
			return fmt.Errorf("netlist: change names net %d out of range", id)
		}
		n := &d.Nets[id]
		if n.Wire != nil && !n.Wire.Valid() {
			return fmt.Errorf("netlist: signal %q has invalid wire delay %v", n.Name, *n.Wire)
		}
	}
	// Assertion consistency (§2.5.1) is the one per-net property with
	// non-local reach: every bit of a logical signal must agree.  Scan
	// once, comparing only against the dirtied bases.
	if len(ch.Nets) > 0 {
		asserts := make(map[string]string, len(ch.Nets))
		for _, id := range ch.Nets {
			asserts[d.Nets[id].Base] = d.Nets[id].Assert.String()
		}
		for i := range d.Nets {
			n := &d.Nets[i]
			if want, ok := asserts[n.Base]; ok && n.Assert.String() != want {
				return fmt.Errorf("netlist: signal %q carries conflicting assertions %q and %q", n.Base, want, n.Assert.String())
			}
		}
	}
	return nil
}

// Diff compares two designs and, when they are structurally identical —
// same nets, same primitive connectivity, same cases and design-wide
// environment — returns the parameter-level Changes between them with
// ok true.  Any structural difference (added or renamed nets, rewired or
// re-shaped primitives, changed cases, a changed period or default delay,
// an assertion appearing, disappearing or changing kind) returns ok false:
// the edit is beyond what incremental re-verification handles and the
// caller must verify from scratch.
func Diff(old, new *Design) (Changes, bool) {
	var ch Changes
	if old == nil || new == nil {
		return ch, false
	}
	if old.Period != new.Period || old.ClockUnit != new.ClockUnit ||
		old.DefaultWire != new.DefaultWire ||
		old.PrecisionSkew != new.PrecisionSkew || old.ClockSkew != new.ClockSkew ||
		old.WiredOr != new.WiredOr {
		return ch, false
	}
	if len(old.Nets) != len(new.Nets) || len(old.Prims) != len(new.Prims) {
		return ch, false
	}
	if !casesEqual(old.Cases, new.Cases) {
		return ch, false
	}
	// The analytic delay tables are structural: a retained run's symbolic
	// margin surfaces are derived from them, so any table or binding edit
	// must go through a scratch verification.
	if !delayFnsEqual(old, new) {
		return ch, false
	}
	for i := range old.Nets {
		on, nn := &old.Nets[i], &new.Nets[i]
		if on.Name != nn.Name || on.Base != nn.Base {
			return ch, false
		}
		dirty := false
		switch {
		case (on.Assert == nil) != (nn.Assert == nil):
			return ch, false // appearing/disappearing assertions change seeding and the cross-reference
		case on.Assert != nil:
			if on.Assert.Kind != nn.Assert.Kind {
				return ch, false // kind changes re-pin the net (§2.9)
			}
			if on.Assert.String() != nn.Assert.String() {
				dirty = true
			}
		}
		if !rangePtrEqual(on.Wire, nn.Wire) {
			dirty = true
		}
		if dirty {
			ch.Nets = append(ch.Nets, NetID(i))
		}
	}
	for i := range old.Prims {
		op, np := &old.Prims[i], &new.Prims[i]
		if !connectivityEqual(op, np) {
			return ch, false
		}
		if op.Fn != np.Fn {
			return ch, false
		}
		if op.Kind != np.Kind || op.Name != np.Name ||
			op.Delay != np.Delay || op.SelectDelay != np.SelectDelay ||
			!rfEqual(op.RF, np.RF) ||
			op.Setup != np.Setup || op.Hold != np.Hold ||
			op.MinHigh != np.MinHigh || op.MinLow != np.MinLow {
			ch.Prims = append(ch.Prims, PrimID(i))
		}
	}
	return ch, true
}

// connectivityEqual reports whether two primitives have identical port
// structure and connections.  Kind is compared only through the port
// shape: an instance swap between same-shape kinds (AND ↔ OR) is a
// parameter change, not a structural one.
func connectivityEqual(a, b *Prim) bool {
	if a.Width != b.Width || len(a.In) != len(b.In) || len(a.Out) != len(b.Out) {
		return false
	}
	if a.Kind.IsChecker() != b.Kind.IsChecker() || a.Kind.IsStorage() != b.Kind.IsStorage() ||
		a.Kind.IsGate() != b.Kind.IsGate() || a.Kind.NumSelects() != b.Kind.NumSelects() {
		return false
	}
	for pi := range a.In {
		ap, bp := &a.In[pi], &b.In[pi]
		if len(ap.Bits) != len(bp.Bits) {
			return false
		}
		for bi := range ap.Bits {
			ac, bc := ap.Bits[bi], bp.Bits[bi]
			if ac.Net != bc.Net || ac.Invert != bc.Invert || ac.Directives != bc.Directives {
				return false
			}
		}
	}
	for pi := range a.Out {
		ap, bp := &a.Out[pi], &b.Out[pi]
		if len(ap.Bits) != len(bp.Bits) {
			return false
		}
		for bi := range ap.Bits {
			if ap.Bits[bi] != bp.Bits[bi] {
				return false
			}
		}
	}
	return true
}

// delayFnsEqual compares the analytic delay tables of two designs.
func delayFnsEqual(old, new *Design) bool {
	if len(old.Params) != len(new.Params) || len(old.DelayFns) != len(new.DelayFns) {
		return false
	}
	for i := range old.Params {
		if old.Params[i] != new.Params[i] {
			return false
		}
	}
	for i := range old.DelayFns {
		if !affineEqual(old.DelayFns[i].Min, new.DelayFns[i].Min) ||
			!affineEqual(old.DelayFns[i].Max, new.DelayFns[i].Max) {
			return false
		}
	}
	return true
}

func affineEqual(a, b Affine) bool {
	if a.Base != b.Base || len(a.Coeffs) != len(b.Coeffs) {
		return false
	}
	for i := range a.Coeffs {
		if a.Coeffs[i] != b.Coeffs[i] {
			return false
		}
	}
	return true
}

func casesEqual(a, b []Case) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Label != b[i].Label || len(a[i].Assignments) != len(b[i].Assignments) {
			return false
		}
		for j := range a[i].Assignments {
			if a[i].Assignments[j] != b[i].Assignments[j] {
				return false
			}
		}
	}
	return true
}

func rangePtrEqual(a, b *tick.Range) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || *a == *b
}

func rfEqual(a, b *RFDelay) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || *a == *b
}
