// Package logicsim implements a minimum/maximum-based gate-level logic
// simulator in the style of TEGAS/SAGE/LAMP (§1.4.1.1) — the approach the
// Timing Verifier is compared against.  Signals take six values: 0, 1, X
// (initialisation), U (rising), D (falling) and E (potential spike); a
// gate whose output is settling between its minimum and maximum delay
// carries the appropriate ambiguity value in that window.
//
// Verifying timing this way requires simulating enough input vectors to
// exercise every distinct timing path — exponentially many in general
// (§1.4.1) — which is precisely the cost the Timing Verifier's symbolic
// single pass eliminates.
package logicsim

import (
	"container/heap"
	"fmt"

	"scaldtv/internal/tick"
)

// LValue is a six-value simulation value.
type LValue uint8

// The six simulation values of §1.4.1.1.
const (
	L0 LValue = iota // logic 0
	L1               // logic 1
	LX               // unknown / initialisation
	LU               // rising: settling from 0 to 1
	LD               // falling: settling from 1 to 0
	LE               // potential spike, hazard, or race
)

// String names the value.
func (v LValue) String() string {
	switch v {
	case L0:
		return "0"
	case L1:
		return "1"
	case LX:
		return "X"
	case LU:
		return "U"
	case LD:
		return "D"
	case LE:
		return "E"
	}
	return fmt.Sprintf("LValue(%d)", uint8(v))
}

// possible returns whether the value may currently be 0 and may be 1.
func (v LValue) possible() (can0, can1 bool) {
	switch v {
	case L0:
		return true, false
	case L1:
		return false, true
	}
	return true, true
}

// Solid reports whether the value is a definite logic level.
func (v LValue) Solid() bool { return v == L0 || v == L1 }

// Kind identifies a simulator gate type.
type Kind uint8

// Gate kinds.
const (
	GBuf Kind = iota
	GNot
	GAnd
	GOr
	GNand
	GNor
	GXor
	GDff   // edge-triggered flip-flop: In[0] = clock, In[1] = data
	GLatch // transparent latch: In[0] = enable, In[1] = data
)

// Gate is one simulated element.
type Gate struct {
	Kind  Kind
	Name  string
	Delay tick.Range
	In    []int
	Out   int

	Setup, Hold tick.Time // GDff constraint checks

	prevClk LValue
}

// Circuit is a gate network over integer-numbered nets.
type Circuit struct {
	nets  int
	Gates []Gate
}

// AddNet allocates a net and returns its index.
func (c *Circuit) AddNet() int {
	c.nets++
	return c.nets - 1
}

// AddNets allocates n nets.
func (c *Circuit) AddNets(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = c.AddNet()
	}
	return out
}

// AddGate appends a gate and returns its index.
func (c *Circuit) AddGate(g Gate) int {
	c.Gates = append(c.Gates, g)
	return len(c.Gates) - 1
}

// NumNets reports the allocated net count.
func (c *Circuit) NumNets() int { return c.nets }

// Violation is a constraint failure observed during simulation.
type Violation struct {
	Gate string
	Kind string // "setup" or "hold"
	At   tick.Time
}

type event struct {
	at  tick.Time
	seq int
	net int
	val LValue
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Simulator runs a Circuit.
type Simulator struct {
	c          *Circuit
	fanout     [][]int
	vals       []LValue
	lastChange []tick.Time
	lastSettle []tick.Time
	now        tick.Time
	seq        int
	queue      eventHeap

	pendingHold []holdWatch

	// Events counts value changes processed — comparable to the Timing
	// Verifier's event count.
	Events     int
	Violations []Violation

	// Limit, when positive, stops Run after that many events — a
	// safeguard against zero-delay oscillation in pathological circuits.
	Limit int
}

type holdWatch struct {
	gate  int
	until tick.Time
	net   int
}

// New prepares a simulator with all nets at X.
func New(c *Circuit) *Simulator {
	s := &Simulator{
		c:          c,
		fanout:     make([][]int, c.nets),
		vals:       make([]LValue, c.nets),
		lastChange: make([]tick.Time, c.nets),
		lastSettle: make([]tick.Time, c.nets),
	}
	for i := range s.vals {
		s.vals[i] = LX
	}
	for gi := range c.Gates {
		for _, in := range c.Gates[gi].In {
			s.fanout[in] = append(s.fanout[in], gi)
		}
		c.Gates[gi].prevClk = LX
	}
	return s
}

// Value returns a net's current value.
func (s *Simulator) Value(net int) LValue { return s.vals[net] }

// Now returns the current simulation time.
func (s *Simulator) Now() tick.Time { return s.now }

// LastChange returns when the net last changed value.
func (s *Simulator) LastChange(net int) tick.Time { return s.lastChange[net] }

// Set schedules an external drive of the net at the given absolute time.
func (s *Simulator) Set(net int, v LValue, at tick.Time) {
	if at < s.now {
		at = s.now
	}
	s.schedule(at, net, v)
}

func (s *Simulator) schedule(at tick.Time, net int, v LValue) {
	s.seq++
	heap.Push(&s.queue, event{at: at, seq: s.seq, net: net, val: v})
}

// Run processes events until the queue empties or the horizon passes,
// returning the time of the last processed event.
func (s *Simulator) Run(until tick.Time) tick.Time {
	last := s.now
	for len(s.queue) > 0 && s.queue[0].at <= until {
		if s.Limit > 0 && s.Events >= s.Limit {
			break
		}
		e := heap.Pop(&s.queue).(event)
		s.now = e.at
		if s.vals[e.net] == e.val {
			continue
		}
		old := s.vals[e.net]
		s.vals[e.net] = e.val
		s.lastChange[e.net] = e.at
		if e.val.Solid() && !old.Solid() || e.val.Solid() && old.Solid() {
			s.lastSettle[e.net] = e.at
		}
		s.Events++
		last = e.at
		s.checkHolds(e.net)
		for _, gi := range s.fanout[e.net] {
			s.evalGate(gi)
		}
	}
	s.now = until
	return last
}

// Settled reports whether no events remain.
func (s *Simulator) Settled() bool { return len(s.queue) == 0 }

func (s *Simulator) evalGate(gi int) {
	g := &s.c.Gates[gi]
	if g.Kind == GDff {
		s.evalDff(gi)
		return
	}
	if g.Kind == GLatch {
		s.evalLatch(gi)
		return
	}
	can0, can1 := s.combPossible(g)
	var target LValue
	switch {
	case can0 && !can1:
		target = L0
	case can1 && !can0:
		target = L1
	default:
		target = LX
	}
	cur := s.vals[g.Out]
	if cur == target {
		return
	}
	if g.Delay.Width() > 0 || g.Delay.Min > 0 {
		// Ambiguity value during the settling window.
		amb := LX
		switch {
		case cur == L0 && target == L1:
			amb = LU
		case cur == L1 && target == L0:
			amb = LD
		case cur == LE || target == LX:
			amb = LE
		}
		if g.Delay.Width() > 0 {
			s.schedule(s.now+g.Delay.Min, g.Out, amb)
		}
		s.schedule(s.now+g.Delay.Max, g.Out, target)
	} else {
		s.schedule(s.now, g.Out, target)
	}
}

func (s *Simulator) combPossible(g *Gate) (bool, bool) {
	switch g.Kind {
	case GBuf:
		return s.vals[g.In[0]].possible()
	case GNot:
		c0, c1 := s.vals[g.In[0]].possible()
		return c1, c0
	case GAnd, GNand:
		can0, can1 := false, true
		for _, in := range g.In {
			c0, c1 := s.vals[in].possible()
			can0 = can0 || c0
			can1 = can1 && c1
		}
		if g.Kind == GNand {
			return can1, can0
		}
		return can0, can1
	case GOr, GNor:
		can0, can1 := true, false
		for _, in := range g.In {
			c0, c1 := s.vals[in].possible()
			can0 = can0 && c0
			can1 = can1 || c1
		}
		if g.Kind == GNor {
			return can1, can0
		}
		return can0, can1
	case GXor:
		// Possible parities over the possible input values.
		par := map[bool]bool{false: true}
		for _, in := range g.In {
			c0, c1 := s.vals[in].possible()
			next := map[bool]bool{}
			for p := range par {
				if c0 {
					next[p] = true
				}
				if c1 {
					next[!p] = true
				}
			}
			par = next
		}
		return par[false], par[true]
	}
	return true, true
}

func (s *Simulator) evalDff(gi int) {
	g := &s.c.Gates[gi]
	clk := s.vals[g.In[0]]
	prev := g.prevClk
	g.prevClk = clk
	rising := clk == L1 && (prev == L0 || prev == LU || prev == LX)
	if !rising {
		return
	}
	d := g.In[1]
	// Set-up: the data input must not have changed within Setup of the
	// clocking instant.
	if g.Setup > 0 && s.now-s.lastChange[d] < g.Setup && s.lastChange[d] > 0 {
		s.Violations = append(s.Violations, Violation{Gate: g.Name, Kind: "setup", At: s.now})
	}
	if g.Hold > 0 {
		s.pendingHold = append(s.pendingHold, holdWatch{gate: gi, until: s.now + g.Hold, net: d})
	}
	dv := s.vals[d]
	target := dv
	if !dv.Solid() {
		target = LX
	}
	if s.vals[g.Out] != target {
		if g.Delay.Width() > 0 {
			amb := LX
			if s.vals[g.Out] == L0 && target == L1 {
				amb = LU
			} else if s.vals[g.Out] == L1 && target == L0 {
				amb = LD
			}
			s.schedule(s.now+g.Delay.Min, g.Out, amb)
		}
		s.schedule(s.now+g.Delay.Max, g.Out, target)
	}
}

// evalLatch models a level-sensitive latch: transparent while the enable
// is 1, holding while 0, unknown while the enable itself is uncertain.
func (s *Simulator) evalLatch(gi int) {
	g := &s.c.Gates[gi]
	en := s.vals[g.In[0]]
	var target LValue
	switch en {
	case L0:
		return // holding: the output keeps its captured value
	case L1:
		target = s.vals[g.In[1]]
		if !target.Solid() {
			target = LX
		}
	default:
		target = LX
	}
	cur := s.vals[g.Out]
	if cur == target {
		return
	}
	if g.Delay.Width() > 0 {
		amb := LX
		if cur == L0 && target == L1 {
			amb = LU
		} else if cur == L1 && target == L0 {
			amb = LD
		}
		s.schedule(s.now+g.Delay.Min, g.Out, amb)
	}
	s.schedule(s.now+g.Delay.Max, g.Out, target)
}

func (s *Simulator) checkHolds(net int) {
	kept := s.pendingHold[:0]
	for _, hw := range s.pendingHold {
		if hw.net == net && s.now < hw.until {
			s.Violations = append(s.Violations, Violation{
				Gate: s.c.Gates[hw.gate].Name, Kind: "hold", At: s.now,
			})
			continue
		}
		if s.now < hw.until {
			kept = append(kept, hw)
		}
	}
	s.pendingHold = kept
}
