// Command scaldtvd serves the SCALD Timing Verifier over HTTP: stateless
// POST /v1/verify requests answer with the same JSON report bytes as
// `scaldtv -json`, POST /v1/explore runs automatic case exploration
// (the report carries the minimal case set discharging U/C-poisoned
// constraint sites, matching `scaldtv -explore -json` byte for byte),
// and stateful /v1/sessions retain a converged Verifier so that design
// edits are re-verified incrementally from the dirty cone.  See the
// package comment of internal/server for the endpoint and
// admission-control details.
//
// With -store the daemon persists converged runs in a content-addressed
// cache directory: repeated verify requests are answered from the store
// before the design is even compiled (the X-Scaldtv-Provenance header
// reports cached/warm/cold; the body bytes never change), sessions
// warm-start from the nearest persisted snapshot, and the cache
// survives restarts.
//
// On SIGTERM or SIGINT the daemon drains: new requests are refused with
// 503 while in-flight verifications run to completion (bounded by
// -drain), then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"scaldtv"
	"scaldtv/internal/server"
	"scaldtv/internal/store"
)

func main() {
	addr := flag.String("addr", "localhost:7333", "listen address")
	workers := flag.Int("j", 1, "default case-evaluation workers per verification: 0 = one per CPU")
	intra := flag.Int("intra", 1, "default intra-case evaluation workers: >1 enables wavefront scheduling")
	cache := flag.Bool("cache", true, "memoize primitive evaluations over interned waveforms")
	tapeFlag := flag.Bool("tape", true, "compile designs to a flat evaluation tape with persistent memo tables")
	pool := flag.Int("pool", 0, "concurrent verifications (0 = sized against per-run parallelism)")
	queue := flag.Int("queue", 16, "admitted requests that may wait for a verification slot before 429")
	sessions := flag.Int("sessions", 64, "retained incremental sessions (LRU beyond this)")
	sessionTTL := flag.Duration("session-ttl", 30*time.Minute, "evict sessions idle longer than this")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request verification deadline")
	drain := flag.Duration("drain", 30*time.Second, "shutdown grace for in-flight verifications")
	storeDir := flag.String("store", "", "persist converged runs in this content-addressed cache directory")
	storeMax := flag.Int64("store-max", 0, "store size budget in bytes (0 = the 256 MiB default)")
	flag.Parse()

	var st *store.Store
	if *storeDir != "" {
		var err error
		if st, err = store.Open(*storeDir, *storeMax); err != nil {
			fmt.Fprintf(os.Stderr, "scaldtvd: %v\n", err)
			os.Exit(1)
		}
	}
	if err := run(*addr, server.Config{
		Options:     scaldtv.Options{Workers: *workers, IntraWorkers: *intra, NoCache: !*cache, NoTape: !*tapeFlag},
		Pool:        *pool,
		Queue:       *queue,
		MaxSessions: *sessions,
		SessionTTL:  *sessionTTL,
		Timeout:     *timeout,
		Store:       st,
	}, *drain); err != nil {
		fmt.Fprintf(os.Stderr, "scaldtvd: %v\n", err)
		os.Exit(1)
	}
}

func run(addr string, cfg server.Config, drain time.Duration) error {
	s := server.New(cfg)
	httpSrv := &http.Server{Handler: s.Handler()}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// The readiness line CI and scripts poll for (in addition to /healthz).
	log.Printf("scaldtvd: listening on http://%s", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		log.Printf("scaldtvd: %v: draining (grace %v)", sig, drain)
		// Refuse new work first, then let in-flight verifications finish.
		s.SetDraining(true)
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		log.Printf("scaldtvd: drained, exiting")
		return nil
	}
}
