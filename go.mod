module scaldtv

go 1.22
