package verify

import (
	"fmt"
	"math/rand"
	"testing"

	"scaldtv/internal/gen"
	"scaldtv/internal/netlist"
)

// The snapshot property under test: marshal → unmarshal → Restore on an
// independently elaborated copy of the design yields a session whose
// result and whose every subsequent Reverify are bit-identical to the
// live session the snapshot was taken from — for every worker count,
// with the wavefront engine on or off.  Running the restored session
// against a separate *Design instance proves the snapshot smuggles no
// process-local state.

func TestSnapshotRoundTrip(t *testing.T) {
	type cfgCase struct {
		name string
		cfg  gen.Config
		opts Options
	}
	cfgs := []cfgCase{
		{"plain", gen.Config{Chips: 34, Cases: 2, Inject: 1}, Options{KeepWaves: true, Margins: true}},
		{"varcycle", gen.Config{Chips: 51, VariableCycle: true, Cases: 2}, Options{KeepWaves: true, Margins: true}},
		{"intra", gen.Config{Chips: 34, Cases: 2, Inject: 1}, Options{KeepWaves: true, Margins: true, IntraWorkers: 2}},
	}
	const steps = 3
	for _, workers := range []int{1, 2, 8} {
		for ci, c := range cfgs {
			c, workers, ci := c, workers, ci
			t.Run(fmt.Sprintf("%s/workers=%d", c.name, workers), func(t *testing.T) {
				t.Parallel()
				d1, _, err := gen.Generate(c.cfg)
				if err != nil {
					t.Fatal(err)
				}
				d2, _, err := gen.Generate(c.cfg)
				if err != nil {
					t.Fatal(err)
				}
				opts := c.opts
				opts.Workers = workers
				V1 := NewVerifier(d1, opts)
				res1, err := V1.Verify()
				if err != nil {
					t.Fatal(err)
				}

				snap, err := V1.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				data, err := snap.MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				decoded, err := UnmarshalSnapshot(data)
				if err != nil {
					t.Fatal(err)
				}
				V2, err := Restore(d2, opts, decoded)
				if err != nil {
					t.Fatal(err)
				}
				if !V2.Result().Stats.Cached {
					t.Error("restored result not marked cached")
				}
				sameReports(t, "restore", res1, V2.Result())

				// Identically seeded edit sequences on the two design
				// instances produce identical edits; both sessions must
				// reverify to identical reports, and match scratch.
				rng1 := rand.New(rand.NewSource(int64(100*ci + workers)))
				rng2 := rand.New(rand.NewSource(int64(100*ci + workers)))
				for step := 0; step < steps; step++ {
					ch1, desc := randomEdit(t, d1, rng1)
					ch2, _ := randomEdit(t, d2, rng2)
					r1, err := V1.Reverify(ch1)
					if err != nil {
						t.Fatalf("step %d (%s): live: %v", step, desc, err)
					}
					r2, err := V2.Reverify(ch2)
					if err != nil {
						t.Fatalf("step %d (%s): restored: %v", step, desc, err)
					}
					if !r2.Stats.Incremental {
						t.Fatalf("step %d (%s): restored session fell back to a full run", step, desc)
					}
					sameReports(t, fmt.Sprintf("step %d (%s) live vs restored", step, desc), r1, r2)
					scratch, err := Run(d2, opts)
					if err != nil {
						t.Fatal(err)
					}
					sameReports(t, fmt.Sprintf("step %d (%s) restored vs scratch", step, desc), scratch, r2)
				}
			})
		}
	}
}

// TestSnapshotAcrossOptions locks that a snapshot taken under one
// execution configuration restores under another: the fixed point is
// engine-independent, so only report-relevant options are part of the
// store key.
func TestSnapshotAcrossOptions(t *testing.T) {
	d1, _, err := gen.Generate(gen.Config{Chips: 34, Cases: 2, Inject: 1})
	if err != nil {
		t.Fatal(err)
	}
	d2, _, err := gen.Generate(gen.Config{Chips: 34, Cases: 2, Inject: 1})
	if err != nil {
		t.Fatal(err)
	}
	save := Options{KeepWaves: true, Margins: true, Workers: 1}
	load := Options{KeepWaves: true, Margins: true, Workers: 8, IntraWorkers: 2}
	V1 := NewVerifier(d1, save)
	res1, err := V1.Verify()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := V1.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	data, err := snap.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := UnmarshalSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	V2, err := Restore(d2, load, decoded)
	if err != nil {
		t.Fatal(err)
	}
	sameReports(t, "cross-options restore", res1, V2.Result())
	if Fingerprint(d1, save) != Fingerprint(d2, load) {
		t.Error("execution-only option changes must not change the verification fingerprint")
	}
	if Fingerprint(d1, save) == Fingerprint(d1, Options{MaxPasses: 7}) {
		t.Error("MaxPasses must be part of the verification fingerprint")
	}
}

// TestSnapshotRefusesNonConverged locks that a run that hit the pass cap
// cannot be persisted: its waveforms are not a fixed point.
func TestSnapshotRefusesNonConverged(t *testing.T) {
	d, _, err := gen.Generate(gen.Config{Chips: 34})
	if err != nil {
		t.Fatal(err)
	}
	V := NewVerifier(d, Options{MaxPasses: 1})
	res, err := V.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 || res.Violations[0].Kind != ConvergenceViolation {
		t.Fatal("expected a convergence violation under MaxPasses=1")
	}
	if _, err := V.Snapshot(); err == nil {
		t.Error("Snapshot accepted a non-converged result")
	}
}

// TestSnapshotRestoreRejects exercises the decode- and restore-time
// validation paths: wrong magic, wrong version, truncation, and a
// snapshot of a different design.
func TestSnapshotRestoreRejects(t *testing.T) {
	d, _, err := gen.Generate(gen.Config{Chips: 34, Cases: 2})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{KeepWaves: true}
	V := NewVerifier(d, opts)
	if _, err := V.Verify(); err != nil {
		t.Fatal(err)
	}
	snap, err := V.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	data, err := snap.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	if _, err := UnmarshalSnapshot([]byte("not a snapshot")); err == nil {
		t.Error("decoded garbage")
	}
	bad := append([]byte(nil), data...)
	bad[len(snapshotMagic)] = 99 // version field
	if _, err := UnmarshalSnapshot(bad); err == nil {
		t.Error("decoded unknown version")
	}
	for _, cut := range []int{len(data) / 4, len(data) / 2, len(data) - 1} {
		if _, err := UnmarshalSnapshot(data[:cut]); err == nil {
			t.Errorf("decoded truncation at %d bytes", cut)
		}
	}
	if _, err := UnmarshalSnapshot(append(append([]byte(nil), data...), 0)); err == nil {
		t.Error("decoded trailing bytes")
	}

	other, _, err := gen.Generate(gen.Config{Chips: 51})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(other, opts, snap); err == nil {
		t.Error("restored a snapshot onto a different design")
	}
	if netlist.Fingerprint(other) == snap.DesignFP {
		t.Error("fingerprint collision between distinct designs")
	}
}
