package hdl

import "fmt"

// Eval returns the literal's value.
func (n NumExpr) Eval(map[string]int) (int, error) { return int(n), nil }

// Eval looks the parameter up in the expansion environment.
func (v VarExpr) Eval(env map[string]int) (int, error) {
	if val, ok := env[string(v)]; ok {
		return val, nil
	}
	return 0, fmt.Errorf("hdl: undefined parameter %q", string(v))
}

// Eval applies the operator.
func (b BinExpr) Eval(env map[string]int) (int, error) {
	l, err := b.L.Eval(env)
	if err != nil {
		return 0, err
	}
	r, err := b.R.Eval(env)
	if err != nil {
		return 0, err
	}
	switch b.Op {
	case '+':
		return l + r, nil
	case '-':
		return l - r, nil
	case '*':
		return l * r, nil
	case '/':
		if r == 0 {
			return 0, fmt.Errorf("hdl: division by zero in parameter expression")
		}
		return l / r, nil
	}
	return 0, fmt.Errorf("hdl: unknown operator %q", b.Op)
}

// String renders expressions for diagnostics.
func (n NumExpr) String() string { return fmt.Sprintf("%d", int(n)) }

func (v VarExpr) String() string { return string(v) }

func (b BinExpr) String() string { return fmt.Sprintf("(%v%c%v)", b.L, b.Op, b.R) }
