package scaldtv

import (
	"strings"
	"testing"
)

const quickSrc = `
design "API TEST"
period 50ns
clockunit 6.25ns
reg R1 delay=(1.5,4.5) ("CK .P0-4", "DATA .S6-12"<0:7>) -> (Q<0:7>)
setuphold CHK setup=2.5 hold=1.5 ("DATA .S6-12"<0:7>, "CK .P0-4")
`

func TestVerifySourceClean(t *testing.T) {
	res, err := VerifySource(quickSrc, Options{KeepWaves: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors() {
		t.Errorf("clean design flagged: %v", res.Violations)
	}
	if s := TimingSummary(res, 0); !strings.Contains(s, "DATA<0:7>") {
		t.Errorf("summary missing vector:\n%s", s)
	}
	if s := ErrorListing(res); !strings.Contains(s, "no timing errors") {
		t.Errorf("error listing wrong:\n%s", s)
	}
	if s := Summary(res); !strings.Contains(s, "API TEST") {
		t.Errorf("summary wrong:\n%s", s)
	}
	if s := CrossReference(res); !strings.Contains(s, "none") {
		t.Errorf("xref wrong:\n%s", s)
	}
}

func TestVerifySourceError(t *testing.T) {
	src := strings.Replace(quickSrc, ".S6-12", ".S7.8-8", 2)
	res, err := VerifySource(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Errors() {
		t.Fatal("late data not flagged")
	}
	if res.Violations[0].Kind != SetupViolation {
		t.Errorf("kind = %v", res.Violations[0].Kind)
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile("nonsense"); err == nil {
		t.Error("parse error not propagated")
	}
	if _, err := Compile("period 50ns\nuse NOSUCH (A=B)"); err == nil {
		t.Error("expansion error not propagated")
	}
	if _, err := VerifySource("nonsense", Options{}); err == nil {
		t.Error("VerifySource should propagate compile errors")
	}
}

func TestCompileWithLibrary(t *testing.T) {
	d, err := CompileWithLibrary(`
design LIBUSE
period 50ns
clockunit 6.25ns
`, `
use "REG 10176" R1 SIZE=4 (CK="CK .P0-4", I="D .S6-12"<0:3>, Q=Q<0:3>)
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Verify(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors() {
		t.Errorf("library design flagged: %v", res.Violations)
	}
}

func TestBuilderAPI(t *testing.T) {
	b := NewBuilder("api-builder")
	b.SetPeriod(NS(50))
	ck := b.Net("CK .P20-30")
	d := b.Vector("D .S0-3", 4)
	q := b.Vector("Q", 4)
	b.Register("R", Delay(1, 2), q, Conn{Net: ck}, Conns(d...))
	b.SetupHold("CHK", NS(2), NS(1), Conns(d...), Conn{Net: ck})
	des, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Verify(des, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Data stable 0–15: changes during the 20 ns edge window? Stable 0-15,
	// changing 15–50: the edge at 20 sits in the changing region.
	if !res.Errors() {
		t.Error("expected a violation from data changing at the edge")
	}
	if res.Violations[0].Margin() >= 0 {
		t.Error("violation margin should be negative")
	}
}

func TestCompileWithReport(t *testing.T) {
	_, rep, err := CompileWithReport(quickSrc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Primitives != 2 {
		t.Errorf("primitives = %d", rep.Primitives)
	}
}

func TestInvertHelper(t *testing.T) {
	b := NewBuilder("inv")
	b.SetPeriod(NS(50))
	a := b.Net("A")
	cs := Invert(Conns(a))
	if !cs[0].Invert {
		t.Error("Invert helper broken")
	}
}

func TestMinimumPeriod(t *testing.T) {
	// The quickstart register design: the critical constraint is the
	// 2.5 ns set-up against the skewed cycle-boundary clock.  Shrinking
	// the period scales the stable window with it, so a minimum exists.
	min, err := MinimumPeriod(quickSrc, NS(5), NS(50), NS(0.25))
	if err != nil {
		t.Fatal(err)
	}
	if min <= NS(5) || min >= NS(50) {
		t.Fatalf("minimum period = %v, expected strictly inside the bracket", min)
	}
	// The design is clean at the minimum and dirty just below it.
	check := func(p Time) bool {
		scaled := strings.Replace(quickSrc, "period 50ns", "period "+p.String()+"ns", 1)
		scaled = strings.Replace(scaled, "clockunit 6.25ns",
			"clockunit "+Time(int64(NS(6.25))*int64(p)/int64(NS(50))).String()+"ns", 1)
		res, err := VerifySource(scaled, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return !res.Errors()
	}
	if !check(min) {
		t.Errorf("design dirty at the reported minimum %v", min)
	}
	if check(min - NS(1)) {
		t.Errorf("design clean 1 ns below the reported minimum %v", min)
	}
}

func TestMinimumPeriodEdges(t *testing.T) {
	if _, err := MinimumPeriod(quickSrc, 0, NS(50), NS(1)); err == nil {
		t.Error("invalid bounds accepted")
	}
	if _, err := MinimumPeriod("nonsense", NS(5), NS(50), NS(1)); err == nil {
		t.Error("parse error not propagated")
	}
	// A design that fails even at hi returns 0.
	bad := strings.Replace(quickSrc, ".S6-12", ".S7.8-8", 2)
	min, err := MinimumPeriod(bad, NS(5), NS(50), NS(1))
	if err != nil || min != 0 {
		t.Errorf("unachievable sweep = %v, %v; want 0, nil", min, err)
	}
}

func TestFacadeWrappers(t *testing.T) {
	res, err := VerifySource(quickSrc, Options{KeepWaves: true, Margins: true})
	if err != nil {
		t.Fatal(err)
	}
	if s := WaveArt(res, 0, 40); !strings.Contains(s, "WAVEFORMS") {
		t.Errorf("WaveArt wrapper broken: %q", s[:40])
	}
	if s := DOT(res.Design); !strings.Contains(s, "digraph") {
		t.Error("DOT wrapper broken")
	}
	if s := SlackListing(res, 5); !strings.Contains(s, "CONSTRAINT MARGINS") {
		t.Error("SlackListing wrapper broken")
	}
	if s := CaseDiff(res, 0, 0); !strings.Contains(s, "none") {
		t.Error("CaseDiff wrapper broken")
	}
	if findings := Lint(res.Design); findings == nil {
		// The quickstart register feeds nothing: expect the dangling Q.
		t.Error("Lint wrapper returned nothing for a design with dangling outputs")
	}
}

func TestAutoCorrFacade(t *testing.T) {
	b := NewBuilder("fb")
	b.SetPeriod(NS(50))
	b.SetDefaultWire(DelayRange{})
	b.SetPrecisionSkew(DelayRange{})
	ck, bufCk := b.Net("CK .P20-30"), b.Net("BCK")
	q, d := b.Net("Q"), b.Net("D")
	b.Buf("CKB", Delay(0, 5), []NetID{bufCk}, Conns(ck))
	b.Mux(KMux2, "M", Delay(1, 2), DelayRange{}, []NetID{d},
		Conns(b.Net("LD .S0-50")), Conns(q), Conns(b.Net("ND .S0-50")))
	b.Register("R", Delay(1, 2), []NetID{q}, Conn{Net: bufCk}, Conns(d))
	des, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ins, err := AutoCorr(des)
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 1 || ins[0].Delay != NS(5) {
		t.Errorf("AutoCorr wrapper = %+v", ins)
	}
}
