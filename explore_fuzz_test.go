package scaldtv

import (
	"fmt"
	"testing"

	"scaldtv/internal/gen"
	"scaldtv/internal/netlist"
	"scaldtv/internal/values"
)

// FuzzExploreMinimality fuzzes the explorer's headline claim over the
// generated design family: when it reports a minimal case set, dropping
// any one chosen split and re-verifying the reduced product must
// re-poison at least one site the full set discharged.  The fuzzer
// steers the generator's structural knobs — pipeline size, decode
// depth, declared cases, the variable-length-cycle tail (the structure
// for which case analysis is essential, §3.3.2) and the feedback
// fraction — so the cover search runs against many candidate-cone
// shapes, not just the hand-written example.
func FuzzExploreMinimality(f *testing.F) {
	f.Add(uint8(1), uint8(0), uint8(0), true, uint8(0))
	f.Add(uint8(3), uint8(2), uint8(3), true, uint8(2))
	f.Add(uint8(17), uint8(1), uint8(5), true, uint8(1))
	f.Add(uint8(6), uint8(0), uint8(0), false, uint8(0))
	f.Add(uint8(30), uint8(3), uint8(9), true, uint8(4))
	f.Fuzz(func(t *testing.T, chips, depth, feedback uint8, varCycle bool, cases uint8) {
		cfg := gen.Config{
			Chips:         1 + int(chips)%40,
			Depth:         int(depth) % 4,
			Cases:         int(cases) % 5,
			VariableCycle: varCycle,
			Width:         8,
			Feedback:      float64(feedback%10) / 10,
		}
		d, _, err := gen.Generate(cfg)
		if err != nil {
			t.Skip() // an unbuildable shape is the generator's concern
		}
		res, err := Verify(d, Options{Explore: true})
		if err != nil {
			t.Fatalf("explore: %v", err)
		}
		ex := res.Exploration
		if ex == nil {
			t.Fatal("explore run returned no Exploration")
		}
		if !ex.Minimal {
			t.Fatalf("explorer disclaims minimality for %+v: %+v", cfg, ex)
		}
		if len(ex.Chosen) == 0 {
			return // nothing discharged, nothing to minimise
		}
		discharged := map[string]bool{}
		for _, s := range ex.Sites {
			if s.Discharged {
				discharged[s.Key()] = true
			}
		}
		if len(discharged) == 0 {
			t.Fatalf("splits %v chosen but no site discharged", ex.Chosen)
		}

		base := d.WithCases(nil)
		for drop := range ex.Chosen {
			reduced := make([]string, 0, len(ex.Chosen)-1)
			for i, b := range ex.Chosen {
				if i != drop {
					reduced = append(reduced, b)
				}
			}
			rd := base
			if len(reduced) > 0 {
				rd = base.WithCases(productOver(reduced))
			}
			rres, err := Verify(rd, Options{})
			if err != nil {
				t.Fatalf("reduced verify: %v", err)
			}
			repoisoned := false
			for _, v := range rres.Violations {
				if discharged[violationSiteKey(v)] {
					repoisoned = true
					break
				}
			}
			if !repoisoned {
				t.Fatalf("dropping split %q still discharges every site: case set %v is not minimal (cfg %+v)",
					ex.Chosen[drop], ex.Chosen, cfg)
			}
		}
	})
}

// productOver enumerates the full 0/1 product over the given bases, the
// first base varying slowest — the explorer's own enumeration order.
func productOver(bases []string) []netlist.Case {
	n := len(bases)
	out := make([]netlist.Case, 0, 1<<n)
	for bits := 0; bits < 1<<n; bits++ {
		var c netlist.Case
		for i, b := range bases {
			bit := 0
			v := values.V0
			if bits&(1<<(n-1-i)) != 0 {
				bit, v = 1, values.V1
			}
			if c.Label != "" {
				c.Label += ", "
			}
			c.Label += fmt.Sprintf("%s = %d", b, bit)
			c.Assignments = append(c.Assignments, netlist.CaseAssign{Base: b, Value: v})
		}
		out = append(out, c)
	}
	return out
}
