package scaldtv

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"scaldtv/internal/assertion"
	"scaldtv/internal/logicsim"
	"scaldtv/internal/netlist"
	"scaldtv/internal/tick"
	"scaldtv/internal/values"
)

// The explorer's differential property: a case set it reports as
// discharging a poisoned constraint site must discharge it not just in
// the seven-value algebra but under concrete gate-level simulation.
// Each emitted case is replayed as a Force assignment — the split
// signal's waveform overridden with the pinned constant — and the
// §1.4.1.1-style simulator is run with every delay range pinned to its
// minimum, midpoint and maximum.  In every branch and pinning the
// asserted signal must hold one definite level throughout its stable
// window, which is exactly the claim the symbolic discharge makes.

// violationSiteKey mirrors the explorer's site identity: the constraint
// site regardless of which case it fired in.
func violationSiteKey(v Violation) string {
	return v.Kind.String() + "|" + v.Prim + "|" + v.Data + "|" + v.Clock
}

// forceSplit renders one emitted case label ("CONTROL SIGNAL = 0", or
// "A = 0, B = 1" for a product cycle) as a Force assignment over the
// named bases' undriven nets.
func forceSplit(t *testing.T, d *netlist.Design, label string) (map[netlist.NetID]values.Waveform, map[netlist.NetID]bool) {
	t.Helper()
	force := map[netlist.NetID]values.Waveform{}
	pinned := map[netlist.NetID]bool{}
	for _, part := range strings.Split(label, ", ") {
		base, val, ok := strings.Cut(part, " = ")
		if !ok {
			t.Fatalf("malformed case label part %q", part)
		}
		var v values.Value
		switch strings.TrimSpace(val) {
		case "0":
			v = values.V0
		case "1":
			v = values.V1
		default:
			t.Fatalf("case label %q pins a non-binary value", part)
		}
		found := false
		for i := range d.Nets {
			if !netlist.BaseMatches(d.Nets[i].Base, strings.TrimSpace(base)) {
				continue
			}
			if d.Nets[i].Driver != netlist.NoDriver {
				t.Fatalf("split signal %q is driven; the explorer must only split inputs", d.Nets[i].Name)
			}
			force[netlist.NetID(i)] = values.Const(d.Period, v)
			pinned[netlist.NetID(i)] = true
			found = true
		}
		if !found {
			t.Fatalf("case label %q names no net in the design", part)
		}
	}
	return force, pinned
}

// checkWindowStable asserts the concrete trace of an asserted net holds
// one definite level throughout its .S stable window.  The steady-state
// cycle is periodic, so a window wrapping past the period end is checked
// by folding its offsets back into the sampled cycle.
func checkWindowStable(t *testing.T, d *netlist.Design, tr cycleTrace, name string, mode int) {
	t.Helper()
	id, ok := d.NetByName(name)
	if !ok {
		t.Fatalf("discharged site names unknown net %q", name)
	}
	a := d.Nets[id].Assert
	if a == nil || a.Kind != assertion.Stable {
		return
	}
	aw, err := a.Waveform(assertion.Env{Period: d.Period, ClockUnit: d.ClockUnit})
	if err != nil {
		t.Fatal(err)
	}
	var level logicsim.LValue
	definite := 0
	for k, off := 0, tick.Time(0); off < d.Period; k, off = k+1, off+tr.Step {
		if aw.At(off) != values.VS {
			continue
		}
		cv := tr.Vals[id][k]
		if cv != logicsim.L0 && cv != logicsim.L1 {
			continue
		}
		if definite++; definite == 1 {
			level = cv
			continue
		}
		if cv != level {
			t.Errorf("mode %d: net %q changes level at offset %v inside its asserted stable window",
				mode, name, off)
			return
		}
	}
	if definite == 0 {
		t.Errorf("mode %d: no definite concrete samples inside %q's stable window — the check was vacuous", mode, name)
	}
}

// TestExploreCaseSetDischargesConcretely runs the explorer on the
// Fig 2-6 case-analysis example with its declared cases stripped, checks
// it rediscovers the designer's hand-written split, then replays every
// emitted case as a Force assignment and confirms — symbolically and
// under concrete simulation at three delay pinnings — that the poisoned
// site really is discharged.
func TestExploreCaseSetDischargesConcretely(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("examples", "caseanalysis", "caseanalysis.scald"))
	if err != nil {
		t.Fatal(err)
	}
	d, err := Compile(string(src))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Verify(d, Options{Explore: true})
	if err != nil {
		t.Fatal(err)
	}
	ex := res.Exploration
	if ex == nil {
		t.Fatal("Explore run returned no Exploration")
	}
	if len(ex.Sites) == 0 {
		t.Fatal("explorer found no poisoned sites on the case-analysis example")
	}
	for _, s := range ex.Sites {
		if !s.Discharged {
			t.Fatalf("site %s not discharged", s.Key())
		}
	}
	if !ex.Minimal {
		t.Error("explorer did not report the case set as minimal")
	}
	if ex.Residual != 0 {
		t.Errorf("explorer left %d residual violation(s)", ex.Residual)
	}

	// The acceptance claim: the automatic split matches the designer's
	// hand-written `case` lines, found with zero manual hints.
	declared := map[string]bool{}
	for _, c := range d.Cases {
		declared[c.Label] = true
	}
	if len(ex.CaseSet) != len(declared) {
		t.Fatalf("explorer emitted %d case(s), the designer declared %d", len(ex.CaseSet), len(declared))
	}
	for _, label := range ex.CaseSet {
		if !declared[label] {
			t.Errorf("explored case %q does not match any declared case", label)
		}
	}

	stripped := d.WithCases(nil)
	for _, label := range ex.CaseSet {
		t.Run(label, func(t *testing.T) {
			force, pinned := forceSplit(t, d, label)
			fres, err := Verify(stripped, Options{KeepWaves: true, Force: force})
			if err != nil {
				t.Fatal(err)
			}
			// Symbolically: the branch keeps every discharged site clean.
			for _, s := range ex.Sites {
				if !s.Discharged {
					continue
				}
				for _, v := range fres.Violations {
					if violationSiteKey(v) == s.Key() {
						t.Fatalf("site %s re-poisoned under forced split %q", s.Key(), label)
					}
				}
			}
			// Concretely: at min, mid and max pinned delays the asserted
			// signal holds a definite level across its stable window, and
			// the full symbolic-coverage differential check passes.
			for mode := 0; mode < 3; mode++ {
				tr := simulateCycle(t, stripped, fres.Cases[0].Waves, pinned, mode)
				for _, s := range ex.Sites {
					if !s.Discharged || s.Data == "" {
						continue
					}
					checkWindowStable(t, stripped, tr, s.Data, mode)
				}
				if solid := runDifferential(t, stripped, fres, 0, mode); solid == 0 {
					t.Error("no definite concrete samples: the differential check was vacuous")
				}
			}
		})
	}
}
