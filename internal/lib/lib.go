// Package lib provides the Chapter-3 component library as HDL source: the
// timing models the paper defines for the Fairchild 10145A register file
// (Fig 3-5), the 2-input multiplexer (Fig 3-6), the edge-triggered
// register (Fig 3-7), the 2-input OR gate (Fig 3-8), and the
// arithmetic/logic unit with output latch (Fig 3-9), plus the CORR
// fictitious-delay macro of §4.2.3.
//
// Designs prepend Prelude to their source and instantiate the macros with
// "use".
package lib

import (
	"fmt"

	"scaldtv/internal/hdl"
)

// Prelude is the component library in HDL source form.
const Prelude = `
; ---------------------------------------------------------------------------
; SCALD Timing Verifier component library (McWilliams 1980, Chapter 3).
; Delay, set-up, hold and pulse-width figures follow the data-sheet values
; reproduced in the paper's figures.
; ---------------------------------------------------------------------------

; Fig 3-5: 16-word random access memory, Fairchild 10145A.  The write-data
; inputs must be stable 4.5 ns before the falling edge of the write-enable
; pulse (hold -1.0 ns); the address lines must be stable 3.5 ns before the
; rising edge, throughout the pulse, and 1.0 ns beyond its falling edge; the
; write-enable pulse must be at least 4.0 ns wide.  The read path is
; modelled with CHG gates: only *when* the outputs change matters (§2.4.2).
macro "16W RAM 10145A" (SIZE) {
    param I<0:SIZE-1>, A<0:3>, WE, CS, DO
    setuphold "I CHK" setup=4.5 hold=-1.0 (I<0:SIZE-1>, -WE)
    setupriseholdfall "A CHK" setup=3.5 hold=1.0 (A<0:3>, WE)
    minpulse "WE WIDTH" high=4.0 (WE)
    chg "READ" delay=(5.0, 9.0) (A<0:3>, WE, CS) -> (DO)
}

; Fig 3-6: 2-input multiplexer, 1.2/3.3 ns data delay with an additional
; 0.3/1.2 ns from the select input.
macro "2 MUX 10173" (SIZE) {
    param S, D0<0:SIZE-1>, D1<0:SIZE-1>, O<0:SIZE-1>
    mux2 "MUX" delay=(1.2, 3.3) seldelay=(0.3, 1.2) (S, D0<0:SIZE-1>, D1<0:SIZE-1>) -> (O<0:SIZE-1>)
}

; Fig 3-7: edge-triggered register, 1.5/4.5 ns delay, 2.5 ns set-up and
; 1.5 ns hold on the data inputs.
macro "REG 10176" (SIZE) {
    param CK, I<0:SIZE-1>, Q<0:SIZE-1>
    reg "REG" delay=(1.5, 4.5) (CK, I<0:SIZE-1>) -> (Q<0:SIZE-1>)
    setuphold "I CHK" setup=2.5 hold=1.5 (I<0:SIZE-1>, CK)
}

; Fig 3-8: 2-input OR gate, 1.0/2.9 ns.
macro "2 OR 10101" {
    param A, B, O
    or "OR" delay=(1.0, 2.9) (A, B) -> (O)
}

; Fig 3-9: arithmetic/logic unit with output latch.  The propagation delay
; from the data and function-select inputs is modelled by a CHG gate; the
; output latch is transparent while E is high and checks set-up/hold around
; its closing (falling) edge.
macro "ALU 10181" (SIZE) {
    param A<0:SIZE-1>, B<0:SIZE-1>, C1, S<0:3>, E, F<0:SIZE-1>
    local R
    chg "FUNC" delay=(2.0, 6.5) (A<0:SIZE-1>, B<0:SIZE-1>, C1, S<0>, S<1>, S<2>, S<3>) -> (R)
    latch "OUT LATCH" delay=(1.0, 3.5) (E, R) -> (F<0:SIZE-1>)
    setuphold "LATCH CHK" setup=2.5 hold=1.5 (R, -E)
    minpulse "E WIDTH" high=4.0 (E)
}

; §4.2.3: the CORR fictitious delay inserted in register feedback paths to
; suppress correlation false errors.  DELAY nanoseconds, exactly.
macro "CORR 5NS" {
    param I, O
    buf "CORR" delay=(5.0, 5.0) (I) -> (O)
}
`

// Macros parses the library and returns its macro definitions, for
// embedding in generated designs.
func Macros() ([]*hdl.Macro, error) {
	f, err := hdl.Parse("period 50ns\n" + Prelude)
	if err != nil {
		return nil, fmt.Errorf("lib: library source does not parse: %v", err)
	}
	return f.Macros, nil
}

// Names lists the component names the library defines.
func Names() []string {
	return []string{
		"16W RAM 10145A",
		"2 MUX 10173",
		"REG 10176",
		"2 OR 10101",
		"ALU 10181",
		"CORR 5NS",
	}
}
