package main

import (
	"regexp"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: scaldtv
cpu: AMD EPYC 7B13
BenchmarkTable31_VerifyOnly/chips=1003/cache=true-8         	     355	   3348146 ns/op	        8340 events	     950 hits	  401.0 ns/event	  612345 B/op	    4321 allocs/op
BenchmarkTable31_VerifyOnly/chips=1003/cache=true-8         	     360	   3310000 ns/op	        8340 events	     950 hits	  396.9 ns/event	  612345 B/op	    4321 allocs/op
BenchmarkTable31_VerifyOnly/chips=1003/cache=false-8        	      54	  21290000 ns/op	        8340 events	 2552.8 ns/event	 9876543 B/op	   65432 allocs/op
BenchmarkTable31_VerifyOnly/chips=1003/cache=false-8        	      55	  21100000 ns/op	        8340 events	 2530.0 ns/event	 9876543 B/op	   65432 allocs/op
BenchmarkValues_Combine-8   	 5000000	       240.5 ns/op
PASS
ok  	scaldtv	12.345s
`

func TestParse(t *testing.T) {
	var doc Doc
	if err := parse(&doc, strings.NewReader(sampleOutput)); err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || doc.Pkg != "scaldtv" {
		t.Errorf("header = %q/%q/%q", doc.Goos, doc.Goarch, doc.Pkg)
	}
	if doc.CPU != "AMD EPYC 7B13" {
		t.Errorf("cpu = %q", doc.CPU)
	}
	if len(doc.Samples) != 5 {
		t.Fatalf("parsed %d samples, want 5", len(doc.Samples))
	}
	s := doc.Samples[0]
	if s.Name != "BenchmarkTable31_VerifyOnly/chips=1003/cache=true" {
		t.Errorf("name = %q", s.Name)
	}
	if s.Procs != 8 || s.Iterations != 355 {
		t.Errorf("procs/iterations = %d/%d", s.Procs, s.Iterations)
	}
	if s.Metrics["ns/op"] != 3348146 || s.Metrics["allocs/op"] != 4321 || s.Metrics["hits"] != 950 {
		t.Errorf("metrics = %v", s.Metrics)
	}
	plain := doc.Samples[4]
	if plain.Name != "BenchmarkValues_Combine" || plain.Metrics["ns/op"] != 240.5 {
		t.Errorf("plain sample = %+v", plain)
	}
}

func TestParseLineRejectsMalformed(t *testing.T) {
	for _, line := range []string{
		"BenchmarkBroken-8",
		"BenchmarkBroken-8 notanumber 12 ns/op",
		"BenchmarkBroken-8 100 twelve ns/op",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parseLine accepted %q", line)
		}
	}
}

func TestPairKey(t *testing.T) {
	key, on, labels, isPair := pairKey("BenchmarkTable31_VerifyOnly/chips=1003/cache=true")
	if !isPair || !on || key != "BenchmarkTable31_VerifyOnly/chips=1003" {
		t.Errorf("got (%q, %v, %v)", key, on, isPair)
	}
	if labels != [2]string{"cache on", "cache off"} {
		t.Errorf("labels = %v", labels)
	}
	key, on, _, isPair = pairKey("BenchmarkTable31_VerifyOnly/chips=1003/cache=false")
	if !isPair || on || key != "BenchmarkTable31_VerifyOnly/chips=1003" {
		t.Errorf("got (%q, %v, %v)", key, on, isPair)
	}
	key, on, labels, isPair = pairKey("BenchmarkIncrementalReverify/chips=1003/mode=incremental")
	if !isPair || !on || key != "BenchmarkIncrementalReverify/chips=1003" {
		t.Errorf("got (%q, %v, %v)", key, on, isPair)
	}
	if labels != [2]string{"incremental", "full"} {
		t.Errorf("labels = %v", labels)
	}
	key, on, _, isPair = pairKey("BenchmarkIncrementalReverify/chips=1003/mode=full")
	if !isPair || on || key != "BenchmarkIncrementalReverify/chips=1003" {
		t.Errorf("got (%q, %v, %v)", key, on, isPair)
	}
	if _, _, _, isPair := pairKey("BenchmarkValues_Combine"); isPair {
		t.Error("non-pair benchmark reported as pair")
	}
}

func TestCacheSummary(t *testing.T) {
	var doc Doc
	if err := parse(&doc, strings.NewReader(sampleOutput)); err != nil {
		t.Fatal(err)
	}
	md := cacheSummary(&doc)
	if !strings.Contains(md, "BenchmarkTable31_VerifyOnly/chips=1003") {
		t.Errorf("summary missing pair row:\n%s", md)
	}
	// Best-of: 3310000 on vs 21100000 off → 6.37x.
	if !strings.Contains(md, "6.37x") {
		t.Errorf("summary missing speedup:\n%s", md)
	}
	if !strings.Contains(md, "| 3310000 |") || !strings.Contains(md, "| 21100000 |") {
		t.Errorf("summary missing best-of ns/op values:\n%s", md)
	}
	if strings.Contains(md, "BenchmarkValues_Combine") {
		t.Errorf("non-pair benchmark leaked into summary:\n%s", md)
	}
}

func TestCacheSummaryEmpty(t *testing.T) {
	doc := Doc{Samples: []Sample{{Name: "BenchmarkValues_Combine", Metrics: map[string]float64{"ns/op": 1}}}}
	if md := cacheSummary(&doc); !strings.Contains(md, "no paired settings") {
		t.Errorf("empty summary = %q", md)
	}
}

func TestIntraSummary(t *testing.T) {
	const out = `BenchmarkIntraWavefront/chips=1003/intra=1-8   100   10000000 ns/op
BenchmarkIntraWavefront/chips=1003/intra=8-8   200    4000000 ns/op
`
	var doc Doc
	if err := parse(&doc, strings.NewReader(out)); err != nil {
		t.Fatal(err)
	}
	md := cacheSummary(&doc)
	if !strings.Contains(md, "BenchmarkIntraWavefront/chips=1003") {
		t.Errorf("summary missing intra pair:\n%s", md)
	}
	if !strings.Contains(md, "| intra wavefront |") || !strings.Contains(md, "| serial |") {
		t.Errorf("summary missing intra labels:\n%s", md)
	}
	// 10000000 / 4000000 = 2.50x.
	if !strings.Contains(md, "2.50x") {
		t.Errorf("summary missing speedup:\n%s", md)
	}
}

func TestRegressionDiff(t *testing.T) {
	prev := &Doc{Samples: []Sample{
		{Name: "BenchmarkA", Metrics: map[string]float64{"ns/op": 1000}},
		{Name: "BenchmarkA", Metrics: map[string]float64{"ns/op": 900}}, // best
		{Name: "BenchmarkB", Metrics: map[string]float64{"ns/op": 500}},
		{Name: "BenchmarkGone", Metrics: map[string]float64{"ns/op": 10}},
	}}
	cur := &Doc{Samples: []Sample{
		{Name: "BenchmarkA", Metrics: map[string]float64{"ns/op": 1100}}, // 1.22x of 900: ok
		{Name: "BenchmarkB", Metrics: map[string]float64{"ns/op": 700}},  // 1.40x: regressed
		{Name: "BenchmarkNew", Metrics: map[string]float64{"ns/op": 42}},
	}}
	md, regressed := regressionDiff(prev, cur, 1.25, nil)
	if !regressed {
		t.Fatalf("1.40x growth not flagged:\n%s", md)
	}
	if !strings.Contains(md, "| BenchmarkA | 900 | 1100 | 1.22x | ok |") {
		t.Errorf("missing ok row (against best-of prev):\n%s", md)
	}
	if !strings.Contains(md, "| BenchmarkB | 500 | 700 | 1.40x | REGRESSED |") {
		t.Errorf("missing regression row:\n%s", md)
	}
	if !strings.Contains(md, "| BenchmarkNew | — | 42 | | new |") {
		t.Errorf("missing new row:\n%s", md)
	}
	if !strings.Contains(md, "| BenchmarkGone | 10 | — | | removed |") {
		t.Errorf("missing removed row:\n%s", md)
	}

	// Within the limit on every matched name → clean verdict.
	cur2 := &Doc{Samples: []Sample{
		{Name: "BenchmarkA", Metrics: map[string]float64{"ns/op": 950}},
		{Name: "BenchmarkB", Metrics: map[string]float64{"ns/op": 400}},
	}}
	if md, regressed := regressionDiff(prev, cur2, 1.25, nil); regressed {
		t.Errorf("clean run flagged:\n%s", md)
	}
}

// TestRegressionDiffIgnore: names matching -ignore never fail the run and
// are dropped from the table — the escape hatch for landing a benchmark
// family (e.g. the server suite) before its baseline is archived.
func TestRegressionDiffIgnore(t *testing.T) {
	prev := &Doc{Samples: []Sample{
		{Name: "BenchmarkA", Metrics: map[string]float64{"ns/op": 1000}},
		{Name: "BenchmarkServerStatelessVerify", Metrics: map[string]float64{"ns/op": 100}},
	}}
	cur := &Doc{Samples: []Sample{
		{Name: "BenchmarkA", Metrics: map[string]float64{"ns/op": 1100}},
		{Name: "BenchmarkServerStatelessVerify", Metrics: map[string]float64{"ns/op": 900}}, // 9x, but ignored
	}}
	re := regexp.MustCompile(`^BenchmarkServer`)
	md, regressed := regressionDiff(prev, cur, 1.25, re)
	if regressed {
		t.Fatalf("ignored name flagged as regression:\n%s", md)
	}
	if strings.Contains(md, "BenchmarkServerStatelessVerify") {
		t.Errorf("ignored name still in table:\n%s", md)
	}
	if !strings.Contains(md, "excluded by -ignore") {
		t.Errorf("missing ignore note:\n%s", md)
	}
	// The same 9x growth without -ignore must fail.
	if _, regressed := regressionDiff(prev, cur, 1.25, nil); !regressed {
		t.Error("9x growth not flagged without -ignore")
	}
}

func TestModeSummary(t *testing.T) {
	const out = `BenchmarkIncrementalReverify/chips=1003/mode=full-8          20   12000000 ns/op   5369844 B/op   57397 allocs/op
BenchmarkIncrementalReverify/chips=1003/mode=incremental-8  200     166000 ns/op     13806 B/op      14 allocs/op
`
	var doc Doc
	if err := parse(&doc, strings.NewReader(out)); err != nil {
		t.Fatal(err)
	}
	md := cacheSummary(&doc)
	if !strings.Contains(md, "BenchmarkIncrementalReverify/chips=1003") {
		t.Errorf("summary missing mode pair:\n%s", md)
	}
	if !strings.Contains(md, "| incremental |") || !strings.Contains(md, "| full |") {
		t.Errorf("summary missing mode labels:\n%s", md)
	}
	// 12000000 / 166000 = 72.29x.
	if !strings.Contains(md, "72.29x") {
		t.Errorf("summary missing speedup:\n%s", md)
	}
}
