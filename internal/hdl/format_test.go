package hdl

import (
	"strings"
	"testing"
)

const formatSample = `
design "FMT SAMPLE"
period 50ns
clockunit 6.25ns
defaultwire 0ns 2ns
skew precision -1ns 1ns
skew clock -5ns 5ns
wiredor
signal ADR<0:3>
wire ADR 0ns 6ns

macro "16W RAM" (SIZE) {
    param I<0:SIZE-1>, A<0:3>, WE, DO
    local WET
    setuphold "I CHK" setup=4.5 hold=-1.0 (I<0:SIZE-1>, -WE)
    minpulse high=4.0 (WE)
    chg delay=(5.0, 9.0) (A<0:3>, WE) -> (DO)
}

mux2 "ADR MUX" delay=(1.2,3.3) seldelay=(0.3,1.2) ("CLK .P0-4" &Z, "READ ADR .S4-9"<0:3>, "W ADR .S0-6"<0:3>) -> (ADR<0:3>)
and "WE GATE" delay=(1.0,2.9) (-"CK .P2-3 L" &H, -"WRITE .S0-6 L") -> (WE)
use "16W RAM" RAM1 SIZE=32 (I="W DATA .S0-6"<0:31>, A=ADR<0:3>, WE=WE, DO=DO)
buf B delayrf=(2,3,5,7) ("CK .P0-4") -> (RFOUT)
case "CONTROL SIGNAL" = 0
case "CONTROL SIGNAL" = 1, MODE = 0
`

func TestFormatIdempotent(t *testing.T) {
	f1, err := Parse(formatSample)
	if err != nil {
		t.Fatal(err)
	}
	out1 := Format(f1)
	f2, err := Parse(out1)
	if err != nil {
		t.Fatalf("formatted output does not parse: %v\n%s", err, out1)
	}
	out2 := Format(f2)
	if out1 != out2 {
		t.Errorf("formatting not idempotent:\n--- first ---\n%s\n--- second ---\n%s", out1, out2)
	}
}

func TestFormatPreservesStructure(t *testing.T) {
	f1, err := Parse(formatSample)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Parse(Format(f1))
	if err != nil {
		t.Fatal(err)
	}
	if f2.Design != f1.Design || f2.Period != f1.Period || f2.ClockUnit != f1.ClockUnit {
		t.Error("header lost")
	}
	if !f2.WiredOr || !f2.HasPSkew || !f2.HasCSkew || !f2.HasWire {
		t.Error("flags lost")
	}
	if len(f2.Macros) != len(f1.Macros) || len(f2.Body) != len(f1.Body) || len(f2.Cases) != len(f1.Cases) {
		t.Errorf("counts changed: %d/%d macros, %d/%d body, %d/%d cases",
			len(f2.Macros), len(f1.Macros), len(f2.Body), len(f1.Body), len(f2.Cases), len(f1.Cases))
	}
	m1, m2 := f1.Macros[0], f2.Macros[0]
	if m2.Name != m1.Name || len(m2.Ports) != len(m1.Ports) || len(m2.Locals) != len(m1.Locals) {
		t.Error("macro structure lost")
	}
	// The negative hold survives.
	if f2.Macros[0].Body[0].Hold != f1.Macros[0].Body[0].Hold {
		t.Error("negative hold lost")
	}
	// Directives and inversion survive.
	mux := f2.Body[0]
	if mux.Ins[0].Dirs != "Z" {
		t.Errorf("directive lost: %+v", mux.Ins[0])
	}
	gate := f2.Body[1]
	if !gate.Ins[0].Invert || gate.Ins[0].Dirs != "H" {
		t.Errorf("complement rail lost: %+v", gate.Ins[0])
	}
	// RF delays survive.
	rf := f2.Body[3]
	if !rf.HasRF || rf.Rise != f1.Body[3].Rise || rf.Fall != f1.Body[3].Fall {
		t.Errorf("delayrf lost: %+v", rf)
	}
}

func TestFormatQuoting(t *testing.T) {
	f, err := Parse(`
period 50ns
buf "use" delay=(1,1) ("AND GATE OUT") -> (PLAIN)
`)
	if err != nil {
		t.Fatal(err)
	}
	out := Format(f)
	// Keyword-colliding labels and names with spaces stay quoted; plain
	// identifiers do not grow quotes.
	if !strings.Contains(out, `"use"`) || !strings.Contains(out, `"AND GATE OUT"`) {
		t.Errorf("quoting wrong:\n%s", out)
	}
	if strings.Contains(out, `"PLAIN"`) {
		t.Errorf("needless quoting:\n%s", out)
	}
	if _, err := Parse(out); err != nil {
		t.Fatalf("quoted output does not parse: %v", err)
	}
}
