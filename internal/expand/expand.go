// Package expand implements the SCALD Macro Expander (§3.3.2): it turns a
// parsed HDL file into the flat primitive netlist the Timing Verifier
// evaluates.  Pass 1 resolves macro definitions and signal synonyms (port
// bindings); Pass 2 emits the fully elaborated design, one vectored
// primitive instance at a time.
package expand

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"scaldtv/internal/assertion"
	"scaldtv/internal/hdl"
	"scaldtv/internal/netlist"
	"scaldtv/internal/serr"
	"scaldtv/internal/tick"
	"scaldtv/internal/values"
)

// SummaryListing renders the Pass-1 expansion summary the paper's Macro
// Expander produced: every macro definition with its use count and the
// primitives its expansions contributed, plus the root-level census.
func (r *Report) SummaryListing() string {
	var names []string
	for name := range r.UsesByMacro {
		names = append(names, name)
	}
	sort.Strings(names)
	var sb strings.Builder
	sb.WriteString("MACRO EXPANSION SUMMARY (pass 1)\n\n")
	fmt.Fprintf(&sb, "  %-30s %8s %12s\n", "MACRO", "USES", "PRIMITIVES")
	for _, name := range names {
		fmt.Fprintf(&sb, "  %-30s %8d %12d\n", name, r.UsesByMacro[name], r.PrimsByMacro[name])
	}
	if root := r.PrimsByMacro[""]; root > 0 {
		fmt.Fprintf(&sb, "  %-30s %8s %12d\n", "(root)", "", root)
	}
	fmt.Fprintf(&sb, "\n  %d macro expansions, %d primitives, %d synonyms resolved\n",
		r.MacroUses, r.Primitives, r.Synonyms)
	return sb.String()
}

// maxDepth caps macro nesting to catch recursive definitions.
const maxDepth = 64

// Report carries the expansion statistics the paper reports in Table 3-2:
// the primitive census by type, the vectored and scalarised instance
// counts, and the synonym (port-binding) count from Pass 1.
type Report struct {
	MacroUses  int
	Synonyms   int                  // port bindings resolved
	Primitives int                  // vectored primitive instances emitted
	ScalarBits int                  // instances × width: the unvectorised count
	Census     map[netlist.Kind]int // instances per primitive type
	CensusBits map[netlist.Kind]int // summed widths per primitive type

	UsesByMacro  map[string]int // expansions per macro definition
	PrimsByMacro map[string]int // primitives contributed per macro ("" = root)
}

// AvgWidth returns the average primitive width (Table 3-2 reports 6.5).
func (r *Report) AvgWidth() float64 {
	if r.Primitives == 0 {
		return 0
	}
	return float64(r.ScalarBits) / float64(r.Primitives)
}

// TypesUsed returns the number of distinct primitive types (Table 3-2
// reports 22), in a deterministic order.
func (r *Report) TypesUsed() []netlist.Kind {
	var out []netlist.Kind
	for k := range r.Census {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

type expander struct {
	b      *netlist.Builder
	macros map[string]*hdl.Macro
	report *Report
	labels map[string]int // per-kind counters for default labels

	paramIdx map[string]int32 // declared parameter name → Design.Params index
	fnIDs    map[string]int32 // canonical delay-function key → AddDelayFn handle
}

// frame is one level of macro expansion context.
type frame struct {
	path     string
	macro    string // the macro definition being expanded, "" at the root
	params   map[string]int
	bindings map[string][]netlist.Conn // port name → actual connections
	locals   map[string]hdl.PortDecl   // local declarations
}

// Expand flattens the parsed file into a verified netlist design.
// Errors are structured *serr.Error values of kind serr.Elaborate.
func Expand(f *hdl.File) (*netlist.Design, *Report, error) {
	d, rep, err := expandFile(f)
	if err != nil {
		return nil, nil, serr.Wrap(serr.Elaborate, err)
	}
	return d, rep, nil
}

func expandFile(f *hdl.File) (*netlist.Design, *Report, error) {
	name := f.Design
	if name == "" {
		name = "unnamed"
	}
	b := netlist.NewBuilder(name)
	if f.Period <= 0 {
		return nil, nil, fmt.Errorf("expand: the design must specify a clock period (§2.2)")
	}
	b.SetPeriod(f.Period)
	if f.ClockUnit > 0 {
		b.SetClockUnit(f.ClockUnit)
	}
	if f.HasWire {
		b.SetDefaultWire(f.Wire)
	}
	if f.HasPSkew {
		b.SetPrecisionSkew(f.PSkew)
	}
	if f.HasCSkew {
		b.SetClockSkew(f.CSkew)
	}
	if f.WiredOr {
		b.SetWiredOr(true)
	}

	e := &expander{
		b:      b,
		macros: map[string]*hdl.Macro{},
		report: &Report{
			Census: map[netlist.Kind]int{}, CensusBits: map[netlist.Kind]int{},
			UsesByMacro: map[string]int{}, PrimsByMacro: map[string]int{},
		},
		labels:   map[string]int{},
		paramIdx: map[string]int32{},
		fnIDs:    map[string]int32{},
	}
	// Design parameter declarations; a parameter without an explicit
	// range is fixed at its default.
	for _, pd := range f.Params {
		lo, hi := pd.Lo, pd.Hi
		if !pd.HasRange {
			lo, hi = pd.Default, pd.Default
		}
		e.paramIdx[pd.Name] = b.Param(pd.Name, pd.Default, lo, hi)
	}
	// Pass 1: collect macro definitions.
	for _, m := range f.Macros {
		if _, dup := e.macros[m.Name]; dup {
			return nil, nil, fmt.Errorf("expand: macro %q defined twice (line %d)", m.Name, m.Line)
		}
		e.macros[m.Name] = m
	}
	root := &frame{path: "", params: map[string]int{}, bindings: map[string][]netlist.Conn{}, locals: map[string]hdl.PortDecl{}}

	// Root signal pre-declarations.
	for _, sd := range f.Signals {
		lo, hi := 0, 0
		if sd.HasRange {
			var err error
			lo, hi, err = e.evalRange(sd.Lo, sd.Hi, root.params)
			if err != nil {
				return nil, nil, fmt.Errorf("expand: signal %q: %v", sd.Name, err)
			}
		}
		if _, err := e.globalBits(sd.Name, sd.HasRange, lo, hi); err != nil {
			return nil, nil, err
		}
	}

	// Pass 2: expand the body.
	for _, inst := range f.Body {
		if err := e.instance(inst, root, 0); err != nil {
			return nil, nil, err
		}
	}

	// Interconnection overrides (§2.5.3).
	for _, wd := range f.Wires {
		sig, err := assertion.Parse(wd.Name)
		if err != nil {
			return nil, nil, fmt.Errorf("expand: wire %q: %v", wd.Name, err)
		}
		nets := e.b.NetsByBase(sig.Base)
		if len(nets) == 0 {
			return nil, nil, fmt.Errorf("expand: wire declaration names unknown signal %q", wd.Name)
		}
		e.b.SetWire(wd.Delay, nets...)
	}

	// Case specifications (§2.7.1).
	for _, cd := range f.Cases {
		var assigns []netlist.CaseAssign
		for _, a := range cd.Assigns {
			sig, err := assertion.Parse(a.Signal)
			if err != nil {
				return nil, nil, fmt.Errorf("expand: case %q: %v", cd.Label, err)
			}
			v := values.V0
			if a.Value == 1 {
				v = values.V1
			}
			assigns = append(assigns, netlist.Assign(sig.Base, v))
		}
		e.b.AddCase(cd.Label, assigns...)
	}

	d, err := e.b.Build()
	if err != nil {
		return nil, nil, err
	}
	return d, e.report, nil
}

func (e *expander) evalRange(lo, hi hdl.Expr, params map[string]int) (int, int, error) {
	l, err := lo.Eval(params)
	if err != nil {
		return 0, 0, err
	}
	h, err := hi.Eval(params)
	if err != nil {
		return 0, 0, err
	}
	if l > h {
		return 0, 0, fmt.Errorf("inverted bit range <%d:%d>", l, h)
	}
	if l < 0 {
		return 0, 0, fmt.Errorf("negative bit index %d", l)
	}
	return l, h, nil
}

// globalBits resolves a global signal reference to its nets, creating them
// on first use with the Builder's vector naming.
func (e *expander) globalBits(name string, hasRange bool, lo, hi int) ([]netlist.NetID, error) {
	if !hasRange {
		return []netlist.NetID{e.b.Net(name)}, nil
	}
	sig, err := assertion.Parse(name)
	if err != nil {
		return nil, fmt.Errorf("expand: %v", err)
	}
	suffix := ""
	if sig.Assert != nil {
		suffix = " " + sig.Assert.String()
	}
	out := make([]netlist.NetID, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		out = append(out, e.b.Net(fmt.Sprintf("%s<%d>%s", sig.Base, i, suffix)))
	}
	return out, nil
}

// resolve turns a signal expression into connections within a frame.
func (e *expander) resolve(se *hdl.SigExpr, fr *frame) ([]netlist.Conn, error) {
	var conns []netlist.Conn

	if bound, ok := fr.bindings[se.Name]; ok {
		// Macro port: the actual connection, optionally sub-sliced.
		if se.HasRange {
			lo, hi, err := e.evalRange(se.Lo, se.Hi, fr.params)
			if err != nil {
				return nil, fmt.Errorf("expand: line %d: %v", se.Line, err)
			}
			if hi >= len(bound) {
				return nil, fmt.Errorf("expand: line %d: port %q bit %d exceeds bound width %d", se.Line, se.Name, hi, len(bound))
			}
			conns = append(conns, bound[lo:hi+1]...)
		} else {
			conns = append(conns, bound...)
		}
	} else if decl, ok := fr.locals[se.Name]; ok {
		// Macro local: a uniquified global per expansion (the /M markers).
		uname := fr.path + se.Name
		dlo, dhi := 0, 0
		if decl.HasRange {
			var err error
			dlo, dhi, err = e.evalRange(decl.Lo, decl.Hi, fr.params)
			if err != nil {
				return nil, fmt.Errorf("expand: line %d: local %q: %v", se.Line, se.Name, err)
			}
		}
		all, err := e.globalBits(uname, decl.HasRange, dlo, dhi)
		if err != nil {
			return nil, err
		}
		if se.HasRange {
			lo, hi, err := e.evalRange(se.Lo, se.Hi, fr.params)
			if err != nil {
				return nil, fmt.Errorf("expand: line %d: %v", se.Line, err)
			}
			if lo < dlo || hi > dhi {
				return nil, fmt.Errorf("expand: line %d: local %q<%d:%d> outside declared <%d:%d>", se.Line, se.Name, lo, hi, dlo, dhi)
			}
			all = all[lo-dlo : hi-dlo+1]
		}
		conns = netlist.ConnsOf(all)
	} else {
		lo, hi := 0, 0
		var err error
		if se.HasRange {
			lo, hi, err = e.evalRange(se.Lo, se.Hi, fr.params)
			if err != nil {
				return nil, fmt.Errorf("expand: line %d: %v", se.Line, err)
			}
		}
		nets, err := e.globalBits(se.Name, se.HasRange, lo, hi)
		if err != nil {
			return nil, err
		}
		conns = netlist.ConnsOf(nets)
	}

	if se.Invert {
		conns = netlist.Invert(conns)
	}
	if se.Dirs != "" {
		conns = e.b.Directive(se.Dirs, conns)
	}
	return conns, nil
}

// outNets resolves an output signal expression: outputs must be plain net
// references (no complement rail, no directives).
func (e *expander) outNets(se *hdl.SigExpr, fr *frame) ([]netlist.NetID, error) {
	if se.Invert || se.Dirs != "" {
		return nil, fmt.Errorf("expand: line %d: output %q cannot carry - or & decorations", se.Line, se.Name)
	}
	conns, err := e.resolve(se, fr)
	if err != nil {
		return nil, err
	}
	out := make([]netlist.NetID, len(conns))
	for i, c := range conns {
		if c.Invert || !c.Directives.Empty() {
			return nil, fmt.Errorf("expand: line %d: output %q is bound through a decorated connection", se.Line, se.Name)
		}
		out[i] = c.Net
	}
	return out, nil
}

// affine lowers one side of a parsed delay expression to the netlist's
// picosecond affine form, resolving parameter names to indices, merging
// repeated parameters and dropping zero coefficients so identical
// expressions share a canonical spelling.
func (e *expander) affine(x hdl.DExpr, line int) (netlist.Affine, error) {
	a := netlist.Affine{Base: tick.Time(math.Round(x.ConstNS * 1000))}
	pos := map[int32]int{}
	for _, t := range x.Terms {
		pi, ok := e.paramIdx[t.Param]
		if !ok {
			return a, fmt.Errorf("expand: line %d: delay expression references undeclared parameter %q", line, t.Param)
		}
		if j, seen := pos[pi]; seen {
			a.Coeffs[j].PS += t.NS * 1000
		} else {
			pos[pi] = len(a.Coeffs)
			a.Coeffs = append(a.Coeffs, netlist.Coeff{Param: pi, PS: t.NS * 1000})
		}
	}
	kept := a.Coeffs[:0]
	for _, c := range a.Coeffs {
		if c.PS != 0 {
			kept = append(kept, c)
		}
	}
	a.Coeffs = kept
	return a, nil
}

// delayFn lowers an instance's delay expression pair to a shared
// analytic delay function, deduplicating identical functions so term
// sets over them stay small.
func (e *expander) delayFn(inst *hdl.Instance) (int32, error) {
	mn, err := e.affine(inst.DelayExprMin, inst.Line)
	if err != nil {
		return 0, err
	}
	mx, err := e.affine(inst.DelayExprMax, inst.Line)
	if err != nil {
		return 0, err
	}
	key := fmt.Sprintf("%d%v|%d%v", mn.Base, mn.Coeffs, mx.Base, mx.Coeffs)
	if id, ok := e.fnIDs[key]; ok {
		return id, nil
	}
	id := e.b.AddDelayFn(netlist.DelayFn{Min: mn, Max: mx})
	e.fnIDs[key] = id
	return id, nil
}

var kindByName = map[string]netlist.Kind{
	"buf": netlist.KBuf, "not": netlist.KNot,
	"and": netlist.KAnd, "or": netlist.KOr,
	"nand": netlist.KNand, "nor": netlist.KNor,
	"xor": netlist.KXor, "chg": netlist.KChg,
	"mux2": netlist.KMux2, "mux4": netlist.KMux4, "mux8": netlist.KMux8,
	"reg": netlist.KReg, "regrs": netlist.KRegRS,
	"latch": netlist.KLatch, "latchrs": netlist.KLatchRS,
	"setuphold":         netlist.KSetupHold,
	"setupriseholdfall": netlist.KSetupRiseHoldFall,
	"minpulse":          netlist.KMinPulse,
}

func (e *expander) label(inst *hdl.Instance, fr *frame) string {
	if inst.Label != "" {
		return fr.path + inst.Label
	}
	key := inst.Kind
	if inst.Kind == "use" {
		key = inst.Macro
	}
	e.labels[key]++
	return fmt.Sprintf("%s%s.%d", fr.path, key, e.labels[key])
}

func (e *expander) tally(fr *frame, k netlist.Kind, width int) {
	e.report.Primitives++
	e.report.ScalarBits += width
	e.report.Census[k]++
	e.report.CensusBits[k] += width
	e.report.PrimsByMacro[fr.macro]++
}

func (e *expander) instance(inst *hdl.Instance, fr *frame, depth int) error {
	if depth > maxDepth {
		return fmt.Errorf("expand: line %d: macro nesting deeper than %d (recursive macro?)", inst.Line, maxDepth)
	}
	if inst.Kind == "use" {
		return e.expandUse(inst, fr, depth)
	}
	k, ok := kindByName[inst.Kind]
	if !ok {
		return fmt.Errorf("expand: line %d: unknown primitive %q", inst.Line, inst.Kind)
	}
	label := e.label(inst, fr)

	ins := make([][]netlist.Conn, len(inst.Ins))
	for i, se := range inst.Ins {
		c, err := e.resolve(se, fr)
		if err != nil {
			return err
		}
		ins[i] = c
	}
	var outs [][]netlist.NetID
	for _, se := range inst.Outs {
		o, err := e.outNets(se, fr)
		if err != nil {
			return err
		}
		outs = append(outs, o)
	}

	// A delay expression lowers to a shared analytic function; the
	// primitive is built with a placeholder delay and bound to the
	// function, which sets Delay to the default-point evaluation.
	var fnID int32
	if inst.HasDelayExpr {
		var err error
		if fnID, err = e.delayFn(inst); err != nil {
			return err
		}
	}
	bind := func(id netlist.PrimID) {
		if fnID > 0 && id >= 0 {
			e.b.BindDelayFn(id, fnID)
		}
	}

	need := func(nIn, nOut int) error {
		if len(ins) != nIn || len(outs) != nOut {
			return fmt.Errorf("expand: line %d: %s needs %d inputs and %d outputs, has %d and %d",
				inst.Line, inst.Kind, nIn, nOut, len(ins), len(outs))
		}
		return nil
	}
	scalar := func(c []netlist.Conn, what string) (netlist.Conn, error) {
		if len(c) != 1 {
			return netlist.Conn{}, fmt.Errorf("expand: line %d: %s %s must be one bit wide, is %d", inst.Line, inst.Kind, what, len(c))
		}
		return c[0], nil
	}

	switch {
	case k.IsGate():
		if len(outs) != 1 || len(ins) < 1 {
			return fmt.Errorf("expand: line %d: %s needs at least one input and exactly one output", inst.Line, inst.Kind)
		}
		e.tally(fr, k, len(outs[0]))
		if inst.HasRF {
			e.b.GateRF(k, label, inst.Rise, inst.Fall, outs[0], ins...)
		} else {
			bind(e.b.Gate(k, label, inst.Delay, outs[0], ins...))
		}
	case k.NumSelects() > 0:
		ns := k.NumSelects()
		if err := need(ns+k.NumMuxData(), 1); err != nil {
			return err
		}
		sel := make([]netlist.Conn, ns)
		for i := 0; i < ns; i++ {
			s, err := scalar(ins[i], fmt.Sprintf("select %d", i))
			if err != nil {
				return err
			}
			sel[i] = s
		}
		e.tally(fr, k, len(outs[0]))
		bind(e.b.Mux(k, label, inst.Delay, inst.SelDelay, outs[0], sel, ins[ns:]...))
	case k == netlist.KReg, k == netlist.KLatch:
		if err := need(2, 1); err != nil {
			return err
		}
		ck, err := scalar(ins[0], "clock/enable")
		if err != nil {
			return err
		}
		e.tally(fr, k, len(outs[0]))
		if k == netlist.KReg {
			bind(e.b.Register(label, inst.Delay, outs[0], ck, ins[1]))
		} else {
			bind(e.b.Latch(label, inst.Delay, outs[0], ck, ins[1]))
		}
	case k == netlist.KRegRS, k == netlist.KLatchRS:
		if err := need(4, 1); err != nil {
			return err
		}
		ck, err := scalar(ins[0], "clock/enable")
		if err != nil {
			return err
		}
		set, err := scalar(ins[2], "set")
		if err != nil {
			return err
		}
		rst, err := scalar(ins[3], "reset")
		if err != nil {
			return err
		}
		e.tally(fr, k, len(outs[0]))
		if k == netlist.KRegRS {
			bind(e.b.RegisterRS(label, inst.Delay, outs[0], ck, ins[1], set, rst))
		} else {
			bind(e.b.LatchRS(label, inst.Delay, outs[0], ck, ins[1], set, rst))
		}
	case k == netlist.KSetupHold, k == netlist.KSetupRiseHoldFall:
		if err := need(2, 0); err != nil {
			return err
		}
		ck, err := scalar(ins[1], "clock")
		if err != nil {
			return err
		}
		e.tally(fr, k, len(ins[0]))
		if k == netlist.KSetupHold {
			e.b.SetupHold(label, inst.Setup, inst.Hold, ins[0], ck)
		} else {
			e.b.SetupRiseHoldFall(label, inst.Setup, inst.Hold, ins[0], ck)
		}
	case k == netlist.KMinPulse:
		if err := need(1, 0); err != nil {
			return err
		}
		in, err := scalar(ins[0], "input")
		if err != nil {
			return err
		}
		e.tally(fr, k, 1)
		e.b.MinPulse(label, inst.High, inst.Low, in)
	default:
		return fmt.Errorf("expand: line %d: unhandled primitive kind %v", inst.Line, k)
	}
	return nil
}

func (e *expander) expandUse(inst *hdl.Instance, fr *frame, depth int) error {
	m, ok := e.macros[inst.Macro]
	if !ok {
		return fmt.Errorf("expand: line %d: unknown macro %q", inst.Line, inst.Macro)
	}
	e.report.MacroUses++
	e.report.UsesByMacro[m.Name]++

	// Value parameters.
	params := map[string]int{}
	for _, pn := range m.Params {
		exp, ok := inst.ParamVals[pn]
		if !ok {
			return fmt.Errorf("expand: line %d: macro %q needs parameter %s", inst.Line, m.Name, pn)
		}
		v, err := exp.Eval(fr.params)
		if err != nil {
			return fmt.Errorf("expand: line %d: parameter %s: %v", inst.Line, pn, err)
		}
		params[pn] = v
	}
	for pn := range inst.ParamVals {
		known := false
		for _, declared := range m.Params {
			if declared == pn {
				known = true
			}
		}
		if !known {
			return fmt.Errorf("expand: line %d: macro %q has no parameter %s", inst.Line, m.Name, pn)
		}
	}

	// Port bindings (the Pass-1 synonym resolution).
	sub := &frame{
		path:     e.label(inst, fr) + "/",
		macro:    m.Name,
		params:   params,
		bindings: map[string][]netlist.Conn{},
		locals:   map[string]hdl.PortDecl{},
	}
	for _, pd := range m.Ports {
		se, ok := inst.Conns[pd.Name]
		if !ok {
			return fmt.Errorf("expand: line %d: macro %q port %s not connected", inst.Line, m.Name, pd.Name)
		}
		conns, err := e.resolve(se, fr)
		if err != nil {
			return err
		}
		want := 1
		if pd.HasRange {
			lo, hi, err := e.evalRange(pd.Lo, pd.Hi, params)
			if err != nil {
				return fmt.Errorf("expand: line %d: port %s: %v", inst.Line, pd.Name, err)
			}
			want = hi - lo + 1
		}
		if len(conns) == 1 && want > 1 {
			// Scalar broadcast across a vector port, as with primitive
			// data ports.
			bc := make([]netlist.Conn, want)
			for i := range bc {
				bc[i] = conns[0]
			}
			conns = bc
		}
		if len(conns) != want {
			return fmt.Errorf("expand: line %d: macro %q port %s is %d bits, connection %q is %d",
				inst.Line, m.Name, pd.Name, want, se.Name, len(conns))
		}
		sub.bindings[pd.Name] = conns
		e.report.Synonyms += len(conns)
	}
	for port := range inst.Conns {
		if _, ok := sub.bindings[port]; !ok {
			return fmt.Errorf("expand: line %d: macro %q has no port %s", inst.Line, m.Name, port)
		}
	}
	for _, ld := range m.Locals {
		sub.locals[ld.Name] = ld
	}

	for _, child := range m.Body {
		if err := e.instance(child, sub, depth+1); err != nil {
			return err
		}
	}
	return nil
}
