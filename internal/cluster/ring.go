package cluster

import (
	"fmt"
	"sort"
)

// ring is a consistent-hash ring over worker endpoints: sessions and
// whole-run jobs map to a stable owner, so repeat traffic for one design
// lands on the worker whose design cache, tape memo tables and
// persistent store are already warm — and when a worker dies, only the
// keys it owned move (to their next clockwise neighbour) instead of the
// whole keyspace reshuffling.
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash   uint64
	worker int // index into the coordinator's worker list
}

// ringReplicas is the virtual-node count per worker; 64 keeps the
// keyspace split within a few percent of even for small clusters.
const ringReplicas = 64

// mix64 is the murmur3 finalizer: FNV over short, similar strings (the
// virtual-node labels) places points unevenly, and the finalizer's
// avalanche spreads them across the full keyspace.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// newRing builds the ring for n workers.
func newRing(n int) *ring {
	r := &ring{points: make([]ringPoint, 0, n*ringReplicas)}
	for w := 0; w < n; w++ {
		for i := 0; i < ringReplicas; i++ {
			r.points = append(r.points, ringPoint{
				hash:   mix64(srcHash(fmt.Sprintf("worker-%d#%d", w, i))),
				worker: w,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].worker < r.points[j].worker
	})
	return r
}

// owner returns the worker owning key, skipping workers the alive
// predicate rejects by walking clockwise — the consistent-hash failover
// order.  It returns -1 when no worker is alive.
func (r *ring) owner(key uint64, alive func(int) bool) int {
	if len(r.points) == 0 {
		return -1
	}
	key = mix64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	seen := make(map[int]bool)
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.worker] {
			continue
		}
		seen[p.worker] = true
		if alive == nil || alive(p.worker) {
			return p.worker
		}
	}
	return -1
}
