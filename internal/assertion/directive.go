package assertion

import (
	"fmt"
	"strings"
)

// Directive is one evaluation-directive letter (§2.6), controlling how one
// level of gating evaluates the signal it is attached to.
type Directive byte

// The evaluation directives of §2.6.
const (
	DirEvaluate Directive = 'E' // evaluate the gate with no special action
	DirWire     Directive = 'W' // zero the wire going into the gate
	DirZero     Directive = 'Z' // zero the gate and the wire going into it
	DirAssert   Directive = 'A' // check other inputs stable while this input is asserted; assume they enable the gate
	DirHold     Directive = 'H' // combined effects of Z and A
)

// ZeroesWire reports whether the directive removes the interconnection
// delay into the gate.
func (d Directive) ZeroesWire() bool { return d == DirWire || d == DirZero || d == DirHold }

// ZeroesGate reports whether the directive removes the gate's own
// propagation delay (the clock timing then refers to the gate output,
// §2.6).
func (d Directive) ZeroesGate() bool { return d == DirZero || d == DirHold }

// ChecksStability reports whether the directive requires the gate's other
// inputs to be stable while this input is asserted, and assumes they enable
// the gate.
func (d Directive) ChecksStability() bool { return d == DirAssert || d == DirHold }

// Directives is an evaluation string such as "HZZW": each letter governs
// one successive level of gating; each gate consumes the first letter and
// passes the rest along with its output value (§2.8).
type Directives string

// ParseDirectives validates an evaluation string (the text after '&' in the
// design source).  The empty string is valid and means default evaluation.
func ParseDirectives(s string) (Directives, error) {
	s = strings.ToUpper(strings.TrimSpace(s))
	for i := 0; i < len(s); i++ {
		switch Directive(s[i]) {
		case DirEvaluate, DirWire, DirZero, DirAssert, DirHold:
		default:
			return "", fmt.Errorf("assertion: invalid evaluation directive %q in %q", s[i], s)
		}
	}
	return Directives(s), nil
}

// Head returns the directive governing the current gating level and the
// remainder to pass downstream.  An exhausted string yields the default
// directive E.
func (d Directives) Head() (Directive, Directives) {
	if len(d) == 0 {
		return DirEvaluate, ""
	}
	return Directive(d[0]), d[1:]
}

// Empty reports whether no directives remain.
func (d Directives) Empty() bool { return len(d) == 0 }

// String renders the directive string with its source-form '&' prefix.
func (d Directives) String() string {
	if d == "" {
		return ""
	}
	return "&" + string(d)
}
