// Package verify implements the Timing Verifier proper (§2.9): it
// initialises every signal from its assertion, relaxes the circuit to a
// fixed point with event-driven evaluation, applies case analysis with
// incremental re-evaluation, and checks every timing constraint — set-up
// and hold times, minimum pulse widths, evaluation-directive stability, and
// designer assertions.
package verify

import (
	"fmt"

	"scaldtv/internal/tick"
	"scaldtv/internal/values"
)

// ViolationKind classifies a detected timing error.
type ViolationKind int

// The violation kinds.
const (
	SetupViolation        ViolationKind = iota // data changed inside the set-up interval
	HoldViolation                              // data changed inside the hold interval
	EnableViolation                            // data changed while the clock was true (SETUP RISE HOLD FALL)
	MinPulseHighViolation                      // high pulse may be narrower than required
	MinPulseLowViolation                       // low pulse may be narrower than required
	DirectiveViolation                         // &A/&H control input changing while the clock is asserted
	AssertionViolation                         // computed signal contradicts its designer assertion
	UnknownClockViolation                      // a clock or enable input is undefined
	ConvergenceViolation                       // the relaxation did not reach a fixed point
)

// String names the kind in the style of the paper's error listings.
func (k ViolationKind) String() string {
	switch k {
	case SetupViolation:
		return "SETUP TIME VIOLATED"
	case HoldViolation:
		return "HOLD TIME VIOLATED"
	case EnableViolation:
		return "INPUT CHANGED WHILE CLOCK TRUE"
	case MinPulseHighViolation:
		return "MINIMUM HIGH PULSE WIDTH VIOLATED"
	case MinPulseLowViolation:
		return "MINIMUM LOW PULSE WIDTH VIOLATED"
	case DirectiveViolation:
		return "CONTROL NOT STABLE WHILE CLOCK ASSERTED"
	case AssertionViolation:
		return "SIGNAL ASSERTION VIOLATED"
	case UnknownClockViolation:
		return "CLOCK VALUE UNDEFINED"
	case ConvergenceViolation:
		return "CIRCUIT DID NOT CONVERGE"
	}
	return fmt.Sprintf("ViolationKind(%d)", int(k))
}

// Violation records one detected timing error with the context the paper's
// Fig 3-11 listing shows: the checker, the signals involved, the required
// and observed intervals, and the waveforms seen at the checker inputs.
type Violation struct {
	Kind  ViolationKind
	Case  string // case-analysis label, "" for the base case
	Prim  string // checker or primitive instance name
	Data  string // data/control signal name
	Clock string // clock signal name, if any

	Required tick.Time // required interval (set-up, hold, or width)
	Actual   tick.Time // observed interval
	At       tick.Time // clock edge or pulse position within the cycle

	DataWave  values.Waveform // value seen on the data input
	ClockWave values.Waveform // value seen on the clock input
	Detail    string          // additional free-form context
}

// Margin returns Actual-Required: negative when violated.
func (v Violation) Margin() tick.Time { return v.Actual - v.Required }

// Margin records the outcome of one constraint evaluation — passing or
// failing — collected when Options.Margins is set.  The sorted slack
// table supports the cycle-time estimation workflow of §1.1.
type Margin struct {
	Kind  ViolationKind // the constraint family (set-up, hold, pulse width)
	Case  string
	Prim  string
	Data  string
	Clock string

	Required tick.Time
	Actual   tick.Time
	At       tick.Time
}

// Slack returns Actual-Required: how much the constraint passes by
// (negative when violated).
func (m Margin) Slack() tick.Time { return m.Actual - m.Required }

// String renders a one-line summary; the report package renders the full
// three-line listing.
func (v Violation) String() string {
	s := fmt.Sprintf("%s: %s", v.Kind, v.Prim)
	if v.Data != "" {
		s += fmt.Sprintf(" data %q", v.Data)
	}
	if v.Clock != "" {
		s += fmt.Sprintf(" clock %q", v.Clock)
	}
	if v.Required != 0 || v.Actual != 0 {
		s += fmt.Sprintf(" required %s ns, actual %s ns", v.Required, v.Actual)
	}
	if v.Case != "" {
		s += fmt.Sprintf(" [case %s]", v.Case)
	}
	return s
}
