package scaldtv

import (
	"fmt"
	"strings"
	"testing"
)

// TestStatisticalSiteProbSemantics locks the two ends of the
// -delays=statistical pricing model from the HDL surface down.
//
// A violated constraint fed by a SHALLOW path (one wide-range buffer)
// must price as real risk: the truncated normal still has visible mass
// within |slack| of its data-sheet limit, so P(VIOLATE) > 0 and the
// listing marks the row AT RISK.
//
// A violated constraint fed by a DEEP path must price at ~0 even though
// the worst-case verdict is a hard violation: hitting the interval bound
// needs every component at its 3σ corner simultaneously, and the
// convolved tail within a few ns of that bound carries ~1e-10 of mass.
// That pessimism gap is the reason the mode exists (§1.4.1.2) — this
// test keeps it a documented behavior, not a silent surprise.
func TestStatisticalSiteProbSemantics(t *testing.T) {
	shallow := `design SHALLOW
period 50ns
clockunit 6.25ns
defaultwire 0ns 0ns
buf B1 delay=(5.0,47.0) ("GO .S0-1") -> (D)
setuphold CHK setup=2.0 hold=1.0 (D, "MCK .P0-4")
`
	var deep strings.Builder
	deep.WriteString("design DEEP\nperiod 50ns\nclockunit 6.25ns\ndefaultwire 0ns 0ns\n")
	prev := `"GO .S0-1"`
	for i := 0; i < 12; i++ {
		fmt.Fprintf(&deep, "buf B%d delay=(1.0,4.0) (%s) -> (N%d)\n", i, prev, i)
		prev = fmt.Sprintf("N%d", i)
	}
	fmt.Fprintf(&deep, "setuphold CHK setup=2.0 hold=1.0 (%s, \"MCK .P0-4\")\n", prev)

	t.Run("shallow-at-risk", func(t *testing.T) {
		res, err := VerifySource(shallow, Options{Delays: DelayStatistical})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) == 0 {
			t.Fatal("the shallow design must be violated at the worst-case corner")
		}
		if len(res.SiteProbs) != 2 {
			t.Fatalf("SiteProbs = %d rows, want 2 (set-up and hold)", len(res.SiteProbs))
		}
		for _, p := range res.SiteProbs {
			if p.SlackNS >= 0 {
				t.Errorf("%s %s: slack %.1f ns, want negative", p.Kind, p.Prim, p.SlackNS)
			}
			if p.Prob <= 0 || p.Prob >= 0.5 {
				t.Errorf("%s %s: P = %v, want small but strictly positive", p.Kind, p.Prim, p.Prob)
			}
		}
		if l := StatListing(res); !strings.Contains(l, "<< AT RISK") {
			t.Errorf("listing does not mark the shallow violated site AT RISK:\n%s", l)
		}
	})

	t.Run("deep-prices-to-zero", func(t *testing.T) {
		res, err := VerifySource(deep.String(), Options{Delays: DelayStatistical})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) == 0 {
			t.Fatal("the deep design must be violated at the worst-case corner")
		}
		if len(res.SiteProbs) == 0 {
			t.Fatal("the violated deep site is missing from SiteProbs")
		}
		for _, p := range res.SiteProbs {
			if p.SlackNS >= 0 {
				t.Errorf("%s %s: slack %.1f ns, want negative", p.Kind, p.Prim, p.SlackNS)
			}
			if p.Prob != 0 {
				t.Errorf("%s %s: P = %v, want 0 — a 12-component tail cannot reach its interval bound", p.Kind, p.Prim, p.Prob)
			}
		}
		if l := StatListing(res); strings.Contains(l, "<< AT RISK") {
			t.Errorf("deep-path rows must not be marked AT RISK:\n%s", l)
		}
	})
}
