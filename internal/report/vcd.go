package report

import (
	"fmt"
	"sort"
	"strings"

	"scaldtv/internal/tick"
	"scaldtv/internal/values"
	"scaldtv/internal/verify"
)

// VCD renders one verified case as a Value Change Dump for waveform
// viewers.  The seven-value algebra maps onto VCD's four states:
//
//	0 → 0      1 → 1
//	S → z      (stable at an unknown constant: "not driving a change")
//	C, R, F → x (may be changing)
//	U → x
//
// Vector bits with identical timing collapse into one variable, as in the
// listings.  Requires Options.KeepWaves.
func VCD(res *verify.Result, caseIdx int) string {
	if caseIdx < 0 || caseIdx >= len(res.Cases) || res.Cases[caseIdx].Waves == nil {
		return ""
	}
	cr := res.Cases[caseIdx]
	groups := groupSignals(res.Design, cr.Waves)

	var sb strings.Builder
	fmt.Fprintf(&sb, "$date one clock period of %s $end\n", res.Design.Name)
	sb.WriteString("$version scaldtv (SCALD Timing Verifier) $end\n")
	sb.WriteString("$comment seven-value mapping: S->z, C/R/F/U->x $end\n")
	sb.WriteString("$timescale 1ps $end\n")
	fmt.Fprintf(&sb, "$scope module %s $end\n", vcdIdent(res.Design.Name))

	ids := make([]string, len(groups))
	for i, g := range groups {
		ids[i] = vcdCode(i)
		fmt.Fprintf(&sb, "$var wire 1 %s %s $end\n", ids[i], vcdIdent(g.name))
	}
	sb.WriteString("$upscope $end\n$enddefinitions $end\n")

	// Collect change times across all groups.
	type change struct {
		at  tick.Time
		idx int
		v   byte
	}
	var changes []change
	for i, g := range groups {
		inc := g.wave.IncorporateSkew()
		var pos tick.Time
		for si, seg := range inc.Segs {
			if si == 0 || vcdValue(seg.V) != vcdValue(inc.Segs[si-1].V) {
				changes = append(changes, change{at: pos, idx: i, v: vcdValue(seg.V)})
			}
			pos += seg.W
		}
	}
	sort.SliceStable(changes, func(a, b int) bool { return changes[a].at < changes[b].at })

	cur := tick.Time(-1)
	for _, c := range changes {
		if c.at != cur {
			fmt.Fprintf(&sb, "#%d\n", int64(c.at))
			cur = c.at
		}
		fmt.Fprintf(&sb, "%c%s\n", c.v, ids[c.idx])
	}
	fmt.Fprintf(&sb, "#%d\n", int64(res.Design.Period))
	return sb.String()
}

func vcdValue(v values.Value) byte {
	switch v {
	case values.V0:
		return '0'
	case values.V1:
		return '1'
	case values.VS:
		return 'z'
	}
	return 'x'
}

// vcdCode generates the compact printable identifier codes VCD uses.
func vcdCode(i int) string {
	const base = 94 // printable ASCII '!'..'~'
	var sb []byte
	for {
		sb = append(sb, byte('!'+i%base))
		i /= base
		if i == 0 {
			break
		}
		i--
	}
	return string(sb)
}

// vcdIdent replaces characters VCD identifiers cannot carry.
func vcdIdent(s string) string {
	out := []byte(s)
	for i, c := range out {
		if c == ' ' || c == '<' || c == '>' || c == ':' {
			out[i] = '_'
		}
	}
	return string(out)
}
