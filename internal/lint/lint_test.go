package lint

import (
	"strings"
	"testing"

	"scaldtv/internal/netlist"
	"scaldtv/internal/tick"
)

func ns(f float64) tick.Time { return tick.FromNS(f) }

func findRule(fs []Finding, rule string) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Rule == rule {
			out = append(out, f)
		}
	}
	return out
}

func TestCleanDesign(t *testing.T) {
	b := netlist.NewBuilder("clean")
	b.SetPeriod(50 * tick.NS)
	ck := b.Net("CK .P0-4")
	d := b.Vector("D .S6-12", 4)
	q := b.Vector("Q", 4)
	b.Register("REG", tick.R(1.5, 4.5), q, netlist.Conn{Net: ck}, netlist.Conns(d...))
	b.SetupHold("CHK", ns(2.5), ns(1.5), netlist.Conns(d...), netlist.Conn{Net: ck})
	x := b.Net("X")
	b.Gate(netlist.KOr, "SINK", tick.R(1, 2), []netlist.NetID{x}, netlist.Conns(q[0]), netlist.Conns(q[1]))
	y := b.Net("Y")
	b.Buf("SINK2", tick.Range{}, []netlist.NetID{y}, netlist.Conns(x))
	des := b.MustBuild()
	fs := Check(des)
	for _, f := range fs {
		if f.Rule != "dangling-output" { // Y itself dangles; everything else clean
			t.Errorf("clean design flagged: %v", f)
		}
	}
}

func TestCombLoop(t *testing.T) {
	b := netlist.NewBuilder("loop")
	b.SetPeriod(50 * tick.NS)
	x, y := b.Net("X"), b.Net("Y")
	a := b.Net("A .S0-25")
	b.Gate(netlist.KOr, "G1", tick.R(1, 1), []netlist.NetID{x}, netlist.Conns(y), netlist.Conns(a))
	b.Gate(netlist.KOr, "G2", tick.R(1, 1), []netlist.NetID{y}, netlist.Conns(x), netlist.Conns(a))
	fs := findRule(Check(b.MustBuild()), "comb-loop")
	if len(fs) != 2 || fs[0].Severity != Error {
		t.Errorf("comb loop findings = %v", fs)
	}
}

func TestLoopThroughRegisterIsFine(t *testing.T) {
	b := netlist.NewBuilder("regloop")
	b.SetPeriod(50 * tick.NS)
	ck := b.Net("CK .P0-4")
	q, x := b.Net("Q"), b.Net("X")
	b.Gate(netlist.KNot, "INV", tick.R(1, 2), []netlist.NetID{x}, netlist.Conns(q))
	b.Register("REG", tick.R(1, 2), []netlist.NetID{q}, netlist.Conn{Net: ck}, netlist.Conns(x))
	b.SetupHold("CHK", ns(1), ns(1), netlist.Conns(x), netlist.Conn{Net: ck})
	fs := findRule(Check(b.MustBuild()), "comb-loop")
	if len(fs) != 0 {
		t.Errorf("register-broken loop flagged: %v", fs)
	}
}

func TestUncheckedStorage(t *testing.T) {
	b := netlist.NewBuilder("unchecked")
	b.SetPeriod(50 * tick.NS)
	ck := b.Net("CK .P0-4")
	q := b.Net("Q")
	b.Register("BARE REG", tick.R(1, 2), []netlist.NetID{q}, netlist.Conn{Net: ck}, netlist.Conns(b.Net("D .S0-25")))
	fs := findRule(Check(b.MustBuild()), "unchecked-storage")
	if len(fs) != 1 || fs[0].Subject != "BARE REG" {
		t.Errorf("unchecked storage findings = %v", fs)
	}
}

func TestGatedClockWidth(t *testing.T) {
	b := netlist.NewBuilder("gated")
	b.SetPeriod(50 * tick.NS)
	ck := b.Net("CK .P20-30")
	en := b.Net("EN .S0-10")
	gck := b.Net("GCK")
	b.Gate(netlist.KAnd, "GATE", tick.R(1, 2), []netlist.NetID{gck}, netlist.Conns(ck), netlist.Conns(en))
	q := b.Net("Q")
	d := b.Net("D .S0-25")
	b.Register("REG", tick.R(1, 2), []netlist.NetID{q}, netlist.Conn{Net: gck}, netlist.Conns(d))
	b.SetupHold("CHK", ns(1), ns(1), netlist.Conns(d), netlist.Conn{Net: gck})

	fs := findRule(Check(b.MustBuild()), "gated-clock-width")
	if len(fs) != 1 {
		t.Fatalf("gated clock findings = %v", fs)
	}

	// Adding the MIN PULSE WIDTH check clears it.
	b2 := netlist.NewBuilder("gated-ok")
	b2.SetPeriod(50 * tick.NS)
	ck2 := b2.Net("CK .P20-30")
	en2 := b2.Net("EN .S0-10")
	gck2 := b2.Net("GCK")
	b2.Gate(netlist.KAnd, "GATE", tick.R(1, 2), []netlist.NetID{gck2}, netlist.Conns(ck2), netlist.Conns(en2))
	q2 := b2.Net("Q")
	d2 := b2.Net("D .S0-25")
	b2.Register("REG", tick.R(1, 2), []netlist.NetID{q2}, netlist.Conn{Net: gck2}, netlist.Conns(d2))
	b2.SetupHold("CHK", ns(1), ns(1), netlist.Conns(d2), netlist.Conn{Net: gck2})
	b2.MinPulse("W", ns(5), ns(3), netlist.Conn{Net: gck2})
	if fs := findRule(Check(b2.MustBuild()), "gated-clock-width"); len(fs) != 0 {
		t.Errorf("width-checked gated clock still flagged: %v", fs)
	}
}

func TestUnassertedClock(t *testing.T) {
	b := netlist.NewBuilder("unasserted")
	b.SetPeriod(50 * tick.NS)
	notClock := b.Net("SOME SIGNAL .S0-25") // a stable assertion, not a clock
	q := b.Net("Q")
	d := b.Net("D .S0-25")
	b.Register("REG", tick.R(1, 2), []netlist.NetID{q}, netlist.Conn{Net: notClock}, netlist.Conns(d))
	b.SetupHold("CHK", ns(1), ns(1), netlist.Conns(d), netlist.Conn{Net: notClock})
	fs := findRule(Check(b.MustBuild()), "unasserted-clock")
	if len(fs) != 1 {
		t.Errorf("unasserted clock findings = %v", fs)
	}
}

func TestAssertedClockThroughGating(t *testing.T) {
	// A clock derived through buffers and gates still counts as asserted.
	b := netlist.NewBuilder("derived")
	b.SetPeriod(50 * tick.NS)
	ck := b.Net("CK .P20-30")
	x, gck := b.Net("X"), b.Net("GCK")
	b.Buf("B", tick.R(1, 2), []netlist.NetID{x}, netlist.Conns(ck))
	b.Gate(netlist.KAnd, "G", tick.R(1, 2), []netlist.NetID{gck}, netlist.Conns(x), netlist.Conns(b.Net("EN .S0-10")))
	q := b.Net("Q")
	d := b.Net("D .S0-25")
	b.Register("REG", tick.R(1, 2), []netlist.NetID{q}, netlist.Conn{Net: gck}, netlist.Conns(d))
	b.SetupHold("CHK", ns(1), ns(1), netlist.Conns(d), netlist.Conn{Net: gck})
	b.MinPulse("W", ns(5), 0, netlist.Conn{Net: gck})
	if fs := findRule(Check(b.MustBuild()), "unasserted-clock"); len(fs) != 0 {
		t.Errorf("derived clock flagged: %v", fs)
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Rule: "comb-loop", Severity: Error, Subject: "X", Detail: "boom"}
	if s := f.String(); !strings.Contains(s, "error") || !strings.Contains(s, "comb-loop") {
		t.Errorf("rendering = %q", s)
	}
	if Warning.String() != "warning" {
		t.Error("severity names wrong")
	}
}

func TestErrorsSortFirst(t *testing.T) {
	b := netlist.NewBuilder("mixed")
	b.SetPeriod(50 * tick.NS)
	x, y := b.Net("X"), b.Net("Y")
	b.Gate(netlist.KOr, "G1", tick.R(1, 1), []netlist.NetID{x}, netlist.Conns(y), netlist.Conns(y))
	b.Gate(netlist.KOr, "G2", tick.R(1, 1), []netlist.NetID{y}, netlist.Conns(x), netlist.Conns(x))
	ck := b.Net("CK .P0-4")
	q := b.Net("Q")
	b.Register("BARE", tick.R(1, 2), []netlist.NetID{q}, netlist.Conn{Net: ck}, netlist.Conns(b.Net("D .S0-25")))
	fs := Check(b.MustBuild())
	if len(fs) < 2 || fs[0].Severity != Error {
		t.Errorf("errors should sort first: %v", fs)
	}
}
