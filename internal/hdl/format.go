package hdl

import (
	"fmt"
	"strconv"
	"strings"

	"scaldtv/internal/tick"
)

// Format renders a parsed file back as canonical HDL source: one
// statement per line, uniform spacing, names quoted exactly when they
// need to be.  Formatting is idempotent: parsing the output and
// formatting again yields the same text.
func Format(f *File) string {
	var sb strings.Builder
	if f.Design != "" {
		fmt.Fprintf(&sb, "design %s\n", fmtName(f.Design))
	}
	if f.Period > 0 {
		fmt.Fprintf(&sb, "period %s\n", fmtTime(f.Period))
	}
	if f.ClockUnit > 0 {
		fmt.Fprintf(&sb, "clockunit %s\n", fmtTime(f.ClockUnit))
	}
	if f.HasWire {
		fmt.Fprintf(&sb, "defaultwire %s %s\n", fmtTime(f.Wire.Min), fmtTime(f.Wire.Max))
	}
	if f.HasPSkew {
		fmt.Fprintf(&sb, "skew precision %s %s\n", fmtTime(f.PSkew.Min), fmtTime(f.PSkew.Max))
	}
	if f.HasCSkew {
		fmt.Fprintf(&sb, "skew clock %s %s\n", fmtTime(f.CSkew.Min), fmtTime(f.CSkew.Max))
	}
	if f.WiredOr {
		sb.WriteString("wiredor\n")
	}
	for _, pd := range f.Params {
		fmt.Fprintf(&sb, "param %s = %s", fmtName(pd.Name), fmtFloat(pd.Default))
		if pd.HasRange {
			fmt.Fprintf(&sb, " range %s %s", fmtFloat(pd.Lo), fmtFloat(pd.Hi))
		}
		sb.WriteString("\n")
	}
	for _, sd := range f.Signals {
		fmt.Fprintf(&sb, "signal %s%s\n", fmtName(sd.Name), fmtRange(sd.HasRange, sd.Lo, sd.Hi))
	}
	for _, wd := range f.Wires {
		fmt.Fprintf(&sb, "wire %s %s %s\n", fmtName(wd.Name), fmtTime(wd.Delay.Min), fmtTime(wd.Delay.Max))
	}
	for _, m := range f.Macros {
		sb.WriteString("\n")
		fmt.Fprintf(&sb, "macro %s", fmtName(m.Name))
		if len(m.Params) > 0 {
			fmt.Fprintf(&sb, " (%s)", strings.Join(m.Params, ", "))
		}
		sb.WriteString(" {\n")
		if len(m.Ports) > 0 {
			sb.WriteString("    param ")
			for i, pd := range m.Ports {
				if i > 0 {
					sb.WriteString(", ")
				}
				sb.WriteString(fmtName(pd.Name) + fmtRange(pd.HasRange, pd.Lo, pd.Hi))
			}
			sb.WriteString("\n")
		}
		if len(m.Locals) > 0 {
			sb.WriteString("    local ")
			for i, pd := range m.Locals {
				if i > 0 {
					sb.WriteString(", ")
				}
				sb.WriteString(fmtName(pd.Name) + fmtRange(pd.HasRange, pd.Lo, pd.Hi))
			}
			sb.WriteString("\n")
		}
		for _, inst := range m.Body {
			sb.WriteString("    " + fmtInstance(inst) + "\n")
		}
		sb.WriteString("}\n")
	}
	if len(f.Body) > 0 {
		sb.WriteString("\n")
	}
	for _, inst := range f.Body {
		sb.WriteString(fmtInstance(inst) + "\n")
	}
	for _, c := range f.Cases {
		sb.WriteString("case ")
		for i, a := range c.Assigns {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "%s = %d", fmtName(a.Signal), a.Value)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// fmtName quotes a name when it cannot stand as a bare identifier.
func fmtName(s string) string {
	bare := s != ""
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' ||
			(i > 0 && (c >= '0' && c <= '9' || c == '.'))
		if !ok {
			bare = false
			break
		}
	}
	// Bare words that collide with keywords or primitive kinds must be
	// quoted too.
	lower := strings.ToLower(s)
	if PrimKinds[lower] {
		bare = false
	}
	switch lower {
	case "design", "period", "clockunit", "defaultwire", "skew", "macro",
		"signal", "wire", "case", "use", "param", "local", "wiredor":
		bare = false
	}
	if bare {
		return s
	}
	return fmt.Sprintf("%q", s)
}

func fmtTime(t tick.Time) string {
	return t.String() + "ns"
}

// fmtFloat renders a real value with the shortest exact spelling.
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// fmtDExpr renders a delay expression in canonical term order: the
// constant first (when present), then each parameter term as
// coefficient*name.
func fmtDExpr(e DExpr) string {
	var sb strings.Builder
	wrote := false
	if e.ConstNS != 0 || len(e.Terms) == 0 {
		sb.WriteString(fmtFloat(e.ConstNS))
		wrote = true
	}
	for _, t := range e.Terms {
		ns := t.NS
		if wrote {
			if ns < 0 {
				sb.WriteString(" - ")
				ns = -ns
			} else {
				sb.WriteString(" + ")
			}
		} else if ns < 0 {
			sb.WriteString("-")
			ns = -ns
		}
		fmt.Fprintf(&sb, "%s*%s", fmtFloat(ns), t.Param)
		wrote = true
	}
	return sb.String()
}

func fmtRange(has bool, lo, hi Expr) string {
	if !has {
		return ""
	}
	ls, hs := fmtExpr(lo), fmtExpr(hi)
	if ls == hs {
		return fmt.Sprintf("<%s>", ls)
	}
	return fmt.Sprintf("<%s:%s>", ls, hs)
}

func fmtExpr(e Expr) string {
	switch v := e.(type) {
	case NumExpr:
		return fmt.Sprintf("%d", int(v))
	case VarExpr:
		return string(v)
	case BinExpr:
		return fmt.Sprintf("(%s%c%s)", fmtExpr(v.L), v.Op, fmtExpr(v.R))
	}
	return "?"
}

func fmtSigExpr(se *SigExpr) string {
	var sb strings.Builder
	if se.Invert {
		sb.WriteString("-")
	}
	sb.WriteString(fmtName(se.Name))
	sb.WriteString(fmtRange(se.HasRange, se.Lo, se.Hi))
	if se.Dirs != "" {
		sb.WriteString(" &" + se.Dirs)
	}
	return sb.String()
}

func fmtInstance(inst *Instance) string {
	var sb strings.Builder
	sb.WriteString(inst.Kind)
	if inst.Kind == "use" {
		sb.WriteString(" " + fmtName(inst.Macro))
	}
	if inst.Label != "" {
		sb.WriteString(" " + fmtName(inst.Label))
	}
	if inst.ParamVals != nil {
		var keys []string
		for k := range inst.ParamVals {
			keys = append(keys, k)
		}
		// Deterministic order.
		for i := 1; i < len(keys); i++ {
			for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
				keys[j], keys[j-1] = keys[j-1], keys[j]
			}
		}
		for _, k := range keys {
			fmt.Fprintf(&sb, " %s=%s", k, fmtExpr(inst.ParamVals[k]))
		}
	}
	if inst.HasDelay {
		fmt.Fprintf(&sb, " delay=(%s,%s)", inst.Delay.Min, inst.Delay.Max)
	}
	if inst.HasDelayExpr {
		fmt.Fprintf(&sb, " delay=(%s, %s)", fmtDExpr(inst.DelayExprMin), fmtDExpr(inst.DelayExprMax))
	}
	if inst.HasSelDelay {
		fmt.Fprintf(&sb, " seldelay=(%s,%s)", inst.SelDelay.Min, inst.SelDelay.Max)
	}
	if inst.HasRF {
		fmt.Fprintf(&sb, " delayrf=(%s,%s,%s,%s)", inst.Rise.Min, inst.Rise.Max, inst.Fall.Min, inst.Fall.Max)
	}
	if inst.Setup != 0 {
		fmt.Fprintf(&sb, " setup=%s", inst.Setup)
	}
	if inst.Hold != 0 {
		fmt.Fprintf(&sb, " hold=%s", inst.Hold)
	}
	if inst.High != 0 {
		fmt.Fprintf(&sb, " high=%s", inst.High)
	}
	if inst.Low != 0 {
		fmt.Fprintf(&sb, " low=%s", inst.Low)
	}
	sb.WriteString(" (")
	if inst.Kind == "use" {
		var ports []string
		for k := range inst.Conns {
			ports = append(ports, k)
		}
		for i := 1; i < len(ports); i++ {
			for j := i; j > 0 && ports[j] < ports[j-1]; j-- {
				ports[j], ports[j-1] = ports[j-1], ports[j]
			}
		}
		for i, k := range ports {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "%s=%s", k, fmtSigExpr(inst.Conns[k]))
		}
	} else {
		for i, se := range inst.Ins {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(fmtSigExpr(se))
		}
	}
	sb.WriteString(")")
	if len(inst.Outs) > 0 {
		sb.WriteString(" -> (")
		for i, se := range inst.Outs {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(fmtSigExpr(se))
		}
		sb.WriteString(")")
	}
	return sb.String()
}
