package experiments

import (
	"testing"

	"scaldtv/internal/tick"
)

func ns(f float64) tick.Time { return tick.FromNS(f) }

func TestRunScaleSmall(t *testing.T) {
	r, err := RunScale(3*17, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stages != 3 || r.Chips != 51 {
		t.Errorf("scale wrong: %+v", r)
	}
	if r.Violations != 0 {
		t.Errorf("generated design not clean: %d violations", r.Violations)
	}
	if r.Table31.Primitives == 0 || r.Table31.Events == 0 {
		t.Errorf("table 3-1 counters empty: %+v", r.Table31)
	}
	if r.Table31.Read <= 0 || r.Table31.Pass2 <= 0 || r.Table31.Verify <= 0 {
		t.Errorf("phase times missing: %+v", r.Table31)
	}
	if r.Storage.Total() <= 0 || r.Storage.ValueLists == 0 {
		t.Errorf("storage model empty: %+v", r.Storage)
	}
	if r.Report.AvgWidth() <= 1 {
		t.Errorf("vectorisation missing: %+v", r.Report)
	}
	if r.Undefined == 0 {
		t.Error("cross-reference listing should have the spare input")
	}
}

func TestRunCaseIncrement(t *testing.T) {
	r, err := RunCaseIncrement(2 * 17)
	if err != nil {
		t.Fatal(err)
	}
	if r.SecondEvals >= r.FirstEvals {
		t.Errorf("second case evals %d >= first %d: not incremental", r.SecondEvals, r.FirstEvals)
	}
	if r.SecondEvents == 0 {
		t.Error("second case should still process events")
	}
}

func TestRunExponentialAgreementAndGrowth(t *testing.T) {
	pts, err := RunExponential([]int{3, 5, 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		want := tick.Time(2*(p.N-1)) * tick.NS
		if p.SimWorst != want {
			t.Errorf("n=%d: simulation worst %v, want %v", p.N, p.SimWorst, want)
		}
		if p.TVWorst != want {
			t.Errorf("n=%d: verifier worst %v, want %v", p.N, p.TVWorst, want)
		}
	}
	// Exponential vs roughly-linear cost: cycle counts grow 4× per two
	// inputs; verifier events grow only with the gate count.
	if pts[1].SimCycles != 4*pts[0].SimCycles || pts[2].SimCycles != 4*pts[1].SimCycles {
		t.Errorf("sim cycles %d %d %d: expected 4× growth", pts[0].SimCycles, pts[1].SimCycles, pts[2].SimCycles)
	}
	if pts[2].TVEvents > pts[0].TVEvents*8 {
		t.Errorf("verifier events grew too fast: %d → %d", pts[0].TVEvents, pts[2].TVEvents)
	}
}

func TestRunPathSearchClaim(t *testing.T) {
	r, err := RunPathSearchClaim()
	if err != nil {
		t.Fatal(err)
	}
	if r.PathSearchMax != ns(40) {
		t.Errorf("path search max = %v, want the spurious 40 ns", r.PathSearchMax)
	}
	if r.PathSearchFlags == 0 {
		t.Error("path search should flag the spurious error at a 35 ns budget")
	}
	if r.TVPessimistic != ns(40) {
		t.Errorf("verifier without cases = %v, want 40 ns (same pessimism)", r.TVPessimistic)
	}
	if r.TVCaseDelay != ns(30) {
		t.Errorf("verifier with cases = %v, want the true 30 ns", r.TVCaseDelay)
	}
	if r.TVCaseFlags != 0 {
		t.Errorf("verifier with cases should be clean, got %d flags", r.TVCaseFlags)
	}
}

func TestRunSkewDemo(t *testing.T) {
	d := RunSkewDemo()
	if d.CarriedMin != ns(10) || d.CarriedMax != ns(10) {
		t.Errorf("carried widths %v/%v, want 10/10", d.CarriedMin, d.CarriedMax)
	}
	if d.IncorporatedMin != ns(5) || d.IncorporatedMax != ns(15) {
		t.Errorf("incorporated widths %v/%v, want 5/15", d.IncorporatedMin, d.IncorporatedMax)
	}
}
