package report

import (
	"encoding/json"

	"scaldtv/internal/verify"
)

// jsonViolation is the machine-readable form of one violation.
type jsonViolation struct {
	Kind       string  `json:"kind"`
	Case       string  `json:"case,omitempty"`
	Primitive  string  `json:"primitive"`
	Data       string  `json:"data,omitempty"`
	Clock      string  `json:"clock,omitempty"`
	RequiredNS float64 `json:"required_ns"`
	ActualNS   float64 `json:"actual_ns"`
	MarginNS   float64 `json:"margin_ns"`
	AtNS       float64 `json:"at_ns"`
	DataWave   string  `json:"data_wave,omitempty"`
	ClockWave  string  `json:"clock_wave,omitempty"`
	Detail     string  `json:"detail,omitempty"`
}

// jsonSiteProb is one constraint site's statistical-mode violation
// probability.
type jsonSiteProb struct {
	Kind        string  `json:"kind"`
	Case        string  `json:"case,omitempty"`
	Primitive   string  `json:"primitive"`
	Data        string  `json:"data,omitempty"`
	Clock       string  `json:"clock,omitempty"`
	SlackNS     float64 `json:"slack_ns"`
	From        string  `json:"from,omitempty"`
	Probability float64 `json:"probability"`
}

// jsonParamBinding is one design parameter of an analytic-mode run: its
// declared box and the value the engine was pinned at.
type jsonParamBinding struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Lo    float64 `json:"lo"`
	Hi    float64 `json:"hi"`
}

// jsonSurfaceSite is one constraint site of the analytic margin surface:
// the slack at the pinned point, and the worst slack over the whole
// parameter box together with the binding corner that attains it.
type jsonSurfaceSite struct {
	Kind         string             `json:"kind"`
	Case         string             `json:"case,omitempty"`
	Primitive    string             `json:"primitive"`
	Data         string             `json:"data,omitempty"`
	Clock        string             `json:"clock,omitempty"`
	SlackNS      float64            `json:"slack_ns"`
	Exact        bool               `json:"exact"`
	WorstSlackNS float64            `json:"worst_slack_ns"`
	Corner       map[string]float64 `json:"corner,omitempty"`
}

// jsonExploration is the case-exploration section: the poisoned sites,
// the full candidate provenance, and the emitted minimal case set.  All
// fields are structural or derived from deterministic probe outcomes, so
// the section is byte-identical across engines and worker counts.
type jsonExploration struct {
	Sites      []jsonExploredSite     `json:"sites"`
	Candidates []jsonExploreCandidate `json:"candidates"`
	Chosen     []string               `json:"chosen"`
	CaseSet    []string               `json:"case_set"`
	Minimal    bool                   `json:"minimal"`
	Residual   int                    `json:"residual"`
	Skipped    int                    `json:"skipped,omitempty"`
}

type jsonExploredSite struct {
	Kind       string   `json:"kind"`
	Primitive  string   `json:"primitive"`
	Data       string   `json:"data,omitempty"`
	Clock      string   `json:"clock,omitempty"`
	Discharged bool     `json:"discharged"`
	By         []string `json:"by,omitempty"`
}

type jsonExploreCandidate struct {
	Base       string `json:"base"`
	Sites      int    `json:"sites"`
	ConePrims  int    `json:"cone_prims"`
	ConeNets   int    `json:"cone_nets"`
	Probes     int    `json:"probes,omitempty"`
	Discharges []int  `json:"discharges,omitempty"`
	Chosen     bool   `json:"chosen,omitempty"`
}

// SchemaVersion identifies the JSON report layout.  Bump it on any
// incompatible change to the emitted fields; consumers should check it
// before interpreting the rest of the document.
//
// Version 1 added the schema and case_labels fields and removed the
// events counter: per-case event totals depend on the case schedule
// (sequential runs relax later cases incrementally, concurrent runs relax
// each from scratch), so including them broke the byte-determinism of the
// report across Options.Workers settings.  Everything emitted now is
// bit-identical for every Workers/IntraWorkers/NoCache combination —
// the contract the scaldtvd service relies on.
//
// Version 1 later gained the optional delay_model, site_probs and
// exploration fields, then the analytic-mode params and margin_surface
// sections — all additive and omitted when absent, so consumers of the
// original layout keep working and the version stays 1.
const SchemaVersion = 1

// Report is the machine-readable verification outcome, for CI
// integration.  The design name and per-case labels identify what was
// verified; the labels are in declared case order, matching the case
// grouping of the violations list.
//
// A Report is also the wire form of a *partial* verification — a
// case-subset run on a cluster worker (see NewPartial): the same
// structure then describes only the cases the worker ran, and
// MergeParts reassembles the full document from the partition's parts
// in declared case order, byte-identical to a local single-process run.
type Report struct {
	Schema     int             `json:"schema"`
	Design     string          `json:"design"`
	PeriodNS   float64         `json:"period_ns"`
	Primitives int             `json:"primitives"`
	Nets       int             `json:"nets"`
	Cases      int             `json:"cases"`
	CaseLabels []string        `json:"case_labels"`
	Violations []jsonViolation `json:"violations"`
	Undefined  []string        `json:"undefined_signals,omitempty"`
	Pass       bool            `json:"pass"`

	// Optional sections, additive within schema 1.
	DelayModel  string             `json:"delay_model,omitempty"`
	SiteProbs   []jsonSiteProb     `json:"site_probs,omitempty"`
	Params      []jsonParamBinding `json:"params,omitempty"`
	Surface     []jsonSurfaceSite  `json:"margin_surface,omitempty"`
	Exploration *jsonExploration   `json:"exploration,omitempty"`
}

// NewPartial renders a verification result into the Report structure
// without marshalling it.  For a full run the outcome is exactly what
// JSON serializes; for a case-subset run (a design narrowed with
// netlist.Design.WithCases on a cluster worker) it is one mergeable part:
// the head fields describe the whole design, the case labels, violations
// and site probabilities cover only the cases this run evaluated.
func NewPartial(res *verify.Result) *Report {
	out := &Report{
		Schema:     SchemaVersion,
		Design:     res.Design.Name,
		PeriodNS:   res.Design.Period.NS(),
		Primitives: res.Stats.Primitives,
		Nets:       res.Stats.Nets,
		Cases:      res.Stats.Cases,
		CaseLabels: []string{},
		Undefined:  res.Undefined,
		Pass:       !res.Errors(),
		Violations: []jsonViolation{},
	}
	for _, c := range res.Cases {
		out.CaseLabels = append(out.CaseLabels, c.Label)
	}
	for _, v := range res.Violations {
		jv := jsonViolation{
			Kind:       v.Kind.String(),
			Case:       v.Case,
			Primitive:  v.Prim,
			Data:       v.Data,
			Clock:      v.Clock,
			RequiredNS: v.Required.NS(),
			ActualNS:   v.Actual.NS(),
			MarginNS:   v.Margin().NS(),
			AtNS:       v.At.NS(),
			Detail:     v.Detail,
		}
		if v.DataWave.Period > 0 {
			jv.DataWave = WaveString(v.DataWave)
		}
		if v.ClockWave.Period > 0 {
			jv.ClockWave = WaveString(v.ClockWave)
		}
		out.Violations = append(out.Violations, jv)
	}
	if len(res.SiteProbs) > 0 {
		out.DelayModel = verify.DelayStatistical.Name()
		for _, p := range res.SiteProbs {
			out.SiteProbs = append(out.SiteProbs, jsonSiteProb{
				Kind:        p.Kind.String(),
				Case:        p.Case,
				Primitive:   p.Prim,
				Data:        p.Data,
				Clock:       p.Clock,
				SlackNS:     p.SlackNS,
				From:        p.From,
				Probability: p.Prob,
			})
		}
	}
	if ms := res.MarginSurface; ms != nil {
		out.DelayModel = "analytic"
		out.Params = []jsonParamBinding{}
		for _, p := range ms.Params {
			out.Params = append(out.Params, jsonParamBinding{
				Name: p.Name, Value: p.Value, Lo: p.Lo, Hi: p.Hi,
			})
		}
		out.Surface = []jsonSurfaceSite{}
		for i := range ms.Sites {
			s := &ms.Sites[i]
			corner, worst := ms.BindingCorner(i)
			js := jsonSurfaceSite{
				Kind:         s.Kind.String(),
				Case:         s.Case,
				Primitive:    s.Prim,
				Data:         s.Data,
				Clock:        s.Clock,
				SlackNS:      s.Slack0.NS(),
				Exact:        s.Exact,
				WorstSlackNS: worst.NS(),
			}
			if len(corner) > 0 {
				js.Corner = corner
			}
			out.Surface = append(out.Surface, js)
		}
	}
	if ex := res.Exploration; ex != nil {
		jx := &jsonExploration{
			Sites:      []jsonExploredSite{},
			Candidates: []jsonExploreCandidate{},
			Chosen:     ex.Chosen,
			CaseSet:    ex.CaseSet,
			Minimal:    ex.Minimal,
			Residual:   ex.Residual,
			Skipped:    ex.Skipped,
		}
		if jx.Chosen == nil {
			jx.Chosen = []string{}
		}
		if jx.CaseSet == nil {
			jx.CaseSet = []string{}
		}
		for _, s := range ex.Sites {
			jx.Sites = append(jx.Sites, jsonExploredSite{
				Kind:       s.Kind.String(),
				Primitive:  s.Prim,
				Data:       s.Data,
				Clock:      s.Clock,
				Discharged: s.Discharged,
				By:         s.By,
			})
		}
		for _, c := range ex.Candidates {
			jx.Candidates = append(jx.Candidates, jsonExploreCandidate{
				Base:       c.Base,
				Sites:      c.Sites,
				ConePrims:  c.ConePrims,
				ConeNets:   c.ConeNets,
				Probes:     c.Probes,
				Discharges: c.Discharges,
				Chosen:     c.Chosen,
			})
		}
		out.Exploration = jx
	}
	return out
}

// JSON renders the verification result as machine-readable JSON.  The
// output is byte-deterministic for a given design and verification
// outcome, regardless of worker counts or cache settings.
func JSON(res *verify.Result) ([]byte, error) {
	return marshalReport(NewPartial(res))
}

func marshalReport(out *Report) ([]byte, error) {
	return json.MarshalIndent(out, "", "  ")
}
