package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"scaldtv"
	"scaldtv/internal/cluster"
)

// readExample loads one example design (without the library; tests
// append it via ?lib=1 or cliJSON).
func readExample(t *testing.T, name string) string {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("..", "..", "examples", name, name+".scald"))
	if err != nil {
		t.Fatal(err)
	}
	return string(src)
}

// startClusterNodes brings up n full scaldtvd-style workers — the
// ordinary service API with the batch endpoint mounted next to it,
// exactly as `scaldtvd -worker` composes them — and a coordinator-mode
// Server fronting them.
func startClusterNodes(t *testing.T, n int) (*httptest.Server, *cluster.Coordinator) {
	t.Helper()
	endpoints := make([]string, n)
	for i := range endpoints {
		node := New(Config{Options: scaldtv.Options{Workers: 1}, Pool: 2})
		wk := cluster.NewWorker(cluster.WorkerConfig{})
		mux := http.NewServeMux()
		mux.Handle("/v1/batch", wk.Handler())
		mux.Handle("/", node.Handler())
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		endpoints[i] = srv.URL
	}
	coord := cluster.NewCoordinator(cluster.CoordinatorConfig{
		Endpoints:     endpoints,
		Backoff:       time.Millisecond,
		ProbeInterval: 10 * time.Millisecond,
	})
	t.Cleanup(coord.Close)
	_, front := newTestServer(t, Config{Cluster: coord, Pool: 4})
	return front, coord
}

// TestClusterVerifyParity locks the coordinator-mode /v1/verify
// contract: the distributed response body is byte-identical to the CLI's
// -json output, and a partitioned multi-case run reports provenance
// "sharded".
func TestClusterVerifyParity(t *testing.T) {
	front, _ := startClusterNodes(t, 2)

	// Multi-case example: the run actually splits across the workers.
	src := readExample(t, "caseanalysis")
	want := cliJSON(t, src, scaldtv.Options{Workers: 1})
	resp, body := post(t, front.URL+"/v1/verify?lib=1", src)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster verify: status %d: %s", resp.StatusCode, body)
	}
	if !bytes.Equal(body, want) {
		t.Errorf("cluster verify differs from CLI bytes\n--- got ---\n%s\n--- want ---\n%s", body, want)
	}
	if prov := resp.Header.Get("X-Scaldtv-Provenance"); prov != "sharded" {
		t.Errorf("provenance %q, want sharded", prov)
	}

	// Error mapping survives the wire: a parse error is still a 400.
	resp, _ = post(t, front.URL+"/v1/verify", "design \"X\"\nuse \"NO SUCH\" \"Y\" ()\n")
	if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("broken design through cluster: status %d, want 400/422", resp.StatusCode)
	}
}

// TestClusterSessionProxy drives the full designer loop through a
// coordinator: create routes to an owner worker, edits and report reads
// follow the session id to the same worker, delete evicts there.
func TestClusterSessionProxy(t *testing.T) {
	front, _ := startClusterNodes(t, 2)

	resp, body := post(t, front.URL+"/v1/sessions", sessSource(2))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create through coordinator: status %d: %s", resp.StatusCode, body)
	}
	var env struct {
		Session     string `json:"session"`
		Incremental bool   `json:"incremental"`
	}
	if err := json.Unmarshal(body, &env); err != nil || env.Session == "" {
		t.Fatalf("create envelope: %v\n%s", err, body)
	}

	// A parameter-only edit reaches the worker holding the Verifier and
	// is answered incrementally — proof the proxy found the right owner.
	resp, body = do(t, http.MethodPut, front.URL+"/v1/sessions/"+env.Session+"/design", sessSource(3))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("edit through coordinator: status %d: %s", resp.StatusCode, body)
	}
	var upd struct {
		Incremental bool `json:"incremental"`
	}
	if err := json.Unmarshal(body, &upd); err != nil {
		t.Fatal(err)
	}
	if !upd.Incremental {
		t.Error("edit was not answered incrementally — wrong worker or lost session state")
	}

	resp, body = do(t, http.MethodGet, front.URL+"/v1/sessions/"+env.Session+"/report?format=json", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report through coordinator: status %d: %s", resp.StatusCode, body)
	}
	if want := cliJSON(t, sessSource(3), scaldtv.Options{Workers: 1}); !bytes.Equal(body, want) {
		// Session options default to the worker's own config; compare only
		// after normalizing — both are Workers:1 here, so bytes must match.
		t.Errorf("proxied session report differs from CLI bytes\n--- got ---\n%s\n--- want ---\n%s", body, want)
	}

	resp, _ = do(t, http.MethodDelete, front.URL+"/v1/sessions/"+env.Session, "")
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("delete through coordinator: status %d", resp.StatusCode)
	}
	resp, _ = do(t, http.MethodGet, front.URL+"/v1/sessions/"+env.Session+"/report", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("report after delete: status %d, want 404", resp.StatusCode)
	}
}

// TestClusterMetrics: coordinator mode exposes the fan-out counters.
func TestClusterMetrics(t *testing.T) {
	front, _ := startClusterNodes(t, 2)
	post(t, front.URL+"/v1/verify?lib=1", readExample(t, "caseanalysis"))
	resp, body := do(t, http.MethodGet, front.URL+"/metrics", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	for _, want := range []string{
		"scaldtvd_cluster_workers 2",
		"scaldtvd_cluster_healthy 2",
		"scaldtvd_cluster_subjobs_total",
		"scaldtvd_cluster_batches_total",
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}
