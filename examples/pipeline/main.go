// Modular verification of an arithmetic pipeline in the style of Fig 3-12:
// an operand-fetch section and an execute section (ALU with output latch
// plus a status register) are verified independently, communicating only
// through interface signals whose assertions state when they are stable —
// the paper's key to verifying designs too large to examine as a unit
// (§2.5.2).  If every section is clean and the interface assertions are
// consistent, the whole design is free of timing errors; verifying the
// combined design confirms it.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"

	"scaldtv"
)

const header = `
design "MARK IIA ARITHMETIC"
period 50ns
clockunit 6.25ns
defaultwire 0ns 2ns
skew precision -1ns 1ns
`

// Section 1 generates the interface signal "OPERAND BUS .S2.5-8.2": the
// assertion (stable 12.5 → 56.25 ns) is part of the name, so the verifier
// checks the generated timing against it (§2.5.2).
const fetchSection = `
use "REG 10176" "SRC REG" SIZE=8 (CK="MCK .P0-4", I="SRC DATA .S6-12"<0:7>, Q="SRC Q"<0:7>)
use "2 MUX 10173" "OP SEL" SIZE=8 (S="OP SELECT .S0-8", D0="SRC Q"<0:7>, D1="IMMEDIATE .S0-8"<0:7>, O="OPERAND BUS .S2.5-8.2"<0:7>)
`

// Section 2 consumes the interface signal; verified alone, the assertion
// stands in for the not-yet-connected hardware.
const executeSection = `
use "ALU 10181" "EXEC ALU" SIZE=8 (A="OPERAND BUS .S2.5-8.2"<0:7>, B="ACCUM .S2-9"<0:7>, C1="CARRY IN .S2-9", S="FUNC .S0-8"<0:3>, E="ENCK .P4-5", F="RESULT"<0:7>)
use "REG 10176" "STATUS REG" SIZE=8 (CK="MCK .P0-4", I="RESULT"<0:7>, Q="STATUS"<0:7>)
`

func main() {
	fmt.Println("---- section 1: operand fetch, verified alone ----")
	verifySection(fetchSection)

	fmt.Println("\n---- section 2: execute, verified alone (interface asserted) ----")
	verifySection(executeSection)

	fmt.Println("\n---- combined design ----")
	verifySection(fetchSection + executeSection)

	fmt.Println("\n---- what modular verification buys: a late operand bus is caught")
	fmt.Println("     in section 1 against the same interface assertion section 2 relies on ----")
	verifySection(`
use "REG 10176" "SRC REG" SIZE=8 (CK="MCK .P0-4", I="SRC DATA .S6-12"<0:7>, Q="SRC Q"<0:7>)
buf "SLOW BUFFER" delay=(9,14) ("SRC Q"<0:7>) -> ("OPERAND BUS .S2.5-8.2"<0:7>)
`)
}

func verifySection(body string) {
	d, err := scaldtv.Compile(header + scaldtv.Library + body)
	if err != nil {
		log.Fatal(err)
	}
	res, err := scaldtv.Verify(d, scaldtv.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(scaldtv.Summary(res))
	if res.Errors() {
		fmt.Print(scaldtv.ErrorListing(res))
	}
}
