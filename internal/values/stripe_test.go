package values

import (
	"sync"
	"testing"

	"scaldtv/internal/tick"
)

// The striped interner's contract under concurrency: for every waveform,
// all goroutines receive the SAME handle and the SAME canonical copy —
// exact-handle semantics (id(a) == id(b) ⇔ a.Equal(b)) must survive the
// racy first-insert window where several goroutines miss on the read lock
// and re-check under the write lock.  Run with -race.
func TestInternerConcurrentExactHandles(t *testing.T) {
	const (
		goroutines = 16
		distinct   = 64
		rounds     = 50
	)
	waves := make([]Waveform, distinct)
	for i := range waves {
		w := Const(100*tick.NS, V0)
		w = w.Paint(tick.Time(i+1)*tick.NS, tick.Time(i+20)*tick.NS, V1)
		if i%3 == 0 {
			w = w.WithSkew(tick.Time(i) * tick.NS / 2)
		}
		waves[i] = w
	}

	in := NewInterner()
	got := make([][]uint64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids := make([]uint64, distinct)
			for r := 0; r < rounds; r++ {
				for i, w := range waves {
					// Rebuild an equal-but-not-identical waveform half the
					// time, so the canonical-copy path is exercised from
					// fresh segment storage too.
					if (g+r)%2 == 1 {
						w = Waveform{Period: w.Period, Skew: w.Skew,
							Segs: append([]Segment(nil), w.Segs...)}
					}
					cw, id := in.Intern(w)
					if r == 0 {
						ids[i] = id
					} else if ids[i] != id {
						t.Errorf("g%d wave %d: handle moved %d -> %d", g, i, ids[i], id)
						return
					}
					if !cw.Equal(waves[i]) {
						t.Errorf("g%d wave %d: canonical copy differs", g, i)
						return
					}
				}
			}
			got[g] = ids
		}(g)
	}
	wg.Wait()

	for g := 1; g < goroutines; g++ {
		for i := range waves {
			if got[g][i] != got[0][i] {
				t.Fatalf("goroutines disagree on wave %d: %d vs %d", i, got[g][i], got[0][i])
			}
		}
	}
	// Distinct waveforms must hold distinct handles.
	seen := map[uint64]int{}
	for i, id := range got[0] {
		if j, dup := seen[id]; dup {
			t.Fatalf("waves %d and %d share handle %d", i, j, id)
		}
		seen[id] = i
	}
	unique, shared := in.Stats()
	if unique != distinct {
		t.Errorf("unique = %d, want %d", unique, distinct)
	}
	if wantShared := goroutines*rounds*distinct - distinct; shared != wantShared {
		t.Errorf("shared = %d, want %d", shared, wantShared)
	}
}

// TestInternerDetachesArenaStorage: a canonical copy must own its segment
// storage — interning a waveform whose segments live in a caller's arena
// and then growing the arena further must not disturb the interned copy.
func TestInternerDetachesArenaStorage(t *testing.T) {
	a := &Arena{}
	w := ConstA(100*tick.NS, V0, a)
	w = w.PaintA(10*tick.NS, 30*tick.NS, V1, a)
	in := NewInterner()
	cw, id := in.Intern(w)
	want := append([]Segment(nil), cw.Segs...)

	// Scribble over arena memory by allocating and filling fresh slices.
	for i := 0; i < 10000; i++ {
		s := a.makeSegs(3)
		for j := range s {
			s[j] = Segment{V: VC, W: tick.NS}
		}
	}
	cw2, id2 := in.Intern(Waveform{Period: 100 * tick.NS,
		Segs: append([]Segment(nil), want...)})
	if id2 != id {
		t.Fatalf("handle moved after arena churn: %d -> %d", id, id2)
	}
	for i := range want {
		if cw2.Segs[i] != want[i] {
			t.Fatalf("canonical segments corrupted by arena churn at %d", i)
		}
	}
}
