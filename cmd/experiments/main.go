// Command experiments regenerates every table and figure of the paper's
// evaluation and prints paper-vs-measured comparisons.  Its -markdown
// output is the source of EXPERIMENTS.md.
//
//	experiments -all
//	experiments -table 3-1 -chips 6357
//	experiments -claim exponential
package main

import (
	"flag"
	"fmt"
	"os"

	"scaldtv/internal/experiments"
	"scaldtv/internal/stats"
)

func main() {
	table := flag.String("table", "", "regenerate one table: 3-1, 3-2 or 3-3")
	claim := flag.String("claim", "", "regenerate one claim: exponential, pathsearch, skew, cases, parallel")
	all := flag.Bool("all", false, "regenerate everything")
	chips := flag.Int("chips", 6357, "chip count for the scale experiment")
	workers := flag.Int("j", 1, "case-evaluation workers (0 = GOMAXPROCS; the paper's runs are single-threaded)")
	flag.Parse()

	if !*all && *table == "" && *claim == "" {
		fmt.Fprintln(os.Stderr, "usage: experiments -all | -table 3-1|3-2|3-3 | -claim exponential|pathsearch|skew|cases|parallel")
		os.Exit(2)
	}
	switch *claim {
	case "", "exponential", "pathsearch", "skew", "cases", "parallel":
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown claim %q (want exponential, pathsearch, skew, cases or parallel)\n", *claim)
		os.Exit(2)
	}

	var scale *experiments.ScaleResult
	needScale := *all || *table != ""
	if needScale {
		var err error
		scale, err = experiments.RunScale(*chips, *workers)
		if err != nil {
			fail(err)
		}
	}

	if *all || *table == "3-1" {
		fmt.Printf("==== Table 3-1: execution statistics (%d chips, %d stages) ====\n\n",
			scale.Chips, scale.Stages)
		fmt.Print(scale.Table31.String())
		fmt.Println()
		fmt.Println("paper (S-1 Mark I, ≈IBM 370/168): expander 16.52 min, verifier 12.14 min,")
		fmt.Println("20,052 events, 49 ms/primitive, 20 ms/event, single case")
		fmt.Println()
	}
	if *all || *table == "3-2" {
		fmt.Println("==== Table 3-2: primitive census ====")
		fmt.Println()
		fmt.Print(stats.Table32(scale.Report, scale.Chips))
		fmt.Println()
		fmt.Println("paper: 22 types, 8,282 vectored primitives (53,833 unvectorised),")
		fmt.Println("average width 6.5 bits, 1.3 primitives per chip")
		fmt.Println()
	}
	if *all || *table == "3-3" {
		fmt.Println("==== Table 3-3: storage accounting ====")
		fmt.Println()
		fmt.Print(scale.Storage.String())
		fmt.Println()
		fmt.Println("paper: circuit description 37.8%, signal values next (33,152 lists,")
		fmt.Println("2.97 value records and ~56 bytes per signal), names 11.6%,")
		fmt.Println("strings 10.6%, call list 6.9%, misc 0.7%")
		fmt.Println()
	}

	if *all || *claim == "exponential" {
		fmt.Println("==== Claim (§1.4.1/§2.1): exponential savings over exhaustive logic simulation ====")
		fmt.Println()
		pts, err := experiments.RunExponential([]int{4, 6, 8, 10, 12, 14})
		if err != nil {
			fail(err)
		}
		fmt.Printf("  %3s %12s %12s %12s %10s %12s %12s\n",
			"n", "sim-vectors", "sim-events", "sim-time", "tv-events", "tv-time", "worst-delay")
		for _, p := range pts {
			agree := "agree"
			if p.SimWorst != p.TVWorst {
				agree = fmt.Sprintf("MISMATCH %s vs %s", p.SimWorst, p.TVWorst)
			}
			fmt.Printf("  %3d %12d %12d %12v %10d %12v %9s ns (%s)\n",
				p.N, p.SimCycles, p.SimEvents, p.SimTime, p.TVEvents, p.TVTime, p.SimWorst, agree)
		}
		fmt.Println()
		fmt.Println("the simulator's cost doubles per input; the verifier's single symbolic")
		fmt.Println("pass grows only with the gate count, finding the identical worst case")
		fmt.Println()
	}
	if *all || *claim == "pathsearch" {
		fmt.Println("==== Claim (§1.4.2/§4.1): spurious errors from worst-case path search ====")
		fmt.Println()
		r, err := experiments.RunPathSearchClaim()
		if err != nil {
			fail(err)
		}
		fmt.Printf("  path search (GRASP/RAS style):   %s ns max, %d spurious error(s) at 35 ns\n",
			r.PathSearchMax, r.PathSearchFlags)
		fmt.Printf("  verifier, no case analysis:      %s ns (same pessimism)\n", r.TVPessimistic)
		fmt.Printf("  verifier, two designer cases:    %s ns, %d error(s)\n", r.TVCaseDelay, r.TVCaseFlags)
		fmt.Println()
		fmt.Println("paper: the Fig 2-6 delay is 40 ns without case analysis, 30 ns with")
		fmt.Println()
	}
	if *all || *claim == "skew" {
		fmt.Println("==== Figs 2-8/2-9: out-of-band skew preserves pulse widths ====")
		fmt.Println()
		d := experiments.RunSkewDemo()
		fmt.Printf("  10 ns pulse through a 5.0/10.0 ns gate:\n")
		fmt.Printf("    skew carried out of band:  guaranteed width %s ns (paper: unchanged)\n", d.CarriedMin)
		fmt.Printf("    skew incorporated (R/F):   guaranteed %s, maximum %s ns\n", d.IncorporatedMin, d.IncorporatedMax)
		fmt.Println()
	}
	if *all || *claim == "cases" {
		fmt.Println("==== Claim (§3.3.2): incremental case-analysis cost ====")
		fmt.Println()
		r, err := experiments.RunCaseIncrement(510)
		if err != nil {
			fail(err)
		}
		fmt.Printf("  case 1 (full evaluation):    %6d primitive evals, %6d events\n", r.FirstEvals, r.FirstEvents)
		fmt.Printf("  case 2 (incremental):        %6d primitive evals, %6d events\n", r.SecondEvals, r.SecondEvents)
		fmt.Println()
	}
	if *all || *claim == "parallel" {
		j := *workers
		if j <= 1 {
			j = 0 // GOMAXPROCS: the interesting configuration for this claim
		}
		fmt.Println("==== Concurrent case evaluation: wall-clock vs the sequential schedule ====")
		fmt.Println()
		r, err := experiments.RunParallelSpeedup(510, 8, j)
		if err != nil {
			fail(err)
		}
		fmt.Printf("  %d chips, %d cases\n", r.Chips, r.Cases)
		fmt.Printf("  sequential (1 worker, incremental cones): %10v wall, %8d prim evals\n", r.SeqWall, r.SeqEvals)
		fmt.Printf("  concurrent (%d workers, full per case):   %10v wall, %8d prim evals\n", r.Workers, r.ParWall, r.ParEvals)
		fmt.Printf("  wall-clock speedup: %.2fx (reports verified identical)\n", r.Speedup())
		fmt.Println()
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
