package gen

import (
	"strings"
	"testing"

	"scaldtv/internal/verify"
)

func TestStages(t *testing.T) {
	if Stages(0) != 1 || Stages(1) != 1 || Stages(17) != 1 || Stages(18) != 2 {
		t.Error("stage rounding wrong")
	}
	if Stages(6357) != 374 {
		t.Errorf("Stages(6357) = %d, want 374", Stages(6357))
	}
	if ChipsPerStage() != 17 {
		t.Errorf("ChipsPerStage = %d", ChipsPerStage())
	}
}

func TestGenerateSmallClean(t *testing.T) {
	d, rep, err := Generate(Config{Chips: 3 * ChipsPerStage()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MacroUses == 0 || rep.Primitives == 0 {
		t.Errorf("report empty: %+v", rep)
	}
	res, err := verify.Run(d, verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors() {
		for _, v := range res.Violations[:min(len(res.Violations), 8)] {
			t.Errorf("violation: %v\n  data:  %v\n  clock: %v", v, v.DataWave, v.ClockWave)
		}
	}
	if len(res.Undefined) == 0 {
		t.Error("the control inputs should appear in the cross-reference listing")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Source(Config{Chips: 40})
	b := Source(Config{Chips: 40})
	if a != b {
		t.Error("generation must be deterministic")
	}
}

func TestGenerateInjectedErrors(t *testing.T) {
	d, _, err := Generate(Config{Chips: ChipsPerStage(), Inject: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := verify.Run(d, verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	slow := 0
	for _, v := range res.Violations {
		if v.Kind == verify.SetupViolation && strings.Contains(v.Prim, "SLOW") {
			slow++
		}
	}
	if slow < 2 {
		t.Errorf("expected both injected slow paths flagged, got %d: %v", slow, res.Violations)
	}
	// The clean pipeline itself stays clean.
	for _, v := range res.Violations {
		if !strings.Contains(v.Prim, "SLOW") {
			t.Errorf("injection leaked into the clean pipeline: %v", v)
		}
	}
}

func TestGenerateWithCases(t *testing.T) {
	d, _, err := Generate(Config{Chips: ChipsPerStage(), Cases: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Cases) != 2 {
		t.Fatalf("cases = %d", len(d.Cases))
	}
	res, err := verify.Run(d, verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cases) != 2 {
		t.Fatalf("case results = %d", len(res.Cases))
	}
	// Incremental reevaluation: the second case touches only the cone of
	// the control signal.
	if res.Cases[1].PrimEvals >= res.Cases[0].PrimEvals {
		t.Errorf("case 2 evals %d >= case 1 evals %d", res.Cases[1].PrimEvals, res.Cases[0].PrimEvals)
	}
}

func TestCensusShape(t *testing.T) {
	// Table 3-2's shape: vectored primitives, ~1.3–1.5 per chip, average
	// width well above 1.
	_, rep, err := Generate(Config{Chips: 10 * ChipsPerStage()})
	if err != nil {
		t.Fatal(err)
	}
	chips := 10 * ChipsPerStage()
	perChip := float64(rep.Primitives) / float64(chips)
	if perChip < 1.0 || perChip > 2.0 {
		t.Errorf("primitives per chip = %.2f, want ≈1.3–1.5", perChip)
	}
	if rep.AvgWidth() < 3 {
		t.Errorf("average primitive width = %.1f, want comfortably vectored", rep.AvgWidth())
	}
	if rep.ScalarBits <= rep.Primitives*2 {
		t.Errorf("scalarised count %d should far exceed vectored %d", rep.ScalarBits, rep.Primitives)
	}
	if got := len(rep.TypesUsed()); got < 6 {
		t.Errorf("only %d primitive types used", got)
	}
}

// TestVariableCycleNeedsCases is the §3.3.2 design-style claim at scale:
// the variable-length-cycle tail fails under the single symbolic pass and
// passes once the designer's MODE cases are analysed.
func TestVariableCycleNeedsCases(t *testing.T) {
	without, _, err := Generate(Config{Chips: ChipsPerStage(), VariableCycle: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := verify.Run(without, verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range res.Violations {
		if strings.Contains(v.Prim, "VC REG") {
			found = true
		}
	}
	if !found {
		t.Fatalf("pessimistic pass should flag the variable-cycle register: %v", res.Violations)
	}

	with, _, err := Generate(Config{Chips: ChipsPerStage(), VariableCycle: true, Cases: 2})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := verify.Run(with, verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Errors() {
		t.Errorf("case analysis should close the variable-cycle timing: %v", res2.Violations)
	}
	if len(res2.Cases) != 2 {
		t.Errorf("cases = %d", len(res2.Cases))
	}
}
