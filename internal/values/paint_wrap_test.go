package values

import (
	"testing"

	"scaldtv/internal/tick"
)

// TestPaintWrapMultiSegment paints wrapping spans over waveforms that
// already carry several segments, checking that splits, merges and the
// cycle-boundary join all normalize correctly.
func TestPaintWrapMultiSegment(t *testing.T) {
	// Base: 0..10 V0, 10..20 V1, 20..35 VS, 35..50 VC (times in ns).
	base := FromSpans(p50, VC,
		Span{Start: 0, End: ns(10), V: V0},
		Span{Start: ns(10), End: ns(20), V: V1},
		Span{Start: ns(20), End: ns(35), V: VS},
	)
	cases := []struct {
		name       string
		start, end tick.Time
		v          Value
		samples    map[tick.Time]Value
		maxSegs    int
	}{
		{
			name: "wrap across three segments", start: ns(30), end: ns(15), v: VR,
			samples: map[tick.Time]Value{
				ns(29): VS, ns(30): VR, ns(45): VR, 0: VR, ns(14): VR, ns(15): V1, ns(19): V1,
			},
			maxSegs: 4,
		},
		{
			name: "wrap rejoining equal head and tail", start: ns(35), end: ns(10), v: V0,
			// The painted head [0,10) and the original V0 [0,10) agree, and
			// the painted tail joins it across the boundary.
			samples: map[tick.Time]Value{
				ns(36): V0, ns(49): V0, 0: V0, ns(9): V0, ns(10): V1, ns(34): VS,
			},
			maxSegs: 4,
		},
		{
			name: "wrap covering everything but a sliver", start: ns(20), end: ns(19), v: VU,
			samples: map[tick.Time]Value{
				ns(20): VU, 0: VU, ns(18): VU, ns(19): V1,
			},
			maxSegs: 3,
		},
		{
			name: "negative wrapped span", start: ns(-15), end: ns(5), v: VF,
			// -15 ≡ 35: paints [35,50) and [0,5).
			samples: map[tick.Time]Value{
				ns(35): VF, ns(49): VF, 0: VF, ns(4): VF, ns(5): V0, ns(34): VS,
			},
			maxSegs: 5,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			w := base.Paint(c.start, c.end, c.v)
			if err := w.Check(); err != nil {
				t.Fatal(err)
			}
			for at, want := range c.samples {
				if got := w.At(at); got != want {
					t.Errorf("At(%v) = %v, want %v\n  %v", at, got, want, w)
				}
			}
			if len(w.Segs) > c.maxSegs {
				t.Errorf("normalization left %d segments (want <= %d): %v", len(w.Segs), c.maxSegs, w)
			}
		})
	}
}

// TestPaintWrapPreservesSkew locks that painting — wrapped or not —
// never disturbs the out-of-band skew carried by the waveform.
func TestPaintWrapPreservesSkew(t *testing.T) {
	w := Const(p50, V0).WithSkew(ns(3))
	for _, span := range [][2]tick.Time{{ns(10), ns(20)}, {ns(40), ns(10)}, {0, p50}, {ns(5), ns(5)}} {
		got := w.Paint(span[0], span[1], V1)
		if got.Skew != ns(3) {
			t.Errorf("Paint(%v, %v) changed skew to %v", span[0], span[1], got.Skew)
		}
		if err := got.Check(); err != nil {
			t.Errorf("Paint(%v, %v): %v", span[0], span[1], err)
		}
	}
}
