package eval

import (
	"bytes"
	"testing"

	"scaldtv/internal/netlist"
	"scaldtv/internal/tick"
	"scaldtv/internal/values"
)

// cacheFixture builds a design with two structurally identical AND gates on
// disjoint nets plus one gate with a different delay, and a signal state
// where the twin gates see semantically equal inputs.
func cacheFixture(t *testing.T) (*netlist.Design, Getter, WaveID, *values.Interner) {
	t.Helper()
	b := netlist.NewBuilder("cache-fixture")
	b.SetPeriod(50 * tick.NS)
	b.SetDefaultWire(tick.R(0, 2))
	a1, b1 := b.Net("A1 .S0-10"), b.Net("B1 .S5-20")
	a2, b2 := b.Net("A2 .S0-10"), b.Net("B2 .S5-20")
	o1, o2, o3 := b.Net("O1"), b.Net("O2"), b.Net("O3")
	b.Gate(netlist.KAnd, "G1", tick.R(1, 2), []netlist.NetID{o1}, netlist.Conns(a1), netlist.Conns(b1))
	b.Gate(netlist.KAnd, "G2", tick.R(1, 2), []netlist.NetID{o2}, netlist.Conns(a2), netlist.Conns(b2))
	b.Gate(netlist.KAnd, "G3", tick.R(1, 3), []netlist.NetID{o3}, netlist.Conns(a1), netlist.Conns(b1))
	d := b.MustBuild()

	in := values.NewInterner()
	sigs := make([]Signal, len(d.Nets))
	ids := make([]uint64, len(d.Nets))
	env := d.Env()
	for i := range d.Nets {
		w := values.Const(d.Period, values.VU)
		if d.Nets[i].Assert != nil {
			var err error
			w, err = d.Nets[i].Assert.Waveform(env)
			if err != nil {
				t.Fatal(err)
			}
		}
		sigs[i].Wave, ids[i] = in.Intern(w)
	}
	get := func(n netlist.NetID) Signal { return sigs[n] }
	id := func(n netlist.NetID) uint64 { return ids[n] }
	return d, get, id, in
}

// TestAppendKeyStructuralSharing: identical instances with semantically
// equal inputs on different nets produce identical keys; a parameter
// change produces a different key.
func TestAppendKeyStructuralSharing(t *testing.T) {
	d, get, id, _ := cacheFixture(t)
	k1 := AppendKey(nil, d, &d.Prims[0], get, id)
	k2 := AppendKey(nil, d, &d.Prims[1], get, id)
	k3 := AppendKey(nil, d, &d.Prims[2], get, id)
	if !bytes.Equal(k1, k2) {
		t.Errorf("structurally identical gates key differently:\n%x\n%x", k1, k2)
	}
	if bytes.Equal(k1, k3) {
		t.Error("gates with different delays share a key")
	}
}

// TestAppendKeyInputSensitivity: changing one input waveform changes the
// key; restoring it restores the key.
func TestAppendKeyInputSensitivity(t *testing.T) {
	d, _, _, in := cacheFixture(t)
	sigs := make([]Signal, len(d.Nets))
	ids := make([]uint64, len(d.Nets))
	for i := range d.Nets {
		sigs[i].Wave, ids[i] = in.Intern(values.Const(d.Period, values.VS))
	}
	get := func(n netlist.NetID) Signal { return sigs[n] }
	id := func(n netlist.NetID) uint64 { return ids[n] }
	p := &d.Prims[0]
	base := AppendKey(nil, d, p, get, id)

	a1 := p.In[0].Bits[0].Net
	saveW, saveID := sigs[a1].Wave, ids[a1]
	sigs[a1].Wave, ids[a1] = in.Intern(values.Const(d.Period, values.VC))
	changed := AppendKey(nil, d, p, get, id)
	if bytes.Equal(base, changed) {
		t.Error("changing an input waveform did not change the key")
	}
	sigs[a1].Wave, ids[a1] = saveW, saveID
	if restored := AppendKey(nil, d, p, get, id); !bytes.Equal(base, restored) {
		t.Error("restoring the input did not restore the key")
	}
}

// TestCacheRoundTrip: a stored evaluation is returned on hit, and the
// counters track hits and misses.
func TestCacheRoundTrip(t *testing.T) {
	d, get, id, _ := cacheFixture(t)
	c := NewCache()
	key := AppendKey(nil, d, &d.Prims[0], get, id)
	if _, _, ok := c.Get(key); ok {
		t.Fatal("empty cache reported a hit")
	}
	outs, err := Prim(d, &d.Prims[0], get)
	if err != nil {
		t.Fatal(err)
	}
	c.Put(key, outs, nil)
	cached, _, ok := c.Get(key)
	if !ok {
		t.Fatal("stored entry not found")
	}
	if len(cached) != len(outs) || !cached[0].Wave.Equal(outs[0].Wave) {
		t.Error("cached outputs differ from stored outputs")
	}
	// The structurally identical twin hits the same entry.
	twinKey := AppendKey(nil, d, &d.Prims[1], get, id)
	if _, _, ok := c.Get(twinKey); !ok {
		t.Error("structurally identical primitive missed the shared entry")
	}
	if hits, misses, entries := c.Stats(); hits != 2 || misses != 1 || entries != 1 {
		t.Errorf("stats = (%d hits, %d misses, %d entries), want (2, 1, 1)", hits, misses, entries)
	}
}

// TestCacheHitMatchesEvaluation: for every driving primitive in the
// fixture, the cached result equals a fresh evaluation.
func TestCacheHitMatchesEvaluation(t *testing.T) {
	d, get, id, _ := cacheFixture(t)
	c := NewCache()
	for pi := range d.Prims {
		p := &d.Prims[pi]
		key := AppendKey(nil, d, p, get, id)
		fresh, err := Prim(d, p, get)
		if err != nil {
			t.Fatal(err)
		}
		if cached, _, ok := c.Get(key); ok {
			for i := range fresh {
				if !cached[i].Wave.Equal(fresh[i].Wave) || cached[i].Dirs != fresh[i].Dirs {
					t.Errorf("prim %d: cached output %d differs from evaluation", pi, i)
				}
			}
			continue
		}
		c.Put(key, fresh, nil)
	}
}
