package cluster

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"scaldtv"
	"scaldtv/internal/report"
	"scaldtv/internal/serr"
	"scaldtv/internal/store"
	"scaldtv/internal/verify"
)

// exampleSources loads every example design with the component library
// appended, the same corpus the engine's own determinism tests lock.
func exampleSources(t *testing.T) map[string]string {
	t.Helper()
	designs, err := filepath.Glob(filepath.Join("..", "..", "examples", "*", "*.scald"))
	if err != nil {
		t.Fatal(err)
	}
	if len(designs) == 0 {
		t.Fatal("no .scald designs under examples/")
	}
	out := make(map[string]string, len(designs))
	for _, path := range designs {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		name := strings.TrimSuffix(filepath.Base(path), ".scald")
		out[name] = string(src) + "\n" + scaldtv.Library
	}
	return out
}

// startWorkers brings up n in-process engine workers on httptest servers
// and returns their endpoints.
func startWorkers(t *testing.T, n int, st *store.Store) []string {
	t.Helper()
	endpoints := make([]string, n)
	for i := range endpoints {
		w := NewWorker(WorkerConfig{Store: st})
		srv := httptest.NewServer(w.Handler())
		t.Cleanup(srv.Close)
		endpoints[i] = srv.URL
	}
	return endpoints
}

func testCoordinator(t *testing.T, endpoints []string) *Coordinator {
	t.Helper()
	c := NewCoordinator(CoordinatorConfig{
		Endpoints:     endpoints,
		Backoff:       time.Millisecond,
		ProbeInterval: 10 * time.Millisecond,
	})
	t.Cleanup(c.Close)
	return c
}

// TestClusterByteDeterminism is the distributed half of the report
// determinism contract: for every example design, the merged report of a
// coordinator over 1, 2 and 4 workers — across per-job worker counts and
// tape settings — is byte-identical to a local single-process
// `scaldtv -json` run.
func TestClusterByteDeterminism(t *testing.T) {
	sources := exampleSources(t)
	endpoints := startWorkers(t, 4, nil)
	coords := map[int]*Coordinator{
		1: testCoordinator(t, endpoints[:1]),
		2: testCoordinator(t, endpoints[:2]),
		4: testCoordinator(t, endpoints),
	}
	for name, src := range sources {
		t.Run(name, func(t *testing.T) {
			for _, opts := range []verify.Options{
				{Workers: 1},
				{Workers: 8},
				{Workers: 1, NoTape: true},
				{Workers: 8, NoTape: true},
			} {
				res, err := scaldtv.VerifySource(src, opts)
				if err != nil {
					t.Fatal(err)
				}
				want, err := scaldtv.JSONReport(res)
				if err != nil {
					t.Fatal(err)
				}
				for shards, c := range coords {
					got, _, err := c.Verify(context.Background(), src, opts)
					if err != nil {
						t.Fatalf("shards=%d opts=%+v: %v", shards, opts, err)
					}
					if !bytes.Equal(got, want) {
						t.Errorf("shards=%d opts=%+v: distributed report differs from local run\n--- got ---\n%s\n--- want ---\n%s",
							shards, opts, got, want)
					}
				}
			}
		})
	}
}

// TestClusterExploreAndStatistical extends the distributed determinism
// contract to the indivisible whole-run modes: exploration ships as one
// pinned sub-job, the statistical delay model partitions like any other
// run (site probabilities derive from per-case margins in case order).
func TestClusterExploreAndStatistical(t *testing.T) {
	sources := exampleSources(t)
	c := testCoordinator(t, startWorkers(t, 2, nil))
	for _, sub := range []struct {
		name, example string
		opts          verify.Options
	}{
		{"explore", "caseanalysis", verify.Options{Workers: 1, Explore: true}},
		{"statistical", "selftimed", verify.Options{Workers: 1, Delays: verify.DelayStatistical}},
	} {
		t.Run(sub.name, func(t *testing.T) {
			src := sources[sub.example]
			res, err := scaldtv.VerifySource(src, sub.opts)
			if err != nil {
				t.Fatal(err)
			}
			want, err := scaldtv.JSONReport(res)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := c.Verify(context.Background(), src, sub.opts)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("distributed %s report differs from local run\n--- got ---\n%s\n--- want ---\n%s",
					sub.name, got, want)
			}
		})
	}
}

// TestClusterStoreProvenance locks the worker-side store fast path: a
// repeated whole-run verification is answered from the worker's
// persistent store (provenance cached) with identical bytes.
func TestClusterStoreProvenance(t *testing.T) {
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	sources := exampleSources(t)
	src := sources["quickstart"]
	c := testCoordinator(t, startWorkers(t, 1, st))
	opts := verify.Options{Workers: 1}

	first, prov1, err := c.Verify(context.Background(), src, opts)
	if err != nil {
		t.Fatal(err)
	}
	if prov1 == string(store.Cached) {
		t.Fatalf("first run already cached (provenance %q)", prov1)
	}
	second, prov2, err := c.Verify(context.Background(), src, opts)
	if err != nil {
		t.Fatal(err)
	}
	if prov2 != string(store.Cached) {
		t.Errorf("second run provenance = %q, want %q", prov2, store.Cached)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("cached report differs from cold report\n--- cold ---\n%s\n--- cached ---\n%s", first, second)
	}
}

// flakyWorker proxies one real worker but kills the connection of the
// first nKill batch requests — a worker dying mid-batch, as seen from
// the coordinator.
func flakyWorker(t *testing.T, nKill int) string {
	t.Helper()
	w := NewWorker(WorkerConfig{})
	var killed atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/v1/batch") && killed.Add(1) <= int64(nKill) {
			hj, ok := rw.(http.Hijacker)
			if !ok {
				t.Fatal("response writer is not a Hijacker")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Fatal(err)
			}
			conn.Close() // mid-request connection death
			return
		}
		w.Handler().ServeHTTP(rw, r)
	}))
	t.Cleanup(srv.Close)
	return srv.URL
}

// TestClusterFailoverMidBatch kills a worker's connection mid-batch and
// asserts the re-dispatched partitions still merge into a report
// byte-identical to the local run, with the failure visible in the
// coordinator's counters and no error surfaced to the caller.
func TestClusterFailoverMidBatch(t *testing.T) {
	sources := exampleSources(t)
	src := sources["caseanalysis"] // multi-case: partitions actually split
	healthy := startWorkers(t, 1, nil)
	endpoints := []string{flakyWorker(t, 1), healthy[0]}
	c := testCoordinator(t, endpoints)

	opts := verify.Options{Workers: 1}
	res, err := scaldtv.VerifySource(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := scaldtv.JSONReport(res)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := c.Verify(context.Background(), src, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("post-failover report differs from local run\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	if st := c.Snapshot(); st.Failovers == 0 {
		t.Errorf("no failover recorded: %+v", st)
	}
	// The probe window is tiny in tests; the killed worker serves normally
	// afterwards, so it must come back and the next run must still match.
	deadline := time.Now().Add(2 * time.Second)
	for c.Healthy() < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if c.Healthy() != 2 {
		t.Fatalf("worker never recovered: healthy=%d", c.Healthy())
	}
	got2, _, err := c.Verify(context.Background(), src, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, want) {
		t.Errorf("post-recovery report differs from local run")
	}
}

// TestClusterNoWorkersReachable points the coordinator at closed ports:
// every run must fall back to a local engine run with identical bytes.
func TestClusterNoWorkersReachable(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // closed port: connections refused
	sources := exampleSources(t)
	src := sources["quickstart"]
	c := testCoordinator(t, []string{dead.URL})

	opts := verify.Options{Workers: 1}
	res, err := scaldtv.VerifySource(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := scaldtv.JSONReport(res)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := c.Verify(context.Background(), src, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("local-fallback report differs from local run")
	}
	if st := c.Snapshot(); st.LocalRuns == 0 {
		t.Errorf("no local fallback recorded: %+v", st)
	}
}

// TestClusterErrorKind locks the wire round-trip of structured errors: a
// parse failure on a worker surfaces to the coordinator's caller with
// kind parse, exactly as a local run would fail.
func TestClusterErrorKind(t *testing.T) {
	c := testCoordinator(t, startWorkers(t, 1, nil))
	_, _, err := c.Verify(context.Background(), "design \"BROKEN\"\nuse \"NO SUCH MACRO\" \"X\" ()\n", verify.Options{})
	if err == nil {
		t.Fatal("verify of a broken design succeeded")
	}
	if kind := serr.KindOf(err); kind != serr.Parse && kind != serr.Elaborate {
		t.Errorf("error kind = %v, want parse or elaborate (err: %v)", kind, err)
	}
}

// TestRingOwnership locks the consistent-hash contract: stable owners,
// reasonable spread, and minimal movement when a worker dies (only the
// dead worker's keys move).
func TestRingOwnership(t *testing.T) {
	const workers, keys = 4, 4096
	r := newRing(workers)
	counts := make([]int, workers)
	owners := make([]int, keys)
	for k := 0; k < keys; k++ {
		o := r.owner(srcHash(fmt.Sprintf("key-%d", k)), nil)
		if o < 0 || o >= workers {
			t.Fatalf("key %d: owner %d out of range", k, o)
		}
		owners[k] = o
		counts[o]++
	}
	for w, n := range counts {
		if n < keys/workers/2 || n > keys*2/workers {
			t.Errorf("worker %d owns %d of %d keys — spread too uneven: %v", w, n, keys, counts)
		}
	}
	dead := 1
	moved := 0
	for k := 0; k < keys; k++ {
		o := r.owner(srcHash(fmt.Sprintf("key-%d", k)), func(i int) bool { return i != dead })
		if o == dead {
			t.Fatalf("key %d assigned to the dead worker", k)
		}
		if owners[k] != dead && o != owners[k] {
			t.Errorf("key %d moved from alive worker %d to %d", k, owners[k], o)
		}
		if owners[k] == dead {
			moved++
		}
	}
	if moved != counts[dead] {
		t.Errorf("moved %d keys, want exactly the dead worker's %d", moved, counts[dead])
	}
	if r.owner(srcHash("x"), func(int) bool { return false }) != -1 {
		t.Error("owner with no alive workers != -1")
	}
}

// TestMergePartsEquivalence is the unit-level merge contract: splitting
// a run's cases at every possible point and merging the two part
// renderings reproduces the full report byte for byte.
func TestMergePartsEquivalence(t *testing.T) {
	sources := exampleSources(t)
	for name, src := range sources {
		t.Run(name, func(t *testing.T) {
			d, err := scaldtv.Compile(src)
			if err != nil {
				t.Fatal(err)
			}
			if len(d.Cases) < 2 {
				t.Skip("single-case design: nothing to split")
			}
			opts := verify.Options{Workers: 1}
			full, err := scaldtv.VerifyContext(context.Background(), d, opts)
			if err != nil {
				t.Fatal(err)
			}
			want, err := scaldtv.JSONReport(full)
			if err != nil {
				t.Fatal(err)
			}
			for cut := 1; cut < len(d.Cases); cut++ {
				var parts []*report.Report
				for _, sub := range [][2]int{{0, cut}, {cut, len(d.Cases)}} {
					rd := d.WithCases(d.Cases[sub[0]:sub[1]])
					res, err := scaldtv.VerifyContext(context.Background(), rd, opts)
					if err != nil {
						t.Fatal(err)
					}
					parts = append(parts, report.NewPartial(res))
				}
				got, err := report.MergeParts(parts)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("cut=%d: merged parts differ from full report\n--- got ---\n%s\n--- want ---\n%s",
						cut, got, want)
				}
			}
		})
	}
}
