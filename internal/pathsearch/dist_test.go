package pathsearch

import (
	"math"
	"testing"

	"scaldtv/internal/netlist"
	"scaldtv/internal/tick"
)

// Table tests for the quadrature distribution machinery, focused on the
// edge cases interval analysis hides: zero-width delay ranges (exact
// delays) and single-point distributions, alone and convolved with wide
// ranges.

const step = tick.Time(250) // 0.25 ns grid

func TestRangeDistTable(t *testing.T) {
	tests := []struct {
		name      string
		r         tick.Range
		wantLen   int     // 0 = any length > 1
		wantMean  float64 // grid time
		meanTol   float64
		wantStart tick.Time
	}{
		{name: "zero width at zero", r: tick.R(0, 0), wantLen: 1, wantMean: 0, wantStart: 0},
		{name: "zero width nonzero", r: tick.R(10, 10), wantLen: 1, wantMean: 10000, wantStart: 10000},
		{name: "zero width off grid", r: tick.Range{Min: 10100, Max: 10100}, wantLen: 1, wantMean: 10000, wantStart: 10000},
		{name: "sub-step width collapses", r: tick.Range{Min: 10000, Max: 10100}, wantLen: 1, wantMean: 10000, wantStart: 10000},
		{name: "normal range", r: tick.R(5, 15), wantMean: 10000, meanTol: float64(step)},
		{name: "inverted range normalised", r: tick.Range{Min: 15000, Max: 5000}, wantMean: 10000, meanTol: float64(step)},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			d := RangeDist(tc.r, step)
			if tc.wantLen > 0 && len(d.P) != tc.wantLen {
				t.Fatalf("len(P) = %d, want %d", len(d.P), tc.wantLen)
			}
			if tc.wantLen == 0 && len(d.P) <= 1 {
				t.Fatalf("len(P) = %d, want a spread distribution", len(d.P))
			}
			if m := d.Mass(); math.Abs(m-1) > 1e-9 {
				t.Errorf("mass = %v, want 1", m)
			}
			if math.Abs(d.Mean()-tc.wantMean) > tc.meanTol+1e-9 {
				t.Errorf("mean = %v, want %v ± %v", d.Mean(), tc.wantMean, tc.meanTol)
			}
			if tc.wantLen == 1 && d.Start != tc.wantStart {
				t.Errorf("start = %v, want %v", d.Start, tc.wantStart)
			}
			if d.Start%step != 0 {
				t.Errorf("start %v not on the %v grid", d.Start, step)
			}
		})
	}
}

func TestConvolveTable(t *testing.T) {
	point := func(ns float64) Dist { return PointDist(tick.FromNS(ns), step) }
	wide := RangeDist(tick.R(0, 12), step)
	tests := []struct {
		name     string
		a, b     Dist
		wantLen  int // 0 = any
		wantMean float64
		meanTol  float64
	}{
		{name: "point+point stays point", a: point(3), b: point(4), wantLen: 1, wantMean: 7000},
		{name: "point shifts wide", a: point(10), b: wide, wantLen: len(wide.P), wantMean: 16000, meanTol: float64(step)},
		{name: "wide shifted by point", a: wide, b: point(10), wantLen: len(wide.P), wantMean: 16000, meanTol: float64(step)},
		{name: "empty identity left", a: Dist{}, b: wide, wantLen: len(wide.P), wantMean: 6000, meanTol: float64(step)},
		{name: "empty identity right", a: wide, b: Dist{}, wantLen: len(wide.P), wantMean: 6000, meanTol: float64(step)},
		{name: "wide+wide adds means", a: wide, b: wide, wantMean: 12000, meanTol: 2 * float64(step)},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			d := Convolve(tc.a, tc.b)
			if tc.wantLen > 0 && len(d.P) != tc.wantLen {
				t.Fatalf("len(P) = %d, want %d", len(d.P), tc.wantLen)
			}
			if m := d.Mass(); math.Abs(m-1) > 1e-9 {
				t.Errorf("mass = %v, want 1", m)
			}
			if math.Abs(d.Mean()-tc.wantMean) > tc.meanTol+1e-9 {
				t.Errorf("mean = %v, want %v ± %v", d.Mean(), tc.wantMean, tc.meanTol)
			}
		})
	}
}

func TestCombineMaxMinPoints(t *testing.T) {
	a := PointDist(tick.FromNS(5), step)
	b := PointDist(tick.FromNS(8), step)
	if got := CombineMax(a, b); math.Abs(got.Mean()-8000) > 1e-9 {
		t.Errorf("max of points: mean %v, want 8000", got.Mean())
	}
	if got := CombineMin(a, b); math.Abs(got.Mean()-5000) > 1e-9 {
		t.Errorf("min of points: mean %v, want 5000", got.Mean())
	}
	// Max of a distribution with itself shifts mass late, min shifts early.
	w := RangeDist(tick.R(0, 12), step)
	if CombineMax(w, w).Mean() <= w.Mean() {
		t.Error("max combine must not move the mean earlier")
	}
	if CombineMin(w, w).Mean() >= w.Mean() {
		t.Error("min combine must not move the mean later")
	}
	// Mass is conserved by both combines.
	if m := CombineMax(w, a).Mass(); math.Abs(m-1) > 1e-9 {
		t.Errorf("max combine mass = %v", m)
	}
	if m := CombineMin(w, a).Mass(); math.Abs(m-1) > 1e-9 {
		t.Errorf("min combine mass = %v", m)
	}
}

func TestCDFMonotoneAndBounds(t *testing.T) {
	d := Convolve(RangeDist(tick.R(2, 10), step), RangeDist(tick.R(1, 5), step))
	prev := -1.0
	for x := tick.Time(0); x <= tick.FromNS(20); x += step {
		f := d.CDF(x)
		if f < prev-1e-12 {
			t.Fatalf("CDF not monotone at %v: %v < %v", x, f, prev)
		}
		if f < 0 || f > 1 {
			t.Fatalf("CDF out of bounds at %v: %v", x, f)
		}
		prev = f
	}
	if f := d.CDF(tick.FromNS(20)); math.Abs(f-1) > 1e-9 {
		t.Errorf("CDF beyond support = %v, want 1", f)
	}
	if f := d.CDF(0); f > 1e-9 {
		t.Errorf("CDF before support = %v, want 0", f)
	}
}

// TestAnalyzeDistChain drives the DP over a three-buffer chain, one of
// the buffers an exact (zero-width) delay, and checks the end-pin
// distribution against the worst-case interval analysis.
func TestAnalyzeDistChain(t *testing.T) {
	d := statChain(t, tick.R(5, 15), tick.R(10, 10), tick.R(2, 8))
	sites, loops := AnalyzeDist(d, 0)
	if len(loops) != 0 {
		t.Fatalf("unexpected loops: %v", loops)
	}
	if len(sites) == 0 {
		t.Fatal("no site distributions")
	}
	wc, err := Analyze(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, sd := range sites {
		if m := sd.Late.Mass(); math.Abs(m-1) > 1e-6 {
			t.Errorf("%s: late mass %v", sd.To, m)
		}
		// The quadrature support must sit inside the worst-case interval
		// (up to one grid cell of discretisation).
		var wcMin, wcMax tick.Time = -1, -1
		for _, ep := range wc.Endpoints {
			if ep.To == sd.To && ep.From == sd.From {
				wcMin, wcMax = ep.Min, ep.Max
			}
		}
		if wcMax < 0 {
			t.Fatalf("%s: no matching worst-case endpoint", sd.To)
		}
		if sd.WCMin != wcMin || sd.WCMax != wcMax {
			t.Errorf("%s: WC [%v,%v], Analyze says [%v,%v]", sd.To, sd.WCMin, sd.WCMax, wcMin, wcMax)
		}
		stp := sd.Late.Step
		if p := sd.Late.CDF(wcMax + stp); math.Abs(p-1) > 1e-6 {
			t.Errorf("%s: mass beyond worst-case max (CDF(max)=%v)", sd.To, p)
		}
		if p := sd.Early.CDF(wcMin - stp - 1); p > 1e-6 {
			t.Errorf("%s: mass before worst-case min (CDF=%v)", sd.To, p)
		}
	}
}

// statChain builds IN -> buf(r1) -> buf(r2) -> buf(r3) -> REG.D so the
// register input terminates one path with the given delay ranges.
func statChain(t *testing.T, rs ...tick.Range) *netlist.Design {
	t.Helper()
	b := netlist.NewBuilder("DIST CHAIN")
	b.SetPeriod(100 * tick.NS)
	b.SetDefaultWire(tick.Range{})
	prev := b.Net("IN .S0-50")
	for i, r := range rs {
		next := b.Net("N" + string(rune('0'+i)))
		b.Buf("B"+string(rune('0'+i)), r, []netlist.NetID{next}, netlist.Conns(prev))
		prev = next
	}
	q := b.Net("Q")
	b.Register("REG", tick.R(1, 2), []netlist.NetID{q},
		netlist.Conn{Net: b.Net("CK .P40-60")}, netlist.Conns(prev))
	return b.MustBuild()
}
