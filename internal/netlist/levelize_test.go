package netlist

import (
	"fmt"
	"testing"

	"scaldtv/internal/tick"
)

// buildChain makes IN -> B0 -> B1 -> ... -> B(n-1), one buffer per net.
func buildBufChain(t *testing.T, n int) *Design {
	t.Helper()
	b := NewBuilder("chain")
	b.SetPeriod(50 * tick.NS)
	prev := b.Net("IN .S0-50")
	for i := 0; i < n; i++ {
		o := b.Net(fmt.Sprintf("N%d", i))
		b.Buf(fmt.Sprintf("B%d", i), tick.R(1, 2), []NetID{o}, Conns(prev))
		prev = o
	}
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestLevelizeChain(t *testing.T) {
	d := buildBufChain(t, 5)
	l := d.Levelization()
	if len(l.Comps) != 5 {
		t.Fatalf("chain of 5 buffers: %d components, want 5", len(l.Comps))
	}
	if l.MaxLevel != 4 {
		t.Fatalf("MaxLevel = %d, want 4", l.MaxLevel)
	}
	if l.Feedback != 0 || len(l.Seq) != 0 {
		t.Fatalf("pure chain: feedback=%d seq=%v, want none", l.Feedback, l.Seq)
	}
	for pi := 0; pi < 5; pi++ {
		c := l.Comps[l.Comp[pi]]
		if len(c.Members) != 1 || c.Members[0] != PrimID(pi) {
			t.Fatalf("primitive %d not a singleton component: %+v", pi, c)
		}
		if int(c.Level) != pi {
			t.Errorf("B%d at level %d, want %d", pi, c.Level, pi)
		}
	}
	// Every level holds exactly one component.
	for lv, comps := range l.Levels {
		if len(comps) != 1 {
			t.Errorf("level %d holds %d components, want 1", lv, len(comps))
		}
	}
}

func TestLevelizeCombinationalLoop(t *testing.T) {
	b := NewBuilder("loop")
	b.SetPeriod(50 * tick.NS)
	in := b.Net("IN .S0-50")
	a := b.Net("A")
	x := b.Net("X")
	b.Gate(KOr, "G1", tick.R(1, 2), []NetID{a}, Conns(in), Conns(x))
	b.Gate(KOr, "G2", tick.R(1, 2), []NetID{x}, Conns(a))
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	l := d.Levelization()
	if l.Comp[0] != l.Comp[1] {
		t.Fatalf("loop gates in different components %d and %d", l.Comp[0], l.Comp[1])
	}
	c := l.Comps[l.Comp[0]]
	if !c.Feedback || c.Seq {
		t.Fatalf("loop component: feedback=%v seq=%v, want feedback, not seq", c.Feedback, c.Seq)
	}
	if l.Feedback != 1 {
		t.Errorf("Feedback = %d, want 1", l.Feedback)
	}
}

func TestLevelizeSelfLoop(t *testing.T) {
	b := NewBuilder("selfloop")
	b.SetPeriod(50 * tick.NS)
	in := b.Net("IN .S0-50")
	x := b.Net("X")
	b.Gate(KOr, "G", tick.R(1, 2), []NetID{x}, Conns(in), Conns(x))
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	l := d.Levelization()
	if c := l.Comps[l.Comp[0]]; !c.Feedback {
		t.Fatalf("self-loop gate not marked feedback: %+v", c)
	}
}

// TestLevelizeRegisterRingCut: a ring of register-separated stages must NOT
// collapse into one giant component — the sequential edges out of the
// registers are cut, leaving each stage's combinational logic levelized.
func TestLevelizeRegisterRingCut(t *testing.T) {
	const stages = 4
	b := NewBuilder("ring")
	b.SetPeriod(50 * tick.NS)
	ck := b.Net("MCK .P0-4")
	q := make([]NetID, stages)
	for s := 0; s < stages; s++ {
		q[s] = b.Net(fmt.Sprintf("Q%d", s))
	}
	for s := 0; s < stages; s++ {
		in := q[(s+stages-1)%stages]
		n1 := b.Net(fmt.Sprintf("S%d N1", s))
		n2 := b.Net(fmt.Sprintf("S%d N2", s))
		b.Gate(KOr, fmt.Sprintf("S%d G1", s), tick.R(1, 2), []NetID{n1}, Conns(in))
		b.Gate(KOr, fmt.Sprintf("S%d G2", s), tick.R(1, 2), []NetID{n2}, Conns(n1))
		b.Register(fmt.Sprintf("S%d REG", s), tick.R(1, 2), []NetID{q[s]}, Conn{Net: ck}, Conns(n2))
	}
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	l := d.Levelization()
	for ci, c := range l.Comps {
		if len(c.Members) != 1 {
			t.Fatalf("component %d has %d members — the ring was not cut: %+v", ci, len(c.Members), c)
		}
	}
	if len(l.Seq) != stages {
		t.Fatalf("%d sequential components, want %d", len(l.Seq), stages)
	}
	// Each stage's G1 feeds its G2, one level apart.
	for s := 0; s < stages; s++ {
		g1 := l.Comps[l.Comp[3*s]]
		g2 := l.Comps[l.Comp[3*s+1]]
		if g2.Level != g1.Level+1 {
			t.Errorf("stage %d: G1 level %d, G2 level %d, want consecutive", s, g1.Level, g2.Level)
		}
		if reg := l.Comps[l.Comp[3*s+2]]; !reg.Seq || reg.Level != -1 {
			t.Errorf("stage %d register: seq=%v level=%d, want sequential", s, reg.Seq, reg.Level)
		}
	}
}

// TestLevelizeClockPinnedCut: edges through a clock-asserted driven net are
// dropped — the verifier never propagates stores through a pinned net.
func TestLevelizeClockPinnedCut(t *testing.T) {
	b := NewBuilder("pinned")
	b.SetPeriod(50 * tick.NS)
	raw := b.Net("RAW .P0-4")
	gck := b.Net("GCK .P1-5") // driven, clock-pinned
	o := b.Net("O")
	b.Buf("CKBUF", tick.R(1, 1), []NetID{gck}, Conns(raw))
	b.Gate(KOr, "SINK", tick.R(1, 2), []NetID{o}, Conns(gck))
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	l := d.Levelization()
	sink := l.Comps[l.Comp[1]]
	if sink.Level != 0 {
		t.Errorf("sink behind a pinned net at level %d, want 0 (edge cut)", sink.Level)
	}
}

func TestLevelizeWiredOrGroup(t *testing.T) {
	b := NewBuilder("wired")
	b.SetPeriod(50 * tick.NS)
	b.SetWiredOr(true)
	a := b.Net("A .S0-50")
	c := b.Net("C .S0-50")
	o := b.Net("O")
	b.Buf("D1", tick.R(1, 2), []NetID{o}, Conns(a))
	b.Buf("D2", tick.R(1, 2), []NetID{o}, Conns(c))
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	l := d.Levelization()
	if l.Comp[0] != l.Comp[1] {
		t.Fatalf("wired-OR co-drivers in different components %d and %d", l.Comp[0], l.Comp[1])
	}
	if c := l.Comps[l.Comp[0]]; !c.Feedback {
		t.Errorf("wired-OR group should iterate with a scoped worklist: %+v", c)
	}
}

func TestLevelizeCheckersExcluded(t *testing.T) {
	b := NewBuilder("chk")
	b.SetPeriod(50 * tick.NS)
	in := b.Net("IN .S0-50")
	ck := b.Net("CK .P0-4")
	o := b.Net("O")
	b.Buf("B", tick.R(1, 2), []NetID{o}, Conns(in))
	b.SetupHold("CHK", tick.NS, tick.NS, Conns(o), Conn{Net: ck})
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	l := d.Levelization()
	if l.Comp[1] != -1 {
		t.Errorf("checker assigned component %d, want -1", l.Comp[1])
	}
	if l.Comp[0] == -1 {
		t.Errorf("driving buffer got no component")
	}
}

func TestLevelizationCachedAndInvalidated(t *testing.T) {
	d := buildBufChain(t, 3)
	l1 := d.Levelization()
	if l2 := d.Levelization(); l1 != l2 {
		t.Fatalf("Levelization not cached: %p vs %p", l1, l2)
	}
	d.RebuildFanout()
	if l3 := d.Levelization(); l1 == l3 {
		t.Fatalf("RebuildFanout did not invalidate the levelization cache")
	}
}

// TestLevelizeDeterministic: two computations over the same design yield
// identical structures (component numbering included).
func TestLevelizeDeterministic(t *testing.T) {
	d := buildBufChain(t, 7)
	l1 := d.Levelization()
	d.RebuildFanout()
	l2 := d.Levelization()
	if len(l1.Comps) != len(l2.Comps) || l1.MaxLevel != l2.MaxLevel {
		t.Fatalf("shape differs: %d/%d comps, maxlevel %d/%d",
			len(l1.Comps), len(l2.Comps), l1.MaxLevel, l2.MaxLevel)
	}
	for i := range l1.Comp {
		if l1.Comp[i] != l2.Comp[i] {
			t.Fatalf("component assignment differs at primitive %d: %d vs %d", i, l1.Comp[i], l2.Comp[i])
		}
	}
	for ci := range l1.Comps {
		a, b := l1.Comps[ci], l2.Comps[ci]
		if a.Level != b.Level || a.Seq != b.Seq || a.Feedback != b.Feedback || len(a.Members) != len(b.Members) {
			t.Fatalf("component %d differs: %+v vs %+v", ci, a, b)
		}
	}
}
