// Package lint performs structural design-rule checks complementary to
// timing verification — the review a methodology-enforcing SCALD shop
// would run on every design drop.  The rules encode the paper's design
// discipline for synchronous sequential systems:
//
//   - every feedback path must contain a clocked storage element (§1.2.2:
//     state "is never stored by just creating feedback paths within the
//     logic") — combinational loops are errors;
//   - storage elements need their set-up/hold constraints checked, as
//     every Chapter-3 component model pairs a register with its checker;
//   - gated clocks (storage clocked from combinational logic) need a
//     minimum-pulse-width check, the Fig 1-5 hazard class;
//   - storage clock/enable pins must trace back to an asserted clock;
//   - driven signals that nothing reads deserve a look.
package lint

import (
	"fmt"
	"sort"

	"scaldtv/internal/assertion"
	"scaldtv/internal/netlist"
)

// Severity ranks a finding.
type Severity int

// Severities.
const (
	Warning Severity = iota
	Error
)

// String names the severity.
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Finding is one design-rule hit.
type Finding struct {
	Rule     string
	Severity Severity
	Subject  string // instance or signal name
	Detail   string
}

// String renders the finding.
func (f Finding) String() string {
	return fmt.Sprintf("%s [%s] %s: %s", f.Severity, f.Rule, f.Subject, f.Detail)
}

// Check runs every rule and returns the findings, errors first.
func Check(d *netlist.Design) []Finding {
	var out []Finding
	out = append(out, combLoops(d)...)
	out = append(out, uncheckedStorage(d)...)
	out = append(out, gatedClockWidth(d)...)
	out = append(out, unassertedClocks(d)...)
	out = append(out, danglingOutputs(d)...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Severity > out[j].Severity })
	return out
}

// combLoops flags feedback paths with no storage element in them.
func combLoops(d *netlist.Design) []Finding {
	n := len(d.Nets)
	adj := make([][]int32, n)
	for pi := range d.Prims {
		p := &d.Prims[pi]
		if p.Kind.IsStorage() || p.Kind.IsChecker() {
			continue
		}
		seen := map[int32]bool{}
		for _, port := range p.In {
			for _, c := range port.Bits {
				if seen[int32(c.Net)] {
					continue
				}
				seen[int32(c.Net)] = true
				for _, op := range p.Out {
					for _, o := range op.Bits {
						adj[c.Net] = append(adj[c.Net], int32(o))
					}
				}
			}
		}
	}
	indeg := make([]int, n)
	for _, es := range adj {
		for _, e := range es {
			indeg[e]++
		}
	}
	queue := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, int32(i))
		}
	}
	removed := 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		removed++
		for _, e := range adj[u] {
			indeg[e]--
			if indeg[e] == 0 {
				queue = append(queue, e)
			}
		}
	}
	var out []Finding
	if removed < n {
		var names []string
		for i := 0; i < n; i++ {
			if indeg[i] > 0 {
				names = append(names, d.Nets[i].Name)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			out = append(out, Finding{
				Rule: "comb-loop", Severity: Error, Subject: name,
				Detail: "combinational feedback with no storage element in the loop (§1.2.2)",
			})
		}
	}
	return out
}

// uncheckedStorage flags storage elements whose data nets feed no
// set-up/hold checker clocked compatibly.
func uncheckedStorage(d *netlist.Design) []Finding {
	// Nets observed by any checker's data port.
	checked := map[netlist.NetID]bool{}
	for pi := range d.Prims {
		p := &d.Prims[pi]
		if p.Kind == netlist.KSetupHold || p.Kind == netlist.KSetupRiseHoldFall {
			for _, c := range p.In[0].Bits {
				checked[c.Net] = true
			}
		}
	}
	var out []Finding
	for pi := range d.Prims {
		p := &d.Prims[pi]
		if !p.Kind.IsStorage() {
			continue
		}
		covered := false
		for _, c := range p.In[1].Bits {
			if checked[c.Net] {
				covered = true
				break
			}
		}
		if !covered {
			out = append(out, Finding{
				Rule: "unchecked-storage", Severity: Warning, Subject: p.Name,
				Detail: "no SETUP HOLD CHK observes this element's data input (cf. Fig 3-7)",
			})
		}
	}
	return out
}

// gatedClockWidth flags storage clocked from combinational logic without a
// minimum-pulse-width check on the gated clock net.
func gatedClockWidth(d *netlist.Design) []Finding {
	widthChecked := map[netlist.NetID]bool{}
	for pi := range d.Prims {
		p := &d.Prims[pi]
		if p.Kind == netlist.KMinPulse {
			widthChecked[p.In[0].Bits[0].Net] = true
		}
	}
	var out []Finding
	for pi := range d.Prims {
		p := &d.Prims[pi]
		if !p.Kind.IsStorage() {
			continue
		}
		ckNet := p.In[0].Bits[0].Net
		drv := d.Nets[ckNet].Driver
		if drv == netlist.NoDriver {
			continue
		}
		dk := d.Prims[drv].Kind
		if dk.IsGate() && dk != netlist.KBuf && dk != netlist.KNot && !widthChecked[ckNet] {
			out = append(out, Finding{
				Rule: "gated-clock-width", Severity: Warning, Subject: p.Name,
				Detail: fmt.Sprintf("clock %q is gated by %q with no MIN PULSE WIDTH check (Fig 1-5 hazard class)",
					d.Nets[ckNet].Name, d.Prims[drv].Name),
			})
		}
	}
	return out
}

// unassertedClocks flags storage clock pins that trace back to signals
// with no clock assertion.
func unassertedClocks(d *netlist.Design) []Finding {
	memo := map[netlist.NetID]int{} // 0 unknown, 1 asserted, 2 not
	var trace func(n netlist.NetID, depth int) bool
	trace = func(n netlist.NetID, depth int) bool {
		if depth > 200 {
			return false
		}
		if v, ok := memo[n]; ok {
			return v == 1
		}
		memo[n] = 2
		net := &d.Nets[n]
		ok := false
		if net.Assert != nil &&
			(net.Assert.Kind == assertion.Clock || net.Assert.Kind == assertion.PrecisionClock) {
			ok = true
		} else if net.Driver != netlist.NoDriver {
			p := &d.Prims[net.Driver]
			if !p.Kind.IsStorage() && !p.Kind.IsChecker() {
				for _, port := range p.In {
					for _, c := range port.Bits {
						if trace(c.Net, depth+1) {
							ok = true
						}
					}
				}
			}
		}
		if ok {
			memo[n] = 1
		}
		return ok
	}
	var out []Finding
	for pi := range d.Prims {
		p := &d.Prims[pi]
		if !p.Kind.IsStorage() {
			continue
		}
		ckNet := p.In[0].Bits[0].Net
		if !trace(ckNet, 0) {
			out = append(out, Finding{
				Rule: "unasserted-clock", Severity: Warning, Subject: p.Name,
				Detail: fmt.Sprintf("clock %q does not derive from any .C/.P asserted clock (§2.5.1)",
					d.Nets[ckNet].Name),
			})
		}
	}
	return out
}

// danglingOutputs flags driven nets nothing reads.
func danglingOutputs(d *netlist.Design) []Finding {
	var out []Finding
	for i := range d.Nets {
		n := &d.Nets[i]
		if n.Driver != netlist.NoDriver && len(n.Fanout) == 0 {
			out = append(out, Finding{
				Rule: "dangling-output", Severity: Warning, Subject: n.Name,
				Detail: fmt.Sprintf("driven by %q but read by nothing", d.Prims[n.Driver].Name),
			})
		}
	}
	return out
}
