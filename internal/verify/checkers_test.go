package verify

import (
	"strings"
	"testing"

	"scaldtv/internal/netlist"
	"scaldtv/internal/tick"
	"scaldtv/internal/values"
)

// chk builds a one-checker design around explicit data/clock assertions
// and returns its violations.
func chk(t *testing.T, kind netlist.Kind, setup, hold tick.Time, dataName, ckName string) []Violation {
	t.Helper()
	b := netlist.NewBuilder("chk")
	b.SetPeriod(50 * tick.NS)
	b.SetClockUnit(tick.NS)
	b.SetDefaultWire(tick.Range{})
	b.SetPrecisionSkew(tick.Range{})
	data := b.Net(dataName)
	ck := b.Net(ckName)
	switch kind {
	case netlist.KSetupHold:
		b.SetupHold("CHK", setup, hold, netlist.Conns(data), netlist.Conn{Net: ck})
	case netlist.KSetupRiseHoldFall:
		b.SetupRiseHoldFall("CHK", setup, hold, netlist.Conns(data), netlist.Conn{Net: ck})
	}
	res, err := Run(b.MustBuild(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Violations
}

func kinds(vs []Violation) []ViolationKind {
	var out []ViolationKind
	for _, v := range vs {
		out = append(out, v.Kind)
	}
	return out
}

func TestSetupHoldCleanMargins(t *testing.T) {
	// Edge at 20; data stable 10–40: setup 10, hold 20.
	vs := chk(t, netlist.KSetupHold, ns(5), ns(5), "D .S10-40", "CK .P20-30")
	if len(vs) != 0 {
		t.Errorf("clean margins flagged: %v", vs)
	}
}

func TestHoldViolationPath(t *testing.T) {
	// Data goes unstable 2 ns after the edge: hold 5 fails, setup passes.
	vs := chk(t, netlist.KSetupHold, ns(5), ns(5), "D .S10-22", "CK .P20-30")
	if len(vs) != 1 || vs[0].Kind != HoldViolation {
		t.Fatalf("violations = %v", vs)
	}
	if vs[0].Actual != ns(2) {
		t.Errorf("hold actual = %v, want 2 ns", vs[0].Actual)
	}
}

func TestNegativeHoldPath(t *testing.T) {
	// Negative hold: stability required only until edgeEnd-2.  Data going
	// unstable 1 ns after the edge passes a -2 ns hold...
	vs := chk(t, netlist.KSetupHold, ns(5), ns(-2), "D .S10-21", "CK .P20-30")
	for _, v := range vs {
		if v.Kind == HoldViolation {
			t.Errorf("negative hold should tolerate changes after the edge: %v", v)
		}
	}
	// ...but data unstable *at* the edge still fails set-up.
	vs2 := chk(t, netlist.KSetupHold, ns(5), ns(-2), "D .S22-40", "CK .P20-30")
	found := false
	for _, v := range vs2 {
		if v.Kind == SetupViolation {
			found = true
		}
	}
	if !found {
		t.Errorf("late data must still fail set-up: %v", vs2)
	}
}

func TestEnableViolationWithinEdgeWindow(t *testing.T) {
	// A clock with ±2 ns skew has a 4 ns edge window (18–22).  Data stable
	// long before and long after, but with a change nested inside the
	// window: both StableBack(18) and StableFwd(22) look fine, so only the
	// window check catches it.
	b := netlist.NewBuilder("window")
	b.SetPeriod(50 * tick.NS)
	b.SetClockUnit(tick.NS)
	b.SetDefaultWire(tick.Range{})
	b.SetPrecisionSkew(tick.R(-2, 2))
	ck := b.Net("CK .P20-30")
	data := b.Net("D .S21-69") // changing only 19–21: inside the edge window
	b.SetupHold("CHK", ns(1), ns(1), netlist.Conns(data), netlist.Conn{Net: ck})
	res, err := Run(b.MustBuild(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Fatal("change inside the edge uncertainty window not caught")
	}
	sawWindow := false
	for _, v := range res.Violations {
		if v.Kind == EnableViolation || v.Kind == SetupViolation {
			sawWindow = true
		}
	}
	if !sawWindow {
		t.Errorf("kinds = %v", kinds(res.Violations))
	}
}

func TestSRHFHoldFromFallingEdge(t *testing.T) {
	// SETUP RISE HOLD FALL: the hold is measured from the falling edge.
	// Clock high 20–30; data stable 15–31: hold of 2 after the fall fails.
	vs := chk(t, netlist.KSetupRiseHoldFall, ns(2), ns(2), "D .S15-31", "CK .P20-30")
	if len(vs) != 1 || vs[0].Kind != HoldViolation {
		t.Fatalf("violations = %v", kinds(vs))
	}
	if vs[0].At != ns(30) {
		t.Errorf("hold measured at %v, want the falling edge 30 ns", vs[0].At)
	}
	// Stable through 15–35: clean.
	if vs := chk(t, netlist.KSetupRiseHoldFall, ns(2), ns(2), "D .S15-35", "CK .P20-30"); len(vs) != 0 {
		t.Errorf("clean SRHF flagged: %v", vs)
	}
}

func TestSRHFStabilityWhileClockTrue(t *testing.T) {
	// Data wobbles mid-pulse: the clock-true stability rule fires.
	vs := chk(t, netlist.KSetupRiseHoldFall, ns(2), ns(2), "D .S27-75", "CK .P20-30")
	found := false
	for _, v := range vs {
		if v.Kind == EnableViolation && strings.Contains(v.Detail, "entire interval") {
			found = true
		}
	}
	if !found {
		t.Errorf("mid-pulse change not caught: %v", kinds(vs))
	}
}

func TestMultiPhaseClockChecksEveryEdge(t *testing.T) {
	// A two-pulse clock (XYZ .C2-3,5-6 style): a register clocked by it
	// opens two change windows and the checker validates both edges.
	b := netlist.NewBuilder("twophase")
	b.SetPeriod(80 * tick.NS)
	b.SetClockUnit(10 * tick.NS)
	b.SetDefaultWire(tick.Range{})
	b.SetClockSkew(tick.Range{})
	ck := b.Net("XYZ .C2-3,5-6") // high 20–30 and 50–60
	data := b.Net("D .S1-5.4")   // stable 10–54: fine at edge 20, late at edge 50
	q := b.Net("Q")
	b.Register("REG", tick.R(1, 2), []netlist.NetID{q}, netlist.Conn{Net: ck}, netlist.Conns(data))
	b.SetupHold("CHK", ns(2), ns(2), netlist.Conns(data), netlist.Conn{Net: ck})
	res, err := Run(b.MustBuild(), Options{KeepWaves: true})
	if err != nil {
		t.Fatal(err)
	}
	// Both register change windows exist.
	id, _ := res.Design.NetByName("Q")
	w := res.Cases[0].Waves[id]
	if !w.At(ns(21.5)).Changing() || !w.At(ns(51.5)).Changing() {
		t.Errorf("register should open windows at both edges: %v", w)
	}
	// Exactly the second edge's hold fails (data changes at 54, 4 ns
	// after the 50 ns edge — hold 2 passes; set-up at 50 passes...).
	// Data stable 10–54: at edge 50 set-up = 40, hold = 4: clean; make it
	// fail by moving stability end to 51.
	b2 := netlist.NewBuilder("twophase2")
	b2.SetPeriod(80 * tick.NS)
	b2.SetClockUnit(10 * tick.NS)
	b2.SetDefaultWire(tick.Range{})
	b2.SetClockSkew(tick.Range{})
	ck2 := b2.Net("XYZ .C2-3,5-6")
	data2 := b2.Net("D .S1-5.1") // stable 10–51: hold at edge 50 fails
	b2.SetupHold("CHK", ns(2), ns(2), netlist.Conns(data2), netlist.Conn{Net: ck2})
	res2, err := Run(b2.MustBuild(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Violations) != 1 || res2.Violations[0].Kind != HoldViolation || res2.Violations[0].At != ns(50) {
		t.Errorf("second-edge hold not isolated: %v", res2.Violations)
	}
}

func TestCheckerConstantClockSilent(t *testing.T) {
	vs := chk(t, netlist.KSetupHold, ns(2), ns(2), "D .S0-10", "TIED .S0-50")
	if len(vs) != 0 {
		t.Errorf("edgeless clock should check nothing: %v", vs)
	}
}

func TestForcedWaveformOption(t *testing.T) {
	b := netlist.NewBuilder("forced")
	b.SetPeriod(50 * tick.NS)
	b.SetDefaultWire(tick.Range{})
	in := b.Net("EXT")
	out := b.Net("OUT")
	b.Buf("B", tick.R(1, 1), []netlist.NetID{out}, netlist.Conns(in))
	d := b.MustBuild()
	id, _ := d.NetByName("EXT")
	forced := values.Const(50*tick.NS, values.V0).Paint(ns(10), ns(20), values.V1)
	res, err := Run(d, Options{KeepWaves: true, Force: map[netlist.NetID]values.Waveform{id: forced}})
	if err != nil {
		t.Fatal(err)
	}
	oid, _ := d.NetByName("OUT")
	if w := res.Cases[0].Waves[oid]; w.At(ns(15)) != values.V1 || w.At(ns(5)) != values.V0 {
		t.Errorf("forced waveform not propagated: %v", w)
	}
	// Forcing a driven net is rejected.
	if _, err := Run(d, Options{Force: map[netlist.NetID]values.Waveform{oid: forced}}); err == nil {
		t.Error("forcing a driven net should fail")
	}
	// A malformed forced waveform is rejected.
	bad := values.Waveform{Period: 50 * tick.NS}
	if _, err := Run(d, Options{Force: map[netlist.NetID]values.Waveform{id: bad}}); err == nil {
		t.Error("malformed forced waveform should fail")
	}
	// A period-mismatched forced waveform is rejected.
	if _, err := Run(d, Options{Force: map[netlist.NetID]values.Waveform{id: values.Const(10*tick.NS, values.VS)}}); err == nil {
		t.Error("period mismatch should fail")
	}
}
