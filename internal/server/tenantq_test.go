package server

import (
	"context"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestQueuedDisconnectFreesSlot locks the admission-release contract on
// client disconnect: a request that gives up while *queued* (not yet
// holding a pool slot) frees its queue position immediately, so new
// requests are admitted without a 429 even though the queue was full a
// moment ago.
func TestQueuedDisconnectFreesSlot(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{}, 16)
	s, ts := newTestServer(t, Config{
		Pool:        1,
		TenantQueue: 4,
		onVerifyStart: func(ctx context.Context) {
			started <- struct{}{}
			select {
			case <-block:
			case <-ctx.Done():
			}
		},
	})

	waitDepth := func(want int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for s.QueueDepth() != want {
			if time.Now().After(deadline) {
				t.Fatalf("queue depth never reached %d (at %d)", want, s.QueueDepth())
			}
			time.Sleep(time.Millisecond)
		}
	}

	fire := func(ctx context.Context) chan int {
		status := make(chan int, 1)
		go func() {
			req, err := http.NewRequestWithContext(ctx, http.MethodPost,
				ts.URL+"/v1/verify", strings.NewReader(sessSource(2)))
			if err != nil {
				status <- -1
				return
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				status <- -1 // disconnected before a response
				return
			}
			resp.Body.Close()
			status <- resp.StatusCode
		}()
		return status
	}

	// One request holds the single slot, four fill the queue.
	holder := fire(context.Background())
	<-started
	ctxs := make([]context.CancelFunc, 4)
	queued := make([]chan int, 4)
	for i := range queued {
		ctx, cancel := context.WithCancel(context.Background())
		ctxs[i] = cancel
		queued[i] = fire(ctx)
	}
	waitDepth(5)

	// The queue is full: one more is refused.
	resp, body := post(t, ts.URL+"/v1/verify", sessSource(2))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue: status %d, want 429: %s", resp.StatusCode, body)
	}

	// Disconnect half the queued requests: their positions free
	// immediately, without waiting for the running verification.
	ctxs[0]()
	ctxs[1]()
	if st := <-queued[0]; st != -1 {
		t.Fatalf("disconnected request got status %d", st)
	}
	if st := <-queued[1]; st != -1 {
		t.Fatalf("disconnected request got status %d", st)
	}
	waitDepth(3)

	// Two fresh requests are admitted into the freed positions — no 429.
	fresh := []chan int{fire(context.Background()), fire(context.Background())}
	waitDepth(5)

	// Unblock and drain: everything still queued completes with 200.
	close(block)
	if st := <-holder; st != http.StatusOK {
		t.Errorf("holder finished with %d", st)
	}
	for i := 2; i < 4; i++ {
		if st := <-queued[i]; st != http.StatusOK {
			t.Errorf("queued request %d finished with %d", i, st)
		}
	}
	for i, ch := range fresh {
		if st := <-ch; st != http.StatusOK {
			t.Errorf("fresh request %d finished with %d", i, st)
		}
	}
	if got := s.QueueDepth(); got != 0 {
		t.Errorf("QueueDepth after drain = %d, want 0", got)
	}
}

// TestTenantRoundRobin locks grant fairness at the fairQueue level: with
// tenant A's queue deep and tenant B holding one waiter, B's request is
// granted on the second free slot, not after all of A's.
func TestTenantRoundRobin(t *testing.T) {
	q := newFairQueue(1, 8, 64)
	rel, err := q.admit(context.Background(), "A")
	if err != nil {
		t.Fatal(err)
	}

	grants := make(chan string, 4)
	var wg sync.WaitGroup
	enqueue := func(tenant string, wantQueued int) {
		t.Helper()
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := q.admit(context.Background(), tenant)
			if err != nil {
				t.Error(err)
				return
			}
			grants <- tenant
			r()
		}()
		deadline := time.Now().Add(5 * time.Second)
		for {
			queued := 0
			for _, ts := range q.snapshot() {
				if ts.Tenant == tenant {
					queued = ts.Queued
				}
			}
			if queued == wantQueued {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("tenant %s never reached %d queued", tenant, wantQueued)
			}
			time.Sleep(time.Millisecond)
		}
	}
	// FIFO within A, round-robin across tenants: A1 A2 A3 then B1.
	enqueue("A", 1)
	enqueue("A", 2)
	enqueue("A", 3)
	enqueue("B", 1)

	rel() // free the slot: the grant chain drains every waiter
	wg.Wait()
	var order []string
	for i := 0; i < 4; i++ {
		order = append(order, <-grants)
	}
	want := "A B A A"
	if got := strings.Join(order, " "); got != want {
		t.Errorf("grant order %q, want %q (round-robin across tenants, FIFO within)", got, want)
	}
}

// TestTenantRejectionIsolated: one tenant filling its queue 429s that
// tenant only; another tenant still queues fine.
func TestTenantRejectionIsolated(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	started := make(chan struct{}, 8)
	s, ts := newTestServer(t, Config{
		Pool:        1,
		TenantQueue: 1,
		onVerifyStart: func(ctx context.Context) {
			started <- struct{}{}
			select {
			case <-block:
			case <-ctx.Done():
			}
		},
	})

	tenantPost := func(tenant string) chan int {
		status := make(chan int, 1)
		go func() {
			req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/verify", strings.NewReader(sessSource(2)))
			if err != nil {
				status <- -1
				return
			}
			req.Header.Set(tenantHeader, tenant)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				status <- -1
				return
			}
			resp.Body.Close()
			status <- resp.StatusCode
		}()
		return status
	}

	_ = tenantPost("alpha") // holds the slot
	<-started
	_ = tenantPost("alpha") // fills alpha's queue of 1
	deadline := time.Now().Add(5 * time.Second)
	for s.QueueDepth() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("second alpha request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Alpha is saturated: its next request is refused…
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/verify", strings.NewReader(sessSource(2)))
	req.Header.Set(tenantHeader, "alpha")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated tenant: status %d, want 429", resp.StatusCode)
	}

	// …while beta, untouched by alpha's backlog, still queues.
	beta := tenantPost("beta")
	for s.QueueDepth() < 3 {
		if time.Now().After(deadline) {
			t.Fatal("beta request never queued — rejected by alpha's backlog?")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case st := <-beta:
		t.Fatalf("beta request finished early with %d", st)
	default:
	}

	// Per-tenant quota series are visible in /metrics.
	mresp, mbody := do(t, http.MethodGet, ts.URL+"/metrics", "")
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", mresp.StatusCode)
	}
	for _, want := range []string{
		`scaldtvd_tenant_admitted_total{tenant="alpha"} 1`,
		`scaldtvd_tenant_rejected_total{tenant="alpha"} 1`,
		`scaldtvd_tenant_queued{tenant="beta"} 1`,
	} {
		if !strings.Contains(string(mbody), want) {
			t.Errorf("/metrics missing %q:\n%s", want, mbody)
		}
	}
}
