package server

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"scaldtv/internal/serr"
)

// tenantHeader names the request header carrying the tenant identity.
// Absent or empty means the shared "default" tenant.
const tenantHeader = "X-Scaldtv-Tenant"

// otherTenant is the shared bucket for tenants beyond the cardinality
// cap: their requests still queue fairly (as one aggregate tenant) and
// their metrics aggregate under one label, so an open endpoint cannot
// grow the queue map or the metrics exposition without bound.
const otherTenant = "other"

// tenantWaiter is one queued admission.
type tenantWaiter struct {
	ready   chan struct{}
	granted bool // guarded by the owning fairQueue's mu
}

// tenantStats are one tenant's admission counters, rendered into
// /metrics as per-tenant quota series.
type tenantStats struct {
	admitted int64
	rejected int64
	queued   int // current waiters
}

// fairQueue is multi-tenant admission control: a fixed pool of
// verification slots, a bounded FIFO waiter queue per tenant, and
// round-robin grants across tenants with waiters.  One tenant saturating
// its queue costs other tenants at most one slot-grant of latency, never
// their queue capacity: a burst of N requests from tenant A and one
// request from tenant B grants B's on the first or second free slot, not
// after A's N.  Rejections are per-tenant — tenant A filling its queue
// 429s tenant A only.
type fairQueue struct {
	mu        sync.Mutex
	slots     int // free slots
	perTenant int // waiter bound per tenant
	maxTenant int // distinct tenants tracked before lumping into otherTenant

	order  []string // round-robin rotation of tenants with waiters
	next   int      // rotation cursor into order
	queues map[string][]*tenantWaiter

	stats    map[string]*tenantStats
	inflight atomic.Int64 // granted + waiting, for the queue-depth gauge
}

func newFairQueue(pool, perTenant, maxTenant int) *fairQueue {
	return &fairQueue{
		slots:     pool,
		perTenant: perTenant,
		maxTenant: maxTenant,
		queues:    make(map[string][]*tenantWaiter),
		stats:     make(map[string]*tenantStats),
	}
}

// bucket maps a tenant identity onto its accounting bucket, enforcing
// the cardinality cap.  Callers hold q.mu.
func (q *fairQueue) bucket(tenant string) string {
	if tenant == "" {
		tenant = "default"
	}
	if _, known := q.stats[tenant]; !known && len(q.stats) >= q.maxTenant {
		return otherTenant
	}
	return tenant
}

func (q *fairQueue) statsFor(tenant string) *tenantStats {
	st := q.stats[tenant]
	if st == nil {
		st = &tenantStats{}
		q.stats[tenant] = st
	}
	return st
}

// admit reserves a verification slot for tenant, waiting in the tenant's
// bounded FIFO queue when the pool is busy.  It fails fast with
// errOverloaded once the tenant's queue is full, and a canceled request
// frees its queue position immediately — a disconnected client never
// holds admission capacity, which is what keeps a flaky tenant from
// starving the pool.  The returned release func must be called once.
func (q *fairQueue) admit(ctx context.Context, tenant string) (func(), error) {
	q.mu.Lock()
	tenant = q.bucket(tenant)
	st := q.statsFor(tenant)
	if q.slots > 0 {
		// A free slot implies no waiters (grants drain the queue before
		// slots accumulate), so taking it immediately cannot jump anyone.
		q.slots--
		st.admitted++
		q.inflight.Add(1)
		q.mu.Unlock()
		return func() { q.releaseSlot() }, nil
	}
	if st.queued >= q.perTenant {
		st.rejected++
		q.mu.Unlock()
		return nil, errOverloaded
	}
	w := &tenantWaiter{ready: make(chan struct{})}
	if _, waiting := q.queues[tenant]; !waiting {
		q.order = append(q.order, tenant)
	}
	q.queues[tenant] = append(q.queues[tenant], w)
	st.queued++
	q.inflight.Add(1)
	q.mu.Unlock()

	select {
	case <-w.ready:
		q.mu.Lock()
		st.admitted++
		q.mu.Unlock()
		return func() { q.releaseSlot() }, nil
	case <-ctx.Done():
		q.mu.Lock()
		if w.granted {
			// The grant raced the disconnect: the slot is ours, so pass it
			// straight to the next waiter instead of leaking it.
			st.admitted++
			q.mu.Unlock()
			q.releaseSlot()
			return nil, serr.Wrap(serr.Canceled, ctx.Err())
		}
		q.unqueue(tenant, w)
		q.inflight.Add(-1)
		q.mu.Unlock()
		return nil, serr.Wrap(serr.Canceled, ctx.Err())
	}
}

// releaseSlot returns a slot to the pool, granting it to the next waiter
// in round-robin tenant order when one exists.
func (q *fairQueue) releaseSlot() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.inflight.Add(-1)
	if w, _ := q.pop(); w != nil {
		w.granted = true
		close(w.ready)
		return
	}
	q.slots++
}

// pop dequeues the next waiter round-robin across tenants.  Callers hold
// q.mu.
func (q *fairQueue) pop() (*tenantWaiter, string) {
	for len(q.order) > 0 {
		if q.next >= len(q.order) {
			q.next = 0
		}
		tenant := q.order[q.next]
		queue := q.queues[tenant]
		if len(queue) == 0 {
			q.dropTenant(q.next)
			continue
		}
		w := queue[0]
		q.queues[tenant] = queue[1:]
		q.statsFor(tenant).queued--
		if len(q.queues[tenant]) == 0 {
			q.dropTenant(q.next)
		} else {
			q.next++
		}
		return w, tenant
	}
	return nil, ""
}

// dropTenant removes rotation slot i.  Callers hold q.mu.
func (q *fairQueue) dropTenant(i int) {
	delete(q.queues, q.order[i])
	q.order = append(q.order[:i], q.order[i+1:]...)
	if q.next > i {
		q.next--
	}
}

// unqueue removes a waiter that gave up (client disconnect), freeing its
// queue position immediately.  Callers hold q.mu.
func (q *fairQueue) unqueue(tenant string, w *tenantWaiter) {
	queue := q.queues[tenant]
	for i, cand := range queue {
		if cand == w {
			q.queues[tenant] = append(queue[:i:i], queue[i+1:]...)
			q.statsFor(tenant).queued--
			break
		}
	}
	if len(q.queues[tenant]) == 0 {
		for i, t := range q.order {
			if t == tenant {
				q.dropTenant(i)
				break
			}
		}
	}
}

// depth reports granted-plus-waiting admissions.
func (q *fairQueue) depth() int { return int(q.inflight.Load()) }

// tenantSnapshot is one tenant's quota view for /metrics.
type tenantSnapshot struct {
	Tenant   string
	Admitted int64
	Rejected int64
	Queued   int
}

// snapshot returns per-tenant admission counters sorted by tenant name,
// so the metrics exposition is stable scrape to scrape.
func (q *fairQueue) snapshot() []tenantSnapshot {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]tenantSnapshot, 0, len(q.stats))
	for tenant, st := range q.stats {
		out = append(out, tenantSnapshot{
			Tenant:   tenant,
			Admitted: st.admitted,
			Rejected: st.rejected,
			Queued:   st.queued,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}
