package report

import (
	"encoding/json"

	"scaldtv/internal/verify"
)

// jsonViolation is the machine-readable form of one violation.
type jsonViolation struct {
	Kind       string  `json:"kind"`
	Case       string  `json:"case,omitempty"`
	Primitive  string  `json:"primitive"`
	Data       string  `json:"data,omitempty"`
	Clock      string  `json:"clock,omitempty"`
	RequiredNS float64 `json:"required_ns"`
	ActualNS   float64 `json:"actual_ns"`
	MarginNS   float64 `json:"margin_ns"`
	AtNS       float64 `json:"at_ns"`
	DataWave   string  `json:"data_wave,omitempty"`
	ClockWave  string  `json:"clock_wave,omitempty"`
	Detail     string  `json:"detail,omitempty"`
}

// jsonReport is the machine-readable verification outcome, for CI
// integration.
type jsonReport struct {
	Design     string          `json:"design"`
	PeriodNS   float64         `json:"period_ns"`
	Primitives int             `json:"primitives"`
	Nets       int             `json:"nets"`
	Cases      int             `json:"cases"`
	Events     int             `json:"events"`
	Violations []jsonViolation `json:"violations"`
	Undefined  []string        `json:"undefined_signals,omitempty"`
	Pass       bool            `json:"pass"`
}

// JSON renders the verification result as machine-readable JSON.
func JSON(res *verify.Result) ([]byte, error) {
	out := jsonReport{
		Design:     res.Design.Name,
		PeriodNS:   res.Design.Period.NS(),
		Primitives: res.Stats.Primitives,
		Nets:       res.Stats.Nets,
		Cases:      res.Stats.Cases,
		Events:     res.Stats.Events,
		Undefined:  res.Undefined,
		Pass:       !res.Errors(),
		Violations: []jsonViolation{},
	}
	for _, v := range res.Violations {
		jv := jsonViolation{
			Kind:       v.Kind.String(),
			Case:       v.Case,
			Primitive:  v.Prim,
			Data:       v.Data,
			Clock:      v.Clock,
			RequiredNS: v.Required.NS(),
			ActualNS:   v.Actual.NS(),
			MarginNS:   v.Margin().NS(),
			AtNS:       v.At.NS(),
			Detail:     v.Detail,
		}
		if v.DataWave.Period > 0 {
			jv.DataWave = WaveString(v.DataWave)
		}
		if v.ClockWave.Period > 0 {
			jv.ClockWave = WaveString(v.ClockWave)
		}
		out.Violations = append(out.Violations, jv)
	}
	return json.MarshalIndent(out, "", "  ")
}
