// Command scaldload replays concurrent verification traffic against a
// scaldtvd service (standalone, worker or coordinator) and reports
// throughput and latency quantiles.  It is the measurement half of the
// cluster scale-out: point it at one worker, then at a coordinator over
// N workers, and compare ops/s on the same mix.
//
// The workload is synthetic Mark IIA-style designs from internal/gen —
// the same generator the engine benchmarks use — replayed as two kinds
// of stream:
//
//	verify   stateless POST /v1/verify round trips
//	session  POST /v1/sessions, then -edits parameter-only design edits
//	         (PUT …/design, each re-verified incrementally server-side),
//	         then DELETE
//
// -mix selects the blend; each concurrent stream cycles through -designs
// distinct design variants so caches are exercised without collapsing
// the run into one hot key.  Tenant identities round-robin over -tenants
// (the X-Scaldtv-Tenant header), exercising fair admission.
//
// Output: one human line per second-ish of progress on stderr if -v, and
// a final summary on stdout — total ops, errors, wall time, throughput,
// and p50/p95/p99 op latency — plus the same figures as JSON with -json.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"scaldtv/internal/gen"
)

type opKind string

const (
	opVerify opKind = "verify"
	opCreate opKind = "create"
	opEdit   opKind = "edit"
	opDelete opKind = "delete"
)

// sample is one completed operation.
type sample struct {
	kind opKind
	wall time.Duration
	err  bool
}

// collector accumulates samples across streams.
type collector struct {
	mu      sync.Mutex
	samples []sample
	done    atomic.Int64
	errs    atomic.Int64
}

func (c *collector) add(s sample) {
	c.done.Add(1)
	if s.err {
		c.errs.Add(1)
	}
	c.mu.Lock()
	c.samples = append(c.samples, s)
	c.mu.Unlock()
}

func main() {
	addr := flag.String("addr", "http://localhost:7333", "service base URL")
	streams := flag.Int("c", 16, "concurrent client streams")
	total := flag.Int("n", 200, "total operations to issue across all streams")
	mix := flag.String("mix", "both", "workload mix: verify, session or both")
	designs := flag.Int("designs", 8, "distinct design variants cycled per stream")
	chips := flag.Int("chips", 50, "approximate chip count of the smallest design variant")
	cases := flag.Int("cases", 4, "declared case-analysis cases per design (drives cluster fan-out)")
	edits := flag.Int("edits", 3, "design edits per session stream")
	tenants := flag.Int("tenants", 1, "tenant identities to round-robin (X-Scaldtv-Tenant)")
	timeout := flag.Duration("timeout", 120*time.Second, "per-operation client timeout")
	jsonOut := flag.Bool("json", false, "print the summary as JSON too")
	verbose := flag.Bool("v", false, "log per-stream errors to stderr")
	flag.Parse()

	if *mix != "verify" && *mix != "session" && *mix != "both" {
		fmt.Fprintf(os.Stderr, "scaldload: -mix %q (want verify, session or both)\n", *mix)
		os.Exit(2)
	}
	base := strings.TrimRight(*addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}

	// Pre-generate the design variants (generation is deterministic, so a
	// coordinator and a standalone server see the exact same bytes).
	sources := make([]string, *designs)
	for i := range sources {
		sources[i] = gen.Source(gen.Config{Chips: *chips + i*17, Cases: *cases})
	}

	client := &http.Client{Timeout: *timeout}
	col := &collector{}
	var next atomic.Int64 // global operation ticket counter

	start := time.Now()
	var wg sync.WaitGroup
	for s := 0; s < *streams; s++ {
		wg.Add(1)
		go func(stream int) {
			defer wg.Done()
			for {
				ticket := int(next.Add(1)) - 1
				if ticket >= *total {
					return
				}
				src := sources[(stream+ticket)%len(sources)]
				tenant := fmt.Sprintf("load-%d", stream%*tenants)
				sessionOp := *mix == "session" || (*mix == "both" && ticket%2 == 1)
				if sessionOp {
					runSession(client, base, tenant, src, *edits, col, *verbose)
				} else {
					runVerify(client, base, tenant, src, col, *verbose)
				}
			}
		}(s)
	}
	wg.Wait()
	wall := time.Since(start)

	report(col, wall, *jsonOut)
	if col.errs.Load() > 0 {
		os.Exit(1)
	}
}

// post issues one operation and records its latency.
func do(client *http.Client, method, url, tenant string, body string, wantStatus int, kind opKind, col *collector, verbose bool) bool {
	var rd io.Reader
	if body != "" {
		rd = bytes.NewReader([]byte(body))
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		col.add(sample{kind: kind, err: true})
		return false
	}
	req.Header.Set("X-Scaldtv-Tenant", tenant)
	start := time.Now()
	resp, err := client.Do(req)
	wall := time.Since(start)
	if err != nil {
		if verbose {
			fmt.Fprintf(os.Stderr, "scaldload: %s %s: %v\n", method, url, err)
		}
		col.add(sample{kind: kind, wall: wall, err: true})
		return false
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	ok := resp.StatusCode == wantStatus
	if !ok && verbose {
		fmt.Fprintf(os.Stderr, "scaldload: %s %s: HTTP %d (want %d): %.120s\n",
			method, url, resp.StatusCode, wantStatus, out)
	}
	col.add(sample{kind: kind, wall: wall, err: !ok})
	return ok
}

func runVerify(client *http.Client, base, tenant, src string, col *collector, verbose bool) {
	do(client, http.MethodPost, base+"/v1/verify", tenant, src, http.StatusOK, opVerify, col, verbose)
}

// runSession drives one designer loop: create, edits wire-delay tweaks
// (parameter-only, so a session-holding server answers each from the
// dirty cone), delete.
func runSession(client *http.Client, base, tenant, src string, edits int, col *collector, verbose bool) {
	var rd io.Reader = bytes.NewReader([]byte(src))
	req, err := http.NewRequest(http.MethodPost, base+"/v1/sessions", rd)
	if err != nil {
		col.add(sample{kind: opCreate, err: true})
		return
	}
	req.Header.Set("X-Scaldtv-Tenant", tenant)
	start := time.Now()
	resp, err := client.Do(req)
	wall := time.Since(start)
	if err != nil {
		if verbose {
			fmt.Fprintf(os.Stderr, "scaldload: create: %v\n", err)
		}
		col.add(sample{kind: opCreate, wall: wall, err: true})
		return
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		if verbose {
			fmt.Fprintf(os.Stderr, "scaldload: create: HTTP %d: %.120s\n", resp.StatusCode, body)
		}
		col.add(sample{kind: opCreate, wall: wall, err: true})
		return
	}
	var env struct {
		Session string `json:"session"`
	}
	if json.Unmarshal(body, &env) != nil || env.Session == "" {
		col.add(sample{kind: opCreate, wall: wall, err: true})
		return
	}
	col.add(sample{kind: opCreate, wall: wall})

	for e := 0; e < edits; e++ {
		// Parameter-only edit: nudge the default wire delay.  The design
		// stays timing-clean (margins are tens of ns), and the server's
		// incremental path re-verifies only the affected cone.
		edited := strings.Replace(src, "defaultwire 0ns 2ns",
			fmt.Sprintf("defaultwire 0ns 2.%03dns", e+1), 1)
		do(client, http.MethodPut, base+"/v1/sessions/"+env.Session+"/design", tenant,
			edited, http.StatusOK, opEdit, col, verbose)
	}
	do(client, http.MethodDelete, base+"/v1/sessions/"+env.Session, tenant,
		"", http.StatusNoContent, opDelete, col, verbose)
}

// report prints the final summary.
func report(col *collector, wall time.Duration, jsonOut bool) {
	col.mu.Lock()
	samples := col.samples
	col.mu.Unlock()

	lat := make([]float64, 0, len(samples))
	perKind := map[opKind]int{}
	for _, s := range samples {
		if !s.err {
			lat = append(lat, s.wall.Seconds())
		}
		perKind[s.kind]++
	}
	sort.Float64s(lat)
	q := func(p float64) float64 {
		if len(lat) == 0 {
			return 0
		}
		i := int(p*float64(len(lat)-1) + 0.5)
		return lat[i]
	}
	ops := len(samples)
	errs := int(col.errs.Load())
	thr := float64(ops-errs) / wall.Seconds()

	fmt.Printf("scaldload: %d ops (%d errors) in %.2fs — %.1f ops/s\n", ops, errs, wall.Seconds(), thr)
	var kinds []string
	for k := range perKind {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Printf("  %-8s %d\n", k, perKind[opKind(k)])
	}
	fmt.Printf("  latency  p50 %.1fms  p95 %.1fms  p99 %.1fms\n",
		q(0.50)*1e3, q(0.95)*1e3, q(0.99)*1e3)

	if jsonOut {
		out := map[string]any{
			"ops":         ops,
			"errors":      errs,
			"wall_s":      wall.Seconds(),
			"ops_per_s":   thr,
			"p50_ms":      q(0.50) * 1e3,
			"p95_ms":      q(0.95) * 1e3,
			"p99_ms":      q(0.99) * 1e3,
			"ops_by_kind": perKind,
		}
		enc, _ := json.Marshal(out)
		fmt.Println(string(enc))
	}
}
