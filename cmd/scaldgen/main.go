// Command scaldgen emits a synthetic S-1 Mark IIA-style pipelined design
// in the textual HDL, standing in for the paper's proprietary 6357-chip
// design database (§3.3).  Pipe its output to scaldtv:
//
//	scaldgen -chips 6357 > markiia.scald
//	scaldtv markiia.scald
package main

import (
	"flag"
	"fmt"
	"os"

	"scaldtv/internal/gen"
)

func main() {
	chips := flag.Int("chips", 6357, "target MSI chip count")
	inject := flag.Int("inject", 0, "number of deliberately failing paths to inject")
	cases := flag.Int("cases", 0, "number of case-analysis cycles to append")
	varCycle := flag.Bool("varcycle", false, "add the variable-length-cycle tail that needs case analysis (§3.3.2)")
	width := flag.Int("width", 0, "datapath width in bits (0 = 32; rounded up to whole bytes)")
	depth := flag.Int("depth", 0, "decode OR-chain depth in levels (0 = 2)")
	feedback := flag.Float64("feedback", 0, "fraction of stages given a cross-coupled OR pair (combinational feedback)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: scaldgen [-chips n] [-inject n] [-cases n] [-width bits] [-depth levels] [-feedback frac]")
		os.Exit(2)
	}
	if *feedback < 0 || *feedback > 1 {
		fmt.Fprintln(os.Stderr, "scaldgen: -feedback must be in [0,1]")
		os.Exit(2)
	}
	fmt.Print(gen.Source(gen.Config{Chips: *chips, Inject: *inject, Cases: *cases, VariableCycle: *varCycle,
		Width: *width, Depth: *depth, Feedback: *feedback}))
}
