// Package experiments regenerates every table and figure of the paper's
// evaluation: the execution statistics of Table 3-1, the primitive census
// of Table 3-2, the storage accounting of Table 3-3, the figure circuits
// of Chapters 1–4, and the two comparative claims — exponential savings
// over exhaustive logic simulation (§1.4.1/§2.1) and the spurious-error
// failure mode of worst-case path searching (§1.4.2/§4.1).
package experiments

import (
	"fmt"
	"time"

	"scaldtv/internal/expand"
	"scaldtv/internal/gen"
	"scaldtv/internal/hdl"
	"scaldtv/internal/logicsim"
	"scaldtv/internal/netlist"
	"scaldtv/internal/pathsearch"
	"scaldtv/internal/report"
	"scaldtv/internal/stats"
	"scaldtv/internal/tick"
	"scaldtv/internal/values"
	"scaldtv/internal/verify"
)

// ScaleResult is one run of the paper's full-pipeline experiment (Tables
// 3-1, 3-2 and 3-3) on a generated Mark IIA-style design.
type ScaleResult struct {
	Chips  int
	Stages int

	Table31 stats.Table31
	Report  *expand.Report
	Storage stats.Storage

	Violations int
	Undefined  int
}

// RunScale generates, reads, expands and verifies a design of the given
// chip count, timing each phase the way Table 3-1 does.  workers sets the
// case-evaluation worker count (0 = GOMAXPROCS); the paper's Table 3-1 run
// is single-threaded, so pass 1 for a faithful reproduction.
func RunScale(chips, workers int) (*ScaleResult, error) {
	src := gen.Source(gen.Config{Chips: chips})

	t0 := time.Now()
	file, err := hdl.Parse(src)
	if err != nil {
		return nil, err
	}
	t1 := time.Now()
	design, rep, err := expand.Expand(file)
	if err != nil {
		return nil, err
	}
	t2 := time.Now()
	res, err := verify.Run(design, verify.Options{KeepWaves: true, Workers: workers})
	if err != nil {
		return nil, err
	}
	t3 := time.Now()
	xref := report.CrossReference(res)
	t4 := time.Now()
	_ = report.TimingSummary(res, 0)
	_ = report.ErrorListing(res)
	t5 := time.Now()
	_ = t3

	out := &ScaleResult{
		Chips:  gen.Stages(chips) * gen.ChipsPerStage(),
		Stages: gen.Stages(chips),
		Report: rep,
	}
	out.Table31.Read = t1.Sub(t0)
	// The macro-table and synonym work of the paper's Pass 1 happens
	// inside Expand together with emission; the split is reported as one
	// expansion phase.
	out.Table31.Pass1 = 0
	out.Table31.Pass2 = t2.Sub(t1)
	out.Table31.FromVerify(res.Stats)
	out.Table31.XRef = t4.Sub(t3)
	out.Table31.Summary += t5.Sub(t4)
	out.Storage = stats.Measure(design, res.Cases[len(res.Cases)-1].Waves)
	out.Violations = len(res.Violations)
	out.Undefined = len(res.Undefined)
	_ = xref
	return out, nil
}

// CaseIncrement measures the §3.3.2 claim that an additional case costs
// only the events in its affected cone.
type CaseIncrement struct {
	FirstEvals, SecondEvals   int
	FirstEvents, SecondEvents int
}

// RunCaseIncrement verifies a generated design with two cases over the
// stage control signal.  Workers is pinned to 1: the claim under test is
// the sequential schedule's incremental cone reevaluation, which the
// concurrent snapshot-per-case schedule deliberately trades away.
func RunCaseIncrement(chips int) (*CaseIncrement, error) {
	d, _, err := gen.Generate(gen.Config{Chips: chips, Cases: 2})
	if err != nil {
		return nil, err
	}
	res, err := verify.Run(d, verify.Options{Workers: 1})
	if err != nil {
		return nil, err
	}
	return &CaseIncrement{
		FirstEvals:   res.Cases[0].PrimEvals,
		SecondEvals:  res.Cases[1].PrimEvals,
		FirstEvents:  res.Cases[0].Events,
		SecondEvents: res.Cases[1].Events,
	}, nil
}

// ParallelSpeedup compares the sequential case schedule against the
// concurrent snapshot-per-case engine on a multi-case generated design.
// The sequential run reevaluates cones incrementally and so does less
// total work; the concurrent run trades that for wall-clock parallelism
// across cases (Table 3-1 shows cases dominating runtime at scale).
type ParallelSpeedup struct {
	Chips   int
	Cases   int
	Workers int

	SeqWall time.Duration // Workers=1 wall-clock of the case phase
	ParWall time.Duration // Workers=N wall-clock of the case phase

	SeqEvals int // total primitive evaluations, sequential (incremental)
	ParEvals int // total primitive evaluations, concurrent (full per case)
}

// Speedup is the sequential/concurrent wall-clock ratio (>1 means the
// worker pool won).
func (p *ParallelSpeedup) Speedup() float64 {
	if p.ParWall == 0 {
		return 0
	}
	return float64(p.SeqWall) / float64(p.ParWall)
}

// RunParallelSpeedup verifies one generated design with Workers=1 and
// Workers=workers and reports both schedules' cost.  The reports are
// verified identical before timings are trusted.
func RunParallelSpeedup(chips, cases, workers int) (*ParallelSpeedup, error) {
	d, _, err := gen.Generate(gen.Config{Chips: chips, Cases: cases})
	if err != nil {
		return nil, err
	}
	seq, err := verify.Run(d, verify.Options{Workers: 1})
	if err != nil {
		return nil, err
	}
	par, err := verify.Run(d, verify.Options{Workers: workers})
	if err != nil {
		return nil, err
	}
	if len(seq.Violations) != len(par.Violations) {
		return nil, fmt.Errorf("experiments: schedules disagree: %d vs %d violations",
			len(seq.Violations), len(par.Violations))
	}
	for i := range seq.Violations {
		if seq.Violations[i].String() != par.Violations[i].String() {
			return nil, fmt.Errorf("experiments: schedules disagree on violation %d: %v vs %v",
				i, seq.Violations[i], par.Violations[i])
		}
	}
	return &ParallelSpeedup{
		Chips:    chips,
		Cases:    len(seq.Cases),
		Workers:  par.Stats.Workers,
		SeqWall:  seq.Stats.WallTime,
		ParWall:  par.Stats.WallTime,
		SeqEvals: seq.Stats.PrimEvals,
		ParEvals: par.Stats.PrimEvals,
	}, nil
}

// ExpPoint is one size point of the exponential-savings experiment.
type ExpPoint struct {
	N int // cone input count

	SimCycles int           // vectors the exhaustive simulation ran
	SimEvents int           // simulator events processed
	SimTime   time.Duration // wall time of the exhaustive sweep
	SimWorst  tick.Time     // worst observed settle time

	TVEvents int           // verifier events in its single symbolic pass
	TVTime   time.Duration // wall time of the pass
	TVWorst  tick.Time     // worst-case delay from the symbolic waveform
}

// expPeriod is the cycle used by the exponential-claim circuits.
const expPeriod = 200 * tick.NS

// buildCone constructs the n-input alternating AND/OR cone, delay 1.0/2.0
// per level, in both representations.
func buildCone(n int) (*netlist.Design, *logicsim.Circuit, []int, int) {
	// Timing-verifier form.
	b := netlist.NewBuilder(fmt.Sprintf("cone-%d", n))
	b.SetPeriod(expPeriod)
	b.SetClockUnit(tick.NS)
	b.SetDefaultWire(tick.Range{})
	ins := make([]netlist.NetID, n)
	for i := range ins {
		ins[i] = b.Net(fmt.Sprintf("IN%d .S5-204", i)) // changing only 4–5 ns
	}
	prev := ins[0]
	for i := 1; i < n; i++ {
		k := netlist.KAnd
		if i%2 == 0 {
			k = netlist.KOr
		}
		o := b.Net(fmt.Sprintf("N%d", i))
		b.Gate(k, fmt.Sprintf("G%d", i), tick.R(1, 2), []netlist.NetID{o},
			netlist.Conns(prev), netlist.Conns(ins[i]))
		prev = o
	}
	d := b.MustBuild()

	// Logic-simulator form.
	var c logicsim.Circuit
	simIns := c.AddNets(n)
	sPrev := simIns[0]
	for i := 1; i < n; i++ {
		k := logicsim.GAnd
		if i%2 == 0 {
			k = logicsim.GOr
		}
		o := c.AddNet()
		c.AddGate(logicsim.Gate{Kind: k, Delay: tick.R(1, 2), In: []int{sPrev, simIns[i]}, Out: o})
		sPrev = o
	}
	return d, &c, simIns, sPrev
}

// RunExponential compares the exhaustive logic-simulation cost against the
// verifier's single symbolic pass for each cone size, checking that both
// find the same worst-case delay.
func RunExponential(sizes []int) ([]ExpPoint, error) {
	var out []ExpPoint
	for _, n := range sizes {
		d, c, simIns, simOut := buildCone(n)

		t0 := time.Now()
		worst, cycles, events := logicsim.ExhaustiveWorstSettle(c, simIns, simOut, expPeriod)
		simTime := time.Since(t0)

		t1 := time.Now()
		res, err := verify.Run(d, verify.Options{KeepWaves: true})
		if err != nil {
			return nil, err
		}
		tvTime := time.Since(t1)
		outNet, ok := d.NetByName(fmt.Sprintf("N%d", n-1))
		if !ok {
			return nil, fmt.Errorf("experiments: cone output net missing")
		}
		w := res.Cases[0].Waves[outNet].IncorporateSkew()
		// The inputs change during 4–5 ns; the output's worst-case delay
		// is how far past 5 ns its changing region extends.
		tvWorst := w.StableBack(100 * tick.NS) // stability extends back to the end of changes
		endOfChange := 100*tick.NS - tvWorst
		out = append(out, ExpPoint{
			N:         n,
			SimCycles: cycles,
			SimEvents: events,
			SimTime:   simTime,
			SimWorst:  worst,
			TVEvents:  res.Stats.Events,
			TVTime:    tvTime,
			TVWorst:   endOfChange - 5*tick.NS,
		})
	}
	return out, nil
}

// PathClaim compares the path-search baseline against the verifier on the
// Fig 2-6 value-dependent circuit.
type PathClaim struct {
	PathSearchMax   tick.Time // the reported (never sensitisable) delay
	PathSearchFlags int       // errors against the 35 ns budget
	TVPessimistic   tick.Time // verifier without case analysis
	TVCaseDelay     tick.Time // verifier with the designer's two cases
	TVCaseFlags     int       // assertion violations remaining with cases
}

const fig26HDL = `
design "FIG 2-6"
period 100ns
clockunit 1ns
defaultwire 0ns 0ns
buf "DELAY A" delay=(10,10) ("INPUT .S5-104") -> (D1)
mux2 "MUX 1" delay=(10,10) ("CONTROL SIGNAL .S0-100", "INPUT .S5-104", D1) -> (M1)
buf "DELAY B" delay=(10,10) (M1) -> (D2)
mux2 "MUX 2" delay=(10,10) ("CONTROL SIGNAL .S0-100", D2, M1) -> ("OUTPUT .S35-104")
`

// RunPathSearchClaim measures the Fig 2-6 comparison.
func RunPathSearchClaim() (*PathClaim, error) {
	parse := func(extra string) (*netlist.Design, error) {
		f, err := hdl.Parse(fig26HDL + extra)
		if err != nil {
			return nil, err
		}
		d, _, err := expand.Expand(f)
		return d, err
	}

	out := &PathClaim{}
	d, err := parse("")
	if err != nil {
		return nil, err
	}
	ps, err := pathsearch.Analyze(d)
	if err != nil {
		return nil, err
	}
	for _, e := range ps.Endpoints {
		if e.From == "INPUT .S5-104" && e.Max > out.PathSearchMax {
			out.PathSearchMax = e.Max
		}
	}
	out.PathSearchFlags = len(ps.Errors(35 * tick.NS))

	measure := func(d *netlist.Design) (tick.Time, int, error) {
		res, err := verify.Run(d, verify.Options{KeepWaves: true})
		if err != nil {
			return 0, 0, err
		}
		id, _ := d.NetByName("OUTPUT .S35-104")
		worst := tick.Time(0)
		for _, cr := range res.Cases {
			w := cr.Waves[id].IncorporateSkew()
			back := w.StableBack(80 * tick.NS)
			end := 80*tick.NS - back
			if delay := end - 5*tick.NS; delay > worst {
				worst = delay
			}
		}
		flags := 0
		for _, v := range res.Violations {
			if v.Kind == verify.AssertionViolation {
				flags++
			}
		}
		return worst, flags, nil
	}

	if out.TVPessimistic, _, err = measure(d); err != nil {
		return nil, err
	}
	d2, err := parse("\ncase \"CONTROL SIGNAL\" = 0\ncase \"CONTROL SIGNAL\" = 1\n")
	if err != nil {
		return nil, err
	}
	if out.TVCaseDelay, out.TVCaseFlags, err = measure(d2); err != nil {
		return nil, err
	}
	return out, nil
}

// SkewDemo reproduces Figs 2-8/2-9: a 10 ns pulse through a 5.0/10.0 ns OR
// gate keeps its full 10 ns guaranteed width while the skew is carried out
// of band, and erodes to 5 ns once incorporated.
type SkewDemo struct {
	CarriedMin, CarriedMax           tick.Time
	IncorporatedMin, IncorporatedMax tick.Time
}

// RunSkewDemo measures the Fig 2-8/2-9 pulse widths.
func RunSkewDemo() SkewDemo {
	in := values.Const(50*tick.NS, values.V0).Paint(10*tick.NS, 20*tick.NS, values.V1)
	out := in.Delay(tick.R(5, 10))
	carried := out.HighPulses()[0]
	inc := out.IncorporateSkew().HighPulses()[0]
	return SkewDemo{
		CarriedMin: carried.MinWidth, CarriedMax: carried.MaxWidth,
		IncorporatedMin: inc.MinWidth, IncorporatedMax: inc.MaxWidth,
	}
}
