package values

import (
	"testing"

	"scaldtv/internal/tick"
)

// FuzzWaveformOps interprets the fuzz input as a bounded program over
// waveform operations — paint, rotate, delay (symmetric, asymmetric,
// skew-carrying), unary map, combine, skew incorporation — and asserts
// the structural invariants after every step: segments positive-width
// and valid-valued, widths summing exactly to the period, skew
// non-negative.  Operand times are clamped to a safe envelope around
// one period; the operations themselves must hold the invariants for
// any such program.
func FuzzWaveformOps(f *testing.F) {
	f.Add([]byte{0, 10, 200, 1, 1, 50, 2, 5, 9, 6})
	f.Add([]byte{0, 0, 255, 6, 3, 1, 2, 3, 4, 4, 5, 0})
	f.Add([]byte{7, 30, 0, 128, 60, 2, 255, 255, 6, 6, 6})
	f.Add([]byte{1, 255, 1, 1, 1, 0, 0, 0, 5, 5, 5, 5})

	allValues := []Value{V0, V1, VS, VC, VR, VF, VU}

	f.Fuzz(func(t *testing.T, data []byte) {
		const period = 1000 * tick.Time(1)
		w := Const(period, VS)
		other := Const(period, VC).Paint(100, 600, V1)
		pos := 0
		next := func() int {
			if pos >= len(data) {
				return 0
			}
			b := data[pos]
			pos++
			return int(b)
		}
		// Times land in [-period, 2*period); delays stay within a
		// quarter period so repeated application cannot overflow.
		timeArg := func() tick.Time {
			return tick.Time(next()*3-255) * tick.Time(period) / 255
		}
		delayArg := func() tick.Range {
			a := tick.Time(next()) * (period / 4) / 255
			b := tick.Time(next()) * (period / 4) / 255
			if a > b {
				a, b = b, a
			}
			return tick.Range{Min: a, Max: b}
		}
		assert := func(step int, op string) {
			if err := w.Check(); err != nil {
				t.Fatalf("step %d (%s): invariant broken: %v\n%v", step, op, err, w)
			}
		}

		for step := 0; step < 64 && pos < len(data); step++ {
			switch op := next() % 8; op {
			case 0:
				v := allValues[next()%len(allValues)]
				w = w.Paint(timeArg(), timeArg(), v)
				assert(step, "paint")
			case 1:
				w = w.Rotate(timeArg())
				assert(step, "rotate")
			case 2:
				w = w.Delay(delayArg())
				assert(step, "delay")
			case 3:
				w = w.DelayRF(delayArg(), delayArg())
				assert(step, "delayrf")
			case 4:
				w = w.MapUnary(Not)
				assert(step, "not")
			case 5:
				w = Combine(w, other, And)
				assert(step, "combine")
			case 6:
				w = w.IncorporateSkew()
				assert(step, "incorporate")
				if w.Skew != 0 {
					t.Fatalf("step %d: IncorporateSkew left skew %v", step, w.Skew)
				}
			case 7:
				other = w
				w = w.WithSkew(tick.Time(next()) * (period / 4) / 255)
				assert(step, "withskew")
			}
		}

		// Terminal invariants: At is total and valid over (and beyond)
		// the period; Equal is reflexive; normalization is idempotent
		// through a no-op paint.
		for ti := tick.Time(0); ti < 3*period; ti += period / 7 {
			if v := w.At(ti); !v.Valid() {
				t.Fatalf("At(%v) returned invalid value %d", ti, uint8(v))
			}
		}
		if !w.Equal(w) {
			t.Fatal("Equal not reflexive")
		}
		if again := w.Paint(0, 0, VU); !again.Equal(w) {
			t.Fatalf("empty paint changed the waveform:\n  before %v\n  after  %v", w, again)
		}
	})
}
