package pathsearch

import (
	"math"
	"strings"
	"testing"

	"scaldtv/internal/netlist"
	"scaldtv/internal/tick"
)

// chain builds a 10-gate buffer chain, delay 1.0/3.0 ns per gate, between
// a primary input and a register data pin.
func chain(t *testing.T) *netlist.Design {
	t.Helper()
	b := netlist.NewBuilder("chain")
	b.SetPeriod(100 * tick.NS)
	b.SetDefaultWire(tick.Range{})
	prev := b.Net("IN .S0-50")
	for i := 0; i < 10; i++ {
		o := b.Net(strings.Repeat("N", 1) + string(rune('0'+i)))
		b.Buf("B"+string(rune('0'+i)), tick.R(1, 3), []netlist.NetID{o}, netlist.Conns(prev))
		prev = o
	}
	q := b.Net("Q")
	b.Register("R", tick.R(1, 2), []netlist.NetID{q}, netlist.Conn{Net: b.Net("CK .P40-60")}, netlist.Conns(prev))
	return b.MustBuild()
}

func TestStatisticalBeatsWorstCase(t *testing.T) {
	d := chain(t)
	wc, err := Analyze(d)
	if err != nil {
		t.Fatal(err)
	}
	st, err := AnalyzeStatistical(d, StatOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var wcMax tick.Time
	for _, e := range wc.Endpoints {
		if e.From == "IN .S0-50" && e.To == "R:D" {
			wcMax = e.Max
		}
	}
	if wcMax != 30*tick.NS {
		t.Fatalf("worst-case max = %v, want 30 ns", wcMax)
	}
	var ep *StatEndpoint
	for i := range st.Endpoints {
		if st.Endpoints[i].From == "IN .S0-50" && st.Endpoints[i].To == "R:D" {
			ep = &st.Endpoints[i]
		}
	}
	if ep == nil {
		t.Fatalf("statistical endpoint missing: %+v", st.Endpoints)
	}
	// Mean 10 × 2 ns = 20 ns; σ = √10 × (2/6) ns ≈ 1.054 ns; 3σ ≈ 23.2 ns.
	if ep.Mean != 20*tick.NS {
		t.Errorf("mean = %v, want 20 ns", ep.Mean)
	}
	wantSigma := math.Sqrt(10) * 2000 / 6
	if math.Abs(ep.Sigma-wantSigma) > 1 {
		t.Errorf("sigma = %.1f ps, want %.1f", ep.Sigma, wantSigma)
	}
	if got := ep.Arrival(3); got >= wcMax || got <= ep.Mean {
		t.Errorf("3σ arrival %v should sit between the mean and the worst case %v", got, wcMax)
	}
	// The §1.4.1.1 point: the statistical analysis passes a budget the
	// worst-case analysis fails.
	budget := 25 * tick.NS
	if len(wc.Errors(budget)) == 0 {
		t.Error("worst-case analysis should fail the 25 ns budget")
	}
	if len(st.Errors(budget, 3)) != 0 {
		t.Errorf("statistical analysis should pass the 25 ns budget: %+v", st.Errors(budget, 3))
	}
}

func TestStatisticalCorrelatedDegeneratesToWorstCase(t *testing.T) {
	// The §4.2.4 caveat: components from one production run track
	// together, so sigmas add linearly and 3σ reaches the worst-case sum.
	d := chain(t)
	st, err := AnalyzeStatistical(d, StatOptions{Correlated: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range st.Endpoints {
		if e.From == "IN .S0-50" && e.To == "R:D" {
			if got := e.Arrival(3); got != 30*tick.NS {
				t.Errorf("correlated 3σ arrival = %v, want the worst-case 30 ns", got)
			}
			return
		}
	}
	t.Fatal("endpoint missing")
}

func TestStatisticalZeroSpread(t *testing.T) {
	// Fixed delays: sigma 0, arrival = mean = exact delay.
	b := netlist.NewBuilder("fixed")
	b.SetPeriod(50 * tick.NS)
	b.SetDefaultWire(tick.Range{})
	in := b.Net("IN .S0-25")
	x := b.Net("X")
	b.Buf("B", tick.R(5, 5), []netlist.NetID{x}, netlist.Conns(in))
	q := b.Net("Q")
	b.Register("R", tick.R(1, 1), []netlist.NetID{q}, netlist.Conn{Net: b.Net("CK .P20-30")}, netlist.Conns(x))
	st, err := AnalyzeStatistical(b.MustBuild(), StatOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range st.Endpoints {
		if e.From == "IN .S0-25" && e.To == "R:D" {
			if e.Mean != 5*tick.NS || e.Sigma != 0 {
				t.Errorf("fixed-delay endpoint = %+v", e)
			}
			return
		}
	}
	t.Fatal("endpoint missing")
}

func TestStatisticalString(t *testing.T) {
	st, err := AnalyzeStatistical(chain(t), StatOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s := st.String(); !strings.Contains(s, "STATISTICAL PATHS") || !strings.Contains(s, "3σ") {
		t.Errorf("rendering wrong:\n%s", s)
	}
	st2, _ := AnalyzeStatistical(chain(t), StatOptions{Correlated: true})
	if s := st2.String(); !strings.Contains(s, "correlated") {
		t.Errorf("correlated mode not labelled:\n%s", s)
	}
}

func TestModuleDelay(t *testing.T) {
	d := chain(t)
	lat, err := ModuleDelay(d, []string{"IN"}, []string{"N9"})
	if err != nil {
		t.Fatal(err)
	}
	if lat.Min != 10*tick.NS || lat.Max != 30*tick.NS {
		t.Errorf("module latency = %v, want 10.0/30.0", lat)
	}
	// Unknown boundary signals.
	if _, err := ModuleDelay(d, []string{"NOPE"}, []string{"N9"}); err == nil {
		t.Error("unknown inputs should fail")
	}
	// Unreachable outputs.
	if _, err := ModuleDelay(d, []string{"N9"}, []string{"IN"}); err == nil {
		t.Error("unreachable outputs should fail")
	}
}

func TestModuleDelayVectorBits(t *testing.T) {
	b := netlist.NewBuilder("vec")
	b.SetPeriod(50 * tick.NS)
	b.SetDefaultWire(tick.Range{})
	in := b.Vector("IN .S0-25", 4)
	out := b.Vector("OUT", 4)
	b.Gate(netlist.KBuf, "B", tick.R(2, 7), out, netlist.ConnsOf(in))
	lat, err := ModuleDelay(b.MustBuild(), []string{"IN"}, []string{"OUT"})
	if err != nil {
		t.Fatal(err)
	}
	if lat != tick.R(2, 7) {
		t.Errorf("vector module latency = %v, want 2.0/7.0", lat)
	}
}
