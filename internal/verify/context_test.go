package verify

import (
	"context"
	"errors"
	"testing"
	"time"

	"scaldtv/internal/netlist"
	"scaldtv/internal/serr"
	"scaldtv/internal/tick"
)

// TestRunContextCanceled: a pre-canceled context aborts every engine
// configuration with a structured canceled error, before any result is
// produced.
func TestRunContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, opts := range []Options{
		{Workers: 1},
		{Workers: 2},
		{Workers: 1, IntraWorkers: 2},
	} {
		d := buildMultiCase(t, 4)
		res, err := RunContext(ctx, d, opts)
		if err == nil {
			t.Fatalf("RunContext(%+v) ignored a canceled context (res=%v)", opts, res != nil)
		}
		if serr.KindOf(err) != serr.Canceled {
			t.Errorf("RunContext(%+v) error kind = %v, want canceled: %v", opts, serr.KindOf(err), err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("RunContext(%+v) error does not wrap context.Canceled: %v", opts, err)
		}
	}
}

// TestVerifierCancelLeavesNoRetainedState: a canceled VerifyContext
// retains nothing, and the next (uncancelled) Verify behaves exactly like
// a fresh session.
func TestVerifierCancelLeavesNoRetainedState(t *testing.T) {
	d := buildMultiCase(t, 4)
	opts := Options{Workers: 1, KeepWaves: true, Margins: true}
	V := NewVerifier(d, opts)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := V.VerifyContext(ctx); err == nil {
		t.Fatal("VerifyContext ignored a canceled context")
	}
	if V.Result() != nil {
		t.Error("canceled VerifyContext retained a result")
	}
	got, err := V.Verify()
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	sameReports(t, "verify after canceled verify", want, got)
}

// TestReverifyCancelFallsBackToScratch is the acceptance contract:
// cancelling a re-verification mid-session must not corrupt the session —
// the next Reverify falls back to a full run and stays bit-identical to a
// from-scratch Verify of the edited design.
func TestReverifyCancelFallsBackToScratch(t *testing.T) {
	for _, workers := range []int{1, 2} {
		d := buildMultiCase(t, 4)
		opts := Options{Workers: workers, KeepWaves: true, Margins: true}
		V := NewVerifier(d, opts)
		if _, err := V.Verify(); err != nil {
			t.Fatal(err)
		}

		pi := findPrim(t, d, "DELAY B")
		d.Prims[pi].Delay.Max += 4 * tick.NS
		ch := netlist.Changes{Prims: []netlist.PrimID{pi}}

		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := V.ReverifyContext(ctx, ch); err == nil {
			t.Fatal("ReverifyContext ignored a canceled context")
		}

		// The retained state was dropped: the next Reverify is a full run…
		inc, err := V.Reverify(ch)
		if err != nil {
			t.Fatal(err)
		}
		if inc.Stats.Incremental {
			t.Error("Reverify after cancellation claims to be incremental")
		}
		// …and bit-identical to a scratch verification of the edited design.
		scratch, err := Run(d, opts)
		if err != nil {
			t.Fatal(err)
		}
		sameReports(t, "reverify after canceled reverify", scratch, inc)
	}
}

// TestDeadlineMidVerifyIsCleanAbort: a deadline expiring somewhere inside
// a larger run either completes with the exact deterministic result or
// aborts with a canceled-kind error — never anything in between.  Run
// under -race this also exercises the barrier-side cancellation checks.
func TestDeadlineMidVerifyIsCleanAbort(t *testing.T) {
	want, err := Run(buildMultiCase(t, 6), Options{Workers: 2, IntraWorkers: 2, KeepWaves: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, timeout := range []time.Duration{time.Microsecond, 50 * time.Microsecond, time.Second} {
		d := buildMultiCase(t, 6)
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		res, err := RunContext(ctx, d, Options{Workers: 2, IntraWorkers: 2, KeepWaves: true})
		cancel()
		switch {
		case err != nil:
			if serr.KindOf(err) != serr.Canceled {
				t.Errorf("timeout %v: error kind %v, want canceled: %v", timeout, serr.KindOf(err), err)
			}
		case res != nil:
			sameReports(t, "deadline race", want, res)
		default:
			t.Errorf("timeout %v: nil result and nil error", timeout)
		}
	}
}
