package report

import (
	"fmt"
	"sort"
	"strings"

	"scaldtv/internal/netlist"
	"scaldtv/internal/verify"
)

// DOT renders the design as a Graphviz digraph: primitives as shaped
// nodes (storage as boxes, checkers as diamonds, gates as ellipses),
// primary inputs as plain names, and one edge per connection with vector
// widths as labels.
func DOT(d *netlist.Design) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=LR;\n  node [fontname=\"monospace\"];\n", d.Name)

	esc := func(s string) string { return strings.ReplaceAll(s, `"`, `\"`) }
	for pi := range d.Prims {
		p := &d.Prims[pi]
		shape := "ellipse"
		switch {
		case p.Kind.IsStorage():
			shape = "box"
		case p.Kind.IsChecker():
			shape = "diamond"
		case p.Kind.NumSelects() > 0:
			shape = "trapezium"
		}
		fmt.Fprintf(&sb, "  p%d [label=\"%s\\n%s\" shape=%s];\n", pi, esc(p.Name), p.Kind, shape)
	}
	// Primary inputs (undriven nets with fanout), one node per base name.
	inputs := map[string]bool{}
	for i := range d.Nets {
		n := &d.Nets[i]
		if n.Driver == netlist.NoDriver && len(n.Fanout) > 0 {
			inputs[vecBase(n.Name)] = true
		}
	}
	var inNames []string
	for name := range inputs {
		inNames = append(inNames, name)
	}
	sort.Strings(inNames)
	for i, name := range inNames {
		fmt.Fprintf(&sb, "  in%d [label=%q shape=plaintext];\n", i, esc(name))
	}
	inIdx := func(name string) int {
		for i, n := range inNames {
			if n == name {
				return i
			}
		}
		return -1
	}

	// Edges: driver → sink per (driver prim or input, sink prim), with
	// bit counts.
	type edgeKey struct {
		src  string
		sink int
	}
	widths := map[edgeKey]int{}
	labels := map[edgeKey]string{}
	for pi := range d.Prims {
		p := &d.Prims[pi]
		for _, port := range p.In {
			for _, c := range port.Bits {
				n := &d.Nets[c.Net]
				var src string
				if n.Driver == netlist.NoDriver {
					src = fmt.Sprintf("in%d", inIdx(vecBase(n.Name)))
				} else {
					src = fmt.Sprintf("p%d", n.Driver)
				}
				k := edgeKey{src, pi}
				widths[k]++
				labels[k] = vecBase(n.Name)
			}
		}
	}
	var keys []edgeKey
	for k := range widths {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].src != keys[j].src {
			return keys[i].src < keys[j].src
		}
		return keys[i].sink < keys[j].sink
	})
	for _, k := range keys {
		lbl := labels[k]
		if widths[k] > 1 {
			lbl = fmt.Sprintf("%s ×%d", lbl, widths[k])
		}
		fmt.Fprintf(&sb, "  %s -> p%d [label=%q];\n", k.src, k.sink, esc(lbl))
	}
	sb.WriteString("}\n")
	return sb.String()
}

// vecBase strips a bit subscript and assertion from a net name for edge
// labelling.
func vecBase(name string) string {
	if i := strings.IndexByte(name, '<'); i > 0 {
		rest := ""
		if j := strings.IndexByte(name[i:], '>'); j > 0 {
			rest = name[i+j+1:]
		}
		return strings.TrimSpace(name[:i] + rest)
	}
	return name
}

// CaseDiff lists the signals whose relaxed waveforms differ between two
// verified cases — exactly the cone the case mapping affected (§2.7).
// Requires Options.KeepWaves.
func CaseDiff(res *verify.Result, a, b int) string {
	if a < 0 || b < 0 || a >= len(res.Cases) || b >= len(res.Cases) ||
		res.Cases[a].Waves == nil || res.Cases[b].Waves == nil {
		return "case diff unavailable: run the verifier with KeepWaves\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "SIGNALS DIFFERING BETWEEN CASE %d (%s) AND CASE %d (%s)\n\n",
		a, res.Cases[a].Label, b, res.Cases[b].Label)
	count := 0
	seen := map[string]bool{}
	for i := range res.Design.Nets {
		wa, wb := res.Cases[a].Waves[i], res.Cases[b].Waves[i]
		if wa.Equal(wb) {
			continue
		}
		base := vecBase(res.Design.Nets[i].Name)
		if seen[base] {
			continue
		}
		seen[base] = true
		count++
		fmt.Fprintf(&sb, "  %-28s case %d: %s\n  %-28s case %d: %s\n",
			base, a, WaveString(wa), "", b, WaveString(wb))
	}
	if count == 0 {
		sb.WriteString("  none — the cases share every waveform\n")
	} else {
		fmt.Fprintf(&sb, "\n  %d signal(s) in the affected cone\n", count)
	}
	return sb.String()
}
