package sections

import (
	"strings"
	"testing"

	"scaldtv/internal/lib"
	"scaldtv/internal/verify"
)

const header = `
period 50ns
clockunit 6.25ns
defaultwire 0ns 2ns
skew precision -1ns 1ns
`

func fetch(assert string) string {
	return header + lib.Prelude + `
use "REG 10176" "SRC REG" SIZE=8 (CK="MCK .P0-4", I="SRC DATA .S6-12"<0:7>, Q="SRC Q"<0:7>)
use "2 MUX 10173" "OP SEL" SIZE=8 (S="OP SELECT .S0-8", D0="SRC Q"<0:7>, D1="IMM .S0-8"<0:7>, O="OPERAND BUS ` + assert + `"<0:7>)
`
}

func execute(assert string) string {
	return header + lib.Prelude + `
use "ALU 10181" "EXEC ALU" SIZE=8 (A="OPERAND BUS ` + assert + `"<0:7>, B="ACCUM .S2-9"<0:7>, C1="CARRY .S2-9", S="FUNC .S0-8"<0:3>, E="ENCK .P4-5", F=RESULT<0:7>)
use "REG 10176" "STATUS REG" SIZE=8 (CK="MCK .P0-4", I=RESULT<0:7>, Q=STATUS<0:7>)
`
}

func TestModularClean(t *testing.T) {
	rep, err := Verify(map[string]string{
		"fetch":   fetch(".S2.5-8.2"),
		"execute": execute(".S2.5-8.2"),
	}, verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("expected clean modular run:\n%s", rep)
	}
	if len(rep.Sections) != 2 {
		t.Fatalf("sections = %d", len(rep.Sections))
	}
	// The producer and the consumer both see the interface signal.
	var prod, cons bool
	for _, sec := range rep.Sections {
		if _, ok := sec.Produced["OPERAND BUS"]; ok {
			prod = true
		}
		if _, ok := sec.Consumed["OPERAND BUS"]; ok {
			cons = true
		}
	}
	if !prod || !cons {
		t.Errorf("interface roles wrong: produced=%v consumed=%v", prod, cons)
	}
	if s := rep.String(); !strings.Contains(s, "free of timing errors") {
		t.Errorf("summary wrong:\n%s", s)
	}
}

func TestInterfaceMismatchCaught(t *testing.T) {
	// The two designers disagree about when the bus is stable: the fetch
	// side promises .S2.5-8.2, the execute side relies on .S2-8.2.
	rep, err := Verify(map[string]string{
		"fetch":   fetch(".S2.5-8.2"),
		"execute": execute(".S2-8.2"),
	}, verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Mismatches) != 1 {
		t.Fatalf("mismatches = %+v", rep.Mismatches)
	}
	m := rep.Mismatches[0]
	if m.Signal != "OPERAND BUS" {
		t.Errorf("mismatch signal = %q", m.Signal)
	}
	if rep.Clean() {
		t.Error("mismatched interfaces must not be clean")
	}
	if s := rep.String(); !strings.Contains(s, "MISMATCH") {
		t.Errorf("summary missing mismatch:\n%s", s)
	}
}

func TestSectionViolationBlocksClean(t *testing.T) {
	late := strings.Replace(fetch(".S2.5-8.2"), "SRC DATA .S6-12", "SRC DATA .S7.8-8", 1)
	rep, err := Verify(map[string]string{
		"fetch":   late,
		"execute": execute(".S2.5-8.2"),
	}, verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations == 0 || rep.Clean() {
		t.Errorf("section violation not reflected: %+v", rep)
	}
}

func TestSectionErrors(t *testing.T) {
	if _, err := Verify(map[string]string{"bad": "nonsense"}, verify.Options{}); err == nil {
		t.Error("parse error not propagated")
	}
	if _, err := Verify(map[string]string{"bad": "period 50ns\nuse NO (A=B)"}, verify.Options{}); err == nil {
		t.Error("expand error not propagated")
	}
}
