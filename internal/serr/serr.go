// Package serr defines the structured error type shared by the compile
// and verify boundaries.  Every error leaving hdl.Parse, expand.Expand or
// the verify entry points is (or wraps) an *Error carrying a Kind, so
// callers — the scaldtvd HTTP front-end in particular — can map failures
// onto protocol-level outcomes without parsing message text.
//
// The root scaldtv package re-exports Error, Kind and the sentinel values
// as its public error surface.
package serr

import (
	"errors"
	"fmt"
)

// Kind classifies an error by the pipeline stage that produced it.
type Kind int

const (
	// KindUnknown marks an unclassified error (the zero value).
	KindUnknown Kind = iota
	// Parse: the HDL source failed lexing or parsing.
	Parse
	// Elaborate: macro expansion or netlist construction/validation
	// rejected a structurally invalid design.
	Elaborate
	// Assertion: a signal's timing assertion (or a forced waveform)
	// could not be turned into a consistent seed waveform.
	Assertion
	// Limit: a configured bound was exceeded — invalid sweep bounds,
	// request-size or capacity limits.
	Limit
	// Canceled: the run was abandoned because its context was canceled
	// or its deadline expired.  The error wraps the context's cause, so
	// errors.Is(err, context.Canceled) and
	// errors.Is(err, context.DeadlineExceeded) keep working.
	Canceled
)

// String names the kind; it doubles as the wire identifier the scaldtvd
// error responses use.
func (k Kind) String() string {
	switch k {
	case Parse:
		return "parse"
	case Elaborate:
		return "elaborate"
	case Assertion:
		return "assertion"
	case Limit:
		return "limit"
	case Canceled:
		return "canceled"
	default:
		return "unknown"
	}
}

// Pos is a 1-based source position.  The zero value means "no position".
type Pos struct {
	Line int
	Col  int
}

// Error is a classified failure from the compile/verify pipeline.  Msg
// holds the complete human-readable message (positions included, in the
// historical "hdl:LINE:COL: ..." style), so Error() output is unchanged
// from the pre-structured era and string-based matching keeps working.
type Error struct {
	Kind Kind
	Pos  Pos // source position when known, zero otherwise
	Msg  string
	Err  error // wrapped cause, may be nil
}

// Error returns the formatted message.
func (e *Error) Error() string { return e.Msg }

// Unwrap exposes the wrapped cause to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// Is matches sentinel errors by kind: a target *Error with an empty Msg
// (such as the scaldtv.ErrParse … scaldtv.ErrCanceled sentinels) matches
// any error of the same kind.
func (e *Error) Is(target error) bool {
	t, ok := target.(*Error)
	return ok && t.Msg == "" && t.Err == nil && t.Kind == e.Kind
}

// Sentinel returns the comparison value for errors.Is checks against a
// kind: errors.Is(err, Sentinel(Parse)) reports whether err is (or wraps)
// a parse error.
func Sentinel(k Kind) *Error { return &Error{Kind: k} }

// New formats a structured error at a known position.
func New(k Kind, pos Pos, format string, args ...any) *Error {
	return &Error{Kind: k, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Newf formats a structured error with no position.
func Newf(k Kind, format string, args ...any) *Error {
	return &Error{Kind: k, Msg: fmt.Sprintf(format, args...)}
}

// Wrap classifies err under kind k, preserving its message and keeping it
// reachable through errors.Is/As.  A nil err stays nil and an err that
// already is (or wraps) an *Error is returned unchanged, so boundary
// functions can wrap unconditionally without double-classifying.
func Wrap(k Kind, err error) error {
	if err == nil {
		return nil
	}
	var se *Error
	if errors.As(err, &se) {
		return err
	}
	return &Error{Kind: k, Msg: err.Error(), Err: err}
}

// KindOf reports the kind of err, or KindUnknown when err is not (and
// does not wrap) an *Error.
func KindOf(err error) Kind {
	var se *Error
	if errors.As(err, &se) {
		return se.Kind
	}
	return KindUnknown
}

// ParseKind inverts String: it maps a wire identifier back onto its
// Kind, so structured errors survive an RPC hop (the cluster batch
// protocol ships kinds as strings).  Unrecognized identifiers — and the
// literal "unknown" — map to KindUnknown.
func ParseKind(s string) Kind {
	switch s {
	case "parse":
		return Parse
	case "elaborate":
		return Elaborate
	case "assertion":
		return Assertion
	case "limit":
		return Limit
	case "canceled":
		return Canceled
	default:
		return KindUnknown
	}
}
