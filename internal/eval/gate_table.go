package eval

// This file is the table-driven gate path of the evaluation tape
// (internal/tape): simple gates compose their inputs through the
// precomputed packed truth tables of the values package instead of
// per-sample function calls.  GateTableA mirrors evalGate statement for
// statement — same vectored-bit economy, directive handling and delay
// tail — so its outputs are segment-for-segment identical; kinds outside
// TableKind keep the generic evaluator.

import (
	"scaldtv/internal/assertion"
	"scaldtv/internal/netlist"
	"scaldtv/internal/tick"
	"scaldtv/internal/values"
)

// TableKind reports whether the kind is a simple gate evaluated by
// GateTableA.  CHG is excluded: its n-ary fold over input activity has no
// binary table form.
func TableKind(k netlist.Kind) bool {
	switch k {
	case netlist.KBuf, netlist.KNot, netlist.KAnd, netlist.KNand, netlist.KOr, netlist.KNor, netlist.KXor:
		return true
	}
	return false
}

// gateTableOf is gateFold with the connective as a packed table.
func gateTableOf(k netlist.Kind) (*values.BinaryTable, bool) {
	switch k {
	case netlist.KAnd:
		return values.AndTable, false
	case netlist.KNand:
		return values.AndTable, true
	case netlist.KOr:
		return values.OrTable, false
	case netlist.KNor:
		return values.OrTable, true
	case netlist.KXor:
		return values.XorTable, false
	}
	return nil, false
}

// PrimTableA is PrimA with simple gates dispatched through the packed
// truth tables; every other kind falls through to the generic evaluator.
func PrimTableA(d *netlist.Design, p *netlist.Prim, get Getter, a *values.Arena) ([]Signal, error) {
	if TableKind(p.Kind) {
		return GateTableA(d, p, get, a)
	}
	return PrimA(d, p, get, a)
}

// GateTableA evaluates a simple gate through packed truth tables.  The
// body mirrors evalGate statement for statement; only the connective
// application differs.  p.Kind must satisfy TableKind.
func GateTableA(d *netlist.Design, p *netlist.Prim, get Getter, a *values.Arena) ([]Signal, error) {
	out := make([]Signal, p.Width)
	allPorts := make([]int, len(p.In))
	for i := range allPorts {
		allPorts[i] = i
	}
	for bit := 0; bit < p.Width; bit++ {
		if bit > 0 && samePortBits(d, p, allPorts, bit, bit-1, get) {
			out[bit] = out[bit-1]
			continue
		}
		ins := make([]procIn, len(p.In))
		for i, port := range p.In {
			ins[i] = processConn(d, port.Bits[bit], get, a)
		}

		delay := p.Delay
		zeroed := false
		anyClock := false
		for _, in := range ins {
			if in.dir.ZeroesGate() {
				delay = tick.Range{}
				zeroed = true
			}
			if in.dir.ChecksStability() {
				anyClock = true
			}
		}

		var w values.Waveform
		var rest assertion.Directives
		switch p.Kind {
		case netlist.KBuf, netlist.KNot:
			w = ins[0].wave
			if p.Kind == netlist.KNot {
				w = w.MapTableA(values.NotTable, a)
			}
			rest = ins[0].rest
		default:
			tab, inv := gateTableOf(p.Kind)
			waves := make([]values.Waveform, 0, len(ins))
			for _, in := range ins {
				if anyClock && !in.dir.ChecksStability() {
					waves = append(waves, values.ConstA(d.Period, identity(p.Kind), a))
					continue
				}
				waves = append(waves, in.wave)
			}
			w = waves[0]
			for _, x := range waves[1:] {
				w = values.CombineTableA(w, x, tab, a)
			}
			if inv {
				w = w.MapTableA(values.NotTable, a)
			}
			rest = firstRest(ins, anyClock)
		}

		switch {
		case p.RF != nil && !zeroed:
			w = w.DelayRFA(p.RF.Rise, p.RF.Fall, a)
		case !delay.IsZero():
			w = w.DelayA(delay, a)
		}
		out[bit] = Signal{Wave: w, Dirs: rest}
	}
	return out, nil
}
