package values

import (
	"sync"
	"sync/atomic"
)

// Fingerprint returns a 64-bit structural hash of the waveform: its period,
// its out-of-band skew, and the canonical (normalized) segment list.  Two
// semantically Equal waveforms always have the same fingerprint, whatever
// segmentation they were built with: the normalized form — adjacent
// equal-valued segments merged, zero-width segments dropped, the first
// segment anchored at time 0 — is uniquely determined by the periodic step
// function the waveform denotes, so hashing it hashes the semantics.
//
// The converse does not hold (64 bits can collide); callers needing exact
// identity use an Interner, which disambiguates colliding fingerprints and
// hands out genuinely unique handles.
func (w Waveform) Fingerprint() uint64 {
	if !w.normalized() {
		w = w.normalize()
	}
	// FNV-1a over the canonical encoding.
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime64
			x >>= 8
		}
	}
	mix(uint64(w.Period))
	mix(uint64(w.Skew))
	for _, s := range w.Segs {
		h ^= uint64(s.V)
		h *= prime64
		mix(uint64(s.W))
	}
	return h
}

// normalized reports whether the segment list is already in canonical form,
// so Fingerprint can skip the normalizing copy on the (overwhelmingly
// common) waveforms produced by the value algebra, which normalizes on
// construction.
func (w Waveform) normalized() bool {
	for i, s := range w.Segs {
		if s.W == 0 {
			return false
		}
		if i > 0 && w.Segs[i-1].V == s.V {
			return false
		}
	}
	return true
}

// canonEqual reports exact equality of two canonical (normalized)
// waveforms.  On normalized forms it agrees with the semantic Equal but
// runs without allocating.
func canonEqual(a, b Waveform) bool {
	if a.Period != b.Period || a.Skew != b.Skew || len(a.Segs) != len(b.Segs) {
		return false
	}
	for i := range a.Segs {
		if a.Segs[i] != b.Segs[i] {
			return false
		}
	}
	return true
}

// internShards is the number of independent lock stripes.  Must be a
// power of two.  Waveforms are routed to a stripe by fingerprint, so
// concurrent interning of distinct waveforms rarely contends on a lock.
const internShards = 32

// Interner deduplicates waveforms (hash-consing): semantically Equal
// waveforms intern to one shared canonical copy — so their segment storage
// is shared — and to one unique handle.  Distinct waveforms always receive
// distinct handles, even when their 64-bit fingerprints collide, which lets
// handles stand in for full waveform comparisons: id(a) == id(b) ⇔
// a.Equal(b).
//
// An Interner is safe for concurrent use.  The table is striped into
// internShards independently locked shards keyed by fingerprint; handle
// ids come from one shared atomic counter, so ids are unique across the
// whole table but their numeric order depends on interning order.
type Interner struct {
	shards [internShards]internShard
	next   atomic.Uint64
	hits   atomic.Int64
}

type internShard struct {
	mu      sync.RWMutex
	buckets map[uint64][]internEntry
}

type internEntry struct {
	w  Waveform
	id uint64
}

// NewInterner returns an empty interning table.
func NewInterner() *Interner {
	in := &Interner{}
	for i := range in.shards {
		in.shards[i].buckets = make(map[uint64][]internEntry)
	}
	return in
}

// Intern returns the canonical copy of w and its unique handle.  The first
// time a waveform value is seen, its normalized form is stored and becomes
// the canonical copy; later Equal waveforms return that same copy.
func (in *Interner) Intern(w Waveform) (Waveform, uint64) {
	if !w.normalized() {
		w = w.normalize()
	}
	fp := w.Fingerprint()
	sh := &in.shards[fp&(internShards-1)]
	sh.mu.RLock()
	for _, e := range sh.buckets[fp] {
		if canonEqual(e.w, w) {
			sh.mu.RUnlock()
			in.hits.Add(1)
			return e.w, e.id
		}
	}
	sh.mu.RUnlock()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	// Re-check under the write lock: another goroutine may have inserted
	// the same waveform between the two lock acquisitions.
	for _, e := range sh.buckets[fp] {
		if canonEqual(e.w, w) {
			in.hits.Add(1)
			return e.w, e.id
		}
	}
	// The canonical copy owns its segment storage: the incoming slice may
	// live in a caller's scratch arena, and the table must not pin (or
	// alias) that memory.
	if len(w.Segs) > 0 {
		w.Segs = append([]Segment(nil), w.Segs...)
	}
	e := internEntry{w: w, id: in.next.Add(1)}
	sh.buckets[fp] = append(sh.buckets[fp], e)
	return e.w, e.id
}

// Stats reports the table's activity: unique is the number of distinct
// waveforms stored, shared the number of Intern calls that were served an
// existing copy (the storage actually deduplicated).
func (in *Interner) Stats() (unique, shared int) {
	return int(in.next.Load()), int(in.hits.Load())
}
