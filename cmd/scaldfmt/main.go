// Command scaldfmt pretty-prints HDL source in the canonical style: one
// statement per line, uniform spacing, minimal quoting.  Like gofmt, it
// reads a file (or stdin with "-") and writes the formatted source to
// stdout; -w rewrites the file in place and -l lists files whose
// formatting would change.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"scaldtv/internal/hdl"
)

func main() {
	write := flag.Bool("w", false, "rewrite the file in place")
	list := flag.Bool("l", false, "list files whose formatting differs")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: scaldfmt [-w] [-l] file.scald ...  (or - for stdin)")
		os.Exit(2)
	}
	exit := 0
	for _, path := range flag.Args() {
		if err := format(path, *write, *list); err != nil {
			fmt.Fprintf(os.Stderr, "scaldfmt: %v\n", err)
			exit = 1
		}
	}
	os.Exit(exit)
}

func format(path string, write, list bool) error {
	var src []byte
	var err error
	if path == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(path)
	}
	if err != nil {
		return err
	}
	f, err := hdl.Parse(string(src))
	if err != nil {
		return err
	}
	out := hdl.Format(f)
	switch {
	case list:
		if out != string(src) {
			fmt.Println(path)
		}
	case write && path != "-":
		return os.WriteFile(path, []byte(out), 0o644)
	default:
		fmt.Print(out)
	}
	return nil
}
