package hdl

import (
	"scaldtv/internal/tick"
)

// File is a parsed HDL source file.
type File struct {
	Design    string
	Period    tick.Time
	ClockUnit tick.Time
	HasWire   bool
	Wire      tick.Range
	HasPSkew  bool
	PSkew     tick.Range
	HasCSkew  bool
	CSkew     tick.Range
	WiredOr   bool
	Macros    []*Macro
	Body      []*Instance // root-level instances
	Signals   []SignalDecl
	Wires     []WireDecl
	Cases     []CaseDecl
	Params    []ParamDecl
}

// ParamDecl declares a named design parameter at file level: a real
// value delay expressions may reference ("param load = 1.0 range 0.5
// 4.0").  Without an explicit range the parameter is fixed at its
// default.
type ParamDecl struct {
	Name     string
	Default  float64
	HasRange bool
	Lo, Hi   float64
	Line     int
}

// DExpr is an affine delay expression over named design parameters, in
// the language's customary nanoseconds: ConstNS + Σ Terms[i].NS ·
// value(Terms[i].Param).  A constant expression has no Terms.  Values
// stay in source units (ns) so formatting round-trips exactly; the
// expander converts to picoseconds once.
type DExpr struct {
	ConstNS float64
	Terms   []DTerm
}

// DTerm is one parameter term: NS nanoseconds per unit of Param.
type DTerm struct {
	Param string
	NS    float64
}

// Constant reports whether the expression has no parameter dependence.
func (e DExpr) Constant() bool { return len(e.Terms) == 0 }

// Macro is a named, parameterized definition expanded at each use
// (§2.4, Fig 3-5).
type Macro struct {
	Name   string
	Params []string   // value parameters (SIZE, ...)
	Ports  []PortDecl // connectable signals (the /P markers)
	Locals []PortDecl // macro-local signals (the /M markers)
	Body   []*Instance
	Line   int
}

// PortDecl declares a macro port or local with an optional vector range.
type PortDecl struct {
	Name     string
	HasRange bool
	Lo, Hi   Expr
}

// SignalDecl pre-declares a (vector) signal at the root level.
type SignalDecl struct {
	Name     string
	HasRange bool
	Lo, Hi   Expr
}

// WireDecl overrides the interconnection delay of a signal (§2.5.3).
type WireDecl struct {
	Name  string
	Delay tick.Range
}

// CaseDecl is one case-analysis cycle: a list of signal = constant
// assignments (§2.7.1).
type CaseDecl struct {
	Label   string
	Assigns []CaseAssign
}

// CaseAssign maps a signal to 0 or 1 for a case.
type CaseAssign struct {
	Signal string
	Value  int
}

// Instance is a primitive or macro instantiation.
type Instance struct {
	Kind  string // primitive keyword ("and", "reg", ...) or "use"
	Macro string // macro name when Kind == "use"
	Label string // optional instance label

	// Properties.
	HasDelay bool
	Delay    tick.Range
	// A delay written as an expression over parameters keeps its
	// symbolic form; HasDelay/Delay stay unset for it.
	HasDelayExpr               bool
	DelayExprMin, DelayExprMax DExpr
	HasSelDelay                bool
	SelDelay                   tick.Range
	HasRF                      bool
	Rise, Fall                 tick.Range // direction-dependent delays (§4.2.2)
	Setup, Hold                tick.Time
	High, Low                  tick.Time
	ParamVals                  map[string]Expr // value-parameter bindings for "use"

	Ins   []*SigExpr          // positional inputs (primitives)
	Outs  []*SigExpr          // positional outputs (primitives)
	Conns map[string]*SigExpr // named port bindings for "use"

	Line int
}

// SigExpr references a signal, optionally complemented, bit-sliced, and
// carrying an evaluation-directive string.
type SigExpr struct {
	Invert   bool
	Name     string // full signal name, possibly with embedded assertion
	HasRange bool
	Lo, Hi   Expr // bit range <lo:hi>; a single index parses as <i:i>
	Dirs     string
	Line     int
}

// Expr is a constant integer expression over macro value parameters
// (needed for vector bounds like SIZE-1).
type Expr interface {
	Eval(env map[string]int) (int, error)
}

// NumExpr is an integer literal.
type NumExpr int

// VarExpr references a value parameter.
type VarExpr string

// BinExpr applies +, -, * or / to two sub-expressions.
type BinExpr struct {
	Op   byte
	L, R Expr
}
