package report

import (
	"fmt"
	"sort"
	"strings"

	"scaldtv/internal/tick"
	"scaldtv/internal/verify"
)

// SlackListing renders the constraint margins sorted most-critical first —
// the table a designer reads to find the paths limiting the cycle time.
// The closing cycle-time estimate implements the §1.1 use: because design
// clocks and assertions are specified in clock units that scale with the
// period (§2.3), the worst set-up slack says how much faster (or how much
// slower) the machine could run.  Requires Options.Margins.
func SlackListing(res *verify.Result, topN int) string {
	if len(res.Margins) == 0 {
		return "slack listing unavailable: run the verifier with Margins\n"
	}
	if topN <= 0 {
		topN = 20
	}
	ms := append([]verify.Margin(nil), res.Margins...)
	sort.SliceStable(ms, func(i, j int) bool { return ms[i].Slack() < ms[j].Slack() })

	var sb strings.Builder
	fmt.Fprintf(&sb, "CONSTRAINT MARGINS — design %s, cycle %s ns (%d constraints evaluated)\n\n",
		res.Design.Name, res.Design.Period, len(ms))
	fmt.Fprintf(&sb, "  %-10s %-34s %-26s %9s %9s %9s\n",
		"SLACK", "CHECKER", "DATA", "REQUIRED", "ACTUAL", "AT")
	shown := 0
	for _, m := range ms {
		if shown >= topN {
			fmt.Fprintf(&sb, "  … %d more\n", len(ms)-shown)
			break
		}
		shown++
		mark := ""
		if m.Slack() < 0 {
			mark = "  << VIOLATED"
		}
		fmt.Fprintf(&sb, "  %-10s %-34s %-26s %9s %9s %9s%s\n",
			m.Slack().String(), trunc(m.Prim, 34), trunc(m.Data, 26),
			m.Required, m.Actual, m.At, mark)
	}

	// Cycle-time estimate from the worst set-up slack (§1.1): set-up
	// margins track how early data settles relative to its clock edge;
	// with clock-unit-scaled assertions the period can shrink by roughly
	// the worst slack before the first constraint fails.
	worst := tick.Infinity
	for _, m := range ms {
		if m.Kind == verify.SetupViolation && m.Slack() < worst {
			worst = m.Slack()
		}
	}
	if worst != tick.Infinity {
		switch {
		case worst > 0:
			fmt.Fprintf(&sb, "\n  worst set-up slack %s ns: the %s ns cycle could shrink toward ~%s ns\n",
				worst, res.Design.Period, res.Design.Period-worst)
		case worst < 0:
			fmt.Fprintf(&sb, "\n  worst set-up slack %s ns: the cycle must grow toward ~%s ns (or the path be reworked)\n",
				worst, res.Design.Period-worst)
		default:
			sb.WriteString("\n  worst set-up slack 0.0 ns: the design is exactly at its cycle limit\n")
		}
	}
	return sb.String()
}

func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
