package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"scaldtv/internal/gen"
	"scaldtv/internal/verify"
)

// oneCoreWorker emulates a worker machine with one engine core inside
// this process: requests to the wrapped handler run one at a time, so a
// worker's capacity is bounded the way a real single-core worker host's
// is.  Without this, every in-process httptest worker shares the whole
// machine and workers=1 is never capacity-bound, hiding the scale-out
// the benchmark exists to measure.
func oneCoreWorker(h http.Handler) http.Handler {
	var mu sync.Mutex
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		h.ServeHTTP(rw, r)
	})
}

// BenchmarkClusterThroughput measures concurrent distributed
// verification throughput — the scaldload scenario — on paper-scale
// 1003-chip designs with 8 declared cases: several client streams cycle
// over four design variants against a coordinator with 1 vs 2 workers,
// each worker emulating a one-core machine (see oneCoreWorker).  Each
// sub-job runs single-threaded (Workers:1), so worker count — not
// intra-run parallelism — is what divides the wall time; on a multi-core
// host the 2-worker cluster must approach 2x the single-worker
// throughput (the CI gate holds the scaldload ratio above 1.7x; this
// benchmark records the same scale-out for the archived JSON chain).
// Workers are warmed with one untimed pass over every variant first:
// steady-state cluster traffic hits the design caches, which is the
// deployment scenario the scale-out serves.
func BenchmarkClusterThroughput(b *testing.B) {
	sources := make([]string, 4)
	for i := range sources {
		sources[i] = gen.Source(gen.Config{Chips: 1003 + i*17, Cases: 8})
	}
	for _, n := range []int{1, 2} {
		b.Run(fmt.Sprintf("workers=%d", n), func(b *testing.B) {
			endpoints := make([]string, n)
			for i := range endpoints {
				w := NewWorker(WorkerConfig{})
				srv := httptest.NewServer(oneCoreWorker(w.Handler()))
				defer srv.Close()
				endpoints[i] = srv.URL
			}
			c := NewCoordinator(CoordinatorConfig{
				Endpoints: endpoints,
				Backoff:   time.Millisecond,
			})
			defer c.Close()
			opts := verify.Options{Workers: 1}
			for _, src := range sources {
				if _, _, err := c.Verify(context.Background(), src, opts); err != nil {
					b.Fatal(err)
				}
			}
			var seq atomic.Int64
			b.SetParallelism(4) // 4×GOMAXPROCS concurrent client streams
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := int(seq.Add(1))
					src := sources[i%len(sources)]
					if _, _, err := c.Verify(context.Background(), src, opts); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkClusterBatchRPC isolates the wire cost: a small already-warm
// design verified over the cluster, so ns/op approximates
// protocol+partition+merge overhead per verification rather than engine
// time.
func BenchmarkClusterBatchRPC(b *testing.B) {
	src := gen.Source(gen.Config{Chips: 50, Cases: 2})
	w := NewWorker(WorkerConfig{})
	srv := httptest.NewServer(w.Handler())
	defer srv.Close()
	c := NewCoordinator(CoordinatorConfig{Endpoints: []string{srv.URL}})
	defer c.Close()
	opts := verify.Options{Workers: 1}
	if _, _, err := c.Verify(context.Background(), src, opts); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Verify(context.Background(), src, opts); err != nil {
			b.Fatal(err)
		}
	}
}
