package values

import "scaldtv/internal/tick"

// Arena is a bump allocator for the scratch slices the waveform algebra
// builds while evaluating a primitive: segment lists and boundary lists.
// One evaluation of a wide primitive performs dozens of small slice
// allocations (delay chains, paint splits, combine boundaries); carving
// them out of a shared chunk turns those into a handful of chunk
// allocations.
//
// The arena is deliberately never reset: handed-out slices stay valid
// forever, and a chunk becomes ordinary garbage once nothing references
// it.  Long-lived consumers (the interner, the evaluation cache) copy what
// they keep, so chunks die with the relaxation that filled them.  A nil
// *Arena is valid and falls back to plain heap allocation.
//
// An Arena is NOT safe for concurrent use; the verifier keeps one per
// worker.
type Arena struct {
	segs  []Segment
	times []tick.Time
}

const (
	arenaChunkSegs  = 8192 // 16 B each → 128 KiB chunks
	arenaChunkTimes = 4096
)

// newSegs returns an empty segment slice with the given capacity, carved
// from the arena when the request is small enough to batch.
func (a *Arena) newSegs(capacity int) []Segment {
	if a == nil {
		return make([]Segment, 0, capacity)
	}
	if capacity > len(a.segs) {
		if capacity > arenaChunkSegs/8 {
			// Oversized request: don't burn most of a chunk on it.
			return make([]Segment, 0, capacity)
		}
		a.segs = make([]Segment, arenaChunkSegs)
	}
	out := a.segs[:0:capacity]
	a.segs = a.segs[capacity:]
	return out
}

// makeSegs returns a zeroed segment slice of length n from the arena.
func (a *Arena) makeSegs(n int) []Segment {
	return a.newSegs(n)[:n]
}

// newTimes returns an empty boundary slice with the given capacity.
func (a *Arena) newTimes(capacity int) []tick.Time {
	if a == nil {
		return make([]tick.Time, 0, capacity)
	}
	if capacity > len(a.times) {
		if capacity > arenaChunkTimes/8 {
			return make([]tick.Time, 0, capacity)
		}
		a.times = make([]tick.Time, arenaChunkTimes)
	}
	out := a.times[:0:capacity]
	a.times = a.times[capacity:]
	return out
}
