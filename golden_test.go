package scaldtv

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// -notape re-runs the golden corpus through the interpreter instead of
// the compiled tape, so CI can prove the goldens pin both engines.
var notape = flag.Bool("notape", false, "run golden tests with the evaluation tape disabled")

// goldenOpts returns the golden corpus options under the selected engine.
func goldenOpts(o Options) Options {
	o.NoTape = *notape
	return o
}

const fig25Source = `
design "FIG 2-5"
period 50ns
clockunit 6.25ns
defaultwire 0ns 2ns
skew precision -1ns 1ns
` + Library + `
mux2 "ADR MUX" delay=(1.2,3.3) seldelay=(0.3,1.2) ("CLK .P0-4" &Z, "READ ADR .S4-9"<0:3>, "W ADR .S0-6"<0:3>) -> (ADR<0:3>)
wire ADR 0ns 6ns
and "WE GATE" delay=(1.0,2.9) (-"CK .P2-3 L" &H, -"WRITE .S0-6 L") -> (WE)
use "16W RAM 10145A" RAM1 SIZE=32 (I="W DATA .S0-6"<0:31>, A=ADR<0:3>, WE=WE, CS="CS SEL .S0-8", DO=DO)
use "REG 10176" OUTREG SIZE=32 (CK="CLK .P0-4", I=DO, Q=Q<0:31>)
`

// TestGoldenFig25Listings locks the exact text of the Fig 3-10 timing
// summary and Fig 3-11 error listing for the register-file example, so a
// semantic regression anywhere in the pipeline shows up as a diff.
func TestGoldenFig25Listings(t *testing.T) {
	res, err := VerifySource(fig25Source, goldenOpts(Options{KeepWaves: true}))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString(TimingSummary(res, 0))
	sb.WriteString("\n")
	sb.WriteString(ErrorListing(res))
	sb.WriteString("\n")
	sb.WriteString(CrossReference(res))
	got := sb.String()

	path := filepath.Join("testdata", "fig25_listing.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run go test -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from golden file %s\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}

// TestGoldenWaveArt locks the ASCII timing diagram of the same circuit.
func TestGoldenWaveArt(t *testing.T) {
	res, err := VerifySource(fig25Source, goldenOpts(Options{KeepWaves: true}))
	if err != nil {
		t.Fatal(err)
	}
	got := WaveArt(res, 0, 72)
	path := filepath.Join("testdata", "fig25_waveart.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run go test -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("wave art differs from golden file %s\n--- got ---\n%s", path, got)
	}
}

// TestGoldenExamples locks the full listing output (timing summary per
// case, error listing, cross reference) of every .scald design under
// examples/.  The CI golden job runs exactly this test after smoke-running
// the scaldtv binary over the same designs.  report.Summary is excluded:
// it contains wall-clock times.
func TestGoldenExamples(t *testing.T) {
	designs, err := filepath.Glob(filepath.Join("examples", "*", "*.scald"))
	if err != nil {
		t.Fatal(err)
	}
	if len(designs) == 0 {
		t.Fatal("no .scald designs under examples/")
	}
	for _, path := range designs {
		name := strings.TrimSuffix(filepath.Base(path), ".scald")
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			// The library is appended unconditionally, matching scaldtv -lib;
			// designs that don't use its macros are unaffected.
			res, err := VerifySource(string(src)+"\n"+Library, goldenOpts(Options{KeepWaves: true}))
			if err != nil {
				t.Fatal(err)
			}
			var sb strings.Builder
			for ci := range res.Cases {
				sb.WriteString(TimingSummary(res, ci))
				sb.WriteString("\n")
			}
			sb.WriteString(ErrorListing(res))
			sb.WriteString("\n")
			sb.WriteString(CrossReference(res))
			got := sb.String()

			golden := filepath.Join("testdata", "examples", name+".golden")
			if *update {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("golden file missing (run go test -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s differs from golden file %s\n--- got ---\n%s\n--- want ---\n%s",
					path, golden, got, want)
			}
		})
	}
}

// TestGoldenExplore locks the case-exploration listing on the two
// examples that bracket the feature: caseanalysis, where the explorer
// rediscovers the designer's hand-written split, and hazard, where the
// poisoned site is a real timing error no split can discharge.  The CI
// explore job diffs exactly these files.
func TestGoldenExplore(t *testing.T) {
	for _, name := range []string{"caseanalysis", "hazard"} {
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join("examples", name, name+".scald"))
			if err != nil {
				t.Fatal(err)
			}
			res, err := VerifySource(string(src)+"\n"+Library, goldenOpts(Options{Explore: true}))
			if err != nil {
				t.Fatal(err)
			}
			var sb strings.Builder
			sb.WriteString(ErrorListing(res))
			sb.WriteString("\n")
			sb.WriteString(ExploreListing(res))
			got := sb.String()

			golden := filepath.Join("testdata", "explore", name+".golden")
			if *update {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("golden file missing (run go test -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("explore listing differs from golden file %s\n--- got ---\n%s\n--- want ---\n%s",
					golden, got, want)
			}
		})
	}
}

// TestGoldenStatistical locks the statistical delay-analysis listing on
// the self-timed example (the design whose margins the worst-case model
// reports as tight; the quadrature model prices them).
func TestGoldenStatistical(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("examples", "selftimed", "selftimed.scald"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := VerifySource(string(src)+"\n"+Library, goldenOpts(Options{Delays: DelayStatistical}))
	if err != nil {
		t.Fatal(err)
	}
	got := StatListing(res)
	golden := filepath.Join("testdata", "explore", "selftimed_statistical.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden file missing (run go test -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("statistical listing differs from golden file %s\n--- got ---\n%s\n--- want ---\n%s",
			golden, got, want)
	}
}

func TestJSONReport(t *testing.T) {
	res, err := VerifySource(fig25Source, goldenOpts(Options{}))
	if err != nil {
		t.Fatal(err)
	}
	out, err := JSONReport(res)
	if err != nil {
		t.Fatal(err)
	}
	s := string(out)
	for _, want := range []string{
		`"schema": 1`,
		`"design": "FIG 2-5"`,
		`"case_labels"`,
		`"pass": false`,
		`"kind": "SETUP TIME VIOLATED"`,
		`"margin_ns": -1`,
		`"required_ns": 3.5`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("JSON missing %q:\n%s", want, s)
		}
	}
}

func TestLintAPI(t *testing.T) {
	d, err := Compile(fig25Source)
	if err != nil {
		t.Fatal(err)
	}
	findings := Lint(d)
	// The register file's Q output is unread in this fragment: expect the
	// dangling-output warning but no comb-loop errors.
	for _, f := range findings {
		if f.Rule == "comb-loop" {
			t.Errorf("unexpected comb loop: %v", f)
		}
	}
}
