package netlist

import (
	"testing"

	"scaldtv/internal/tick"
)

// buildChain constructs IN -> G0 -> N0 -> G1 -> N1 -> G2 -> N2 with a
// side branch SIDE -> GS -> NS off N0's fanout, plus a checker on N2.
func buildChain(t *testing.T) *Design {
	t.Helper()
	b := NewBuilder("chain")
	b.SetPeriod(100 * tick.NS)
	b.SetDefaultWire(tick.Range{})
	b.SetPrecisionSkew(tick.Range{})
	in := b.Net("IN .S5-95")
	ck := b.Net("CK .P90-95")
	n0 := b.Net("N0")
	n1 := b.Net("N1")
	n2 := b.Net("N2")
	ns := b.Net("NS")
	b.Buf("G0", tick.R(1, 2), []NetID{n0}, Conns(in))
	b.Buf("G1", tick.R(1, 2), []NetID{n1}, Conns(n0))
	b.Buf("G2", tick.R(1, 2), []NetID{n2}, Conns(n1))
	b.Buf("GS", tick.R(1, 2), []NetID{ns}, Conns(n0))
	b.SetupHold("CHK", 5*tick.NS, tick.NS, Conns(n2), Conn{Net: ck})
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestForwardCone(t *testing.T) {
	d := buildChain(t)
	g1, _ := d.NetByName("N0")
	cone := d.ForwardCone(Changes{Nets: []NetID{g1}})
	// From N0: consumers G1 and GS, then N1, NS, G2, N2, CHK.
	wantNets := map[string]bool{"N0": true, "N1": true, "N2": true, "NS": true}
	for i := range d.Nets {
		if cone.Nets[i] != wantNets[d.Nets[i].Name] {
			t.Errorf("net %s in cone = %v, want %v", d.Nets[i].Name, cone.Nets[i], wantNets[d.Nets[i].Name])
		}
	}
	wantPrims := map[string]bool{"G1": true, "G2": true, "GS": true, "CHK": true}
	for i := range d.Prims {
		if cone.Prims[i] != wantPrims[d.Prims[i].Name] {
			t.Errorf("prim %s in cone = %v, want %v", d.Prims[i].Name, cone.Prims[i], wantPrims[d.Prims[i].Name])
		}
	}
	if cone.NetCount != 4 || cone.PrimCount != 4 {
		t.Errorf("cone counts = %d nets, %d prims; want 4, 4", cone.NetCount, cone.PrimCount)
	}

	// Seeding from a primitive includes it and its forward closure only.
	g2ID := PrimID(-1)
	for pi := range d.Prims {
		if d.Prims[pi].Name == "G2" {
			g2ID = PrimID(pi)
		}
	}
	cone = d.ForwardCone(Changes{Prims: []PrimID{g2ID}})
	if cone.PrimCount != 2 || cone.NetCount != 1 { // G2, CHK; N2
		t.Errorf("G2 cone = %d prims, %d nets; want 2, 1", cone.PrimCount, cone.NetCount)
	}
	if !cone.Prims[g2ID] {
		t.Error("seed primitive not in its own cone")
	}

	if c := d.ForwardCone(Changes{}); c.PrimCount != 0 || c.NetCount != 0 {
		t.Error("empty changes produced a non-empty cone")
	}
}

func TestDiffIdentical(t *testing.T) {
	a, b := buildChain(t), buildChain(t)
	ch, ok := Diff(a, b)
	if !ok || !ch.Empty() {
		t.Fatalf("identical designs: ok=%v changes=%+v", ok, ch)
	}
}

func TestDiffParameterEdits(t *testing.T) {
	a, b := buildChain(t), buildChain(t)
	// Delay edit on G1, checker interval on CHK, instance swap of G2's
	// kind, and a wire-delay override on N1.
	b.Prims[1].Delay.Max += tick.NS
	b.Prims[4].Setup += tick.NS
	b.Prims[2].Kind = KNot
	n1, _ := b.NetByName("N1")
	w := tick.R(0, 1)
	b.Nets[n1].Wire = &w
	ch, ok := Diff(a, b)
	if !ok {
		t.Fatal("parameter-only edits reported as structural")
	}
	if len(ch.Prims) != 3 || len(ch.Nets) != 1 {
		t.Fatalf("changes = %+v, want 3 prims and 1 net", ch)
	}
	if ch.Nets[0] != n1 {
		t.Errorf("dirty net = %d, want %d", ch.Nets[0], n1)
	}
}

func TestDiffStructural(t *testing.T) {
	base := buildChain(t)

	edits := []struct {
		name string
		edit func(d *Design)
	}{
		{"period", func(d *Design) { d.Period += tick.NS }},
		{"default wire", func(d *Design) { d.DefaultWire.Max += tick.NS }},
		{"net rename", func(d *Design) { d.Nets[2].Name = "X0"; d.Nets[2].Base = "X0" }},
		{"rewire", func(d *Design) { d.Prims[2].In[0].Bits[0].Net = 0 }},
		{"invert", func(d *Design) { d.Prims[1].In[0].Bits[0].Invert = true }},
		{"kind shape change", func(d *Design) { d.Prims[0].Kind = KSetupHold }},
		{"case list", func(d *Design) { d.Cases = append(d.Cases, Case{Label: "C"}) }},
		{"assertion appears", func(d *Design) {
			n, _ := d.NetByName("N1")
			d.Nets[n].Assert = d.Nets[0].Assert
		}},
		{"assertion kind", func(d *Design) { d.Nets[1].Assert = d.Nets[0].Assert }},
	}
	for _, e := range edits {
		d := buildChain(t)
		e.edit(d)
		if _, ok := Diff(base, d); ok {
			t.Errorf("%s: structural edit not rejected", e.name)
		}
	}

	if _, ok := Diff(nil, base); ok {
		t.Error("nil design accepted")
	}
}

func TestDiffAssertionTweak(t *testing.T) {
	a, b := buildChain(t), buildChain(t)
	// Same-kind range change on the stable input assertion: incremental.
	in, _ := b.NetByName("IN .S5-95")
	cp := *b.Nets[in].Assert
	cp.Ranges = append(cp.Ranges[:0:0], cp.Ranges...)
	cp.Ranges[0].End -= 5
	b.Nets[in].Assert = &cp
	ch, ok := Diff(a, b)
	if !ok {
		t.Fatal("assertion range tweak reported as structural")
	}
	if len(ch.Nets) != 1 || ch.Nets[0] != in || len(ch.Prims) != 0 {
		t.Fatalf("changes = %+v, want net %d only", ch, in)
	}
}

func TestCheckSites(t *testing.T) {
	d := buildChain(t)
	primID := func(name string) PrimID {
		for i := range d.Prims {
			if d.Prims[i].Name == name {
				return PrimID(i)
			}
		}
		t.Fatalf("no primitive %q", name)
		return -1
	}

	// A valid parameter edit passes.
	g1 := primID("G1")
	d.Prims[g1].Delay.Max += tick.NS
	if err := d.CheckSites(Changes{Prims: []PrimID{g1}}); err != nil {
		t.Errorf("valid delay edit rejected: %v", err)
	}

	// An inverted delay range on the dirty primitive is caught.
	d.Prims[g1].Delay = tick.Range{Min: 5 * tick.NS, Max: tick.NS}
	if err := d.CheckSites(Changes{Prims: []PrimID{g1}}); err == nil {
		t.Error("inverted delay range not caught")
	}
	d.Prims[g1].Delay = tick.R(1, 2)

	// The same broken range on a primitive the change set does not name
	// goes unchecked — CheckSites is scoped by contract.
	g2 := primID("G2")
	d.Prims[g2].Delay = tick.Range{Min: 5 * tick.NS, Max: tick.NS}
	if err := d.CheckSites(Changes{Prims: []PrimID{g1}}); err != nil {
		t.Errorf("CheckSites checked an unnamed site: %v", err)
	}
	d.Prims[g2].Delay = tick.R(1, 2)

	// Out-of-range site names are rejected.
	if err := d.CheckSites(Changes{Prims: []PrimID{PrimID(len(d.Prims))}}); err == nil {
		t.Error("out-of-range primitive not caught")
	}
	if err := d.CheckSites(Changes{Nets: []NetID{-1}}); err == nil {
		t.Error("out-of-range net not caught")
	}

	// An invalid per-signal wire delay on a dirty net is caught.
	n0, _ := d.NetByName("N0")
	d.Nets[n0].Wire = &tick.Range{Min: 2 * tick.NS, Max: tick.NS}
	if err := d.CheckSites(Changes{Nets: []NetID{n0}}); err == nil {
		t.Error("invalid wire delay not caught")
	}
	d.Nets[n0].Wire = nil
}
