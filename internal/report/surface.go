package report

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"scaldtv/internal/verify"
)

// SurfaceListing renders the analytic-mode margin surface: one row per
// constraint site with the slack at the pinned parameter point, the worst
// slack anywhere in the declared parameter box, and the binding corner
// that attains it.
func SurfaceListing(res *verify.Result) string {
	ms := res.MarginSurface
	if ms == nil {
		return "margin surface unavailable: run the verifier with -delays=analytic\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "ANALYTIC MARGIN SURFACE — design %s\n\n", res.Design.Name)
	if len(ms.Params) > 0 {
		sb.WriteString("  parameters:")
		for _, p := range ms.Params {
			fmt.Fprintf(&sb, " %s=%s [%s, %s]", p.Name, fmtF(p.Value), fmtF(p.Lo), fmtF(p.Hi))
		}
		sb.WriteString("\n\n")
	}
	if len(ms.Sites) == 0 {
		sb.WriteString("  no constraint site has a combinational arrival path\n")
		return sb.String()
	}
	fmt.Fprintf(&sb, "  %-34s %-26s %10s %12s  %s\n",
		"CHECKER", "DATA", "SLACK", "WORST SLACK", "BINDING CORNER")
	for i := range ms.Sites {
		s := &ms.Sites[i]
		corner, worst := ms.BindingCorner(i)
		mark := ""
		if worst < 0 {
			mark = "  << AT RISK"
		}
		if !s.Exact {
			mark += "  (inexact)"
		}
		fmt.Fprintf(&sb, "  %-34s %-26s %10.1f %12.1f  %s%s\n",
			trunc(s.Prim, 34), trunc(s.Data, 26), s.Slack0.NS(), worst.NS(),
			cornerString(corner), mark)
	}
	return sb.String()
}

// cornerString renders a binding corner as sorted name=value pairs.
func cornerString(corner map[string]float64) string {
	if len(corner) == 0 {
		return "-"
	}
	names := make([]string, 0, len(corner))
	for n := range corner {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = n + "=" + fmtF(corner[n])
	}
	return strings.Join(parts, " ")
}

// BindingString renders parameter bindings as sorted name=value pairs —
// the spelling the scaldtvd provenance header and the run summary share.
func BindingString(params []verify.ParamBinding) string {
	parts := make([]string, len(params))
	for i, p := range params {
		parts[i] = p.Name + "=" + fmtF(p.Value)
	}
	return strings.Join(parts, " ")
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
