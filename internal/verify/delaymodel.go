package verify

import (
	"fmt"
	"sort"
	"strings"

	"scaldtv/internal/tick"
)

// DelayModel selects how component delay ranges are interpreted during
// verification.  The three models are MinMaxDelays (the paper's §2.2
// worst-case interval propagation), StatisticalDelays (a deterministic
// quadrature post-pass turning every constraint-site margin into a
// violation probability, Result.SiteProbs) and AnalyticDelays (delays as
// affine functions of named design parameters, with a symbolic margin
// surface per constraint site, Result.MarginSurface).  A nil model means
// MinMaxDelays.  The scaldtv driver exposes the model as -delays, with
// -param bindings selecting the analytic evaluation point.
//
// The interface is closed: the three models in this package are the only
// implementations, so the engine can switch exhaustively.  Each model
// validates at construction — an Options value holding one is always
// well-formed.
type DelayModel interface {
	// Name returns the model's canonical -delays spelling.
	Name() string
	isDelayModel()
}

// MinMaxDelays is the worst-case interval model: every component delay is
// pinned at its data-sheet min/max corner and propagated as a range
// (§2.2).  The zero value is ready to use; it is also what a nil
// Options.Delays means.
type MinMaxDelays struct{}

// NewMinMaxDelays returns the worst-case interval model.
func NewMinMaxDelays() MinMaxDelays { return MinMaxDelays{} }

// Name returns "worstcase".
func (MinMaxDelays) Name() string { return "worstcase" }

func (MinMaxDelays) isDelayModel() {}

// StatisticalDelays adds the deterministic quadrature post-pass over the
// combinational graph (internal/pathsearch.AnalyzeDist) that reports each
// constraint site's violation *probability* alongside the usual
// worst-case outcome.  No RNG is involved: the quadrature runs on a fixed
// grid, so statistical reports are as byte-deterministic as worst-case
// ones.
type StatisticalDelays struct {
	// Grid is the quadrature step in integer time ticks.  Zero selects
	// the default of period/256 (at least one tick).  Construct through
	// NewStatisticalDelays to reject negative steps up front.
	Grid tick.Time
}

// NewStatisticalDelays returns the statistical model with the given
// quadrature step (0 = default of period/256).
func NewStatisticalDelays(grid tick.Time) (StatisticalDelays, error) {
	if grid < 0 {
		return StatisticalDelays{}, fmt.Errorf("verify: statistical delay grid must be >= 0, got %d", grid)
	}
	return StatisticalDelays{Grid: grid}, nil
}

// Name returns "statistical".
func (StatisticalDelays) Name() string { return "statistical" }

func (StatisticalDelays) isDelayModel() {}

// AnalyticDelays evaluates the design's analytic delay functions — the
// HDL's param declarations and delay expressions — at one parameter
// point, and additionally retains the symbolic per-site margin functions
// so Result.MarginSurface can answer violation queries at *any* point in
// the parameter box without re-running the engine.
type AnalyticDelays struct {
	// Params overrides parameter defaults by name; parameters not named
	// verify at their declared default.  Construct through
	// NewAnalyticDelays to reject non-finite values up front (box-range
	// validation against a concrete design happens in the run, where the
	// declarations are known).
	Params map[string]float64
}

// NewAnalyticDelays returns the analytic model evaluated at the given
// parameter overrides (nil or empty = every parameter at its default).
func NewAnalyticDelays(params map[string]float64) (AnalyticDelays, error) {
	for _, name := range sortedParamNames(params) {
		v := params[name]
		if v != v || v > 1e300 || v < -1e300 {
			return AnalyticDelays{}, fmt.Errorf("verify: analytic parameter %q has non-finite value", name)
		}
	}
	m := AnalyticDelays{}
	if len(params) > 0 {
		m.Params = make(map[string]float64, len(params))
		for k, v := range params {
			m.Params[k] = v
		}
	}
	return m, nil
}

// Name returns "analytic".
func (AnalyticDelays) Name() string { return "analytic" }

func (AnalyticDelays) isDelayModel() {}

// The delay models, as ready-made values for the common cases.  These are
// drop-in spellings for the former string constants: Options{Delays:
// DelayStatistical} still selects statistical mode with the default grid.
var (
	DelayWorstCase   DelayModel = MinMaxDelays{}
	DelayStatistical DelayModel = StatisticalDelays{}
)

// ParseDelayModel resolves the -delays flag spelling.  It is the
// compatibility adapter from the former stringly-typed API: every
// spelling it accepted before maps to the same behaviour, and reports
// stay byte-identical with the typed constructors.
func ParseDelayModel(s string) (DelayModel, error) {
	switch s {
	case "", "worstcase", "worst-case":
		return MinMaxDelays{}, nil
	case "statistical":
		return StatisticalDelays{}, nil
	case "analytic":
		return AnalyticDelays{}, nil
	}
	return nil, fmt.Errorf("verify: unknown delay model %q (want worstcase, statistical or analytic)", s)
}

// IsWorstCase reports whether the model (possibly nil) is the plain
// worst-case interval model.
func IsWorstCase(m DelayModel) bool {
	switch m.(type) {
	case nil, MinMaxDelays:
		return true
	}
	return false
}

// statistical reports whether the options select the statistical model,
// and with what grid.
func (o Options) statistical() (StatisticalDelays, bool) {
	m, ok := o.Delays.(StatisticalDelays)
	return m, ok
}

// analytic reports whether the options select the analytic model, and
// with what parameter overrides.
func (o Options) analytic() (AnalyticDelays, bool) {
	m, ok := o.Delays.(AnalyticDelays)
	return m, ok
}

// delayModelKey is the model's contribution to the store fingerprint: a
// canonical string covering the model and every result-affecting knob.
// The worst-case model keys as "" and the default-grid statistical model
// as "statistical", preserving the fingerprint bytes of the former
// string-typed representation.
func delayModelKey(m DelayModel) string {
	switch m := m.(type) {
	case StatisticalDelays:
		if m.Grid == 0 {
			return "statistical"
		}
		return fmt.Sprintf("statistical/grid=%d", int64(m.Grid))
	case AnalyticDelays:
		var sb strings.Builder
		sb.WriteString("analytic")
		for i, name := range sortedParamNames(m.Params) {
			if i == 0 {
				sb.WriteString("?")
			} else {
				sb.WriteString("&")
			}
			fmt.Fprintf(&sb, "%s=%x", name, m.Params[name])
		}
		return sb.String()
	}
	return ""
}

// sortedParamNames returns the map's keys in sorted order, the canonical
// iteration order for parameter bindings.
func sortedParamNames(params map[string]float64) []string {
	if len(params) == 0 {
		return nil
	}
	names := make([]string, 0, len(params))
	for k := range params {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
