package logicsim

import (
	"testing"

	"scaldtv/internal/tick"
)

func ns(f float64) tick.Time { return tick.FromNS(f) }

func TestLValueBasics(t *testing.T) {
	if !L0.Solid() || !L1.Solid() || LX.Solid() || LU.Solid() {
		t.Error("Solid wrong")
	}
	for _, v := range []LValue{L0, L1, LX, LU, LD, LE} {
		if v.String() == "" {
			t.Errorf("value %d has no name", v)
		}
	}
	c0, c1 := LU.possible()
	if !c0 || !c1 {
		t.Error("rising value must be possibly 0 and possibly 1")
	}
}

func TestAndGate(t *testing.T) {
	var c Circuit
	a, b, o := c.AddNet(), c.AddNet(), c.AddNet()
	c.AddGate(Gate{Kind: GAnd, Delay: tick.R(1, 2), In: []int{a, b}, Out: o})
	s := New(&c)
	s.Set(a, L1, 0)
	s.Set(b, L1, 0)
	s.Run(ns(10))
	if got := s.Value(o); got != L1 {
		t.Errorf("AND(1,1) = %v", got)
	}
	// Falling input: ambiguity between 1 and 2 ns, solid after.
	s.Set(b, L0, ns(10))
	s.Run(ns(11) + 500) // 11.5 ns: inside the ambiguity window
	if got := s.Value(o); got != LD {
		t.Errorf("settling value = %v, want D", got)
	}
	s.Run(ns(13))
	if got := s.Value(o); got != L0 {
		t.Errorf("settled value = %v, want 0", got)
	}
}

func TestGateTable(t *testing.T) {
	cases := []struct {
		kind Kind
		a, b LValue
		want LValue
	}{
		{GAnd, L0, LX, L0}, // 0 dominates
		{GAnd, L1, LX, LX},
		{GOr, L1, LX, L1}, // 1 dominates
		{GOr, L0, LX, LX},
		{GNand, L1, L1, L0},
		{GNor, L0, L0, L1},
		{GXor, L1, L0, L1},
		{GXor, L1, L1, L0},
		{GXor, L1, LX, LX},
	}
	for _, cse := range cases {
		var c Circuit
		a, b, o := c.AddNet(), c.AddNet(), c.AddNet()
		c.AddGate(Gate{Kind: cse.kind, In: []int{a, b}, Out: o})
		s := New(&c)
		s.Set(a, cse.a, 0)
		s.Set(b, cse.b, 0)
		s.Run(ns(5))
		if got := s.Value(o); got != cse.want {
			t.Errorf("%v(%v,%v) = %v, want %v", cse.kind, cse.a, cse.b, got, cse.want)
		}
	}
}

func TestNotBuf(t *testing.T) {
	var c Circuit
	a, x, y := c.AddNet(), c.AddNet(), c.AddNet()
	c.AddGate(Gate{Kind: GNot, Delay: tick.R(1, 1), In: []int{a}, Out: x})
	c.AddGate(Gate{Kind: GBuf, Delay: tick.R(1, 1), In: []int{a}, Out: y})
	s := New(&c)
	s.Set(a, L1, 0)
	s.Run(ns(5))
	if s.Value(x) != L0 || s.Value(y) != L1 {
		t.Errorf("NOT/BUF = %v/%v", s.Value(x), s.Value(y))
	}
}

func TestChainDelayAccumulates(t *testing.T) {
	var c Circuit
	in := c.AddNet()
	prev := in
	for i := 0; i < 5; i++ {
		o := c.AddNet()
		c.AddGate(Gate{Kind: GBuf, Delay: tick.R(2, 3), In: []int{prev}, Out: o})
		prev = o
	}
	s := New(&c)
	s.Set(in, L1, 0)
	last := s.Run(ns(100))
	if last != ns(15) {
		t.Errorf("5×3 ns chain settled at %v, want 15 ns", last)
	}
	if s.Value(prev) != L1 {
		t.Errorf("chain output = %v", s.Value(prev))
	}
	if !s.Settled() {
		t.Error("queue should be empty")
	}
}

func TestDffCapturesAndChecks(t *testing.T) {
	var c Circuit
	clk, d, q := c.AddNet(), c.AddNet(), c.AddNet()
	c.AddGate(Gate{Kind: GDff, Name: "ff", Delay: tick.R(1, 2),
		In: []int{clk, d}, Out: q, Setup: ns(3), Hold: ns(2)})
	s := New(&c)
	s.Set(clk, L0, 0)
	s.Set(d, L1, 0)
	s.Run(ns(10))
	// Clean capture: data settled 10 ns before the edge.
	s.Set(clk, L1, ns(10))
	s.Run(ns(20))
	if s.Value(q) != L1 {
		t.Errorf("captured %v, want 1", s.Value(q))
	}
	if len(s.Violations) != 0 {
		t.Errorf("clean capture flagged: %v", s.Violations)
	}
	// Set-up violation: data changes 1 ns before the edge.
	s.Set(clk, L0, ns(20))
	s.Set(d, L0, ns(29))
	s.Set(clk, L1, ns(30))
	s.Run(ns(40))
	if len(s.Violations) != 1 || s.Violations[0].Kind != "setup" {
		t.Errorf("setup violation not caught: %v", s.Violations)
	}
	// Hold violation: data changes 1 ns after the edge.
	s.Set(clk, L0, ns(40))
	s.Run(ns(45))
	s.Set(clk, L1, ns(50))
	s.Set(d, L1, ns(51))
	s.Run(ns(60))
	found := false
	for _, v := range s.Violations {
		if v.Kind == "hold" {
			found = true
		}
	}
	if !found {
		t.Errorf("hold violation not caught: %v", s.Violations)
	}
}

func TestBenchApplyVector(t *testing.T) {
	var c Circuit
	ins := c.AddNets(2)
	o := c.AddNet()
	c.AddGate(Gate{Kind: GAnd, Delay: tick.R(2, 4), In: ins, Out: o})
	b := NewBench(&c, ins, o, 50*tick.NS)
	if s := b.ApplyVector(0b11); s != ns(4) {
		t.Errorf("settle = %v, want 4 ns", s)
	}
	// No transition on the output: zero settle.
	if s := b.ApplyVector(0b11); s != 0 {
		t.Errorf("repeat vector settle = %v, want 0", s)
	}
}

// TestExhaustiveFindsSensitisedWorstCase builds a circuit whose longest
// topological path is only sensitised by specific input values: an
// AND(slow-path, enable) where the slow path is a 3-buffer chain.  The
// exhaustive sweep must find the full chain delay.
func TestExhaustiveFindsSensitisedWorstCase(t *testing.T) {
	var c Circuit
	a, en := c.AddNet(), c.AddNet()
	prev := a
	for i := 0; i < 3; i++ {
		o := c.AddNet()
		c.AddGate(Gate{Kind: GBuf, Delay: tick.R(3, 3), In: []int{prev}, Out: o})
		prev = o
	}
	out := c.AddNet()
	c.AddGate(Gate{Kind: GAnd, Delay: tick.R(1, 1), In: []int{prev, en}, Out: out})
	worst, cycles, events := ExhaustiveWorstSettle(&c, []int{a, en}, out, 50*tick.NS)
	if worst != ns(10) {
		t.Errorf("worst settle = %v, want 10 ns (3×3 chain + 1)", worst)
	}
	// 2^n Gray cycles plus 2·2^n complement-transition cycles.
	if cycles != 4+2*4 {
		t.Errorf("cycles = %d, want 12", cycles)
	}
	if events == 0 {
		t.Error("no events counted")
	}
}

// TestExhaustiveCostGrowsExponentially is the §1.4.1 claim in miniature:
// the number of cycles the simulator must run doubles with every input.
func TestExhaustiveCostGrowsExponentially(t *testing.T) {
	cost := func(n int) int {
		var c Circuit
		ins := c.AddNets(n)
		prev := ins[0]
		for i := 1; i < n; i++ {
			o := c.AddNet()
			c.AddGate(Gate{Kind: GAnd, Delay: tick.R(1, 2), In: []int{prev, ins[i]}, Out: o})
			prev = o
		}
		_, cycles, _ := ExhaustiveWorstSettle(&c, ins, prev, 50*tick.NS)
		return cycles
	}
	c4, c6, c8 := cost(4), cost(6), cost(8)
	if c6 != 4*c4 || c8 != 4*c6 {
		t.Errorf("cycle counts %d, %d, %d do not quadruple per two inputs", c4, c6, c8)
	}
}

func TestAmbiguityValueKinds(t *testing.T) {
	// 0→1 shows U, 1→0 shows D during the settling window.
	var c Circuit
	a, o := c.AddNet(), c.AddNet()
	c.AddGate(Gate{Kind: GBuf, Delay: tick.R(2, 4), In: []int{a}, Out: o})
	s := New(&c)
	s.Set(a, L0, 0)
	s.Run(ns(10))
	s.Set(a, L1, ns(10))
	s.Run(ns(13))
	if got := s.Value(o); got != LU {
		t.Errorf("rising ambiguity = %v, want U", got)
	}
	s.Run(ns(20))
	if got := s.Value(o); got != L1 {
		t.Errorf("settled = %v", got)
	}
	s.Set(a, L0, ns(20))
	s.Run(ns(23))
	if got := s.Value(o); got != LD {
		t.Errorf("falling ambiguity = %v, want D", got)
	}
}

func TestHoldWatchExpires(t *testing.T) {
	var c Circuit
	clk, d, q := c.AddNet(), c.AddNet(), c.AddNet()
	c.AddGate(Gate{Kind: GDff, Name: "ff", Delay: tick.R(1, 1),
		In: []int{clk, d}, Out: q, Hold: ns(2)})
	s := New(&c)
	s.Set(clk, L0, 0)
	s.Set(d, L1, 0)
	s.Run(ns(5))
	s.Set(clk, L1, ns(10))
	// Data changes 5 ns after the edge: outside the 2 ns hold window.
	s.Set(d, L0, ns(15))
	s.Run(ns(20))
	if len(s.Violations) != 0 {
		t.Errorf("expired hold watch fired: %v", s.Violations)
	}
}

func TestXorThreeInputs(t *testing.T) {
	var c Circuit
	ins := c.AddNets(3)
	o := c.AddNet()
	c.AddGate(Gate{Kind: GXor, In: ins, Out: o})
	s := New(&c)
	s.Set(ins[0], L1, 0)
	s.Set(ins[1], L1, 0)
	s.Set(ins[2], L1, 0)
	s.Run(ns(5))
	if got := s.Value(o); got != L1 {
		t.Errorf("XOR(1,1,1) = %v, want 1 (odd parity)", got)
	}
	s.Set(ins[2], L0, ns(5))
	s.Run(ns(10))
	if got := s.Value(o); got != L0 {
		t.Errorf("XOR(1,1,0) = %v, want 0", got)
	}
}

func TestDffUnknownDataCapturesX(t *testing.T) {
	var c Circuit
	clk, d, q := c.AddNet(), c.AddNet(), c.AddNet()
	c.AddGate(Gate{Kind: GDff, In: []int{clk, d}, Out: q, Delay: tick.R(1, 1)})
	s := New(&c)
	s.Set(clk, L0, 0)
	s.Run(ns(1))
	s.Set(clk, L1, ns(5)) // d still at initialisation X
	s.Run(ns(10))
	if got := s.Value(q); got != LX {
		t.Errorf("capture of X = %v, want X", got)
	}
}
