// Package cluster splits the verification engine into a coordinator and
// engine workers connected over HTTP/ndjson, so one run's case analysis
// — and many small runs at once — fan out across N processes while the
// report stays byte-identical to a local single-process run.
//
// The wire protocol is one endpoint, POST /v1/batch: the request body is
// newline-delimited JSON, one SubJob per line, and the response is
// newline-delimited JSON, one SubResult per line in request order.  A
// SubJob names a case-analysis partition of a verification — the full
// HDL source, the half-open declared-case range to evaluate, and the
// report-relevant options — keyed by the same content fingerprints the
// persistent store uses, so a worker that has seen the design before
// answers from its in-memory design cache (no re-parse, no
// re-elaboration, warm tape memo tables) or, for whole-run jobs, from
// its persistent store without running the engine at all.
//
// Batching is the unit of efficiency: a coordinator ships every sub-job
// queued for a worker in ONE round trip (many small designs per RPC),
// and the worker streams results back in order.  Determinism is the
// unit of correctness: partitions merge positionally in declared case
// order (report.MergeParts), so the distributed report is bit-identical
// to `scaldtv -json` no matter how many workers ran it, which worker ran
// which partition, or how many died and were failed over mid-run.
package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"scaldtv/internal/report"
	"scaldtv/internal/serr"
	"scaldtv/internal/tick"
	"scaldtv/internal/verify"
)

// JobOptions is the report-relevant option set a sub-job travels with:
// exactly the fields verify.Fingerprint mixes (pass cap, delay model,
// explore) plus the schedule knobs (workers, intra, cache, tape) that
// tune the worker without affecting report bytes.  Force waveforms are
// deliberately absent — the service layer never populates them, and the
// coordinator runs forced verifications locally.
type JobOptions struct {
	Workers   int  `json:"workers,omitempty"`
	Intra     int  `json:"intra,omitempty"`
	NoCache   bool `json:"no_cache,omitempty"`
	NoTape    bool `json:"no_tape,omitempty"`
	MaxPasses int  `json:"max_passes,omitempty"`
	Explore   bool `json:"explore,omitempty"`

	// The delay model, decomposed: Delays is the model's canonical name
	// ("" = worst case), DelayGrid the statistical quadrature step, and
	// DelayParams the analytic parameter overrides.
	Delays      string             `json:"delays,omitempty"`
	DelayGrid   int64              `json:"delay_grid,omitempty"`
	DelayParams map[string]float64 `json:"delay_params,omitempty"`
}

// WireOptions projects an engine option set onto its wire form.
func WireOptions(opts verify.Options) JobOptions {
	o := JobOptions{
		Workers:   opts.Workers,
		Intra:     opts.IntraWorkers,
		NoCache:   opts.NoCache,
		NoTape:    opts.NoTape,
		MaxPasses: opts.MaxPasses,
		Explore:   opts.Explore,
	}
	switch m := opts.Delays.(type) {
	case verify.StatisticalDelays:
		o.Delays = m.Name()
		o.DelayGrid = int64(m.Grid)
	case verify.AnalyticDelays:
		o.Delays = m.Name()
		o.DelayParams = m.Params
	}
	return o
}

// Options reconstructs the engine option set on the worker side.
func (o JobOptions) Options() verify.Options {
	opts := verify.Options{
		Workers:      o.Workers,
		IntraWorkers: o.Intra,
		NoCache:      o.NoCache,
		NoTape:       o.NoTape,
		MaxPasses:    o.MaxPasses,
		Explore:      o.Explore,
	}
	switch o.Delays {
	case "statistical":
		opts.Delays = verify.StatisticalDelays{Grid: tick.Time(o.DelayGrid)}
	case "analytic":
		opts.Delays = verify.AnalyticDelays{Params: o.DelayParams}
	}
	return opts
}

// SubJob is one unit of batched work: a case-analysis partition of a
// verification run.  CaseLo/CaseHi is the half-open range into the
// design's declared case list; the zero range (0,0) means the whole run
// — every declared case, or the single unmapped cycle of a design with
// none — which is also the only form eligible for the worker's
// persistent-store fast path.
type SubJob struct {
	ID     string     `json:"id"`
	Source string     `json:"source"`
	CaseLo int        `json:"case_lo,omitempty"`
	CaseHi int        `json:"case_hi,omitempty"`
	Opts   JobOptions `json:"opts"`
}

// WholeRun reports whether the job covers the entire case list.
func (j *SubJob) WholeRun() bool { return j.CaseLo == 0 && j.CaseHi == 0 }

// WireError carries a structured engine error across the RPC boundary.
type WireError struct {
	Kind string `json:"kind"`
	Msg  string `json:"msg"`
}

// Err reconstructs the structured error.
func (e *WireError) Err() error {
	return &serr.Error{Kind: serr.ParseKind(e.Kind), Msg: e.Msg}
}

// wireErr projects an error onto the wire.
func wireErr(err error) *WireError {
	return &WireError{Kind: serr.KindOf(err).String(), Msg: err.Error()}
}

// SubResult answers one SubJob: either a mergeable report part or a
// structured error.  Provenance reports how the worker obtained the
// part (cached = served from its persistent store, cold = engine run),
// for metrics and tests; it never affects the part's bytes.
type SubResult struct {
	ID         string         `json:"id"`
	Err        *WireError     `json:"err,omitempty"`
	Provenance string         `json:"provenance,omitempty"`
	Part       *report.Report `json:"part,omitempty"`
}

// encodeBatch writes jobs as ndjson.
func encodeBatch(w io.Writer, jobs []*SubJob) error {
	enc := json.NewEncoder(w)
	for _, j := range jobs {
		if err := enc.Encode(j); err != nil {
			return err
		}
	}
	return nil
}

// decodeResults reads the ndjson response of a batch, expecting exactly
// want results in request order.
func decodeResults(r io.Reader, want int) ([]*SubResult, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), maxLine)
	results := make([]*SubResult, 0, want)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		sr := &SubResult{}
		if err := json.Unmarshal(line, sr); err != nil {
			return nil, fmt.Errorf("cluster: malformed result line: %w", err)
		}
		results = append(results, sr)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("cluster: reading batch response: %w", err)
	}
	if len(results) != want {
		return nil, fmt.Errorf("cluster: batch answered %d of %d sub-jobs", len(results), want)
	}
	return results, nil
}

// maxLine bounds one ndjson line (a source text or a rendered report
// part) on both sides of the wire.
const maxLine = 64 << 20
