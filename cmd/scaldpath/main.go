// Command scaldpath runs the worst-case path-searching baseline (§1.4.2,
// GRASP/RAS style) over a design in the textual HDL, printing the critical
// paths and — given a -budget — the endpoints that exceed it.  Comparing
// its output with scaldtv on value-dependent circuits (Fig 2-6)
// demonstrates the spurious errors the Timing Verifier eliminates.
package main

import (
	"flag"
	"fmt"
	"os"

	"scaldtv"
	"scaldtv/internal/pathsearch"
	"scaldtv/internal/tick"
)

func main() {
	lib := flag.Bool("lib", false, "make the component library available")
	budget := flag.String("budget", "", "flag endpoints slower than this (e.g. 35ns)")
	statistical := flag.Bool("stat", false, "probability-based analysis (§4.2.4): mean + kσ arrivals")
	correlated := flag.Bool("correlated", false, "with -stat: assume fully correlated component delays")
	ksigma := flag.Float64("ksigma", 3, "with -stat: confidence multiplier")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: scaldpath [flags] design.scald")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	text := string(src)
	if *lib {
		text += "\n" + scaldtv.Library
	}
	design, err := scaldtv.Compile(text)
	if err != nil {
		fail(err)
	}
	if *statistical {
		a, err := pathsearch.AnalyzeStatistical(design, pathsearch.StatOptions{Correlated: *correlated})
		if err != nil {
			fail(err)
		}
		fmt.Print(a.String())
		if *budget != "" {
			t, err := tick.Parse(*budget)
			if err != nil {
				fail(err)
			}
			errs := a.Errors(t, *ksigma)
			fmt.Printf("\n%d endpoint(s) exceed the %s budget at %.1fσ\n", len(errs), t, *ksigma)
			if len(errs) > 0 {
				os.Exit(1)
			}
		}
		return
	}
	a, err := pathsearch.Analyze(design)
	if err != nil {
		fail(err)
	}
	fmt.Print(a.String())
	if *budget != "" {
		t, err := tick.Parse(*budget)
		if err != nil {
			fail(err)
		}
		errs := a.Errors(t)
		fmt.Printf("\n%d endpoint(s) exceed the %s budget\n", len(errs), t)
		for _, e := range errs {
			fmt.Printf("  %s → %s: %s/%s ns\n", e.From, e.To, e.Min, e.Max)
		}
		if len(errs) > 0 {
			os.Exit(1)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "scaldpath:", err)
	os.Exit(2)
}
