package scaldtv

import (
	"context"
	"errors"
	"testing"
)

// TestStructuredParseError: a malformed source yields a ParseError with a
// usable position, matching the ErrParse sentinel through errors.Is.
func TestStructuredParseError(t *testing.T) {
	_, err := Compile("design X\nperiod 50ns\nand (A<1:) -> (Y)\n")
	if err == nil {
		t.Fatal("Compile succeeded on malformed source")
	}
	if !errors.Is(err, ErrParse) {
		t.Errorf("parse failure does not match ErrParse: %v", err)
	}
	var se *Error
	if !errors.As(err, &se) {
		t.Fatalf("parse failure is not a structured *Error: %v", err)
	}
	if se.Kind != ParseError {
		t.Errorf("Kind = %v, want %v", se.Kind, ParseError)
	}
	if se.Pos.Line != 3 {
		t.Errorf("Pos.Line = %d, want 3 (error is on line 3)", se.Pos.Line)
	}
}

// TestStructuredElaborateError: structurally invalid designs classify as
// ElaborateError — from the expander and from netlist validation alike.
func TestStructuredElaborateError(t *testing.T) {
	src := "design X\nand (A) -> (Y)\n" // no period declared
	_, err := Compile(src)
	if err == nil {
		t.Fatalf("Compile(%q) succeeded", src)
	}
	if !errors.Is(err, ErrElaborate) {
		t.Errorf("period-less design error does not match ErrElaborate: %v", err)
	}
}

// TestStructuredAssertionError: a forced waveform on a driven net is an
// assertion-stage failure at the Verify boundary.
func TestStructuredAssertionError(t *testing.T) {
	d, err := Compile(`
design FORCED
period 50ns
buf B delay=(1,2) (A) -> (Q)
`)
	if err != nil {
		t.Fatal(err)
	}
	var q NetID
	found := false
	for i := range d.Nets {
		if d.Nets[i].Base == "Q" {
			q, found = NetID(i), true
		}
	}
	if !found {
		t.Fatal("net Q not found")
	}
	_, err = Verify(d, Options{Force: map[NetID]Waveform{q: {}}})
	if err == nil {
		t.Fatal("Verify accepted a forced driven net")
	}
	if !errors.Is(err, ErrAssertion) {
		t.Errorf("forced-driven-net error does not match ErrAssertion: %v", err)
	}
}

// TestStructuredLimitError: invalid MinimumPeriod bounds classify as
// LimitError.
func TestStructuredLimitError(t *testing.T) {
	_, err := MinimumPeriod("design X\nperiod 50ns\n", 0, 0, 0)
	if err == nil {
		t.Fatal("MinimumPeriod accepted zero bounds")
	}
	if !errors.Is(err, ErrLimit) {
		t.Errorf("invalid bounds error does not match ErrLimit: %v", err)
	}
}

// TestVerifyContextCanceled: a pre-canceled context aborts the verify
// with a CanceledError that still matches context.Canceled.
func TestVerifyContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := VerifySourceContext(ctx, `
design CANCELME
period 50ns
clockunit 6.25ns
reg R delay=(1.5,4.5) ("CK .P0-4", "D .S6-12") -> (Q)
`, Options{})
	if err == nil {
		t.Fatal("VerifySourceContext ignored a canceled context")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("cancellation does not match ErrCanceled: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancellation does not wrap context.Canceled: %v", err)
	}
}
