// The gated-clock hazard of Fig 1-5 / §1.3.2: CLOCK is high 20–30 ns, but
// the inhibiting ENABLE only settles at 25 ns, so a runt pulse of up to
// 5 ns may reach the register clock — the classic intermittent timing
// error that is "nearly incapable of being fixed" once built.
//
// The verifier catches it two ways: the minimum-pulse-width checker sees a
// pulse whose guaranteed width is zero, and the &A evaluation directive
// reports the control changing while the clock is asserted (§2.6).
//
//	go run ./examples/hazard
package main

import (
	"fmt"
	"log"

	"scaldtv"
)

const base = `
design "FIG 1-5 HAZARD"
period 50ns
clockunit 1ns
defaultwire 0ns 0ns
skew precision 0 0

reg "REG" delay=(1,2) ("REG CLOCK", "DATA .S0-50") -> (Q)
minpulse "REG CK WIDTH" high=5.0 low=3.0 ("REG CLOCK")
`

func main() {
	fmt.Println("---- plain AND gating: the runt pulse is caught by the width checker ----")
	run(base + `
and "CLOCK GATE" delay=(0,0) ("CLOCK .P20-30", "ENABLE .S25-70") -> ("REG CLOCK")
`)

	fmt.Println("\n---- &A directive: the late control itself is reported (§2.6) ----")
	run(base + `
and "CLOCK GATE" delay=(0,0) ("CLOCK .P20-30" &A, "ENABLE .S25-70") -> ("REG CLOCK")
`)

	fmt.Println("\n---- fixed: ENABLE settles at 15 ns, before the clock asserts ----")
	run(base + `
and "CLOCK GATE" delay=(0,0) ("CLOCK .P20-30" &A, "ENABLE .S15-31") -> ("REG CLOCK")
`)
}

func run(src string) {
	res, err := scaldtv.VerifySource(src, scaldtv.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(scaldtv.ErrorListing(res))
}
