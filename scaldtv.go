// Package scaldtv is a Go implementation of the SCALD Timing Verifier
// (Thomas M. McWilliams, "Verification of Timing Constraints on Large
// Digital Systems", DAC 1980 / Stanford Ph.D. thesis, May 1980).
//
// The verifier performs complete, value-independent timing verification of
// synchronous sequential circuits: it simulates one clock period over a
// seven-value algebra (0, 1, STABLE, CHANGE, RISE, FALL, UNKNOWN), carries
// min/max delay uncertainty as out-of-band skew to preserve pulse widths,
// and checks every set-up, hold, minimum-pulse-width, gated-clock and
// designer-assertion constraint — with designer-specified case analysis
// for value-dependent paths.
//
// Designs are described either programmatically through NewBuilder or in a
// textual SCALD-like hardware description language compiled with Compile:
//
//	res, err := scaldtv.VerifySource(`
//	design EXAMPLE
//	period 50ns
//	clockunit 6.25ns
//	reg R1 delay=(1.5,4.5) ("CK .P0-4", "DATA .S6-12"<0:7>) -> (Q<0:7>)
//	setuphold CHK setup=2.5 hold=1.5 ("DATA .S6-12"<0:7>, "CK .P0-4")
//	`, scaldtv.Options{})
//	if err != nil { ... }
//	fmt.Print(scaldtv.ErrorListing(res))
//
// Signal names carry their timing assertions, exactly as in the paper:
// ".P2-3" and ".C4-6 L" declare (precision) clocks in designer clock
// units, ".S0-6" declares when a signal is stable, "-NAME" uses the
// complement rail, and "&H" attaches evaluation directives to gated-clock
// pins (§2.5, §2.6).
//
// Errors crossing the Compile/Verify boundaries are structured *Error
// values classified by ErrorKind: ParseError (malformed HDL source),
// ElaborateError (macro expansion or netlist validation failed),
// AssertionError (a timing assertion or forced waveform has no
// consistent seed waveform), LimitError (a configured bound was
// exceeded) and CanceledError (a Context variant was canceled
// mid-verification).  Test kinds with errors.Is against the
// ErrParse … ErrCanceled sentinels, or recover position and message
// with errors.As.  The scaldtvd verification service maps these kinds
// onto HTTP statuses.
package scaldtv

import (
	"context"

	"scaldtv/internal/autocorr"
	"scaldtv/internal/expand"
	"scaldtv/internal/explore"
	"scaldtv/internal/hdl"
	"scaldtv/internal/lib"
	"scaldtv/internal/lint"
	"scaldtv/internal/netlist"
	"scaldtv/internal/report"
	"scaldtv/internal/serr"
	"scaldtv/internal/tick"
	"scaldtv/internal/values"
	"scaldtv/internal/verify"
)

// Re-exported core types.  The aliases make every method and field of the
// underlying implementation available to API users.
type (
	// Design is a flattened circuit ready for verification.
	Design = netlist.Design
	// Builder constructs designs programmatically.
	Builder = netlist.Builder
	// Conn is one input-pin connection.
	Conn = netlist.Conn
	// NetID identifies a signal bit within a design.
	NetID = netlist.NetID
	// Kind identifies a primitive type.
	Kind = netlist.Kind

	// Options tunes a verification run.
	Options = verify.Options
	// Result is a complete verification outcome.
	Result = verify.Result
	// Violation is one detected timing error.
	Violation = verify.Violation
	// ViolationKind classifies a violation.
	ViolationKind = verify.ViolationKind

	// Time is an instant or duration in integer picoseconds.
	Time = tick.Time
	// DelayRange is a min/max delay pair.
	DelayRange = tick.Range

	// Waveform is a signal's value over one clock period.
	Waveform = values.Waveform
	// Value is one of the seven signal values.
	Value = values.Value

	// ExpandReport carries macro-expansion statistics (Table 3-2).
	ExpandReport = expand.Report

	// Exploration is the case-exploration report attached to a Result
	// when Options.Explore is set.
	Exploration = verify.Exploration
	// ExploredSite is one U/C-poisoned constraint site found by case
	// exploration.
	ExploredSite = verify.ExploredSite
	// ExploreCandidate is the provenance record for one candidate split.
	ExploreCandidate = verify.ExploreCandidate
	// DelayModel selects how delays are interpreted: MinMaxDelays
	// (worst-case intervals), StatisticalDelays (violation
	// probabilities) or AnalyticDelays (parameterized delay functions
	// with a symbolic margin surface).
	DelayModel = verify.DelayModel
	// MinMaxDelays is the worst-case interval delay model (the default).
	MinMaxDelays = verify.MinMaxDelays
	// StatisticalDelays is the quadrature probability delay model.
	StatisticalDelays = verify.StatisticalDelays
	// AnalyticDelays pins parameterized delay functions at one point and
	// retains the symbolic margin surface.
	AnalyticDelays = verify.AnalyticDelays
	// SiteProb is one constraint site's violation probability under the
	// statistical delay model.
	SiteProb = verify.SiteProb
	// MarginSurface is the symbolic per-site margin report of an
	// analytic-mode run: slack at any parameter point in the declared
	// box, answered without re-running the engine.
	MarginSurface = verify.MarginSurface
	// ParamBinding is one design parameter with its box and pinned value.
	ParamBinding = verify.ParamBinding
	// SurfaceSite is one constraint site's symbolic margin function.
	SurfaceSite = verify.SurfaceSite
	// CornerSlack is one site's slack at a queried parameter point.
	CornerSlack = verify.CornerSlack

	// Verifier retains converged state between runs for incremental
	// re-verification (Verify once, then Reverify or Update per edit).
	// The VerifyContext/ReverifyContext/UpdateContext variants add
	// cooperative cancellation with the abort-don't-corrupt contract
	// described on Error.
	Verifier = verify.Verifier
	// Changes names the primitives and nets whose parameters were edited.
	Changes = netlist.Changes

	// Error is the structured error every Compile/Verify boundary
	// returns: a Kind classifying the failing pipeline stage, the source
	// Pos when known, and the formatted message.  Use errors.As to
	// recover it from a wrapped chain, or errors.Is against the
	// ErrParse … ErrCanceled sentinels to test the kind alone.  Canceled
	// errors additionally wrap the context's cause, so
	// errors.Is(err, context.Canceled) keeps working.
	Error = serr.Error
	// ErrorKind classifies an Error by pipeline stage.
	ErrorKind = serr.Kind
	// ErrorPos is a 1-based source position inside an Error.
	ErrorPos = serr.Pos
)

// The error kinds a structured Error carries.
const (
	// ParseError: the HDL source failed lexing or parsing.
	ParseError = serr.Parse
	// ElaborateError: macro expansion or netlist validation rejected a
	// structurally invalid design.
	ElaborateError = serr.Elaborate
	// AssertionError: a timing assertion or forced waveform could not
	// produce a consistent seed.
	AssertionError = serr.Assertion
	// LimitError: a configured bound was exceeded (invalid sweep bounds,
	// request-size or capacity limits).
	LimitError = serr.Limit
	// CanceledError: the run was abandoned because its context was
	// canceled or its deadline expired.
	CanceledError = serr.Canceled
)

// Sentinels for errors.Is kind tests: errors.Is(err, ErrParse) reports
// whether err is (or wraps) a parse-kind Error, and so on.
var (
	ErrParse     = serr.Sentinel(serr.Parse)
	ErrElaborate = serr.Sentinel(serr.Elaborate)
	ErrAssertion = serr.Sentinel(serr.Assertion)
	ErrLimit     = serr.Sentinel(serr.Limit)
	ErrCanceled  = serr.Sentinel(serr.Canceled)
)

// Primitive kinds, re-exported for Builder users.
const (
	KBuf               = netlist.KBuf
	KNot               = netlist.KNot
	KAnd               = netlist.KAnd
	KOr                = netlist.KOr
	KNand              = netlist.KNand
	KNor               = netlist.KNor
	KXor               = netlist.KXor
	KChg               = netlist.KChg
	KMux2              = netlist.KMux2
	KMux4              = netlist.KMux4
	KMux8              = netlist.KMux8
	KReg               = netlist.KReg
	KRegRS             = netlist.KRegRS
	KLatch             = netlist.KLatch
	KLatchRS           = netlist.KLatchRS
	KSetupHold         = netlist.KSetupHold
	KSetupRiseHoldFall = netlist.KSetupRiseHoldFall
	KMinPulse          = netlist.KMinPulse
)

// Violation kinds.
const (
	SetupViolation        = verify.SetupViolation
	HoldViolation         = verify.HoldViolation
	EnableViolation       = verify.EnableViolation
	MinPulseHighViolation = verify.MinPulseHighViolation
	MinPulseLowViolation  = verify.MinPulseLowViolation
	DirectiveViolation    = verify.DirectiveViolation
	AssertionViolation    = verify.AssertionViolation
	UnknownClockViolation = verify.UnknownClockViolation
	ConvergenceViolation  = verify.ConvergenceViolation
)

// The delay models (Options.Delays), as ready-made values: the former
// constant spellings keep working with the typed DelayModel interface.
var (
	DelayWorstCase   = verify.DelayWorstCase
	DelayStatistical = verify.DelayStatistical
)

// ParseDelayModel resolves the -delays flag spelling ("worstcase",
// "statistical" or "analytic") — the compatibility adapter from the
// stringly-typed API.  New code should construct the typed models
// directly: MinMaxDelays{}, StatisticalDelays{Grid: g},
// AnalyticDelays{Params: m}.
func ParseDelayModel(s string) (DelayModel, error) { return verify.ParseDelayModel(s) }

// IsWorstCase reports whether the model (possibly nil) is the plain
// worst-case interval model.
func IsWorstCase(m DelayModel) bool { return verify.IsWorstCase(m) }

// NewMinMaxDelays returns the worst-case interval delay model.
func NewMinMaxDelays() MinMaxDelays { return verify.NewMinMaxDelays() }

// NewStatisticalDelays returns the statistical delay model with the
// given quadrature grid (0 selects the period/256 default); negative
// grids are rejected.
func NewStatisticalDelays(grid Time) (StatisticalDelays, error) {
	return verify.NewStatisticalDelays(grid)
}

// NewAnalyticDelays returns the analytic delay model pinned at the
// given parameter overrides; non-finite values are rejected and the map
// is copied.
func NewAnalyticDelays(params map[string]float64) (AnalyticDelays, error) {
	return verify.NewAnalyticDelays(params)
}

// The seven signal values.
const (
	V0 = values.V0
	V1 = values.V1
	VS = values.VS
	VC = values.VC
	VR = values.VR
	VF = values.VF
	VU = values.VU
)

// Library is the Chapter-3 component library (register file, multiplexer,
// register, OR gate, ALU, CORR delay) in HDL source form; prepend it to a
// design, or use CompileWithLibrary.
const Library = lib.Prelude

// NS converts nanoseconds to a Time.
func NS(ns float64) Time { return tick.FromNS(ns) }

// Delay builds a min/max delay range from nanosecond quantities.
func Delay(minNS, maxNS float64) DelayRange { return tick.R(minNS, maxNS) }

// NewBuilder starts a programmatic design.
func NewBuilder(name string) *Builder { return netlist.NewBuilder(name) }

// Conns wraps nets as plain connections (see also netlist.Invert and
// Builder.Directive for complement rails and evaluation directives).
func Conns(nets ...NetID) []Conn { return netlist.Conns(nets...) }

// Invert returns complement-rail versions of the connections.
func Invert(cs []Conn) []Conn { return netlist.Invert(cs) }

// Compile parses HDL source and expands its macros into a flat design.
func Compile(src string) (*Design, error) {
	d, _, err := CompileWithReport(src)
	return d, err
}

// CompileWithReport is Compile, also returning the macro-expansion
// statistics.
func CompileWithReport(src string) (*Design, *ExpandReport, error) {
	f, err := hdl.Parse(src)
	if err != nil {
		return nil, nil, err
	}
	return expand.Expand(f)
}

// CompileWithLibrary compiles source with the Chapter-3 component library
// in scope.  The header (design/period/clockunit/... declarations) must
// come first in src; the library is injected after the first period
// declaration is impossible to locate textually, so it is simply prepended
// to the body — place header declarations in src before any instance.
func CompileWithLibrary(header, body string) (*Design, error) {
	return Compile(header + "\n" + Library + "\n" + body)
}

// VerifyContext runs the Timing Verifier on a design — the primary entry
// point; Verify is the context-free shorthand.  With Options.Explore set
// it instead runs automatic case exploration (internal/explore): declared
// cases are stripped, the control-signal splits that discharge the
// U/C-poisoned constraint sites are searched for, and the result is the
// verification under the discovered minimal case set, with
// Result.Exploration describing the search.
//
// When ctx is canceled (or its deadline expires) the relaxation aborts at
// the next pass boundary or wavefront level barrier and the call returns
// an Error of kind CanceledError wrapping ctx.Err().  Cancellation is
// checked only at those schedule-neutral points, so a run that completes
// is bit-identical to an uncancelled one for every Workers/IntraWorkers
// setting.
func VerifyContext(ctx context.Context, d *Design, opts Options) (*Result, error) {
	if opts.Explore {
		return explore.RunContext(ctx, d, opts)
	}
	return verify.RunContext(ctx, d, opts)
}

// Verify is VerifyContext with context.Background().
func Verify(d *Design, opts Options) (*Result, error) {
	return VerifyContext(context.Background(), d, opts)
}

// NewVerifier creates a stateful verifier whose Reverify and Update
// methods re-verify only the dirty cone after parameter edits, resuming
// the retained fixed point (see DESIGN.md, "Incremental reverification").
func NewVerifier(d *Design, opts Options) *Verifier {
	return verify.NewVerifier(d, opts)
}

// Diff compares two designs and, when they differ only in parameters
// (delays, checker intervals, wire overrides, assertion windows,
// same-shape kind swaps), returns the change set for Verifier.Reverify.
// ok is false when the change is structural and needs a full run.
func Diff(old, new *Design) (Changes, bool) { return netlist.Diff(old, new) }

// VerifySourceContext compiles and verifies HDL source in one step — the
// primary entry point, with the cancellation contract of VerifyContext;
// VerifySource is the context-free shorthand.
func VerifySourceContext(ctx context.Context, src string, opts Options) (*Result, error) {
	d, err := Compile(src)
	if err != nil {
		return nil, err
	}
	return VerifyContext(ctx, d, opts)
}

// VerifySource is VerifySourceContext with context.Background().
func VerifySource(src string, opts Options) (*Result, error) {
	return VerifySourceContext(context.Background(), src, opts)
}

// CorrInsertion records one automatic CORR-delay placement (§4.2.3).
type CorrInsertion = autocorr.Insertion

// AutoCorr applies the automatic correlation compensation of §4.2.3: it
// finds storage elements fed back from their own outputs under skewed
// clocks and splices fictitious CORR delays into exactly the feedback
// branches, suppressing the Fig 4-1 false hold errors the paper otherwise
// asks the designer to patch by hand.  The design is modified in place.
func AutoCorr(d *Design) ([]CorrInsertion, error) { return autocorr.Apply(d) }

// MinimumPeriod finds the shortest clock period at which the design
// verifies cleanly, by bisection between lo and hi at the given
// resolution.  Clocks and stable assertions scale with the period through
// the designer clock units (§2.3, §1.1: the Verifier "supports formation
// of an accurate estimate of the cycle time of a digital system before
// its design is completed"); component and interconnection delays stay
// absolute.  It returns 0 with no error when even hi fails.
func MinimumPeriod(src string, lo, hi, resolution Time) (Time, error) {
	if lo <= 0 || hi < lo || resolution <= 0 {
		return 0, serr.Newf(serr.Limit, "scaldtv: invalid sweep bounds %v..%v step %v", lo, hi, resolution)
	}
	f, err := hdl.Parse(src)
	if err != nil {
		return 0, err
	}
	if f.Period <= 0 {
		return 0, serr.Newf(serr.Elaborate, "scaldtv: the design must declare a period to sweep against")
	}
	basePeriod := f.Period
	baseCU := f.ClockUnit
	if baseCU == 0 {
		baseCU = tick.NS
	}
	cleanAt := func(p Time) (bool, error) {
		f.Period = p
		// Clock units are a fixed fraction of the period (§2.3).
		f.ClockUnit = Time(int64(baseCU) * int64(p) / int64(basePeriod))
		if f.ClockUnit <= 0 {
			return false, nil
		}
		d, _, err := expand.Expand(f)
		if err != nil {
			return false, err
		}
		res, err := verify.Run(d, verify.Options{})
		if err != nil {
			return false, err
		}
		return !res.Errors(), nil
	}
	ok, err := cleanAt(hi)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, nil
	}
	good := hi
	lobound := lo
	for good-lobound > resolution {
		mid := lobound + (good-lobound)/2
		ok, err := cleanAt(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			good = mid
		} else {
			lobound = mid
		}
	}
	return good, nil
}

// TimingSummary renders the Fig 3-10 style listing of every signal's value
// over the cycle for one verified case (requires Options.KeepWaves).
func TimingSummary(res *Result, caseIdx int) string {
	return report.TimingSummary(res, caseIdx)
}

// ErrorListing renders the Fig 3-11 style constraint-error listing.
func ErrorListing(res *Result) string { return report.ErrorListing(res) }

// CrossReference renders the listing of signals that are used but neither
// generated nor asserted (§2.5).
func CrossReference(res *Result) string { return report.CrossReference(res) }

// Summary renders a one-paragraph run overview with execution statistics.
func Summary(res *Result) string { return report.Summary(res) }

// WaveArt renders the verified waveforms as an ASCII timing diagram
// (requires Options.KeepWaves).
func WaveArt(res *Result, caseIdx, width int) string {
	return report.WaveArt(res, caseIdx, width)
}

// JSONReport renders the verification result as machine-readable JSON for
// CI integration.
func JSONReport(res *Result) ([]byte, error) { return report.JSON(res) }

// SlackListing renders constraint margins sorted most-critical first,
// with the §1.1 cycle-time estimate (requires Options.Margins).
func SlackListing(res *Result, topN int) string { return report.SlackListing(res, topN) }

// ExploreListing renders the case-exploration report: poisoned sites,
// candidate provenance, and the emitted minimal case set (requires
// Options.Explore).
func ExploreListing(res *Result) string { return report.ExploreListing(res) }

// StatListing renders the statistical-mode violation probabilities per
// constraint site (requires Options.Delays = StatisticalDelays{...}).
func StatListing(res *Result) string { return report.StatListing(res) }

// SurfaceListing renders the analytic-mode margin surface: each
// constraint site's slack at the pinned parameter point and its worst
// slack over the declared parameter box, with the binding corner
// (requires Options.Delays = AnalyticDelays{...}).
func SurfaceListing(res *Result) string { return report.SurfaceListing(res) }

// DOT renders a design as a Graphviz digraph for visualisation.
func DOT(d *Design) string { return report.DOT(d) }

// CaseDiff lists the signals whose waveforms differ between two verified
// cases — the cone the case mapping affected (§2.7).  Requires
// Options.KeepWaves.
func CaseDiff(res *Result, a, b int) string { return report.CaseDiff(res, a, b) }

// LintFinding is one structural design-rule hit.
type LintFinding = lint.Finding

// Lint runs the structural design-rule checks (combinational loops,
// unchecked storage, gated clocks without width checks, unasserted
// clocks, dangling outputs) that complement timing verification.
func Lint(d *Design) []LintFinding { return lint.Check(d) }
