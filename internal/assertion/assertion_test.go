package assertion

import (
	"testing"

	"scaldtv/internal/tick"
	"scaldtv/internal/values"
)

// The S-1 Mark IIA / Fig 2-5 environment: 50 ns cycle, 6.25 ns clock units
// (8 per cycle), precision skew ±1 ns, non-precision ±5 ns.
var markIIA = Env{
	Period:        50 * tick.NS,
	ClockUnit:     tick.FromNS(6.25),
	PrecisionSkew: tick.R(-1, 1),
	ClockSkew:     tick.R(-5, 5),
}

func ns(f float64) tick.Time { return tick.FromNS(f) }

func TestParsePlainName(t *testing.T) {
	s, err := Parse("ALU OUTPUT")
	if err != nil {
		t.Fatal(err)
	}
	if s.Base != "ALU OUTPUT" || s.Assert != nil {
		t.Errorf("plain name parsed wrong: %+v", s)
	}
}

func TestParseStable(t *testing.T) {
	s, err := Parse("W DATA .S0-6")
	if err != nil {
		t.Fatal(err)
	}
	if s.Base != "W DATA" {
		t.Errorf("base = %q", s.Base)
	}
	a := s.Assert
	if a == nil || a.Kind != Stable || len(a.Ranges) != 1 {
		t.Fatalf("assertion wrong: %+v", a)
	}
	if a.Ranges[0].Start != 0 || a.Ranges[0].End != 6 {
		t.Errorf("range = %+v", a.Ranges[0])
	}
}

func TestParseClockVariants(t *testing.T) {
	cases := []struct {
		in      string
		kind    Kind
		low     bool
		nRanges int
		skewSet bool
	}{
		{"XYZ .C 4-6 L", Clock, true, 1, false},
		{"XYZ .C2-3,5-6", Clock, false, 2, false},
		{"XYZ .C2,5", Clock, false, 2, false},
		{"XYZ .P2-3", PrecisionClock, false, 1, false},
		{"CK .P(-0.5,0.5)2-3", PrecisionClock, false, 1, true},
		{"CK .P2-3 L", PrecisionClock, true, 1, false},
	}
	for _, c := range cases {
		s, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		a := s.Assert
		if a == nil {
			t.Errorf("Parse(%q): no assertion", c.in)
			continue
		}
		if a.Kind != c.kind || a.LowAsserted != c.low || len(a.Ranges) != c.nRanges || (a.Skew != nil) != c.skewSet {
			t.Errorf("Parse(%q) = %+v", c.in, a)
		}
	}
}

func TestParseSingleTimeIsOneUnit(t *testing.T) {
	s := MustParse("XYZ .C2,5")
	r := s.Assert.Ranges
	if r[0].Start != 2 || r[0].End != 3 || r[1].Start != 5 || r[1].End != 6 {
		t.Errorf("single-time ranges = %+v, want one-unit intervals", r)
	}
}

func TestParseWidthForm(t *testing.T) {
	s := MustParse("XYZ .C2+10.0")
	r := s.Assert.Ranges[0]
	if !r.IsWidth || r.Start != 2 || r.WidthNS != ns(10) {
		t.Errorf("width form = %+v", r)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		".S0-6",        // empty base name
		"X .S",         // missing value spec
		"X .C",         // missing value spec
		"X .C(1,2",     // unterminated skew
		"X .C(1)2-3",   // one-element skew
		"X .C(a,b)2-3", // non-numeric skew
		"X .C(1,2)2-3", // skew not bracketing zero
		"X .S4-",       // missing end
		"X .S4,,5",     // empty range element
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestParseDoesNotGrabDottedWords(t *testing.T) {
	// A '.' not followed by a marker letter and body stays in the name.
	for _, in := range []string{"U4.Q", "BUS.PARITY", "A.Cxx", "X .Sx-y", "X .S,"} {
		s, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		if s.Assert != nil {
			t.Errorf("Parse(%q) found a phantom assertion %v", in, s.Assert)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	MustParse("X .C(1,2")
}

func TestClockWaveform(t *testing.T) {
	// "CK .P2-3" with zero skew override for crispness: high 12.5–18.75 ns.
	env := markIIA
	env.PrecisionSkew = tick.Range{}
	s := MustParse("CK .P2-3")
	w, err := s.Assert.Waveform(env)
	if err != nil {
		t.Fatal(err)
	}
	if w.At(ns(12.5)) != values.V1 || w.At(ns(18)) != values.V1 {
		t.Errorf("clock not high in window: %v", w)
	}
	if w.At(ns(12)) != values.V0 || w.At(ns(19)) != values.V0 || w.At(0) != values.V0 {
		t.Errorf("clock not low outside window: %v", w)
	}
}

func TestClockWaveformLowAsserted(t *testing.T) {
	env := markIIA
	env.PrecisionSkew = tick.Range{}
	s := MustParse("CK .P2-3 L")
	w, _ := s.Assert.Waveform(env)
	if w.At(ns(13)) != values.V0 {
		t.Errorf("low-asserted clock should be low in window: %v", w)
	}
	if w.At(0) != values.V1 {
		t.Errorf("low-asserted clock should idle high: %v", w)
	}
}

func TestClockWaveformSkew(t *testing.T) {
	// Precision default skew ±1 ns: the waveform is rotated -1 ns and
	// carries 2 ns of skew.
	s := MustParse("CK .P2-3")
	w, _ := s.Assert.Waveform(markIIA)
	if w.Skew != ns(2) {
		t.Errorf("skew = %v, want 2ns", w.Skew)
	}
	if w.At(ns(11.5)) != values.V1 || w.At(ns(11)) != values.V0 {
		t.Errorf("skewed clock shifted wrong: %v", w)
	}
	// Explicit skew overrides the default.
	s2 := MustParse("CK .P(-0.5,0.5)2-3")
	w2, _ := s2.Assert.Waveform(markIIA)
	if w2.Skew != ns(1) {
		t.Errorf("explicit skew = %v, want 1ns", w2.Skew)
	}
	// Non-precision clocks default to the wider skew.
	s3 := MustParse("CK .C2-3")
	w3, _ := s3.Assert.Waveform(markIIA)
	if w3.Skew != ns(10) {
		t.Errorf("non-precision skew = %v, want 10ns", w3.Skew)
	}
}

func TestClockWaveformWidthForm(t *testing.T) {
	env := markIIA
	env.ClockSkew = tick.Range{}
	s := MustParse("XYZ .C2+10.0")
	w, _ := s.Assert.Waveform(env)
	if w.At(ns(12.5)) != values.V1 || w.At(ns(22)) != values.V1 || w.At(ns(23)) != values.V0 {
		t.Errorf("width-form clock wrong: %v", w)
	}
}

func TestStableWaveform(t *testing.T) {
	// "READ ADR .S4-9" on an 8-unit cycle: stable 25→6.25 ns wrapping.
	s := MustParse("READ ADR .S4-9")
	w, err := s.Assert.Waveform(markIIA)
	if err != nil {
		t.Fatal(err)
	}
	if w.At(ns(25)) != values.VS || w.At(ns(49)) != values.VS || w.At(ns(3)) != values.VS {
		t.Errorf("stable window wrong: %v", w)
	}
	if w.At(ns(10)) != values.VC || w.At(ns(24)) != values.VC {
		t.Errorf("changing window wrong: %v", w)
	}
}

func TestWaveformEnvValidation(t *testing.T) {
	s := MustParse("X .S0-4")
	if _, err := s.Assert.Waveform(Env{}); err == nil {
		t.Error("zero environment accepted")
	}
}

func TestAssertionString(t *testing.T) {
	for _, in := range []string{"X .S0-6", "X .C2-3,5-6 L", "X .P(-1.0,1.0)2-3"} {
		s := MustParse(in)
		rendered := s.Assert.String()
		// Round-trip: parsing base + rendered assertion gives an equal assertion.
		s2 := MustParse(s.Base + " " + rendered)
		if s2.Assert.Kind != s.Assert.Kind || s2.Assert.LowAsserted != s.Assert.LowAsserted ||
			len(s2.Assert.Ranges) != len(s.Assert.Ranges) {
			t.Errorf("%q → %q did not round-trip: %+v vs %+v", in, rendered, s.Assert, s2.Assert)
		}
	}
	var nilA *Assertion
	if nilA.String() != "" {
		t.Error("nil assertion should render empty")
	}
}

func TestParseDirectives(t *testing.T) {
	d, err := ParseDirectives("HZZW")
	if err != nil {
		t.Fatal(err)
	}
	h, rest := d.Head()
	if h != DirHold || rest != "ZZW" {
		t.Errorf("Head = %c, %q", h, rest)
	}
	if _, err := ParseDirectives("HX"); err == nil {
		t.Error("invalid letter accepted")
	}
	if d, err := ParseDirectives("hz"); err != nil || d != "HZ" {
		t.Errorf("lower-case directives should normalize: %v, %v", d, err)
	}
	e, _ := ParseDirectives("")
	h, rest = e.Head()
	if h != DirEvaluate || rest != "" || !e.Empty() {
		t.Error("empty directives should yield default E")
	}
	if d.String() != "&HZZW" || e.String() != "" {
		t.Errorf("String rendering wrong: %q, %q", d.String(), e.String())
	}
}

func TestDirectiveSemantics(t *testing.T) {
	cases := []struct {
		d               Directive
		wire, gate, chk bool
	}{
		{DirEvaluate, false, false, false},
		{DirWire, true, false, false},
		{DirZero, true, true, false},
		{DirAssert, false, false, true},
		{DirHold, true, true, true},
	}
	for _, c := range cases {
		if c.d.ZeroesWire() != c.wire || c.d.ZeroesGate() != c.gate || c.d.ChecksStability() != c.chk {
			t.Errorf("directive %c semantics wrong", c.d)
		}
	}
}
