package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"scaldtv"
	"scaldtv/internal/report"
	"scaldtv/internal/serr"
	"scaldtv/internal/verify"
)

// CoordinatorConfig tunes the coordinator half of the cluster.
type CoordinatorConfig struct {
	// Endpoints are the worker base URLs (http://host:port).
	Endpoints []string
	// Client performs the batch RPCs; default is a plain http.Client.
	Client *http.Client
	// Retries bounds how many times one sub-job is re-dispatched to
	// another worker after its assigned worker fails mid-batch; beyond
	// that the sub-job runs locally on the coordinator.  Default 3.
	Retries int
	// Backoff is the initial re-dispatch delay, doubled per attempt.
	// Default 50ms.
	Backoff time.Duration
	// BatchTimeout bounds one batch RPC.  Default 120s.
	BatchTimeout time.Duration
	// ProbeInterval is the health re-probe cadence for a worker marked
	// down.  Default 2s.
	ProbeInterval time.Duration
	// DesignCache bounds the coordinator's compiled-design LRU.
	DesignCache int
	// MaxSessionRoutes bounds the exact session→owner routing table
	// (beyond it, lookups fall back to the consistent-hash ring).
	// Default 4096.
	MaxSessionRoutes int
}

// Coordinator fans verification runs across engine workers: it
// partitions a run's declared cases into contiguous ranges, ships each
// range as part of a batched RPC to a worker chosen by consistent
// hashing (so repeat traffic finds warm caches), fails partitions over
// to surviving workers — or to a local run — when a worker dies
// mid-batch, and reassembles the parts in declared case order so the
// distributed report is byte-identical to a local single-process run.
type Coordinator struct {
	cfg     CoordinatorConfig
	workers []*workerRef
	ring    *ring
	designs *designCache
	closed  chan struct{}

	routeMu sync.Mutex
	routes  map[string]int // session id → worker index

	dispatched   atomic.Int64 // sub-jobs sent to workers
	batches      atomic.Int64 // batch RPCs issued
	failovers    atomic.Int64 // sub-jobs re-dispatched after a worker failure
	localRuns    atomic.Int64 // sub-jobs that fell back to a local engine run
	inflightRuns atomic.Int64 // Verify calls currently in flight (adaptive sharding)
}

// workerRef tracks one worker endpoint and its health.
type workerRef struct {
	url     string
	down    atomic.Bool
	probing atomic.Bool
	fails   atomic.Int64 // worker-level RPC failures (transport/non-200)

	mu    sync.Mutex
	queue []*pending
	busy  bool
}

type pending struct {
	job  *SubJob
	done chan dispatchResult
}

type dispatchResult struct {
	res *SubResult
	err error // transport-level failure of the batch carrying this job
}

// NewCoordinator builds a Coordinator over the worker endpoints.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.Retries <= 0 {
		cfg.Retries = 3
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 50 * time.Millisecond
	}
	if cfg.BatchTimeout <= 0 {
		cfg.BatchTimeout = 120 * time.Second
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.MaxSessionRoutes <= 0 {
		cfg.MaxSessionRoutes = 4096
	}
	c := &Coordinator{
		cfg:     cfg,
		ring:    newRing(len(cfg.Endpoints)),
		designs: newDesignCache(cfg.DesignCache),
		closed:  make(chan struct{}),
		routes:  make(map[string]int),
	}
	for _, ep := range cfg.Endpoints {
		c.workers = append(c.workers, &workerRef{url: ep})
	}
	return c
}

// Close stops background health probes.
func (c *Coordinator) Close() {
	select {
	case <-c.closed:
	default:
		close(c.closed)
	}
}

// Workers reports the number of configured workers.
func (c *Coordinator) Workers() int { return len(c.workers) }

// Healthy reports the number of workers not currently marked down.
func (c *Coordinator) Healthy() int {
	n := 0
	for _, w := range c.workers {
		if !w.down.Load() {
			n++
		}
	}
	return n
}

// Stats is the coordinator's metrics snapshot.
type Stats struct {
	Workers    int
	Healthy    int
	Dispatched int64
	Batches    int64
	Failovers  int64
	LocalRuns  int64
}

// Snapshot returns the current metrics.
func (c *Coordinator) Snapshot() Stats {
	return Stats{
		Workers:    len(c.workers),
		Healthy:    c.Healthy(),
		Dispatched: c.dispatched.Load(),
		Batches:    c.batches.Load(),
		Failovers:  c.failovers.Load(),
		LocalRuns:  c.localRuns.Load(),
	}
}

func (c *Coordinator) alive(i int) bool { return !c.workers[i].down.Load() }

// Verify runs one verification through the cluster and returns the
// report bytes, byte-identical to `scaldtv -json` of the same source and
// options.  The shard count adapts to load: an otherwise-idle cluster
// splits the run's cases across workers for latency, while concurrent
// runs ship whole to their ring owners for throughput.  provenance
// describes how the run was obtained: a whole-run job passes its
// worker's provenance through (cached/warm/cold), a partitioned run
// reports "sharded", a run with no reachable workers "local".
func (c *Coordinator) Verify(ctx context.Context, src string, opts verify.Options) (rep []byte, provenance string, err error) {
	d, err := c.designs.compile(src)
	if err != nil {
		return nil, "", err
	}
	total := len(d.Cases)
	if total == 0 {
		total = 1
	}

	// Runs the wire cannot express (forced waveforms) and clusters with
	// nobody to talk to run locally: same engine, same bytes.
	if len(c.workers) == 0 || len(opts.Force) > 0 {
		return c.verifyLocal(ctx, src, opts, d)
	}

	key := srcHash(src)
	owner := c.ring.owner(key, c.alive)
	if owner < 0 {
		// Every worker is marked down; run locally rather than queue
		// behind probes.  The next Verify re-dispatches once a probe
		// brings a worker back.
		return c.verifyLocal(ctx, src, opts, d)
	}

	load := int(c.inflightRuns.Add(1))
	defer c.inflightRuns.Add(-1)

	var jobs []*SubJob
	var assigned []int
	healthy := c.healthyList()
	// Sharding is adaptive to load.  Splitting one run's cases across
	// workers cuts its latency, but each partition re-pays the
	// first-case relaxation the sequential schedule would have
	// amortized — so under concurrent load (at least one run per
	// worker already in flight), runs ship whole to their ring owner
	// instead: full incremental case chain, warm per-design caches,
	// and throughput that scales with worker count.  An idle cluster
	// still fans a lone run out for latency.  Report bytes are
	// identical either way.
	k := len(healthy) / load
	if k > total {
		k = total
	}
	if opts.Explore || k <= 1 || total == 1 {
		// One shard (or an indivisible explore run): ship whole, pinned
		// to the ring owner so repeat traffic finds the design compiled
		// and the store warm.
		jobs = []*SubJob{{ID: c.jobID(key, 0), Source: src, Opts: WireOptions(opts)}}
		assigned = []int{owner}
	} else {
		// Contiguous balanced ranges in declared case order; partition i
		// starts at the ring owner and walks the healthy list, so a
		// design's partitions spread while staying stable run to run.
		ownerPos := 0
		for i, w := range healthy {
			if w == owner {
				ownerPos = i
				break
			}
		}
		lo := 0
		for i := 0; i < k; i++ {
			size := total / k
			if i < total%k {
				size++
			}
			jobs = append(jobs, &SubJob{
				ID:     c.jobID(key, i),
				Source: src,
				CaseLo: lo,
				CaseHi: lo + size,
				Opts:   WireOptions(opts),
			})
			assigned = append(assigned, healthy[(ownerPos+i)%len(healthy)])
			lo += size
		}
	}

	results := make([]*SubResult, len(jobs))
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = c.dispatch(ctx, d, jobs[i], assigned[i])
		}(i)
	}
	wg.Wait()

	parts := make([]*report.Report, len(results))
	for i, r := range results {
		if r.Err != nil {
			// First error in partition order, exactly as a local run
			// surfaces the first failing case.
			return nil, "", r.Err.Err()
		}
		parts[i] = r.Part
	}
	out, err := report.MergeParts(parts)
	if err != nil {
		return nil, "", err
	}
	if len(jobs) == 1 {
		return out, results[0].Provenance, nil
	}
	return out, "sharded", nil
}

// verifyLocal runs the whole verification on the coordinator.
func (c *Coordinator) verifyLocal(ctx context.Context, src string, opts verify.Options, d *scaldtv.Design) ([]byte, string, error) {
	c.localRuns.Add(1)
	res, err := scaldtv.VerifyContext(ctx, d, opts)
	if err != nil {
		return nil, "", err
	}
	out, err := scaldtv.JSONReport(res)
	if err != nil {
		return nil, "", err
	}
	return out, "local", nil
}

var jobSeq atomic.Int64

func (c *Coordinator) jobID(key uint64, part int) string {
	return fmt.Sprintf("%016x-%d-%d", key, part, jobSeq.Add(1))
}

// healthyList returns the indices of workers not marked down, in stable
// order.  When all are down it returns every worker, so dispatch still
// attempts (and re-probes) rather than instantly failing everything.
func (c *Coordinator) healthyList() []int {
	var up []int
	for i, w := range c.workers {
		if !w.down.Load() {
			up = append(up, i)
		}
	}
	if len(up) == 0 {
		for i := range c.workers {
			up = append(up, i)
		}
	}
	return up
}

// dispatch delivers one sub-job: enqueue on the assigned worker's
// batcher, and on worker failure re-dispatch with backoff to the next
// alive worker (consistent-hash walk), falling back to a local engine
// run when every attempt is exhausted.  Engine-level errors (a design
// that fails to verify) are results, not failures — they return
// immediately without failover.
func (c *Coordinator) dispatch(ctx context.Context, d *scaldtv.Design, job *SubJob, preferred int) *SubResult {
	tried := map[int]bool{}
	target := preferred
	backoff := c.cfg.Backoff
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if target < 0 {
			break
		}
		tried[target] = true
		c.dispatched.Add(1)
		done := c.enqueue(target, job)
		var dr dispatchResult
		select {
		case dr = <-done:
		case <-ctx.Done():
			return &SubResult{ID: job.ID, Err: wireErr(serr.Wrap(serr.Canceled, ctx.Err()))}
		}
		if dr.err == nil {
			return dr.res
		}
		// Worker-level failure: mark it down, start a recovery probe, and
		// fail the partition over.  No partial state leaks into the
		// report — the sub-job re-runs from scratch elsewhere.
		c.markDown(target)
		c.failovers.Add(1)
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return &SubResult{ID: job.ID, Err: wireErr(serr.Wrap(serr.Canceled, ctx.Err()))}
		}
		backoff *= 2
		target = c.ring.owner(srcHash(job.ID), func(i int) bool { return c.alive(i) && !tried[i] })
	}
	// Exhausted: run the partition locally so the report still completes.
	c.localRuns.Add(1)
	res := &SubResult{ID: job.ID}
	rd, err := narrow(d, job)
	if err != nil {
		res.Err = wireErr(err)
		return res
	}
	out, err := scaldtv.VerifyContext(ctx, rd, job.Opts.Options())
	if err != nil {
		res.Err = wireErr(err)
		return res
	}
	res.Part = report.NewPartial(out)
	res.Provenance = "local"
	return res
}

// enqueue appends a sub-job to the worker's batch queue, starting the
// drain loop when idle.  Jobs that accumulate while an RPC is in flight
// ship together in the next one — many small designs per round trip,
// with no added latency when the queue is empty.
func (c *Coordinator) enqueue(worker int, job *SubJob) chan dispatchResult {
	w := c.workers[worker]
	p := &pending{job: job, done: make(chan dispatchResult, 1)}
	w.mu.Lock()
	w.queue = append(w.queue, p)
	start := !w.busy
	if start {
		w.busy = true
	}
	w.mu.Unlock()
	if start {
		go c.drain(w)
	}
	return p.done
}

// drain ships the worker's queued sub-jobs batch by batch until the
// queue empties.
func (c *Coordinator) drain(w *workerRef) {
	for {
		w.mu.Lock()
		batch := w.queue
		w.queue = nil
		if len(batch) == 0 {
			w.busy = false
			w.mu.Unlock()
			return
		}
		w.mu.Unlock()

		jobs := make([]*SubJob, len(batch))
		for i, p := range batch {
			jobs[i] = p.job
		}
		c.batches.Add(1)
		results, err := c.send(w, jobs)
		for i, p := range batch {
			if err != nil {
				p.done <- dispatchResult{err: err}
			} else {
				p.done <- dispatchResult{res: results[i]}
			}
		}
	}
}

// send performs one batch RPC against a worker.
func (c *Coordinator) send(w *workerRef, jobs []*SubJob) ([]*SubResult, error) {
	var body bytes.Buffer
	if err := encodeBatch(&body, jobs); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.BatchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.url+"/v1/batch", &body)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		w.fails.Add(1)
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		w.fails.Add(1)
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		return nil, fmt.Errorf("cluster: worker %s: HTTP %d", w.url, resp.StatusCode)
	}
	results, err := decodeResults(resp.Body, len(jobs))
	if err != nil {
		w.fails.Add(1)
		return nil, err
	}
	// The worker answers in request order; verify the IDs line up so a
	// confused worker cannot silently swap partitions.
	for i, r := range results {
		if r.ID != jobs[i].ID {
			w.fails.Add(1)
			return nil, fmt.Errorf("cluster: worker %s answered job %q in slot of %q", w.url, r.ID, jobs[i].ID)
		}
	}
	return results, nil
}

// markDown flags a worker dead and starts its recovery probe.
func (c *Coordinator) markDown(worker int) {
	w := c.workers[worker]
	if w.down.Swap(true) || !w.probing.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer w.probing.Store(false)
		for {
			select {
			case <-c.closed:
				return
			case <-time.After(c.cfg.ProbeInterval):
			}
			ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeInterval)
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.url+"/healthz", nil)
			if err != nil {
				cancel()
				return
			}
			resp, err := c.cfg.Client.Do(req)
			cancel()
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					w.down.Store(false)
					return
				}
			}
		}
	}()
}

// --- session routing ---

// SessionOwnerURL resolves the worker owning a session key: the exact
// route recorded at create time when known, the consistent-hash owner
// otherwise (stable across coordinator restarts for ring-routed ids).
// ok is false when no worker is alive.
func (c *Coordinator) SessionOwnerURL(key string) (string, bool) {
	c.routeMu.Lock()
	if i, found := c.routes[key]; found {
		c.routeMu.Unlock()
		if c.alive(i) {
			return c.workers[i].url, true
		}
		// The owner died: its in-memory session state is gone.  Fall
		// through to the ring so the client's recreate lands somewhere
		// alive.
		c.routeMu.Lock()
		delete(c.routes, key)
	}
	c.routeMu.Unlock()
	i := c.ring.owner(srcHash(key), c.alive)
	if i < 0 {
		return "", false
	}
	return c.workers[i].url, true
}

// NoteSession records a session id's owner after a create, so later
// requests route exactly even though the id was generated worker-side.
func (c *Coordinator) NoteSession(id, ownerURL string) {
	idx := -1
	for i, w := range c.workers {
		if w.url == ownerURL {
			idx = i
			break
		}
	}
	if idx < 0 {
		return
	}
	c.routeMu.Lock()
	defer c.routeMu.Unlock()
	if len(c.routes) >= c.cfg.MaxSessionRoutes {
		// Drop an arbitrary entry; evicted ids fall back to ring routing.
		for k := range c.routes {
			delete(c.routes, k)
			break
		}
	}
	c.routes[id] = idx
}

// ProxySession forwards a session-scoped request to the owner worker and
// relays the response verbatim.  key is the routing key: the session id
// for existing sessions, the design source for creates.  On a create it
// records the returned session id's owner.  It reports false when no
// worker is reachable (the caller answers 503).
func (c *Coordinator) ProxySession(rw http.ResponseWriter, r *http.Request, key string) bool {
	owner, ok := c.SessionOwnerURL(key)
	if !ok {
		return false
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return false
	}
	url := owner + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header = r.Header.Clone()
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		for i, w := range c.workers {
			if w.url == owner {
				c.markDown(i)
				break
			}
		}
		return false
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		return false
	}
	if r.Method == http.MethodPost && resp.StatusCode == http.StatusCreated {
		var env struct {
			Session string `json:"session"`
		}
		if json.Unmarshal(respBody, &env) == nil && env.Session != "" {
			c.NoteSession(env.Session, owner)
		}
	}
	for k, vs := range resp.Header {
		for _, v := range vs {
			rw.Header().Add(k, v)
		}
	}
	rw.WriteHeader(resp.StatusCode)
	rw.Write(respBody)
	return true
}
