package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestSessionGoneDeterministic pins the exact race window: a handler
// that looked a session up just before the TTL sweep removed it must
// observe the dead mark after acquiring the session mutex and answer
// 410 Gone — never verify into the unreachable session.
func TestSessionGoneDeterministic(t *testing.T) {
	now := time.Unix(1700000000, 0)
	table := newSessionTable(2, time.Minute, func() time.Time { return now })
	sess := &session{id: "s1"}
	table.put(sess)

	// The racing handler's lookup happens first…
	if got := table.get("s1"); got != sess {
		t.Fatal("lookup missed a live session")
	}
	// …then the TTL sweep runs (any table access sweeps).
	now = now.Add(2 * time.Minute)
	if n := table.len(); n != 0 {
		t.Fatalf("table length %d after TTL expiry, want 0", n)
	}
	// The handler still holds the pointer; the dead mark is what turns
	// its in-flight request into a clean 410.
	if !sess.dead.Load() {
		t.Error("evicted session not marked dead")
	}
	if code := statusFor(errSessionGone); code != http.StatusGone {
		t.Errorf("errSessionGone maps to %d, want 410", code)
	}

	// LRU-pressure eviction marks its victims the same way.
	old := &session{id: "old"}
	table.put(old)
	table.put(&session{id: "a"})
	table.put(&session{id: "b"}) // capacity 2: "old" falls off
	if !old.dead.Load() {
		t.Error("LRU victim not marked dead")
	}

	// Explicit DELETE too.
	del := &session{id: "del"}
	table.put(del)
	if !table.remove("del") {
		t.Fatal("remove missed a live session")
	}
	if !del.dead.Load() {
		t.Error("deleted session not marked dead")
	}
}

// TestSessionEvictionRaceHammer exercises lookups, edits, report reads
// and deletes concurrently with TTL sweeps and LRU pressure under an
// injected clock.  Run with -race.  Every response must be one of the
// clean outcomes — 200/201, 404 for swept-before-lookup, 410 for
// evicted-after-lookup — and the server must neither panic nor deadlock.
func TestSessionEvictionRaceHammer(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1700000000, 0)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}
	_, ts := newTestServer(t, Config{
		SessionTTL:  time.Minute,
		MaxSessions: 2, // constant LRU pressure between the workers
		Pool:        4,
		Queue:       256, // never 429 under this load
		now:         clock,
	})

	const (
		workers = 4
		rounds  = 12
	)
	allowed := map[int]bool{
		http.StatusOK:        true,
		http.StatusCreated:   true,
		http.StatusNotFound:  true, // swept before lookup
		http.StatusGone:      true, // swept between lookup and use
		http.StatusNoContent: true, // DELETE of a still-live session
	}
	var wg sync.WaitGroup
	errs := make(chan string, workers*rounds*4)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				resp, body := post(t, ts.URL+"/v1/sessions?lib=1", sessSource(2))
				if resp.StatusCode != http.StatusCreated {
					errs <- fmt.Sprintf("worker %d create: %d: %s", w, resp.StatusCode, body)
					continue
				}
				var env sessionEnvelope
				if err := json.Unmarshal(body, &env); err != nil {
					errs <- err.Error()
					continue
				}
				// Expire everything mid-flight on some rounds: requests
				// that already fetched the session see dead → 410.
				if r%3 == 0 {
					advance(2 * time.Minute)
				}
				for _, req := range []struct{ method, url, body string }{
					{http.MethodPut, "/v1/sessions/" + env.Session + "/design?lib=1", sessSource(3)},
					{http.MethodGet, "/v1/sessions/" + env.Session + "/report", ""},
					{http.MethodDelete, "/v1/sessions/" + env.Session, ""},
				} {
					resp, body := do(t, req.method, ts.URL+req.url, req.body)
					if !allowed[resp.StatusCode] {
						errs <- fmt.Sprintf("worker %d %s %s: status %d: %s", w, req.method, req.url, resp.StatusCode, body)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
