package verify

import (
	"fmt"
	"math/rand"
	"testing"

	"scaldtv/internal/assertion"
	"scaldtv/internal/gen"
	"scaldtv/internal/netlist"
	"scaldtv/internal/tick"
)

// The metamorphic property under test: for any sequence of parameter
// edits, Reverify after each edit must produce a report bit-identical to
// a from-scratch Verify of the edited design — same violations in the
// same order, same margins, same kept waveforms, for every worker count,
// with the evaluation cache on or off.

// gateSwaps lists the same-shape instance swaps: one-input gates trade
// among themselves, multi-input gates among themselves.
var oneInSwaps = []netlist.Kind{netlist.KBuf, netlist.KNot}
var multiInSwaps = []netlist.Kind{netlist.KAnd, netlist.KOr, netlist.KNand, netlist.KNor, netlist.KXor, netlist.KChg}

// randomEdit applies one random, validity-preserving parameter edit to d
// and returns the change set describing it plus a human-readable tag.
func randomEdit(t *testing.T, d *netlist.Design, rng *rand.Rand) (netlist.Changes, string) {
	t.Helper()
	cu := d.ClockUnit
	if cu == 0 {
		cu = tick.NS
	}
	maxU := float64(d.Period) / float64(cu)
	for tries := 0; tries < 1000; tries++ {
		switch rng.Intn(6) {
		case 0: // propagation-delay bump on a driving primitive
			pi := netlist.PrimID(rng.Intn(len(d.Prims)))
			p := &d.Prims[pi]
			if p.Kind.IsChecker() {
				continue
			}
			delta := tick.Time(rng.Intn(9)-4) * tick.NS / 10
			if p.RF != nil {
				if p.RF.Rise.Max+delta < p.RF.Rise.Min {
					continue
				}
				p.RF.Rise.Max += delta
				return netlist.Changes{Prims: []netlist.PrimID{pi}}, fmt.Sprintf("rf bump %q %+d ps", p.Name, delta)
			}
			if p.Delay.Max+delta < p.Delay.Min {
				continue
			}
			p.Delay.Max += delta
			return netlist.Changes{Prims: []netlist.PrimID{pi}}, fmt.Sprintf("delay bump %q %+d ps", p.Name, delta)
		case 1: // checker-interval tweak
			pi := netlist.PrimID(rng.Intn(len(d.Prims)))
			p := &d.Prims[pi]
			delta := tick.Time(rng.Intn(5)-2) * tick.NS / 5
			switch p.Kind {
			case netlist.KSetupHold, netlist.KSetupRiseHoldFall:
				if p.Setup+delta < 0 {
					continue
				}
				p.Setup += delta
				return netlist.Changes{Prims: []netlist.PrimID{pi}}, fmt.Sprintf("setup tweak %q %+d ps", p.Name, delta)
			case netlist.KMinPulse:
				if p.MinHigh+delta <= 0 {
					continue
				}
				p.MinHigh += delta
				return netlist.Changes{Prims: []netlist.PrimID{pi}}, fmt.Sprintf("minpulse tweak %q %+d ps", p.Name, delta)
			}
		case 2: // same-shape instance swap
			pi := netlist.PrimID(rng.Intn(len(d.Prims)))
			p := &d.Prims[pi]
			set := multiInSwaps
			if len(p.In) == 1 && len(p.In[0].Bits) == 1 {
				set = oneInSwaps
			}
			ok := false
			for _, k := range set {
				if p.Kind == k {
					ok = true
				}
			}
			if !ok {
				continue
			}
			nk := set[rng.Intn(len(set))]
			if nk == p.Kind {
				continue
			}
			old := p.Kind
			p.Kind = nk
			return netlist.Changes{Prims: []netlist.PrimID{pi}}, fmt.Sprintf("swap %q %v -> %v", p.Name, old, nk)
		case 3: // wire-delay override set or cleared
			id := netlist.NetID(rng.Intn(len(d.Nets)))
			n := &d.Nets[id]
			if n.Wire != nil && rng.Intn(2) == 0 {
				n.Wire = nil
				return netlist.Changes{Nets: []netlist.NetID{id}}, fmt.Sprintf("wire clear %q", n.Name)
			}
			w := tick.R(0, float64(rng.Intn(4)))
			n.Wire = &w
			return netlist.Changes{Nets: []netlist.NetID{id}}, fmt.Sprintf("wire %q -> %v", n.Name, w)
		case 4, 5: // assertion window tweak, stable or clock
			id := netlist.NetID(rng.Intn(len(d.Nets)))
			n := &d.Nets[id]
			if n.Assert == nil || len(n.Assert.Ranges) == 0 {
				continue
			}
			na := *n.Assert
			na.Ranges = append(na.Ranges[:0:0], na.Ranges...)
			r := &na.Ranges[rng.Intn(len(na.Ranges))]
			if r.IsWidth {
				continue
			}
			delta := 0.25
			if rng.Intn(2) == 0 {
				delta = -0.25
			}
			if r.End+delta <= r.Start || r.End+delta > maxU {
				delta = -delta
			}
			if r.End+delta <= r.Start || r.End+delta > maxU {
				continue
			}
			r.End += delta
			// Install the rewritten assertion on every net of the base, so
			// the per-signal consistency rule (§2.5.1) keeps holding.
			var ids []netlist.NetID
			for j := range d.Nets {
				if d.Nets[j].Base == n.Base && d.Nets[j].Assert != nil {
					d.Nets[j].Assert = &na
					ids = append(ids, netlist.NetID(j))
				}
			}
			return netlist.Changes{Nets: ids}, fmt.Sprintf("assert tweak %q end %+0.2f units", n.Name, delta)
		}
	}
	t.Fatal("no applicable random edit found after 1000 tries")
	return netlist.Changes{}, ""
}

// TestMetamorphicReverify runs randomized edit sequences over generated
// designs and checks the bit-identity contract for Workers 1, 2 and 8.
// Run with -race: the concurrent reverify path shares the interner,
// evaluation cache and initial-waveform table across case workers.
func TestMetamorphicReverify(t *testing.T) {
	type cfgCase struct {
		name string
		cfg  gen.Config
		opts Options
	}
	cfgs := []cfgCase{
		{"plain", gen.Config{Chips: 34, Cases: 2, Inject: 1}, Options{KeepWaves: true, Margins: true}},
		{"varcycle", gen.Config{Chips: 51, VariableCycle: true, Cases: 2}, Options{KeepWaves: true, Margins: true}},
		{"nocache", gen.Config{Chips: 34, Cases: 2}, Options{KeepWaves: true, Margins: true, NoCache: true}},
		{"intra", gen.Config{Chips: 34, Cases: 2, Inject: 1}, Options{KeepWaves: true, Margins: true, IntraWorkers: 4}},
	}
	const steps = 5
	for _, workers := range []int{1, 2, 8} {
		for ci, c := range cfgs {
			c, workers, ci := c, workers, ci
			t.Run(fmt.Sprintf("%s/workers=%d", c.name, workers), func(t *testing.T) {
				t.Parallel()
				rng := rand.New(rand.NewSource(int64(1000*ci + workers)))
				d, _, err := gen.Generate(c.cfg)
				if err != nil {
					t.Fatal(err)
				}
				opts := c.opts
				opts.Workers = workers
				V := NewVerifier(d, opts)
				if _, err := V.Verify(); err != nil {
					t.Fatal(err)
				}
				for step := 0; step < steps; step++ {
					ch, desc := randomEdit(t, d, rng)
					inc, err := V.Reverify(ch)
					if err != nil {
						t.Fatalf("step %d (%s): %v", step, desc, err)
					}
					if !inc.Stats.Incremental {
						t.Fatalf("step %d (%s): fell back to a full run", step, desc)
					}
					scratch, err := Run(d, opts)
					if err != nil {
						t.Fatalf("step %d (%s): scratch: %v", step, desc, err)
					}
					sameReports(t, fmt.Sprintf("step %d (%s)", step, desc), scratch, inc)
				}
			})
		}
	}
}

// TestMetamorphicEditsExerciseAssertKinds sanity-checks that the edit
// generator can hit clock assertions, not only stable ones — otherwise
// the pinned re-seeding path would go untested.
func TestMetamorphicEditsExerciseAssertKinds(t *testing.T) {
	d, _, err := gen.Generate(gen.Config{Chips: 34})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	kinds := map[assertion.Kind]bool{}
	for i := 0; i < 300; i++ {
		ch, _ := randomEdit(t, d, rng)
		for _, id := range ch.Nets {
			if a := d.Nets[id].Assert; a != nil {
				kinds[a.Kind] = true
			}
		}
	}
	if !kinds[assertion.Stable] || !(kinds[assertion.PrecisionClock] || kinds[assertion.Clock]) {
		t.Errorf("edit generator never touched both assertion families: %v", kinds)
	}
}
