// Package stats reproduces the paper's execution and storage accounting:
// the phase-timing breakdown of Table 3-1, the primitive census of
// Table 3-2, and the storage model of Table 3-3.
//
// Storage is modelled with the paper's conventions: the S-1 Mark I PASCAL
// compiler did not pack records, so every field occupies four bytes except
// characters and booleans, which take one (§3.3.2).  The record layouts
// follow Fig 2-7 and the Table 3-3 description.
package stats

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"scaldtv/internal/expand"
	"scaldtv/internal/netlist"
	"scaldtv/internal/values"
	"scaldtv/internal/verify"
)

// Storage is the Table 3-3 breakdown, in bytes.
type Storage struct {
	CircuitDescription int // primitive records with parameter bindings
	SignalValues       int // VALUE BASE + VALUE records (Fig 2-7)
	SignalNames        int // per-bit value pointers, definer/user records
	StringSpace        int // text of signal and primitive names
	CallList           int // primitives to reevaluate per signal bit
	Misc               int // minor structures

	ValueLists   int // number of per-bit value lists (paper: 33,152)
	ValueRecords int // total VALUE records
}

// Total sums the categories.
func (s Storage) Total() int {
	return s.CircuitDescription + s.SignalValues + s.SignalNames +
		s.StringSpace + s.CallList + s.Misc
}

// AvgValueRecords is the mean VALUE-record count per signal (paper: 2.97).
func (s Storage) AvgValueRecords() float64 {
	if s.ValueLists == 0 {
		return 0
	}
	return float64(s.ValueRecords) / float64(s.ValueLists)
}

// BytesPerSignal is the mean storage per signal value list (paper: ~56 B).
func (s Storage) BytesPerSignal() float64 {
	if s.ValueLists == 0 {
		return 0
	}
	return float64(s.SignalValues) / float64(s.ValueLists)
}

const (
	field = 4 // unpacked PASCAL field

	valueBaseBytes   = 4 * field // free link, skew, eval string ptr, value ptr (Fig 2-7)
	valueRecordBytes = 3 * field // value, width, link
	primHeaderBytes  = 17 * field
	connBytes        = 2 * field // net index + rail/directive flags
	portBytes        = 1 * field
	netNameBytes     = 4 * field // value ptr, definer, user-list head, name ptr
	callEntryBytes   = 1 * field
	miscFixedBytes   = 16 * 1024
)

// Measure computes the storage model for a design and (optionally) the
// relaxed waveforms of a verified case; without waveforms the initial
// two-segment estimate of the paper's average is used.
func Measure(d *netlist.Design, waves []values.Waveform) Storage {
	var s Storage
	for i := range d.Prims {
		p := &d.Prims[i]
		s.CircuitDescription += primHeaderBytes
		for _, port := range p.In {
			s.CircuitDescription += portBytes + connBytes*len(port.Bits)
		}
		for _, port := range p.Out {
			s.CircuitDescription += portBytes + field*len(port.Bits)
		}
		s.StringSpace += align4(len(p.Name) + 1)
	}
	s.ValueLists = len(d.Nets)
	for i := range d.Nets {
		n := &d.Nets[i]
		segs := 3 // the paper's observed average order
		if waves != nil {
			segs = len(waves[i].Segs)
		}
		s.ValueRecords += segs
		s.SignalValues += valueBaseBytes + valueRecordBytes*segs
		s.SignalNames += netNameBytes
		s.StringSpace += align4(len(n.Name) + 1)
		s.CallList += callEntryBytes * (len(n.Fanout) + 1)
	}
	s.Misc = miscFixedBytes + field*8*len(d.Cases)
	return s
}

func align4(n int) int { return (n + 3) &^ 3 }

// String renders the Table 3-3 style breakdown with percentages.
func (s Storage) String() string {
	total := s.Total()
	pct := func(n int) float64 {
		if total == 0 {
			return 0
		}
		return 100 * float64(n) / float64(total)
	}
	var sb strings.Builder
	sb.WriteString("STORAGE REQUIRED FOR DATA STRUCTURES (Table 3-3 model)\n\n")
	rows := []struct {
		name  string
		bytes int
	}{
		{"CIRCUIT DESCRIPTION", s.CircuitDescription},
		{"SIGNAL VALUES", s.SignalValues},
		{"SIGNAL NAMES", s.SignalNames},
		{"STRING SPACE", s.StringSpace},
		{"CALL LIST ARRAY", s.CallList},
		{"MISCELLANEOUS", s.Misc},
	}
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-22s %10d bytes  %5.1f%%\n", r.name, r.bytes, pct(r.bytes))
	}
	fmt.Fprintf(&sb, "  %-22s %10d bytes\n", "TOTAL", total)
	fmt.Fprintf(&sb, "\n  value lists stored     %d\n", s.ValueLists)
	fmt.Fprintf(&sb, "  avg value records      %.2f\n", s.AvgValueRecords())
	fmt.Fprintf(&sb, "  bytes per signal       %.1f\n", s.BytesPerSignal())
	return sb.String()
}

// Table31 is the execution-statistics breakdown.  The macro-expander rows
// mirror the paper's (read / pass 1 / pass 2); the verifier rows come from
// verify.Stats.
type Table31 struct {
	Read  time.Duration // reading input and building parse structures
	Pass1 time.Duration // macro table + synonym resolution
	Pass2 time.Duration // full expansion

	VBuild  time.Duration // verifier data-structure construction
	XRef    time.Duration // cross-reference generation
	Verify  time.Duration // relaxation to fixed point
	Summary time.Duration // constraint checks and listing generation

	Primitives int
	Events     int
	Cases      int

	// Evaluation-cache counters (PR 2): memoized primitive evaluation
	// with interned waveforms.  All zero when the cache is disabled.
	CacheHits   int
	CacheMisses int
	Interned    int
	Deduped     int

	// Incremental-reverification counters (PR 3): populated when the
	// result came from Verifier.Reverify rather than a full run.
	Incremental  bool
	DirtyPrims   int
	DirtyNets    int
	ReusedWaves  int
	ReverifyTime time.Duration

	// Wavefront-scheduler counters (PR 4): populated when intra-case
	// parallel relaxation ran (IntraWorkers > 1).  All zero for the
	// serial worklist.
	IntraWorkers int
	Levels       int
	SCCs         int
	FeedbackSCCs int
	Sweeps       int

	// Case-exploration counters (PR 8): populated when automatic case
	// exploration ran (-explore).
	ExploreCandidates int
	ExploreProbes     int
	ExploreTime       time.Duration
}

// FromVerify fills the verifier-side rows.
func (t *Table31) FromVerify(s verify.Stats) {
	t.VBuild = s.BuildTime
	t.Verify = s.VerifyTime
	t.Summary = s.CheckTime
	t.Primitives = s.Primitives
	t.Events = s.Events
	t.Cases = s.Cases
	t.CacheHits = s.CacheHits
	t.CacheMisses = s.CacheMisses
	t.Interned = s.Interned
	t.Deduped = s.Deduped
	t.Incremental = s.Incremental
	t.DirtyPrims = s.DirtyPrims
	t.DirtyNets = s.DirtyNets
	t.ReusedWaves = s.ReusedWaves
	t.ReverifyTime = s.ReverifyTime
	t.IntraWorkers = s.IntraWorkers
	t.Levels = s.Levels
	t.SCCs = s.SCCs
	t.FeedbackSCCs = s.FeedbackSCCs
	t.Sweeps = s.Sweeps
	t.ExploreCandidates = s.ExploreCandidates
	t.ExploreProbes = s.ExploreProbes
	t.ExploreTime = s.ExploreTime
}

// HitRate is the fraction of cache lookups served from the cache, shared
// by the Table 3-1 listing and the scaldtvd /metrics exposition.
func HitRate(hits, misses int) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// CacheHitRate is the fraction of scheduled primitive evaluations served
// from the memo cache.
func (t Table31) CacheHitRate() float64 {
	return HitRate(t.CacheHits, t.CacheMisses)
}

// PerPrim is the verification cost per primitive (the paper reports
// 49 ms/primitive on the S-1 Mark I).
func (t Table31) PerPrim() time.Duration {
	if t.Primitives == 0 {
		return 0
	}
	return t.Verify / time.Duration(t.Primitives)
}

// PerEvent is the cost per event (the paper reports 20 ms/event).
func (t Table31) PerEvent() time.Duration {
	if t.Events == 0 {
		return 0
	}
	return t.Verify / time.Duration(t.Events)
}

// String renders the table.
func (t Table31) String() string {
	var sb strings.Builder
	sb.WriteString("EXECUTION STATISTICS (Table 3-1 model)\n\n")
	sb.WriteString("  MACRO EXPANSION\n")
	fmt.Fprintf(&sb, "    reading input files            %12v\n", t.Read)
	fmt.Fprintf(&sb, "    pass 1 (macros, synonyms)      %12v\n", t.Pass1)
	fmt.Fprintf(&sb, "    pass 2 (full expansion)        %12v\n", t.Pass2)
	fmt.Fprintf(&sb, "    total                          %12v\n", t.Read+t.Pass1+t.Pass2)
	sb.WriteString("  TIMING VERIFIER\n")
	fmt.Fprintf(&sb, "    building data structures       %12v\n", t.VBuild)
	fmt.Fprintf(&sb, "    cross reference listings       %12v\n", t.XRef)
	fmt.Fprintf(&sb, "    verifying circuit              %12v\n", t.Verify)
	fmt.Fprintf(&sb, "    checks and summary listing     %12v\n", t.Summary)
	fmt.Fprintf(&sb, "    total                          %12v\n", t.VBuild+t.XRef+t.Verify+t.Summary)
	sb.WriteString("  EVALUATION CACHE\n")
	if t.CacheHits+t.CacheMisses == 0 {
		sb.WriteString("    off\n")
	} else {
		fmt.Fprintf(&sb, "    hits / misses                  %d / %d (%.1f%% hit rate)\n",
			t.CacheHits, t.CacheMisses, 100*t.CacheHitRate())
		fmt.Fprintf(&sb, "    interned waveforms             %d distinct, %d stores deduplicated\n",
			t.Interned, t.Deduped)
	}
	if t.IntraWorkers > 0 {
		sb.WriteString("  WAVEFRONT SCHEDULER\n")
		fmt.Fprintf(&sb, "    intra-case workers             %d\n", t.IntraWorkers)
		fmt.Fprintf(&sb, "    topological levels             %d\n", t.Levels)
		fmt.Fprintf(&sb, "    components                     %d (%d feedback)\n", t.SCCs, t.FeedbackSCCs)
		fmt.Fprintf(&sb, "    relaxation sweeps              %d\n", t.Sweeps)
	}
	if t.Incremental {
		sb.WriteString("  INCREMENTAL REVERIFY\n")
		fmt.Fprintf(&sb, "    dirty instances                %d\n", t.DirtyPrims)
		fmt.Fprintf(&sb, "    dirty signals                  %d\n", t.DirtyNets)
		fmt.Fprintf(&sb, "    reused waveforms               %d\n", t.ReusedWaves)
		fmt.Fprintf(&sb, "    reverify wall time             %12v\n", t.ReverifyTime)
	}
	if t.ExploreCandidates > 0 {
		sb.WriteString("  CASE EXPLORATION\n")
		fmt.Fprintf(&sb, "    candidate signals ranked       %d\n", t.ExploreCandidates)
		fmt.Fprintf(&sb, "    incremental split probes       %d\n", t.ExploreProbes)
		fmt.Fprintf(&sb, "    exploration wall time          %12v\n", t.ExploreTime)
	}
	fmt.Fprintf(&sb, "\n  %d primitives, %d events, %d case(s)\n", t.Primitives, t.Events, t.Cases)
	fmt.Fprintf(&sb, "  per primitive %v, per event %v\n", t.PerPrim(), t.PerEvent())
	return sb.String()
}

// Table32 renders the primitive census in the paper's Table 3-2 format.
func Table32(rep *expand.Report, chips int) string {
	var sb strings.Builder
	sb.WriteString("PRIMITIVE DEFINITIONS GENERATED (Table 3-2 model)\n\n")
	type row struct {
		kind netlist.Kind
		n    int
		bits int
	}
	var rows []row
	for k, n := range rep.Census {
		rows = append(rows, row{k, n, rep.CensusBits[k]})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].kind < rows[j].kind
	})
	fmt.Fprintf(&sb, "  %-26s %8s %10s %8s\n", "TYPE", "COUNT", "BITS", "AVG W")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-26s %8d %10d %8.1f\n", r.kind, r.n, r.bits, float64(r.bits)/float64(r.n))
	}
	fmt.Fprintf(&sb, "\n  primitive types used        %d\n", len(rows))
	fmt.Fprintf(&sb, "  vectored primitives         %d\n", rep.Primitives)
	fmt.Fprintf(&sb, "  without vectorisation       %d\n", rep.ScalarBits)
	fmt.Fprintf(&sb, "  average width               %.1f bits\n", rep.AvgWidth())
	if chips > 0 {
		fmt.Fprintf(&sb, "  primitives per chip         %.2f (%d chips)\n",
			float64(rep.Primitives)/float64(chips), chips)
	}
	fmt.Fprintf(&sb, "  synonyms resolved (pass 1)  %d\n", rep.Synonyms)
	return sb.String()
}
