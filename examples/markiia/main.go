// The paper's headline experiment end to end: generate an S-1 Mark IIA
// style design at the 6357-chip scale (§3.3), push it through the full
// read → macro-expand → verify pipeline, and print the Table 3-1, 3-2 and
// 3-3 statistics next to the paper's numbers.
//
//	go run ./examples/markiia [-chips n]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"scaldtv"
	"scaldtv/internal/gen"
	"scaldtv/internal/stats"
)

func main() {
	chips := flag.Int("chips", 6357, "target MSI chip count")
	flag.Parse()

	fmt.Printf("generating a Mark IIA-style design: %d chips (%d pipeline stages)...\n",
		gen.Stages(*chips)*gen.ChipsPerStage(), gen.Stages(*chips))
	src := gen.Source(gen.Config{Chips: *chips})
	fmt.Printf("  %d bytes of HDL source\n\n", len(src))

	t0 := time.Now()
	design, rep, err := scaldtv.CompileWithReport(src)
	if err != nil {
		log.Fatal(err)
	}
	t1 := time.Now()
	res, err := scaldtv.Verify(design, scaldtv.Options{KeepWaves: true})
	if err != nil {
		log.Fatal(err)
	}
	t2 := time.Now()

	var t31 stats.Table31
	t31.Read = 0 // parse and expansion are fused in CompileWithReport
	t31.Pass2 = t1.Sub(t0)
	t31.FromVerify(res.Stats)
	fmt.Print(t31.String())
	fmt.Println()
	fmt.Print(stats.Table32(rep, gen.Stages(*chips)*gen.ChipsPerStage()))
	fmt.Println()
	fmt.Print(stats.Measure(design, res.Cases[0].Waves).String())
	fmt.Println()
	fmt.Print(scaldtv.ErrorListing(res))
	fmt.Println()
	fmt.Printf("total wall time: %v (the paper's S-1 Mark I took 28.66 minutes)\n", t2.Sub(t0))
	fmt.Println()
	fmt.Println("paper (Table 3-1..3-3): 8,282 primitives (53,833 unvectorised, avg width 6.5),")
	fmt.Println("20,052 events, 33,152 value lists at 2.97 records / ~56 bytes each")
}
