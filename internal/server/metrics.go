package server

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"scaldtv"
	"scaldtv/internal/cluster"
	"scaldtv/internal/stats"
)

// wallRing bounds how many recent verification wall times feed the
// latency quantiles.
const wallRing = 512

// metrics holds the service counters exported in Prometheus text format.
// Counters are monotonic totals; the cache and dirty-cone figures are
// gauges describing the most recent run, because the engine's own
// counters are cumulative per Verifier and would double-count if summed
// across session re-runs.
type metrics struct {
	verifies     atomic.Int64 // completed verification runs
	incrementals atomic.Int64 // …of which answered from the dirty cone
	failures     atomic.Int64 // runs that returned an error
	rejected     atomic.Int64 // admissions refused with 429
	storeHits    atomic.Int64 // requests answered from the persistent store
	storeWarm    atomic.Int64 // runs warm-started from a persisted snapshot

	lastHitRate    atomic.Uint64 // float64 bits: cache hits / lookups, last run
	lastDirtyRatio atomic.Uint64 // float64 bits: dirty prims / prims, last incremental run

	mu     sync.Mutex
	walls  [wallRing]float64 // seconds, ring buffer of recent runs
	next   int
	filled bool
}

// observe records one completed verification run.
func (m *metrics) observe(res *scaldtv.Result, wall time.Duration) {
	m.verifies.Add(1)
	if res.Stats.CacheHits+res.Stats.CacheMisses > 0 {
		m.lastHitRate.Store(math.Float64bits(stats.HitRate(res.Stats.CacheHits, res.Stats.CacheMisses)))
	}
	if res.Stats.Incremental {
		m.incrementals.Add(1)
		if res.Stats.Primitives > 0 {
			m.lastDirtyRatio.Store(math.Float64bits(
				float64(res.Stats.DirtyPrims) / float64(res.Stats.Primitives)))
		}
	}
	m.mu.Lock()
	m.walls[m.next] = wall.Seconds()
	m.next++
	if m.next == wallRing {
		m.next, m.filled = 0, true
	}
	m.mu.Unlock()
}

// observeWall records one completed distributed run, where only the
// wall time is known locally (the engine statistics live on the
// workers that ran the partitions).
func (m *metrics) observeWall(wall time.Duration) {
	m.verifies.Add(1)
	m.mu.Lock()
	m.walls[m.next] = wall.Seconds()
	m.next++
	if m.next == wallRing {
		m.next, m.filled = 0, true
	}
	m.mu.Unlock()
}

// quantiles returns the p50 and p99 of the recent wall times (nearest
// rank over the ring buffer), or ok=false before the first run.
func (m *metrics) quantiles() (p50, p99 float64, ok bool) {
	m.mu.Lock()
	n := m.next
	if m.filled {
		n = wallRing
	}
	sorted := make([]float64, n)
	copy(sorted, m.walls[:n])
	m.mu.Unlock()
	if n == 0 {
		return 0, 0, false
	}
	sort.Float64s(sorted)
	return nearestRank(sorted, 1, 2), nearestRank(sorted, 99, 100), true
}

// nearestRank returns the q = num/den nearest-rank order statistic of a
// sorted sample: the value at 1-based rank ceil(q·n), clamped to
// [1, n].  The rank is computed in integer arithmetic; the float
// equivalent math.Ceil(q*float64(n)) overshoots by a whole rank
// whenever the product rounds just above an integer (0.28×25 =
// 7.0000000000000009 → rank 8, not 7), silently reporting the next
// higher sample.
func nearestRank(sorted []float64, num, den int) float64 {
	n := len(sorted)
	r := (num*n + den - 1) / den
	if r < 1 {
		r = 1
	}
	if r > n {
		r = n
	}
	return sorted[r-1]
}

// render writes the Prometheus text-format exposition.
func (m *metrics) render(w io.Writer, queueDepth, sessions int) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gaugeI := func(name, help string, v int) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	gaugeF := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter("scaldtvd_verifies_total", "Completed verification runs.", m.verifies.Load())
	counter("scaldtvd_incremental_total", "Runs answered incrementally from the dirty cone.", m.incrementals.Load())
	counter("scaldtvd_verify_failures_total", "Verification runs that returned an error.", m.failures.Load())
	counter("scaldtvd_rejected_total", "Requests refused with 429 by admission control.", m.rejected.Load())
	counter("scaldtvd_store_hits_total", "Requests answered from the persistent verification store.", m.storeHits.Load())
	counter("scaldtvd_store_warm_total", "Runs warm-started from a persisted snapshot.", m.storeWarm.Load())
	gaugeI("scaldtvd_queue_depth", "Requests holding or waiting for a verification slot.", queueDepth)
	gaugeI("scaldtvd_sessions", "Live sessions in the LRU table.", sessions)
	gaugeF("scaldtvd_cache_hit_rate", "Evaluation-memo hit rate of the most recent run.",
		math.Float64frombits(m.lastHitRate.Load()))
	gaugeF("scaldtvd_dirty_prim_ratio", "Dirty-cone share of the most recent incremental run.",
		math.Float64frombits(m.lastDirtyRatio.Load()))
	if p50, p99, ok := m.quantiles(); ok {
		fmt.Fprintf(w, "# HELP scaldtvd_verify_wall_seconds Verification wall time quantiles over recent runs.\n")
		fmt.Fprintf(w, "# TYPE scaldtvd_verify_wall_seconds summary\n")
		fmt.Fprintf(w, "scaldtvd_verify_wall_seconds{quantile=\"0.5\"} %g\n", p50)
		fmt.Fprintf(w, "scaldtvd_verify_wall_seconds{quantile=\"0.99\"} %g\n", p99)
	}
}

// renderTenants writes the per-tenant admission quota series.
func renderTenants(w io.Writer, tenants []tenantSnapshot) {
	if len(tenants) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP scaldtvd_tenant_admitted_total Requests granted a verification slot, per tenant.\n# TYPE scaldtvd_tenant_admitted_total counter\n")
	for _, t := range tenants {
		fmt.Fprintf(w, "scaldtvd_tenant_admitted_total{tenant=%q} %d\n", t.Tenant, t.Admitted)
	}
	fmt.Fprintf(w, "# HELP scaldtvd_tenant_rejected_total Requests refused with 429, per tenant.\n# TYPE scaldtvd_tenant_rejected_total counter\n")
	for _, t := range tenants {
		fmt.Fprintf(w, "scaldtvd_tenant_rejected_total{tenant=%q} %d\n", t.Tenant, t.Rejected)
	}
	fmt.Fprintf(w, "# HELP scaldtvd_tenant_queued Requests currently waiting for a slot, per tenant.\n# TYPE scaldtvd_tenant_queued gauge\n")
	for _, t := range tenants {
		fmt.Fprintf(w, "scaldtvd_tenant_queued{tenant=%q} %d\n", t.Tenant, t.Queued)
	}
}

// renderCluster writes the coordinator's fan-out counters.
func renderCluster(w io.Writer, st cluster.Stats) {
	gauge := func(name, help string, v int) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge("scaldtvd_cluster_workers", "Configured engine workers.", st.Workers)
	gauge("scaldtvd_cluster_healthy", "Workers currently passing health checks.", st.Healthy)
	counter("scaldtvd_cluster_subjobs_total", "Sub-jobs dispatched to workers.", st.Dispatched)
	counter("scaldtvd_cluster_batches_total", "Batch RPCs issued to workers.", st.Batches)
	counter("scaldtvd_cluster_failovers_total", "Sub-jobs re-dispatched after a worker failure.", st.Failovers)
	counter("scaldtvd_cluster_local_runs_total", "Sub-jobs that fell back to a local engine run.", st.LocalRuns)
}
