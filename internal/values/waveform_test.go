package values

import (
	"math/rand"
	"testing"
	"testing/quick"

	"scaldtv/internal/tick"
)

const p50 = 50 * tick.NS

func ns(f float64) tick.Time { return tick.FromNS(f) }

func TestConstAndCheck(t *testing.T) {
	w := Const(p50, VS)
	if err := w.Check(); err != nil {
		t.Fatal(err)
	}
	if v, ok := w.ConstantValue(); !ok || v != VS {
		t.Errorf("ConstantValue = %v,%v", v, ok)
	}
	if w.At(0) != VS || w.At(p50-1) != VS || w.At(p50) != VS || w.At(-1) != VS {
		t.Error("At on constant wrong")
	}
}

func TestConstPanicsOnBadPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	Const(0, VS)
}

func TestCheckCatchesCorruption(t *testing.T) {
	bad := []Waveform{
		{Period: p50, Segs: nil},
		{Period: p50, Segs: []Segment{{V: VS, W: p50 - 1}}},
		{Period: p50, Segs: []Segment{{V: VS, W: p50}, {V: VC, W: 1}}},
		{Period: p50, Segs: []Segment{{V: VS, W: 0}, {V: VC, W: p50}}},
		{Period: p50, Skew: -1, Segs: []Segment{{V: VS, W: p50}}},
		{Period: 0, Segs: []Segment{{V: VS, W: 0}}},
		{Period: p50, Segs: []Segment{{V: Value(9), W: p50}}},
	}
	for i, w := range bad {
		if err := w.Check(); err == nil {
			t.Errorf("case %d: corrupt waveform passed Check", i)
		}
	}
}

func TestPaint(t *testing.T) {
	// Clock high 20–30 ns within a 50 ns period.
	w := Const(p50, V0).Paint(ns(20), ns(30), V1)
	if err := w.Check(); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		at   tick.Time
		want Value
	}{
		{0, V0}, {ns(19.999), V0}, {ns(20), V1}, {ns(29.999), V1}, {ns(30), V0}, {ns(49), V0},
	} {
		if got := w.At(c.at); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.at, got, c.want)
		}
	}
}

func TestPaintWrapping(t *testing.T) {
	// Stable 40→10 wrapping through the cycle boundary.
	w := Const(p50, VC).Paint(ns(40), ns(10), VS)
	if w.At(ns(45)) != VS || w.At(0) != VS || w.At(ns(9)) != VS {
		t.Error("wrapped span not painted")
	}
	if w.At(ns(10)) != VC || w.At(ns(39)) != VC {
		t.Error("unpainted region overwritten")
	}
	if err := w.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestPaintDegenerate(t *testing.T) {
	w := Const(p50, V0)
	if got := w.Paint(ns(5), ns(5), V1); !got.Equal(w) {
		t.Error("empty span changed waveform")
	}
	// Identical modular endpoints with different absolute values: paint all.
	if got := w.Paint(ns(5), ns(5)+p50, V1); got.At(0) != V1 || got.At(ns(49)) != V1 {
		t.Error("full-period span should paint everything")
	}
	// Modulo behaviour on negative starts.
	got := w.Paint(ns(-5), ns(5), V1)
	if got.At(ns(46)) != V1 || got.At(ns(4)) != V1 || got.At(ns(6)) != V0 {
		t.Error("negative start did not wrap")
	}
}

// TestPaintBoundarySpans locks the wrap-around and period-boundary
// normalization: spans whose endpoints coincide modulo the period paint
// nothing unless they literally cover a full period going forward, and a
// span ending exactly at the cycle boundary may be written with End == 0,
// End == period, or any multiple without changing its meaning.
func TestPaintBoundarySpans(t *testing.T) {
	base := Const(p50, V0)
	for _, c := range []struct {
		name       string
		start, end tick.Time
		// sample points expected painted / unpainted
		painted, clear []tick.Time
	}{
		{"zero-width mid-cycle", ns(5), ns(5), nil, []tick.Time{0, ns(5), ns(49)}},
		{"zero-width at boundary", p50, p50, nil, []tick.Time{0, ns(25), ns(49)}},
		{"zero-width boundary as end=0", p50, 0, nil, []tick.Time{0, ns(25), ns(49)}},
		{"zero-width wrapped a period apart", ns(55), ns(5), nil, []tick.Time{0, ns(5), ns(30)}},
		{"zero-width more than a period apart", ns(110), ns(10), nil, []tick.Time{0, ns(10), ns(30)}},
		{"full period forward", 0, p50, []tick.Time{0, ns(25), ns(49)}, nil},
		{"full period offset", ns(5), ns(55), []tick.Time{0, ns(25), ns(49)}, nil},
		{"more than a period", ns(10), ns(120), []tick.Time{0, ns(25), ns(49)}, nil},
		{"wrap through boundary", ns(40), ns(10), []tick.Time{ns(45), 0, ns(9)}, []tick.Time{ns(10), ns(39)}},
		{"ending exactly at boundary as 0", ns(45), 0, []tick.Time{ns(45), ns(49)}, []tick.Time{0, ns(44)}},
		{"ending exactly at boundary as period", ns(45), p50, []tick.Time{ns(45), ns(49)}, []tick.Time{0, ns(44)}},
		{"starting at boundary as period", p50, ns(5), []tick.Time{0, ns(4)}, []tick.Time{ns(5), ns(49)}},
		{"negative start wraps", ns(-5), ns(5), []tick.Time{ns(46), 0, ns(4)}, []tick.Time{ns(6), ns(44)}},
	} {
		w := base.Paint(c.start, c.end, V1)
		if err := w.Check(); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		for _, at := range c.painted {
			if got := w.At(at); got != V1 {
				t.Errorf("%s: At(%v) = %v, want painted 1 (wave %v)", c.name, at, got, w)
			}
		}
		for _, at := range c.clear {
			if got := w.At(at); got != V0 {
				t.Errorf("%s: At(%v) = %v, want untouched 0 (wave %v)", c.name, at, got, w)
			}
		}
	}
	// Equivalent writings of the same span produce semantically equal
	// waveforms.
	if a, b := base.Paint(ns(45), 0, V1), base.Paint(ns(45), p50, V1); !a.Equal(b) {
		t.Errorf("end=0 and end=period disagree: %v vs %v", a, b)
	}
	if a, b := base.Paint(p50, p50, V1), base.Paint(p50, 0, V1); !a.Equal(b) {
		t.Errorf("degenerate boundary spans disagree: %v vs %v", a, b)
	}
}

func TestFromSpans(t *testing.T) {
	w := FromSpans(p50, VC, Span{ns(0), ns(30), VS}, Span{ns(10), ns(20), V1})
	if w.At(ns(5)) != VS || w.At(ns(15)) != V1 || w.At(ns(25)) != VS || w.At(ns(40)) != VC {
		t.Errorf("FromSpans layering wrong: %v", w)
	}
}

func TestRotate(t *testing.T) {
	w := Const(p50, V0).Paint(ns(20), ns(30), V1)
	r := w.Rotate(ns(5))
	if r.At(ns(25)) != V1 || r.At(ns(34)) != V1 || r.At(ns(35)) != V0 || r.At(ns(24)) != V0 {
		t.Errorf("Rotate(5ns) wrong: %v", r)
	}
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
	// Rotation by the period is identity.
	if !w.Rotate(p50).Equal(w) {
		t.Error("Rotate(period) != identity")
	}
	// Rotating a pulse across the cycle boundary wraps it.
	r2 := w.Rotate(ns(25))
	if r2.At(ns(45)) != V1 || r2.At(ns(4)) != V1 || r2.At(ns(5)) != V0 {
		t.Errorf("wrap rotate wrong: %v", r2)
	}
	// Negative rotation is the inverse.
	if !w.Rotate(ns(7)).Rotate(ns(-7)).Equal(w) {
		t.Error("negative rotation not inverse")
	}
}

func TestRotateProperty(t *testing.T) {
	f := func(d1, d2 int32, at int32) bool {
		w := Const(p50, V0).Paint(ns(20), ns(30), V1).Paint(ns(35), ns(36), VC)
		a := w.Rotate(tick.Time(d1)).Rotate(tick.Time(d2))
		b := w.Rotate(tick.Time(d1) + tick.Time(d2))
		return a.Equal(b) && a.At(tick.Time(at)) == w.At(tick.Time(at)-tick.Time(d1)-tick.Time(d2))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDelayCarriesSkew(t *testing.T) {
	// Figure 2-8: OR gate with 5.0 min / 10.0 max ns delay.  The output is
	// delayed by the minimum and the skew field picks up the difference,
	// preserving the width of the pulse.
	in := Const(p50, V0).Paint(ns(10), ns(20), V1)
	out := in.Delay(tick.R(5, 10))
	if out.Skew != ns(5) {
		t.Errorf("skew = %v, want 5ns", out.Skew)
	}
	if out.At(ns(15)) != V1 || out.At(ns(24)) != V1 || out.At(ns(25)) != V0 {
		t.Errorf("delayed waveform wrong: %v", out)
	}
	// The solid-high width before incorporation is exactly 10 ns.
	var high tick.Time
	var pos tick.Time
	for _, s := range out.Segs {
		if s.V == V1 {
			high += s.W
		}
		pos += s.W
	}
	if high != ns(10) {
		t.Errorf("pulse width eroded to %v, want 10ns", high)
	}
	// Delays accumulate.
	out2 := out.Delay(tick.R(1, 3))
	if out2.Skew != ns(7) {
		t.Errorf("accumulated skew = %v, want 7ns", out2.Skew)
	}
}

func TestDelayPanicsOnInvalidRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	Const(p50, VS).Delay(tick.Range{Min: 5, Max: 3})
}

func TestIncorporateSkew(t *testing.T) {
	// Figure 2-9: the delayed pulse from Fig 2-8 with its 5 ns skew folded
	// into the value: rising band 15–20, solid one 20–25, falling band
	// 25–30 — the transition may occur anywhere within each band.
	in := Const(p50, V0).Paint(ns(10), ns(20), V1)
	out := in.Delay(tick.R(5, 10)).IncorporateSkew()
	if out.Skew != 0 {
		t.Errorf("skew not consumed: %v", out.Skew)
	}
	for _, c := range []struct {
		at   tick.Time
		want Value
	}{
		{ns(14), V0}, {ns(15), VR}, {ns(19), VR}, {ns(20), V1}, {ns(24), V1},
		{ns(25), VF}, {ns(29), VF}, {ns(30), V0}, {ns(40), V0},
	} {
		if got := out.At(c.at); got != c.want {
			t.Errorf("At(%v) = %v, want %v\nwaveform: %v", c.at, got, c.want, out)
		}
	}
	if err := out.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestIncorporateSkewNoop(t *testing.T) {
	w := Const(p50, V0).Paint(ns(10), ns(20), V1)
	if !w.IncorporateSkew().Equal(w) {
		t.Error("zero skew incorporation changed waveform")
	}
	c := Const(p50, VS).WithSkew(ns(3))
	if got := c.IncorporateSkew(); got.Skew != 0 || got.At(0) != VS {
		t.Error("constant waveform skew should vanish")
	}
}

func TestIncorporateSkewSwallowsShortSegment(t *testing.T) {
	// A 2 ns high pulse delayed with 5 ns of uncertainty: the solid-1
	// segment is swallowed; the whole region becomes transitional.
	w := Const(p50, V0).Paint(ns(10), ns(12), V1).WithSkew(ns(5))
	out := w.IncorporateSkew()
	if out.At(ns(13)) == V1 {
		t.Errorf("swallowed pulse still reports solid 1: %v", out)
	}
	// There must be no solid-1 anywhere: min possible width is preserved
	// as 2ns but position uncertainty spans 10–17.
	for tt := tick.Time(0); tt < p50; tt += 100 {
		if out.At(tt) == V1 {
			t.Fatalf("unexpected solid 1 at %v: %v", tt, out)
		}
	}
	if out.At(ns(11)) == V0 {
		t.Error("transition region reported solid 0")
	}
}

func TestIncorporateSkewTotalUncertainty(t *testing.T) {
	w := Const(p50, V0).Paint(ns(10), ns(20), V1).WithSkew(p50 + 1)
	out := w.IncorporateSkew()
	if v, ok := out.ConstantValue(); !ok || !v.Changing() {
		t.Errorf("total uncertainty should collapse to a changing constant, got %v", out)
	}
}

func TestMapUnary(t *testing.T) {
	w := Const(p50, V0).Paint(ns(20), ns(30), V1).WithSkew(ns(2))
	n := w.MapUnary(Not)
	if n.At(0) != V1 || n.At(ns(25)) != V0 {
		t.Error("Not mapping wrong")
	}
	if n.Skew != ns(2) {
		t.Error("unary map must preserve skew")
	}
}

func TestCombineConstKeepsSkew(t *testing.T) {
	a := Const(p50, V0).Paint(ns(10), ns(20), V1).WithSkew(ns(4))
	b := Const(p50, V0)
	out := Combine(a, b, Or)
	if out.Skew != ns(4) {
		t.Errorf("combining with a constant must keep skew, got %v", out.Skew)
	}
	if out.At(ns(15)) != V1 || out.At(ns(5)) != V0 {
		t.Error("OR with constant 0 should be identity")
	}
	one := Const(p50, V1)
	if v, ok := Combine(a, one, Or).ConstantValue(); !ok || v != V1 {
		t.Error("OR with constant 1 should pin high")
	}
}

func TestCombineIncorporatesSkews(t *testing.T) {
	a := Const(p50, V0).Paint(ns(10), ns(20), V1).WithSkew(ns(3))
	b := Const(p50, V0).Paint(ns(30), ns(40), V1).WithSkew(ns(2))
	out := Combine(a, b, Or)
	if out.Skew != 0 {
		t.Errorf("combining two changing signals must incorporate skew, got %v", out.Skew)
	}
	// Rising band of a: 10–13.
	if out.At(ns(11)) != VR {
		t.Errorf("missing rise band from input a: %v", out)
	}
	// Falling band of b: 40–42.
	if out.At(ns(41)) != VF {
		t.Errorf("missing fall band from input b: %v", out)
	}
	if out.At(ns(15)) != V1 || out.At(ns(35)) != V1 || out.At(ns(25)) != V0 {
		t.Errorf("OR result wrong: %v", out)
	}
}

func TestCombinePanicsOnPeriodMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	Combine(Const(p50, V0), Const(p50+1, V0), Or)
}

func TestCombineN(t *testing.T) {
	a := Const(p50, V0).Paint(ns(10), ns(20), V1)
	b := Const(p50, V0).Paint(ns(15), ns(25), V1)
	c := Const(p50, V0).Paint(ns(22), ns(30), V1)
	out := CombineN(Or, a, b, c)
	if out.At(ns(12)) != V1 || out.At(ns(24)) != V1 || out.At(ns(29)) != V1 || out.At(ns(31)) != V0 || out.At(ns(5)) != V0 {
		t.Errorf("3-input OR wrong: %v", out)
	}
}

func TestCombineNPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	CombineN(Or)
}

func TestEqual(t *testing.T) {
	a := Const(p50, V0).Paint(ns(20), ns(30), V1)
	b := FromSpans(p50, V0, Span{ns(20), ns(25), V1}, Span{ns(25), ns(30), V1})
	if !a.Equal(b) {
		t.Error("segmentation differences must not affect equality")
	}
	if a.Equal(a.WithSkew(1)) {
		t.Error("different skew must differ")
	}
	if a.Equal(a.Paint(0, 1, V1)) {
		t.Error("different values must differ")
	}
	if a.Equal(Const(p50+1, V0)) {
		t.Error("different periods must differ")
	}
}

func TestString(t *testing.T) {
	w := Const(p50, VS).Paint(ns(5), ns(10), VC).WithSkew(ns(1))
	s := w.String()
	if s == "" || w.WithSkew(0).String() == s {
		t.Errorf("String rendering suspicious: %q", s)
	}
}

// Property: painting then checking never corrupts the invariants, for
// arbitrary spans.
func TestPaintProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	w := Const(p50, VS)
	for i := 0; i < 2000; i++ {
		s := tick.Time(rng.Int63n(int64(3 * p50)))
		e := tick.Time(rng.Int63n(int64(3 * p50)))
		v := All[rng.Intn(len(All))]
		w = w.Paint(s, e, v)
		if err := w.Check(); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if s != e && w.At(s) != v && tick.Mod(s, p50) != tick.Mod(e, p50) {
			t.Fatalf("iteration %d: At(start) = %v, painted %v", i, w.At(s), v)
		}
	}
}

// Property: Delay distributes over sequences and IncorporateSkew preserves
// invariants.
func TestDelayIncorporateProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		w := Const(p50, V0)
		for j := 0; j < 3; j++ {
			s := tick.Time(rng.Int63n(int64(p50)))
			e := tick.Time(rng.Int63n(int64(p50)))
			w = w.Paint(s, e, All[rng.Intn(3)])
		}
		dmin := tick.Time(rng.Int63n(int64(10 * tick.NS)))
		dmax := dmin + tick.Time(rng.Int63n(int64(10*tick.NS)))
		out := w.Delay(tick.Range{Min: dmin, Max: dmax}).IncorporateSkew()
		if err := out.Check(); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if out.Skew != 0 {
			t.Fatalf("iteration %d: skew survived incorporation", i)
		}
	}
}

// quick.Check property: CombineAll with a 1-ary identity equals the input
// up to skew incorporation, and with constants matches the function.
func TestCombineAllProperties(t *testing.T) {
	w := Const(p50, VS).Paint(ns(10), ns(20), VC)
	ident := values_CombineAll1(w)
	if !ident.Equal(w) {
		t.Errorf("identity CombineAll changed waveform: %v vs %v", ident, w)
	}
	// All-constant inputs produce a constant.
	c := CombineAll(func(vs []Value) Value { return Or(vs[0], vs[1]) },
		Const(p50, V0), Const(p50, V1))
	if v, ok := c.ConstantValue(); !ok || v != V1 {
		t.Errorf("constant fold wrong: %v", c)
	}
	// Single varying input keeps its skew.
	sk := Const(p50, V0).Paint(ns(10), ns(20), V1).WithSkew(ns(3))
	out := CombineAll(func(vs []Value) Value { return Or(vs[0], vs[1]) }, sk, Const(p50, V0))
	if out.Skew != ns(3) {
		t.Errorf("single-varying CombineAll lost skew: %v", out.Skew)
	}
}

func values_CombineAll1(w Waveform) Waveform {
	return CombineAll(func(vs []Value) Value { return vs[0] }, w)
}

func TestCombineAllPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	CombineAll(func(vs []Value) Value { return vs[0] })
}

func TestCombineAllPeriodMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	CombineAll(func(vs []Value) Value { return vs[0] }, Const(p50, VS), Const(p50+1, VS))
}

func TestWithSkewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	Const(p50, VS).WithSkew(-1)
}

// Property: Combine with Or is monotone w.r.t. pinning — OR with constant
// 1 pins everything, OR with 0 is identity — for random waveforms.
func TestCombineOrIdentityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 200; i++ {
		w := Const(p50, VS)
		for j := 0; j < 4; j++ {
			s := tick.Time(rng.Int63n(int64(p50)))
			e := tick.Time(rng.Int63n(int64(p50)))
			w = w.Paint(s, e, All[rng.Intn(len(All))])
		}
		if got := Combine(w, Const(p50, V0), Or); !got.Equal(w) {
			t.Fatalf("OR with 0 not identity:\n%v\n%v", w, got)
		}
		one := Combine(w, Const(p50, V1), Or)
		for _, seg := range one.Segs {
			if seg.V != V1 {
				t.Fatalf("OR with 1 not pinned: %v", one)
			}
		}
	}
}
