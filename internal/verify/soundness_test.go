package verify

import (
	"fmt"
	"math/rand"
	"testing"

	"scaldtv/internal/netlist"
	"scaldtv/internal/tick"
	"scaldtv/internal/values"
)

// The soundness property at the heart of the approach: the symbolic
// seven-value analysis must *cover* every concrete behaviour the circuit
// can exhibit.  We generate random synchronous circuits, then instantiate
// them concretely — every delay pinned to a specific value within its
// range, every stable-asserted input given a specific 0/1 waveform that
// changes only within its allowed window, the clock given a specific skew
// — and check pointwise that wherever the symbolic result claims a
// definite level or stability, the concrete run agrees.

const sPeriod = 100 * tick.NS

// randCircuit builds matching symbolic and concrete designs from one seed.
// The concrete twin has identical topology; its delays are single points
// within the symbolic ranges and its inputs are concrete waveforms
// consistent with the symbolic assertions.
type twin struct {
	sym, conc *netlist.Design
	forceSym  map[netlist.NetID]values.Waveform // none: assertions rule
	forceConc map[netlist.NetID]values.Waveform
	pairs     [][2]netlist.NetID // same logical net in both designs
}

func buildTwin(rng *rand.Rand, nGates int) *twin {
	bs := netlist.NewBuilder("sym")
	bc := netlist.NewBuilder("conc")
	for _, b := range []*netlist.Builder{bs, bc} {
		b.SetPeriod(sPeriod)
		b.SetClockUnit(tick.NS)
		b.SetPrecisionSkew(tick.Range{}) // clock uncertainty modelled explicitly below
	}
	// Symbolic wire 0/2 ns; concrete wire pinned inside it.
	bs.SetDefaultWire(tick.R(0, 2))
	wirePoint := tick.Time(rng.Int63n(2001))
	bc.SetDefaultWire(tick.Range{Min: wirePoint, Max: wirePoint})

	tw := &twin{
		forceConc: map[netlist.NetID]values.Waveform{},
	}
	pair := func(name string) (netlist.NetID, netlist.NetID) {
		a, b := bs.Net(name), bc.Net(name)
		tw.pairs = append(tw.pairs, [2]netlist.NetID{a, b})
		return a, b
	}

	// The clock: symbolic carries ±1.5 ns skew; the concrete instance is
	// the nominal waveform shifted by a specific δ within it.
	ckS, ckC := pair("CK")
	hi0 := tick.Time(20+rng.Int63n(20)) * tick.NS
	hi1 := hi0 + tick.Time(10+rng.Int63n(20))*tick.NS
	skew := tick.R(-1.5, 1.5)
	nominal := values.Const(sPeriod, values.V0).Paint(hi0, hi1, values.V1)
	symCk := nominal.Delay(skew)
	delta := skew.Min + tick.Time(rng.Int63n(int64(skew.Width())+1))
	concCk := nominal.Rotate(delta)
	symForce := map[netlist.NetID]values.Waveform{ckS: symCk}
	tw.forceConc[ckC] = concCk
	tw.forceSym = symForce

	// Primary inputs: symbolic .S-style waveforms (stable [a,b), changing
	// elsewhere); concrete instances toggle only inside the changing
	// window.
	nIn := 3 + rng.Intn(3)
	inputs := make([][2]netlist.NetID, nIn)
	for i := range inputs {
		a := tick.Time(rng.Int63n(int64(sPeriod)))
		span := tick.Time(int64(sPeriod)/4 + rng.Int63n(int64(sPeriod)/2))
		b := a + span
		name := fmt.Sprintf("IN%d", i)
		sID, cID := pair(name)
		inputs[i] = [2]netlist.NetID{sID, cID}
		symForce[sID] = values.Const(sPeriod, values.VC).Paint(a, b, values.VS)

		v := values.V0
		if rng.Intn(2) == 1 {
			v = values.V1
		}
		conc := values.Const(sPeriod, v)
		// Up to two toggles strictly inside the changing window (b, a+P).
		chg := sPeriod - span
		if chg > 2 && rng.Intn(3) > 0 {
			t1 := b + 1 + tick.Time(rng.Int63n(int64(chg-2)))
			if rem := int64(a + sPeriod - t1 - 1); rem > 0 {
				t2 := t1 + 1 + tick.Time(rng.Int63n(rem))
				conc = conc.Paint(t1, t2, values.Not(v))
			}
		}
		tw.forceConc[cID] = conc
	}

	// Random combinational/sequential fabric.
	avail := append([][2]netlist.NetID{}, inputs...)
	for g := 0; g < nGates; g++ {
		pick := func() [2]netlist.NetID { return avail[rng.Intn(len(avail))] }
		oS, oC := pair(fmt.Sprintf("N%d", g))
		dmin := tick.Time(rng.Int63n(4000))
		dmax := dmin + tick.Time(rng.Int63n(4000))
		dconc := dmin + tick.Time(rng.Int63n(int64(dmax-dmin)+1))
		symD := tick.Range{Min: dmin, Max: dmax}
		concD := tick.Range{Min: dconc, Max: dconc}
		name := fmt.Sprintf("G%d", g)

		switch rng.Intn(7) {
		case 0, 1: // 2-input gate
			kinds := []netlist.Kind{netlist.KAnd, netlist.KOr, netlist.KXor, netlist.KNand, netlist.KNor}
			k := kinds[rng.Intn(len(kinds))]
			a, b := pick(), pick()
			inv := rng.Intn(4) == 0
			mk := func(bld *netlist.Builder, an, bn, on netlist.NetID, d tick.Range) {
				ca, cb := netlist.Conns(an), netlist.Conns(bn)
				if inv {
					ca = netlist.Invert(ca)
				}
				bld.Gate(k, name, d, []netlist.NetID{on}, ca, cb)
			}
			mk(bs, a[0], b[0], oS, symD)
			mk(bc, a[1], b[1], oC, concD)
		case 2: // inverter — every third one with asymmetric rise/fall (§4.2.2)
			a := pick()
			if rng.Intn(3) == 0 {
				fmin := tick.Time(rng.Int63n(4000))
				fmax := fmin + tick.Time(rng.Int63n(4000))
				fconc := fmin + tick.Time(rng.Int63n(int64(fmax-fmin)+1))
				bs.GateRF(netlist.KNot, name, symD, tick.Range{Min: fmin, Max: fmax}, []netlist.NetID{oS}, netlist.Conns(a[0]))
				bc.GateRF(netlist.KNot, name, concD, tick.Range{Min: fconc, Max: fconc}, []netlist.NetID{oC}, netlist.Conns(a[1]))
			} else {
				bs.Gate(netlist.KNot, name, symD, []netlist.NetID{oS}, netlist.Conns(a[0]))
				bc.Gate(netlist.KNot, name, concD, []netlist.NetID{oC}, netlist.Conns(a[1]))
			}
		case 3: // mux2, select from fabric
			s, a, b := pick(), pick(), pick()
			bs.Mux(netlist.KMux2, name, symD, tick.Range{}, []netlist.NetID{oS},
				netlist.Conns(s[0]), netlist.Conns(a[0]), netlist.Conns(b[0]))
			bc.Mux(netlist.KMux2, name, concD, tick.Range{}, []netlist.NetID{oC},
				netlist.Conns(s[1]), netlist.Conns(a[1]), netlist.Conns(b[1]))
		case 4: // register on the clock
			d := pick()
			bs.Register(name, symD, []netlist.NetID{oS}, netlist.Conn{Net: bs.Net("CK")}, netlist.Conns(d[0]))
			bc.Register(name, concD, []netlist.NetID{oC}, netlist.Conn{Net: bc.Net("CK")}, netlist.Conns(d[1]))
		case 5: // latch on the clock
			d := pick()
			bs.Latch(name, symD, []netlist.NetID{oS}, netlist.Conn{Net: bs.Net("CK")}, netlist.Conns(d[0]))
			bc.Latch(name, concD, []netlist.NetID{oC}, netlist.Conn{Net: bc.Net("CK")}, netlist.Conns(d[1]))
		default: // chg
			a, b := pick(), pick()
			bs.Gate(netlist.KChg, name, symD, []netlist.NetID{oS}, netlist.Conns(a[0]), netlist.Conns(b[0]))
			bc.Gate(netlist.KChg, name, concD, []netlist.NetID{oC}, netlist.Conns(a[1]), netlist.Conns(b[1]))
		}
		avail = append(avail, [2]netlist.NetID{oS, oC})
	}

	tw.sym = bs.MustBuild()
	tw.conc = bc.MustBuild()
	return tw
}

// covers reports whether a symbolic value admits the concrete one.  A
// concrete value that is itself uncertain (the concrete twin's rise/fall
// fallback can widen value-unknown signals) cannot falsify the symbolic
// claim, so only definite concrete values bite.
func covers(sym, conc values.Value) bool {
	if conc != values.V0 && conc != values.V1 {
		// Uncertain or merely-stable concrete values cannot falsify: the
		// concrete twin may have lost value information through the
		// rise/fall envelope fallback or an unclocked register.
		return true
	}
	switch sym {
	case values.V0:
		return conc == values.V0
	case values.V1:
		return conc == values.V1
	}
	return true // S, C, R, F, U admit any definite level
}

func TestSoundnessAgainstConcrete(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			tw := buildTwin(rng, 8+rng.Intn(10))

			symRes, err := Run(tw.sym, Options{KeepWaves: true, Force: tw.forceSym})
			if err != nil {
				t.Fatal(err)
			}
			concRes, err := Run(tw.conc, Options{KeepWaves: true, Force: tw.forceConc})
			if err != nil {
				t.Fatal(err)
			}
			symW := symRes.Cases[0].Waves
			concW := concRes.Cases[0].Waves

			for _, p := range tw.pairs {
				sw := symW[p[0]].IncorporateSkew()
				cw := concW[p[1]].IncorporateSkew()
				name := tw.sym.Nets[p[0]].Name
				// Pointwise value coverage at a fine sampling.
				for ti := tick.Time(0); ti < sPeriod; ti += 50 {
					sv, cv := sw.At(ti), cw.At(ti)
					if !covers(sv, cv) {
						t.Fatalf("net %q at %v: symbolic %v does not cover concrete %v\n  sym:  %v\n  conc: %v",
							name, ti, sv, cv, sw, cw)
					}
				}
				// Stability coverage: the concrete signal must not
				// transition strictly inside a symbolic stable run.
				for _, tr := range cw.Transitions() {
					// Only physical 0↔1 flips count; a STABLE run
					// resolving into a known constant is representational.
					if !tr.From.Const() || !tr.To.Const() || tr.From == tr.To {
						continue
					}
					// Sample just before and after the concrete flip.
					before, after := sw.At(tr.At-1), sw.At(tr.At)
					if before == values.VS && after == values.VS {
						t.Fatalf("net %q: concrete flip at %v inside a symbolic STABLE region\n  sym:  %v\n  conc: %v",
							name, tr.At, sw, cw)
					}
					if before.Const() && after.Const() && before == after {
						t.Fatalf("net %q: concrete flip at %v where symbolic pins %v\n  sym:  %v\n  conc: %v",
							name, tr.At, before, sw, cw)
					}
				}
			}
		})
	}
}
