package values

import (
	"fmt"

	"scaldtv/internal/tick"
)

// This file encodes the seven-value connectives as precomputed packed-byte
// truth tables, the representation the evaluation tape (internal/tape)
// dispatches through: composing two runs becomes one branch-free index per
// merged boundary instead of a function call per sample.

// UnaryTable is a pointwise function over the seven-value algebra
// precomputed as a lookup table indexed by Value.
type UnaryTable [numValues]Value

// BinaryTable packs a two-input connective into a flat 49-byte array so a
// lookup is a single multiply-add index.  Rows[a] and Cols[b] hold the
// partial applications f(a, ·) and f(·, b), ready to use as UnaryTables
// when one operand is constant over the period.
type BinaryTable struct {
	Flat [numValues * numValues]Value
	Rows [numValues]UnaryTable
	Cols [numValues]UnaryTable
}

// At returns the table entry for the pair (a, b).
func (t *BinaryTable) At(a, b Value) Value { return t.Flat[int(a)*numValues+int(b)] }

// NewUnaryTable precomputes f over the seven values.
func NewUnaryTable(f func(Value) Value) *UnaryTable {
	var t UnaryTable
	for _, v := range All {
		t[v] = f(v)
	}
	return &t
}

// NewBinaryTable precomputes f over all 49 value pairs.
func NewBinaryTable(f func(Value, Value) Value) *BinaryTable {
	t := &BinaryTable{}
	for _, a := range All {
		for _, b := range All {
			v := f(a, b)
			t.Flat[int(a)*numValues+int(b)] = v
			t.Rows[a][b] = v
			t.Cols[b][a] = v
		}
	}
	return t
}

// The standard connectives as packed tables.  Built in init from the
// defining functions (orOf, not the memo arrays filled by value.go's init)
// so initialisation order between files cannot matter.
var (
	OrTable  *BinaryTable
	AndTable *BinaryTable
	XorTable *BinaryTable
	NotTable *UnaryTable
)

func init() {
	OrTable = NewBinaryTable(orOf)
	AndTable = NewBinaryTable(andOf)
	XorTable = NewBinaryTable(xorOf)
	NotTable = NewUnaryTable(Not)
}

// MapTableA is MapUnaryA with the function precomputed as a lookup table.
func (w Waveform) MapTableA(t *UnaryTable, a *Arena) Waveform {
	out := Waveform{Period: w.Period, Skew: w.Skew, Segs: a.makeSegs(len(w.Segs))}
	for i, s := range w.Segs {
		out.Segs[i] = Segment{V: t[s.V], W: s.W}
	}
	return out.normalizeOwned()
}

// CombineTableA is CombineA with the connective precomputed as a packed
// truth table.  The three cases (constant left, constant right, both
// changing) mirror CombineA exactly, so the result is identical; the only
// changes are the table lookup per boundary and monotone segment cursors
// in place of At's per-sample modular scan.
func CombineTableA(a, b Waveform, t *BinaryTable, ar *Arena) Waveform {
	if a.Period != b.Period {
		panic(fmt.Sprintf("values: combining waveforms with different periods %v and %v", a.Period, b.Period))
	}
	if v, ok := a.ConstantValue(); ok {
		return b.MapTableA(&t.Rows[v], ar)
	}
	if v, ok := b.ConstantValue(); ok {
		return a.MapTableA(&t.Cols[v], ar)
	}
	ai := a.IncorporateSkewA(ar)
	bi := b.IncorporateSkewA(ar)
	bounds := mergedBoundariesA(ai, bi, ar)
	out := Waveform{Period: a.Period}
	out.Segs = ar.newSegs(len(bounds))
	ia, ib := 0, 0
	var ea, eb tick.Time
	for i, bt := range bounds {
		next := a.Period
		if i+1 < len(bounds) {
			next = bounds[i+1]
		}
		if next == bt {
			continue
		}
		// The merged boundary list is ascending and covers [0, Period), so
		// each cursor only ever moves forward to the segment containing bt.
		for ea+ai.Segs[ia].W <= bt {
			ea += ai.Segs[ia].W
			ia++
		}
		for eb+bi.Segs[ib].W <= bt {
			eb += bi.Segs[ib].W
			ib++
		}
		v := t.Flat[int(ai.Segs[ia].V)*numValues+int(bi.Segs[ib].V)]
		out.Segs = append(out.Segs, Segment{V: v, W: next - bt})
	}
	return out.normalizeOwned()
}
