// Package tick provides the integer time base used throughout the timing
// verifier.
//
// The paper (McWilliams 1980, §2.3) expresses component timing in absolute
// units (nanoseconds) and design-level clocks and assertions in designer
// chosen "clock units" that scale with the clock period.  All quantities in
// the paper have 0.1 ns resolution or coarser, so an integer picosecond time
// base represents every value exactly and keeps waveform arithmetic free of
// floating point drift.
package tick

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Time is a duration or instant measured in integer picoseconds.
type Time int64

// Common unit multipliers.
const (
	PS Time = 1
	NS Time = 1000
	US Time = 1000 * NS
	MS Time = 1000 * US
)

// Infinity is a sentinel used for "no constraint" margins in reports.  It is
// far larger than any realistic circuit period (about 106 days).
const Infinity Time = 1<<63 - 1

// FromNS converts a (possibly fractional) nanosecond quantity to a Time.
// Values are rounded to the nearest picosecond; the paper's data never needs
// sub-picosecond resolution.
func FromNS(ns float64) Time {
	if ns >= 0 {
		return Time(ns*1000 + 0.5)
	}
	return Time(ns*1000 - 0.5)
}

// NS reports t in nanoseconds as a float64 (for display only).
func (t Time) NS() float64 { return float64(t) / 1000 }

// String renders the time in nanoseconds with the minimum number of decimal
// places, matching the paper's listings (e.g. "5.5", "-1.0", "0.0").
func (t Time) String() string {
	neg := t < 0
	v := t
	if neg {
		v = -v
	}
	whole := v / 1000
	frac := v % 1000
	var s string
	switch {
	case frac == 0:
		s = fmt.Sprintf("%d.0", whole)
	case frac%100 == 0:
		s = fmt.Sprintf("%d.%d", whole, frac/100)
	case frac%10 == 0:
		s = fmt.Sprintf("%d.%02d", whole, frac/10)
	default:
		s = fmt.Sprintf("%d.%03d", whole, frac)
	}
	if neg {
		return "-" + s
	}
	return s
}

// Parse reads a time literal.  An explicit unit suffix ("ps", "ns", "us",
// "ms") may follow the number; a bare number is taken to be nanoseconds,
// which is the paper's absolute unit.
func Parse(s string) (Time, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("tick: empty time literal")
	}
	mult := NS
	lower := strings.ToLower(s)
	for _, u := range []struct {
		suffix string
		m      Time
	}{{"ps", PS}, {"ns", NS}, {"us", US}, {"ms", MS}} {
		if strings.HasSuffix(lower, u.suffix) {
			mult = u.m
			s = strings.TrimSpace(s[:len(s)-len(u.suffix)])
			break
		}
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("tick: bad time literal %q: %v", s, err)
	}
	scaled := f * float64(mult)
	// Float-to-integer conversion is implementation-defined when the value
	// does not fit in int64, so reject out-of-range literals explicitly.
	// float64(1<<63) is exactly 2^63; any representable float below it
	// converts safely even after the rounding half-step.
	const lim = float64(1 << 63)
	if math.IsNaN(scaled) || scaled >= lim || scaled <= -lim {
		return 0, fmt.Errorf("tick: time literal %q out of range", s)
	}
	if scaled >= 0 {
		return Time(scaled + 0.5), nil
	}
	return Time(scaled - 0.5), nil
}

// MustParse is Parse for literals known to be valid at compile time; it
// panics on error and is intended for tests and built-in library source.
func MustParse(s string) Time {
	t, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return t
}

// Mod reduces t into the half-open interval [0, period).  It accepts
// negative t, which arises constantly when set-up windows reach backwards
// across the cycle boundary (§3.2: assertions are taken modulo the cycle
// time).
func Mod(t, period Time) Time {
	if period <= 0 {
		panic("tick: non-positive period")
	}
	m := t % period
	if m < 0 {
		m += period
	}
	return m
}

// Range is a closed min/max pair, used for propagation and interconnection
// delays (§2.4, §2.5.3).
type Range struct {
	Min, Max Time
}

// R builds a Range from nanosecond quantities.
func R(minNS, maxNS float64) Range {
	return Range{Min: FromNS(minNS), Max: FromNS(maxNS)}
}

// Valid reports whether the range is well formed (Min ≤ Max).  Negative
// minima are permitted: clock skew specifications such as (-1.0, +1.0)
// deliberately reach backwards in time (§2.5.1).
func (r Range) Valid() bool { return r.Min <= r.Max }

// Width is the delay uncertainty Max-Min, which becomes waveform skew when a
// signal passes through the delay (§2.8, Fig 2-8).
func (r Range) Width() Time { return r.Max - r.Min }

// Add composes two delays in series.
func (r Range) Add(o Range) Range { return Range{Min: r.Min + o.Min, Max: r.Max + o.Max} }

// IsZero reports whether the range is exactly zero delay.
func (r Range) IsZero() bool { return r.Min == 0 && r.Max == 0 }

// String renders the range as "min/max" in nanoseconds, the style used in
// the paper's prose ("0.0/2.0 nsec").
func (r Range) String() string { return r.Min.String() + "/" + r.Max.String() }
