package values

import (
	"math/rand"
	"testing"

	"scaldtv/internal/tick"
)

// Every packed table entry must agree with the defining connective, and
// the Rows/Cols partial applications with the flat array.
func TestBinaryTablesMatchConnectives(t *testing.T) {
	cases := []struct {
		name string
		tab  *BinaryTable
		f    func(Value, Value) Value
	}{
		{"or", OrTable, Or},
		{"and", AndTable, And},
		{"xor", XorTable, Xor},
	}
	for _, c := range cases {
		for _, a := range All {
			for _, b := range All {
				want := c.f(a, b)
				if got := c.tab.At(a, b); got != want {
					t.Errorf("%s table At(%v, %v) = %v, want %v", c.name, a, b, got, want)
				}
				if got := c.tab.Rows[a][b]; got != want {
					t.Errorf("%s table Rows[%v][%v] = %v, want %v", c.name, a, b, got, want)
				}
				if got := c.tab.Cols[b][a]; got != want {
					t.Errorf("%s table Cols[%v][%v] = %v, want %v", c.name, b, a, got, want)
				}
			}
		}
	}
	for _, a := range All {
		if got, want := NotTable[a], Not(a); got != want {
			t.Errorf("NotTable[%v] = %v, want %v", a, got, want)
		}
	}
}

func randTableWave(rng *rand.Rand, period tick.Time) Waveform {
	w := Const(period, All[rng.Intn(len(All))])
	for j := 0; j < rng.Intn(5); j++ {
		s := tick.Time(rng.Int63n(int64(period)))
		e := tick.Time(rng.Int63n(int64(period)))
		w = w.Paint(s, e, All[rng.Intn(len(All))])
	}
	if rng.Intn(3) == 0 {
		w = w.WithSkew(tick.Time(rng.Int63n(int64(period / 2))))
	}
	return w
}

// Property: the table-driven combinators are segment-for-segment identical
// to the function-driven ones, the equivalence the tape evaluator rests on.
func TestTableCombineMatchesCombine(t *testing.T) {
	rng := rand.New(rand.NewSource(1980))
	tabs := []struct {
		tab *BinaryTable
		f   func(Value, Value) Value
	}{{OrTable, Or}, {AndTable, And}, {XorTable, Xor}}
	for i := 0; i < 2000; i++ {
		a := randTableWave(rng, p50)
		b := randTableWave(rng, p50)
		tc := tabs[rng.Intn(len(tabs))]
		got := CombineTableA(a, b, tc.tab, nil)
		want := CombineA(a, b, tc.f, nil)
		if got.Period != want.Period || got.Skew != want.Skew || len(got.Segs) != len(want.Segs) {
			t.Fatalf("iteration %d: CombineTableA(%v, %v) = %v, want %v", i, a, b, got, want)
		}
		for j := range got.Segs {
			if got.Segs[j] != want.Segs[j] {
				t.Fatalf("iteration %d: CombineTableA(%v, %v) = %v, want %v", i, a, b, got, want)
			}
		}
	}
}

func TestMapTableMatchesMapUnary(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	for i := 0; i < 1000; i++ {
		w := randTableWave(rng, p50)
		got := w.MapTableA(NotTable, nil)
		want := w.MapUnaryA(Not, nil)
		if !got.Equal(want) || len(got.Segs) != len(want.Segs) {
			t.Fatalf("iteration %d: MapTableA(%v) = %v, want %v", i, w, got, want)
		}
	}
}
