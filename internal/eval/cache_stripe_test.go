package eval

import (
	"encoding/binary"
	"sync"
	"testing"

	"scaldtv/internal/tick"
	"scaldtv/internal/values"
)

// The striped cache's contract under concurrency: a Get that hits returns
// exactly the slice some Put stored for that key, whichever shard the key
// hashes to and however many goroutines race on it.  Run with -race.
func TestCacheConcurrentStripes(t *testing.T) {
	const (
		goroutines = 16
		keys       = 256
		rounds     = 50
	)
	c := NewCache()
	mk := func(i int) []byte {
		var b [12]byte
		binary.LittleEndian.PutUint64(b[:8], uint64(i)*0x9e3779b97f4a7c15)
		binary.LittleEndian.PutUint32(b[8:], uint32(i))
		return b[:]
	}
	want := make([][]Signal, keys)
	for i := range want {
		w := values.Const(100*tick.NS, values.V0)
		w = w.Paint(tick.Time(i+1)*tick.NS, tick.Time(i+40)*tick.NS, values.V1)
		want[i] = []Signal{{Wave: w}}
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, 0, 16)
			for r := 0; r < rounds; r++ {
				for i := 0; i < keys; i++ {
					// Each goroutine reuses one scratch buffer, like the
					// verifier's per-worker key buffer.
					buf = append(buf[:0], mk(i)...)
					outs, _, ok := c.Get(buf)
					if !ok {
						c.Put(buf, want[i], nil)
						continue
					}
					if len(outs) != 1 || !outs[0].Wave.Equal(want[i][0].Wave) {
						t.Errorf("g%d key %d: cache returned a foreign value", g, i)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	hits, misses, entries := c.Stats()
	if entries != keys {
		t.Errorf("entries = %d, want %d", entries, keys)
	}
	if hits+misses != goroutines*rounds*keys {
		t.Errorf("hits+misses = %d, want %d", hits+misses, goroutines*rounds*keys)
	}
	if misses < keys {
		t.Errorf("misses = %d, want at least %d (every key misses once)", misses, keys)
	}
}
