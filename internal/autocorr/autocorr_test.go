package autocorr

import (
	"strings"
	"testing"

	"scaldtv/internal/netlist"
	"scaldtv/internal/tick"
	"scaldtv/internal/verify"
)

func ns(f float64) tick.Time { return tick.FromNS(f) }

// buildFig41 is the Fig 4-1 correlation circuit: a register fed back
// through a multiplexer, clocked through a buffer inserting 5 ns of skew.
func buildFig41(t *testing.T) *netlist.Design {
	t.Helper()
	b := netlist.NewBuilder("fig4-1")
	b.SetPeriod(50 * tick.NS)
	b.SetDefaultWire(tick.Range{})
	b.SetPrecisionSkew(tick.Range{})

	ck := b.Net("CK .P20-30")
	bufCk := b.Net("BUF CK")
	load := b.Net("LOAD .S0-50")
	newData := b.Net("NEW DATA .S0-50")
	q, dIn := b.Net("Q"), b.Net("D")

	b.Buf("CK BUF", tick.R(0, 5), []netlist.NetID{bufCk}, netlist.Conns(ck))
	b.Mux(netlist.KMux2, "HOLD MUX", tick.R(1, 2), tick.Range{}, []netlist.NetID{dIn},
		netlist.Conns(load), netlist.Conns(q), netlist.Conns(newData))
	b.Register("REG", tick.R(1, 2), []netlist.NetID{q}, netlist.Conn{Net: bufCk}, netlist.Conns(dIn))
	b.SetupHold("REG CHK", ns(2.0), ns(1.5), netlist.Conns(dIn), netlist.Conn{Net: bufCk})
	return b.MustBuild()
}

func TestApplyFixesFig41(t *testing.T) {
	d := buildFig41(t)

	// Without the transform: the known false hold error.
	res, err := verify.Run(d, verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hadHold := false
	for _, v := range res.Violations {
		if v.Kind == verify.HoldViolation {
			hadHold = true
		}
	}
	if !hadHold {
		t.Fatal("fixture should reproduce the Fig 4-1 false hold error")
	}

	ins, err := Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 1 {
		t.Fatalf("insertions = %+v, want exactly one", ins)
	}
	if ins[0].Delay != ns(5) {
		t.Errorf("inserted delay = %v, want the 5 ns clock uncertainty", ins[0].Delay)
	}
	if ins[0].Storage != "REG" || ins[0].Via != "Q" {
		t.Errorf("insertion placement wrong: %+v", ins[0])
	}

	// With the transform: the false error is gone (Fig 4-2).
	res2, err := verify.Run(d, verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res2.Violations {
		if v.Kind == verify.HoldViolation {
			t.Errorf("hold error survived the automatic CORR: %v", v)
		}
	}
}

func TestApplyOnlyDelaysFeedbackBranch(t *testing.T) {
	// Q also feeds unrelated forward logic: that path must not be delayed.
	d := buildFig41(t)
	b2 := netlist.NewBuilder("with-forward")
	_ = b2
	// Extend the existing design directly: add a forward buffer reading Q.
	q, _ := d.NetByName("Q")
	fwd, err := d.NewNet("FWD", "FWD")
	if err != nil {
		t.Fatal(err)
	}
	d.Prims = append(d.Prims, netlist.Prim{
		Kind: netlist.KBuf, Name: "FWD BUF", Width: 1, Delay: tick.R(1, 1),
		In:  []netlist.Port{{Name: "I0", Bits: []netlist.Conn{{Net: q}}}},
		Out: []netlist.OutPort{{Name: "O", Bits: []netlist.NetID{fwd}}},
	})
	d.RebuildFanout()
	if _, err := Apply(d); err != nil {
		t.Fatal(err)
	}
	// The forward buffer still reads Q directly.
	for _, p := range d.Prims {
		if p.Name == "FWD BUF" && p.In[0].Bits[0].Net != q {
			t.Error("forward branch was redirected through the CORR delay")
		}
		if p.Name == "HOLD MUX" && p.In[1].Bits[0].Net == q {
			t.Error("feedback branch was not redirected")
		}
	}
}

func TestApplyNoFeedbackNoChange(t *testing.T) {
	b := netlist.NewBuilder("forward-only")
	b.SetPeriod(50 * tick.NS)
	b.SetDefaultWire(tick.Range{})
	ck := b.Net("CK .P20-30")
	bufCk := b.Net("BUF CK")
	b.Buf("CK BUF", tick.R(0, 5), []netlist.NetID{bufCk}, netlist.Conns(ck))
	q := b.Net("Q")
	b.Register("REG", tick.R(1, 2), []netlist.NetID{q}, netlist.Conn{Net: bufCk}, netlist.Conns(b.Net("D .S0-30")))
	d := b.MustBuild()
	nPrims := len(d.Prims)
	ins, err := Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 0 || len(d.Prims) != nPrims {
		t.Errorf("no-feedback design modified: %+v", ins)
	}
}

func TestApplyNoUncertaintyNoChange(t *testing.T) {
	// Feedback, but a crisp clock: no correlation problem to fix.
	b := netlist.NewBuilder("crisp")
	b.SetPeriod(50 * tick.NS)
	b.SetDefaultWire(tick.Range{})
	b.SetPrecisionSkew(tick.Range{})
	ck := b.Net("CK .P20-30")
	q, dIn := b.Net("Q"), b.Net("D")
	b.Mux(netlist.KMux2, "MUX", tick.R(1, 2), tick.Range{}, []netlist.NetID{dIn},
		netlist.Conns(b.Net("LOAD .S0-50")), netlist.Conns(q), netlist.Conns(b.Net("ND .S0-50")))
	b.Register("REG", tick.R(1, 2), []netlist.NetID{q}, netlist.Conn{Net: ck}, netlist.Conns(dIn))
	d := b.MustBuild()
	ins, err := Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 0 {
		t.Errorf("crisp-clock design modified: %+v", ins)
	}
}

func TestApplyAssertedClockSkewCounts(t *testing.T) {
	// The precision-clock assertion's own ±1 ns skew is clock uncertainty
	// too: feedback under it gets a 2 ns CORR.
	b := netlist.NewBuilder("asserted-skew")
	b.SetPeriod(50 * tick.NS)
	b.SetDefaultWire(tick.Range{})
	b.SetPrecisionSkew(tick.R(-1, 1))
	ck := b.Net("CK .P20-30")
	q, dIn := b.Net("Q"), b.Net("D")
	b.Mux(netlist.KMux2, "MUX", tick.R(1, 2), tick.Range{}, []netlist.NetID{dIn},
		netlist.Conns(b.Net("LOAD .S0-50")), netlist.Conns(q), netlist.Conns(b.Net("ND .S0-50")))
	b.Register("REG", tick.R(1, 2), []netlist.NetID{q}, netlist.Conn{Net: ck}, netlist.Conns(dIn))
	d := b.MustBuild()
	ins, err := Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 1 || ins[0].Delay != ns(2) {
		t.Errorf("insertions = %+v, want one 2 ns CORR", ins)
	}
	if !strings.Contains(ins[0].Storage, "REG") {
		t.Errorf("storage name wrong: %+v", ins[0])
	}
}
