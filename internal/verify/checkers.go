package verify

import (
	"encoding/binary"
	"fmt"

	"scaldtv/internal/assertion"
	"scaldtv/internal/eval"
	"scaldtv/internal/netlist"
	"scaldtv/internal/tape"
	"scaldtv/internal/tick"
	"scaldtv/internal/values"
)

// check runs every constraint checker against the relaxed waveforms
// (§2.9 step 3): the set-up/hold and minimum-pulse-width primitives, the
// &A/&H directive stability rules, and the designer assertions on
// generated signals.  When a Verifier retains this case (v.sites is
// non-nil) each site's outcome is memoized for incremental rechecks.
func (v *verifier) check(caseLabel string) []Violation {
	var out []Violation
	for pi := range v.d.Prims {
		mark := len(v.margins)
		viol := v.checkSite(netlist.PrimID(pi), caseLabel)
		if v.sites != nil {
			v.sites[pi] = siteChecks{viols: viol, margins: append([]Margin(nil), v.margins[mark:]...)}
		}
		out = append(out, viol...)
	}
	out = append(out, v.checkAssertions(caseLabel)...)
	return out
}

// checkSite evaluates the constraint rules anchored at one primitive.
// On the compiled tape the site is routed through its precompiled plan
// and the program's negative cache; the interpreter always runs the full
// check.  Both paths produce identical violations and margins.
func (v *verifier) checkSite(pi netlist.PrimID, caseLabel string) []Violation {
	if v.prog == nil {
		return v.checkSiteFull(pi, caseLabel)
	}
	return v.tapeCheckSite(pi, caseLabel)
}

// tapeCheckSite is the tape's checking path.  PlanNone sites are skipped
// outright; PlanDirective sites first scan the resolved directive heads —
// a gate none of whose inputs carries &A/&H has nothing to check, exactly
// the case checkSiteFull's window loop degenerates to.  Every remaining
// site consults its warm slot, then the negative cache: a site key — the
// evaluation-memo key of everything the check reads, plus the checker
// intervals — recorded as clean means the full check returned no
// violations and no margins, so it is skipped.  Margins runs bypass both
// entirely (margins are recorded even for passing constraints, so no
// outcome is empty).
func (v *verifier) tapeCheckSite(pi netlist.PrimID, caseLabel string) []Violation {
	p := &v.d.Prims[pi]
	switch v.prog.Plans[pi] {
	case tape.PlanNone:
		return nil
	case tape.PlanDirective:
		marked := false
	scan:
		for bit := 0; bit < p.Width; bit++ {
			for _, port := range p.In {
				if eval.ConnDirective(port.Bits[bit], v.get).ChecksStability() {
					marked = true
					break scan
				}
			}
		}
		if !marked {
			return nil
		}
	}
	if v.opts.Margins || v.sigID == nil {
		return v.checkSiteFull(pi, caseLabel)
	}
	// Warm slot first: a clean-site variant (Outs == nil) records that the
	// full check of these exact inputs was clean under the current
	// environment generation — skipped with a handle walk, no key build,
	// no lock.
	if v.slots != nil && v.slotLookup(pi, p, true) != nil {
		return nil
	}
	if v.getFn == nil {
		v.getFn = func(n netlist.NetID) eval.Signal { return v.sigs[n] }
		v.widFn = func(n netlist.NetID) uint64 { return v.sigID[n] }
	}
	v.siteKeyBuf = appendSiteKey(v.siteKeyBuf[:0], v.d, p, v.getFn, v.widFn)
	if v.prog.Sites.Known(v.siteKeyBuf) {
		if v.slots != nil {
			v.publishSlot(pi, nil, nil)
		}
		return nil
	}
	mark := len(v.margins)
	out := v.checkSiteFull(pi, caseLabel)
	if out == nil && len(v.margins) == mark {
		v.prog.Sites.Add(v.siteKeyBuf)
		if v.slots != nil {
			v.publishSlot(pi, nil, nil)
		}
	}
	return out
}

// appendSiteKey builds a constraint site's negative-cache key: the
// evaluation-memo key (kind, width, period, delay parameters, and per
// input connection the complement rail, resolved directives, wire delay
// and interned waveform handle — everything the checking functions read
// through ConnWave and ConnDirective) extended with the checker
// intervals, which the evaluator does not read.  Names and the case label
// are deliberately absent: they only appear in non-empty outcomes, which
// are never cached.
func appendSiteKey(buf []byte, d *netlist.Design, p *netlist.Prim, get eval.Getter, wid eval.WaveID) []byte {
	buf = eval.AppendKey(buf, d, p, get, wid)
	buf = binary.AppendVarint(buf, int64(p.Setup))
	buf = binary.AppendVarint(buf, int64(p.Hold))
	buf = binary.AppendVarint(buf, int64(p.MinHigh))
	buf = binary.AppendVarint(buf, int64(p.MinLow))
	return buf
}

// checkSiteFull evaluates the constraint rules anchored at one primitive:
// the checker primitives themselves, directive stability on multi-input
// gates, and the clock-defined rule on storage elements.
func (v *verifier) checkSiteFull(pi netlist.PrimID, caseLabel string) []Violation {
	p := &v.d.Prims[pi]
	switch p.Kind {
	case netlist.KSetupHold:
		return v.checkSetupHold(p, caseLabel, false)
	case netlist.KSetupRiseHoldFall:
		return v.checkSetupHold(p, caseLabel, true)
	case netlist.KMinPulse:
		return v.checkMinPulse(p, caseLabel)
	default:
		var out []Violation
		if p.Kind.IsGate() && len(p.In) > 1 {
			out = append(out, v.checkDirectives(p, caseLabel)...)
		}
		if p.Kind.IsStorage() {
			out = append(out, v.checkClockDefined(p, caseLabel)...)
		}
		return out
	}
}

// recheck reproduces check's output after an incremental relaxation: a
// site is re-evaluated only when its parameters were edited or one of
// the nets it reads moved during the pass (including wire-delay edits,
// which change what ConnWave reads without changing the stored
// waveform); every clean site replays its memoized violations and
// margins, preserving check's (prim order, then assertions) contract.
// The assertion cross-checks read design-global state and are cheap, so
// they are always recomputed.
func (v *verifier) recheck(caseLabel string, dirtyPrim []bool) []Violation {
	var out []Violation
	for pi := range v.d.Prims {
		p := &v.d.Prims[pi]
		dirty := dirtyPrim[pi]
		if !dirty {
		scan:
			for _, port := range p.In {
				for _, c := range port.Bits {
					if v.changed[c.Net] {
						dirty = true
						break scan
					}
				}
			}
		}
		if dirty {
			mark := len(v.margins)
			viol := v.checkSite(netlist.PrimID(pi), caseLabel)
			v.sites[pi] = siteChecks{viols: viol, margins: append([]Margin(nil), v.margins[mark:]...)}
		} else {
			v.margins = append(v.margins, v.sites[pi].margins...)
		}
		out = append(out, v.sites[pi].viols...)
	}
	out = append(out, v.checkAssertions(caseLabel)...)
	return out
}

func (v *verifier) get(n netlist.NetID) eval.Signal { return v.sigs[n] }

// dataGroups groups the bits of a checker's data port by waveform, so a
// 32-bit bus with uniform timing produces one message, not 32.
func (v *verifier) dataGroups(p *netlist.Prim, port int) []struct {
	name  string
	extra int
	wave  values.Waveform
} {
	var groups []struct {
		name  string
		extra int
		wave  values.Waveform
	}
	for _, c := range p.In[port].Bits {
		w := eval.ConnWave(v.d, c, v.get)
		if n := len(groups); n > 0 && groups[n-1].wave.Equal(w) {
			groups[n-1].extra++
			continue
		}
		groups = append(groups, struct {
			name  string
			extra int
			wave  values.Waveform
		}{name: v.d.Nets[c.Net].Name, wave: w})
	}
	return groups
}

// checkSetupHold implements both checker primitives of Fig 2-3.  For the
// plain SETUP HOLD CHK, stability is required from setup before each
// rising-edge window of CK until hold after it.  For the SETUP RISE HOLD
// FALL CHK, stability is additionally required throughout the clock's true
// interval, with the hold measured from the falling edge (the form memory
// elements need).
func (v *verifier) checkSetupHold(p *netlist.Prim, caseLabel string, riseFall bool) []Violation {
	ckConn := p.In[1].Bits[0]
	ckWave := eval.ConnWave(v.d, ckConn, v.get)
	ckName := v.d.Nets[ckConn.Net].Name

	if hasUnknown(ckWave) {
		return []Violation{{
			Kind: UnknownClockViolation, Case: caseLabel, Prim: p.Name,
			Clock: ckName, ClockWave: ckWave,
			Detail: "the checker clock input has no defined value",
		}}
	}
	rises := ckWave.RisingEdges()
	if len(rises) == 0 {
		return nil
	}
	falls := ckWave.FallingEdges()

	var out []Violation
	for _, g := range v.dataGroups(p, 0) {
		detail := ""
		if g.extra > 0 {
			detail = fmt.Sprintf("and %d further bits with identical timing", g.extra)
		}
		margin := func(kind ViolationKind, required, actual, at tick.Time) {
			if !v.opts.Margins {
				return
			}
			v.margins = append(v.margins, Margin{
				Kind: kind, Case: caseLabel, Prim: p.Name,
				Data: g.name, Clock: ckName,
				Required: required, Actual: actual, At: tick.Mod(at, v.d.Period),
			})
		}
		report := func(kind ViolationKind, required, actual, at tick.Time, extra string) {
			d := detail
			if extra != "" {
				if d != "" {
					d = extra + "; " + d
				} else {
					d = extra
				}
			}
			out = append(out, Violation{
				Kind: kind, Case: caseLabel, Prim: p.Name,
				Data: g.name, Clock: ckName,
				Required: required, Actual: actual, At: tick.Mod(at, v.d.Period),
				DataWave: g.wave, ClockWave: ckWave, Detail: d,
			})
		}
		for _, e := range rises {
			var fallEnd tick.Time
			hasFall := false
			if riseFall {
				if f, ok := nextFall(e, falls, v.d.Period); ok {
					fallEnd = f
					hasFall = true
				}
			}
			// Set-up: stability reaching back from the earliest possible
			// clocking instant (Fig 3-11 measures to the start of the
			// rise).
			back := g.wave.StableBack(e.Start)
			margin(SetupViolation, p.Setup, back, e.Start)
			if back < p.Setup {
				report(SetupViolation, p.Setup, back, e.Start, "")
			}
			if riseFall && hasFall {
				// Stability through the clock-true interval.
				if !g.wave.StableThroughout(e.Start, fallEnd) {
					report(EnableViolation, fallEnd-e.Start, 0, e.Start,
						"the input must be stable for the entire interval over which the clock is true")
				}
				fwd := g.wave.StableFwd(fallEnd)
				margin(HoldViolation, p.Hold, fwd, fallEnd)
				if fwd < p.Hold {
					report(HoldViolation, p.Hold, fwd, fallEnd, "")
				}
				continue
			}
			// Plain set-up/hold around the rising-edge window.  A negative
			// hold shortens the required window from the edge end.
			holdEnd := e.End + p.Hold
			if p.Hold > 0 {
				fwd := g.wave.StableFwd(e.End)
				margin(HoldViolation, p.Hold, fwd, e.End)
				if fwd < p.Hold {
					report(HoldViolation, p.Hold, fwd, e.End, "")
				} else if !g.wave.StableThroughout(e.Start, e.End) {
					report(EnableViolation, e.End-e.Start, 0, e.Start,
						"the input may change within the clock edge uncertainty window")
				}
			} else if holdEnd > e.Start {
				if !g.wave.StableThroughout(e.Start, holdEnd) {
					report(HoldViolation, p.Hold, g.wave.StableFwd(e.Start)-(holdEnd-e.Start), e.Start, "")
				}
			}
		}
	}
	return out
}

// nextFall finds the end of the first falling-edge window at or after the
// rising edge e, cyclically.
func nextFall(e values.Edge, falls []values.Edge, period tick.Time) (tick.Time, bool) {
	if len(falls) == 0 {
		return 0, false
	}
	best, found := tick.Time(0), false
	for _, f := range falls {
		start := f.Start
		for start < e.End {
			start += period
		}
		end := start + (f.End - f.Start)
		if !found || end < best {
			best, found = end, true
		}
	}
	return best, found
}

// checkMinPulse implements the MIN PULSE WIDTH checker of Fig 2-4,
// operating on the skew-preserving pulse analysis so that pure delay
// uncertainty does not erode pulse widths (§2.8).
func (v *verifier) checkMinPulse(p *netlist.Prim, caseLabel string) []Violation {
	c := p.In[0].Bits[0]
	w := eval.ConnWave(v.d, c, v.get)
	name := v.d.Nets[c.Net].Name
	if hasUnknown(w) {
		return nil // undefined inputs are covered by the cross-reference listing
	}
	var out []Violation
	if p.MinHigh > 0 {
		for _, pulse := range w.HighPulses() {
			if v.opts.Margins {
				v.margins = append(v.margins, Margin{
					Kind: MinPulseHighViolation, Case: caseLabel, Prim: p.Name,
					Data: name, Required: p.MinHigh, Actual: pulse.MinWidth, At: pulse.Start,
				})
			}
			if pulse.MinWidth < p.MinHigh {
				out = append(out, Violation{
					Kind: MinPulseHighViolation, Case: caseLabel, Prim: p.Name,
					Data: name, Required: p.MinHigh, Actual: pulse.MinWidth,
					At: pulse.Start, DataWave: w,
				})
			}
		}
	}
	if p.MinLow > 0 {
		for _, pulse := range w.LowPulses() {
			if v.opts.Margins {
				v.margins = append(v.margins, Margin{
					Kind: MinPulseLowViolation, Case: caseLabel, Prim: p.Name,
					Data: name, Required: p.MinLow, Actual: pulse.MinWidth, At: pulse.Start,
				})
			}
			if pulse.MinWidth < p.MinLow {
				out = append(out, Violation{
					Kind: MinPulseLowViolation, Case: caseLabel, Prim: p.Name,
					Data: name, Required: p.MinLow, Actual: pulse.MinWidth,
					At: pulse.Start, DataWave: w,
				})
			}
		}
	}
	return out
}

// checkDirectives enforces the &A and &H rules (§2.6): every other input
// of the gate must be stable while the directive-marked input is asserted,
// to rule out hazards on gated clocks (Fig 1-5).
func (v *verifier) checkDirectives(p *netlist.Prim, caseLabel string) []Violation {
	var out []Violation
	seen := map[string]bool{}
	for bit := 0; bit < p.Width; bit++ {
		for i, port := range p.In {
			c := port.Bits[bit]
			if !eval.ConnDirective(c, v.get).ChecksStability() {
				continue
			}
			ckWave := eval.ConnWave(v.d, c, v.get)
			ckName := v.d.Nets[c.Net].Name
			windows := ckWave.IncorporateSkew().HighPulses()
			for j, other := range p.In {
				if j == i {
					continue
				}
				oc := other.Bits[bit]
				if eval.ConnDirective(oc, v.get).ChecksStability() {
					continue // two clocks ANDed: each is checked against the rest
				}
				dw := eval.ConnWave(v.d, oc, v.get)
				oName := v.d.Nets[oc.Net].Name
				for _, win := range windows {
					if dw.StableThroughout(win.Start, win.Start+win.MaxWidth) {
						continue
					}
					key := p.Name + "\x00" + oName + "\x00" + ckName
					if seen[key] {
						continue
					}
					seen[key] = true
					out = append(out, Violation{
						Kind: DirectiveViolation, Case: caseLabel, Prim: p.Name,
						Data: oName, Clock: ckName,
						At:       win.Start,
						DataWave: dw, ClockWave: ckWave,
						Detail: "control inputs gated with a clock must be stable while the clock is asserted",
					})
				}
			}
		}
	}
	return out
}

// checkClockDefined flags storage elements whose clock or enable has no
// defined value.
func (v *verifier) checkClockDefined(p *netlist.Prim, caseLabel string) []Violation {
	c := p.In[0].Bits[0]
	w := eval.ConnWave(v.d, c, v.get)
	if !hasUnknown(w) {
		return nil
	}
	return []Violation{{
		Kind: UnknownClockViolation, Case: caseLabel, Prim: p.Name,
		Clock: v.d.Nets[c.Net].Name, ClockWave: w,
		Detail: "the storage element's clock input has no defined value",
	}}
}

// checkAssertions cross-checks generated signals against their designer
// assertions (§2.5.2): once hardware drives an asserted signal, the
// computed timing must honour the assertion the rest of the design was
// verified against.
func (v *verifier) checkAssertions(caseLabel string) []Violation {
	var out []Violation
	reported := map[string]bool{}
	checkNet := func(i int) {
		n := &v.d.Nets[i]
		key := vectorBase(n.Base)
		if n.Assert == nil || n.Driver == netlist.NoDriver || reported[key] {
			return
		}
		id := netlist.NetID(i)
		switch n.Assert.Kind {
		case assertion.Stable:
			computed := v.sigs[id].Wave
			asserted := v.initial[id]
			for _, r := range asserted.Runs() {
				if r.V != values.VS {
					continue
				}
				if !computed.StableThroughout(r.Start, r.End()) {
					reported[key] = true
					out = append(out, Violation{
						Kind: AssertionViolation, Case: caseLabel,
						Prim: "assertion " + n.Assert.String(),
						Data: n.Name, At: tick.Mod(r.Start, v.d.Period),
						DataWave: computed,
						Detail: fmt.Sprintf("asserted stable %s–%s ns but the generated signal may change there",
							tick.Mod(r.Start, v.d.Period), tick.Mod(r.End(), v.d.Period)),
					})
					break
				}
			}
		case assertion.Clock, assertion.PrecisionClock:
			if !v.altOutSet[id] {
				return
			}
			computed := v.altOutW[id]
			if !computed.IncorporateSkew().Equal(v.initial[id].IncorporateSkew()) {
				reported[key] = true
				out = append(out, Violation{
					Kind: AssertionViolation, Case: caseLabel,
					Prim: "assertion " + n.Assert.String(),
					Data: n.Name, DataWave: computed, ClockWave: v.initial[id],
					Detail: "the generated clock does not match its assertion",
				})
			}
		}
	}
	if v.prog != nil {
		// The tape precomputed the candidate list (asserted and driven, in
		// ascending net order — the interpreter's visit order); the skip
		// conditions inside checkNet still apply, defensively.
		for _, id := range v.prog.Seeds().AssertNets {
			checkNet(int(id))
		}
	} else {
		for i := range v.d.Nets {
			checkNet(i)
		}
	}
	return out
}

// vectorBase strips a trailing bit subscript, so assertion violations are
// reported once per logical vector rather than once per bit.
func vectorBase(base string) string {
	if n := len(base); n > 2 && base[n-1] == '>' {
		for i := n - 2; i >= 0; i-- {
			c := base[i]
			if c == '<' {
				return base[:i]
			}
			if c < '0' || c > '9' {
				break
			}
		}
	}
	return base
}

func hasUnknown(w values.Waveform) bool {
	for _, s := range w.Segs {
		if s.V == values.VU {
			return true
		}
	}
	return false
}
