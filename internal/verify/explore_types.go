package verify

// SiteProb is the statistical-mode outcome of one constraint evaluation:
// the probability that the constraint is violated when every component
// delay is drawn from a truncated normal over its data-sheet range,
// instead of pinned at the worst-case corner.  One entry per collected
// Margin, in the same deterministic order; Prob is rounded to 1e-6 so
// reports stay byte-identical across engines and worker counts.
type SiteProb struct {
	Kind  ViolationKind
	Case  string
	Prim  string
	Data  string
	Clock string

	SlackNS float64 // worst-case slack of the same evaluation
	From    string  // start net of the statistically critical path
	Prob    float64 // violation probability, rounded to 1e-6
}

// Exploration is the case-exploration report produced by the
// internal/explore engine when Options.Explore is set.  The verify
// package defines only the data — so the report and stats layers can
// render it without importing the engine — and internal/explore fills it.
//
// Everything in it is deterministic: Sites in violation-report order,
// Candidates in rank order (cone membership desc, then declared net
// order), Chosen and CaseSet in declared-order products.
type Exploration struct {
	// Sites are the U/C-poisoned constraint sites of the unsplit run —
	// violations whose observed waveforms carry unknown (U) or
	// spuriously-changing (C) values, the ones case analysis exists to
	// discharge (§2.7).
	Sites []ExploredSite
	// Candidates are the control signals considered, ranked.  Entries the
	// search never probed (ruled out by cone membership, or beyond the
	// candidate cap) are still listed with Probes == 0 so the provenance
	// is complete.
	Candidates []ExploreCandidate
	// Chosen lists the bases of the splits in the minimal cover, in
	// declared net order.
	Chosen []string
	// CaseSet is the emitted case set: the binary product of the chosen
	// splits, each label in the parser's "BASE = v" spelling, directly
	// reusable as case directives.
	CaseSet []string
	// Minimal reports that dropping any one chosen split re-poisons some
	// site (verified by re-probing each reduced set).
	Minimal bool
	// Residual counts violations that remain under the emitted case set —
	// real timing errors no case split can discharge.
	Residual int
	// Skipped counts candidates beyond the search cap that were ranked
	// but never probed.  Zero means the search was exhaustive.
	Skipped int
}

// ExploredSite is one U/C-poisoned constraint site.
type ExploredSite struct {
	Kind  ViolationKind
	Prim  string
	Data  string
	Clock string
	// Discharged reports whether the emitted case set removes the
	// violation at this site.
	Discharged bool
	// By lists the chosen split bases whose cones reach this site, in
	// declared net order.
	By []string
}

// Key identifies the site independent of the case label and edge time —
// the identity under which a violation is considered discharged.
func (s ExploredSite) Key() string {
	return s.Kind.String() + "|" + s.Prim + "|" + s.Data + "|" + s.Clock
}

// ExploreCandidate is the provenance record for one candidate control
// signal: how it ranked, what probing it cost, and what it discharged.
type ExploreCandidate struct {
	Base string   // signal base name (split label spelling)
	Nets []string // member net names, declared order

	// Sites counts poisoned sites inside the candidate's forward cone —
	// the ranking key: a split can only discharge sites it reaches.
	Sites int
	// ConePrims/ConeNets are the structural forward-cone size of the
	// candidate's nets: the upper bound on work an incremental probe
	// re-evaluates.  Structural, so identical across engines and worker
	// counts — the deterministic "reverify cost" of the provenance.
	ConePrims int
	ConeNets  int
	// Probes counts incremental case evaluations spent on this candidate
	// (0 when ranking alone ruled it out).
	Probes int
	// Discharges indexes into Exploration.Sites: the sites this split
	// discharges on its own.
	Discharges []int
	// Chosen marks membership in the minimal cover.
	Chosen bool
}
