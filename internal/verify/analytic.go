package verify

import (
	"fmt"
	"sort"

	"scaldtv/internal/netlist"
	"scaldtv/internal/pathsearch"
	"scaldtv/internal/tick"
)

// Analytic delay mode (Options.Delays is AnalyticDelays): the relaxation
// itself runs on the design pinned at one parameter point θ0 — so
// violations, margins and waveforms are exactly what a constant-delay
// verification at that point produces — and a symbolic post-pass
// (internal/pathsearch.AnalyzeAnalytic) retains, for every collected
// constraint margin, the closed-form arrival function of its data pin.
// The resulting MarginSurface answers "what is the slack at parameter
// point θ" for any θ inside the declared box without re-running the
// engine:
//
//	late-arrival sites:  slack(θ) = slack(θ0) + L(θ0) − L(θ)
//	hold sites:          slack(θ) = slack(θ0) + E(θ) − E(θ0)
//
// where L/E are the max/min over the site's path-class terms, each term
// evaluated with exactly the per-primitive rounding Design.PinParams
// uses.  When the site's term set is Exact (survived the term cap) and
// the constraint's binding path stays the path-DP critical one across
// the box — the same regime assumption statistical mode makes — the
// surface is bit-identical to re-running the engine on the design pinned
// at θ, which is what the metamorphic suite locks.

// ParamBinding is one design parameter with its declared box and the
// value it was pinned to for the engine run (θ0).
type ParamBinding struct {
	Name   string
	Value  float64 // the anchor point θ0
	Lo, Hi float64 // the declared parameter box
}

// SurfaceSite is the symbolic margin function at one constraint site:
// the engine's slack at the anchor point plus the path-class terms that
// shift it as parameters move.
type SurfaceSite struct {
	Kind  ViolationKind
	Case  string
	Prim  string
	Data  string
	Clock string

	Slack0 tick.Time // engine slack at the anchor point θ0
	Hold   bool      // early-arrival site: slack grows as arrivals slow
	Anchor tick.Time // L(θ0) (late sites) or E(θ0) (hold sites)

	// Terms is the site's path-class set — Late terms for late-arrival
	// sites, Early terms for hold sites.  Exact records that the set
	// survived the term cap, i.e. the surface is the true path-DP
	// extremum everywhere in the box.
	Terms []pathsearch.Term
	Exact bool
}

// MarginSurface is the self-contained symbolic margin report of an
// analytic-mode verification: every constraint site's slack as a
// closed-form function over the declared parameter box.  It references
// nothing from the session that produced it, so it can be queried after
// the Verifier is gone.
type MarginSurface struct {
	// Params lists the design parameters in declared order, with the
	// anchor point the engine ran at.
	Params []ParamBinding
	// Sites lists the constraint sites in the result's margin order.
	Sites []SurfaceSite

	fns    []netlist.DelayFn
	byName map[string]int
}

// CornerSlack is one site's slack at a queried parameter point.
type CornerSlack struct {
	Site  int // index into MarginSurface.Sites
	Slack tick.Time
}

// point resolves a name → value override map against the surface's
// parameter bindings: parameters not named stay at the anchor point θ0.
// Unknown names and values outside the declared box are errors, reported
// for the lexically first bad name.
func (ms *MarginSurface) point(overrides map[string]float64) ([]float64, error) {
	vals := make([]float64, len(ms.Params))
	for i, p := range ms.Params {
		vals[i] = p.Value
	}
	names := make([]string, 0, len(overrides))
	for name := range overrides {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		i, ok := ms.byName[name]
		if !ok {
			return nil, fmt.Errorf("verify: margin surface has no parameter %q", name)
		}
		v := overrides[name]
		p := ms.Params[i]
		if v != v || v < p.Lo || v > p.Hi {
			return nil, fmt.Errorf("verify: parameter %s = %v outside its declared range [%v, %v]", name, v, p.Lo, p.Hi)
		}
		vals[i] = v
	}
	return vals, nil
}

// slackAt evaluates one site's margin function at a parameter vector.
func (ms *MarginSurface) slackAt(s *SurfaceSite, vals []float64) tick.Time {
	if s.Hold {
		e, ok := pathsearch.EvalTerms(s.Terms, ms.fns, false, vals)
		if !ok {
			return s.Slack0
		}
		return s.Slack0 + e - s.Anchor
	}
	l, ok := pathsearch.EvalTerms(s.Terms, ms.fns, true, vals)
	if !ok {
		return s.Slack0
	}
	return s.Slack0 + s.Anchor - l
}

// At evaluates every site's slack at a parameter point, given as
// overrides of the anchor point (nil = the anchor itself).  The returned
// slice aligns with Sites.
func (ms *MarginSurface) At(overrides map[string]float64) ([]tick.Time, error) {
	vals, err := ms.point(overrides)
	if err != nil {
		return nil, err
	}
	out := make([]tick.Time, len(ms.Sites))
	for i := range ms.Sites {
		out[i] = ms.slackAt(&ms.Sites[i], vals)
	}
	return out, nil
}

// Violations returns the sites violated (slack < 0) at a parameter
// point, in site order.
func (ms *MarginSurface) Violations(overrides map[string]float64) ([]CornerSlack, error) {
	slacks, err := ms.At(overrides)
	if err != nil {
		return nil, err
	}
	var out []CornerSlack
	for i, s := range slacks {
		if s < 0 {
			out = append(out, CornerSlack{Site: i, Slack: s})
		}
	}
	return out, nil
}

// maxCornerParams bounds the vertex enumeration of a binding-corner
// search, matching the netlist box-validation cap.
const maxCornerParams = 12

// BindingCorner returns the parameter point in the declared box that
// minimises site i's slack, together with that worst slack.  The margin
// function is the anchor slack shifted by a max (late) or min (hold) of
// affine terms, so its minimum over the box is attained at a box vertex;
// only the parameters the site's terms actually reference are swept (the
// rest stay at the anchor), and when more than maxCornerParams are
// referenced the search falls back to the per-parameter greedy corner —
// exact for single-term sites, a lower bound on slack otherwise.
func (ms *MarginSurface) BindingCorner(i int) (map[string]float64, tick.Time) {
	s := &ms.Sites[i]
	used := map[int32]bool{}
	for _, t := range s.Terms {
		for _, c := range t.Counts {
			af := ms.fns[c.Fn-1].Min
			if !s.Hold {
				af = ms.fns[c.Fn-1].Max
			}
			for _, co := range af.Coeffs {
				used[co.Param] = true
			}
		}
	}
	idx := make([]int32, 0, len(used))
	for p := range used {
		idx = append(idx, p)
	}
	sort.Slice(idx, func(a, b int) bool { return idx[a] < idx[b] })

	vals := make([]float64, len(ms.Params))
	for k, p := range ms.Params {
		vals[k] = p.Value
	}
	worst := ms.slackAt(s, vals)
	best := append([]float64(nil), vals...)

	if len(idx) > maxCornerParams {
		// Greedy fallback: walk each referenced parameter to whichever
		// end of its range hurts more, one at a time.
		for _, p := range idx {
			lo, hi := ms.Params[p].Lo, ms.Params[p].Hi
			vals[p] = lo
			sl := ms.slackAt(s, vals)
			vals[p] = hi
			if sh := ms.slackAt(s, vals); sh < sl {
				sl = sh
			} else {
				vals[p] = lo
			}
			if sl < worst {
				worst = sl
			}
		}
		copy(best, vals)
	} else {
		for bits := 0; bits < 1<<len(idx); bits++ {
			for k, p := range idx {
				if bits&(1<<k) != 0 {
					vals[p] = ms.Params[p].Hi
				} else {
					vals[p] = ms.Params[p].Lo
				}
			}
			if sl := ms.slackAt(s, vals); sl < worst {
				worst = sl
				copy(best, vals)
			}
		}
	}
	corner := make(map[string]float64, len(idx))
	for _, p := range idx {
		corner[ms.Params[p].Name] = best[p]
	}
	return corner, worst
}

// fillMarginSurface computes Result.MarginSurface from the collected
// margins and the design's symbolic arrival functions, anchored at the
// parameter vector the engine ran on.  Margins whose checker has no
// combinational path ending at it (clock-only sites, assertion
// cross-checks) have no arrival terms and are skipped, exactly as
// statistical mode skips them.
func (V *Verifier) fillMarginSurface(res *Result, vals []float64) {
	d := V.d
	sites, _ := pathsearch.AnalyzeAnalytic(d, 0)
	ms := &MarginSurface{
		fns:    d.DelayFns,
		byName: make(map[string]int, len(d.Params)),
	}
	for i, p := range d.Params {
		v := p.Default
		if vals != nil {
			v = vals[i]
		}
		ms.Params = append(ms.Params, ParamBinding{Name: p.Name, Value: v, Lo: p.Lo, Hi: p.Hi})
		ms.byName[p.Name] = i
	}
	byPrim := pathsearch.SiteTermsByPrim(sites)
	for _, m := range res.Margins {
		pins := byPrim[m.Prim]
		if len(pins) == 0 {
			continue
		}
		site := SurfaceSite{
			Kind:   m.Kind,
			Case:   m.Case,
			Prim:   m.Prim,
			Data:   m.Data,
			Clock:  m.Clock,
			Slack0: m.Slack(),
			Hold:   m.Kind == HoldViolation,
		}
		if site.Hold {
			// Early-arrival hazard: the binding pin is the one whose
			// earliest symbolic arrival at θ0 is smallest.  Ties resolve
			// to the first pin in the label-sorted order.
			best, bestV, ok := pickPin(pins, ms.fns, false, vals)
			if !ok {
				continue
			}
			site.Anchor = bestV
			site.Terms = best.Early
			site.Exact = best.EarlyExact
		} else {
			best, bestV, ok := pickPin(pins, ms.fns, true, vals)
			if !ok {
				continue
			}
			site.Anchor = bestV
			site.Terms = best.Late
			site.Exact = best.LateExact
		}
		ms.Sites = append(ms.Sites, site)
	}
	res.MarginSurface = ms
}

// pickPin selects the binding end pin of a constraint instance: the one
// with the extremal symbolic arrival at the anchor point (latest for
// late-arrival sites, earliest for hold sites).
func pickPin(pins []*pathsearch.SiteTerms, fns []netlist.DelayFn, late bool, vals []float64) (*pathsearch.SiteTerms, tick.Time, bool) {
	var best *pathsearch.SiteTerms
	var bestV tick.Time
	for _, p := range pins {
		terms := p.Early
		if late {
			terms = p.Late
		}
		v, ok := pathsearch.EvalTerms(terms, fns, late, vals)
		if !ok {
			continue
		}
		if best == nil || (late && v > bestV) || (!late && v < bestV) {
			best, bestV = p, v
		}
	}
	return best, bestV, best != nil
}
