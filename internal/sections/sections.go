// Package sections implements the paper's modular verification workflow
// (§2.5.2): a large design is verified section by section, each section a
// separate source file, with interface signals carrying timing assertions
// in their names.  "After each section is verified, SCALD checks to see
// that all interface signals have the same timing assertions on them.  If
// no section of a design being verified has a timing error and if all of
// the interface signals of all such sections have consistent assertions on
// them, then the entire design must be free of timing errors."
package sections

import (
	"fmt"
	"sort"
	"strings"

	"scaldtv/internal/expand"
	"scaldtv/internal/hdl"
	"scaldtv/internal/netlist"
	"scaldtv/internal/verify"
)

// Section is one verified design section.
type Section struct {
	Name   string
	Design *netlist.Design
	Result *verify.Result

	// Interface signals: produced (driven here) and consumed (undriven
	// here, relying on an assertion), by base name → assertion spelling.
	Produced map[string]string
	Consumed map[string]string
}

// Mismatch records an interface inconsistency between two sections.
type Mismatch struct {
	Signal             string
	SectionA, SectionB string
	AssertA, AssertB   string
}

// String renders the mismatch.
func (m Mismatch) String() string {
	return fmt.Sprintf("interface signal %q: %s asserts %q but %s asserts %q",
		m.Signal, m.SectionA, m.AssertA, m.SectionB, m.AssertB)
}

// Report is the outcome of a modular verification run.
type Report struct {
	Sections   []*Section
	Mismatches []Mismatch
	Violations int // total across sections
}

// Clean reports the §2.5.2 conclusion: every section verified without
// error and every shared interface assertion is consistent, so the whole
// design is free of timing errors.
func (r *Report) Clean() bool { return r.Violations == 0 && len(r.Mismatches) == 0 }

// Verify compiles and verifies each named section source independently and
// cross-checks the interface assertions.
func Verify(srcs map[string]string, opts verify.Options) (*Report, error) {
	rep := &Report{}
	var names []string
	for name := range srcs {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		f, err := hdl.Parse(srcs[name])
		if err != nil {
			return nil, fmt.Errorf("sections: %s: %v", name, err)
		}
		d, _, err := expand.Expand(f)
		if err != nil {
			return nil, fmt.Errorf("sections: %s: %v", name, err)
		}
		res, err := verify.Run(d, opts)
		if err != nil {
			return nil, fmt.Errorf("sections: %s: %v", name, err)
		}
		sec := &Section{
			Name: name, Design: d, Result: res,
			Produced: map[string]string{},
			Consumed: map[string]string{},
		}
		for i := range d.Nets {
			n := &d.Nets[i]
			if n.Assert == nil {
				continue
			}
			base := logicalBase(n.Base)
			if n.Driver == netlist.NoDriver {
				sec.Consumed[base] = n.Assert.String()
			} else {
				sec.Produced[base] = n.Assert.String()
			}
		}
		rep.Violations += len(res.Violations)
		rep.Sections = append(rep.Sections, sec)
	}

	// Interface consistency: any signal appearing in two sections — in
	// either role — must carry the same assertion spelling everywhere.
	type seenAt struct {
		section string
		assert  string
	}
	seen := map[string]seenAt{}
	record := func(secName, base, assert string) {
		if prev, ok := seen[base]; ok {
			if prev.assert != assert {
				rep.Mismatches = append(rep.Mismatches, Mismatch{
					Signal:   base,
					SectionA: prev.section, AssertA: prev.assert,
					SectionB: secName, AssertB: assert,
				})
			}
			return
		}
		seen[base] = seenAt{secName, assert}
	}
	for _, sec := range rep.Sections {
		for base, a := range sec.Produced {
			record(sec.Name, base, a)
		}
		for base, a := range sec.Consumed {
			record(sec.Name, base, a)
		}
	}
	sort.Slice(rep.Mismatches, func(i, j int) bool { return rep.Mismatches[i].Signal < rep.Mismatches[j].Signal })
	return rep, nil
}

// logicalBase strips a bit subscript so vector interfaces compare as one
// signal.
func logicalBase(base string) string {
	if i := strings.IndexByte(base, '<'); i > 0 && strings.HasSuffix(base, ">") {
		return base[:i]
	}
	return base
}

// String renders the modular verification summary.
func (r *Report) String() string {
	var sb strings.Builder
	sb.WriteString("MODULAR VERIFICATION (§2.5.2)\n\n")
	for _, sec := range r.Sections {
		status := "clean"
		if len(sec.Result.Violations) > 0 {
			status = fmt.Sprintf("%d violation(s)", len(sec.Result.Violations))
		}
		fmt.Fprintf(&sb, "  section %-24s %4d primitives  %s\n",
			sec.Name, len(sec.Design.Prims), status)
	}
	sb.WriteString("\n")
	if len(r.Mismatches) > 0 {
		sb.WriteString("  INTERFACE ASSERTION MISMATCHES\n")
		for _, m := range r.Mismatches {
			fmt.Fprintf(&sb, "    %s\n", m)
		}
		sb.WriteString("\n")
	}
	if r.Clean() {
		sb.WriteString("  every section clean, every interface consistent:\n")
		sb.WriteString("  the entire design is free of timing errors (§2.5.2)\n")
	} else {
		fmt.Fprintf(&sb, "  NOT CLEAN: %d violation(s), %d interface mismatch(es)\n",
			r.Violations, len(r.Mismatches))
	}
	return sb.String()
}
