// Package values implements the seven-value signal algebra and the periodic
// waveform representation at the core of the SCALD Timing Verifier
// (McWilliams 1980, §2.4.1, §2.4.2, §2.8).
//
// At any instant a signal has exactly one of seven values: the logic
// constants 0 and 1, STABLE (holding some unknown constant), CHANGE (may be
// changing), RISE (going from 0 to 1), FALL (going from 1 to 0), and UNKNOWN
// (the initial value of every signal).  Combinational functions over these
// values are uniformly defined to give worst-case results, e.g.
// STABLE OR RISING = RISING, so that a single symbolic evaluation of one
// clock period covers every state transition a conventional logic simulator
// would need exponentially many vectors to exercise.
package values

import "fmt"

// Value is one of the seven signal values.
type Value uint8

// The seven signal values (§2.4.1).
const (
	V0 Value = iota // logic false
	V1              // logic true
	VS              // STABLE: holding an unknown constant value
	VC              // CHANGE: may be changing
	VR              // RISE: going from 0 to 1
	VF              // FALL: going from 1 to 0
	VU              // UNKNOWN: initial value of all signals

	numValues = 7
)

// String returns the single-letter form used in the paper's listings.
func (v Value) String() string {
	switch v {
	case V0:
		return "0"
	case V1:
		return "1"
	case VS:
		return "S"
	case VC:
		return "C"
	case VR:
		return "R"
	case VF:
		return "F"
	case VU:
		return "U"
	}
	return fmt.Sprintf("Value(%d)", uint8(v))
}

// Name returns the long form used in error messages ("STABLE", "RISE", ...).
func (v Value) Name() string {
	switch v {
	case V0:
		return "0"
	case V1:
		return "1"
	case VS:
		return "STABLE"
	case VC:
		return "CHANGE"
	case VR:
		return "RISE"
	case VF:
		return "FALL"
	case VU:
		return "UNKNOWN"
	}
	return v.String()
}

// Stable reports whether the value is guaranteed not to be changing:
// 0, 1, or STABLE.
func (v Value) Stable() bool { return v == V0 || v == V1 || v == VS }

// Changing reports whether the value may be in transition: CHANGE, RISE or
// FALL.
func (v Value) Changing() bool { return v == VC || v == VR || v == VF }

// Known reports whether the value is defined (anything but UNKNOWN).
func (v Value) Known() bool { return v != VU }

// Const reports whether the value is a logic constant (0 or 1).
func (v Value) Const() bool { return v == V0 || v == V1 }

// Valid reports whether v is one of the seven defined values.
func (v Value) Valid() bool { return v < numValues }

// All lists the seven values, for table-driven and property tests.
var All = [numValues]Value{V0, V1, VS, VC, VR, VF, VU}

// The binary truth tables.  Every table is uniformly worst-case (§2.4.2):
// when the output could be any of several behaviours, the entry is the value
// covering all of them, preferring the most specific transition value (R or
// F) when the direction is determined and CHANGE otherwise.
var (
	orTable  [numValues][numValues]Value
	andTable [numValues][numValues]Value
	xorTable [numValues][numValues]Value
)

func init() {
	for _, a := range All {
		for _, b := range All {
			orTable[a][b] = orOf(a, b)
			andTable[a][b] = andOf(a, b)
			xorTable[a][b] = xorOf(a, b)
		}
	}
}

func orOf(a, b Value) Value {
	// 1 dominates regardless of the other input, including UNKNOWN.
	if a == V1 || b == V1 {
		return V1
	}
	// 0 is the identity.
	if a == V0 {
		return b
	}
	if b == V0 {
		return a
	}
	// With the dominant constant ruled out, UNKNOWN is contagious.
	if a == VU || b == VU {
		return VU
	}
	// Both are in {S, C, R, F}.
	if a == b {
		return a
	}
	if a == VS {
		return b // S OR R = R, S OR F = F, S OR C = C (worst case)
	}
	if b == VS {
		return a
	}
	// Two distinct transition values combine to CHANGE.
	return VC
}

func andOf(a, b Value) Value {
	if a == V0 || b == V0 {
		return V0
	}
	if a == V1 {
		return b
	}
	if b == V1 {
		return a
	}
	if a == VU || b == VU {
		return VU
	}
	if a == b {
		return a
	}
	if a == VS {
		return b
	}
	if b == VS {
		return a
	}
	return VC
}

func xorOf(a, b Value) Value {
	// XOR has no dominant constant, so UNKNOWN always wins.
	if a == VU || b == VU {
		return VU
	}
	if a == V0 {
		return b
	}
	if b == V0 {
		return a
	}
	if a == V1 {
		return Not(b)
	}
	if b == V1 {
		return Not(a)
	}
	if a == VS && b == VS {
		return VS
	}
	// A stable-but-unknown input turns a directed transition on the other
	// input into an undirected one, and any two transitioning inputs may
	// produce pulses in either direction.
	return VC
}

// Or returns the worst-case INCLUSIVE-OR of a and b.
func Or(a, b Value) Value { return orTable[a][b] }

// And returns the worst-case AND of a and b.
func And(a, b Value) Value { return andTable[a][b] }

// Xor returns the worst-case EXCLUSIVE-OR of a and b.
func Xor(a, b Value) Value { return xorTable[a][b] }

// Not returns the complement.  RISE and FALL exchange; 0 and 1 exchange;
// STABLE, CHANGE and UNKNOWN are self-complementary.
func Not(a Value) Value {
	switch a {
	case V0:
		return V1
	case V1:
		return V0
	case VR:
		return VF
	case VF:
		return VR
	}
	return a
}

// Chg is the CHANGE function (§2.4.2): UNKNOWN if any input is undefined,
// CHANGE if any defined input is changing, otherwise STABLE.  It models
// complex combinational logic — parity trees, adders, ALUs — whose actual
// function is irrelevant to timing.
func Chg(ins ...Value) Value {
	out := VS
	for _, v := range ins {
		if v == VU {
			return VU
		}
		if v.Changing() {
			out = VC
		}
	}
	return out
}

// Either returns the worst-case value of a signal known to be *one of* a or
// b, with no ordering between them.  It is the data-combination rule for
// multiplexers whose select input is STABLE: if both candidates are stable
// the output is stable (it is one constant or the other); a transition on
// either candidate is taken at face value.
func Either(a, b Value) Value {
	if a == b {
		return a
	}
	if a == VU || b == VU {
		return VU
	}
	if a.Stable() && b.Stable() {
		return VS
	}
	if a.Stable() {
		return b
	}
	if b.Stable() {
		return a
	}
	return VC
}

// Mix returns the value of an *ordered* transition band: the signal was a
// and is becoming b, with the instant of the transition uncertain within the
// band.  This is how separately-carried skew is folded into a waveform
// (§2.8, Fig 2-9): a 0→1 boundary widens into a RISE band, 1→0 into FALL,
// and transitions without a determined direction into CHANGE.
func Mix(a, b Value) Value {
	if a == b {
		return a
	}
	if a == VU || b == VU {
		return VU
	}
	switch {
	case a == V0 && b == V1, a == V0 && b == VR, a == VR && b == V1:
		return VR
	case a == V1 && b == V0, a == V1 && b == VF, a == VF && b == V0:
		return VF
	}
	return VC
}

// Mux2 returns the worst-case output of a two-input multiplexer with select
// s, and data inputs a (selected when s=0) and b (selected when s=1).
func Mux2(s, a, b Value) Value {
	switch {
	case s == V0:
		return a
	case s == V1:
		return b
	case s == VU:
		return VU
	case s == VS:
		return Either(a, b)
	}
	// Select is changing: the output may switch between the two data
	// values at any time within the select transition, unless both data
	// inputs are the same logic constant.
	if a == b && a.Const() {
		return a
	}
	if a == VU || b == VU {
		return VU
	}
	return VC
}

// MuxN returns the worst-case output of an n-input multiplexer whose select
// field has the given aggregate value (fold the select bits with Chg-style
// classification: constant selects must be folded by the caller into an
// index; here sel conveys only stable/changing/unknown).  ins are the
// candidate data inputs.
func MuxN(sel Value, ins ...Value) Value {
	if len(ins) == 0 {
		return VU
	}
	switch {
	case sel == VU:
		return VU
	case sel.Changing():
		out := ins[0]
		same := true
		for _, v := range ins[1:] {
			if v != out {
				same = false
			}
		}
		if same && out.Const() {
			return out
		}
		for _, v := range ins {
			if v == VU {
				return VU
			}
		}
		return VC
	}
	// Stable select of unknown value: output is one of the inputs.
	out := ins[0]
	for _, v := range ins[1:] {
		out = Either(out, v)
	}
	return out
}
