// Levelized wavefront relaxation: the IntraWorkers > 1 engine.
//
// The serial engine (§2.9) drains one FIFO worklist.  This engine relaxes
// the same seed over the design's cached levelization
// (netlist.Levelization): the primitive graph condensed into strongly
// connected components with sequential edges cut, combinational components
// assigned topological levels.  A sweep walks the levels in ascending
// order, evaluating each level's pending components concurrently on a
// small worker pool, then runs the sequential components (those containing
// storage) in a single serial phase.  Stores made in the serial phase
// schedule their cross-component consumers for the NEXT sweep; sweeps
// repeat until nothing is pending.
//
// Why this is race-free:
//
//   - Components on one level share no dependency edge, and a dependency
//     between combinational components always points to a strictly higher
//     level, so two concurrently running components never touch the same
//     net: every shared write (sigs, sigID, changed, altOut, wiredOut)
//     lands at an index owned by exactly one component.
//   - Workers never write scheduling state for other components.  All
//     cross-component marking happens at the level barrier, on the calling
//     goroutine, from the per-task changed-net lists; the WaitGroup
//     provides the happens-before edge for everything the workers wrote.
//   - The interner and evaluation cache are internally striped and
//     synchronized.
//
// Why this is deterministic: the relaxation is a confluent fixed-point
// iteration, so the converged waveforms are schedule-independent, and
// every decision that affects *reported* output — the pending sets, the
// sweep count, the evaluation budgets, the convergence verdict — is made
// either inside one component (serial) or at a barrier from
// order-independent sums.  Reports are bit-identical to the serial engine
// for every worker count; only wall-clock time and the cache hit/miss
// split vary.
package verify

import (
	"sync"
	"sync/atomic"

	"scaldtv/internal/netlist"
)

// compResult is what one component evaluation reports back to the barrier:
// work counters, the nets whose stored signal changed (with repeats, for
// feedback components that move a net more than once), and whether the
// component still has pending members and must run again next sweep.
// changed is a capacity-capped span of the worker scratch's accumulation
// buffer, valid until the barrier truncates the buffer after marking.
type compResult struct {
	evals   int
	events  int
	again   bool // a feedback component used up this sweep's budget
	changed []netlist.NetID
}

// runComp evaluates one component's pending members using the given
// scratch.  Non-feedback components hold a single primitive with no
// self-loop: one evaluation suffices, because any input change from this
// very evaluation would be a cycle.  Feedback components iterate a scoped
// worklist — fanout is followed only to members of the same component —
// toward a local fixed point, but only within a small per-sweep budget:
// a loop whose inputs are still settling (its driving storage runs in the
// serial phase, between sweeps) must not burn the whole evaluation budget
// chasing a moving target, the way the serial FIFO naturally interleaves
// loop iteration with the rest of the circuit.  Members still pending when
// the budget runs out stay marked and the component reports again=true, so
// the barrier reschedules it for the next sweep; only the caller's global
// pass cap declares non-convergence.
func (v *verifier) runComp(ci int32, sc *evalScratch, pending []bool, lev *netlist.Levelization) compResult {
	c := &lev.Comps[ci]
	var r compResult
	n0 := len(sc.changed)
	// span caps the result's view of the scratch buffer at its current
	// length, so later appends by the same worker can never alias it (a
	// relocated backing array keeps the already-written prefix valid).
	span := func() []netlist.NetID { return sc.changed[n0:len(sc.changed):len(sc.changed)] }
	if !c.Feedback {
		for _, m := range c.Members {
			if !pending[m] {
				continue
			}
			pending[m] = false
			r.evals++
			sc.changed = v.evalPrim(m, sc, sc.changed)
		}
		r.events = len(sc.changed) - n0
		r.changed = span()
		return r
	}

	budget := defaultEvalsPerPrim * len(c.Members)
	queue := make([]netlist.PrimID, 0, len(c.Members))
	inQ := make(map[netlist.PrimID]bool, len(c.Members))
	for _, m := range c.Members {
		if pending[m] {
			pending[m] = false
			queue = append(queue, m)
			inQ[m] = true
		}
	}
	var buf []netlist.NetID
	for qi := 0; qi < len(queue); qi++ {
		if r.evals >= budget {
			// Out of budget this sweep: hand the unprocessed tail back to
			// the pending set and ask for another sweep.
			for _, m := range queue[qi:] {
				if inQ[m] {
					pending[m] = true
				}
			}
			r.again = true
			r.changed = span()
			return r
		}
		m := queue[qi]
		inQ[m] = false
		r.evals++
		buf = v.evalPrim(m, sc, buf[:0])
		for _, id := range buf {
			r.events++
			sc.changed = append(sc.changed, id)
			for _, q := range v.d.Nets[id].Fanout {
				if lev.Comp[q] != ci || inQ[q] {
					continue
				}
				inQ[q] = true
				queue = append(queue, q)
			}
		}
	}
	r.changed = span()
	return r
}

// wavefrontRelax converges the seeded worklist by levelized sweeps.  It
// reports whether the fixed point was reached within the pass cap.
//
// This is also the compiled tape's execution loop (v.prog != nil): the
// levelization comes from the program, each level's components are read
// from the tape's contiguous level spans, and with one worker the level
// runs inline on the calling goroutine — the serial tape sweep.  The
// relaxation is the same confluent fixed-point iteration either way, so
// results are bit-identical to the serial FIFO engine.
func (v *verifier) wavefrontRelax() bool {
	lev := v.d.Levelization()
	if v.prog != nil {
		lev = v.prog.Lev
	}
	nWorkers := v.opts.intraWorkers()
	if v.wfScratch == nil {
		v.wfScratch = make([]*evalScratch, nWorkers)
		for i := range v.wfScratch {
			v.wfScratch[i] = v.newScratch()
		}
	}
	capN := v.passCap()

	// Drain the seeded FIFO into wavefront marks: pending per primitive,
	// plus a dirty flag per component routing it to the parallel levels or
	// the serial phase.
	pending := make([]bool, len(v.d.Prims))
	compPending := make([]bool, len(lev.Comps))
	seqPending := make([]bool, len(lev.Comps))
	seqNext := make([]bool, len(lev.Comps))
	for v.queueLen() > 0 {
		p := v.popQueue()
		v.inQueue[p] = false
		ci := lev.Comp[p]
		if ci < 0 {
			continue
		}
		pending[p] = true
		if lev.Comps[ci].Seq {
			seqPending[ci] = true
		} else {
			compPending[ci] = true
		}
	}

	// mark schedules every cross-component consumer of a changed net.  Seq
	// consumers go to seqDst — this sweep's serial phase from the parallel
	// phase, the next sweep from the serial phase.  Comb consumers go to
	// compPending: from the parallel phase they sit at a strictly higher
	// level and run later this sweep; from the serial phase the mark
	// survives into the next sweep's parallel phase.
	mark := func(changed []netlist.NetID, src int32, seqDst []bool) {
		for _, id := range changed {
			for _, q := range v.d.Nets[id].Fanout {
				cq := lev.Comp[q]
				if cq < 0 || cq == src {
					continue
				}
				pending[q] = true
				if lev.Comps[cq].Seq {
					seqDst[cq] = true
				} else {
					compPending[cq] = true
				}
			}
		}
	}
	dirty := func() bool {
		for _, b := range compPending {
			if b {
				return true
			}
		}
		for _, b := range seqPending {
			if b {
				return true
			}
		}
		return false
	}

	var tasks []int32
	var results []compResult
	for dirty() {
		// Cancellation is polled only between sweeps and at level
		// barriers — schedule-neutral points where no worker is running —
		// so an aborted run never exposes a partially marked sweep.
		if err := v.ctxCheck(); err != nil {
			return false
		}
		v.sweeps++

		// Parallel phase: levels in ascending order, each level's pending
		// components fanned out over the worker pool.  On the tape the
		// level is a contiguous span of the component order.
		for li := range lev.Levels {
			level := lev.Levels[li]
			if v.prog != nil {
				span := v.prog.LevelSpan[li]
				level = v.prog.CompOrder[span[0]:span[1]]
			}
			tasks = tasks[:0]
			for _, ci := range level {
				if compPending[ci] {
					compPending[ci] = false
					tasks = append(tasks, ci)
				}
			}
			if len(tasks) == 0 {
				continue
			}
			if cap(results) < len(tasks) {
				results = make([]compResult, len(tasks))
			}
			results = results[:len(tasks)]
			if len(tasks) == 1 || nWorkers == 1 {
				for i := range tasks {
					results[i] = v.runComp(tasks[i], v.wfScratch[0], pending, lev)
				}
			} else {
				nw := nWorkers
				if nw > len(tasks) {
					nw = len(tasks)
				}
				var next atomic.Int64
				var wg sync.WaitGroup
				for w := 0; w < nw; w++ {
					wg.Add(1)
					go func(sc *evalScratch) {
						defer wg.Done()
						for {
							i := next.Add(1) - 1
							if i >= int64(len(tasks)) {
								return
							}
							results[i] = v.runComp(tasks[i], sc, pending, lev)
						}
					}(v.wfScratch[w])
				}
				wg.Wait()
			}

			// Barrier: fold counters (order-independent sums) and check the
			// global cap, then do all cross-component marking serially.
			// Budget-exhausted feedback components rerun next sweep.
			for i := range results {
				v.evals += results[i].evals
				v.events += results[i].events
			}
			if v.evals >= capN {
				return false
			}
			if err := v.ctxCheck(); err != nil {
				return false
			}
			for i, ci := range tasks {
				if results[i].again {
					compPending[ci] = true
				}
				mark(results[i].changed, ci, seqPending)
			}
			// The changed spans are consumed; recycle every worker's
			// accumulation buffer for the next level.
			for _, sc := range v.wfScratch {
				sc.changed = sc.changed[:0]
			}
		}

		// Serial phase: sequential components in ascending order, on the
		// calling goroutine.  Their stores defer cross-component consumers
		// to the next sweep, so a concurrently evaluating reader can never
		// exist — there are none running here.
		for _, ci := range lev.Seq {
			if !seqPending[ci] {
				continue
			}
			seqPending[ci] = false
			r := v.runComp(ci, v.wfScratch[0], pending, lev)
			v.evals += r.evals
			v.events += r.events
			if v.evals >= capN {
				return false
			}
			if r.again {
				seqNext[ci] = true
			}
			mark(r.changed, ci, seqNext)
			v.wfScratch[0].changed = v.wfScratch[0].changed[:0]
		}
		seqPending, seqNext = seqNext, seqPending
	}
	return true
}
