package gen

import (
	"fmt"
	"testing"

	"scaldtv/internal/verify"
)

// The knob defaults must be invisible: spelling out the historical shape
// (32-bit datapath, two decode levels, no feedback) produces byte-for-byte
// the same source as leaving the knobs zero, so every existing golden,
// test and benchmark keeps its exact workload.
func TestKnobDefaultsMatchLegacyShape(t *testing.T) {
	plain := Source(Config{Chips: 102, Cases: 2, Inject: 1})
	spelled := Source(Config{Chips: 102, Cases: 2, Inject: 1, Width: 32, Depth: 2})
	if plain != spelled {
		t.Fatal("Width=32/Depth=2 must reproduce the default source exactly")
	}
}

// Every knob setting must still produce a design that compiles and
// verifies cleanly — wider and narrower datapaths, deeper decode chains,
// and combinational feedback loops that have to relax to a fixed point.
func TestKnobVariantsVerifyClean(t *testing.T) {
	cfgs := []Config{
		{Chips: 3 * chipsPerStage, Width: 8},
		{Chips: 3 * chipsPerStage, Width: 16},
		{Chips: 3 * chipsPerStage, Width: 64},
		{Chips: 3 * chipsPerStage, Depth: 5},
		{Chips: 3 * chipsPerStage, Feedback: 1.0},
		{Chips: 6 * chipsPerStage, Width: 48, Depth: 4, Feedback: 0.5},
	}
	for _, cfg := range cfgs {
		cfg := cfg
		name := fmt.Sprintf("w%d_d%d_fb%.2f", cfg.Width, cfg.Depth, cfg.Feedback)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			d, rep, err := Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Primitives == 0 {
				t.Fatal("empty design")
			}
			res, err := verify.Run(d, verify.Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range res.Violations[:min(len(res.Violations), 5)] {
				t.Errorf("violation: %v", v)
			}
		})
	}
}

// The feedback knob must manufacture genuine combinational cycles: the
// levelization has to report feedback SCCs, and both the serial worklist
// and the wavefront scheduler must relax them to the same clean report.
func TestFeedbackKnobCreatesRelaxableSCCs(t *testing.T) {
	d, _, err := Generate(Config{Chips: 4 * chipsPerStage, Feedback: 0.75})
	if err != nil {
		t.Fatal(err)
	}
	lev := d.Levelization()
	if lev.Feedback == 0 {
		t.Fatal("Feedback=0.75 produced no feedback SCCs")
	}
	serial, err := verify.Run(d, verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wave, err := verify.Run(d, verify.Options{IntraWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Errors() || wave.Errors() {
		t.Fatalf("feedback loops must converge cleanly: serial=%v wavefront=%v",
			serial.Violations, wave.Violations)
	}
	if len(serial.Violations) != len(wave.Violations) {
		t.Fatalf("schedules disagree: %d vs %d violations",
			len(serial.Violations), len(wave.Violations))
	}
}
