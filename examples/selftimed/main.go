// Self-timed module characterisation (§4.2.1): in a self-timed design each
// module signals "done" after its own worst-case latency, and the paper
// notes the verification technique "could be used to determine the delay
// of the basic modules, to determine how much of a delay needs to be
// inserted in the circuit which specifies when the module is done."
//
// This example measures an adder-like module's input→output latency with
// the path analysis, sizes the done-delay from it, and then confirms with
// the verifier that a completion strobe generated after that delay safely
// samples the result — while a strobe sized from the typical (statistical
// mean) delay is flagged.
//
//	go run ./examples/selftimed
package main

import (
	"fmt"
	"log"

	"scaldtv"
	"scaldtv/internal/pathsearch"
)

const module = `
design "SELF TIMED ADDER"
period 100ns
clockunit 1ns
defaultwire 0ns 1ns

; A ripple-of-CHG adder model: four nibble stages, each 2.0/4.5 ns.
chg "STAGE 0" delay=(2.0,4.5) ("A OP .S0-60"<0:3>, "B OP .S0-60"<0:3>) -> ("C0")
chg "STAGE 1" delay=(2.0,4.5) ("A OP .S0-60"<4:7>, "B OP .S0-60"<4:7>, "C0") -> ("C1")
chg "STAGE 2" delay=(2.0,4.5) ("A OP .S0-60"<8:11>, "B OP .S0-60"<8:11>, "C1") -> ("C2")
chg "STAGE 3" delay=(2.0,4.5) ("A OP .S0-60"<12:15>, "B OP .S0-60"<12:15>, "C2") -> ("SUM")
`

func main() {
	d, err := scaldtv.Compile(module)
	if err != nil {
		log.Fatal(err)
	}
	lat, err := pathsearch.ModuleDelay(d, []string{"A OP", "B OP"}, []string{"SUM"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("module latency (inputs → SUM): %s ns\n", lat)
	fmt.Printf("done-delay to insert: %s ns (the worst case, §4.2.1)\n\n", lat.Max)

	// A strobe generated that long after the operands arrive samples a
	// stable SUM; the operands are stable 0–60 ns, so the result of the
	// *previous* arrival window is checked around the strobe.
	run := func(doneNS float64) {
		src := module + fmt.Sprintf(`
setuphold "DONE CHK" setup=0.5 hold=0.5 ("SUM", "DONE .P(0,0)%g+2.0")
`, doneNS)
		res, err := scaldtv.VerifySource(src, scaldtv.Options{})
		if err != nil {
			log.Fatal(err)
		}
		verdict := "safe: SUM stable at the strobe"
		if res.Errors() {
			verdict = fmt.Sprintf("UNSAFE: %s", res.Violations[0].Kind)
		}
		fmt.Printf("done strobe at %5.1f ns after cycle start → %s\n", doneNS, verdict)
	}
	// The operands change during 60–100 ns and are stable from 0: SUM is
	// guaranteed stable from the worst-case latency after the cycle start.
	// The done path must also cover the sampling pin's interconnection
	// (up to 1 ns) and the checker's own 0.5 ns set-up.
	run(lat.Max.NS() + 2) // sized from the measured worst case: safe
	run(8 + 2)            // sized from a "typical" 8 ns guess: flagged
}
