package scaldtv

import (
	"bytes"
	"testing"

	"scaldtv/internal/gen"
	"scaldtv/internal/report"
	"scaldtv/internal/verify"
)

// FuzzTapeDifferential fuzzes the tape-vs-interpreter equivalence over the
// generated design family: for any design shape and worker combination,
// the compiled evaluation tape (with its warm slots, persistent memos and
// pooled run state) must render a JSON report byte-identical to the
// interpreter's.  The fuzzer steers the generator's structural knobs —
// pipeline size, datapath width, decode depth, injected failures, case
// analysis, variable-length cycles, feedback fraction — plus the engine's
// parallelism, so a miscompiled opcode, a stale slot hit or a pool reuse
// bug shows up as a report diff.
func FuzzTapeDifferential(f *testing.F) {
	f.Add(uint8(3), uint8(0), uint8(0), uint8(0), false, uint8(0), uint8(1), uint8(1))
	f.Add(uint8(12), uint8(1), uint8(2), uint8(1), false, uint8(0), uint8(2), uint8(1))
	f.Add(uint8(25), uint8(2), uint8(3), uint8(2), true, uint8(2), uint8(1), uint8(2))
	f.Add(uint8(40), uint8(0), uint8(4), uint8(3), false, uint8(5), uint8(2), uint8(8))
	f.Add(uint8(8), uint8(3), uint8(1), uint8(0), true, uint8(9), uint8(8), uint8(2))
	f.Fuzz(func(t *testing.T, chips, inject, cases, depth uint8, varCycle bool, feedback, workers, intra uint8) {
		cfg := gen.Config{
			Chips:         1 + int(chips)%60,
			Inject:        int(inject) % 4,
			Cases:         int(cases) % 5,
			Depth:         int(depth) % 5,
			VariableCycle: varCycle,
			Width:         8,
			Feedback:      float64(feedback%10) / 10,
		}
		d, _, err := gen.Generate(cfg)
		if err != nil {
			t.Skip() // an unbuildable shape is the generator's concern
		}
		opts := verify.Options{
			Workers:      1 + int(workers)%8,
			IntraWorkers: 1 + int(intra)%8,
			KeepWaves:    true,
			Margins:      true,
		}
		tapeRes, err := verify.Run(d, opts)
		if err != nil {
			t.Fatalf("tape run: %v", err)
		}
		interpOpts := opts
		interpOpts.NoTape = true
		interpRes, err := verify.Run(d, interpOpts)
		if err != nil {
			t.Fatalf("interpreter run: %v", err)
		}
		tj, err := report.JSON(tapeRes)
		if err != nil {
			t.Fatalf("tape json: %v", err)
		}
		ij, err := report.JSON(interpRes)
		if err != nil {
			t.Fatalf("interpreter json: %v", err)
		}
		if !bytes.Equal(tj, ij) {
			t.Fatalf("tape and interpreter reports differ for %+v %+v:\ntape:   %s\ninterp: %s",
				cfg, opts, tj, ij)
		}
	})
}
