// Command benchjson converts `go test -bench` output into a JSON document
// suitable for archiving as a CI artifact, and can render a markdown
// comparison of cache=true vs cache=false benchmark pairs for the job
// summary.
//
// Usage:
//
//	go test -bench Table31 -benchmem -count=3 | benchjson -out BENCH_PR2.json -summary
//
//	-out file     write the JSON document to file (default: stdout)
//	-summary      print a markdown cache-on/off comparison table to stdout
//	-prev file    compare against a previous run's JSON document: print a
//	              markdown diff of best ns/op per matched benchmark name and
//	              exit nonzero when any matched name regressed by more than
//	              25%
//	-ignore re    exclude benchmark names matching the regexp from the
//	              -prev comparison (they stay in the archived JSON); use it
//	              to add benchmark families without a baseline, e.g.
//	              -ignore '^BenchmarkServer'
//
// Input is read from the files named on the command line, or from stdin
// when none are given.  Lines that are not benchmark results or header
// lines (goos/goarch/pkg/cpu) are ignored, so the raw `go test` output can
// be piped in unfiltered.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Sample is one benchmark result line.  Metrics maps unit → value and
// always includes "ns/op"; with -benchmem it also has "B/op" and
// "allocs/op", plus any b.ReportMetric extras (e.g. "events", "hits").
type Sample struct {
	Name       string             `json:"name"` // sub-benchmark path, GOMAXPROCS suffix stripped
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Doc is the archived document.
type Doc struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Samples []Sample `json:"samples"`
}

func main() {
	out := flag.String("out", "", "write the JSON document to this file (default: stdout)")
	summary := flag.Bool("summary", false, "print a markdown cache-on/off comparison to stdout")
	prev := flag.String("prev", "", "previous run's JSON document to diff against (fails on >25% ns/op regression)")
	ignore := flag.String("ignore", "", "regexp of benchmark names to exclude from the -prev comparison")
	flag.Parse()

	var ignoreRE *regexp.Regexp
	if *ignore != "" {
		re, err := regexp.Compile(*ignore)
		if err != nil {
			fail(fmt.Errorf("-ignore: %v", err))
		}
		ignoreRE = re
	}

	var doc Doc
	if flag.NArg() == 0 {
		if err := parse(&doc, os.Stdin); err != nil {
			fail(err)
		}
	} else {
		for _, path := range flag.Args() {
			f, err := os.Open(path)
			if err != nil {
				fail(err)
			}
			err = parse(&doc, f)
			f.Close()
			if err != nil {
				fail(err)
			}
		}
	}
	if len(doc.Samples) == 0 {
		fail(fmt.Errorf("no benchmark result lines found in input"))
	}

	enc, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		fail(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fail(err)
	}

	if *summary {
		fmt.Print(cacheSummary(&doc))
	}
	if *prev != "" {
		data, err := os.ReadFile(*prev)
		if err != nil {
			fail(err)
		}
		var prevDoc Doc
		if err := json.Unmarshal(data, &prevDoc); err != nil {
			fail(fmt.Errorf("%s: %v", *prev, err))
		}
		md, regressed := regressionDiff(&prevDoc, &doc, regressionLimit, ignoreRE)
		fmt.Print(md)
		if regressed {
			fail(fmt.Errorf("benchmark regression over %.0f%% against %s", (regressionLimit-1)*100, *prev))
		}
	}
}

// regressionLimit is the ns/op growth factor beyond which the -prev
// comparison fails the run: 1.25 means a matched benchmark may be at most
// 25% slower than the previous archived run.
const regressionLimit = 1.25

// bestByName reduces a document to the minimum-ns/op sample per benchmark
// name, the same aggregation the pair summary uses for noisy CI machines.
func bestByName(doc *Doc) map[string]Sample {
	best := map[string]Sample{}
	for _, s := range doc.Samples {
		if b, ok := best[s.Name]; !ok || s.Metrics["ns/op"] < b.Metrics["ns/op"] {
			best[s.Name] = s
		}
	}
	return best
}

// regressionDiff renders a markdown table of best ns/op for every
// benchmark name present in both documents, and reports whether any
// matched name's time grew past limit × the previous best.  Names present
// in only one document are listed but never fail the run — renamed or new
// benchmarks have no baseline to regress against.  Names matching ignore
// are left out of the comparison entirely (only their count is noted).
func regressionDiff(prev, cur *Doc, limit float64, ignore *regexp.Regexp) (string, bool) {
	pb, cb := bestByName(prev), bestByName(cur)
	ignored := 0
	if ignore != nil {
		for name := range cb {
			if ignore.MatchString(name) {
				delete(cb, name)
				ignored++
			}
		}
		for name := range pb {
			if ignore.MatchString(name) {
				delete(pb, name)
			}
		}
	}
	var names []string
	for name := range cb {
		names = append(names, name)
	}
	sort.Strings(names)

	var sb strings.Builder
	sb.WriteString("### Benchmark regression check\n\n")
	fmt.Fprintf(&sb, "Best ns/op per name vs the previous archived run; fails over %.2fx.\n\n", limit)
	sb.WriteString("| benchmark | prev ns/op | now ns/op | ratio | verdict |\n")
	sb.WriteString("|---|---:|---:|---:|---|\n")
	regressed := false
	matched := 0
	for _, name := range names {
		c := cb[name]
		p, ok := pb[name]
		if !ok {
			fmt.Fprintf(&sb, "| %s | — | %s | | new |\n", name, num(c.Metrics["ns/op"]))
			continue
		}
		matched++
		prevNS, nowNS := p.Metrics["ns/op"], c.Metrics["ns/op"]
		ratio := 0.0
		if prevNS > 0 {
			ratio = nowNS / prevNS
		}
		verdict := "ok"
		if ratio > limit {
			verdict = "REGRESSED"
			regressed = true
		}
		fmt.Fprintf(&sb, "| %s | %s | %s | %.2fx | %s |\n",
			name, num(prevNS), num(nowNS), ratio, verdict)
	}
	var removed []string
	for name := range pb {
		if _, ok := cb[name]; !ok {
			removed = append(removed, name)
		}
	}
	sort.Strings(removed)
	for _, name := range removed {
		fmt.Fprintf(&sb, "| %s | %s | — | | removed |\n", name, num(pb[name].Metrics["ns/op"]))
	}
	if matched == 0 {
		sb.WriteString("| _no matched benchmark names_ | | | | |\n")
	}
	if ignored > 0 {
		fmt.Fprintf(&sb, "\n%d benchmark name(s) excluded by -ignore %s\n", ignored, ignore)
	}
	return sb.String(), regressed
}

// parse appends every benchmark line in r to doc and picks up the
// goos/goarch/pkg/cpu header lines.
func parse(doc *Doc, r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			s, ok := parseLine(line)
			if !ok {
				continue
			}
			doc.Samples = append(doc.Samples, s)
		}
	}
	return sc.Err()
}

// parseLine parses one "BenchmarkName-8  100  123 ns/op  ..." result line.
func parseLine(line string) (Sample, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Sample{}, false
	}
	s := Sample{Name: fields[0], Procs: 1, Metrics: map[string]float64{}}
	if i := strings.LastIndex(s.Name, "-"); i >= 0 {
		if p, err := strconv.Atoi(s.Name[i+1:]); err == nil {
			s.Name, s.Procs = s.Name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Sample{}, false
	}
	s.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Sample{}, false
		}
		s.Metrics[fields[i+1]] = v
	}
	return s, true
}

// pairings lists the recognised on/off path elements.  The "on" setting
// is the optimised one; speedups are reported as off-time / on-time.
var pairings = []struct{ on, off, onLabel, offLabel string }{
	{"cache=true", "cache=false", "cache on", "cache off"},
	{"mode=incremental", "mode=full", "incremental", "full"},
	{"intra=8", "intra=1", "intra wavefront", "serial"},
}

// pairKey strips a recognised on/off path element (cache=true/false,
// mode=incremental/full) so the two settings of one benchmark collapse
// onto the same key, and returns the display labels for the pair.
func pairKey(name string) (key string, on bool, labels [2]string, isPair bool) {
	parts := strings.Split(name, "/")
	for i, p := range parts {
		for _, pr := range pairings {
			if p == pr.on || p == pr.off {
				key = strings.Join(append(append([]string{}, parts[:i]...), parts[i+1:]...), "/")
				return key, p == pr.on, [2]string{pr.onLabel, pr.offLabel}, true
			}
		}
	}
	return name, false, labels, false
}

// agg holds the best (minimum ns/op) sample per benchmark name, the
// convention benchstat-style comparisons use for noisy CI machines.
type agg struct {
	best Sample
	n    int
}

// cacheSummary renders a markdown table comparing every recognised
// on/off pair (cache on/off, incremental/full), for $GITHUB_STEP_SUMMARY.
func cacheSummary(doc *Doc) string {
	type pair struct {
		on, off *agg
		labels  [2]string
	}
	pairs := map[string]*pair{}
	var order []string
	for _, s := range doc.Samples {
		key, on, labels, isPair := pairKey(s.Name)
		if !isPair {
			continue
		}
		p := pairs[key]
		if p == nil {
			p = &pair{labels: labels}
			pairs[key] = p
			order = append(order, key)
		}
		slot := &p.off
		if on {
			slot = &p.on
		}
		if *slot == nil {
			*slot = &agg{best: s, n: 1}
		} else {
			(*slot).n++
			if s.Metrics["ns/op"] < (*slot).best.Metrics["ns/op"] {
				(*slot).best = s
			}
		}
	}
	sort.Strings(order)

	var sb strings.Builder
	sb.WriteString("### Benchmark pair comparison\n\n")
	sb.WriteString("Best of the repeated runs per setting (min ns/op).\n\n")
	sb.WriteString("| benchmark | setting | ns/op | B/op | allocs/op | speedup |\n")
	sb.WriteString("|---|---|---:|---:|---:|---:|\n")
	wrote := false
	for _, key := range order {
		p := pairs[key]
		if p.on == nil || p.off == nil {
			continue
		}
		wrote = true
		on, off := p.on.best.Metrics, p.off.best.Metrics
		speedup := "n/a"
		if on["ns/op"] > 0 {
			speedup = fmt.Sprintf("%.2fx", off["ns/op"]/on["ns/op"])
		}
		fmt.Fprintf(&sb, "| %s | %s | %s | %s | %s | %s |\n",
			key, p.labels[0], num(on["ns/op"]), num(on["B/op"]), num(on["allocs/op"]), speedup)
		fmt.Fprintf(&sb, "| %s | %s | %s | %s | %s | |\n",
			key, p.labels[1], num(off["ns/op"]), num(off["B/op"]), num(off["allocs/op"]))
	}
	if !wrote {
		sb.WriteString("| _no paired settings in input_ | | | | | |\n")
	}
	return sb.String()
}

func num(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'f', 1, 64)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
