package store

import (
	"context"
	"sort"

	"scaldtv/internal/expand"
	"scaldtv/internal/hdl"
	"scaldtv/internal/netlist"
	"scaldtv/internal/report"
	"scaldtv/internal/serr"
	"scaldtv/internal/verify"
)

// The verification-aware layer over the blob store: content addresses
// come from verify.Fingerprint, exact hits answer with the stored
// report bytes, near hits (same structure, edited parameters) restore
// the stored snapshot and re-verify only the diff cone, and misses run
// cold — saving their outcome for next time.  Every degraded path —
// corrupt blob, undecodable snapshot, stored source that no longer
// compiles — falls through to the next colder path, never to an error
// the engine itself would not have produced.

// Provenance names how a verification outcome was obtained.
type Provenance string

const (
	// Cached: the exact (design, options) pair was already verified; the
	// stored report was served without running the engine.
	Cached Provenance = "cached"
	// Warm: a structurally identical snapshot was restored and only the
	// edit's forward cone was re-verified.
	Warm Provenance = "warm"
	// Cold: a full verification ran.
	Cold Provenance = "cold"
)

// Outcome is the result of a store-mediated verification.
type Outcome struct {
	Res        *verify.Result
	Report     []byte // rendered JSON report; on a cached hit, the stored bytes
	Provenance Provenance
	// Incremental reports whether a warm start actually resumed
	// incrementally (it can fall back to a full run when the stored
	// snapshot refuses to restore).
	Incremental bool
	// V is the live session behind Res, for callers that keep verifying
	// (sessions, watch mode).  Nil only when restore is false and the
	// outcome was served straight from the store.
	V *verify.Verifier
}

// ServeReport answers an exact store hit with the stored report bytes,
// touching neither the compiler output nor the engine.  This is the
// stateless fast path: a hit costs one directory scan and one checksum
// pass.
func (s *Store) ServeReport(d *netlist.Design, opts verify.Options) ([]byte, bool) {
	e, ok := s.Get(verify.Fingerprint(d, opts))
	if !ok {
		return nil, false
	}
	return e.Report, true
}

// ServeReportSource answers an exact store hit from the raw source text
// alone — no parse, no elaboration.  GetBySource byte-compares the
// stored source, so equal SourceKey with different text is a miss, and
// identical (source, options) implies an identical compiled design and
// therefore the identical verification fingerprint the entry was
// verified under.  Textually different spellings of the same design
// miss here and land on the post-compile ServeReport probe instead.
func (s *Store) ServeReportSource(src string, opts verify.Options) ([]byte, bool) {
	e, ok := s.GetBySource(SourceKey(src, opts), src)
	if !ok {
		return nil, false
	}
	return e.Report, true
}

// SourceKey is the pre-compile content address: an FNV-64a over the raw
// source text and the report-relevant options.  Unlike
// verify.Fingerprint it mixes the raw MaxPasses (resolving the pass cap
// needs the compiled primitive count), so two option sets that resolve
// to the same cap can map to different source keys — that only costs a
// duplicate store entry, never a wrong answer, because GetBySource
// validates the stored source byte for byte.
func SourceKey(src string, opts verify.Options) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(src); i++ {
		h = (h ^ uint64(src[i])) * prime64
	}
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h = (h ^ uint64(byte(x>>(8*i)))) * prime64
		}
	}
	mix(uint64(opts.MaxPasses))
	ids := make([]netlist.NetID, 0, len(opts.Force))
	for id := range opts.Force {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	mix(uint64(len(ids)))
	for _, id := range ids {
		mix(uint64(id))
		mix(opts.Force[id].Fingerprint())
	}
	return h
}

// Verify runs a verification through the store.  src must be the source
// text d was compiled from — it is persisted so a later near hit can
// recompile the stored design and Diff it against the new one.  retain
// asks for a live Verifier in the outcome even on an exact hit (at the
// cost of restoring the snapshot); stateless callers pass false and an
// exact hit returns only the stored report bytes.
func Verify(ctx context.Context, s *Store, d *netlist.Design, src string, opts verify.Options, retain bool) (*Outcome, error) {
	key := verify.Fingerprint(d, opts)
	structFP := netlist.StructuralFingerprint(d)

	if e, ok := s.Get(key); ok {
		if !retain {
			return &Outcome{Report: e.Report, Provenance: Cached}, nil
		}
		if V, ok := restoreEntry(e, d, opts); ok {
			return &Outcome{Res: V.Result(), Report: e.Report, Provenance: Cached, V: V}, nil
		}
		// The stored state refuses to restore (e.g. written by a future
		// snapshot version): treat the entry as a miss.
	}

	if out, ok := warmVerify(ctx, s, d, src, opts, structFP); ok {
		return out, nil
	} else if ctx.Err() != nil {
		// The warm attempt was canceled, not merely unusable.
		return nil, serr.Wrap(serr.Canceled, ctx.Err())
	}

	V := verify.NewVerifier(d, opts)
	res, err := V.VerifyContext(ctx)
	if err != nil {
		return nil, err
	}
	rep, err := report.JSON(res)
	if err != nil {
		return nil, err
	}
	save(s, key, structFP, src, opts, rep, V)
	return &Outcome{Res: res, Report: rep, Provenance: Cold, V: V}, nil
}

// warmVerify attempts the near-hit path: find a stored entry with the
// same design structure, recompile its source, restore its snapshot and
// Update the session to the new design, re-verifying only the diff
// cone.  ok=false means the caller should fall through to a cold run.
func warmVerify(ctx context.Context, s *Store, d *netlist.Design, src string, opts verify.Options, structFP uint64) (*Outcome, bool) {
	e, ok := s.Nearest(structFP)
	if !ok {
		return nil, false
	}
	old, err := compile(e.Source)
	if err != nil || netlist.StructuralFingerprint(old) != structFP {
		return nil, false
	}
	V, ok := restoreEntry(e, old, opts)
	if !ok {
		return nil, false
	}
	res, incremental, err := V.UpdateContext(ctx, d)
	if err != nil {
		// A canceled or genuinely failing update must not silently rerun;
		// the caller distinguishes cancellation and propagates it.
		return nil, false
	}
	rep, err := report.JSON(res)
	if err != nil {
		return nil, false
	}
	save(s, verify.Fingerprint(d, opts), structFP, src, opts, rep, V)
	return &Outcome{Res: res, Report: rep, Provenance: Warm, Incremental: incremental, V: V}, true
}

// Save persists a session's current fixed point under the source text
// its design was compiled from, so future lookups — exact or structural
// — find it.  Non-converged results are not persistable and simply are
// not saved; a best-effort cache never fails its caller.
func Save(s *Store, src string, opts verify.Options, V *verify.Verifier) {
	res := V.Result()
	if res == nil {
		return
	}
	rep, err := report.JSON(res)
	if err != nil {
		return
	}
	d := V.Design()
	save(s, verify.Fingerprint(d, opts), netlist.StructuralFingerprint(d), src, opts, rep, V)
}

func save(s *Store, key, structFP uint64, src string, opts verify.Options, rep []byte, V *verify.Verifier) {
	snap, err := V.Snapshot()
	if err != nil {
		return
	}
	state, err := snap.MarshalBinary()
	if err != nil {
		return
	}
	_ = s.Put(&Entry{Key: key, StructFP: structFP, SrcKey: SourceKey(src, opts), Source: src, Report: rep, State: state})
}

// restoreEntry decodes and restores a stored snapshot against the given
// design; any failure reads as a miss.
func restoreEntry(e *Entry, d *netlist.Design, opts verify.Options) (*verify.Verifier, bool) {
	snap, err := verify.UnmarshalSnapshot(e.State)
	if err != nil {
		return nil, false
	}
	V, err := verify.Restore(d, opts, snap)
	if err != nil {
		return nil, false
	}
	return V, true
}

func compile(src string) (*netlist.Design, error) {
	f, err := hdl.Parse(src)
	if err != nil {
		return nil, err
	}
	d, _, err := expand.Expand(f)
	return d, err
}
