package scaldtv

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestJSONReportByteDeterminism locks the contract the scaldtvd service
// depends on: the JSON report is byte-identical for every combination of
// case workers, intra-case workers, cache setting and evaluation engine
// (compiled tape or interpreter), for every example design.  (The report
// deliberately carries no event or timing counters, which are
// schedule-dependent.)
func TestJSONReportByteDeterminism(t *testing.T) {
	designs, err := filepath.Glob(filepath.Join("examples", "*", "*.scald"))
	if err != nil {
		t.Fatal(err)
	}
	if len(designs) == 0 {
		t.Fatal("no .scald designs under examples/")
	}
	for _, path := range designs {
		name := strings.TrimSuffix(filepath.Base(path), ".scald")
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			text := string(src) + "\n" + Library
			var baseline []byte
			for _, cfg := range []Options{
				{Workers: 1},
				{Workers: 2},
				{Workers: 8},
				{Workers: 1, IntraWorkers: 2},
				{Workers: 2, IntraWorkers: 4},
				{Workers: 1, NoCache: true},
				{Workers: 1, NoTape: true},
				{Workers: 2, IntraWorkers: 4, NoTape: true},
				{Workers: 8, IntraWorkers: 8, NoTape: true},
			} {
				res, err := VerifySource(text, cfg)
				if err != nil {
					t.Fatal(err)
				}
				out, err := JSONReport(res)
				if err != nil {
					t.Fatal(err)
				}
				if baseline == nil {
					baseline = out
					if !bytes.Contains(out, []byte(`"schema": 1`)) {
						t.Fatalf("report missing schema version:\n%s", out)
					}
					continue
				}
				if !bytes.Equal(out, baseline) {
					t.Errorf("JSON for %+v differs from Workers=1 baseline\n--- got ---\n%s\n--- want ---\n%s",
						cfg, out, baseline)
				}
			}
		})
	}
}
