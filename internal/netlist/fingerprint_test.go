package netlist_test

import (
	"testing"

	"scaldtv/internal/gen"
	"scaldtv/internal/netlist"
	"scaldtv/internal/tick"
)

func genDesign(t *testing.T, cfg gen.Config) *netlist.Design {
	t.Helper()
	d, _, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestFingerprintDeterministic locks that fingerprints are a pure
// function of design content: two independent elaborations of the same
// source hash identically, and differing sources differ.
func TestFingerprintDeterministic(t *testing.T) {
	cfg := gen.Config{Chips: 34, Cases: 2, Inject: 1}
	a := genDesign(t, cfg)
	b := genDesign(t, cfg)
	if netlist.Fingerprint(a) != netlist.Fingerprint(b) {
		t.Error("same source, different Fingerprint")
	}
	if netlist.StructuralFingerprint(a) != netlist.StructuralFingerprint(b) {
		t.Error("same source, different StructuralFingerprint")
	}
	c := genDesign(t, gen.Config{Chips: 51, Cases: 2})
	if netlist.Fingerprint(a) == netlist.Fingerprint(c) {
		t.Error("different designs share a Fingerprint")
	}
	if netlist.StructuralFingerprint(a) == netlist.StructuralFingerprint(c) {
		t.Error("different designs share a StructuralFingerprint")
	}
}

// TestStructuralFingerprintMatchesDiff locks the alignment invariant the
// store's nearest-snapshot lookup depends on: every edit Diff classifies
// as parameter-level leaves the structural fingerprint unchanged (while
// changing the full fingerprint), and every edit Diff rejects as
// structural changes the structural fingerprint.
func TestStructuralFingerprintMatchesDiff(t *testing.T) {
	cfg := gen.Config{Chips: 34, Cases: 2, Inject: 1}
	base := genDesign(t, cfg)

	paramEdits := []struct {
		name string
		edit func(d *netlist.Design)
	}{
		{"delay bump", func(d *netlist.Design) {
			for i := range d.Prims {
				if !d.Prims[i].Kind.IsChecker() && d.Prims[i].RF == nil {
					d.Prims[i].Delay.Max += tick.NS / 10
					return
				}
			}
			t.Fatal("no plain-delay primitive")
		}},
		{"instance rename", func(d *netlist.Design) {
			d.Prims[0].Name += " X"
		}},
		{"same-shape kind swap", func(d *netlist.Design) {
			for i := range d.Prims {
				p := &d.Prims[i]
				if p.Kind == netlist.KAnd {
					p.Kind = netlist.KOr
					return
				}
				if p.Kind == netlist.KOr {
					p.Kind = netlist.KAnd
					return
				}
			}
			t.Fatal("no swappable gate")
		}},
		{"wire override", func(d *netlist.Design) {
			w := tick.R(0, 3)
			d.Nets[0].Wire = &w
		}},
		{"checker tweak", func(d *netlist.Design) {
			for i := range d.Prims {
				if d.Prims[i].Kind == netlist.KSetupHold {
					d.Prims[i].Setup += tick.NS / 5
					return
				}
			}
			t.Skip("no setup/hold checker in generated design")
		}},
		{"assertion range tweak", func(d *netlist.Design) {
			for i := range d.Nets {
				n := &d.Nets[i]
				if n.Assert == nil || len(n.Assert.Ranges) == 0 || n.Assert.Ranges[0].IsWidth {
					continue
				}
				na := *n.Assert
				na.Ranges = append(na.Ranges[:0:0], na.Ranges...)
				na.Ranges[0].Start += 0.125
				for j := range d.Nets {
					if d.Nets[j].Base == n.Base && d.Nets[j].Assert != nil {
						d.Nets[j].Assert = &na
					}
				}
				return
			}
			t.Fatal("no asserted net with a time range")
		}},
	}
	for _, pe := range paramEdits {
		t.Run("param/"+pe.name, func(t *testing.T) {
			d := genDesign(t, cfg)
			pe.edit(d)
			if _, ok := netlist.Diff(base, d); !ok {
				t.Fatalf("Diff rejected %s as structural", pe.name)
			}
			if netlist.StructuralFingerprint(d) != netlist.StructuralFingerprint(base) {
				t.Errorf("%s changed the structural fingerprint", pe.name)
			}
			if pe.name != "checker tweak" && netlist.Fingerprint(d) == netlist.Fingerprint(base) {
				t.Errorf("%s did not change the full fingerprint", pe.name)
			}
		})
	}

	structEdits := []struct {
		name string
		edit func(d *netlist.Design)
	}{
		{"period", func(d *netlist.Design) { d.Period += tick.NS }},
		{"default wire", func(d *netlist.Design) { d.DefaultWire.Max += tick.NS / 4 }},
		{"case label", func(d *netlist.Design) {
			if len(d.Cases) == 0 {
				t.Skip("no cases")
			}
			d.Cases[0].Label += "X"
		}},
		{"rewire input", func(d *netlist.Design) {
			for i := range d.Prims {
				p := &d.Prims[i]
				if len(p.In) == 0 || len(p.In[0].Bits) == 0 {
					continue
				}
				c := &p.In[0].Bits[0]
				c.Net = (c.Net + 1) % netlist.NetID(len(d.Nets))
				return
			}
			t.Fatal("no input connection")
		}},
		{"invert rail", func(d *netlist.Design) {
			for i := range d.Prims {
				p := &d.Prims[i]
				if len(p.In) == 0 || len(p.In[0].Bits) == 0 {
					continue
				}
				p.In[0].Bits[0].Invert = !p.In[0].Bits[0].Invert
				return
			}
			t.Fatal("no input connection")
		}},
	}
	for _, se := range structEdits {
		t.Run("struct/"+se.name, func(t *testing.T) {
			d := genDesign(t, cfg)
			se.edit(d)
			if _, ok := netlist.Diff(base, d); ok {
				t.Fatalf("Diff accepted %s as parameter-level", se.name)
			}
			if netlist.StructuralFingerprint(d) == netlist.StructuralFingerprint(base) {
				t.Errorf("%s left the structural fingerprint unchanged", se.name)
			}
		})
	}
}
