package netlist

import (
	"fmt"

	"scaldtv/internal/assertion"
	"scaldtv/internal/tick"
	"scaldtv/internal/values"
)

// Builder constructs a Design programmatically.  Errors stick: the first
// failure is remembered and reported by Build, so construction code reads
// linearly without per-call error handling.
type Builder struct {
	d   *Design
	err error
}

// NewBuilder starts a design with the paper's customary defaults: the
// caller must set the period; wire delay defaults to 0.0/2.0 ns and the
// clock skews to the Mark IIA rules (±1 ns precision, ±5 ns non-precision)
// per §3.3.
func NewBuilder(name string) *Builder {
	return &Builder{d: &Design{
		Name:          name,
		ClockUnit:     tick.NS,
		DefaultWire:   tick.R(0, 2),
		PrecisionSkew: tick.R(-1, 1),
		ClockSkew:     tick.R(-5, 5),
		byName:        make(map[string]NetID),
	}}
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("netlist: "+format, args...)
	}
}

// SetPeriod sets the circuit clock period (§2.2).
func (b *Builder) SetPeriod(p tick.Time) *Builder {
	if p <= 0 {
		b.fail("non-positive period %v", p)
	}
	b.d.Period = p
	return b
}

// SetClockUnit sets the designer clock unit (§2.3).
func (b *Builder) SetClockUnit(u tick.Time) *Builder {
	if u <= 0 {
		b.fail("non-positive clock unit %v", u)
	}
	b.d.ClockUnit = u
	return b
}

// SetDefaultWire sets the default interconnection delay (§2.5.3).
func (b *Builder) SetDefaultWire(r tick.Range) *Builder {
	b.d.DefaultWire = r
	return b
}

// SetPrecisionSkew sets the default skew applied to .P clocks.
func (b *Builder) SetPrecisionSkew(r tick.Range) *Builder {
	b.d.PrecisionSkew = r
	return b
}

// SetClockSkew sets the default skew applied to .C clocks.
func (b *Builder) SetClockSkew(r tick.Range) *Builder {
	b.d.ClockSkew = r
	return b
}

// SetWiredOr permits multiply-driven nets, whose drivers combine as a
// wired OR (the ECL output-tying idiom the 10145A data sheet advertises).
func (b *Builder) SetWiredOr(on bool) *Builder {
	b.d.WiredOr = on
	return b
}

// Net returns the net with the given full signal name, creating it on
// first use.  The name may embed an assertion ("W DATA .S0-6").
func (b *Builder) Net(name string) NetID {
	if id, ok := b.d.byName[name]; ok {
		return id
	}
	sig, err := assertion.Parse(name)
	if err != nil {
		b.fail("%v", err)
		sig = assertion.Signal{Base: name, Raw: name}
	}
	id := NetID(len(b.d.Nets))
	b.d.Nets = append(b.d.Nets, Net{
		Name:   name,
		Base:   sig.Base,
		Assert: sig.Assert,
		Driver: NoDriver,
	})
	b.d.byName[name] = id
	return id
}

// Vector returns width nets named "BASE<i> ‹assertion›", creating them on
// first use.  The assertion suffix, if any, is shared by every bit.
func (b *Builder) Vector(name string, width int) []NetID {
	if width <= 0 {
		b.fail("vector %q with non-positive width %d", name, width)
		width = 1
	}
	sig, err := assertion.Parse(name)
	if err != nil {
		b.fail("%v", err)
		return make([]NetID, width)
	}
	suffix := ""
	if sig.Assert != nil {
		suffix = " " + sig.Assert.String()
	}
	out := make([]NetID, width)
	for i := range out {
		out[i] = b.Net(fmt.Sprintf("%s<%d>%s", sig.Base, i, suffix))
	}
	return out
}

// SetWire overrides the interconnection delay of every given net (§2.5.3,
// e.g. the 0.0/6.0 ns address lines of the Fig 2-5 example).
func (b *Builder) SetWire(r tick.Range, nets ...NetID) *Builder {
	if !r.Valid() {
		b.fail("invalid wire delay %v", r)
		return b
	}
	for _, n := range nets {
		if n < 0 || int(n) >= len(b.d.Nets) {
			b.fail("SetWire: net %d out of range", n)
			return b
		}
		w := r
		b.d.Nets[n].Wire = &w
	}
	return b
}

// NetsByBase returns the nets created so far that belong to the logical
// signal with the given base name.
func (b *Builder) NetsByBase(base string) []NetID { return b.d.NetsByBase(base) }

// Conns wraps nets as plain input connections.
func Conns(nets ...NetID) []Conn {
	out := make([]Conn, len(nets))
	for i, n := range nets {
		out[i] = Conn{Net: n}
	}
	return out
}

// ConnsOf wraps a net slice as plain input connections.
func ConnsOf(nets []NetID) []Conn { return Conns(nets...) }

// Invert returns the complement-rail version of the connections (the
// leading "-" of §3.1).
func Invert(cs []Conn) []Conn {
	out := append([]Conn(nil), cs...)
	for i := range out {
		out[i].Invert = !out[i].Invert
	}
	return out
}

// Directive attaches an evaluation string (§2.6) to the connections.
func (b *Builder) Directive(dirs string, cs []Conn) []Conn {
	d, err := assertion.ParseDirectives(dirs)
	if err != nil {
		b.fail("%v", err)
		return cs
	}
	out := append([]Conn(nil), cs...)
	for i := range out {
		out[i].Directives = d
	}
	return out
}

// broadcast replicates a scalar connection across a width-bit port.
func (b *Builder) broadcast(port []Conn, width int, prim, name string) []Conn {
	if len(port) == width {
		return port
	}
	if len(port) == 1 && width > 1 {
		out := make([]Conn, width)
		for i := range out {
			out[i] = port[0]
		}
		return out
	}
	b.fail("primitive %q port %s has %d bits, want %d", prim, name, len(port), width)
	return make([]Conn, width)
}

func (b *Builder) addPrim(p Prim) PrimID {
	id := PrimID(len(b.d.Prims))
	b.d.Prims = append(b.d.Prims, p)
	return id
}

// Gate adds an n-input combinational gate.  The width is taken from the
// output vector; one-bit inputs are broadcast across wider outputs.  When
// the output is a single bit, multi-bit inputs are split into individual
// input ports, giving reduction gates (an OR across a bus, the CHG over a
// whole data path in Fig 3-9) with no special syntax.
func (b *Builder) Gate(k Kind, name string, delay tick.Range, out []NetID, ins ...[]Conn) PrimID {
	if !k.IsGate() {
		b.fail("Gate called with non-gate kind %v", k)
		return -1
	}
	w := len(out)
	if w == 1 && k != KBuf && k != KNot {
		var split [][]Conn
		for _, in := range ins {
			for _, c := range in {
				split = append(split, []Conn{c})
			}
		}
		ins = split
	}
	p := Prim{Kind: k, Name: name, Width: w, Delay: delay,
		Out: []OutPort{{Name: "O", Bits: out}}}
	for i, in := range ins {
		p.In = append(p.In, Port{Name: fmt.Sprintf("I%d", i), Bits: b.broadcast(in, w, name, fmt.Sprintf("I%d", i))})
	}
	return b.addPrim(p)
}

// GateRF adds a combinational gate with direction-dependent delays
// (§4.2.2): rising output edges take rise, falling edges fall.
func (b *Builder) GateRF(k Kind, name string, rise, fall tick.Range, out []NetID, ins ...[]Conn) PrimID {
	id := b.Gate(k, name, tick.Range{}, out, ins...)
	if id >= 0 {
		b.d.Prims[id].RF = &RFDelay{Rise: rise, Fall: fall}
	}
	return id
}

// Buf adds a non-inverting buffer or explicit delay element (also used for
// the CORR fictitious delays of §4.2.3).
func (b *Builder) Buf(name string, delay tick.Range, out []NetID, in []Conn) PrimID {
	return b.Gate(KBuf, name, delay, out, in)
}

// Mux adds a 2-, 4-, or 8-input multiplexer.  sel carries one connection
// per select bit; selDelay is the extra delay from the select inputs
// (Fig 3-6).
func (b *Builder) Mux(k Kind, name string, delay, selDelay tick.Range, out []NetID, sel []Conn, data ...[]Conn) PrimID {
	ns, nd := k.NumSelects(), k.NumMuxData()
	if ns == 0 {
		b.fail("Mux called with non-mux kind %v", k)
		return -1
	}
	if len(sel) != ns {
		b.fail("mux %q needs %d select bits, got %d", name, ns, len(sel))
		return -1
	}
	if len(data) != nd {
		b.fail("mux %q needs %d data inputs, got %d", name, nd, len(data))
		return -1
	}
	w := len(out)
	p := Prim{Kind: k, Name: name, Width: w, Delay: delay, SelectDelay: selDelay,
		Out: []OutPort{{Name: "O", Bits: out}}}
	for i := 0; i < ns; i++ {
		p.In = append(p.In, Port{Name: fmt.Sprintf("S%d", i), Bits: []Conn{sel[i]}})
	}
	for i, d := range data {
		p.In = append(p.In, Port{Name: fmt.Sprintf("D%d", i), Bits: b.broadcast(d, w, name, fmt.Sprintf("D%d", i))})
	}
	return b.addPrim(p)
}

// Register adds an edge-triggered register (Fig 2-1, first model).
func (b *Builder) Register(name string, delay tick.Range, q []NetID, ck Conn, d []Conn) PrimID {
	w := len(q)
	return b.addPrim(Prim{Kind: KReg, Name: name, Width: w, Delay: delay,
		In: []Port{
			{Name: "CK", Bits: []Conn{ck}},
			{Name: "D", Bits: b.broadcast(d, w, name, "D")},
		},
		Out: []OutPort{{Name: "Q", Bits: q}}})
}

// RegisterRS adds a register with asynchronous SET and RESET (Fig 2-1,
// second model).
func (b *Builder) RegisterRS(name string, delay tick.Range, q []NetID, ck Conn, d []Conn, set, reset Conn) PrimID {
	w := len(q)
	return b.addPrim(Prim{Kind: KRegRS, Name: name, Width: w, Delay: delay,
		In: []Port{
			{Name: "CK", Bits: []Conn{ck}},
			{Name: "D", Bits: b.broadcast(d, w, name, "D")},
			{Name: "S", Bits: []Conn{set}},
			{Name: "R", Bits: []Conn{reset}},
		},
		Out: []OutPort{{Name: "Q", Bits: q}}})
}

// Latch adds a transparent latch (Fig 2-2, first model).
func (b *Builder) Latch(name string, delay tick.Range, q []NetID, enable Conn, d []Conn) PrimID {
	w := len(q)
	return b.addPrim(Prim{Kind: KLatch, Name: name, Width: w, Delay: delay,
		In: []Port{
			{Name: "E", Bits: []Conn{enable}},
			{Name: "D", Bits: b.broadcast(d, w, name, "D")},
		},
		Out: []OutPort{{Name: "Q", Bits: q}}})
}

// LatchRS adds a latch with asynchronous SET and RESET (Fig 2-2, second
// model).
func (b *Builder) LatchRS(name string, delay tick.Range, q []NetID, enable Conn, d []Conn, set, reset Conn) PrimID {
	w := len(q)
	return b.addPrim(Prim{Kind: KLatchRS, Name: name, Width: w, Delay: delay,
		In: []Port{
			{Name: "E", Bits: []Conn{enable}},
			{Name: "D", Bits: b.broadcast(d, w, name, "D")},
			{Name: "S", Bits: []Conn{set}},
			{Name: "R", Bits: []Conn{reset}},
		},
		Out: []OutPort{{Name: "Q", Bits: q}}})
}

// SetupHold adds a SETUP HOLD CHK primitive (Fig 2-3): the input must be
// stable setup before and hold after the rising edge of ck.
func (b *Builder) SetupHold(name string, setup, hold tick.Time, in []Conn, ck Conn) PrimID {
	return b.addPrim(Prim{Kind: KSetupHold, Name: name, Width: len(in),
		Setup: setup, Hold: hold,
		In: []Port{
			{Name: "I", Bits: in},
			{Name: "CK", Bits: []Conn{ck}},
		}})
}

// SetupRiseHoldFall adds a SETUP RISE HOLD FALL CHK primitive (Fig 2-3):
// set-up before the rising edge, stability while the clock is true, and
// hold after the falling edge.
func (b *Builder) SetupRiseHoldFall(name string, setup, hold tick.Time, in []Conn, ck Conn) PrimID {
	return b.addPrim(Prim{Kind: KSetupRiseHoldFall, Name: name, Width: len(in),
		Setup: setup, Hold: hold,
		In: []Port{
			{Name: "I", Bits: in},
			{Name: "CK", Bits: []Conn{ck}},
		}})
}

// MinPulse adds a MIN PULSE WIDTH checker (Fig 2-4).
func (b *Builder) MinPulse(name string, minHigh, minLow tick.Time, in Conn) PrimID {
	return b.addPrim(Prim{Kind: KMinPulse, Name: name, Width: 1,
		MinHigh: minHigh, MinLow: minLow,
		In: []Port{{Name: "I", Bits: []Conn{in}}}})
}

// Param declares a named design parameter with its default value and
// allowed range, returning its index for use in Coeff.  Redeclaring a
// name is an error.
func (b *Builder) Param(name string, def, lo, hi float64) int32 {
	for _, p := range b.d.Params {
		if p.Name == name {
			b.fail("parameter %q declared twice", name)
			return -1
		}
	}
	b.d.Params = append(b.d.Params, Param{Name: name, Default: def, Lo: lo, Hi: hi})
	return int32(len(b.d.Params) - 1)
}

// AddDelayFn appends an analytic delay function, returning the 1-based
// handle Prim.Fn uses (via BindDelayFn).
func (b *Builder) AddDelayFn(fn DelayFn) int32 {
	b.d.DelayFns = append(b.d.DelayFns, fn)
	return int32(len(b.d.DelayFns))
}

// BindDelayFn marks a primitive's delay as the evaluation of the given
// analytic function (a 1-based AddDelayFn handle), setting Prim.Delay to
// the function's value at the design's default parameter point.
func (b *Builder) BindDelayFn(id PrimID, fn int32) *Builder {
	if id < 0 || int(id) >= len(b.d.Prims) {
		b.fail("BindDelayFn: primitive %d out of range", id)
		return b
	}
	if fn <= 0 || int(fn) > len(b.d.DelayFns) {
		b.fail("BindDelayFn: delay function %d out of range", fn)
		return b
	}
	b.d.Prims[id].Fn = fn
	b.d.Prims[id].Delay = b.d.DelayFns[fn-1].Eval(b.d.ParamDefaults())
	return b
}

// AddCase appends a case-analysis cycle (§2.7.1).
func (b *Builder) AddCase(label string, assigns ...CaseAssign) *Builder {
	b.d.Cases = append(b.d.Cases, Case{Label: label, Assignments: assigns})
	return b
}

// Assign builds a case assignment for AddCase.
func Assign(base string, v values.Value) CaseAssign {
	return CaseAssign{Base: base, Value: v}
}

// Err returns the sticky construction error, if any.
func (b *Builder) Err() error { return b.err }

// Build validates the design, computes fanout lists, and returns it.
func (b *Builder) Build() (*Design, error) {
	if b.err != nil {
		return nil, b.err
	}
	b.d.RebuildFanout()
	if err := b.d.Check(); err != nil {
		return nil, err
	}
	return b.d, nil
}

// MustBuild is Build for construction known to be valid; it panics on
// error.
func (b *Builder) MustBuild() *Design {
	d, err := b.Build()
	if err != nil {
		panic(err)
	}
	return d
}
