package server

import (
	"bytes"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"scaldtv"
)

// TestExploreEndpointParity is the acceptance contract of POST
// /v1/explore: the response body is byte-identical to the CLI's
// `scaldtv -explore -json` output, for both the dischargeable
// case-analysis example and the hazard example whose violation is real.
func TestExploreEndpointParity(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, name := range []string{"caseanalysis", "hazard"} {
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join("..", "..", "examples", name, name+".scald"))
			if err != nil {
				t.Fatal(err)
			}
			want := cliJSON(t, string(src), scaldtv.Options{Explore: true})
			for _, q := range []string{"lib=1", "lib=1&j=2&intra=2"} {
				resp, got := post(t, ts.URL+"/v1/explore?"+q, string(src))
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("?%s: status %d: %s", q, resp.StatusCode, got)
				}
				if !bytes.Contains(got, []byte(`"exploration"`)) {
					t.Fatalf("?%s: response carries no exploration section:\n%s", q, got)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("?%s: response differs from scaldtv -explore -json\n--- got ---\n%s\n--- want ---\n%s", q, got, want)
				}
			}
		})
	}
}

// TestExploreEndpointStatistical: the ?delays=statistical query selects
// the statistical delay model, and a bad model name is a 400.
func TestExploreEndpointStatistical(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	src, err := os.ReadFile(filepath.Join("..", "..", "examples", "selftimed", "selftimed.scald"))
	if err != nil {
		t.Fatal(err)
	}
	want := cliJSON(t, string(src), scaldtv.Options{Explore: true, Delays: scaldtv.DelayStatistical})
	resp, got := post(t, ts.URL+"/v1/explore?lib=1&delays=statistical", string(src))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	if !bytes.Contains(got, []byte(`"delay_model": "statistical"`)) {
		t.Fatalf("response carries no statistical section:\n%s", got)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("response differs from the statistical CLI report\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	resp, got = post(t, ts.URL+"/v1/explore?lib=1&delays=quantum", string(src))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad delay model: status %d, want 400: %s", resp.StatusCode, got)
	}
}
