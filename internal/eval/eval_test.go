package eval

import (
	"testing"

	"scaldtv/internal/netlist"
	"scaldtv/internal/tick"
	"scaldtv/internal/values"
)

const p50 = 50 * tick.NS

func ns(f float64) tick.Time { return tick.FromNS(f) }

// fixture pairs a design builder with a map of externally-forced waveforms,
// standing in for the verifier's relaxation state.
type fixture struct {
	b     *netlist.Builder
	waves map[netlist.NetID]values.Waveform
}

func newFixture() *fixture {
	b := netlist.NewBuilder("eval-test")
	b.SetPeriod(p50)
	b.SetDefaultWire(tick.Range{}) // zero wire delay unless a test sets one
	b.SetPrecisionSkew(tick.Range{})
	b.SetClockSkew(tick.Range{})
	return &fixture{b: b, waves: map[netlist.NetID]values.Waveform{}}
}

func (f *fixture) force(n netlist.NetID, w values.Waveform) { f.waves[n] = w }

func (f *fixture) eval(t *testing.T, pid netlist.PrimID) []Signal {
	t.Helper()
	d, err := f.b.Build()
	if err != nil {
		t.Fatal(err)
	}
	out, err := Prim(d, &d.Prims[pid], func(n netlist.NetID) Signal {
		w, ok := f.waves[n]
		if !ok {
			w = values.Const(p50, values.VU)
		}
		return Signal{Wave: w}
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func clockWave(hi0, hi1 float64) values.Waveform {
	return values.Const(p50, values.V0).Paint(ns(hi0), ns(hi1), values.V1)
}

func stableWave(ch0, ch1 float64) values.Waveform {
	return values.Const(p50, values.VS).Paint(ns(ch0), ns(ch1), values.VC)
}

func TestOrGate(t *testing.T) {
	f := newFixture()
	a := f.b.Net("A")
	c := f.b.Net("C")
	o := f.b.Net("O")
	pid := f.b.Gate(netlist.KOr, "or1", tick.R(1.0, 2.9), []netlist.NetID{o},
		netlist.Conns(a), netlist.Conns(c))
	f.force(a, clockWave(10, 20))
	f.force(c, values.Const(p50, values.V0))
	out := f.eval(t, pid)
	if len(out) != 1 {
		t.Fatalf("got %d outputs", len(out))
	}
	w := out[0].Wave
	// Shifted by the 1.0 ns minimum; 1.9 ns of skew.
	if w.Skew != ns(1.9) {
		t.Errorf("skew = %v, want 1.9ns", w.Skew)
	}
	if w.At(ns(11)) != values.V1 || w.At(ns(20.5)) != values.V1 || w.At(ns(21)) != values.V0 {
		t.Errorf("OR output wrong: %v", w)
	}
}

func TestGateWorstCase(t *testing.T) {
	f := newFixture()
	a, c, o := f.b.Net("A"), f.b.Net("C"), f.b.Net("O")
	pid := f.b.Gate(netlist.KOr, "or1", tick.Range{}, []netlist.NetID{o},
		netlist.Conns(a), netlist.Conns(c))
	f.force(a, stableWave(10, 20)) // stable except changing 10–20
	f.force(c, stableWave(15, 30))
	w := f.eval(t, pid)[0].Wave
	if w.At(ns(5)) != values.VS || w.At(ns(12)) != values.VC || w.At(ns(25)) != values.VC || w.At(ns(35)) != values.VS {
		t.Errorf("worst-case OR wrong: %v", w)
	}
}

func TestNotAndBuf(t *testing.T) {
	f := newFixture()
	a, o1, o2 := f.b.Net("A"), f.b.Net("O1"), f.b.Net("O2")
	p1 := f.b.Gate(netlist.KNot, "inv", tick.R(1, 1), []netlist.NetID{o1}, netlist.Conns(a))
	p2 := f.b.Buf("buf", tick.R(2, 2), []netlist.NetID{o2}, netlist.Conns(a))
	f.force(a, clockWave(10, 20))
	w1 := f.eval(t, p1)[0].Wave
	if w1.At(ns(12)) != values.V0 || w1.At(ns(5)) != values.V1 {
		t.Errorf("NOT wrong: %v", w1)
	}
	w2 := f.eval(t, p2)[0].Wave
	if w2.At(ns(13)) != values.V1 || w2.At(ns(11)) != values.V0 {
		t.Errorf("BUF wrong: %v", w2)
	}
}

func TestInvertedConnection(t *testing.T) {
	f := newFixture()
	a, o := f.b.Net("A"), f.b.Net("O")
	pid := f.b.Buf("buf", tick.Range{}, []netlist.NetID{o}, netlist.Invert(netlist.Conns(a)))
	f.force(a, clockWave(10, 20))
	w := f.eval(t, pid)[0].Wave
	if w.At(ns(15)) != values.V0 || w.At(ns(5)) != values.V1 {
		t.Errorf("complement rail wrong: %v", w)
	}
}

func TestNandNorXor(t *testing.T) {
	f := newFixture()
	a, c := f.b.Net("A"), f.b.Net("C")
	o1, o2, o3 := f.b.Net("O1"), f.b.Net("O2"), f.b.Net("O3")
	pn := f.b.Gate(netlist.KNand, "nand", tick.Range{}, []netlist.NetID{o1}, netlist.Conns(a), netlist.Conns(c))
	pr := f.b.Gate(netlist.KNor, "nor", tick.Range{}, []netlist.NetID{o2}, netlist.Conns(a), netlist.Conns(c))
	px := f.b.Gate(netlist.KXor, "xor", tick.Range{}, []netlist.NetID{o3}, netlist.Conns(a), netlist.Conns(c))
	f.force(a, values.Const(p50, values.V1))
	f.force(c, clockWave(10, 20))
	if w := f.eval(t, pn)[0].Wave; w.At(ns(15)) != values.V0 || w.At(ns(5)) != values.V1 {
		t.Errorf("NAND wrong: %v", w)
	}
	if w := f.eval(t, pr)[0].Wave; w.At(ns(15)) != values.V0 || w.At(ns(5)) != values.V0 {
		t.Errorf("NOR wrong: %v", w)
	}
	if w := f.eval(t, px)[0].Wave; w.At(ns(15)) != values.V0 || w.At(ns(5)) != values.V1 {
		t.Errorf("XOR wrong: %v", w)
	}
}

func TestChgGate(t *testing.T) {
	// The CHG function used for ALUs and parity trees (§2.4.2).
	f := newFixture()
	a, c, o := f.b.Net("A"), f.b.Net("C"), f.b.Net("O")
	pid := f.b.Gate(netlist.KChg, "chg", tick.R(3, 6), []netlist.NetID{o},
		netlist.Conns(a), netlist.Conns(c))
	f.force(a, stableWave(10, 20))
	f.force(c, clockWave(25, 30)) // a 0/1 clock also counts as "changing" at its edges
	w := f.eval(t, pid)[0].Wave
	// Input a changing 10–20 → output changing 13–26 (3 min +3 skew).
	if w.At(ns(5)) != values.VS {
		t.Errorf("CHG stable region wrong: %v", w)
	}
	if w.At(ns(14)) != values.VC {
		t.Errorf("CHG change region wrong: %v", w)
	}
	// Clock transitions at 25 and 30 also appear as changes: with the
	// 3/6 ns delay the edge at 25 produces a change window 28–31, visible
	// once the carried skew is incorporated (as the checkers do).
	inc := w.IncorporateSkew()
	if inc.At(ns(28.5)) != values.VC || inc.At(ns(30.5)) != values.VC {
		t.Errorf("CHG must register clock edges: %v", inc)
	}
	if inc.At(ns(27.5)) != values.VS {
		t.Errorf("CHG change window starts too early: %v", inc)
	}
}

func TestWireDelayApplied(t *testing.T) {
	f := newFixture()
	f.b.SetDefaultWire(tick.R(0, 2))
	a, o := f.b.Net("A"), f.b.Net("O")
	pid := f.b.Buf("buf", tick.Range{}, []netlist.NetID{o}, netlist.Conns(a))
	f.force(a, clockWave(10, 20))
	w := f.eval(t, pid)[0].Wave
	if w.Skew != ns(2) {
		t.Errorf("wire skew = %v, want 2ns", w.Skew)
	}
}

func TestDirectiveZeroesWireAndGate(t *testing.T) {
	f := newFixture()
	f.b.SetDefaultWire(tick.R(0, 2))
	a, c, o := f.b.Net("CK"), f.b.Net("EN"), f.b.Net("O")
	// &H: zero wire+gate on the clock path, check/assume the enable.
	pid := f.b.Gate(netlist.KAnd, "gate", tick.R(1, 2), []netlist.NetID{o},
		f.b.Directive("H", netlist.Conns(a)), netlist.Conns(c))
	f.force(a, clockWave(10, 20))
	f.force(c, stableWave(0, 50)) // always changing: would normally poison the output
	w := f.eval(t, pid)[0].Wave
	// The enable is assumed to enable the gate; clock passes through with
	// no gate delay and no wire delay.
	if w.Skew != 0 {
		t.Errorf("H directive left skew %v", w.Skew)
	}
	if w.At(ns(15)) != values.V1 || w.At(ns(5)) != values.V0 {
		t.Errorf("H directive output wrong: %v", w)
	}
}

func TestDirectiveZOnly(t *testing.T) {
	f := newFixture()
	f.b.SetDefaultWire(tick.R(0, 2))
	a, c, o := f.b.Net("CK"), f.b.Net("EN"), f.b.Net("O")
	// &Z zeroes delays but does NOT assume the other inputs enable.
	pid := f.b.Gate(netlist.KAnd, "gate", tick.R(1, 2), []netlist.NetID{o},
		f.b.Directive("Z", netlist.Conns(a)), netlist.Conns(c))
	f.force(a, clockWave(10, 20))
	f.force(c, values.Const(p50, values.VS))
	w := f.eval(t, pid)[0].Wave
	// AND(1, S) = S during the high window.
	if w.At(ns(15)) != values.VS || w.At(ns(5)) != values.V0 {
		t.Errorf("Z directive output wrong: %v", w)
	}
	// The enable's wire delay still applies (only the directive input's
	// wire is zeroed), but since the enable is constant it cannot shift.
	if w.Skew != 0 {
		t.Errorf("Z directive left skew %v on clock path", w.Skew)
	}
}

func TestDirectiveStringPropagates(t *testing.T) {
	f := newFixture()
	a, c, o := f.b.Net("CK"), f.b.Net("EN"), f.b.Net("O")
	pid := f.b.Gate(netlist.KAnd, "gate", tick.R(1, 2), []netlist.NetID{o},
		f.b.Directive("HZ", netlist.Conns(a)), netlist.Conns(c))
	f.force(a, clockWave(10, 20))
	f.force(c, values.Const(p50, values.V1))
	out := f.eval(t, pid)[0]
	if string(out.Dirs) != "Z" {
		t.Errorf("remaining directives = %q, want Z", out.Dirs)
	}
}

func TestRegisterBasic(t *testing.T) {
	// Fig 2-1: a register clocked at 20 ns with 1.0/3.8 ns delay: output
	// changes only during 21–23.8, stable the rest of the cycle.
	f := newFixture()
	ck, d, q := f.b.Net("CK"), f.b.Net("D"), f.b.Net("Q")
	pid := f.b.Register("reg", tick.R(1.0, 3.8), []netlist.NetID{q},
		netlist.Conn{Net: ck}, netlist.Conns(d))
	f.force(ck, clockWave(20, 30))
	f.force(d, stableWave(40, 45))
	w := f.eval(t, pid)[0].Wave
	if w.At(ns(21)) != values.VC || w.At(ns(23)) != values.VC {
		t.Errorf("change window missing: %v", w)
	}
	if w.At(ns(20.5)) != values.VS || w.At(ns(24)) != values.VS || w.At(ns(45)) != values.VS || w.At(0) != values.VS {
		t.Errorf("output not stable outside window: %v", w)
	}
}

func TestRegisterCapturesConstantData(t *testing.T) {
	f := newFixture()
	ck, d, q := f.b.Net("CK"), f.b.Net("D"), f.b.Net("Q")
	pid := f.b.Register("reg", tick.R(1, 2), []netlist.NetID{q},
		netlist.Conn{Net: ck}, netlist.Conns(d))
	f.force(ck, clockWave(20, 30))
	f.force(d, values.Const(p50, values.V1))
	w := f.eval(t, pid)[0].Wave
	if w.At(ns(25)) != values.V1 || w.At(ns(45)) != values.V1 || w.At(ns(5)) != values.V1 {
		t.Errorf("captured constant not propagated: %v", w)
	}
	if w.At(ns(21.5)) != values.VC {
		t.Errorf("change window missing: %v", w)
	}
}

func TestRegisterClockSkewWidensWindow(t *testing.T) {
	f := newFixture()
	ck, d, q := f.b.Net("CK"), f.b.Net("D"), f.b.Net("Q")
	pid := f.b.Register("reg", tick.R(1, 2), []netlist.NetID{q},
		netlist.Conn{Net: ck}, netlist.Conns(d))
	f.force(ck, clockWave(20, 30).Delay(tick.R(-1, 1))) // ±1 ns clock skew
	f.force(d, stableWave(40, 45))
	w := f.eval(t, pid)[0].Wave
	// Edge window 19–21, change window 20–23.
	if w.At(ns(20.5)) != values.VC || w.At(ns(22.5)) != values.VC {
		t.Errorf("skewed change window wrong: %v", w)
	}
	if w.At(ns(19.5)) != values.VS || w.At(ns(23.5)) != values.VS {
		t.Errorf("window too wide: %v", w)
	}
}

func TestRegisterNeverClocked(t *testing.T) {
	f := newFixture()
	ck, d, q := f.b.Net("CK"), f.b.Net("D"), f.b.Net("Q")
	pid := f.b.Register("reg", tick.R(1, 2), []netlist.NetID{q},
		netlist.Conn{Net: ck}, netlist.Conns(d))
	f.force(ck, values.Const(p50, values.V0))
	f.force(d, stableWave(0, 50))
	w := f.eval(t, pid)[0].Wave
	if v, ok := w.ConstantValue(); !ok || v != values.VS {
		t.Errorf("unclocked register should hold stable: %v", w)
	}
}

func TestRegisterUnknownClock(t *testing.T) {
	f := newFixture()
	ck, d, q := f.b.Net("CK"), f.b.Net("D"), f.b.Net("Q")
	pid := f.b.Register("reg", tick.R(1, 2), []netlist.NetID{q},
		netlist.Conn{Net: ck}, netlist.Conns(d))
	f.force(ck, values.Const(p50, values.VU))
	f.force(d, values.Const(p50, values.V1))
	w := f.eval(t, pid)[0].Wave
	if v, ok := w.ConstantValue(); !ok || v != values.VU {
		t.Errorf("unknown clock should give unknown output: %v", w)
	}
}

func TestRegisterRS(t *testing.T) {
	f := newFixture()
	ck, d, q := f.b.Net("CK"), f.b.Net("D"), f.b.Net("Q")
	set, rst := f.b.Net("SET"), f.b.Net("RST")
	pid := f.b.RegisterRS("reg", tick.R(1, 2), []netlist.NetID{q},
		netlist.Conn{Net: ck}, netlist.Conns(d), netlist.Conn{Net: set}, netlist.Conn{Net: rst})
	f.force(ck, clockWave(20, 30))
	f.force(d, stableWave(40, 45))

	// Inactive SET/RESET: behaves like the plain register.
	f.force(set, values.Const(p50, values.V0))
	f.force(rst, values.Const(p50, values.V0))
	w := f.eval(t, pid)[0].Wave
	if w.At(ns(21.5)) != values.VC || w.At(ns(10)) != values.VS {
		t.Errorf("inactive RS wrong: %v", w)
	}

	// SET asserted: output forced high everywhere.
	f.force(set, values.Const(p50, values.V1))
	w = f.eval(t, pid)[0].Wave
	if v, ok := w.ConstantValue(); !ok || v != values.V1 {
		t.Errorf("SET should force 1: %v", w)
	}

	// RESET asserted.
	f.force(set, values.Const(p50, values.V0))
	f.force(rst, values.Const(p50, values.V1))
	w = f.eval(t, pid)[0].Wave
	if v, ok := w.ConstantValue(); !ok || v != values.V0 {
		t.Errorf("RESET should force 0: %v", w)
	}

	// Both asserted: undefined.
	f.force(set, values.Const(p50, values.V1))
	w = f.eval(t, pid)[0].Wave
	if v, ok := w.ConstantValue(); !ok || v != values.VU {
		t.Errorf("SET+RESET should be undefined: %v", w)
	}

	// A reset pulse inside the cycle overrides during (delayed) assertion.
	f.force(set, values.Const(p50, values.V0))
	f.force(rst, clockWave(40, 45))
	w = f.eval(t, pid)[0].Wave
	if w.At(ns(43)) != values.V0 {
		t.Errorf("reset pulse should force 0 at 43ns: %v", w)
	}
	if w.At(ns(41.2)) != values.VC {
		t.Errorf("reset edge should show change at 41.2ns: %v", w)
	}
	if w.At(ns(10)) != values.VS {
		t.Errorf("output should be stable outside overrides: %v", w)
	}
}

func TestLatchTransparent(t *testing.T) {
	f := newFixture()
	e, d, q := f.b.Net("E"), f.b.Net("D"), f.b.Net("Q")
	pid := f.b.Latch("latch", tick.R(1.0, 3.5), []netlist.NetID{q},
		netlist.Conn{Net: e}, netlist.Conns(d))
	f.force(e, clockWave(20, 30))
	f.force(d, stableWave(22, 26)) // changes while the latch is open
	w := f.eval(t, pid)[0].Wave
	// While open: follows data (delayed 1.0 min, skew 2.5 → change 23–31).
	if w.At(ns(24)) != values.VC {
		t.Errorf("transparent change missing: %v", w)
	}
	// While closed: holds.
	if w.At(ns(10)) != values.VS || w.At(ns(45)) != values.VS {
		t.Errorf("hold region wrong: %v", w)
	}
	// Opening edge: may change (held vs new data) — delayed 21–23.5.
	if w.At(ns(22)) != values.VC {
		t.Errorf("opening change missing: %v", w)
	}
}

func TestLatchConstantData(t *testing.T) {
	f := newFixture()
	e, d, q := f.b.Net("E"), f.b.Net("D"), f.b.Net("Q")
	pid := f.b.Latch("latch", tick.R(1, 2), []netlist.NetID{q},
		netlist.Conn{Net: e}, netlist.Conns(d))
	f.force(e, clockWave(20, 30))
	f.force(d, values.Const(p50, values.V1))
	w := f.eval(t, pid)[0].Wave
	if v, ok := w.ConstantValue(); !ok || v != values.V1 {
		t.Errorf("constant data through latch should be constant: %v", w)
	}
}

func TestLatchClosingCapturesStableData(t *testing.T) {
	f := newFixture()
	e, d, q := f.b.Net("E"), f.b.Net("D"), f.b.Net("Q")
	pid := f.b.Latch("latch", tick.Range{}, []netlist.NetID{q},
		netlist.Conn{Net: e}, netlist.Conns(d))
	// Enable with skew: closing band.
	f.force(e, clockWave(20, 30).Delay(tick.R(0, 2)))
	f.force(d, values.Const(p50, values.VS))
	w := f.eval(t, pid)[0].Wave
	// During the closing band (30–32) data is stable: output stays stable.
	if w.At(ns(31)) != values.VS {
		t.Errorf("closing band with stable data should stay stable: %v", w)
	}
}

func TestLatchRS(t *testing.T) {
	f := newFixture()
	e, d, q := f.b.Net("E"), f.b.Net("D"), f.b.Net("Q")
	set, rst := f.b.Net("SET"), f.b.Net("RST")
	pid := f.b.LatchRS("latch", tick.R(1, 2), []netlist.NetID{q},
		netlist.Conn{Net: e}, netlist.Conns(d), netlist.Conn{Net: set}, netlist.Conn{Net: rst})
	f.force(e, clockWave(20, 30))
	f.force(d, values.Const(p50, values.VS))
	f.force(set, values.Const(p50, values.V1))
	f.force(rst, values.Const(p50, values.V0))
	w := f.eval(t, pid)[0].Wave
	if v, ok := w.ConstantValue(); !ok || v != values.V1 {
		t.Errorf("latch SET should force 1: %v", w)
	}
}

func TestMux2ConstantSelect(t *testing.T) {
	f := newFixture()
	s, d0, d1, o := f.b.Net("S"), f.b.Net("D0"), f.b.Net("D1"), f.b.Net("O")
	pid := f.b.Mux(netlist.KMux2, "mux", tick.R(1.2, 3.3), tick.R(0.3, 1.2), []netlist.NetID{o},
		netlist.Conns(s), netlist.Conns(d0), netlist.Conns(d1))
	f.force(s, values.Const(p50, values.V0))
	f.force(d0, stableWave(10, 20))
	f.force(d1, values.Const(p50, values.VS))
	w := f.eval(t, pid)[0].Wave
	// Selected input 0: change 10–20 shifted by 1.2 min (+2.1 skew).
	if w.At(ns(12)) != values.VC || w.At(ns(5)) != values.VS {
		t.Errorf("mux constant-select wrong: %v", w)
	}
	if w.Skew != ns(2.1) {
		t.Errorf("mux skew = %v, want 2.1ns", w.Skew)
	}

	// Select 1 picks the quiet input.
	f.force(s, values.Const(p50, values.V1))
	w = f.eval(t, pid)[0].Wave
	if v, ok := w.ConstantValue(); !ok || v != values.VS {
		t.Errorf("mux select-1 should be all stable: %v", w)
	}
}

func TestMux2StableSelect(t *testing.T) {
	// Fig 2-6 semantics: a stable-but-unknown select means the output is
	// the worst case across both data inputs.
	f := newFixture()
	s, d0, d1, o := f.b.Net("S"), f.b.Net("D0"), f.b.Net("D1"), f.b.Net("O")
	pid := f.b.Mux(netlist.KMux2, "mux", tick.Range{}, tick.Range{}, []netlist.NetID{o},
		netlist.Conns(s), netlist.Conns(d0), netlist.Conns(d1))
	f.force(s, values.Const(p50, values.VS))
	f.force(d0, stableWave(10, 20))
	f.force(d1, stableWave(30, 40))
	w := f.eval(t, pid)[0].Wave
	if w.At(ns(15)) != values.VC || w.At(ns(35)) != values.VC {
		t.Errorf("stable select must union changes: %v", w)
	}
	if w.At(ns(25)) != values.VS || w.At(ns(5)) != values.VS {
		t.Errorf("stable select stable region wrong: %v", w)
	}
}

func TestMux2ChangingSelect(t *testing.T) {
	f := newFixture()
	s, d0, d1, o := f.b.Net("S"), f.b.Net("D0"), f.b.Net("D1"), f.b.Net("O")
	pid := f.b.Mux(netlist.KMux2, "mux", tick.Range{}, tick.Range{}, []netlist.NetID{o},
		netlist.Conns(s), netlist.Conns(d0), netlist.Conns(d1))
	f.force(s, clockWave(20, 30)) // a clock driving the select line (§4.1)
	f.force(d0, values.Const(p50, values.VS))
	f.force(d1, values.Const(p50, values.VS))
	w := f.eval(t, pid)[0].Wave
	// At the select edges the output may change between the two stables.
	if w.At(ns(20)) != values.VC || w.At(ns(30)) != values.VC {
		t.Errorf("select edges must show change: %v", w)
	}
	// Between edges the output tracks one stable input.
	if w.At(ns(25)) != values.VS || w.At(ns(10)) != values.VS {
		t.Errorf("between edges should be stable: %v", w)
	}
}

func TestMux4PartialConstantSelect(t *testing.T) {
	f := newFixture()
	s0, s1 := f.b.Net("S0"), f.b.Net("S1")
	d := []netlist.NetID{f.b.Net("D0"), f.b.Net("D1"), f.b.Net("D2"), f.b.Net("D3")}
	o := f.b.Net("O")
	pid := f.b.Mux(netlist.KMux4, "mux4", tick.Range{}, tick.Range{}, []netlist.NetID{o},
		[]netlist.Conn{{Net: s0}, {Net: s1}},
		netlist.Conns(d[0]), netlist.Conns(d[1]), netlist.Conns(d[2]), netlist.Conns(d[3]))
	// S1 pinned 0: only D0/D1 are candidates; S0 stable-unknown.
	f.force(s1, values.Const(p50, values.V0))
	f.force(s0, values.Const(p50, values.VS))
	f.force(d[0], values.Const(p50, values.VS))
	f.force(d[1], stableWave(10, 20))
	f.force(d[2], stableWave(0, 50)) // always changing, but not a candidate
	f.force(d[3], stableWave(0, 50))
	w := f.eval(t, pid)[0].Wave
	if w.At(ns(15)) != values.VC {
		t.Errorf("candidate D1's change must show: %v", w)
	}
	if w.At(ns(30)) != values.VS {
		t.Errorf("non-candidates must be excluded: %v", w)
	}
}

func TestCheckerPrimsHaveNoOutput(t *testing.T) {
	f := newFixture()
	i, ck := f.b.Net("I"), f.b.Net("CK")
	pid := f.b.SetupHold("chk", ns(2.5), ns(1.5), netlist.Conns(i), netlist.Conn{Net: ck})
	out := f.eval(t, pid)
	if out != nil {
		t.Errorf("checker produced output: %v", out)
	}
}

func TestMultiBitRegister(t *testing.T) {
	f := newFixture()
	ck := f.b.Net("CK")
	d := f.b.Vector("D", 4)
	q := f.b.Vector("Q", 4)
	pid := f.b.Register("reg", tick.R(1, 2), q, netlist.Conn{Net: ck}, netlist.Conns(d...))
	f.force(ck, clockWave(20, 30))
	for i, n := range d {
		if i%2 == 0 {
			f.force(n, values.Const(p50, values.V1))
		} else {
			f.force(n, stableWave(40, 45))
		}
	}
	out := f.eval(t, pid)
	if len(out) != 4 {
		t.Fatalf("got %d outputs", len(out))
	}
	if out[0].Wave.At(ns(40)) != values.V1 || out[2].Wave.At(ns(40)) != values.V1 {
		t.Error("even bits should capture the constant")
	}
	if out[1].Wave.At(ns(40)) != values.VS || out[3].Wave.At(ns(40)) != values.VS {
		t.Error("odd bits should be stable")
	}
}

// TestVectorMemoizationSemantics: the per-bit memoization (§3.3.2
// economy) must be invisible — bits with identical inputs share results,
// bits with different inputs get their own.
func TestVectorMemoizationSemantics(t *testing.T) {
	f := newFixture()
	a := f.b.Vector("A", 4)
	c := f.b.Vector("C", 4)
	o := f.b.Vector("O", 4)
	ins := make([]netlist.Conn, 4)
	for i := range ins {
		ins[i] = netlist.Conn{Net: a[i]}
	}
	cs := make([]netlist.Conn, 4)
	for i := range cs {
		cs[i] = netlist.Conn{Net: c[i]}
	}
	pid := f.b.Gate(netlist.KOr, "or", tick.R(1, 2), o, ins, cs)
	// Bits 0 and 1 identical; bit 2 differs in one input; bit 3 constant.
	f.force(a[0], stableWave(10, 20))
	f.force(a[1], stableWave(10, 20))
	f.force(a[2], stableWave(30, 40))
	f.force(a[3], values.Const(p50, values.V1))
	for _, n := range c {
		f.force(n, values.Const(p50, values.V0))
	}
	out := f.eval(t, pid)
	if !out[0].Wave.Equal(out[1].Wave) {
		t.Error("identical bits should share a waveform")
	}
	if out[2].Wave.Equal(out[0].Wave) {
		t.Error("differing bit incorrectly shared")
	}
	if v, ok := out[3].Wave.ConstantValue(); !ok || v != values.V1 {
		t.Errorf("constant bit wrong: %v", out[3].Wave)
	}
	if out[2].Wave.At(ns(35)) != values.VC || out[2].Wave.At(ns(15)) != values.VS {
		t.Errorf("bit 2 semantics wrong: %v", out[2].Wave)
	}
}

// TestGateRFEnvelopeInGate: a gate with rise/fall delays whose output is
// value-unknown uses the conservative envelope.
func TestGateRFEnvelopeInGate(t *testing.T) {
	f := newFixture()
	a, o := f.b.Net("A"), f.b.Net("O")
	pid := f.b.GateRF(netlist.KBuf, "rfbuf", tick.R(2, 3), tick.R(5, 7), []netlist.NetID{o}, netlist.Conns(a))
	f.force(a, stableWave(10, 20)) // S/C: no edge directions known
	w := f.eval(t, pid)[0].Wave.IncorporateSkew()
	// Envelope 2..7: changing 12–27.
	if w.At(ns(13)) != values.VC || w.At(ns(26)) != values.VC {
		t.Errorf("envelope too narrow: %v", w)
	}
	if w.At(ns(11)) != values.VS || w.At(ns(28)) != values.VS {
		t.Errorf("envelope too wide: %v", w)
	}
	// A crisp clock input takes the exact per-edge delays.
	f.force(a, clockWave(10, 20))
	w2 := f.eval(t, pid)[0].Wave
	if w2.At(ns(13.5)) != values.V1 || w2.At(ns(26)) != values.VF {
		t.Errorf("per-edge delays wrong: %v", w2)
	}
}
