package tick

import (
	"testing"
	"testing/quick"
)

func TestFromNS(t *testing.T) {
	cases := []struct {
		in   float64
		want Time
	}{
		{0, 0},
		{1, 1000},
		{2.5, 2500},
		{-1, -1000},
		{-2.5, -2500},
		{0.001, 1},
		{6.25, 6250},
		{0.0004, 0}, // rounds to nearest ps
		{0.0006, 1},
	}
	for _, c := range cases {
		if got := FromNS(c.in); got != c.want {
			t.Errorf("FromNS(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0.0"},
		{1000, "1.0"},
		{2500, "2.5"},
		{-1000, "-1.0"},
		{5500, "5.5"},
		{6250, "6.25"},
		{1, "0.001"},
		{25500, "25.5"},
		{47500, "47.5"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want Time
		ok   bool
	}{
		{"2.5", 2500, true},
		{"2.5ns", 2500, true},
		{"2.5 ns", 2500, true},
		{"10ps", 10, true},
		{"1us", 1000000, true},
		{"1ms", 1000000000, true},
		{"-1.0", -1000, true},
		{"-1.0ns", -1000, true},
		{"0", 0, true},
		{"50NS", 50000, true},
		{"", 0, false},
		{"abc", 0, false},
		{"1.2.3", 0, false},
		{"ns", 0, false},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("Parse(%q) = %d, %v; want %d, nil", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("Parse(%q) succeeded, want error", c.in)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	f := func(v int32) bool {
		tm := Time(v)
		got, err := Parse(tm.String())
		return err == nil && got == tm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse(bad) did not panic")
		}
	}()
	MustParse("not a time")
}

func TestMod(t *testing.T) {
	cases := []struct {
		t, p, want Time
	}{
		{0, 50, 0},
		{50, 50, 0},
		{75, 50, 25},
		{-10, 50, 40},
		{-50, 50, 0},
		{-60, 50, 40},
		{100, 50, 0},
	}
	for _, c := range cases {
		if got := Mod(c.t, c.p); got != c.want {
			t.Errorf("Mod(%d, %d) = %d, want %d", c.t, c.p, got, c.want)
		}
	}
}

func TestModProperty(t *testing.T) {
	f := func(v int64) bool {
		const p = 50000
		m := Mod(Time(v%1<<40), p)
		return m >= 0 && m < p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestModPanicsOnBadPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Mod with zero period did not panic")
		}
	}()
	Mod(1, 0)
}

func TestRange(t *testing.T) {
	r := R(1.0, 3.8)
	if !r.Valid() {
		t.Error("R(1.0, 3.8) should be valid")
	}
	if r.Width() != 2800 {
		t.Errorf("Width = %d, want 2800", r.Width())
	}
	if got := r.Add(R(0, 2)).Max; got != 5800 {
		t.Errorf("Add Max = %d, want 5800", got)
	}
	if r.String() != "1.0/3.8" {
		t.Errorf("String = %q", r.String())
	}
	if (Range{Min: 5, Max: 3}).Valid() {
		t.Error("inverted range should be invalid")
	}
	skew := R(-1, 1)
	if !skew.Valid() {
		t.Error("negative-min skew range should be valid")
	}
	if !(Range{}).IsZero() {
		t.Error("zero range should report IsZero")
	}
	if r.IsZero() {
		t.Error("nonzero range should not report IsZero")
	}
}
