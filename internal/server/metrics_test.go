package server

import (
	"math"
	"testing"
)

// feed records n wall times of 1s, 2s, … n seconds (shuffled order must
// not matter; observe sorts on read).
func feed(m *metrics, n int) {
	for i := n; i >= 1; i-- {
		m.mu.Lock()
		m.walls[m.next] = float64(i)
		m.next++
		if m.next == wallRing {
			m.next, m.filled = 0, true
		}
		m.mu.Unlock()
	}
}

// TestQuantilesNearestRank locks the nearest-rank definition on the
// small and boundary sample sizes: rank ceil(q·n), 1-based, clamped.
func TestQuantilesNearestRank(t *testing.T) {
	cases := []struct {
		n        int
		p50, p99 float64
	}{
		{1, 1, 1},     // a single sample is every quantile
		{2, 1, 2},     // p50 = rank ceil(1) = 1st, p99 = rank ceil(1.98) = 2nd
		{3, 2, 3},     // p50 = rank 2 (the median), p99 = rank 3
		{100, 50, 99}, // p99 of 1..100 is the 99th value, not the max
		{101, 51, 100},
	}
	for _, c := range cases {
		var m metrics
		feed(&m, c.n)
		p50, p99, ok := m.quantiles()
		if !ok {
			t.Fatalf("n=%d: quantiles reported no data", c.n)
		}
		if p50 != c.p50 || p99 != c.p99 {
			t.Errorf("n=%d: quantiles = (%g, %g), want (%g, %g)", c.n, p50, p99, c.p50, c.p99)
		}
		if p99 < p50 {
			t.Errorf("n=%d: p99 %g < p50 %g", c.n, p99, p50)
		}
	}
	var empty metrics
	if _, _, ok := empty.quantiles(); ok {
		t.Error("quantiles reported data before the first run")
	}
}

// TestNearestRankIntegerExact pins the regression the integer rank
// computation fixes: float nearest rank (ceil(q*float64(n))) selects
// one rank too high whenever the product rounds just above an integer.
func TestNearestRankIntegerExact(t *testing.T) {
	cases := []struct {
		n, num, den int
	}{
		{25, 28, 100}, // 0.28×25  = 7.000000000000001  → float rank 8
		{25, 56, 100}, // 0.56×25  = 14.000000000000002 → float rank 15
		{50, 14, 100}, // 0.14×50  = 7.000000000000001  → float rank 8
		{20, 95, 100},
		{512, 1, 2},    // full ring, exact halves stay exact
		{512, 99, 100}, // full ring p99
	}
	for _, c := range cases {
		sorted := make([]float64, c.n)
		for i := range sorted {
			sorted[i] = float64(i + 1)
		}
		wantRank := (c.num*c.n + c.den - 1) / c.den // ceil in exact arithmetic
		got := nearestRank(sorted, c.num, c.den)
		if got != float64(wantRank) {
			t.Errorf("nearestRank(n=%d, %d/%d) = %g, want rank %d", c.n, c.num, c.den, got, wantRank)
		}
		if floatRank := int(math.Ceil(float64(c.num) / float64(c.den) * float64(c.n))); floatRank != wantRank {
			// Not a failure — documentation that this case is exactly the
			// one the float formulation got wrong.
			t.Logf("n=%d q=%d/%d: float rank %d vs exact rank %d", c.n, c.num, c.den, floatRank, wantRank)
		}
	}
}

// TestQuantilesRingWrap: once the ring has wrapped, quantiles cover the
// whole window, not just the unwrapped prefix.
func TestQuantilesRingWrap(t *testing.T) {
	var m metrics
	feed(&m, wallRing+10) // wraps; window holds wallRing samples
	_, _, ok := m.quantiles()
	if !ok {
		t.Fatal("no data after wrap")
	}
	m.mu.Lock()
	if !m.filled || m.next != 10 {
		t.Errorf("ring state after wrap: filled=%v next=%d", m.filled, m.next)
	}
	m.mu.Unlock()
}
