package report

import (
	"fmt"
	"strings"

	"scaldtv/internal/verify"
)

// ExploreListing renders the case-exploration report: the poisoned
// constraint sites, the candidate provenance (what was ranked, what each
// probe cost), and the emitted minimal case set, spelled as case
// directives ready to paste into the source.
func ExploreListing(res *verify.Result) string {
	ex := res.Exploration
	if ex == nil {
		return "case exploration unavailable: run the verifier with Explore\n"
	}
	var sb strings.Builder
	sb.WriteString("CASE EXPLORATION\n\n")
	if len(ex.Sites) == 0 {
		sb.WriteString("  no U/C-poisoned constraint sites: no case splits needed\n")
		return sb.String()
	}
	fmt.Fprintf(&sb, "  %d poisoned constraint site(s)\n", len(ex.Sites))
	for _, s := range ex.Sites {
		state := "NOT DISCHARGED"
		if s.Discharged {
			state = "discharged"
		}
		fmt.Fprintf(&sb, "    %-24s %-22s %-28s %s",
			trunc(s.Prim, 24), trunc(s.Data, 22), trunc(s.Kind.String(), 28), state)
		if len(s.By) > 0 {
			fmt.Fprintf(&sb, " by %s", strings.Join(s.By, ", "))
		}
		sb.WriteString("\n")
	}

	sb.WriteString("\n  candidate control signals (ranked by poisoned sites in forward cone)\n")
	fmt.Fprintf(&sb, "    %-26s %6s %10s %10s %7s  %s\n",
		"SIGNAL", "SITES", "CONE PRIMS", "CONE NETS", "PROBES", "")
	for _, c := range ex.Candidates {
		mark := ""
		if c.Chosen {
			mark = "<< CHOSEN"
		}
		fmt.Fprintf(&sb, "    %-26s %6d %10d %10d %7d  %s\n",
			trunc(c.Base, 26), c.Sites, c.ConePrims, c.ConeNets, c.Probes, mark)
	}
	if ex.Skipped > 0 {
		fmt.Fprintf(&sb, "    … %d reachable candidate(s) beyond the probe cap were not probed\n", ex.Skipped)
	}

	sb.WriteString("\n")
	if len(ex.CaseSet) == 0 {
		sb.WriteString("  no case split discharges the poisoned sites\n")
	} else {
		kind := "case set"
		if ex.Minimal {
			kind = "minimal case set"
		}
		fmt.Fprintf(&sb, "  %s (%d cycle(s)):\n", kind, len(ex.CaseSet))
		for _, label := range ex.CaseSet {
			fmt.Fprintf(&sb, "    case %s\n", label)
		}
	}
	if ex.Residual > 0 {
		fmt.Fprintf(&sb, "\n  %d violation(s) remain under this case set — real timing errors, not case artifacts\n",
			ex.Residual)
	}
	return sb.String()
}

// StatListing renders the statistical-mode site probabilities: one row
// per constraint evaluation, the probability that the constraint is
// violated when every delay is drawn from a truncated normal over its
// data-sheet range instead of pinned at the worst-case corner.
func StatListing(res *verify.Result) string {
	if len(res.SiteProbs) == 0 {
		return "statistical listing unavailable: run the verifier with -delays=statistical\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "STATISTICAL DELAY ANALYSIS — design %s (truncated-normal quadrature, σ = range/6)\n\n",
		res.Design.Name)
	fmt.Fprintf(&sb, "  %-12s %-34s %-26s %10s  %s\n",
		"P(VIOLATE)", "CHECKER", "DATA", "WC SLACK", "CRITICAL FROM")
	for _, p := range res.SiteProbs {
		mark := ""
		if p.Prob > 0 {
			mark = "  << AT RISK"
		}
		fmt.Fprintf(&sb, "  %-12.6f %-34s %-26s %10.1f  %s%s\n",
			p.Prob, trunc(p.Prim, 34), trunc(p.Data, 26), p.SlackNS, trunc(p.From, 24), mark)
	}
	return sb.String()
}
