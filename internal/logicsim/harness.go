package logicsim

import (
	"scaldtv/internal/tick"
)

// Bench drives a circuit with input vectors, cycle by cycle, measuring
// when the monitored output settles — the procedure a designer using logic
// simulation for timing verification must repeat for every vector that
// exercises a distinct timing path (§1.4.1).
type Bench struct {
	Sim    *Simulator
	Inputs []int
	Output int
	Cycle  tick.Time

	cycles int
}

// NewBench wraps a circuit for vector-driven simulation.
func NewBench(c *Circuit, inputs []int, output int, cycle tick.Time) *Bench {
	return &Bench{Sim: New(c), Inputs: inputs, Output: output, Cycle: cycle}
}

// ApplyVector drives the inputs to the bit pattern at the start of the
// next cycle, simulates until the end of the cycle, and returns the time
// (relative to the cycle start) at which the output last changed.
func (b *Bench) ApplyVector(bits uint64) tick.Time {
	start := tick.Time(b.cycles) * b.Cycle
	b.cycles++
	for i, net := range b.Inputs {
		v := L0
		if bits>>uint(i)&1 == 1 {
			v = L1
		}
		b.Sim.Set(net, v, start)
	}
	b.Sim.Run(start + b.Cycle)
	settle := b.Sim.LastChange(b.Output)
	if settle < start {
		return 0 // the output did not move this cycle
	}
	return settle - start
}

// ExhaustiveWorstSettle simulates every transition between all 2^n input
// vectors (Gray-code order, so each cycle flips one input, plus a final
// sweep of complement transitions) and returns the worst observed settle
// time of the output, the number of cycles simulated, and the events
// processed.  This is the exhaustive procedure required to *guarantee* the
// worst-case path has been exercised — exponential in the input count.
func ExhaustiveWorstSettle(c *Circuit, inputs []int, output int, cycle tick.Time) (worst tick.Time, cycles, events int) {
	b := NewBench(c, inputs, output, cycle)
	n := uint(len(inputs))
	total := uint64(1) << n
	// Gray-code walk over all vectors.
	for i := uint64(0); i < total; i++ {
		g := i ^ (i >> 1)
		if s := b.ApplyVector(g); s > worst {
			worst = s
		}
	}
	// Complement transitions (all inputs flipping at once) to exercise
	// multi-input races.
	for i := uint64(0); i < total; i++ {
		g := i ^ (i >> 1)
		if s := b.ApplyVector(g); s > worst {
			worst = s
		}
		if s := b.ApplyVector(^g & (total - 1)); s > worst {
			worst = s
		}
	}
	return worst, b.cycles, b.Sim.Events
}
