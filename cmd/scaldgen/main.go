// Command scaldgen emits a synthetic S-1 Mark IIA-style pipelined design
// in the textual HDL, standing in for the paper's proprietary 6357-chip
// design database (§3.3).  Pipe its output to scaldtv:
//
//	scaldgen -chips 6357 > markiia.scald
//	scaldtv markiia.scald
package main

import (
	"flag"
	"fmt"
	"os"

	"scaldtv/internal/gen"
)

func main() {
	chips := flag.Int("chips", 6357, "target MSI chip count")
	inject := flag.Int("inject", 0, "number of deliberately failing paths to inject")
	cases := flag.Int("cases", 0, "number of case-analysis cycles to append")
	varCycle := flag.Bool("varcycle", false, "add the variable-length-cycle tail that needs case analysis (§3.3.2)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: scaldgen [-chips n] [-inject n] [-cases n]")
		os.Exit(2)
	}
	fmt.Print(gen.Source(gen.Config{Chips: *chips, Inject: *inject, Cases: *cases, VariableCycle: *varCycle}))
}
