package expand

import (
	"strings"
	"testing"

	"scaldtv/internal/hdl"
	"scaldtv/internal/netlist"
	"scaldtv/internal/tick"
	"scaldtv/internal/values"
	"scaldtv/internal/verify"
)

func mustExpand(t *testing.T, src string) (*netlist.Design, *Report) {
	t.Helper()
	f, err := hdl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d, r, err := Expand(f)
	if err != nil {
		t.Fatal(err)
	}
	return d, r
}

func expandErr(t *testing.T, src string) error {
	t.Helper()
	f, err := hdl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = Expand(f)
	return err
}

func TestExpandFlat(t *testing.T) {
	d, r := mustExpand(t, `
design FLAT
period 50ns
defaultwire 0ns 0ns
or G1 delay=(1.0, 2.9) ("A .S0-25", "B .S0-25") -> (X)
reg R1 delay=(1.5, 4.5) ("CK .P20-30", X) -> (Q)
`)
	if len(d.Prims) != 2 || len(d.Nets) != 5 {
		t.Errorf("sizes: %d prims, %d nets", len(d.Prims), len(d.Nets))
	}
	if r.Primitives != 2 || r.Census[netlist.KOr] != 1 || r.Census[netlist.KReg] != 1 {
		t.Errorf("census wrong: %+v", r)
	}
	if _, ok := d.NetByName("CK .P20-30"); !ok {
		t.Error("clock net missing")
	}
	if d.Prims[0].Name != "G1" || d.Prims[0].Delay != tick.R(1.0, 2.9) {
		t.Errorf("gate wrong: %+v", d.Prims[0])
	}
}

func TestExpandVectorsAndParams(t *testing.T) {
	d, r := mustExpand(t, `
design VEC
period 50ns
macro DATAPATH (SIZE) {
    param IN<0:SIZE-1>, CK, OUT<0:SIZE-1>
    local MID<0:SIZE-1>
    buf delay=(1,2) (IN<0:SIZE-1>) -> (MID<0:SIZE-1>)
    reg delay=(1.5,4.5) (CK, MID<0:SIZE-1>) -> (OUT<0:SIZE-1>)
}
use DATAPATH DP1 SIZE=8 (IN="D .S0-25"<0:7>, CK="CK .P20-30", OUT=Q<0:7>)
use DATAPATH DP2 SIZE=4 (IN="E .S0-25"<0:3>, CK="CK .P20-30", OUT=R<0:3>)
`)
	if r.MacroUses != 2 {
		t.Errorf("macro uses = %d", r.MacroUses)
	}
	if r.Primitives != 4 {
		t.Errorf("primitives = %d, want 4", r.Primitives)
	}
	if r.ScalarBits != 8+8+4+4 {
		t.Errorf("scalar bits = %d, want 24", r.ScalarBits)
	}
	if r.AvgWidth() != 6.0 {
		t.Errorf("avg width = %v, want 6.0", r.AvgWidth())
	}
	// Locals are uniquified per expansion.
	if _, ok := d.NetByName("DP1/MID<3>"); !ok {
		t.Error("DP1 local missing")
	}
	if _, ok := d.NetByName("DP2/MID<3>"); !ok {
		t.Error("DP2 local missing")
	}
	if _, ok := d.NetByName("DP2/MID<7>"); ok {
		t.Error("DP2 local too wide")
	}
	// Port bits bound to the actual signals (synonym resolution):
	// DP1 binds 8+1+8 bits, DP2 binds 4+1+4.
	if r.Synonyms != 17+9 {
		t.Errorf("synonyms = %d, want 26", r.Synonyms)
	}
}

func TestExpandSubslice(t *testing.T) {
	d, _ := mustExpand(t, `
period 50ns
macro HALF {
    param IN<0:7>, OUT<0:3>
    buf delay=(1,1) (IN<4:7>) -> (OUT<0:3>)
}
use HALF H (IN="WIDE .S0-25"<0:7>, OUT=N<0:3>)
`)
	// The buffer input must be WIDE<4..7>.
	p := d.Prims[0]
	n := d.Nets[p.In[0].Bits[0].Net]
	if n.Base != "WIDE<4>" {
		t.Errorf("subslice starts at %q, want WIDE<4>", n.Base)
	}
}

func TestExpandNestedMacros(t *testing.T) {
	d, r := mustExpand(t, `
period 50ns
macro INNER {
    param A, B
    buf delay=(1,1) (A) -> (B)
}
macro OUTER {
    param X, Y
    local T
    use INNER I1 (A=X, B=T)
    use INNER I2 (A=T, B=Y)
}
use OUTER O (X="IN .S0-25", Y=OUT)
`)
	if r.Primitives != 2 || r.MacroUses != 3 {
		t.Errorf("nested expansion wrong: %+v", r)
	}
	if _, ok := d.NetByName("O/T"); !ok {
		t.Error("nested local missing")
	}
	// Labels carry the hierarchical path.
	if d.Prims[0].Name != "O/I1/buf.1" && !strings.HasPrefix(d.Prims[0].Name, "O/I1") {
		t.Errorf("hierarchical label wrong: %q", d.Prims[0].Name)
	}
}

func TestExpandRecursionCaught(t *testing.T) {
	err := expandErr(t, `
period 50ns
macro LOOP {
    param A, B
    use LOOP (A=A, B=B)
}
use LOOP (A=X, B=Y)
`)
	if err == nil || !strings.Contains(err.Error(), "recursive") {
		t.Errorf("recursion not caught: %v", err)
	}
}

func TestExpandErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`design D
or (A,B) -> (X)`, "clock period"},
		{`period 50ns
use NOSUCH (A=B)`, "unknown macro"},
		{`period 50ns
macro M { param A, B
buf delay=(1,1) (A) -> (B) }
use M (A=X)`, "not connected"},
		{`period 50ns
macro M { param A
buf delay=(1,1) (A) -> (A) }
use M (A=X, B=Y)`, "no port B"},
		{`period 50ns
macro M (SIZE) { param A<0:SIZE-1>
buf delay=(1,1) (A<0:SIZE-1>) -> (A<0:SIZE-1>) }
use M (A=X<0:3>)`, "needs parameter"},
		{`period 50ns
macro M { param A<0:3>
buf delay=(1,1) (A<0:3>) -> (A<0:3>) }
use M (A=X<0:7>)`, "is 4 bits, connection"},
		{`period 50ns
wire NOSUCH 0ns 1ns`, "unknown signal"},
		{`period 50ns
mux2 delay=(1,1) (S<0:1>, A, B) -> (X)`, "one bit wide"},
		{`period 50ns
reg delay=(1,1) (CK, D) -> ()`, "outputs"},
		{`period 50ns
and delay=(1,1) (A) -> (-X)`, "cannot carry"},
		{`period 50ns
signal V<3:0>`, "inverted bit range"},
		{`period 50ns
macro M { param A<0:3>
buf delay=(1,1) (A<0:9>) -> (A<0:3>) }
use M (A=X<0:3>)`, "exceeds bound width"},
	}
	for _, c := range cases {
		err := expandErr(t, c.src)
		if err == nil {
			t.Errorf("Expand(%q) succeeded, want %q", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Expand error %q does not contain %q", err, c.want)
		}
	}
}

// fig25HDL is the Fig 2-5 register-file example expressed in the textual
// HDL, matching the programmatic construction in the verify tests.
const fig25HDL = `
design "FIG 2-5"
period 50ns
clockunit 6.25ns
defaultwire 0ns 2ns
skew precision -1ns 1ns

macro "16W RAM 10145A" (SIZE) {
    param I<0:SIZE-1>, A<0:3>, WE, DO
    setuphold "RAM I CHK" setup=4.5 hold=-1.0 (I<0:SIZE-1>, -WE)
    setupriseholdfall "RAM A CHK" setup=3.5 hold=1.0 (A<0:3>, WE)
    minpulse "RAM WE WIDTH" high=4.0 (WE)
    chg "RAM READ" delay=(5.0, 9.0) (A<0>, A<1>, A<2>, A<3>, WE) -> (DO)
}

mux2 "ADR MUX" delay=(1.2,3.3) seldelay=(0.3,1.2) ("CLK .P0-4" &Z, "READ ADR .S4-9"<0:3>, "W ADR .S0-6"<0:3>) -> (ADR<0:3>)
wire ADR 0ns 6ns
and "WE GATE" delay=(1.0,2.9) (-"CK .P2-3 L" &H, -"WRITE .S0-6 L") -> (WE)
use "16W RAM 10145A" RAM1 SIZE=32 (I="W DATA .S0-6"<0:31>, A=ADR<0:3>, WE=WE, DO=DO)
reg "OUT REG" delay=(1.5,4.5) ("CLK .P0-4", DO) -> (Q<0:31>)
setuphold "OUT REG CHK" setup=2.5 hold=1.5 (DO, "CLK .P0-4")
`

// TestFig25ThroughHDL runs the full pipeline — parse, expand, verify — on
// the Fig 2-5 source and reproduces the Fig 3-11 errors exactly.
func TestFig25ThroughHDL(t *testing.T) {
	d, r := mustExpand(t, fig25HDL)
	if r.MacroUses != 1 {
		t.Errorf("macro uses = %d", r.MacroUses)
	}
	res, err := verify.Run(d, verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, v := range res.Violations {
		kinds = append(kinds, v.Prim+": "+v.Kind.String())
		switch v.Prim {
		case "RAM1/RAM A CHK":
			if v.Kind != verify.SetupViolation || v.Required != tick.FromNS(3.5) || v.Actual != 0 {
				t.Errorf("RAM setup violation wrong: %+v", v)
			}
		case "OUT REG CHK":
			if v.Kind != verify.SetupViolation || v.Required != tick.FromNS(2.5) || v.Actual != tick.FromNS(1.5) {
				t.Errorf("register setup violation wrong: %+v", v)
			}
		default:
			t.Errorf("unexpected violation: %+v", v)
		}
	}
	if len(res.Violations) != 2 {
		t.Errorf("got %d violations, want 2: %v", len(res.Violations), kinds)
	}
}

func TestExpandCases(t *testing.T) {
	d, _ := mustExpand(t, `
period 100ns
buf delay=(10,10) ("CONTROL .S0-100") -> (X)
case "CONTROL" = 0
case "CONTROL" = 1
`)
	if len(d.Cases) != 2 || d.Cases[0].Assignments[0].Base != "CONTROL" {
		t.Errorf("cases wrong: %+v", d.Cases)
	}
}

func TestExpandDefaults(t *testing.T) {
	d, _ := mustExpand(t, `
period 50ns
buf delay=(1,1) ("A .S0-25") -> (B)
`)
	// Defaults: 1 ns clock unit, 0/2 wire, ±1/±5 skews.
	if d.ClockUnit != tick.NS || d.DefaultWire != tick.R(0, 2) {
		t.Errorf("defaults wrong: %+v", d)
	}
	if d.PrecisionSkew != tick.R(-1, 1) || d.ClockSkew != tick.R(-5, 5) {
		t.Errorf("default skews wrong: %+v", d)
	}
}

func TestReportTypesUsed(t *testing.T) {
	_, r := mustExpand(t, `
period 50ns
or delay=(1,2) ("A .S0-25", "B .S0-25") -> (X)
and delay=(1,2) (X, "C .S0-25") -> (Y)
reg delay=(1,2) ("CK .P20-30", Y) -> (Q)
`)
	types := r.TypesUsed()
	if len(types) != 3 {
		t.Errorf("types used = %v", types)
	}
}

// TestExpandDelayRF wires the §4.2.2 direction-dependent delays through
// the language: a clock buffer with asymmetric rise/fall delays shifts the
// two edges by different amounts.
func TestExpandDelayRF(t *testing.T) {
	d, _ := mustExpand(t, `
period 50ns
defaultwire 0ns 0ns
skew precision 0 0
buf B delayrf=(2,3,5,7) ("CK .P20-30") -> (OUT)
`)
	p := d.Prims[0]
	if p.RF == nil || p.RF.Rise != tick.R(2, 3) || p.RF.Fall != tick.R(5, 7) {
		t.Fatalf("RF delays not carried: %+v", p.RF)
	}
	res, err := verify.Run(d, verify.Options{KeepWaves: true})
	if err != nil {
		t.Fatal(err)
	}
	id, _ := d.NetByName("OUT")
	w := res.Cases[0].Waves[id]
	if w.At(tick.FromNS(23.5)) != values.V1 || w.At(tick.FromNS(21)) != values.V0 {
		t.Errorf("rise edge wrong: %v", w)
	}
	if w.At(tick.FromNS(34.5)) != values.V1 || w.At(tick.FromNS(37.5)) != values.V0 {
		t.Errorf("fall edge wrong: %v", w)
	}
}

func TestSummaryListing(t *testing.T) {
	_, r := mustExpand(t, `
period 50ns
macro INNER {
    param A, B
    buf delay=(1,1) (A) -> (B)
}
macro OUTER {
    param X, Y
    local T
    use INNER I1 (A=X, B=T)
    use INNER I2 (A=T, B=Y)
}
use OUTER O (X="IN .S0-25", Y=OUT)
buf ROOTBUF delay=(1,1) (OUT) -> (OUT2)
`)
	if r.UsesByMacro["OUTER"] != 1 || r.UsesByMacro["INNER"] != 2 {
		t.Errorf("uses by macro wrong: %+v", r.UsesByMacro)
	}
	if r.PrimsByMacro["INNER"] != 2 || r.PrimsByMacro[""] != 1 {
		t.Errorf("prims by macro wrong: %+v", r.PrimsByMacro)
	}
	s := r.SummaryListing()
	for _, want := range []string{"MACRO EXPANSION SUMMARY", "INNER", "OUTER", "(root)", "synonyms"} {
		if !strings.Contains(s, want) {
			t.Errorf("listing missing %q:\n%s", want, s)
		}
	}
}
