package hdl

import (
	"math/rand"
	"strings"
	"testing"

	"scaldtv/internal/tick"
)

func TestLexer(t *testing.T) {
	src := `design EX ; trailing comment
period 50ns
and "WE GATE" delay=(1.0, 2.9) (-"CK .P2-3 L" &H, A<0:SIZE-1>) -> (WE)`
	toks, err := LexAll(src)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, tok := range toks {
		kinds = append(kinds, tok.String())
	}
	joined := strings.Join(kinds, " ")
	for _, want := range []string{"design", "EX", "period", "50ns", `"WE GATE"`, "->", "&", "H", "<", ":", ">"} {
		if !strings.Contains(joined, want) {
			t.Errorf("token stream missing %q: %s", want, joined)
		}
	}
	if strings.Contains(joined, "trailing") {
		t.Error("comment not stripped")
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, "\"newline\nin string\"", "@"} {
		if _, err := LexAll(src); err == nil {
			t.Errorf("LexAll(%q) succeeded, want error", src)
		}
	}
}

func TestParseHeaderDecls(t *testing.T) {
	f, err := Parse(`
design EXAMPLE
period 50ns
clockunit 6.25ns
defaultwire 0ns 2ns
skew precision -1ns 1ns
skew clock -5ns 5ns
`)
	if err != nil {
		t.Fatal(err)
	}
	if f.Design != "EXAMPLE" || f.Period != 50*tick.NS || f.ClockUnit != tick.FromNS(6.25) {
		t.Errorf("header wrong: %+v", f)
	}
	if !f.HasWire || f.Wire != tick.R(0, 2) {
		t.Errorf("defaultwire wrong: %+v", f.Wire)
	}
	if !f.HasPSkew || f.PSkew != tick.R(-1, 1) || !f.HasCSkew || f.CSkew != tick.R(-5, 5) {
		t.Errorf("skews wrong: %+v %+v", f.PSkew, f.CSkew)
	}
}

func TestParseInstance(t *testing.T) {
	f, err := Parse(`
period 50ns
and "WE GATE" delay=(1.0, 2.9) (-"CK .P2-3 L" &H, -"WRITE .S0-6 L") -> (WE)
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Body) != 1 {
		t.Fatalf("got %d instances", len(f.Body))
	}
	inst := f.Body[0]
	if inst.Kind != "and" || inst.Label != "WE GATE" {
		t.Errorf("instance head wrong: %+v", inst)
	}
	if !inst.HasDelay || inst.Delay != tick.R(1.0, 2.9) {
		t.Errorf("delay wrong: %+v", inst.Delay)
	}
	if len(inst.Ins) != 2 || len(inst.Outs) != 1 {
		t.Fatalf("connection counts wrong: %d in, %d out", len(inst.Ins), len(inst.Outs))
	}
	if !inst.Ins[0].Invert || inst.Ins[0].Name != "CK .P2-3 L" || inst.Ins[0].Dirs != "H" {
		t.Errorf("first input wrong: %+v", inst.Ins[0])
	}
	if inst.Outs[0].Name != "WE" || inst.Outs[0].Invert {
		t.Errorf("output wrong: %+v", inst.Outs[0])
	}
}

func TestParseMacroAndUse(t *testing.T) {
	f, err := Parse(`
period 50ns
macro "16W RAM" (SIZE) {
    param I<0:SIZE-1>, A<0:3>, WE, DO<0:SIZE-1>
    local WET
    chg delay=(5.0, 9.0) (A<0:3>, WE) -> (DO<0:SIZE-1>)
    setuphold setup=4.5 hold=-1.0 (I<0:SIZE-1>, -WE)
    minpulse high=4.0 (WE)
}
use "16W RAM" RAM1 SIZE=32 (I="W DATA .S0-6"<0:31>, A=ADR<0:3>, WE=WE, DO=DO<0:31>)
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Macros) != 1 {
		t.Fatalf("got %d macros", len(f.Macros))
	}
	m := f.Macros[0]
	if m.Name != "16W RAM" || len(m.Params) != 1 || m.Params[0] != "SIZE" {
		t.Errorf("macro head wrong: %+v", m)
	}
	if len(m.Ports) != 4 || len(m.Locals) != 1 || len(m.Body) != 3 {
		t.Errorf("macro contents wrong: %d ports, %d locals, %d body", len(m.Ports), len(m.Locals), len(m.Body))
	}
	// Computed bound SIZE-1 on port I.
	hi, err := m.Ports[0].Hi.Eval(map[string]int{"SIZE": 32})
	if err != nil || hi != 31 {
		t.Errorf("port bound eval = %d, %v", hi, err)
	}
	use := f.Body[0]
	if use.Kind != "use" || use.Macro != "16W RAM" || use.Label != "RAM1" {
		t.Errorf("use head wrong: %+v", use)
	}
	if v, err := use.ParamVals["SIZE"].Eval(nil); err != nil || v != 32 {
		t.Errorf("SIZE binding = %d, %v", v, err)
	}
	if se := use.Conns["I"]; se == nil || se.Name != "W DATA .S0-6" || !se.HasRange {
		t.Errorf("I connection wrong: %+v", se)
	}
	// Negative hold parsed.
	if m.Body[1].Hold != tick.FromNS(-1.0) {
		t.Errorf("negative hold = %v", m.Body[1].Hold)
	}
}

func TestParseCase(t *testing.T) {
	f, err := Parse(`
period 50ns
case "CONTROL SIGNAL" = 0
case "CONTROL SIGNAL" = 1, OTHER = 0
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Cases) != 2 {
		t.Fatalf("got %d cases", len(f.Cases))
	}
	if len(f.Cases[0].Assigns) != 1 || f.Cases[0].Assigns[0].Value != 0 {
		t.Errorf("case 0 wrong: %+v", f.Cases[0])
	}
	if len(f.Cases[1].Assigns) != 2 || f.Cases[1].Label != `CONTROL SIGNAL = 1, OTHER = 0` {
		t.Errorf("case 1 wrong: %+v", f.Cases[1])
	}
}

func TestParseSignalAndWire(t *testing.T) {
	f, err := Parse(`
period 50ns
signal ADR<0:3>
wire ADR 0ns 6ns
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Signals) != 1 || !f.Signals[0].HasRange {
		t.Errorf("signal decl wrong: %+v", f.Signals)
	}
	if len(f.Wires) != 1 || f.Wires[0].Delay != tick.R(0, 6) {
		t.Errorf("wire decl wrong: %+v", f.Wires)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []struct {
		src, want string
	}{
		{`period`, "expected a time"},
		{`bogus 12`, "unknown statement"},
		{`period 50ns  and (A -> (X)`, "expected"},
		{`period 50ns  case X = 2`, "case value"},
		{`period 50ns  skew sideways 0 1`, "precision or clock"},
		{`period 50ns  and delay=(2,1) (A) -> (X)`, "inverted delay"},
		{`period 50ns  macro M { bogus (A) -> (B) }`, "unknown macro body"},
		{`period 50ns  and frob=(1,2) (A) -> (X)`, "unknown property"},
		{`period 50ns  use M (I=A, I=B)`, "connected twice"},
		{`period 50ns  and (A<1:"s">) -> (X)`, "expression"},
	}
	for _, c := range bad {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error %q", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) error %q does not contain %q", c.src, err, c.want)
		}
	}
}

func TestExprEval(t *testing.T) {
	f, err := Parse(`
period 50ns
signal X<0:2*SIZE+1>
signal Y<(SIZE-1)/2>
`)
	if err != nil {
		t.Fatal(err)
	}
	env := map[string]int{"SIZE": 8}
	if v, err := f.Signals[0].Hi.Eval(env); err != nil || v != 17 {
		t.Errorf("2*SIZE+1 = %d, %v", v, err)
	}
	if v, err := f.Signals[1].Hi.Eval(env); err != nil || v != 3 {
		t.Errorf("(SIZE-1)/2 = %d, %v", v, err)
	}
	if _, err := f.Signals[0].Hi.Eval(nil); err == nil {
		t.Error("unbound parameter should fail")
	}
	// Division by zero.
	f2, _ := Parse(`period 50ns
signal Z<1/SIZE>`)
	if _, err := f2.Signals[0].Hi.Eval(map[string]int{"SIZE": 0}); err == nil {
		t.Error("division by zero should fail")
	}
}

func TestMuxAndStorageParse(t *testing.T) {
	f, err := Parse(`
period 50ns
mux2 "ADR MUX" delay=(1.2,3.3) seldelay=(0.3,1.2) ("CLK .P0-4" &Z, RADR<0:3>, WADR<0:3>) -> (ADR<0:3>)
reg "OUT REG" delay=(1.5,4.5) ("CLK .P0-4", DO<0:31>) -> (Q<0:31>)
regrs delay=(1,2) (CK, D, SET, RST) -> (Q2)
latch delay=(1,3.5) (EN, D2<0:3>) -> (Q3<0:3>)
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Body) != 4 {
		t.Fatalf("got %d instances", len(f.Body))
	}
	mux := f.Body[0]
	if !mux.HasSelDelay || mux.SelDelay != tick.R(0.3, 1.2) {
		t.Errorf("seldelay wrong: %+v", mux.SelDelay)
	}
	if mux.Ins[0].Dirs != "Z" {
		t.Errorf("select directive wrong: %+v", mux.Ins[0])
	}
	if f.Body[2].Kind != "regrs" || len(f.Body[2].Ins) != 4 {
		t.Errorf("regrs wrong: %+v", f.Body[2])
	}
}

// TestParserNeverPanics throws random byte soup at the lexer and parser:
// they must return errors, never panic.
func TestParserNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	alphabet := []byte("abcZ09 .,<>(){}&-=:;\"'/*+\n\tперiod")
	for i := 0; i < 5000; i++ {
		n := rng.Intn(60)
		buf := make([]byte, n)
		for j := range buf {
			buf[j] = alphabet[rng.Intn(len(alphabet))]
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on input %q: %v", buf, r)
				}
			}()
			_, _ = Parse(string(buf))
		}()
	}
	// Mutations of valid source must not panic either.
	base := []byte(`period 50ns
macro M (SIZE) { param A<0:SIZE-1>
buf delay=(1,2) (A<0:SIZE-1>) -> (A<0:SIZE-1>) }
use M SIZE=4 (A="X .S0-25"<0:3>)`)
	for i := 0; i < 5000; i++ {
		buf := append([]byte(nil), base...)
		for k := 0; k < 3; k++ {
			buf[rng.Intn(len(buf))] = alphabet[rng.Intn(len(alphabet))]
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on mutated input %q: %v", buf, r)
				}
			}()
			_, _ = Parse(string(buf))
		}()
	}
}
