// Package pathsearch implements a worst-case path-searching timing
// analyser in the style of GRASP and the Race Analysis System (§1.4.2):
// starting and terminating points are determined by the storage elements
// (RAS-style), and every combinational path between them is characterised
// by its minimum and maximum delay.
//
// This is the baseline the Timing Verifier improves upon: because the
// search cannot take the value behaviour of control signals into account,
// it reports paths that can never be sensitised — the spurious-error
// failure mode of Fig 2-6 — whereas the Verifier's case analysis shows the
// true 30 ns delay.
package pathsearch

import (
	"fmt"
	"sort"

	"scaldtv/internal/netlist"
	"scaldtv/internal/tick"
)

// Endpoint is one start→end combinational path summary.
type Endpoint struct {
	From string // starting net (register output or primary input)
	To   string // terminating pin: "prim:port" of a storage or checker input
	Min  tick.Time
	Max  tick.Time
}

// Analysis is the result of a path search.
type Analysis struct {
	Endpoints []Endpoint
	CombLoops []string // nets on combinational cycles (no storage break)
}

type edge struct {
	to       int32
	min, max tick.Time

	// Analytic decomposition of the same edge: when fn > 0 the traversed
	// primitive's delay is Design.DelayFns[fn-1] and cmin/cmax hold only
	// the constant part (wire + select extra), so min = cmin + fn.Min at
	// the default point and likewise for max.  The worst-case and
	// statistical DPs read only min/max; the analytic DP reads fn and the
	// constant parts.
	fn         int32
	cmin, cmax tick.Time
}

type endPin struct {
	label string
	wire  tick.Range
}

// graph is the shared combinational-path graph used by both the
// worst-case and the statistical analyses.
type graph struct {
	adj    [][]edge
	ends   map[int32][]endPin
	starts []int32
	order  []int32
	loops  []string
}

func buildGraph(d *netlist.Design) *graph {
	n := len(d.Nets)
	adj := make([][]edge, n)
	ends := make(map[int32][]endPin)

	addEnd := func(c netlist.Conn, prim, port string) {
		w := d.WireDelay(c.Net, 'E')
		ends[int32(c.Net)] = append(ends[int32(c.Net)], endPin{
			label: prim + ":" + port,
			wire:  w,
		})
	}

	for pi := range d.Prims {
		p := &d.Prims[pi]
		switch {
		case p.Kind.IsChecker():
			for _, c := range p.In[0].Bits {
				addEnd(c, p.Name, p.In[0].Name)
			}
		case p.Kind.IsStorage():
			// Data (and control) inputs terminate paths; outputs start
			// new ones (handled by the start set below).
			for i, port := range p.In {
				for _, c := range port.Bits {
					_ = i
					addEnd(c, p.Name, port.Name)
				}
			}
		default:
			// Combinational: every distinct input net feeds every output
			// net with the wire delay at the pin plus the element delay.
			outNets := map[int32]bool{}
			for _, port := range p.Out {
				for _, o := range port.Bits {
					outNets[int32(o)] = true
				}
			}
			seen := map[int32]bool{}
			for ii, port := range p.In {
				extra := tick.Range{}
				if ii < p.Kind.NumSelects() {
					extra = p.SelectDelay
				}
				for _, c := range port.Bits {
					if seen[int32(c.Net)] {
						continue
					}
					seen[int32(c.Net)] = true
					dir, _ := c.Directives.Head()
					w := d.WireDelay(c.Net, dir)
					delay := p.Delay
					if dir.ZeroesGate() {
						delay = tick.Range{}
					}
					total := w.Add(delay).Add(extra)
					fn := int32(0)
					cmin, cmax := total.Min, total.Max
					if p.Fn > 0 && !dir.ZeroesGate() {
						fn = p.Fn
						ce := w.Add(extra)
						cmin, cmax = ce.Min, ce.Max
					}
					for o := range outNets {
						adj[c.Net] = append(adj[c.Net], edge{to: o, min: total.Min, max: total.Max, fn: fn, cmin: cmin, cmax: cmax})
					}
				}
			}
		}
	}

	// Primary outputs: driven nets nothing reads terminate paths too.
	for i := range d.Nets {
		if len(d.Nets[i].Fanout) == 0 && d.Nets[i].Driver != netlist.NoDriver {
			ends[int32(i)] = append(ends[int32(i)], endPin{label: "output(" + d.Nets[i].Name + ")"})
		}
	}

	// Starting points: storage outputs and undriven nets (RAS-style
	// automatic determination).
	var starts []int32
	for i := range d.Nets {
		drv := d.Nets[i].Driver
		if drv == netlist.NoDriver || d.Prims[drv].Kind.IsStorage() {
			if len(adj[i]) > 0 || len(ends[int32(i)]) > 0 {
				starts = append(starts, int32(i))
			}
		}
	}

	// Topological order of the combinational graph; storage outputs and
	// primary inputs have no incoming combinational edges by construction,
	// so any residual cycle is a genuine combinational loop.
	order, loops := topoOrder(n, adj, d)
	return &graph{adj: adj, ends: ends, starts: starts, order: order, loops: loops}
}

// Analyze searches every combinational path of the design.
func Analyze(d *netlist.Design) (*Analysis, error) {
	g := buildGraph(d)
	n := len(d.Nets)
	adj, ends, starts, order := g.adj, g.ends, g.starts, g.order
	a := &Analysis{CombLoops: g.loops}

	// Longest/shortest path DP per start over the shared topological
	// order.
	const unset = tick.Time(-1)
	minA := make([]tick.Time, n)
	maxA := make([]tick.Time, n)
	for _, s := range starts {
		for i := range minA {
			minA[i], maxA[i] = unset, unset
		}
		minA[s], maxA[s] = 0, 0
		for _, u := range order {
			if maxA[u] == unset {
				continue
			}
			for _, e := range adj[u] {
				if na := minA[u] + e.min; minA[e.to] == unset || na < minA[e.to] {
					minA[e.to] = na
				}
				if na := maxA[u] + e.max; na > maxA[e.to] {
					maxA[e.to] = na
				}
			}
		}
		for net, pins := range ends {
			if maxA[net] == unset {
				continue
			}
			for _, pin := range pins {
				a.Endpoints = append(a.Endpoints, Endpoint{
					From: d.Nets[s].Name,
					To:   pin.label,
					Min:  minA[net] + pin.wire.Min,
					Max:  maxA[net] + pin.wire.Max,
				})
			}
		}
	}
	sort.Slice(a.Endpoints, func(i, j int) bool {
		if a.Endpoints[i].Max != a.Endpoints[j].Max {
			return a.Endpoints[i].Max > a.Endpoints[j].Max
		}
		if a.Endpoints[i].From != a.Endpoints[j].From {
			return a.Endpoints[i].From < a.Endpoints[j].From
		}
		return a.Endpoints[i].To < a.Endpoints[j].To
	})
	return a, nil
}

// topoOrder computes a topological order over the combinational edges,
// returning the names of nets involved in combinational cycles.
func topoOrder(n int, adj [][]edge, d *netlist.Design) ([]int32, []string) {
	indeg := make([]int, n)
	for _, es := range adj {
		for _, e := range es {
			indeg[e.to]++
		}
	}
	queue := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, int32(i))
		}
	}
	order := make([]int32, 0, n)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, e := range adj[u] {
			indeg[e.to]--
			if indeg[e.to] == 0 {
				queue = append(queue, e.to)
			}
		}
	}
	var loops []string
	if len(order) < n {
		for i := 0; i < n; i++ {
			if indeg[i] > 0 {
				loops = append(loops, d.Nets[i].Name)
			}
		}
		sort.Strings(loops)
	}
	return order, loops
}

// Longest returns the endpoints sorted by maximum delay, descending (the
// critical paths).
func (a *Analysis) Longest() []Endpoint { return a.Endpoints }

// Errors returns the endpoints whose maximum delay exceeds the budget —
// the flat pass/fail judgement a path searcher can make without value
// information.
func (a *Analysis) Errors(budget tick.Time) []Endpoint {
	var out []Endpoint
	for _, e := range a.Endpoints {
		if e.Max > budget {
			out = append(out, e)
		}
	}
	return out
}

// String renders the critical-path table.
func (a *Analysis) String() string {
	s := "WORST-CASE PATHS (path-search baseline)\n\n"
	for i, e := range a.Endpoints {
		if i >= 20 {
			s += fmt.Sprintf("  … %d more\n", len(a.Endpoints)-i)
			break
		}
		s += fmt.Sprintf("  %-30s → %-34s %8s / %-8s ns\n", e.From, e.To, e.Min, e.Max)
	}
	if len(a.CombLoops) > 0 {
		s += fmt.Sprintf("\n  combinational loops through: %v\n", a.CombLoops)
	}
	return s
}

// ModuleDelay computes the minimum and maximum combinational latency from
// a set of module input signals to a set of module output signals — the
// measurement §4.2.1 describes for self-timed designs, where the result
// sizes the delay inserted into the module's "done" circuit.  Signal names
// are logical base names; every bit of each named signal participates.
func ModuleDelay(d *netlist.Design, from, to []string) (tick.Range, error) {
	g := buildGraph(d)
	fromNets := map[int32]bool{}
	for _, name := range from {
		for _, n := range d.NetsByBase(name) {
			fromNets[int32(n)] = true
		}
	}
	toNets := map[int32]bool{}
	for _, name := range to {
		for _, n := range d.NetsByBase(name) {
			toNets[int32(n)] = true
		}
	}
	if len(fromNets) == 0 || len(toNets) == 0 {
		return tick.Range{}, fmt.Errorf("pathsearch: module boundary signals not found")
	}
	const unset = tick.Time(-1)
	n := len(d.Nets)
	minA := make([]tick.Time, n)
	maxA := make([]tick.Time, n)
	for i := range minA {
		minA[i], maxA[i] = unset, unset
	}
	for s := range fromNets {
		minA[s], maxA[s] = 0, 0
	}
	for _, u := range g.order {
		if maxA[u] == unset {
			continue
		}
		for _, e := range g.adj[u] {
			if na := minA[u] + e.min; minA[e.to] == unset || na < minA[e.to] {
				minA[e.to] = na
			}
			if na := maxA[u] + e.max; na > maxA[e.to] {
				maxA[e.to] = na
			}
		}
	}
	out := tick.Range{Min: tick.Infinity, Max: 0}
	reached := false
	for t := range toNets {
		if maxA[t] == unset {
			continue
		}
		reached = true
		out.Min = min(out.Min, minA[t])
		out.Max = max(out.Max, maxA[t])
	}
	if !reached {
		return tick.Range{}, fmt.Errorf("pathsearch: no combinational path from the module inputs to its outputs")
	}
	return out, nil
}
