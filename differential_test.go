package scaldtv

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"scaldtv/internal/logicsim"
	"scaldtv/internal/netlist"
	"scaldtv/internal/tick"
	"scaldtv/internal/values"
)

// The differential property: on every example design, the Timing
// Verifier's symbolic seven-value waveforms must conservatively cover
// any trace a concrete gate-level logic simulation of the same netlist
// can produce.  Each symbolic delay range is pinned to a single point
// inside it (minimum, midpoint, maximum), every asserted input is
// replaced with one concrete 0/1 waveform consistent with its
// assertion, and the §1.4.1.1-style simulator is run to periodic steady
// state; wherever the symbolic result claims a definite logic level the
// simulated trace must agree.

// pinRange picks a single concrete delay inside a symbolic range.
func pinRange(r tick.Range, mode int) tick.Time {
	switch mode {
	case 0:
		return r.Min
	case 2:
		return r.Max
	}
	return r.Min + r.Width()/2
}

// simBridge lowers a netlist design onto the logic simulator's gate
// model.  Primitives the simulator cannot express (RS storage, wide
// library macros, pins carrying evaluation directives) are left out:
// their outputs stay at X, which cannot falsify the symbolic claim, so
// the check remains sound and merely loses strength there.
type simBridge struct {
	d      *netlist.Design
	c      *logicsim.Circuit
	mode   int
	netOf  []int // design net -> node carrying the driver's raw output
	wireOf []int // node after the pinned interconnection delay, -1 = not yet built
	inputs map[netlist.NetID]bool
	skip   int // primitives left unmodelled
}

func newSimBridge(d *netlist.Design, inputs map[netlist.NetID]bool, mode int) *simBridge {
	br := &simBridge{
		d:      d,
		c:      &logicsim.Circuit{},
		mode:   mode,
		inputs: inputs,
	}
	br.netOf = br.c.AddNets(len(d.Nets))
	br.wireOf = make([]int, len(d.Nets))
	for i := range br.wireOf {
		br.wireOf[i] = -1
	}
	for pi := range d.Prims {
		br.addPrim(&d.Prims[pi])
	}
	return br
}

// wireNode returns the node a consumer of the net observes: the raw
// node delayed by the pinned interconnection delay.
func (br *simBridge) wireNode(id netlist.NetID) int {
	if br.wireOf[id] >= 0 {
		return br.wireOf[id]
	}
	wire := br.d.DefaultWire
	if w := br.d.Nets[id].Wire; w != nil {
		wire = *w
	}
	node := br.netOf[id]
	if pin := pinRange(wire, br.mode); pin > 0 {
		node = br.buf(node, pin)
	}
	br.wireOf[id] = node
	return node
}

func (br *simBridge) buf(in int, delay tick.Time) int {
	out := br.c.AddNet()
	br.c.AddGate(logicsim.Gate{Kind: logicsim.GBuf, Delay: tick.Range{Min: delay, Max: delay}, In: []int{in}, Out: out})
	return out
}

func (br *simBridge) not(in int) int {
	out := br.c.AddNet()
	br.c.AddGate(logicsim.Gate{Kind: logicsim.GNot, In: []int{in}, Out: out})
	return out
}

// inConn resolves an input connection: wire-delayed, complemented when
// the connection uses the "-" rail.
func (br *simBridge) inConn(c netlist.Conn) int {
	node := br.wireNode(c.Net)
	if c.Invert {
		node = br.not(node)
	}
	return node
}

// bitConn picks the port bit feeding output bit `bit`, broadcasting
// scalar ports across the vector.
func bitConn(port netlist.Port, bit int) netlist.Conn {
	if len(port.Bits) == 1 {
		return port.Bits[0]
	}
	return port.Bits[bit]
}

// outNode returns the node a primitive drives for the given design net.
// Nets whose value the case analysis pins, and wired-OR nets with
// several drivers, keep their driver detached (the symbolic value rules
// there); the gate still runs, into a scrap node.
func (br *simBridge) outNode(id netlist.NetID) int {
	if br.inputs[id] || len(br.d.Drivers(id)) > 1 {
		return br.c.AddNet()
	}
	return br.netOf[id]
}

func (br *simBridge) addPrim(p *netlist.Prim) {
	if p.Kind.IsChecker() {
		return
	}
	for _, port := range p.In {
		for _, c := range port.Bits {
			if !c.Directives.Empty() {
				br.skip++ // §2.6 directives change the symbolic semantics
				return
			}
		}
	}
	if len(p.Out) != 1 {
		br.skip++
		return
	}
	delay := p.Delay
	if p.RF != nil {
		// A single concrete delay must satisfy both directions.
		lo, hi := max(p.RF.Rise.Min, p.RF.Fall.Min), min(p.RF.Rise.Max, p.RF.Fall.Max)
		if lo > hi {
			br.skip++
			return
		}
		delay = tick.Range{Min: lo, Max: hi}
	}
	pin := pinRange(delay, br.mode)
	pinned := tick.Range{Min: pin, Max: pin}

	switch {
	case p.Kind.IsGate():
		gk, ok := map[netlist.Kind]logicsim.Kind{
			netlist.KBuf: logicsim.GBuf, netlist.KNot: logicsim.GNot,
			netlist.KAnd: logicsim.GAnd, netlist.KOr: logicsim.GOr,
			netlist.KNand: logicsim.GNand, netlist.KNor: logicsim.GNor,
			// XOR is one concrete realisation of the CHANGE function.
			netlist.KXor: logicsim.GXor, netlist.KChg: logicsim.GXor,
		}[p.Kind]
		if !ok {
			br.skip++
			return
		}
		for bit := 0; bit < p.Width; bit++ {
			ins := make([]int, len(p.In))
			for i, port := range p.In {
				ins[i] = br.inConn(bitConn(port, bit))
			}
			br.c.AddGate(logicsim.Gate{Kind: gk, Name: p.Name, Delay: pinned, In: ins, Out: br.outNode(p.Out[0].Bits[bit])})
		}
	case p.Kind.NumSelects() > 0:
		br.addMux(p, pinned)
	case p.Kind == netlist.KReg:
		ck := br.inConn(p.In[0].Bits[0])
		for bit := 0; bit < p.Width; bit++ {
			br.c.AddGate(logicsim.Gate{Kind: logicsim.GDff, Name: p.Name, Delay: pinned,
				In: []int{ck, br.inConn(bitConn(p.In[1], bit))}, Out: br.outNode(p.Out[0].Bits[bit])})
		}
	case p.Kind == netlist.KLatch:
		en := br.inConn(p.In[0].Bits[0])
		for bit := 0; bit < p.Width; bit++ {
			br.c.AddGate(logicsim.Gate{Kind: logicsim.GLatch, Name: p.Name, Delay: pinned,
				In: []int{en, br.inConn(bitConn(p.In[1], bit))}, Out: br.outNode(p.Out[0].Bits[bit])})
		}
	default: // KRegRS, KLatchRS: no simulator model
		br.skip++
	}
}

// addMux decomposes an n-way multiplexer into its AND-OR sum of
// products: out = OR_i( AND(select literals for i, data_i) ), with the
// pinned select-path delay feeding the literals and the pinned data
// delay on the final OR — matching the symbolic Fig 3-6 delay model.
func (br *simBridge) addMux(p *netlist.Prim, pinned tick.Range) {
	ns, nd := p.Kind.NumSelects(), p.Kind.NumMuxData()
	selPin := pinRange(p.SelectDelay, br.mode)
	sel := make([]int, ns)
	nsel := make([]int, ns)
	for j := 0; j < ns; j++ {
		node := br.inConn(p.In[j].Bits[0])
		if selPin > 0 {
			node = br.buf(node, selPin)
		}
		sel[j] = node
		nsel[j] = br.not(node)
	}
	for bit := 0; bit < p.Width; bit++ {
		terms := make([]int, nd)
		for i := 0; i < nd; i++ {
			ins := make([]int, 0, ns+1)
			for j := 0; j < ns; j++ {
				if i>>j&1 == 1 {
					ins = append(ins, sel[j])
				} else {
					ins = append(ins, nsel[j])
				}
			}
			ins = append(ins, br.inConn(bitConn(p.In[ns+i], bit)))
			term := br.c.AddNet()
			br.c.AddGate(logicsim.Gate{Kind: logicsim.GAnd, In: ins, Out: term})
			terms[i] = term
		}
		br.c.AddGate(logicsim.Gate{Kind: logicsim.GOr, Name: p.Name, Delay: pinned,
			In: terms, Out: br.outNode(p.Out[0].Bits[bit])})
	}
}

// driveEvent is one scheduled input transition within a cycle.
type driveEvent struct {
	at tick.Time
	v  logicsim.LValue
}

// concretize refines a symbolic waveform into one concrete trace: 1
// throughout RISE bands and 1-regions, 0 throughout FALL bands and
// 0-regions, holding the previous level through STABLE and CHANGE
// regions (a signal that does not move satisfies both), X where the
// value is symbolically unknowable.  A waveform with no determined
// region at all becomes constant 0 — also a valid refinement of STABLE.
func concretize(w values.Waveform) []driveEvent {
	inc := w.IncorporateSkew()
	var evs []driveEvent
	var pos tick.Time
	last := logicsim.LValue(0xff)
	sawVU := false
	for _, s := range inc.Segs {
		var v logicsim.LValue
		switch s.V {
		case values.V0, values.VF:
			v = logicsim.L0
		case values.V1, values.VR:
			v = logicsim.L1
		case values.VU:
			v = logicsim.LX
			sawVU = true
		default: // VS, VC: hold
			pos += s.W
			continue
		}
		if v != last {
			evs = append(evs, driveEvent{at: pos, v: v})
			last = v
		}
		pos += s.W
	}
	if len(evs) == 0 {
		if sawVU {
			return nil // leave the net at X
		}
		return []driveEvent{{v: logicsim.L0}}
	}
	return evs
}

// covers7 reports whether a symbolic value admits a concrete simulation
// value.  Only definite concrete levels can falsify.
func covers7(sym values.Value, conc logicsim.LValue) bool {
	if conc != logicsim.L0 && conc != logicsim.L1 {
		return true
	}
	switch sym {
	case values.V0:
		return conc == logicsim.L0
	case values.V1:
		return conc == logicsim.L1
	}
	return true
}

// cycleTrace is the concrete steady-state cycle of one simulated case,
// sampled on a fixed grid: Vals[i][k] is the value of design net i at
// offset k*Step into the cycle.
type cycleTrace struct {
	Step tick.Time
	Vals [][]logicsim.LValue
}

// simulateCycle lowers the design onto the logic simulator with delays
// pinned by mode, drives every undriven or pinned net with a concrete
// refinement of its symbolic waveform (this is how case splits and
// Force assignments reach the simulator: both override the symbolic
// wave of an undriven net, so its refinement drives the pinned level),
// runs to periodic steady state and samples the final cycle.
func simulateCycle(t *testing.T, d *netlist.Design, waves []values.Waveform, pinnedNets map[netlist.NetID]bool, mode int) cycleTrace {
	t.Helper()
	period := d.Period
	br := newSimBridge(d, pinnedNets, mode)

	// Concrete input schedules: every undriven or pinned net is driven
	// with a refinement of its own symbolic waveform.
	type netDrive struct {
		node int
		evs  []driveEvent
	}
	var drives []netDrive
	for i := range d.Nets {
		id := netlist.NetID(i)
		if d.Nets[i].Driver != netlist.NoDriver && !pinnedNets[id] {
			continue
		}
		if evs := concretize(waves[i]); evs != nil {
			drives = append(drives, netDrive{node: br.netOf[i], evs: evs})
		}
	}

	sim := logicsim.New(br.c)
	sim.Limit = 5_000_000
	const warm = 8
	for cyc := tick.Time(0); cyc <= warm+1; cyc++ {
		for _, nd := range drives {
			for _, e := range nd.evs {
				sim.Set(nd.node, e.v, cyc*period+e.at)
			}
		}
	}

	step := period / 256
	if step == 0 {
		step = 1
	}
	vals := make([][]logicsim.LValue, len(d.Nets))
	for i := range vals {
		vals[i] = make([]logicsim.LValue, 0, int(period/step)+1)
	}
	base := tick.Time(warm) * period
	for off := tick.Time(0); off < period; off += step {
		sim.Run(base + off)
		if sim.Limit > 0 && sim.Events >= sim.Limit {
			t.Fatalf("mode %d: simulation exceeded %d events (zero-delay oscillation?)", mode, sim.Limit)
		}
		for i := range d.Nets {
			vals[i] = append(vals[i], sim.Value(br.netOf[i]))
		}
	}
	return cycleTrace{Step: step, Vals: vals}
}

// runDifferential simulates one case of a design with delays pinned by
// mode and checks pointwise coverage over the final, steady-state
// cycle.  It returns the number of definite concrete samples, a
// measure of how much the check actually bit.
func runDifferential(t *testing.T, d *netlist.Design, res *Result, ci, mode int) int {
	t.Helper()
	waves := res.Cases[ci].Waves

	// Nets the case analysis pins keep their symbolic constant; their
	// drivers are detached in the bridge.
	pinnedNets := map[netlist.NetID]bool{}
	if ci < len(d.Cases) {
		for _, as := range d.Cases[ci].Assignments {
			for i := range d.Nets {
				if netlist.BaseMatches(d.Nets[i].Base, as.Base) {
					pinnedNets[netlist.NetID(i)] = true
				}
			}
		}
	}
	tr := simulateCycle(t, d, waves, pinnedNets, mode)

	incs := make([]values.Waveform, len(d.Nets))
	for i := range d.Nets {
		incs[i] = waves[i].IncorporateSkew()
	}
	solid := 0
	for k, off := 0, tick.Time(0); off < d.Period; k, off = k+1, off+tr.Step {
		for i := range d.Nets {
			cv := tr.Vals[i][k]
			if cv == logicsim.L0 || cv == logicsim.L1 {
				solid++
			}
			if sv := incs[i].At(off); !covers7(sv, cv) {
				t.Errorf("mode %d net %q at %v: symbolic %v does not cover simulated %v\n  sym: %v",
					mode, d.Nets[i].Name, off, sv, cv, incs[i])
				return solid
			}
		}
	}
	return solid
}

// TestDifferentialAgainstLogicsim cross-checks the verifier against the
// gate-level logic simulator on every example design, for every case
// and three delay-pinning modes.
func TestDifferentialAgainstLogicsim(t *testing.T) {
	designs, err := filepath.Glob(filepath.Join("examples", "*", "*.scald"))
	if err != nil {
		t.Fatal(err)
	}
	if len(designs) == 0 {
		t.Fatal("no .scald designs under examples/")
	}
	for _, path := range designs {
		name := strings.TrimSuffix(filepath.Base(path), ".scald")
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			d, err := Compile(string(src) + "\n" + Library)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Verify(d, Options{KeepWaves: true})
			if err != nil {
				t.Fatal(err)
			}
			solid := 0
			for ci := range res.Cases {
				for mode := 0; mode < 3; mode++ {
					solid += runDifferential(t, d, res, ci, mode)
				}
			}
			if solid == 0 {
				t.Error("no definite concrete samples: the differential check was vacuous")
			}
			t.Logf("%d definite concrete samples across %d case(s) x 3 pinnings", solid, len(res.Cases))
		})
	}
}

// TestDifferentialRandom extends the cross-check beyond the examples:
// small random synchronous fabrics (the soundness-test generator family
// lives in internal/verify; here a deterministic mesh suffices) built
// from gates, a register and a latch, to exercise the GLatch bridge.
func TestDifferentialRandom(t *testing.T) {
	for seed := 0; seed < 8; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			b := NewBuilder(fmt.Sprintf("rand%d", seed))
			b.SetPeriod(NS(100))
			b.SetDefaultWire(Delay(0, float64(seed%3)))
			b.SetPrecisionSkew(Delay(-0.5, 0.5))
			in1 := b.Net("IN1 .S5-60")
			in2 := b.Net("IN2 .S10-80")
			ck := b.Net("CK .P70-80")
			g1 := b.Net("G1")
			g2 := b.Net("G2")
			q := b.Net("Q")
			lq := b.Net("LQ")
			kinds := []Kind{KAnd, KOr, KNand, KNor, KXor}
			b.Gate(kinds[seed%len(kinds)], "GATE1", Delay(1, float64(2+seed%4)), []NetID{g1}, Conns(in1), Conns(in2))
			b.Gate(kinds[(seed+2)%len(kinds)], "GATE2", Delay(0.5, 3), []NetID{g2}, Conns(g1), Conns(in1))
			b.Register("REG", Delay(1, 2.5), []NetID{q}, Conn{Net: ck}, Conns(g2))
			b.Latch("LATCH", Delay(1, 2), []NetID{lq}, Conn{Net: ck}, Conns(g1))
			d, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			res, err := Verify(d, Options{KeepWaves: true})
			if err != nil {
				t.Fatal(err)
			}
			solid := 0
			for mode := 0; mode < 3; mode++ {
				solid += runDifferential(t, d, res, 0, mode)
			}
			if solid == 0 {
				t.Error("no definite concrete samples")
			}
		})
	}
}
