// Package report renders the Timing Verifier's output listings in the
// style of the paper: the timing summary showing each signal's value over
// the cycle (Fig 3-10), the constraint-error listing (Fig 3-11), and the
// cross-reference listing of undefined signals (§2.5).
package report

import (
	"fmt"
	"regexp"
	"sort"
	"strings"

	"scaldtv/internal/netlist"
	"scaldtv/internal/tick"
	"scaldtv/internal/values"
	"scaldtv/internal/verify"
)

// WaveString renders a waveform the way the paper's listings do: a
// sequence of "value time" pairs, each giving the value and the time (in
// ns) at which it begins, after incorporating any carried skew.
func WaveString(w values.Waveform) string {
	inc := w.IncorporateSkew()
	var sb strings.Builder
	var pos tick.Time
	for i, s := range inc.Segs {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%s %s", s.V, pos)
		pos += s.W
	}
	return sb.String()
}

var bitSuffix = regexp.MustCompile(`^(.*)<(\d+)>(.*)$`)

// group is a set of vector bits sharing one waveform.
type group struct {
	name string
	wave values.Waveform
}

// groupSignals collapses vector bits with identical waveforms into
// "BASE<lo:hi>" rows, preserving the order of first appearance.
func groupSignals(d *netlist.Design, waves []values.Waveform) []group {
	type vecKey struct {
		base, suffix string
	}
	type vecAcc struct {
		lo, hi int
		wave   values.Waveform
		mixed  bool
		order  int
	}
	var scalars []group
	vecs := map[vecKey]*vecAcc{}
	var vecOrder []vecKey
	order := 0
	for i := range d.Nets {
		n := &d.Nets[i]
		m := bitSuffix.FindStringSubmatch(n.Name)
		if m == nil {
			scalars = append(scalars, group{name: n.Name, wave: waves[i]})
			order++
			continue
		}
		key := vecKey{m[1], m[3]}
		bit := 0
		fmt.Sscanf(m[2], "%d", &bit)
		if acc, ok := vecs[key]; ok {
			if bit < acc.lo {
				acc.lo = bit
			}
			if bit > acc.hi {
				acc.hi = bit
			}
			if !acc.wave.Equal(waves[i]) {
				acc.mixed = true
			}
			continue
		}
		vecs[key] = &vecAcc{lo: bit, hi: bit, wave: waves[i], order: order}
		vecOrder = append(vecOrder, key)
		order++
	}
	var out []group
	out = append(out, scalars...)
	for _, key := range vecOrder {
		acc := vecs[key]
		name := fmt.Sprintf("%s<%d:%d>%s", key.base, acc.lo, acc.hi, key.suffix)
		if acc.mixed {
			name += " (bits differ; bit 0 shown)"
		}
		out = append(out, group{name: name, wave: acc.wave})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// TimingSummary renders the Fig 3-10 listing for one verified case: every
// signal's value over the cycle time, vector bits with identical timing
// collapsed into one row.  The case must have been run with
// Options.KeepWaves.
func TimingSummary(res *verify.Result, caseIdx int) string {
	if caseIdx < 0 || caseIdx >= len(res.Cases) || res.Cases[caseIdx].Waves == nil {
		return "timing summary unavailable: run the verifier with KeepWaves\n"
	}
	cr := res.Cases[caseIdx]
	var sb strings.Builder
	fmt.Fprintf(&sb, "TIMING SUMMARY — design %s, cycle %s ns", res.Design.Name, res.Design.Period)
	if cr.Label != "" {
		fmt.Fprintf(&sb, ", case %s", cr.Label)
	}
	sb.WriteString("\n\n")
	groups := groupSignals(res.Design, cr.Waves)
	width := 0
	for _, g := range groups {
		if len(g.name) > width {
			width = len(g.name)
		}
	}
	for _, g := range groups {
		fmt.Fprintf(&sb, "  %-*s  %s\n", width, g.name, WaveString(g.wave))
	}
	return sb.String()
}

// ErrorListing renders the Fig 3-11 error listing: each violation with its
// required and observed intervals and the values seen on the checker's
// data and clock inputs.
func ErrorListing(res *verify.Result) string {
	var sb strings.Builder
	sb.WriteString("SETUP, HOLD AND MINIMUM PULSE WIDTH ERRORS\n\n")
	if len(res.Violations) == 0 {
		sb.WriteString("  no timing errors detected\n")
		return sb.String()
	}
	for i, v := range res.Violations {
		if i > 0 {
			sb.WriteString("\n")
		}
		fmt.Fprintf(&sb, "  %s — %s\n", v.Prim, v.Kind)
		if v.Case != "" {
			fmt.Fprintf(&sb, "    CASE        %s\n", v.Case)
		}
		switch v.Kind {
		case verify.SetupViolation:
			fmt.Fprintf(&sb, "    SETUP TIME  %s ns specified, %s ns available (missed by %s ns)\n",
				v.Required, v.Actual, v.Required-v.Actual)
		case verify.HoldViolation:
			fmt.Fprintf(&sb, "    HOLD TIME   %s ns specified, %s ns available (missed by %s ns)\n",
				v.Required, v.Actual, v.Required-v.Actual)
		case verify.MinPulseHighViolation, verify.MinPulseLowViolation:
			fmt.Fprintf(&sb, "    PULSE WIDTH %s ns specified, %s ns guaranteed\n", v.Required, v.Actual)
		}
		if v.Data != "" {
			fmt.Fprintf(&sb, "    DATA INPUT  = %-24s %s\n", v.Data, WaveString(v.DataWave))
		}
		if v.Clock != "" {
			fmt.Fprintf(&sb, "    CK INPUT    = %-24s %s\n", v.Clock, WaveString(v.ClockWave))
		}
		if v.Detail != "" {
			fmt.Fprintf(&sb, "    NOTE        %s\n", v.Detail)
		}
	}
	return sb.String()
}

// CrossReference renders the listing of signals that are used but neither
// generated nor asserted, which the Verifier takes to be always stable and
// brings to the designer's attention once (§2.5).
func CrossReference(res *verify.Result) string {
	var sb strings.Builder
	sb.WriteString("SIGNALS WITH NO ASSERTION AND NO DRIVER (taken always stable)\n\n")
	if len(res.Undefined) == 0 {
		sb.WriteString("  none\n")
		return sb.String()
	}
	for _, name := range res.Undefined {
		fmt.Fprintf(&sb, "  %s\n", name)
	}
	return sb.String()
}

// Summary renders a one-paragraph run overview with the Table 3-1 style
// execution statistics.
func Summary(res *verify.Result) string {
	s := res.Stats
	var sb strings.Builder
	fmt.Fprintf(&sb, "design %s: %d primitives, %d signal bits, %d case(s)\n",
		res.Design.Name, s.Primitives, s.Nets, s.Cases)
	fmt.Fprintf(&sb, "  events processed     %d\n", s.Events)
	fmt.Fprintf(&sb, "  primitive evals      %d\n", s.PrimEvals)
	fmt.Fprintf(&sb, "  build time           %v\n", s.BuildTime)
	if s.Tape {
		fmt.Fprintf(&sb, "  tape compile time    %v\n", s.TapeCompileTime)
	}
	fmt.Fprintf(&sb, "  verify time          %v\n", s.VerifyTime)
	fmt.Fprintf(&sb, "  check time           %v\n", s.CheckTime)
	fmt.Fprintf(&sb, "  case wall time       %v (%d worker(s))\n", s.WallTime, s.Workers)
	if s.CacheHits+s.CacheMisses > 0 {
		fmt.Fprintf(&sb, "  eval cache           %d hits / %d misses, %d waveforms interned\n",
			s.CacheHits, s.CacheMisses, s.Interned)
	}
	if s.Incremental {
		fmt.Fprintf(&sb, "  incremental          %d dirty instances, %d dirty signals, %d reused waveforms\n",
			s.DirtyPrims, s.DirtyNets, s.ReusedWaves)
		fmt.Fprintf(&sb, "  reverify wall time   %v\n", s.ReverifyTime)
	}
	if ms := res.MarginSurface; ms != nil {
		line := "analytic"
		if b := BindingString(ms.Params); b != "" {
			line += " (" + b + ")"
		}
		fmt.Fprintf(&sb, "  delay model          %s\n", line)
	} else if len(res.SiteProbs) > 0 {
		fmt.Fprintf(&sb, "  delay model          statistical\n")
	}
	fmt.Fprintf(&sb, "  violations           %d\n", len(res.Violations))
	fmt.Fprintf(&sb, "  undefined signals    %d\n", len(res.Undefined))
	return sb.String()
}
