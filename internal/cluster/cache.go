package cluster

import (
	"container/list"
	"sync"

	"scaldtv/internal/expand"
	"scaldtv/internal/hdl"
	"scaldtv/internal/netlist"
)

// designCache is a bounded LRU of compiled designs keyed by an FNV-64a
// of the source text, with the stored source byte-compared on lookup so
// a hash collision degrades to a recompile, never to the wrong design.
// Both sides of the wire keep one: the worker so a batch of sub-jobs for
// one design parses and elaborates it once ever (and keeps its compiled
// tape program and warm memo tables attached via the design's engine
// cache), the coordinator so partitioning a repeat request costs a map
// probe instead of an elaboration.
type designCache struct {
	mu  sync.Mutex
	max int
	ent map[uint64]*list.Element
	lru *list.List // front = most recently used
}

type designEntry struct {
	key uint64
	src string
	d   *netlist.Design
}

func newDesignCache(max int) *designCache {
	if max <= 0 {
		max = 64
	}
	return &designCache{max: max, ent: make(map[uint64]*list.Element), lru: list.New()}
}

// srcHash is the cache key: plain FNV-64a over the source text (no
// option mixing — the compiled design is option-independent).
func srcHash(src string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(src); i++ {
		h = (h ^ uint64(src[i])) * 1099511628211
	}
	return h
}

// compile returns the design compiled from src, from cache when the
// exact text has been seen, compiling and caching otherwise.  Concurrent
// callers may race to compile the same new text; both results are valid
// and the second insert wins harmlessly.
func (c *designCache) compile(src string) (*netlist.Design, error) {
	key := srcHash(src)
	c.mu.Lock()
	if e, ok := c.ent[key]; ok {
		ent := e.Value.(*designEntry)
		if ent.src == src {
			c.lru.MoveToFront(e)
			c.mu.Unlock()
			return ent.d, nil
		}
	}
	c.mu.Unlock()

	f, err := hdl.Parse(src)
	if err != nil {
		return nil, err
	}
	d, _, err := expand.Expand(f)
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.ent[key]; ok {
		// Replace (collision or racing insert): drop the old element.
		c.lru.Remove(e)
		delete(c.ent, key)
	}
	c.ent[key] = c.lru.PushFront(&designEntry{key: key, src: src, d: d})
	for c.lru.Len() > c.max {
		e := c.lru.Back()
		victim := e.Value.(*designEntry)
		c.lru.Remove(e)
		delete(c.ent, victim.key)
	}
	return d, nil
}

// len reports the number of cached designs, for metrics.
func (c *designCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
