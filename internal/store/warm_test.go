package store

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"scaldtv/internal/netlist"
	"scaldtv/internal/report"
	"scaldtv/internal/verify"
)

// A self-contained design (no component library) with a checker, so
// reports carry violations whose byte-exact reproduction matters.
const warmV1 = `design WARMED
period 50ns
clockunit 1ns
defaultwire 0ns 0ns
buf "B1" delay=(1,2) ("IN .S5-45") -> (MID)
reg "R1" delay=(1,3) ("CK .P40-45", MID) -> (Q)
setuphold "CHK" setup=2.5 hold=1.5 (MID, "CK .P40-45")
`

func coldReport(t *testing.T, src string, opts verify.Options) []byte {
	t.Helper()
	d, err := compile(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := verify.Run(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := report.JSON(res)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestVerifyCachedParity(t *testing.T) {
	st, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	opts := verify.Options{Workers: 1, KeepWaves: true}
	baseline := coldReport(t, warmV1, opts)
	ctx := context.Background()

	d1, err := compile(warmV1)
	if err != nil {
		t.Fatal(err)
	}
	out1, err := Verify(ctx, st, d1, warmV1, opts, true)
	if err != nil {
		t.Fatal(err)
	}
	if out1.Provenance != Cold {
		t.Fatalf("first verify provenance %q, want cold", out1.Provenance)
	}
	if !bytes.Equal(out1.Report, baseline) {
		t.Error("cold report differs from plain engine report")
	}

	// Stateless second run: served from the store, byte-identical, no
	// engine state.
	d2, err := compile(warmV1)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := Verify(ctx, st, d2, warmV1, opts, false)
	if err != nil {
		t.Fatal(err)
	}
	if out2.Provenance != Cached || out2.V != nil {
		t.Fatalf("second verify provenance %q (V=%v), want cached with no session", out2.Provenance, out2.V)
	}
	if !bytes.Equal(out2.Report, baseline) {
		t.Error("cached report differs from cold report")
	}

	// Retained third run under a different execution configuration: the
	// store key ignores Workers/IntraWorkers, the restored session's
	// re-rendered report is still byte-identical.
	d3, err := compile(warmV1)
	if err != nil {
		t.Fatal(err)
	}
	out3, err := Verify(ctx, st, d3, warmV1, verify.Options{Workers: 8, IntraWorkers: 2, KeepWaves: true}, true)
	if err != nil {
		t.Fatal(err)
	}
	if out3.Provenance != Cached || out3.V == nil || out3.Res == nil {
		t.Fatalf("third verify provenance %q, want cached with a restored session", out3.Provenance)
	}
	if !out3.Res.Stats.Cached {
		t.Error("restored result not marked cached")
	}
	rendered, err := report.JSON(out3.Res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rendered, baseline) {
		t.Errorf("re-rendered restored report differs from cold report\n--- got ---\n%s\n--- want ---\n%s", rendered, baseline)
	}
}

func TestVerifyWarmStart(t *testing.T) {
	st, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	opts := verify.Options{Workers: 1}
	ctx := context.Background()

	d1, err := compile(warmV1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(ctx, st, d1, warmV1, opts, false); err != nil {
		t.Fatal(err)
	}

	// Parameter edit: same structure, one slower delay.  Must warm-start
	// and reverify only the diff cone.
	srcV2 := replaceOnce(t, warmV1, `"B1" delay=(1,2)`, `"B1" delay=(1,4)`)
	d2, err := compile(srcV2)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Verify(ctx, st, d2, srcV2, opts, false)
	if err != nil {
		t.Fatal(err)
	}
	if out.Provenance != Warm || !out.Incremental {
		t.Fatalf("parameter edit verified %q (incremental=%v), want warm incremental", out.Provenance, out.Incremental)
	}
	if want := coldReport(t, srcV2, opts); !bytes.Equal(out.Report, want) {
		t.Errorf("warm report differs from cold report\n--- got ---\n%s\n--- want ---\n%s", out.Report, want)
	}

	// The warm outcome was saved: repeating the edited design is now an
	// exact hit.
	d2b, err := compile(srcV2)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Verify(ctx, st, d2b, srcV2, opts, false)
	if err != nil {
		t.Fatal(err)
	}
	if again.Provenance != Cached {
		t.Errorf("repeat of the edited design verified %q, want cached", again.Provenance)
	}

	// Structural edit: a new instance.  No stored structure matches, so
	// this must run cold — and still agree with the plain engine.
	srcV3 := srcV2 + "buf \"B2\" delay=(1,2) (Q) -> (Q2)\n"
	d3, err := compile(srcV3)
	if err != nil {
		t.Fatal(err)
	}
	out3, err := Verify(ctx, st, d3, srcV3, opts, false)
	if err != nil {
		t.Fatal(err)
	}
	if out3.Provenance != Cold {
		t.Errorf("structural edit verified %q, want cold", out3.Provenance)
	}
	if want := coldReport(t, srcV3, opts); !bytes.Equal(out3.Report, want) {
		t.Error("post-structural-edit report differs from cold report")
	}
}

func replaceOnce(t *testing.T, s, old, new string) string {
	t.Helper()
	out := bytes.Replace([]byte(s), []byte(old), []byte(new), 1)
	if bytes.Equal(out, []byte(s)) {
		t.Fatalf("fixture does not contain %q", old)
	}
	return string(out)
}

// TestVerifyCorruptStateFallsBack locks the degradation contract: a blob
// whose snapshot section does not restore serves stateless hits from its
// (checksummed) report but degrades every stateful path to a full
// verify — never an error, never a wrong report.
func TestVerifyCorruptStateFallsBack(t *testing.T) {
	st, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	opts := verify.Options{Workers: 1}
	ctx := context.Background()
	baseline := coldReport(t, warmV1, opts)

	d, err := compile(warmV1)
	if err != nil {
		t.Fatal(err)
	}
	// A blob with a valid report but garbage state (e.g. a future
	// snapshot version).
	if err := st.Put(&Entry{
		Key:      verify.Fingerprint(d, opts),
		StructFP: netlist.StructuralFingerprint(d),
		SrcKey:   SourceKey(warmV1, opts),
		Source:   warmV1,
		Report:   baseline,
		State:    []byte("SCTVSNAP then junk"),
	}); err != nil {
		t.Fatal(err)
	}

	out, err := Verify(ctx, st, d, warmV1, opts, true)
	if err != nil {
		t.Fatal(err)
	}
	if out.Provenance != Cold {
		t.Errorf("corrupt state verified %q, want cold fallback", out.Provenance)
	}
	if !bytes.Equal(out.Report, baseline) {
		t.Error("fallback report differs from cold report")
	}
	if out.V == nil || out.V.Result() == nil {
		t.Error("fallback produced no live session")
	}
}

// TestVerifyCorruptBlobFallsBack: whole-file corruption (truncation,
// bit flips) reads as a miss everywhere, so even stateless verifies run
// cold and re-verify correctly.
func TestVerifyCorruptBlobFallsBack(t *testing.T) {
	opts := verify.Options{Workers: 1}
	ctx := context.Background()
	baseline := coldReport(t, warmV1, opts)

	for _, c := range []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/3] }},
		{"flipped", func(b []byte) []byte {
			m := append([]byte(nil), b...)
			m[len(m)/2] ^= 1
			return m
		}},
	} {
		t.Run(c.name, func(t *testing.T) {
			dir := t.TempDir()
			st, err := Open(dir, 0)
			if err != nil {
				t.Fatal(err)
			}
			d, err := compile(warmV1)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := Verify(ctx, st, d, warmV1, opts, false); err != nil {
				t.Fatal(err)
			}
			ents, err := os.ReadDir(dir)
			if err != nil || len(ents) != 1 {
				t.Fatalf("expected one blob, got %d (%v)", len(ents), err)
			}
			path := filepath.Join(dir, ents[0].Name())
			blob, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, c.mut(blob), 0o644); err != nil {
				t.Fatal(err)
			}
			d2, err := compile(warmV1)
			if err != nil {
				t.Fatal(err)
			}
			out, err := Verify(ctx, st, d2, warmV1, opts, false)
			if err != nil {
				t.Fatal(err)
			}
			if out.Provenance != Cold {
				t.Errorf("corrupt blob verified %q, want cold", out.Provenance)
			}
			if !bytes.Equal(out.Report, baseline) {
				t.Error("fallback report differs from cold report")
			}
		})
	}
}
