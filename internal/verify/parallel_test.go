package verify

import (
	"fmt"
	"testing"

	"scaldtv/internal/gen"
	"scaldtv/internal/netlist"
	"scaldtv/internal/tick"
	"scaldtv/internal/values"
)

// buildMultiCase constructs a design with n declared cases over a control
// signal that selects between a short and a long path into a checked
// register, so every case does real relaxation work and the injected slow
// path produces violations whose merge order can be observed.
func buildMultiCase(t *testing.T, n int) *netlist.Design {
	t.Helper()
	b := netlist.NewBuilder(fmt.Sprintf("multicase-%d", n))
	b.SetPeriod(100 * tick.NS)
	b.SetClockUnit(tick.NS)
	b.SetDefaultWire(tick.Range{})
	b.SetPrecisionSkew(tick.Range{})

	in := b.Net("INPUT .S5-104")
	ctrl := b.Net("MODE .S0-100")
	ck := b.Net("MCK .P90-95")
	d1 := b.Net("D1")
	m1 := b.Net("M1")
	d2 := b.Net("D2")
	r := b.Net("R")
	q := b.Net("Q")

	b.Buf("DELAY A", tick.R(16, 16), []netlist.NetID{d1}, netlist.Conns(in))
	b.Mux(netlist.KMux2, "MUX 1", tick.R(10, 10), tick.Range{}, []netlist.NetID{m1},
		netlist.Conns(ctrl), netlist.Conns(in), netlist.Conns(d1))
	b.Buf("DELAY B", tick.R(16, 16), []netlist.NetID{d2}, netlist.Conns(m1))
	b.Mux(netlist.KMux2, "MUX 2", tick.R(10, 10), tick.Range{}, []netlist.NetID{r},
		netlist.Conns(ctrl), netlist.Conns(d2), netlist.Conns(m1))
	b.Register("REG", tick.R(1, 2), []netlist.NetID{q}, netlist.Conn{Net: ck}, netlist.Conns(r))
	// A tight set-up against the 90 ns edge: violated on the long-path
	// cases, so the determinism check covers failing constraints too.
	b.SetupHold("REG CHK", ns(60.0), ns(1.0), netlist.Conns(r), netlist.Conn{Net: ck})
	for i := 0; i < n; i++ {
		v := values.V0
		if i%2 == 1 {
			v = values.V1
		}
		b.AddCase(fmt.Sprintf("MODE=%d #%d", i%2, i), netlist.Assign("MODE", v))
	}
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// sameReports asserts that two results agree on everything the ordering
// and determinism contract covers: case labels, violations, margins,
// kept waveforms and the undefined listing.
func sameReports(t *testing.T, tag string, a, b *Result) {
	t.Helper()
	if len(a.Cases) != len(b.Cases) {
		t.Fatalf("%s: case counts differ: %d vs %d", tag, len(a.Cases), len(b.Cases))
	}
	for i := range a.Cases {
		if a.Cases[i].Label != b.Cases[i].Label {
			t.Fatalf("%s: case %d label %q vs %q", tag, i, a.Cases[i].Label, b.Cases[i].Label)
		}
	}
	if len(a.Violations) != len(b.Violations) {
		t.Fatalf("%s: violation counts differ: %d vs %d\n%v\n%v",
			tag, len(a.Violations), len(b.Violations), a.Violations, b.Violations)
	}
	for i := range a.Violations {
		if a.Violations[i].String() != b.Violations[i].String() {
			t.Errorf("%s: violation %d differs:\n  %v\n  %v", tag, i, a.Violations[i], b.Violations[i])
		}
	}
	if len(a.Margins) != len(b.Margins) {
		t.Fatalf("%s: margin counts differ: %d vs %d", tag, len(a.Margins), len(b.Margins))
	}
	for i := range a.Margins {
		if a.Margins[i] != b.Margins[i] {
			t.Errorf("%s: margin %d differs: %+v vs %+v", tag, i, a.Margins[i], b.Margins[i])
		}
	}
	if len(a.Undefined) != len(b.Undefined) {
		t.Fatalf("%s: undefined listings differ: %v vs %v", tag, a.Undefined, b.Undefined)
	}
	for ci := range a.Cases {
		aw, bw := a.Cases[ci].Waves, b.Cases[ci].Waves
		if len(aw) != len(bw) {
			t.Fatalf("%s: case %d wave counts differ", tag, ci)
		}
		for i := range aw {
			if !aw[i].Equal(bw[i]) {
				t.Fatalf("%s: case %d waveform %d differs:\n  %v\n  %v", tag, ci, i, aw[i], bw[i])
			}
		}
	}
}

// TestParallelDeterminism: the same multi-case design verified with 1, 2
// and 8 workers produces identical reports.  Run with -race to exercise
// the worker pool.
func TestParallelDeterminism(t *testing.T) {
	d := buildMultiCase(t, 8)
	opts := func(w int) Options { return Options{Workers: w, KeepWaves: true, Margins: true} }
	base, err := Run(d, opts(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Violations) == 0 {
		t.Fatal("the multi-case design should produce violations to compare")
	}
	for _, w := range []int{2, 8} {
		res, err := Run(d, opts(w))
		if err != nil {
			t.Fatal(err)
		}
		sameReports(t, fmt.Sprintf("workers=1 vs %d", w), base, res)
	}
	// Between concurrent runs the schedule is snapshot-per-case no matter
	// the worker count, so even the work counters must agree exactly.
	r2, err := Run(d, opts(2))
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Run(d, opts(8))
	if err != nil {
		t.Fatal(err)
	}
	sameReports(t, "workers=2 vs 8", r2, r8)
	for i := range r2.Cases {
		if r2.Cases[i].Events != r8.Cases[i].Events || r2.Cases[i].PrimEvals != r8.Cases[i].PrimEvals {
			t.Errorf("case %d work counters differ between worker counts: %+v vs %+v",
				i, r2.Cases[i], r8.Cases[i])
		}
	}
}

// TestParallelDeterminismGenerated repeats the determinism check on a
// generated Mark IIA-style design with cases and injected failures — the
// pipeline ring exercises wired fanout, registers, latches and muxes at a
// scale the hand-built circuit does not.
func TestParallelDeterminismGenerated(t *testing.T) {
	d, _, err := gen.Generate(gen.Config{Chips: 102, Cases: 4, Inject: 1})
	if err != nil {
		t.Fatal(err)
	}
	opts := func(w int) Options { return Options{Workers: w, KeepWaves: true, Margins: true} }
	base, err := Run(d, opts(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Cases) != 4 {
		t.Fatalf("expected 4 cases, got %d", len(base.Cases))
	}
	if len(base.Violations) == 0 {
		t.Fatal("the injected slow path should produce violations")
	}
	for _, w := range []int{2, 8} {
		res, err := Run(d, opts(w))
		if err != nil {
			t.Fatal(err)
		}
		sameReports(t, fmt.Sprintf("gen workers=1 vs %d", w), base, res)
	}
}

// TestViolationCaseOrdering: merged violations are grouped by case in
// declared case order regardless of worker count.
func TestViolationCaseOrdering(t *testing.T) {
	d := buildMultiCase(t, 6)
	for _, w := range []int{1, 3} {
		res, err := Run(d, Options{Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		caseIdx := map[string]int{}
		for i, c := range res.Cases {
			caseIdx[c.Label] = i
		}
		last := -1
		for _, v := range res.Violations {
			ci, ok := caseIdx[v.Case]
			if !ok {
				t.Fatalf("workers=%d: violation names unknown case %q", w, v.Case)
			}
			if ci < last {
				t.Fatalf("workers=%d: violations not grouped in declared case order: %v", w, res.Violations)
			}
			last = ci
		}
	}
}

// TestParallelCaseError: an invalid case mapping is reported as an error
// under both schedules, and the error is the first by case order.
func TestParallelCaseError(t *testing.T) {
	b := netlist.NewBuilder("badcase-par")
	b.SetPeriod(50 * tick.NS)
	b.Net("A .S0-50")
	b.AddCase("ok", netlist.Assign("A", values.V0))
	b.AddCase("bad", netlist.Assign("NO SUCH SIGNAL", values.V0))
	d := b.MustBuild()
	for _, w := range []int{1, 4} {
		if _, err := Run(d, Options{Workers: w}); err == nil {
			t.Errorf("workers=%d: case naming an unknown signal should fail", w)
		}
	}
}

// TestCacheBitIdentical: with evaluation memoization on (the default), the
// verifier's results — violations, margins, kept waveforms, work counters —
// are bit-identical to a NoCache run for every worker count.  Run with
// -race: the concurrent schedules share one cache and interning table.
func TestCacheBitIdentical(t *testing.T) {
	designs := map[string]*netlist.Design{"multicase": buildMultiCase(t, 8)}
	if d, _, err := gen.Generate(gen.Config{Chips: 102, Cases: 4, Inject: 1}); err != nil {
		t.Fatal(err)
	} else {
		designs["generated"] = d
	}
	for name, d := range designs {
		base, err := Run(d, Options{NoCache: true, KeepWaves: true, Margins: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(base.Violations) == 0 {
			t.Fatalf("%s: want violations in the comparison base", name)
		}
		for _, w := range []int{1, 2, 8} {
			res, err := Run(d, Options{Workers: w, KeepWaves: true, Margins: true})
			if err != nil {
				t.Fatal(err)
			}
			sameReports(t, fmt.Sprintf("%s cache=on workers=%d vs cache=off", name, w), base, res)
			if w == 1 {
				// The sequential serial-worklist schedule is deterministic,
				// so even the per-case work counters must not notice the
				// cache.  The default run above uses the tape's wavefront
				// schedule (different, equally deterministic counters), so
				// the counter comparison pins NoTape to match the base
				// engine.
				nt, err := Run(d, Options{Workers: 1, KeepWaves: true, Margins: true, NoTape: true})
				if err != nil {
					t.Fatal(err)
				}
				sameReports(t, fmt.Sprintf("%s cache=on notape vs cache=off", name), base, nt)
				for i := range base.Cases {
					if base.Cases[i].Events != nt.Cases[i].Events || base.Cases[i].PrimEvals != nt.Cases[i].PrimEvals {
						t.Errorf("%s case %d: work counters differ cached vs uncached: %+v vs %+v",
							name, i, nt.Cases[i], base.Cases[i])
					}
				}
			}
			if res.Stats.CacheHits+res.Stats.CacheMisses == 0 {
				t.Errorf("%s workers=%d: cache counters empty — memoization not exercised", name, w)
			}
		}
		if base.Stats.CacheHits != 0 || base.Stats.Interned != 0 {
			t.Errorf("%s: NoCache run reports cache activity: %+v", name, base.Stats)
		}
	}
}

// TestCaseForcedConeNotStale: a case-forced control net must not serve
// stale memoized outputs downstream.  The MODE=0 and MODE=1 cases steer
// the mux network onto different paths, so the register's data input must
// differ between cases — and each case's waveforms must equal the
// uncached run's exactly, for every worker count.
func TestCaseForcedConeNotStale(t *testing.T) {
	d := buildMultiCase(t, 2) // case 0 forces MODE=0, case 1 forces MODE=1
	rID, ok := d.NetByName("M1")
	if !ok {
		t.Fatal("net M1 missing")
	}
	base, err := Run(d, Options{NoCache: true, KeepWaves: true})
	if err != nil {
		t.Fatal(err)
	}
	if base.Cases[0].Waves[rID].Equal(base.Cases[1].Waves[rID]) {
		t.Fatalf("the two cases should steer M1 differently; both gave %v", base.Cases[0].Waves[rID])
	}
	for _, w := range []int{1, 2, 8} {
		res, err := Run(d, Options{Workers: w, KeepWaves: true})
		if err != nil {
			t.Fatal(err)
		}
		for ci := range res.Cases {
			if !res.Cases[ci].Waves[rID].Equal(base.Cases[ci].Waves[rID]) {
				t.Errorf("workers=%d case %d: cached M1 = %v, uncached = %v — stale memo served",
					w, ci, res.Cases[ci].Waves[rID], base.Cases[ci].Waves[rID])
			}
		}
	}
}

// TestMaxPassesDefaultFloor locks the documented MaxPasses default — 50
// evaluations per primitive with a floor of 1000 — and the explicit
// override.
func TestMaxPassesDefaultFloor(t *testing.T) {
	mk := func(prims int) *verifier {
		b := netlist.NewBuilder("cap")
		b.SetPeriod(50 * tick.NS)
		b.SetDefaultWire(tick.Range{})
		prev := b.Net("IN .S0-50")
		for i := 0; i < prims; i++ {
			o := b.Net(fmt.Sprintf("N%d", i))
			b.Buf(fmt.Sprintf("B%d", i), tick.Range{}, []netlist.NetID{o}, netlist.Conns(prev))
			prev = o
		}
		return &verifier{d: b.MustBuild(), opts: Options{}}
	}
	if got := mk(3).passCap(); got != 1000 {
		t.Errorf("3-primitive design: passCap = %d, want the 1000 floor", got)
	}
	if got := mk(19).passCap(); got != 1000 {
		t.Errorf("19-primitive design (50·19 = 950): passCap = %d, want the 1000 floor", got)
	}
	if got := mk(21).passCap(); got != 1050 {
		t.Errorf("21-primitive design: passCap = %d, want 50·21 = 1050", got)
	}
	v := mk(3)
	v.opts.MaxPasses = 7
	if got := v.passCap(); got != 7 {
		t.Errorf("explicit MaxPasses: passCap = %d, want 7", got)
	}
}
