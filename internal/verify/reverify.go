package verify

import (
	"context"
	"fmt"
	"sync"
	"time"

	"scaldtv/internal/eval"
	"scaldtv/internal/netlist"
	"scaldtv/internal/serr"
	"scaldtv/internal/tape"
	"scaldtv/internal/values"
)

// Verifier is a stateful verification session built for edit → re-verify
// workloads: after a full Verify it retains every case's converged
// waveforms (plus the per-site constraint outcomes and the shared
// waveform interner and evaluation memo), so a Reverify after a
// parameter edit resumes each case's event-driven relaxation from the
// previous fixed point instead of from the §2.9 initial values.
//
// Only the edited sites are seeded onto the worklist: re-evaluation
// propagates forward through the fanout index exactly as far as computed
// waveforms actually change, then stops — on register-bounded designs a
// single-instance edit converges after a handful of evaluations, because
// the storage elements downstream absorb small timing shifts.  Because
// the relaxation is a confluent fixed-point iteration (the property the
// sequential case schedule of §2.7 already depends on), the resumed pass
// lands on the same fixed point as a from-scratch run: violations,
// margins, kept waveforms and the cross-reference are bit-identical,
// for any Workers setting, with the cache on or off.
//
// A Verifier is not safe for concurrent use; case-level parallelism
// happens inside Verify and Reverify per Options.Workers.
type Verifier struct {
	d    *netlist.Design
	opts Options

	// The interner and evaluation memo outlive individual runs, so a
	// re-verification — and even a repeated full Verify — is served from
	// warm tables.  Nil when Options.NoCache is set.
	intern *values.Interner
	cache  *eval.Cache

	cases   []netlist.Case
	perCase []*verifier // converged state per case, in declared order
	res     *Result     // last merged result

	// statMargins marks margins collected only for a delay-model
	// post-pass (Options.Delays), to be stripped from the result the
	// caller sees.
	statMargins bool

	// Analytic mode pins the design at one parameter point before the
	// first run; pinVals is that point and pinned records that V.d is
	// already the pinned clone.
	pinVals []float64
	pinned  bool
}

// NewVerifier prepares a verification session for the design.  Nothing is
// evaluated until Verify is called.
func NewVerifier(d *netlist.Design, opts Options) *Verifier {
	V := &Verifier{d: d, opts: opts}
	if !opts.NoCache {
		V.intern = values.NewInterner()
		V.cache = eval.NewCache()
	}
	return V
}

// Design returns the design the session currently verifies.
func (V *Verifier) Design() *netlist.Design { return V.d }

// Result returns the most recent verification result, or nil before the
// first Verify.
func (V *Verifier) Result() *Result { return V.res }

// Verify runs a full verification and retains the converged state for
// later Reverify calls.
func (V *Verifier) Verify() (*Result, error) { return V.run(context.Background(), true) }

// VerifyContext is Verify with cooperative cancellation.  A canceled run
// returns a structured error of kind serr.Canceled and retains no state,
// so the next Verify or Reverify starts from scratch — cancellation can
// abort a run but never corrupt the session.
func (V *Verifier) VerifyContext(ctx context.Context) (*Result, error) {
	return V.run(ctx, true)
}

// run is the full-verification engine behind both the package-level Run
// (retain=false) and Verifier.Verify (retain=true).
func (V *Verifier) run(ctx context.Context, retain bool) (*Result, error) {
	d := V.d
	if !IsWorstCase(V.opts.Delays) && !V.opts.Margins {
		// The statistical and analytic post-passes read every constraint
		// outcome, so collect margins internally and strip them before
		// returning.
		V.opts.Margins = true
		V.statMargins = true
	}
	if am, ok := V.opts.analytic(); ok && !V.pinned {
		// Analytic mode: resolve the parameter point θ0 (declared
		// defaults plus the model's overrides) and pin the design there.
		// The relaxation then runs on plain constant delays; the symbolic
		// surface is rebuilt by fillMarginSurface after the merge.
		vals, err := d.ParamValues(am.Params)
		if err != nil {
			return nil, serr.Wrap(serr.Elaborate, err)
		}
		d = d.PinParams(vals)
		V.d, V.pinVals, V.pinned = d, vals, true
	}
	var prog *tape.Program
	var compileTime time.Duration
	if V.opts.useTape() {
		// Tape path: obtain the design's compiled program (validating the
		// structure on a cold compile) and refresh its numeric parameters
		// and seed image.  The session adopts the program's persistent
		// interner and memo so retained state and statistics stay
		// consistent with what the relaxation actually uses.
		compileStart := time.Now()
		var err error
		if prog, err = tape.For(d); err != nil {
			return nil, err
		}
		if err := prog.Refresh(d); err != nil {
			return nil, err
		}
		compileTime = time.Since(compileStart)
		V.intern, V.cache = prog.Intern, prog.Evals
	} else if err := d.Check(); err != nil {
		return nil, serr.Wrap(serr.Elaborate, err)
	}
	V.perCase, V.res = nil, nil
	buildStart := time.Now()
	v, res, err := initVerifier(d, V.opts, V.intern, V.cache, prog)
	if err != nil {
		return nil, err
	}
	v.ctx = ctx
	res.Stats.BuildTime = time.Since(buildStart)
	res.Stats.Tape = prog != nil
	res.Stats.TapeCompileTime = compileTime

	// The case list: an empty design-case list means a single unmapped
	// cycle.
	cases := d.Cases
	if len(cases) == 0 {
		cases = []netlist.Case{{Label: ""}}
	}
	workers := V.opts.workers(len(cases))

	perCase := make([]*verifier, len(cases))
	wallStart := time.Now()
	outs := make([]caseOutcome, len(cases))
	if workers == 1 {
		// Sequential schedule: the first case relaxes the whole circuit,
		// every later case reevaluates only its affected cone (§2.7).
		// With retention on, each case's converged state is snapshotted
		// before the shared verifier moves on.
		for ci := range cases {
			if retain {
				v.sites = make([]siteChecks, len(d.Prims))
			}
			outs[ci] = v.runCase(cases[ci], ci == 0)
			if outs[ci].err != nil {
				break
			}
			if retain {
				snap := v.snapshot()
				snap.sites, v.sites = v.sites, nil
				perCase[ci] = snap
			}
		}
	} else {
		// Concurrent schedule: each case is an independent relaxation to
		// fixed point from a clone of the initialised snapshot, on a
		// bounded worker pool.  Results land in the slot of their case
		// index, so the merge below is in declared case order no matter
		// which worker finishes first.  The clone that ran a case holds
		// its converged state and is retained directly.
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ci := range jobs {
					cv := v.clone()
					if retain {
						cv.sites = make([]siteChecks, len(d.Prims))
					}
					outs[ci] = cv.runCase(cases[ci], true)
					if retain {
						perCase[ci] = cv
					} else if outs[ci].err == nil {
						cv.releaseRunState()
					}
				}
			}()
		}
		for ci := range cases {
			jobs <- ci
		}
		close(jobs)
		wg.Wait()
	}

	// Merge in declared case order: the ordering contract on
	// Result.Violations and Result.Margins.
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		res.Cases = append(res.Cases, o.cr)
		res.Violations = append(res.Violations, o.cr.Violations...)
		res.Margins = append(res.Margins, o.margins...)
		res.Stats.Events += o.cr.Events
		res.Stats.PrimEvals += o.cr.PrimEvals
		res.Stats.VerifyTime += o.verifyTime
		res.Stats.CheckTime += o.checkTime
		res.Stats.Sweeps += o.sweeps
	}
	res.Stats.Cases = len(res.Cases)
	res.Stats.Workers = workers
	V.opts.fillWavefrontStats(d, &res.Stats)
	res.Stats.WallTime = time.Since(wallStart)
	if v.cache != nil {
		res.Stats.CacheHits, res.Stats.CacheMisses, _ = v.cache.Stats()
		res.Stats.Interned, res.Stats.Deduped = v.intern.Stats()
	}
	if sm, ok := V.opts.statistical(); ok {
		V.fillSiteProbs(res, sm.Grid)
	}
	if _, ok := V.opts.analytic(); ok {
		V.fillMarginSurface(res, V.pinVals)
	}
	if V.statMargins {
		res.Margins = nil
	}
	if retain {
		V.cases, V.perCase, V.res = cases, perCase, res
	} else {
		// One-shot run: the per-run tables go back to the program's pool
		// for the next run to adopt.  Nothing in res references them.
		v.releaseRunState()
	}
	return res, nil
}

// Reverify re-verifies the design after the parameter edits named in ch
// have been applied to it (in place, or via Update).  It resumes every
// case from its retained fixed point, re-seeding the dirtied nets,
// enqueueing the dirtied instances plus the consumers of dirtied nets,
// and relaxing until the waveforms stop moving; constraint sites whose
// inputs never moved replay their memoized outcome.  The result is
// bit-identical to a from-scratch Verify of the edited design.
//
// Edits beyond Reverify's reach — structural rewires, assertion kind
// changes, anything netlist.Diff refuses — must go through Update or a
// fresh Verify.  Without retained state (or after a run that failed to
// converge, whose retained waveforms are not a fixed point) Reverify
// transparently falls back to a full Verify.
func (V *Verifier) Reverify(ch netlist.Changes) (*Result, error) {
	return V.ReverifyContext(context.Background(), ch)
}

// ReverifyContext is Reverify with cooperative cancellation.  A canceled
// re-verification returns a structured error of kind serr.Canceled and
// drops the retained state — the resumed relaxation had already moved
// some cases off their fixed point — so the next Reverify transparently
// falls back to a full Verify and stays bit-identical to a from-scratch
// run of the edited design.
func (V *Verifier) ReverifyContext(ctx context.Context, ch netlist.Changes) (*Result, error) {
	if V.perCase == nil || V.res == nil {
		return V.VerifyContext(ctx)
	}
	for _, viol := range V.res.Violations {
		if viol.Kind == ConvergenceViolation {
			return V.VerifyContext(ctx)
		}
	}
	d := V.d
	// The structure was validated by the full run that produced the
	// retained state, and parameter edits cannot invalidate it, so only
	// the dirty sites need checking — a full d.Check() here would cost
	// more than the reverification itself on local edits.
	if err := d.CheckSites(ch); err != nil {
		return nil, serr.Wrap(serr.Elaborate, err)
	}
	if p := V.perCase[0].prog; p != nil {
		// The edit invalidates the warm slot table — its variants were
		// captured under the old parameters — but re-hashing the whole
		// environment (Refresh) is O(design) and would dwarf a small-edit
		// reverification, so the retained case verifiers simply adopt a
		// fresh empty table and relearn from the keyed memo, whose exact
		// keys carry every live parameter and need no invalidation.  The
		// program's own generation state is left stale on purpose: the
		// next full run's Refresh re-validates it against the live design.
		slots := tape.NewSlotTable(len(d.Prims))
		for _, rc := range V.perCase {
			rc.slots = slots
		}
	}

	buildStart := time.Now()
	// Recompute the seed waveforms of dirtied nets — validating first,
	// committing after, so a bad edit cannot leave the retained state
	// half-updated.  The initial table is shared by every retained case
	// verifier, so one commit serves them all.
	tmpl := V.perCase[0]
	type seedUpdate struct {
		id netlist.NetID
		w  values.Waveform
	}
	var seeds []seedUpdate
	for _, id := range ch.Nets {
		w, pinned, _, err := tmpl.seedWave(id)
		if err != nil {
			return nil, err
		}
		if pinned != tmpl.pinned[id] {
			// Re-pinning is a structural change netlist.Diff never
			// produces; a direct caller gets the full-run fallback.
			return V.VerifyContext(ctx)
		}
		seeds = append(seeds, seedUpdate{id, w})
	}
	if len(seeds) > 0 && tmpl.initialShared {
		// The initial table aliases the compiled program's immutable seed
		// image; copy before committing, re-pointing every retained case
		// verifier so one commit keeps serving them all.
		ni := append([]values.Waveform(nil), tmpl.initial...)
		for _, rc := range V.perCase {
			rc.initial = ni
			rc.initialShared = false
		}
	}
	for _, s := range seeds {
		tmpl.initial[s.id] = s.w
	}
	dirtyPrim := make([]bool, len(d.Prims))
	for _, pi := range ch.Prims {
		dirtyPrim[pi] = true
	}
	cone := d.ForwardCone(ch)

	res := &Result{Design: d, Undefined: V.res.Undefined}
	res.Stats.Primitives = len(d.Prims)
	res.Stats.Nets = len(d.Nets)
	res.Stats.BuildTime = time.Since(buildStart)
	res.Stats.Incremental = true
	res.Stats.DirtyPrims = cone.PrimCount
	res.Stats.DirtyNets = cone.NetCount

	workers := V.opts.workers(len(V.cases))
	wallStart := time.Now()
	outs := make([]caseOutcome, len(V.cases))
	for _, rc := range V.perCase {
		rc.ctx = ctx
	}
	if workers == 1 {
		for ci := range V.cases {
			outs[ci] = V.perCase[ci].reverifyCase(V.cases[ci], ch, dirtyPrim)
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ci := range jobs {
					outs[ci] = V.perCase[ci].reverifyCase(V.cases[ci], ch, dirtyPrim)
				}
			}()
		}
		for ci := range V.cases {
			jobs <- ci
		}
		close(jobs)
		wg.Wait()
	}

	for _, o := range outs {
		if o.err != nil {
			// An aborted case left its retained verifier somewhere between
			// the old and the new fixed point.  Drop all retained state:
			// the next call falls back to a full Verify, which is by
			// construction bit-identical to a from-scratch run.
			V.perCase, V.res = nil, nil
			return nil, o.err
		}
		res.Cases = append(res.Cases, o.cr)
		res.Violations = append(res.Violations, o.cr.Violations...)
		res.Margins = append(res.Margins, o.margins...)
		res.Stats.Events += o.cr.Events
		res.Stats.PrimEvals += o.cr.PrimEvals
		res.Stats.VerifyTime += o.verifyTime
		res.Stats.CheckTime += o.checkTime
		res.Stats.ReusedWaves += o.reused
		res.Stats.Sweeps += o.sweeps
	}
	res.Stats.Cases = len(res.Cases)
	res.Stats.Workers = workers
	V.opts.fillWavefrontStats(d, &res.Stats)
	res.Stats.WallTime = time.Since(wallStart)
	res.Stats.ReverifyTime = time.Since(buildStart)
	if V.cache != nil {
		res.Stats.CacheHits, res.Stats.CacheMisses, _ = V.cache.Stats()
		res.Stats.Interned, res.Stats.Deduped = V.intern.Stats()
	}
	if sm, ok := V.opts.statistical(); ok {
		V.fillSiteProbs(res, sm.Grid)
	}
	if _, ok := V.opts.analytic(); ok {
		V.fillMarginSurface(res, V.pinVals)
	}
	if V.statMargins {
		res.Margins = nil
	}
	V.res = res
	return res, nil
}

// Update adopts an edited design: when it differs from the current one
// only in parameters (netlist.Diff agrees) the delta is re-verified
// incrementally and incremental reports true; otherwise the session
// rebuilds and runs a full verification.  The new design must have its
// fanout index built (Builder.Build, Compile and RebuildFanout all do).
func (V *Verifier) Update(nd *netlist.Design) (res *Result, incremental bool, err error) {
	return V.UpdateContext(context.Background(), nd)
}

// UpdateContext is Update with cooperative cancellation, with the same
// abort-don't-corrupt contract as ReverifyContext.
func (V *Verifier) UpdateContext(ctx context.Context, nd *netlist.Design) (res *Result, incremental bool, err error) {
	if nd == nil {
		return nil, false, fmt.Errorf("verify: Update with nil design")
	}
	if am, ok := V.opts.analytic(); ok {
		// Re-pin the edited design at the session's parameter point so
		// the diff compares — and the relaxation runs on — the same
		// constant-delay view as the retained state.
		vals, err := nd.ParamValues(am.Params)
		if err != nil {
			return nil, false, serr.Wrap(serr.Elaborate, err)
		}
		nd = nd.PinParams(vals)
		V.pinVals, V.pinned = vals, true
	}
	ch, ok := netlist.Diff(V.d, nd)
	if !ok || V.perCase == nil {
		V.d = nd
		V.perCase, V.res = nil, nil
		res, err = V.VerifyContext(ctx)
		return res, false, err
	}
	V.d = nd
	for _, rc := range V.perCase {
		rc.d = nd
	}
	if p := V.perCase[0].prog; p != nil {
		// The compiled program is structure-derived and Diff guarantees
		// the structures match, so the edited design adopts it — its warm
		// memo tables included.  Stale numeric parameters are caught by
		// Refresh on the next full run; the memo keys carry every live
		// parameter, so no entry needs invalidating.
		nd.StoreEngineCache(p)
	}
	res, err = V.ReverifyContext(ctx, ch)
	return res, err == nil, err
}

// reverifyCase resumes one case's relaxation from its retained fixed
// point: re-seed the dirtied nets under the case mapping, enqueue the
// dirtied instances and the consumers of dirtied nets, relax until the
// waveforms stop moving, then recheck with the per-site memo.
func (v *verifier) reverifyCase(c netlist.Case, ch netlist.Changes, dirtyPrim []bool) caseOutcome {
	verifyStart := time.Now()
	v.events, v.evals, v.sweeps = 0, 0, 0
	if v.changed == nil {
		v.changed = make([]bool, len(v.d.Nets))
	} else {
		for i := range v.changed {
			v.changed[i] = false
		}
	}
	for _, id := range ch.Nets {
		n := &v.d.Nets[id]
		// A dirtied net's consumers see it through a possibly-edited wire
		// delay, so they re-evaluate — and its constraint readers re-check
		// — even when the stored waveform is unchanged.
		v.changed[id] = true
		if n.Driver == netlist.NoDriver || v.pinned[id] {
			w := v.mapped(id, v.initial[id])
			if v.storeSig(id, eval.Signal{Wave: w, Dirs: v.sigs[id].Dirs}) {
				v.events++
			}
		}
		v.fanout(id)
	}
	for _, pi := range ch.Prims {
		v.enqueue(pi) // enqueue ignores checker primitives itself
	}
	conv := v.relax()
	if v.aborted != nil {
		err := v.aborted
		v.aborted = nil
		return caseOutcome{err: err}
	}
	out := caseOutcome{verifyTime: time.Since(verifyStart), sweeps: v.sweeps}

	checkStart := time.Now()
	cr := CaseResult{Label: c.Label, Events: v.events, PrimEvals: v.evals}
	if !conv {
		cr.Violations = append(cr.Violations, Violation{
			Kind:   ConvergenceViolation,
			Case:   c.Label,
			Detail: fmt.Sprintf("fixed point not reached within %d primitive evaluations", v.passCap()),
		})
	}
	cr.Violations = append(cr.Violations, v.recheck(c.Label, dirtyPrim)...)
	if v.opts.Margins {
		out.margins = v.margins
		v.margins = nil
	}
	if v.opts.KeepWaves {
		cr.Waves = make([]values.Waveform, len(v.sigs))
		for i, s := range v.sigs {
			cr.Waves[i] = s.Wave
		}
	}
	for _, moved := range v.changed {
		if !moved {
			out.reused++
		}
	}
	out.checkTime = time.Since(checkStart)
	out.cr = cr
	return out
}
