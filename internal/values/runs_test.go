package values

import (
	"testing"

	"scaldtv/internal/tick"
)

func clock(high0, high1 float64) Waveform {
	return Const(p50, V0).Paint(ns(high0), ns(high1), V1)
}

func TestRuns(t *testing.T) {
	w := clock(20, 30)
	runs := w.Runs()
	if len(runs) != 2 {
		t.Fatalf("got %d runs, want 2: %v", len(runs), runs)
	}
	// The low run wraps the cycle boundary: 30 → 70 (= 20 next cycle).
	if runs[0].V != V0 && runs[1].V != V0 {
		t.Fatal("no low run")
	}
	for _, r := range runs {
		if r.V == V0 {
			if r.Width != ns(40) {
				t.Errorf("low run width %v, want 40ns", r.Width)
			}
			if tick.Mod(r.Start, p50) != ns(30) {
				t.Errorf("low run start %v, want 30ns", r.Start)
			}
		}
		if r.V == V1 && r.Width != ns(10) {
			t.Errorf("high run width %v, want 10ns", r.Width)
		}
	}
}

func TestRunsConstant(t *testing.T) {
	runs := Const(p50, VS).Runs()
	if len(runs) != 1 || runs[0].Width != p50 || runs[0].V != VS {
		t.Errorf("constant runs wrong: %v", runs)
	}
}

func TestTransitions(t *testing.T) {
	w := clock(20, 30)
	trs := w.Transitions()
	if len(trs) != 2 {
		t.Fatalf("got %d transitions, want 2: %v", len(trs), trs)
	}
	if trs[0].At != ns(20) || trs[0].From != V0 || trs[0].To != V1 {
		t.Errorf("rising transition wrong: %+v", trs[0])
	}
	if trs[1].At != ns(30) || trs[1].From != V1 || trs[1].To != V0 {
		t.Errorf("falling transition wrong: %+v", trs[1])
	}
	if got := Const(p50, VS).Transitions(); got != nil {
		t.Errorf("constant waveform has transitions: %v", got)
	}
}

func TestRisingEdgesCrisp(t *testing.T) {
	w := clock(20, 30)
	edges := w.RisingEdges()
	if len(edges) != 1 {
		t.Fatalf("got %d rising edges, want 1: %v", len(edges), edges)
	}
	if edges[0].Start != ns(20) || edges[0].End != ns(20) {
		t.Errorf("crisp edge should be zero-width at 20ns: %+v", edges[0])
	}
	f := w.FallingEdges()
	if len(f) != 1 || f[0].Start != ns(30) || f[0].End != ns(30) {
		t.Errorf("falling edge wrong: %v", f)
	}
}

func TestRisingEdgesWithSkew(t *testing.T) {
	// A ±1 ns precision clock: skew 2 ns total after Delay(-1, +1)
	// relative to nominal.  The rising edge window must span the band.
	w := clock(20, 30).Delay(tick.R(-1, 1))
	edges := w.RisingEdges()
	if len(edges) != 1 {
		t.Fatalf("got %d edges: %v", len(edges), edges)
	}
	if edges[0].Start != ns(19) || edges[0].End != ns(21) {
		t.Errorf("edge window = [%v,%v], want [19,21]ns", edges[0].Start, edges[0].End)
	}
}

func TestEdgesMultiPhase(t *testing.T) {
	// Two pulses per period (XYZ .C2-3,5-6 style).
	w := Const(p50, V0).Paint(ns(10), ns(15), V1).Paint(ns(30), ns(35), V1)
	r := w.RisingEdges()
	if len(r) != 2 || r[0].Start != ns(10) || r[1].Start != ns(30) {
		t.Errorf("rising edges wrong: %v", r)
	}
	f := w.FallingEdges()
	if len(f) != 2 || f[0].Start != ns(15) || f[1].Start != ns(35) {
		t.Errorf("falling edges wrong: %v", f)
	}
}

func TestEdgesFromChangeBands(t *testing.T) {
	// A CHANGE band cannot be ruled out as a clock edge.
	w := Const(p50, V0).Paint(ns(5), ns(8), VC)
	r := w.RisingEdges()
	if len(r) != 1 || r[0].Start != ns(5) || r[0].End != ns(8) {
		t.Errorf("change band should yield a conservative edge window: %v", r)
	}
}

func TestEdgesNoneOnStable(t *testing.T) {
	if got := Const(p50, VS).RisingEdges(); got != nil {
		t.Errorf("stable signal has edges: %v", got)
	}
	if got := Const(p50, V1).RisingEdges(); got != nil {
		t.Errorf("constant high has edges: %v", got)
	}
}

func TestEdgesUnknownExcluded(t *testing.T) {
	w := Const(p50, VU).Paint(ns(20), ns(30), V1)
	// U → 1 transition: not counted as a clock edge (reported separately
	// by the verifier as an undefined clock).
	if got := w.RisingEdges(); len(got) != 0 {
		t.Errorf("U→1 counted as edge: %v", got)
	}
}

func TestStableBackFwd(t *testing.T) {
	// Data stable 0–30, changing 30–40, stable 40–50 (wraps to 0).
	w := FromSpans(p50, VS, Span{ns(30), ns(40), VC})
	if got := w.StableBack(ns(20)); got != ns(30) {
		t.Errorf("StableBack(20) = %v, want 30ns (wraps to 40 prev cycle)", got)
	}
	if got := w.StableFwd(ns(20)); got != ns(10) {
		t.Errorf("StableFwd(20) = %v, want 10ns", got)
	}
	if got := w.StableBack(ns(30)); got != ns(40) {
		t.Errorf("StableBack(30) = %v, want 40ns", got)
	}
	if got := w.StableFwd(ns(40)); got != ns(40) {
		t.Errorf("StableFwd(40) = %v, want 40ns", got)
	}
	if got := w.StableBack(ns(35)); got != 0 {
		t.Errorf("StableBack inside changing region = %v, want 0", got)
	}
	if got := w.StableFwd(ns(35)); got != 0 {
		t.Errorf("StableFwd inside changing region = %v, want 0", got)
	}
}

func TestStableBackFwdFullyStable(t *testing.T) {
	w := Const(p50, V1)
	if w.StableBack(ns(17)) != p50 || w.StableFwd(ns(17)) != p50 {
		t.Error("fully stable waveform should report the whole period")
	}
}

func TestStableBackConsidersSkew(t *testing.T) {
	// Changing 30–40 with 3 ns skew: the change region extends to 43.
	w := FromSpans(p50, VS, Span{ns(30), ns(40), VC}).WithSkew(ns(3))
	if got := w.StableBack(ns(20)); got != ns(27) {
		t.Errorf("StableBack(20) = %v, want 27ns (stability starts at 43)", got)
	}
}

func TestStableThroughout(t *testing.T) {
	w := FromSpans(p50, VS, Span{ns(30), ns(40), VC})
	cases := []struct {
		s, e float64
		want bool
	}{
		{0, 30, true},
		{0, 31, false},
		{40, 50, true},
		{40, 60, false}, // wraps into 0–10 stable, but 30–40 is inside? no: 40→60 = 40–50 + 0–10, both stable
		{25, 35, false},
		{35, 36, false},
		{41, 41, true}, // empty window
		{45, 55, true}, // wraps through boundary, all stable
	}
	// Fix the mistaken expectation above: [40,60) ≡ [40,50)+[0,10), all stable.
	cases[3].want = true
	for _, c := range cases {
		if got := w.StableThroughout(ns(c.s), ns(c.e)); got != c.want {
			t.Errorf("StableThroughout(%v,%v) = %v, want %v", c.s, c.e, got, c.want)
		}
	}
}

func TestStableThroughoutWholePeriod(t *testing.T) {
	if !Const(p50, V0).StableThroughout(0, p50) {
		t.Error("constant low should be stable throughout")
	}
	if FromSpans(p50, VS, Span{ns(1), ns(2), VR}).StableThroughout(0, p50) {
		t.Error("brief rise should break whole-period stability")
	}
}

func TestHighPulses(t *testing.T) {
	w := clock(20, 30)
	ps := w.HighPulses()
	if len(ps) != 1 {
		t.Fatalf("got %d pulses: %v", len(ps), ps)
	}
	if ps[0].MinWidth != ns(10) || ps[0].MaxWidth != ns(10) {
		t.Errorf("crisp pulse widths = %v/%v, want 10/10", ps[0].MinWidth, ps[0].MaxWidth)
	}
	if ps[0].Start != ns(20) {
		t.Errorf("pulse start = %v, want 20ns", ps[0].Start)
	}
}

func TestHighPulsesWithSkew(t *testing.T) {
	// 10 ns pulse through a gate with 5 ns delay spread: guaranteed width
	// stays 10 ns while skew is carried out-of-band...
	w := clock(20, 30).Delay(tick.R(5, 10))
	ps := w.HighPulses()
	if len(ps) != 1 || ps[0].MinWidth != ns(10) {
		t.Fatalf("skew-carried pulse eroded: %v", ps)
	}
	// ...but once incorporated (combined with another changing signal) the
	// guaranteed width erodes to 5 ns and the maximum grows to 15 ns.
	inc := w.IncorporateSkew()
	ps2 := inc.HighPulses()
	if len(ps2) != 1 || ps2[0].MinWidth != ns(5) || ps2[0].MaxWidth != ns(15) {
		t.Fatalf("incorporated pulse widths wrong: %v", ps2)
	}
}

func TestRuntPulse(t *testing.T) {
	// Fig 1-5: a possible 5 ns runt on a gated clock — modelled as a pure
	// CHANGE band between solid lows.  Its guaranteed width is zero.
	w := Const(p50, V0).Paint(ns(25), ns(30), VC)
	ps := w.HighPulses()
	if len(ps) != 1 || ps[0].MinWidth != 0 || ps[0].MaxWidth != ns(5) {
		t.Fatalf("runt pulse analysis wrong: %v", ps)
	}
}

func TestLowPulses(t *testing.T) {
	// Active-low strobe: low 10–14.
	w := Const(p50, V1).Paint(ns(10), ns(14), V0)
	ps := w.LowPulses()
	if len(ps) != 1 || ps[0].MinWidth != ns(4) {
		t.Fatalf("low pulse wrong: %v", ps)
	}
	if hp := w.HighPulses(); len(hp) != 1 {
		// The complementary high interval (wrapping 14→10) is also a pulse.
		t.Fatalf("complementary high pulse wrong: %v", hp)
	}
}

func TestPulsesNoneOnConstant(t *testing.T) {
	if Const(p50, V1).HighPulses() != nil {
		t.Error("constant high has pulses")
	}
	if Const(p50, VS).HighPulses() != nil {
		t.Error("stable has pulses")
	}
}

func TestPulsesWrappingGroup(t *testing.T) {
	// High pulse wrapping the cycle boundary: 45→5.
	w := Const(p50, V0).Paint(ns(45), ns(5), V1)
	ps := w.HighPulses()
	if len(ps) != 1 || ps[0].MinWidth != ns(10) {
		t.Fatalf("wrapping pulse wrong: %v", ps)
	}
}

func TestConstFlipBreaksStability(t *testing.T) {
	// A crisp 0→1 flip at 25 ns is a physical change even though both
	// levels are stable values.
	w := Const(p50, V0).Paint(ns(25), ns(50), V1)
	if got := w.StableBack(ns(40)); got != ns(15) {
		t.Errorf("StableBack(40) = %v, want 15ns", got)
	}
	if got := w.StableFwd(ns(10)); got != ns(15) {
		t.Errorf("StableFwd(10) = %v, want 15ns", got)
	}
	if w.StableThroughout(ns(20), ns(30)) {
		t.Error("window across a level flip should not be stable")
	}
	if !w.StableThroughout(ns(0), ns(25)) || !w.StableThroughout(ns(25), ns(50)) {
		t.Error("windows within one level should be stable")
	}
}

func TestStableResolutionDoesNotBreakStability(t *testing.T) {
	// STABLE resolving into a known constant is representational: the
	// signal may have been that constant all along.
	w := Const(p50, VS).Paint(ns(25), ns(50), V1)
	if got := w.StableBack(ns(40)); got != p50 {
		t.Errorf("StableBack across S→1 = %v, want full period", got)
	}
	if !w.StableThroughout(ns(20), ns(30)) {
		t.Error("S→1 boundary should not break stability")
	}
}

func TestActivity(t *testing.T) {
	// Changing regions map to C; crisp 0↔1 flips get markers; stable and
	// constant regions map to S.
	w := FromSpans(p50, VS, Span{ns(10), ns(20), VC}).Paint(ns(30), ns(40), V1).Paint(ns(40), ns(50), V0)
	a := w.Activity()
	if a.At(ns(15)) != VC {
		t.Errorf("changing region lost: %v", a)
	}
	if a.At(ns(5)) != VS || a.At(ns(35)) != VS {
		t.Errorf("stable/constant regions wrong: %v", a)
	}
	// Flip markers at 30 (S→1? no, VS→V1 is not a flip)... 40 (1→0) is.
	if a.At(ns(40)) != VC {
		t.Errorf("flip marker missing at 40: %v", a)
	}
	if a.At(ns(30)) != VS {
		t.Errorf("S→1 resolution must not mark activity: %v", a)
	}
	if err := a.Check(); err != nil {
		t.Fatal(err)
	}
	// Unknown propagates.
	u := Const(p50, VU).Activity()
	if v, ok := u.ConstantValue(); !ok || v != VU {
		t.Errorf("U activity wrong: %v", u)
	}
}

func TestActivityClock(t *testing.T) {
	a := clock(20, 30).Activity()
	if a.At(ns(20)) != VC || a.At(ns(30)) != VC {
		t.Errorf("clock edges must mark activity: %v", a)
	}
	if a.At(ns(25)) != VS || a.At(ns(10)) != VS {
		t.Errorf("clock levels must be quiet: %v", a)
	}
}
