package values

import (
	"testing"

	"scaldtv/internal/tick"
)

// §4.2.2: direction-dependent delays — the nMOS-style asymmetric case.

func TestDelayRFCrispClock(t *testing.T) {
	// A clock high 20–30, rise delay 2/3, fall delay 5/7.
	w := clock(20, 30).DelayRF(tick.R(2, 3), tick.R(5, 7))
	for _, c := range []struct {
		at   tick.Time
		want Value
	}{
		{ns(21), V0},   // before the earliest rise
		{ns(22.5), VR}, // rising band 22–23
		{ns(23.5), V1}, // solid high
		{ns(34.5), V1}, // the falling edge starts at 30+5
		{ns(35.5), VF}, // falling band 35–37
		{ns(37.5), V0},
	} {
		if got := w.At(c.at); got != c.want {
			t.Errorf("At(%v) = %v, want %v\n%v", c.at, got, c.want, w)
		}
	}
	if err := w.Check(); err != nil {
		t.Fatal(err)
	}
	// The pulse stretches: nominal 10 ns becomes at least 35-23 = 12 ns.
	ps := w.HighPulses()
	if len(ps) != 1 || ps[0].MinWidth != ns(12) {
		t.Errorf("stretched pulse = %+v, want min width 12 ns", ps)
	}
}

func TestDelayRFEqualFallsBackToDelay(t *testing.T) {
	w := clock(20, 30)
	a := w.DelayRF(tick.R(1, 3), tick.R(1, 3))
	b := w.Delay(tick.R(1, 3))
	if !a.Equal(b) {
		t.Errorf("equal rise/fall should behave as Delay:\n%v\n%v", a, b)
	}
}

func TestDelayRFSwallowedPulse(t *testing.T) {
	// A 3 ns pulse where the rising edge may take up to 6 ns but the
	// falling edge as little as 1 ns: the delayed edges may cross, so the
	// pulse may vanish — a CHANGE region, never a guaranteed 1.
	w := Const(p50, V0).Paint(ns(20), ns(23), V1).DelayRF(tick.R(2, 6), tick.R(1, 2))
	sawC, saw1 := false, false
	for _, s := range w.Segs {
		if s.V == V1 {
			saw1 = true
		}
		if s.V == VC {
			sawC = true
		}
	}
	if !sawC || saw1 {
		t.Errorf("crossing edges should give C and no solid 1: %v", w)
	}
}

func TestDelayRFUnknownValuesUseEnvelope(t *testing.T) {
	// A stable/changing waveform has no known edge directions: the
	// conservative envelope (min of mins, max of maxes) applies.
	w := FromSpans(p50, VS, Span{ns(10), ns(20), VC})
	got := w.DelayRF(tick.R(2, 3), tick.R(5, 7))
	want := w.Delay(tick.Range{Min: ns(2), Max: ns(7)})
	if !got.Equal(want) {
		t.Errorf("envelope fallback wrong:\n%v\n%v", got, want)
	}
}

func TestDelayRFConstant(t *testing.T) {
	w := Const(p50, V1).DelayRF(tick.R(1, 2), tick.R(3, 4))
	if v, ok := w.ConstantValue(); !ok || v != V1 {
		t.Errorf("constant through RF delay changed: %v", w)
	}
}

func TestDelayRFCarriedSkewFolds(t *testing.T) {
	// Carried skew shifts both edge kinds alike and folds into the bands
	// (with equal rise/fall delays the skew-carrying Delay path is used
	// instead, preserving pulse widths).
	w := clock(20, 30).WithSkew(ns(2)).DelayRF(tick.R(1, 1), tick.R(2, 2))
	// Rise band 21–23 (1 ns delay + 2 ns skew), fall band 32–34.
	if w.At(ns(22)) != VR || w.At(ns(33)) != VF {
		t.Errorf("skew not folded into RF bands: %v", w)
	}
	if w.Skew != 0 {
		t.Errorf("skew should be consumed, got %v", w.Skew)
	}
}

func TestDelayRFPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	Const(p50, V0).DelayRF(tick.Range{Min: 3, Max: 1}, tick.R(1, 2))
}
