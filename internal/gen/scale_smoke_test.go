package gen

import (
	"testing"
	"time"

	"scaldtv/internal/verify"
)

// TestScale6357 runs the paper's full-scale 6357-chip experiment once, as
// a smoke test that the Table 3-1 workload completes and stays clean.  It
// is skipped in -short mode.
func TestScale6357(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment skipped in -short mode")
	}
	t0 := time.Now()
	d, rep, err := Generate(Config{Chips: 6357})
	if err != nil {
		t.Fatal(err)
	}
	t1 := time.Now()
	res, err := verify.Run(d, verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t2 := time.Now()
	t.Logf("chips=6357 stages=%d prims=%d nets=%d scalarbits=%d avgwidth=%.1f",
		Stages(6357), rep.Primitives, len(d.Nets), rep.ScalarBits, rep.AvgWidth())
	t.Logf("expand=%v verify=%v events=%d evals=%d violations=%d",
		t1.Sub(t0), t2.Sub(t1), res.Stats.Events, res.Stats.PrimEvals, len(res.Violations))
	if res.Errors() {
		t.Errorf("full-scale design should be clean, got %d violations (first: %v)",
			len(res.Violations), res.Violations[0])
	}
	if rep.Primitives < 8000 {
		t.Errorf("primitive count %d below the paper's scale (~8282)", rep.Primitives)
	}
}
