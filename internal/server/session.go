package server

import (
	"container/list"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"scaldtv"
	"scaldtv/internal/report"
	"scaldtv/internal/store"
)

// A session retains a Verifier between requests, so a design edit is
// answered from the dirty cone of the previous fixed point instead of a
// from-scratch run (the §2.6 designer loop over HTTP).  The per-session
// mutex serializes verification work on the retained state; concurrent
// edits to one session queue behind each other while different sessions
// proceed in parallel (up to the admission pool).
type session struct {
	id   string
	mu   sync.Mutex
	V    *scaldtv.Verifier
	opts scaldtv.Options

	// dead is set (atomically, possibly while another request holds mu
	// for a long verification) when the table evicts or deletes the
	// session.  A handler that looked the session up before eviction
	// re-checks it after acquiring mu and answers 410 instead of
	// verifying into a session no request can ever reach again.
	dead atomic.Bool

	// Guarded by the owning table's mutex, not mu.
	elem     *list.Element
	lastUsed time.Time
}

// Session lookup sentinels: never-seen (or already swept) ids map to
// 404, a session that was evicted between lookup and use maps to 410.
var (
	errNoSession   = errors.New("server: no such session")
	errSessionGone = errors.New("server: session expired or deleted")
)

// sessionTable is an LRU-bounded, TTL-evicting map of live sessions.
// Eviction is lazy: expired entries are swept on every lookup, insert and
// length query, so an idle server holds stale Verifiers no longer than
// the next incoming request.
type sessionTable struct {
	mu   sync.Mutex
	max  int
	ttl  time.Duration
	now  func() time.Time
	byID map[string]*session
	lru  *list.List // front = most recently used; values are *session
}

func newSessionTable(max int, ttl time.Duration, now func() time.Time) *sessionTable {
	return &sessionTable{
		max:  max,
		ttl:  ttl,
		now:  now,
		byID: make(map[string]*session),
		lru:  list.New(),
	}
}

// evictExpired removes sessions idle past the TTL, marking each victim
// dead so a request that looked it up just before the sweep gets a
// clean 410 instead of verifying into an unreachable session.  Callers
// hold t.mu; the dead mark is an atomic store, so the sweep never
// blocks behind a victim's in-flight verification.
func (t *sessionTable) evictExpired() {
	deadline := t.now().Add(-t.ttl)
	for e := t.lru.Back(); e != nil; {
		s := e.Value.(*session)
		if s.lastUsed.After(deadline) {
			break // LRU order: everything nearer the front is fresher
		}
		prev := e.Prev()
		t.lru.Remove(e)
		delete(t.byID, s.id)
		s.dead.Store(true)
		e = prev
	}
}

// get looks a session up and marks it used.
func (t *sessionTable) get(id string) *session {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.evictExpired()
	s := t.byID[id]
	if s == nil {
		return nil
	}
	s.lastUsed = t.now()
	t.lru.MoveToFront(s.elem)
	return s
}

// put inserts a new session, evicting the least recently used one beyond
// the capacity bound.
func (t *sessionTable) put(s *session) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.evictExpired()
	for t.lru.Len() >= t.max {
		e := t.lru.Back()
		victim := e.Value.(*session)
		t.lru.Remove(e)
		delete(t.byID, victim.id)
		victim.dead.Store(true)
	}
	s.lastUsed = t.now()
	s.elem = t.lru.PushFront(s)
	t.byID[s.id] = s
}

// remove deletes a session; it reports whether the id was live.
func (t *sessionTable) remove(id string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.byID[id]
	if s == nil {
		return false
	}
	t.lru.Remove(s.elem)
	delete(t.byID, id)
	s.dead.Store(true)
	return true
}

func (t *sessionTable) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.evictExpired()
	return t.lru.Len()
}

func newSessionID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	return hex.EncodeToString(b[:])
}

// sessionEnvelope is the JSON response of the session endpoints: run
// provenance (whether the answer came from the dirty cone, and how big
// the cone was) wrapped around the ordinary verification report.  The
// embedded report is byte-identical to the stateless /v1/verify response
// for the same design state.
type sessionEnvelope struct {
	Schema      int             `json:"schema"`
	Session     string          `json:"session"`
	Incremental bool            `json:"incremental"`
	DirtyPrims  int             `json:"dirty_prims"`
	DirtyNets   int             `json:"dirty_nets"`
	ReusedWaves int             `json:"reused_waves"`
	Primitives  int             `json:"primitives"`
	Pass        bool            `json:"pass"`
	Violations  int             `json:"violations"`
	Provenance  string          `json:"provenance,omitempty"` // cached/warm/cold; only with a store
	Report      json.RawMessage `json:"report"`
}

// writeEnvelope renders the session response for a completed run.
// provenance is empty when the server runs without a store; the
// embedded report stays byte-identical either way.
func (s *Server) writeEnvelope(w http.ResponseWriter, code int, id string, res *scaldtv.Result, provenance store.Provenance) {
	rep, err := scaldtv.JSONReport(res)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	env := sessionEnvelope{
		Schema:      report.SchemaVersion,
		Session:     id,
		Incremental: res.Stats.Incremental,
		DirtyPrims:  res.Stats.DirtyPrims,
		DirtyNets:   res.Stats.DirtyNets,
		ReusedWaves: res.Stats.ReusedWaves,
		Primitives:  res.Stats.Primitives,
		Pass:        !res.Errors(),
		Violations:  len(res.Violations),
		Provenance:  string(provenance),
		Report:      rep,
	}
	out, err := json.MarshalIndent(&env, "", "  ")
	if err != nil {
		s.writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(out)
	io.WriteString(w, "\n")
}

// handleSessionCreate (POST /v1/sessions) compiles the design, runs a
// full verification, and retains the converged Verifier under a fresh
// session id.  Worker and cache options are fixed for the session's
// lifetime here; later PUTs only carry source.
func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	if s.clusterProxy(w, r) {
		return
	}
	ctx, cancel := s.reqCtx(r)
	defer cancel()
	src, opts, _, err := s.readRequest(r)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	release, err := s.admit(ctx, r)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	defer release()
	if s.cfg.onVerifyStart != nil {
		s.cfg.onVerifyStart(ctx)
	}
	d, err := scaldtv.Compile(src)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	start := time.Now()
	var (
		V          *scaldtv.Verifier
		res        *scaldtv.Result
		provenance store.Provenance
	)
	if s.cfg.Store != nil {
		// Store-mediated create: an already-seen design restores its
		// persisted fixed point, a structurally-known one warm-starts
		// from the nearest snapshot and re-verifies only the diff cone.
		oc, err := store.Verify(ctx, s.cfg.Store, d, src, opts, true)
		if err != nil {
			s.met.failures.Add(1)
			s.writeErr(w, err)
			return
		}
		V, res, provenance = oc.V, oc.Res, oc.Provenance
		switch provenance {
		case store.Cached:
			s.met.storeHits.Add(1)
		case store.Warm:
			s.met.storeWarm.Add(1)
		}
	} else {
		V = scaldtv.NewVerifier(d, opts)
		if res, err = V.VerifyContext(ctx); err != nil {
			s.met.failures.Add(1)
			s.writeErr(w, err)
			return
		}
	}
	sess := &session{id: newSessionID(), V: V, opts: opts}
	s.met.observe(res, time.Since(start))
	s.sessions.put(sess)
	w.Header().Set("Location", "/v1/sessions/"+sess.id)
	s.writeEnvelope(w, http.StatusCreated, sess.id, res, provenance)
}

// handleSessionUpdate (PUT /v1/sessions/{id}/design) adopts an edited
// design: when it differs from the retained one only in parameters, the
// verifier re-verifies just the forward cone of the edits and the
// response reports incremental=true with the cone size; a structural
// edit transparently falls back to a full run.  A canceled update drops
// the retained state inside the verifier (abort-don't-corrupt), so the
// session survives and the next PUT simply runs from scratch.
func (s *Server) handleSessionUpdate(w http.ResponseWriter, r *http.Request) {
	if s.clusterProxy(w, r) {
		return
	}
	sess := s.sessions.get(r.PathValue("id"))
	if sess == nil {
		s.writeErr(w, errNoSession)
		return
	}
	ctx, cancel := s.reqCtx(r)
	defer cancel()
	src, _, _, err := s.readRequest(r) // session options stay fixed; only source counts
	if err != nil {
		s.writeErr(w, err)
		return
	}
	// Serialize edits to this session before taking a pool slot, so a
	// burst of edits to one session occupies at most one slot.
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.dead.Load() {
		// Evicted between lookup and lock (TTL sweep, LRU pressure or a
		// concurrent DELETE): the state is unreachable for any future
		// request, so verifying into it would silently discard the work.
		s.writeErr(w, errSessionGone)
		return
	}
	release, err := s.admit(ctx, r)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	defer release()
	if s.cfg.onVerifyStart != nil {
		s.cfg.onVerifyStart(ctx)
	}
	nd, err := scaldtv.Compile(src)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	start := time.Now()
	res, _, err := sess.V.UpdateContext(ctx, nd)
	if err != nil {
		s.met.failures.Add(1)
		s.writeErr(w, err)
		return
	}
	s.met.observe(res, time.Since(start))
	if s.cfg.Store != nil {
		// Persist the new fixed point so later creates — in this process
		// or after a restart — find it cached or warm-startable.
		store.Save(s.cfg.Store, src, sess.opts, sess.V)
	}
	s.writeEnvelope(w, http.StatusOK, sess.id, res, "")
}

// handleSessionReport (GET /v1/sessions/{id}/report) renders the
// retained result without re-verifying anything.  ?format= selects the
// rendering: json (default; byte-identical to /v1/verify), errors (the
// Fig 3-11 constraint-error listing), summary (run statistics), xref
// (the unasserted-signals cross reference).
func (s *Server) handleSessionReport(w http.ResponseWriter, r *http.Request) {
	if s.clusterProxy(w, r) {
		return
	}
	sess := s.sessions.get(r.PathValue("id"))
	if sess == nil {
		s.writeErr(w, errNoSession)
		return
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.dead.Load() {
		s.writeErr(w, errSessionGone)
		return
	}
	res := sess.V.Result()
	if res == nil {
		// The last run was canceled and dropped its state; there is
		// nothing to report until the next successful PUT.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusConflict)
		io.WriteString(w, `{"error":{"kind":"unknown","message":"server: session has no result; re-submit the design"}}`+"\n")
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		out, err := scaldtv.JSONReport(res)
		if err != nil {
			s.writeErr(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(out)
		io.WriteString(w, "\n")
	case "errors":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, scaldtv.ErrorListing(res))
	case "summary":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, scaldtv.Summary(res))
	case "xref":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, scaldtv.CrossReference(res))
	default:
		s.writeErr(w, &scaldtv.Error{Kind: scaldtv.ParseError,
			Msg: "server: unknown report format " + format + " (want json, errors, summary or xref)"})
	}
}

// handleSessionDelete (DELETE /v1/sessions/{id}) evicts a session.
func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	if s.clusterProxy(w, r) {
		return
	}
	if !s.sessions.remove(r.PathValue("id")) {
		s.writeErr(w, errNoSession)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
