package hdl

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParse feeds arbitrary source to the HDL parser.  The parser must
// never panic: malformed input yields an error.  Input that parses must
// survive a Format/reparse round trip — the formatter's output is
// itself valid HDL describing the same file.
func FuzzParse(f *testing.F) {
	// Every example design is a seed, as is the component library.
	if paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "*", "*.scald")); err == nil {
		for _, p := range paths {
			if src, err := os.ReadFile(p); err == nil {
				f.Add(string(src))
			}
		}
	}
	f.Add("design D\nperiod 50ns\nclockunit 1ns\nbuf B delay=(1,2) (A) -> (Q)\n")
	f.Add("design D\nperiod 10ns\nreg R delay=(1,2) (\"CK .P0-4\", \"D .S1-8\"<0:7>) -> (Q<0:7>)\n")
	f.Add("design D\nperiod 10ns\nsetuphold C setup=2.5 hold=1.5 (D, CK)\ncase S = 1\n")
	f.Add("design D\nperiod 10ns\nwiredor\nskew precision -1ns 1ns\nmacro M (a) -> (q)\n  not N delay=(0,1) (a) -> (q)\nend\n")
	f.Add("; comment only\n")
	f.Add("design \"Q\\\"UOTE\"\nperiod 1ns\nand G delay=(0,0) (-A &H, B) -> (C)\n")

	f.Fuzz(func(t *testing.T, src string) {
		file, err := Parse(src)
		if err != nil {
			return
		}
		out := Format(file)
		if _, err := Parse(out); err != nil {
			t.Fatalf("formatted output does not reparse: %v\ninput:\n%s\nformatted:\n%s", err, src, out)
		}
	})
}
