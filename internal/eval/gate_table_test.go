package eval

import (
	"math/rand"
	"testing"

	"scaldtv/internal/assertion"
	"scaldtv/internal/netlist"
	"scaldtv/internal/tick"
	"scaldtv/internal/values"
)

// Property: GateTableA is segment-for-segment identical to the generic
// evaluator over random gates — random kinds, widths, inversions,
// directives, wire overrides, delays and rise/fall splits.
func TestGateTableMatchesEvalGate(t *testing.T) {
	rng := rand.New(rand.NewSource(3141))
	period := tick.Time(50000)
	kinds := []netlist.Kind{
		netlist.KBuf, netlist.KNot, netlist.KAnd, netlist.KNand,
		netlist.KOr, netlist.KNor, netlist.KXor,
	}
	dirStrings := []assertion.Directives{"", "E", "Z", "A", "H", "W", "HZ", "AE"}

	randWave := func() values.Waveform {
		w := values.Const(period, values.All[rng.Intn(len(values.All))])
		for j := 0; j < rng.Intn(4); j++ {
			s := tick.Time(rng.Int63n(int64(period)))
			e := tick.Time(rng.Int63n(int64(period)))
			w = w.Paint(s, e, values.All[rng.Intn(len(values.All))])
		}
		if rng.Intn(3) == 0 {
			w = w.WithSkew(tick.Time(rng.Int63n(int64(period / 4))))
		}
		return w
	}

	for i := 0; i < 3000; i++ {
		kind := kinds[rng.Intn(len(kinds))]
		nIn := 1
		if kind != netlist.KBuf && kind != netlist.KNot {
			nIn = 1 + rng.Intn(3)
		}
		width := 1 + rng.Intn(3)

		d := &netlist.Design{
			Name:        "t",
			Period:      period,
			DefaultWire: tick.Range{Min: 0, Max: tick.Time(rng.Int63n(300))},
		}
		sigs := make(map[netlist.NetID]Signal)
		p := &netlist.Prim{Kind: kind, Name: "g", Width: width}
		if rng.Intn(2) == 0 {
			p.Delay = tick.Range{Min: tick.Time(rng.Int63n(500)), Max: tick.Time(500 + rng.Int63n(500))}
		}
		if kind != netlist.KBuf && kind != netlist.KNot && rng.Intn(4) == 0 {
			p.RF = &netlist.RFDelay{
				Rise: tick.Range{Min: 10, Max: tick.Time(10 + rng.Int63n(200))},
				Fall: tick.Range{Min: 5, Max: tick.Time(5 + rng.Int63n(100))},
			}
		}
		for pi := 0; pi < nIn; pi++ {
			port := netlist.Port{Name: "I"}
			for b := 0; b < width; b++ {
				id := netlist.NetID(len(d.Nets))
				net := netlist.Net{Name: "n", Driver: netlist.NoDriver}
				if rng.Intn(4) == 0 {
					net.Wire = &tick.Range{Min: 0, Max: tick.Time(rng.Int63n(200))}
				}
				d.Nets = append(d.Nets, net)
				sigs[id] = Signal{Wave: randWave(), Dirs: dirStrings[rng.Intn(len(dirStrings))]}
				port.Bits = append(port.Bits, netlist.Conn{
					Net:        id,
					Invert:     rng.Intn(3) == 0,
					Directives: dirStrings[rng.Intn(len(dirStrings))],
				})
			}
			p.In = append(p.In, port)
		}
		get := func(id netlist.NetID) Signal { return sigs[id] }

		got, gotErr := GateTableA(d, p, get, nil)
		want, wantErr := PrimA(d, p, get, nil)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("iteration %d (%v): error mismatch: table %v, generic %v", i, kind, gotErr, wantErr)
		}
		if len(got) != len(want) {
			t.Fatalf("iteration %d (%v): %d outputs, want %d", i, kind, len(got), len(want))
		}
		for b := range got {
			if got[b].Dirs != want[b].Dirs {
				t.Fatalf("iteration %d (%v) bit %d: dirs %q, want %q", i, kind, b, got[b].Dirs, want[b].Dirs)
			}
			gw, ww := got[b].Wave, want[b].Wave
			if gw.Period != ww.Period || gw.Skew != ww.Skew || len(gw.Segs) != len(ww.Segs) {
				t.Fatalf("iteration %d (%v) bit %d: wave %v, want %v", i, kind, b, gw, ww)
			}
			for j := range gw.Segs {
				if gw.Segs[j] != ww.Segs[j] {
					t.Fatalf("iteration %d (%v) bit %d: wave %v, want %v", i, kind, b, gw, ww)
				}
			}
		}
	}
}
