package report

import (
	"encoding/json"
	"fmt"
)

// The distributed-merge half of the report package: a verification run
// partitioned into case subsets on cluster workers comes back as one
// Report part per partition (NewPartial), and MergeParts reassembles the
// single-document report in declared case order.  The merge is purely
// positional — parts must be supplied in the order their case ranges
// were declared — and the result is byte-identical to report.JSON of the
// equivalent local single-process run: the head fields are
// design-structural (every part agrees on them), case labels, violations
// and site probabilities concatenate in case order, and pass/delay-model
// are recomputed exactly the way a local run computes them.

// MergeParts assembles a full report document from partition parts in
// declared case order.  A single part merges to exactly its own
// serialization, so whole-run results (including store-served ones
// round-tripped through ParsePart) pass through byte-identically.
func MergeParts(parts []*Report) ([]byte, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("report: merge of zero parts")
	}
	head := parts[0]
	out := &Report{
		Schema:     head.Schema,
		Design:     head.Design,
		PeriodNS:   head.PeriodNS,
		Primitives: head.Primitives,
		Nets:       head.Nets,
		CaseLabels: []string{},
		Violations: []jsonViolation{},
		Undefined:  head.Undefined,
	}
	for _, p := range parts {
		out.Cases += p.Cases
		out.CaseLabels = append(out.CaseLabels, p.CaseLabels...)
		out.Violations = append(out.Violations, p.Violations...)
		out.SiteProbs = append(out.SiteProbs, p.SiteProbs...)
		if p.DelayModel != "" {
			// A case subset with no probability-bearing site omits the
			// model string even under statistical delays; any part that
			// carries it fixes the document's model, exactly as a local run
			// sets it when SiteProbs come out non-empty.
			out.DelayModel = p.DelayModel
		}
		out.Surface = append(out.Surface, p.Surface...)
		if p.Params != nil && out.Params == nil {
			// The parameter bindings are global to a run: every part was
			// verified at the same pinned point, so the first part that
			// carries them fixes the document's bindings.
			out.Params = p.Params
		}
		if p.Exploration != nil && out.Exploration == nil {
			// Exploration is global to a run and never split across parts.
			out.Exploration = p.Exploration
		}
	}
	out.Pass = len(out.Violations) == 0
	return marshalReport(out)
}

// ParsePart decodes a rendered report document back into its Report
// structure, so a stored whole-run report (the persistent store's cached
// bytes) can travel the cluster wire as a part.  Marshalling the parsed
// part reproduces the stored bytes exactly: the document was produced by
// the same marshaller, float64 values round-trip losslessly, and
// omitted optional fields decode to their zero values which re-omit.
func ParsePart(rep []byte) (*Report, error) {
	var p Report
	if err := json.Unmarshal(rep, &p); err != nil {
		return nil, fmt.Errorf("report: parse part: %w", err)
	}
	if p.Schema != SchemaVersion {
		return nil, fmt.Errorf("report: part schema %d, want %d", p.Schema, SchemaVersion)
	}
	if p.CaseLabels == nil {
		p.CaseLabels = []string{}
	}
	if p.Violations == nil {
		p.Violations = []jsonViolation{}
	}
	return &p, nil
}
