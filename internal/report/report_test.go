package report

import (
	"strings"
	"testing"

	"scaldtv/internal/netlist"
	"scaldtv/internal/tick"
	"scaldtv/internal/values"
	"scaldtv/internal/verify"
)

func ns(f float64) tick.Time { return tick.FromNS(f) }

func smallResult(t *testing.T, keepWaves bool) *verify.Result {
	t.Helper()
	b := netlist.NewBuilder("report-test")
	b.SetPeriod(50 * tick.NS)
	b.SetClockUnit(tick.FromNS(6.25))
	b.SetDefaultWire(tick.R(0, 2))
	b.SetPrecisionSkew(tick.R(-1, 1))
	ck := b.Net("CK .P0-4")
	data := b.Vector("W DATA .S6-12", 8)
	q := b.Vector("Q", 8)
	b.Register("OUT REG", tick.R(1.5, 4.5), q, netlist.Conn{Net: ck}, netlist.Conns(data...))
	b.SetupHold("OUT REG CHK", ns(2.5), ns(1.5), netlist.Conns(data...), netlist.Conn{Net: ck})
	b.Net("NOT YET DESIGNED")
	late := b.Net("LATE .S7.5-8") // stable only 46.875–50: violates set-up at 49
	b.SetupHold("LATE CHK", ns(2.5), ns(1.5), netlist.Conns(late), netlist.Conn{Net: ck})
	d := b.MustBuild()
	res, err := verify.Run(d, verify.Options{KeepWaves: keepWaves})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestWaveString(t *testing.T) {
	w := values.Const(50*tick.NS, values.VS).Paint(ns(0.5), ns(5.5), values.VC)
	got := WaveString(w)
	if got != "S 0.0 C 0.5 S 5.5" {
		t.Errorf("WaveString = %q", got)
	}
	// Skew is incorporated for display.
	w2 := values.Const(50*tick.NS, values.V0).Paint(ns(10), ns(20), values.V1).WithSkew(ns(2))
	got2 := WaveString(w2)
	if !strings.Contains(got2, "R 10.0") || !strings.Contains(got2, "F 20.0") {
		t.Errorf("WaveString with skew = %q, want R/F bands", got2)
	}
}

func TestTimingSummary(t *testing.T) {
	res := smallResult(t, true)
	s := TimingSummary(res, 0)
	if !strings.Contains(s, "TIMING SUMMARY") {
		t.Error("missing header")
	}
	// Vector bits with identical timing collapse into one row.
	if !strings.Contains(s, "W DATA<0:7> .S6-12") {
		t.Errorf("vector not grouped:\n%s", s)
	}
	if strings.Contains(s, "W DATA<3>") {
		t.Errorf("individual bits leaked into summary:\n%s", s)
	}
	if !strings.Contains(s, "CK .P0-4") {
		t.Errorf("scalar signal missing:\n%s", s)
	}
	// The register output row shows its change window.
	if !strings.Contains(s, "Q<0:7>") {
		t.Errorf("output vector missing:\n%s", s)
	}
}

func TestTimingSummaryUnavailable(t *testing.T) {
	res := smallResult(t, false)
	if s := TimingSummary(res, 0); !strings.Contains(s, "unavailable") {
		t.Errorf("expected unavailable notice, got %q", s)
	}
	res2 := smallResult(t, true)
	if s := TimingSummary(res2, 99); !strings.Contains(s, "unavailable") {
		t.Errorf("bad case index should be unavailable, got %q", s)
	}
}

func TestErrorListing(t *testing.T) {
	res := smallResult(t, false)
	if len(res.Violations) == 0 {
		t.Fatal("fixture should produce a violation")
	}
	s := ErrorListing(res)
	if !strings.Contains(s, "SETUP TIME") || !strings.Contains(s, "LATE CHK") {
		t.Errorf("listing missing violation details:\n%s", s)
	}
	if !strings.Contains(s, "DATA INPUT") || !strings.Contains(s, "CK INPUT") {
		t.Errorf("listing missing input waveforms:\n%s", s)
	}
	if !strings.Contains(s, "missed by") {
		t.Errorf("listing missing margin:\n%s", s)
	}
}

func TestErrorListingClean(t *testing.T) {
	b := netlist.NewBuilder("clean")
	b.SetPeriod(50 * tick.NS)
	b.Net("A .S0-25")
	res, err := verify.Run(b.MustBuild(), verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s := ErrorListing(res); !strings.Contains(s, "no timing errors") {
		t.Errorf("clean listing wrong:\n%s", s)
	}
}

func TestCrossReference(t *testing.T) {
	res := smallResult(t, false)
	s := CrossReference(res)
	if !strings.Contains(s, "NOT YET DESIGNED") {
		t.Errorf("undefined signal missing:\n%s", s)
	}
	b := netlist.NewBuilder("none")
	b.SetPeriod(50 * tick.NS)
	b.Net("A .S0-25")
	res2, _ := verify.Run(b.MustBuild(), verify.Options{})
	if s := CrossReference(res2); !strings.Contains(s, "none") {
		t.Errorf("empty cross reference wrong:\n%s", s)
	}
}

func TestSummary(t *testing.T) {
	res := smallResult(t, false)
	s := Summary(res)
	for _, want := range []string{"events processed", "primitive evals", "violations", "report-test"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestGroupSignalsMixedBits(t *testing.T) {
	b := netlist.NewBuilder("mixed")
	b.SetPeriod(50 * tick.NS)
	b.SetDefaultWire(tick.Range{})
	v := b.Vector("V", 2)
	a := b.Net("A .S0-10")
	c := b.Net("C .S0-20")
	b.Buf("b0", tick.Range{}, []netlist.NetID{v[0]}, netlist.Conns(a))
	b.Buf("b1", tick.Range{}, []netlist.NetID{v[1]}, netlist.Conns(c))
	res, err := verify.Run(b.MustBuild(), verify.Options{KeepWaves: true})
	if err != nil {
		t.Fatal(err)
	}
	s := TimingSummary(res, 0)
	if !strings.Contains(s, "bits differ") {
		t.Errorf("mixed vector should be flagged:\n%s", s)
	}
}

func TestWaveArtLine(t *testing.T) {
	p := 50 * tick.NS
	w := values.Const(p, values.V0).Paint(ns(25), ns(50), values.V1)
	art := WaveArtLine(w, 10)
	if art != "_____~~~~~" && art != "____/~~~~~" {
		t.Errorf("art = %q", art)
	}
	// Skew shows as bands.
	w2 := values.Const(p, values.V0).Paint(ns(10), ns(30), values.V1).WithSkew(ns(5))
	art2 := WaveArtLine(w2, 10)
	if !strings.Contains(art2, "/") || !strings.Contains(art2, "\\") {
		t.Errorf("skewed art missing transition bands: %q", art2)
	}
	if got := WaveArtLine(values.Const(p, values.VU), 8); got != "????????" {
		t.Errorf("unknown art = %q", got)
	}
	if got := len(WaveArtLine(values.Const(p, values.VS), 0)); got != 64 {
		t.Errorf("default width = %d", got)
	}
}

func TestWaveArt(t *testing.T) {
	res := smallResult(t, true)
	art := WaveArt(res, 0, 48)
	if !strings.Contains(art, "WAVEFORMS") || !strings.Contains(art, "W DATA<0:7>") {
		t.Errorf("wave art wrong:\n%s", art)
	}
	if !strings.Contains(art, "~") || !strings.Contains(art, "=") {
		t.Errorf("wave art missing glyphs:\n%s", art)
	}
	if s := WaveArt(smallResult(t, false), 0, 48); !strings.Contains(s, "unavailable") {
		t.Errorf("missing waves should be reported: %q", s)
	}
}

func TestDOT(t *testing.T) {
	res := smallResult(t, false)
	dot := DOT(res.Design)
	for _, want := range []string{"digraph", "OUT REG", "shape=box", "shape=diamond", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Vector edges collapse with a width label.
	if !strings.Contains(dot, "W DATA .S6-12 ×8") {
		t.Errorf("vector edge not collapsed:\n%s", dot)
	}
}

func TestCaseDiff(t *testing.T) {
	b := netlist.NewBuilder("diff")
	b.SetPeriod(100 * tick.NS)
	b.SetClockUnit(tick.NS)
	b.SetDefaultWire(tick.Range{})
	ctrl := b.Net("CTRL .S0-100")
	in0 := b.Net("IN0 .S5-104")
	in1 := b.Net("IN1 .S25-104")
	o := b.Net("O")
	other := b.Net("OTHER")
	b.Mux(netlist.KMux2, "M", tick.R(1, 2), tick.Range{}, []netlist.NetID{o},
		netlist.Conns(ctrl), netlist.Conns(in0), netlist.Conns(in1))
	b.Buf("B", tick.R(1, 2), []netlist.NetID{other}, netlist.Conns(in0))
	b.AddCase("CTRL = 0", netlist.Assign("CTRL", values.V0))
	b.AddCase("CTRL = 1", netlist.Assign("CTRL", values.V1))
	res, err := verify.Run(b.MustBuild(), verify.Options{KeepWaves: true})
	if err != nil {
		t.Fatal(err)
	}
	s := CaseDiff(res, 0, 1)
	if !strings.Contains(s, "O") || !strings.Contains(s, "CTRL") {
		t.Errorf("diff missing affected signals:\n%s", s)
	}
	if strings.Contains(s, "OTHER") {
		t.Errorf("unaffected signal leaked into the diff:\n%s", s)
	}
	if s2 := CaseDiff(res, 0, 0); !strings.Contains(s2, "none") {
		t.Errorf("self-diff should be empty:\n%s", s2)
	}
	if s3 := CaseDiff(res, 0, 9); !strings.Contains(s3, "unavailable") {
		t.Errorf("bad index should be unavailable:\n%s", s3)
	}
}

func TestVCD(t *testing.T) {
	res := smallResult(t, true)
	v := VCD(res, 0)
	for _, want := range []string{
		"$timescale 1ps $end",
		"$var wire 1",
		"W_DATA_0_7__.S6-12",
		"$enddefinitions",
		"#0",
		"#50000",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("VCD missing %q:\n%s", want, v)
		}
	}
	// The clock's rise at 49 ns (49000 ps, skew band start) appears.
	if !strings.Contains(v, "#49000") && !strings.Contains(v, "x") {
		t.Errorf("clock transitions missing:\n%s", v)
	}
	if VCD(smallResult(t, false), 0) != "" {
		t.Error("VCD without waves should be empty")
	}
}

func TestVCDCode(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 10000; i++ {
		c := vcdCode(i)
		if seen[c] {
			t.Fatalf("code collision at %d: %q", i, c)
		}
		seen[c] = true
		for _, ch := range []byte(c) {
			if ch < '!' || ch > '~' {
				t.Fatalf("non-printable code byte %d at %d", ch, i)
			}
		}
	}
}

func TestSlackListing(t *testing.T) {
	b := netlist.NewBuilder("slack")
	b.SetPeriod(50 * tick.NS)
	b.SetClockUnit(tick.FromNS(6.25))
	b.SetDefaultWire(tick.R(0, 2))
	b.SetPrecisionSkew(tick.R(-1, 1))
	ck := b.Net("CK .P0-4")
	tight := b.Net("TIGHT .S7-12") // stable 43.75 → 25: set-up at 49 is 5.25-2 skew = 3.25
	roomy := b.Net("ROOMY .S4-12") // stable 25 → 25: lots of margin
	b.SetupHold("TIGHT CHK", ns(2.5), ns(1.5), netlist.Conns(tight), netlist.Conn{Net: ck})
	b.SetupHold("ROOMY CHK", ns(2.5), ns(1.5), netlist.Conns(roomy), netlist.Conn{Net: ck})
	res, err := verify.Run(b.MustBuild(), verify.Options{Margins: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors() {
		t.Fatalf("fixture should pass: %v", res.Violations)
	}
	if len(res.Margins) == 0 {
		t.Fatal("no margins collected")
	}
	s := SlackListing(res, 10)
	if !strings.Contains(s, "CONSTRAINT MARGINS") || !strings.Contains(s, "TIGHT CHK") {
		t.Errorf("listing wrong:\n%s", s)
	}
	// The tight path sorts before the roomy one.
	if strings.Index(s, "TIGHT CHK") > strings.Index(s, "ROOMY CHK") {
		t.Errorf("criticality order wrong:\n%s", s)
	}
	if !strings.Contains(s, "could shrink") {
		t.Errorf("cycle-time estimate missing:\n%s", s)
	}
	// Without margins: unavailable.
	res2, _ := verify.Run(res.Design, verify.Options{})
	if s := SlackListing(res2, 10); !strings.Contains(s, "unavailable") {
		t.Errorf("missing margins not reported: %q", s)
	}
}

func TestSlackListingViolated(t *testing.T) {
	res := smallResult2Margins(t)
	s := SlackListing(res, 10)
	if !strings.Contains(s, "<< VIOLATED") {
		t.Errorf("violated constraint not marked:\n%s", s)
	}
	if !strings.Contains(s, "must grow") {
		t.Errorf("negative-slack cycle estimate missing:\n%s", s)
	}
}

func smallResult2Margins(t *testing.T) *verify.Result {
	t.Helper()
	b := netlist.NewBuilder("slack-viol")
	b.SetPeriod(50 * tick.NS)
	b.SetClockUnit(tick.FromNS(6.25))
	b.SetDefaultWire(tick.R(0, 2))
	b.SetPrecisionSkew(tick.R(-1, 1))
	ck := b.Net("CK .P0-4")
	late := b.Net("LATE .S7.5-8")
	b.SetupHold("LATE CHK", ns(2.5), ns(1.5), netlist.Conns(late), netlist.Conn{Net: ck})
	res, err := verify.Run(b.MustBuild(), verify.Options{Margins: true})
	if err != nil {
		t.Fatal(err)
	}
	return res
}
