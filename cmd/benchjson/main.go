// Command benchjson converts `go test -bench` output into a JSON document
// suitable for archiving as a CI artifact, and can render a markdown
// comparison of cache=true vs cache=false benchmark pairs for the job
// summary.
//
// Usage:
//
//	go test -bench Table31 -benchmem -count=3 | benchjson -out BENCH_PR2.json -summary
//
//	-out file     write the JSON document to file (default: stdout)
//	-summary      print a markdown cache-on/off comparison table to stdout
//
// Input is read from the files named on the command line, or from stdin
// when none are given.  Lines that are not benchmark results or header
// lines (goos/goarch/pkg/cpu) are ignored, so the raw `go test` output can
// be piped in unfiltered.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Sample is one benchmark result line.  Metrics maps unit → value and
// always includes "ns/op"; with -benchmem it also has "B/op" and
// "allocs/op", plus any b.ReportMetric extras (e.g. "events", "hits").
type Sample struct {
	Name       string             `json:"name"` // sub-benchmark path, GOMAXPROCS suffix stripped
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Doc is the archived document.
type Doc struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Samples []Sample `json:"samples"`
}

func main() {
	out := flag.String("out", "", "write the JSON document to this file (default: stdout)")
	summary := flag.Bool("summary", false, "print a markdown cache-on/off comparison to stdout")
	flag.Parse()

	var doc Doc
	if flag.NArg() == 0 {
		if err := parse(&doc, os.Stdin); err != nil {
			fail(err)
		}
	} else {
		for _, path := range flag.Args() {
			f, err := os.Open(path)
			if err != nil {
				fail(err)
			}
			err = parse(&doc, f)
			f.Close()
			if err != nil {
				fail(err)
			}
		}
	}
	if len(doc.Samples) == 0 {
		fail(fmt.Errorf("no benchmark result lines found in input"))
	}

	enc, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		fail(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fail(err)
	}

	if *summary {
		fmt.Print(cacheSummary(&doc))
	}
}

// parse appends every benchmark line in r to doc and picks up the
// goos/goarch/pkg/cpu header lines.
func parse(doc *Doc, r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			s, ok := parseLine(line)
			if !ok {
				continue
			}
			doc.Samples = append(doc.Samples, s)
		}
	}
	return sc.Err()
}

// parseLine parses one "BenchmarkName-8  100  123 ns/op  ..." result line.
func parseLine(line string) (Sample, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Sample{}, false
	}
	s := Sample{Name: fields[0], Procs: 1, Metrics: map[string]float64{}}
	if i := strings.LastIndex(s.Name, "-"); i >= 0 {
		if p, err := strconv.Atoi(s.Name[i+1:]); err == nil {
			s.Name, s.Procs = s.Name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Sample{}, false
	}
	s.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Sample{}, false
		}
		s.Metrics[fields[i+1]] = v
	}
	return s, true
}

// pairings lists the recognised on/off path elements.  The "on" setting
// is the optimised one; speedups are reported as off-time / on-time.
var pairings = []struct{ on, off, onLabel, offLabel string }{
	{"cache=true", "cache=false", "cache on", "cache off"},
	{"mode=incremental", "mode=full", "incremental", "full"},
}

// pairKey strips a recognised on/off path element (cache=true/false,
// mode=incremental/full) so the two settings of one benchmark collapse
// onto the same key, and returns the display labels for the pair.
func pairKey(name string) (key string, on bool, labels [2]string, isPair bool) {
	parts := strings.Split(name, "/")
	for i, p := range parts {
		for _, pr := range pairings {
			if p == pr.on || p == pr.off {
				key = strings.Join(append(append([]string{}, parts[:i]...), parts[i+1:]...), "/")
				return key, p == pr.on, [2]string{pr.onLabel, pr.offLabel}, true
			}
		}
	}
	return name, false, labels, false
}

// agg holds the best (minimum ns/op) sample per benchmark name, the
// convention benchstat-style comparisons use for noisy CI machines.
type agg struct {
	best Sample
	n    int
}

// cacheSummary renders a markdown table comparing every recognised
// on/off pair (cache on/off, incremental/full), for $GITHUB_STEP_SUMMARY.
func cacheSummary(doc *Doc) string {
	type pair struct {
		on, off *agg
		labels  [2]string
	}
	pairs := map[string]*pair{}
	var order []string
	for _, s := range doc.Samples {
		key, on, labels, isPair := pairKey(s.Name)
		if !isPair {
			continue
		}
		p := pairs[key]
		if p == nil {
			p = &pair{labels: labels}
			pairs[key] = p
			order = append(order, key)
		}
		slot := &p.off
		if on {
			slot = &p.on
		}
		if *slot == nil {
			*slot = &agg{best: s, n: 1}
		} else {
			(*slot).n++
			if s.Metrics["ns/op"] < (*slot).best.Metrics["ns/op"] {
				(*slot).best = s
			}
		}
	}
	sort.Strings(order)

	var sb strings.Builder
	sb.WriteString("### Benchmark pair comparison\n\n")
	sb.WriteString("Best of the repeated runs per setting (min ns/op).\n\n")
	sb.WriteString("| benchmark | setting | ns/op | B/op | allocs/op | speedup |\n")
	sb.WriteString("|---|---|---:|---:|---:|---:|\n")
	wrote := false
	for _, key := range order {
		p := pairs[key]
		if p.on == nil || p.off == nil {
			continue
		}
		wrote = true
		on, off := p.on.best.Metrics, p.off.best.Metrics
		speedup := "n/a"
		if on["ns/op"] > 0 {
			speedup = fmt.Sprintf("%.2fx", off["ns/op"]/on["ns/op"])
		}
		fmt.Fprintf(&sb, "| %s | %s | %s | %s | %s | %s |\n",
			key, p.labels[0], num(on["ns/op"]), num(on["B/op"]), num(on["allocs/op"]), speedup)
		fmt.Fprintf(&sb, "| %s | %s | %s | %s | %s | |\n",
			key, p.labels[1], num(off["ns/op"]), num(off["B/op"]), num(off["allocs/op"]))
	}
	if !wrote {
		sb.WriteString("| _no paired settings in input_ | | | | | |\n")
	}
	return sb.String()
}

func num(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'f', 1, 64)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
