package report

import (
	"encoding/json"

	"scaldtv/internal/verify"
)

// jsonViolation is the machine-readable form of one violation.
type jsonViolation struct {
	Kind       string  `json:"kind"`
	Case       string  `json:"case,omitempty"`
	Primitive  string  `json:"primitive"`
	Data       string  `json:"data,omitempty"`
	Clock      string  `json:"clock,omitempty"`
	RequiredNS float64 `json:"required_ns"`
	ActualNS   float64 `json:"actual_ns"`
	MarginNS   float64 `json:"margin_ns"`
	AtNS       float64 `json:"at_ns"`
	DataWave   string  `json:"data_wave,omitempty"`
	ClockWave  string  `json:"clock_wave,omitempty"`
	Detail     string  `json:"detail,omitempty"`
}

// SchemaVersion identifies the JSON report layout.  Bump it on any
// incompatible change to the emitted fields; consumers should check it
// before interpreting the rest of the document.
//
// Version 1 added the schema and case_labels fields and removed the
// events counter: per-case event totals depend on the case schedule
// (sequential runs relax later cases incrementally, concurrent runs relax
// each from scratch), so including them broke the byte-determinism of the
// report across Options.Workers settings.  Everything emitted now is
// bit-identical for every Workers/IntraWorkers/NoCache combination —
// the contract the scaldtvd service relies on.
const SchemaVersion = 1

// jsonReport is the machine-readable verification outcome, for CI
// integration.  The design name and per-case labels identify what was
// verified; the labels are in declared case order, matching the case
// grouping of the violations list.
type jsonReport struct {
	Schema     int             `json:"schema"`
	Design     string          `json:"design"`
	PeriodNS   float64         `json:"period_ns"`
	Primitives int             `json:"primitives"`
	Nets       int             `json:"nets"`
	Cases      int             `json:"cases"`
	CaseLabels []string        `json:"case_labels"`
	Violations []jsonViolation `json:"violations"`
	Undefined  []string        `json:"undefined_signals,omitempty"`
	Pass       bool            `json:"pass"`
}

// JSON renders the verification result as machine-readable JSON.  The
// output is byte-deterministic for a given design and verification
// outcome, regardless of worker counts or cache settings.
func JSON(res *verify.Result) ([]byte, error) {
	out := jsonReport{
		Schema:     SchemaVersion,
		Design:     res.Design.Name,
		PeriodNS:   res.Design.Period.NS(),
		Primitives: res.Stats.Primitives,
		Nets:       res.Stats.Nets,
		Cases:      res.Stats.Cases,
		CaseLabels: []string{},
		Undefined:  res.Undefined,
		Pass:       !res.Errors(),
		Violations: []jsonViolation{},
	}
	for _, c := range res.Cases {
		out.CaseLabels = append(out.CaseLabels, c.Label)
	}
	for _, v := range res.Violations {
		jv := jsonViolation{
			Kind:       v.Kind.String(),
			Case:       v.Case,
			Primitive:  v.Prim,
			Data:       v.Data,
			Clock:      v.Clock,
			RequiredNS: v.Required.NS(),
			ActualNS:   v.Actual.NS(),
			MarginNS:   v.Margin().NS(),
			AtNS:       v.At.NS(),
			Detail:     v.Detail,
		}
		if v.DataWave.Period > 0 {
			jv.DataWave = WaveString(v.DataWave)
		}
		if v.ClockWave.Period > 0 {
			jv.ClockWave = WaveString(v.ClockWave)
		}
		out.Violations = append(out.Violations, jv)
	}
	return json.MarshalIndent(out, "", "  ")
}
